// Benchmarks regenerating every table and figure of the paper's evaluation
// plus the ablations of DESIGN.md §4. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark exercises the code path that produces the corresponding
// artifact; the cmd/ tools print the full tables.
package genmp

import (
	"fmt"
	"math/rand"
	"testing"

	"genmp/internal/adi"
	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/dmem"
	"genmp/internal/exp"
	"genmp/internal/grid"
	"genmp/internal/modmap"
	"genmp/internal/nas"
	"genmp/internal/numutil"
	"genmp/internal/partition"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

// BenchmarkFigure1Mapping regenerates Figure 1: the diagonal 3-D
// multipartitioning of 4×4×4 tiles on 16 processors, including the
// exhaustive property verification.
func BenchmarkFigure1Mapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := core.NewDiagonal(16, 3)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Partitions runs the paper's Figure 2 generator: all
// Lemma-1 distributions of r factor instances into d bins.
func BenchmarkFigure2Partitions(b *testing.B) {
	for _, cfg := range []struct{ r, d int }{{6, 3}, {10, 4}, {12, 5}} {
		b.Run(fmt.Sprintf("r=%d,d=%d", cfg.r, cfg.d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				partition.EachDistribution(cfg.r, cfg.d, func([]int) bool { n++; return true })
				if n == 0 {
					b.Fatal("no distributions")
				}
			}
		})
	}
}

// BenchmarkFigure3ModularMapping runs the paper's Figure 3 construction
// (moduli, kernel, reduction) for representative partitionings.
func BenchmarkFigure3ModularMapping(b *testing.B) {
	cases := []struct {
		p     int
		gamma []int
	}{
		{16, []int{4, 4, 4}},
		{50, []int{5, 10, 10}},
		{72, []int{6, 12, 12}},
		{720, []int{12, 60, 60}},
	}
	for _, c := range cases {
		b.Run(partition.Describe(c.gamma), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := modmap.New(c.p, c.gamma); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1SP runs one Table 1 cell: the dHPF generalized variant of
// NAS SP class B on the virtual Origin 2000 (model-only, one timestep).
func BenchmarkTable1SP(b *testing.B) {
	eta := nas.ClassB.Eta
	serial, err := nas.SerialTime(nas.Origin2000Machine(1), eta, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{16, 49, 50, 64} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := nas.Speedup(nas.DHPFGeneralized, p, nas.Origin2000Machine(p), eta, 1, serial)
				if err != nil {
					b.Fatal(err)
				}
				if s <= 0 {
					b.Fatal("non-positive speedup")
				}
			}
		})
	}
}

// BenchmarkSkewedDomain reproduces the Section 3.1 remark experiment: the
// optimal-partitioning search across domain aspect ratios.
func BenchmarkSkewedDomain(b *testing.B) {
	ratios := []float64{1, 2, 3, 4, 5, 6, 8}
	for i := 0; i < b.N; i++ {
		rows, err := exp.SkewedDomain(100, ratios)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(ratios) {
			b.Fatal("short result")
		}
	}
}

// BenchmarkEnumerationP1000 measures the Section 3.3 search-space
// enumeration at the paper's "p up to 1000" scale.
func BenchmarkEnumerationP1000(b *testing.B) {
	for _, d := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			obj := partition.UniformObjective(d)
			for i := 0; i < b.N; i++ {
				if _, err := partition.Optimal(1000, d, obj); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBackgroundMappings covers the Section 2 prior-art
// constructions.
func BenchmarkBackgroundMappings(b *testing.B) {
	b.Run("johnsson-p=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := core.NewJohnsson2D(64)
			if err != nil {
				b.Fatal(err)
			}
			_ = m.TilesOf(0)
		}
	})
	b.Run("graycode-k=3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := core.NewGrayCode3D(3)
			if err != nil {
				b.Fatal(err)
			}
			_ = m.TilesOf(0)
		}
	})
}

// BenchmarkStrategyComparison runs the ADI strategy shoot-out
// (multipartitioning vs wavefront vs transpose), model-only.
func BenchmarkStrategyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.StrategyComparison(16, []int{64, 64, 64}, 1, 64)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].Time >= rows[1].Time {
			b.Fatal("multipartitioning should win")
		}
	}
}

// BenchmarkAblationAggregation compares vectorized (one message per phase)
// against per-tile carry communication.
func BenchmarkAblationAggregation(b *testing.B) {
	m, err := core.NewGeneralized(8, []int{8, 8, 4})
	if err != nil {
		b.Fatal(err)
	}
	env, err := dist.NewEnv(m, []int{64, 64, 16}, dist.HandCoded())
	if err != nil {
		b.Fatal(err)
	}
	for _, agg := range []bool{true, false} {
		name := "aggregated"
		if !agg {
			name = "per-tile"
		}
		b.Run(name, func(b *testing.B) {
			makespan := 0.0
			for i := 0; i < b.N; i++ {
				ms, err := dist.NewMultiSweep(env, sweep.Tridiag{}, nil)
				if err != nil {
					b.Fatal(err)
				}
				ms.Aggregate = agg
				res, err := nasMachine(8).Run(func(r *sim.Rank) { ms.Run(r, 0) })
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Makespan
			}
			b.ReportMetric(makespan*1e6, "virtual-µs")
		})
	}
}

// BenchmarkAblationPruning compares the branch-and-bound elementary search
// against the brute-force divisor scan.
func BenchmarkAblationPruning(b *testing.B) {
	obj := partition.VolumeObjective([]int{512, 256, 128})
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := partition.Optimal(720, 3, obj); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.BruteForceOptimal(720, 3, obj)
		}
	})
}

// BenchmarkAblationWavefrontGrain sweeps the wavefront message granularity
// (the Section 1 fill/drain-vs-overhead tension).
func BenchmarkAblationWavefrontGrain(b *testing.B) {
	blk, err := dist.NewBlock(8, []int{64, 24, 24}, 0, dist.HandCoded())
	if err != nil {
		b.Fatal(err)
	}
	for _, grain := range []int{1, 8, 36, 576} {
		b.Run(fmt.Sprintf("grain=%d", grain), func(b *testing.B) {
			makespan := 0.0
			for i := 0; i < b.N; i++ {
				res, err := nasMachine(8).Run(func(r *sim.Rank) {
					blk.WavefrontSweep(r, sweep.Tridiag{}, nil, grain)
				})
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Makespan
			}
			b.ReportMetric(makespan*1e6, "virtual-µs")
		})
	}
}

// BenchmarkAblationCoefficientReduction compares tile→processor evaluation
// with the reduced matrix against the raw Figure 3 kernel output.
func BenchmarkAblationCoefficientReduction(b *testing.B) {
	mm, err := modmap.New(72, []int{6, 12, 12})
	if err != nil {
		b.Fatal(err)
	}
	raw := mm.RawMatrix()
	tiles := make([][]int, 0, 6*12*12)
	numutil.EachCoord(mm.B, func(t []int) { tiles = append(tiles, numutil.CopyInts(t)) })
	b.Run("reduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := 0
			for _, t := range tiles {
				s += mm.Proc(t)
			}
			if s == 0 {
				b.Fatal("degenerate")
			}
		}
	})
	b.Run("raw", func(b *testing.B) {
		vec := make([]int, 3)
		for i := 0; i < b.N; i++ {
			s := 0
			for _, t := range tiles {
				for r := 0; r < 3; r++ {
					acc := 0
					for k := 0; k < 3; k++ {
						acc += raw[r][k] * t[k]
					}
					vec[r] = numutil.EMod(acc, mm.Mod[r])
				}
				s += numutil.RankOf(vec, mm.Mod)
			}
			if s == 0 {
				b.Fatal("degenerate")
			}
		}
	})
}

// BenchmarkAblationNetworkModel contrasts the scalable interconnect with a
// fixed-bandwidth bus (the Section 3.1 footnote) on an SP step.
func BenchmarkAblationNetworkModel(b *testing.B) {
	eta := nas.ClassA.Eta
	for _, scaling := range []sim.BandwidthScaling{sim.ScalePerProcessor, sim.FixedBus} {
		name := "scalable"
		if scaling == sim.FixedBus {
			name = "bus"
		}
		b.Run(name, func(b *testing.B) {
			m, err := core.NewGeneralized(16, []int{4, 4, 4})
			if err != nil {
				b.Fatal(err)
			}
			env, err := dist.NewEnv(m, eta, dist.HandCoded())
			if err != nil {
				b.Fatal(err)
			}
			makespan := 0.0
			for i := 0; i < b.N; i++ {
				base := nas.Origin2000Machine(16)
				net := base.Net
				net.Scaling = scaling
				mach := sim.NewMachine(16, net, base.CPU)
				res, err := nas.Run(env, mach, 1, nil)
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Makespan
			}
			b.ReportMetric(makespan*1e3, "virtual-ms")
		})
	}
}

// nasMachine is a small Origin-like machine for the ablations.
func nasMachine(p int) *sim.Machine { return nas.Origin2000Machine(p) }

// BenchmarkExtensionBTvsSP runs the BT-vs-SP comparison (the extension
// workload with 5×5 block carries).
func BenchmarkExtensionBTvsSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.BTvsSP(9, []int{36, 36, 36}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if rows[1].Bytes <= rows[0].Bytes {
			b.Fatal("BT should move more bytes")
		}
	}
}

// BenchmarkMappingAlternatives generates the distinct legal mappings of one
// partitioning (the paper's "one particular assignment, out of a set of
// legal mappings").
func BenchmarkMappingAlternatives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		alts, err := modmap.Alternatives(16, []int{4, 4, 4}, 6)
		if err != nil {
			b.Fatal(err)
		}
		if len(alts) < 2 {
			b.Fatal("expected multiple alternatives")
		}
	}
}

// BenchmarkOptimalSearchScaling tracks the optimizer cost as p grows (the
// "complexity in p grows slowly" claim).
func BenchmarkOptimalSearchScaling(b *testing.B) {
	for _, p := range []int{64, 256, 720, 1000} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			obj := partition.UniformObjective(4)
			for i := 0; i < b.N; i++ {
				if _, err := partition.Optimal(p, 4, obj); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStrictDistributedSP runs the strict distributed-memory SP (real
// halo and carry payloads, private tile storage) — the fully MPI-faithful
// execution path.
func BenchmarkStrictDistributedSP(b *testing.B) {
	m, err := core.NewGeneralized(8, []int{4, 4, 2})
	if err != nil {
		b.Fatal(err)
	}
	env, err := dist.NewEnv(m, []int{24, 24, 24}, dist.HandCoded())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := dmem.RunSP(env, nasMachine(8), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealParallelADI measures WALL-CLOCK time of data-mode
// distributed ADI: the simulated ranks are goroutines doing real numeric
// work concurrently, so on a multicore host multipartitioning yields
// genuine wall-clock speedup here, not just virtual-time speedup (compare
// the p=1 and p=16 rows; on a single-core host the rows are flat).
func BenchmarkRealParallelADI(b *testing.B) {
	eta := []int{96, 96, 96}
	pb := adi.Problem{Eta: eta, Alpha: 0.3, Steps: 1}
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var gamma []int
			switch p {
			case 1:
				gamma = []int{1, 1, 1}
			case 4:
				gamma = []int{2, 2, 2}
			default:
				gamma = []int{4, 4, 4}
			}
			m, err := core.NewGeneralized(p, gamma)
			if err != nil {
				b.Fatal(err)
			}
			env, err := dist.NewEnv(m, eta, dist.HandCoded())
			if err != nil {
				b.Fatal(err)
			}
			cfg := adi.Config{Machine: nasMachine(p), Strategy: adi.Multipartition, Env: env}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				u := pb.InitialCondition()
				b.StartTimer()
				if _, err := adi.Run(pb, u, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// kernelBenchGrids builds a diagonally dominant random system in the
// solver's vec layout over an eta-shaped domain (band entries reaching
// outside a line along dim zeroed), or [a, x] for the recurrence.
func kernelBenchGrids(sv sweep.Solver, eta []int, dim int, rng *rand.Rand) []*grid.Grid {
	if _, ok := sv.(sweep.Recurrence); ok {
		a := grid.New(eta...)
		x := grid.New(eta...)
		a.FillFunc(func([]int) float64 { return rng.Float64()*1.6 - 0.8 })
		x.FillFunc(func([]int) float64 { return rng.Float64()*4 - 2 })
		return []*grid.Grid{a, x}
	}
	kl, ku := 1, 1
	if b, ok := sv.(sweep.Banded); ok {
		kl, ku = b.KL, b.KU
	}
	gs := make([]*grid.Grid, kl+ku+2)
	for i := range gs {
		gs[i] = grid.New(eta...)
	}
	n := eta[dim]
	for k := 1; k <= kl; k++ {
		k := k
		gs[k-1].FillFunc(func(idx []int) float64 {
			if idx[dim] < k {
				return 0
			}
			return rng.Float64() - 0.5
		})
	}
	gs[kl].FillFunc(func([]int) float64 { return 4 + float64(kl+ku) + rng.Float64() })
	for u := 1; u <= ku; u++ {
		u := u
		gs[kl+u].FillFunc(func(idx []int) float64 {
			if idx[dim] >= n-u {
				return 0
			}
			return rng.Float64() - 0.5
		})
	}
	gs[kl+ku+1].FillFunc(func([]int) float64 { return rng.Float64()*10 - 5 })
	return gs
}

// BenchmarkKernelPanels measures one full forward+backward sweep over every
// line of a 48³ domain for each kernel family: the scalar per-line oracle
// against the batched SoA panel path at several panel widths. This is the
// microbenchmark behind BENCH_kernels.json's kernels-wall suite.
func BenchmarkKernelPanels(b *testing.B) {
	eta := []int{48, 48, 48}
	dim := 0
	n := eta[dim]
	for _, sv := range []sweep.BatchSolver{sweep.Recurrence{}, sweep.Tridiag{}, sweep.NewPenta()} {
		rng := rand.New(rand.NewSource(17))
		gs := kernelBenchGrids(sv, eta, dim, rng)
		nv := len(gs)
		pristine := make([][]float64, nv)
		for v := range gs {
			pristine[v] = append([]float64(nil), gs[v].Data()...)
		}
		restore := func() {
			for v := range gs {
				copy(gs[v].Data(), pristine[v])
			}
		}
		lines := gs[0].AppendLines(gs[0].Bounds(), dim, nil)
		elements := int64(len(lines) * n)

		b.Run(fmt.Sprintf("%s/scalar", sv.Name()), func(b *testing.B) {
			var pan, hdr sweep.Workspace
			chunk := pan.Panels(nv, n)
			views := hdr.Views(nv)
			b.SetBytes(elements * 8 * int64(nv))
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				restore()
				b.StartTimer()
				for _, l := range lines {
					for v := range gs {
						gs[v].Gather(l, chunk[v][:n])
						views[v] = chunk[v][:n]
					}
					sv.Forward(views, nil, nil)
					sv.Backward(views, nil, nil)
					for v := range gs {
						gs[v].Scatter(l, chunk[v][:n])
					}
				}
			}
		})
		for _, batch := range []int{1, 8, 32, 64} {
			b.Run(fmt.Sprintf("%s/batch=%d", sv.Name(), batch), func(b *testing.B) {
				var ws sweep.Workspace
				b.SetBytes(elements * 8 * int64(nv))
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					restore()
					b.StartTimer()
					for s0 := 0; s0 < len(lines); s0 += batch {
						nb := min(batch, len(lines)-s0)
						panels := ws.Panels(nv, nb*n)
						blk := lines[s0 : s0+nb]
						for v := range gs {
							gs[v].GatherLines(blk, panels[v])
						}
						sv.ForwardBatch(panels, nb, nil, nil)
						sv.BackwardBatch(panels, nb, nil, nil)
						for v := range gs {
							gs[v].ScatterLines(blk, panels[v])
						}
					}
				}
			})
		}
	}
}

// BenchmarkMultiSweepSteadyState measures a warmed data-mode
// multipartitioned pentadiagonal sweep (along the dimension the system is
// built for) — the allocation figure is the executor's true steady state
// (pooled payloads, reused arenas, cached geometry; what remains is
// Machine.Run's fixed per-run bookkeeping).
func BenchmarkMultiSweepSteadyState(b *testing.B) {
	p, gamma, eta := 8, []int{4, 4, 2}, []int{32, 32, 32}
	m, err := core.NewGeneralized(p, gamma)
	if err != nil {
		b.Fatal(err)
	}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	sv := sweep.NewPenta()
	gs := kernelBenchGrids(sv, eta, 0, rng)
	pristine := make([][]float64, len(gs))
	for v := range gs {
		pristine[v] = append([]float64(nil), gs[v].Data()...)
	}
	ms, err := dist.NewMultiSweep(env, sv, gs)
	if err != nil {
		b.Fatal(err)
	}
	mach := nasMachine(p)
	run := func() {
		for v := range gs {
			copy(gs[v].Data(), pristine[v])
		}
		if _, err := mach.Run(func(r *sim.Rank) { ms.Run(r, 0) }); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm arenas, geometry caches, and pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkVerifyProperties measures the exhaustive balance+neighbor check
// used throughout the test suite.
func BenchmarkVerifyProperties(b *testing.B) {
	m, err := core.NewGeneralized(30, []int{10, 15, 6})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := m.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

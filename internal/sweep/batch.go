package sweep

import "fmt"

// DefaultBatchLines is the panel width executors use when the caller does
// not pick one: wide enough that the stride-1 inner loop across lines hides
// the division latency of the eliminations, small enough that a panel of
// NumVecs chunk-length slices stays in L2.
const DefaultBatchLines = 32

// BatchSolver is implemented by solvers that can process a panel of nb
// lines at once. The panel layout is structure-of-arrays: panels[v] holds
// vector v of every line, element k of line b at panels[v][k*nb+b], so the
// inner loop over lines is contiguous. Carries are line-major — line b's
// carry occupies carryIn[b*CarryLen:(b+1)*CarryLen] — which is exactly the
// wire format the distributed executors ship between neighbor tiles, so a
// batched pass can write its outgoing carries straight into the message
// payload.
//
// Batched passes MUST be bit-identical to running the scalar pass on each
// line: the committed BENCH baselines are gated at zero tolerance. The
// implementations below guarantee this by evaluating the same expressions
// in the same per-line order, reading running state (previous eliminated
// rows, previous solution values) back from the rows already stored in the
// panel instead of from scalar loop-carried variables.
type BatchSolver interface {
	Solver
	// ForwardBatch runs the forward pass on a panel of nb lines of equal
	// length. carryIn is nil for the leftmost chunk; carryOut, when
	// non-nil, receives nb line-major carries of ForwardCarryLen each.
	ForwardBatch(panels [][]float64, nb int, carryIn, carryOut []float64)
	// BackwardBatch is the backward-pass analogue (carries of
	// BackwardCarryLen per line; carryIn nil for the rightmost chunk).
	BackwardBatch(panels [][]float64, nb int, carryIn, carryOut []float64)
}

// batchRows returns the chunk length of a panel and validates divisibility.
func batchRows(panel []float64, nb int) int {
	if nb <= 0 {
		panic(fmt.Sprintf("sweep: batch of %d lines", nb))
	}
	if len(panel)%nb != 0 {
		panic(fmt.Sprintf("sweep: panel length %d not a multiple of batch %d", len(panel), nb))
	}
	return len(panel) / nb
}

// --- Recurrence -----------------------------------------------------------

// ForwardBatch implements BatchSolver. The previous solution value is read
// from the row stored in the iteration before, so each line sees exactly
// the scalar recurrence prev = a·prev + b.
func (Recurrence) ForwardBatch(panels [][]float64, nb int, carryIn, carryOut []float64) {
	a, x := panels[0], panels[1]
	n := batchRows(x, nb)
	if n > 0 {
		if len(carryIn) > 0 {
			for b := 0; b < nb; b++ {
				x[b] = a[b]*carryIn[b] + x[b]
			}
		} else {
			for b := 0; b < nb; b++ {
				x[b] = a[b]*0.0 + x[b]
			}
		}
		for k := 1; k < n; k++ {
			base, prev := k*nb, (k-1)*nb
			for b := 0; b < nb; b++ {
				x[base+b] = a[base+b]*x[prev+b] + x[base+b]
			}
		}
	}
	if len(carryOut) > 0 {
		last := (n - 1) * nb
		for b := 0; b < nb; b++ {
			if n > 0 {
				carryOut[b] = x[last+b]
			} else if len(carryIn) > 0 {
				carryOut[b] = carryIn[b]
			} else {
				carryOut[b] = 0
			}
		}
	}
}

// BackwardBatch implements BatchSolver (no backward pass).
func (Recurrence) BackwardBatch(panels [][]float64, nb int, carryIn, carryOut []float64) {
}

// --- Tridiag --------------------------------------------------------------

// ForwardBatch implements BatchSolver. The Thomas running values (c′, d′)
// of line b are read back from upper/rhs of the previous panel row — the
// scalar pass stores them there anyway — so the arithmetic per line is the
// scalar sequence verbatim.
func (Tridiag) ForwardBatch(panels [][]float64, nb int, carryIn, carryOut []float64) {
	lower, diag, upper, rhs := panels[0], panels[1], panels[2], panels[3]
	n := batchRows(diag, nb)
	for k := 0; k < n; k++ {
		base := k * nb
		prev := base - nb
		for b := 0; b < nb; b++ {
			var cPrev, dPrev float64
			if k > 0 {
				cPrev, dPrev = upper[prev+b], rhs[prev+b]
			} else if len(carryIn) > 0 {
				cPrev, dPrev = carryIn[2*b], carryIn[2*b+1]
			}
			den := diag[base+b] - lower[base+b]*cPrev
			if den == 0 {
				panic("sweep: Tridiag: zero pivot (system not elimination-stable)")
			}
			upper[base+b] = upper[base+b] / den
			rhs[base+b] = (rhs[base+b] - lower[base+b]*dPrev) / den
		}
	}
	if len(carryOut) > 0 {
		last := (n - 1) * nb
		for b := 0; b < nb; b++ {
			if n > 0 {
				carryOut[2*b], carryOut[2*b+1] = upper[last+b], rhs[last+b]
			} else if len(carryIn) > 0 {
				carryOut[2*b], carryOut[2*b+1] = carryIn[2*b], carryIn[2*b+1]
			} else {
				carryOut[2*b], carryOut[2*b+1] = 0, 0
			}
		}
	}
}

// BackwardBatch implements BatchSolver: back-substitution reading x of the
// row to the right from the already-solved panel row.
func (Tridiag) BackwardBatch(panels [][]float64, nb int, carryIn, carryOut []float64) {
	upper, rhs := panels[2], panels[3]
	n := batchRows(rhs, nb)
	if n > 0 {
		last := (n - 1) * nb
		if len(carryIn) > 0 {
			for b := 0; b < nb; b++ {
				rhs[last+b] -= upper[last+b] * carryIn[b]
			}
		}
		for k := n - 2; k >= 0; k-- {
			base, next := k*nb, (k+1)*nb
			for b := 0; b < nb; b++ {
				rhs[base+b] -= upper[base+b] * rhs[next+b]
			}
		}
	}
	if len(carryOut) > 0 {
		for b := 0; b < nb; b++ {
			if n > 0 {
				carryOut[b] = rhs[b]
			} else if len(carryIn) > 0 {
				carryOut[b] = carryIn[b]
			} else {
				carryOut[b] = 0
			}
		}
	}
}

// --- Banded ---------------------------------------------------------------

// ForwardBatch implements BatchSolver. Where the scalar pass keeps a
// sliding window of the last KL eliminated rows, the batched pass reads a
// predecessor row directly: from the panel when it lies inside the chunk
// (the scalar pass stores eliminated rows in place, so the values are the
// same), or from the line-major carryIn when it lies before the chunk
// (carry row j holds eliminated row j−KL relative to the chunk start,
// oldest first). The elimination updates the current row's coefficients in
// place, which matches the scalar active-row updates position for
// position.
func (bd Banded) ForwardBatch(panels [][]float64, nb int, carryIn, carryOut []float64) {
	kl, ku := bd.KL, bd.KU
	diag := panels[kl]
	rhs := panels[kl+ku+1]
	n := batchRows(diag, nb)
	rl := bd.rowLen()
	fcl := bd.ForwardCarryLen()
	if len(carryIn) != 0 && len(carryIn) != nb*fcl {
		panic(fmt.Sprintf("sweep: Banded.ForwardBatch: carryIn length %d, want 0 or %d", len(carryIn), nb*fcl))
	}

	for row := 0; row < n; row++ {
		base := row * nb
		for b := 0; b < nb; b++ {
			r := rhs[base+b]
			// Eliminate lower-band coefficients, farthest predecessor
			// first. Eliminating x[row−k] updates the coefficients of
			// x[row−k+1] … x[row−k+ku], some of which are nearer lower
			// bands — reading each coefficient fresh from its panel picks
			// up those updates exactly like the scalar active row does.
			for k := kl; k >= 1; k-- {
				c := panels[k-1][base+b]
				if c == 0 {
					continue
				}
				pr := row - k // predecessor row, relative to the chunk
				var pd, pu, prhs float64
				var pb int
				var carry []float64
				if pr >= 0 {
					pb = pr*nb + b
					pd = diag[pb]
				} else {
					if len(carryIn) == 0 {
						panic("sweep: Banded.Forward: nonzero lower-band coefficient reaches before the start of the line")
					}
					carry = carryIn[b*fcl+(kl+pr)*rl:]
					pd = carry[0]
				}
				if pd == 0 {
					panic("sweep: Banded.Forward: zero pivot (system not elimination-stable)")
				}
				f := c / pd
				panels[k-1][base+b] = 0
				for t := 1; t <= ku; t++ {
					if carry == nil {
						pu = panels[kl+t][pb]
					} else {
						pu = carry[t]
					}
					// Coefficient of x[row−k+t]: a nearer lower band when
					// t < k, the diagonal when t == k, an upper band when
					// t > k.
					switch {
					case t < k:
						panels[k-t-1][base+b] -= f * pu
					case t == k:
						diag[base+b] -= f * pu
					default:
						panels[kl+t-k][base+b] -= f * pu
					}
				}
				if carry == nil {
					prhs = rhs[pb]
				} else {
					prhs = carry[ku+1]
				}
				r -= f * prhs
			}
			for k := 1; k <= kl; k++ {
				panels[k-1][base+b] = 0
			}
			rhs[base+b] = r
		}
	}

	if len(carryOut) > 0 {
		if len(carryOut) != nb*fcl {
			panic("sweep: Banded.Forward: carryOut length mismatch")
		}
		// Carry row j is eliminated row n−kl+j: inside the chunk read it
		// from the panel, before the chunk pass the incoming carry
		// through, and when the line itself is shorter than kl emit zero
		// rows (never referenced — matching lower coefficients are zero).
		for b := 0; b < nb; b++ {
			for j := 0; j < kl; j++ {
				w := carryOut[b*fcl+j*rl : b*fcl+j*rl+rl]
				idx := n - kl + j
				switch {
				case idx >= 0:
					pb := idx*nb + b
					w[0] = diag[pb]
					for t := 1; t <= ku; t++ {
						w[t] = panels[kl+t][pb]
					}
					w[ku+1] = rhs[pb]
				case len(carryIn) > 0:
					copy(w, carryIn[b*fcl+(idx+kl)*rl:b*fcl+(idx+kl)*rl+rl])
				default:
					for t := range w {
						w[t] = 0
					}
				}
			}
		}
	}
}

// BackwardBatch implements BatchSolver: back-substitution reading the KU
// solution values to the right from already-solved panel rows, or from the
// line-major carryIn (nearest first) past the chunk end.
func (bd Banded) BackwardBatch(panels [][]float64, nb int, carryIn, carryOut []float64) {
	kl, ku := bd.KL, bd.KU
	diag := panels[kl]
	rhs := panels[kl+ku+1]
	n := batchRows(diag, nb)
	if len(carryIn) != 0 && len(carryIn) != nb*ku {
		panic(fmt.Sprintf("sweep: Banded.BackwardBatch: carryIn length %d, want 0 or %d", len(carryIn), nb*ku))
	}

	for row := n - 1; row >= 0; row-- {
		base := row * nb
		for b := 0; b < nb; b++ {
			r := rhs[base+b]
			for t := 1; t <= ku; t++ {
				u := panels[kl+t][base+b]
				if u == 0 {
					continue
				}
				nr := row + t
				if nr < n {
					r -= u * rhs[nr*nb+b]
				} else {
					if len(carryIn) == 0 {
						panic("sweep: Banded.Backward: nonzero upper-band coefficient reaches past the end of the line")
					}
					r -= u * carryIn[b*ku+(nr-n)]
				}
			}
			d := diag[base+b]
			if d == 0 {
				panic("sweep: Banded.Backward: zero pivot")
			}
			rhs[base+b] = r / d
		}
	}

	if len(carryOut) > 0 {
		if len(carryOut) != nb*ku {
			panic("sweep: Banded.Backward: carryOut length mismatch")
		}
		for b := 0; b < nb; b++ {
			for t := 0; t < ku; t++ {
				switch {
				case t < n:
					carryOut[b*ku+t] = rhs[t*nb+b]
				case len(carryIn) > 0:
					carryOut[b*ku+t] = carryIn[b*ku+(t-n)]
				default:
					carryOut[b*ku+t] = 0
				}
			}
		}
	}
}

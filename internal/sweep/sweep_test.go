package sweep

import (
	"math"
	"math/rand"
	"testing"
)

const tol = 1e-9

// randomCuts returns 0–3 sorted interior cut points of a length-n line.
func randomCuts(rng *rand.Rand, n int) []int {
	k := rng.Intn(4)
	if k > n-1 {
		k = n - 1
	}
	seen := map[int]bool{}
	var cuts []int
	for len(cuts) < k {
		c := 1 + rng.Intn(n-1)
		if !seen[c] {
			seen[c] = true
			cuts = append(cuts, c)
		}
	}
	for i := range cuts {
		for j := i + 1; j < len(cuts); j++ {
			if cuts[j] < cuts[i] {
				cuts[i], cuts[j] = cuts[j], cuts[i]
			}
		}
	}
	return cuts
}

func TestRecurrenceChunkedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		for k := range a {
			a[k] = rng.Float64()*1.6 - 0.8
			b[k] = rng.Float64()*4 - 2
		}
		want := SolveRecurrence(a, b, 0)
		x := append([]float64(nil), b...)
		ChunkedSolve(Recurrence{}, [][]float64{append([]float64(nil), a...), x}, randomCuts(rng, n))
		for k := range x {
			if math.Abs(x[k]-want[k]) > tol {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, k, x[k], want[k])
			}
		}
	}
}

func TestRecurrenceEveryPointCut(t *testing.T) {
	// Cut between every pair of elements: carries do all the work.
	n := 12
	a := make([]float64, n)
	b := make([]float64, n)
	for k := range a {
		a[k] = 0.5
		b[k] = 1
	}
	want := SolveRecurrence(a, b, 0)
	cuts := make([]int, 0, n-1)
	for c := 1; c < n; c++ {
		cuts = append(cuts, c)
	}
	x := append([]float64(nil), b...)
	ChunkedSolve(Recurrence{}, [][]float64{a, x}, cuts)
	for k := range x {
		if math.Abs(x[k]-want[k]) > tol {
			t.Fatalf("x[%d] = %g, want %g", k, x[k], want[k])
		}
	}
}

// randTridiag builds a random diagonally dominant tridiagonal system.
func randTridiag(rng *rand.Rand, n int) (lower, diag, upper, rhs []float64) {
	lower = make([]float64, n)
	diag = make([]float64, n)
	upper = make([]float64, n)
	rhs = make([]float64, n)
	for k := 0; k < n; k++ {
		if k > 0 {
			lower[k] = rng.Float64()*2 - 1
		}
		if k < n-1 {
			upper[k] = rng.Float64()*2 - 1
		}
		diag[k] = 4 + rng.Float64()
		rhs[k] = rng.Float64()*10 - 5
	}
	return
}

func denseFromTridiag(lower, diag, upper []float64) [][]float64 {
	n := len(diag)
	A := make([][]float64, n)
	for i := range A {
		A[i] = make([]float64, n)
		A[i][i] = diag[i]
		if i > 0 {
			A[i][i-1] = lower[i]
		}
		if i < n-1 {
			A[i][i+1] = upper[i]
		}
	}
	return A
}

func TestSolveTridiagonalAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(30)
		lower, diag, upper, rhs := randTridiag(rng, n)
		want := SolveDense(denseFromTridiag(lower, diag, upper), rhs)
		got := SolveTridiagonal(lower, diag, upper, rhs)
		for k := range got {
			if math.Abs(got[k]-want[k]) > tol {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, k, got[k], want[k])
			}
		}
	}
}

func TestTridiagChunkedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(40)
		lower, diag, upper, rhs := randTridiag(rng, n)
		want := SolveDense(denseFromTridiag(lower, diag, upper), rhs)
		vecs := [][]float64{
			append([]float64(nil), lower...),
			append([]float64(nil), diag...),
			append([]float64(nil), upper...),
			append([]float64(nil), rhs...),
		}
		ChunkedSolve(Tridiag{}, vecs, randomCuts(rng, n))
		for k := range want {
			if math.Abs(vecs[3][k]-want[k]) > tol {
				t.Fatalf("trial %d (n=%d): x[%d] = %g, want %g", trial, n, k, vecs[3][k], want[k])
			}
		}
	}
}

// randBanded builds a random diagonally dominant banded system in the
// package's vec layout and the equivalent dense matrix.
func randBanded(rng *rand.Rand, n, kl, ku int) (vecs [][]float64, A [][]float64, rhs []float64) {
	vecs = make([][]float64, kl+ku+2)
	for v := range vecs {
		vecs[v] = make([]float64, n)
	}
	A = make([][]float64, n)
	rhs = make([]float64, n)
	for i := range A {
		A[i] = make([]float64, n)
	}
	for row := 0; row < n; row++ {
		sum := 0.0
		for k := 1; k <= kl; k++ {
			if row-k >= 0 {
				c := rng.Float64()*2 - 1
				vecs[k-1][row] = c
				A[row][row-k] = c
				sum += math.Abs(c)
			}
		}
		for t := 1; t <= ku; t++ {
			if row+t < n {
				c := rng.Float64()*2 - 1
				vecs[kl+t][row] = c
				A[row][row+t] = c
				sum += math.Abs(c)
			}
		}
		d := sum + 1 + rng.Float64()
		vecs[kl][row] = d
		A[row][row] = d
		r := rng.Float64()*10 - 5
		vecs[kl+ku+1][row] = r
		rhs[row] = r
	}
	return
}

func TestBandedWholeLineMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, band := range []Banded{{1, 1}, {2, 2}, {1, 2}, {2, 1}, {3, 3}} {
		for trial := 0; trial < 40; trial++ {
			n := band.KL + band.KU + 1 + rng.Intn(30)
			vecs, A, rhs := randBanded(rng, n, band.KL, band.KU)
			want := SolveDense(A, rhs)
			ChunkedSolve(band, vecs, nil)
			x := vecs[band.KL+band.KU+1]
			for k := range want {
				if math.Abs(x[k]-want[k]) > tol {
					t.Fatalf("band %v trial %d: x[%d] = %g, want %g", band, trial, k, x[k], want[k])
				}
			}
		}
	}
}

func TestBandedChunkedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, band := range []Banded{{1, 1}, {2, 2}, {2, 1}, {1, 2}} {
		for trial := 0; trial < 120; trial++ {
			n := 4 + rng.Intn(40)
			vecs, A, rhs := randBanded(rng, n, band.KL, band.KU)
			want := SolveDense(A, rhs)
			ChunkedSolve(band, vecs, randomCuts(rng, n))
			x := vecs[band.KL+band.KU+1]
			for k := range want {
				if math.Abs(x[k]-want[k]) > tol {
					t.Fatalf("band %v trial %d (n=%d): x[%d] = %g, want %g", band, trial, n, k, x[k], want[k])
				}
			}
		}
	}
}

func TestBandedTinyChunks(t *testing.T) {
	// Chunks of size 1 everywhere: shorter than KL and KU, exercising the
	// carry-window padding paths.
	rng := rand.New(rand.NewSource(61))
	band := NewPenta()
	n := 9
	vecs, A, rhs := randBanded(rng, n, band.KL, band.KU)
	want := SolveDense(A, rhs)
	cuts := []int{1, 2, 3, 4, 5, 6, 7, 8}
	ChunkedSolve(band, vecs, cuts)
	x := vecs[band.KL+band.KU+1]
	for k := range want {
		if math.Abs(x[k]-want[k]) > tol {
			t.Fatalf("x[%d] = %g, want %g", k, x[k], want[k])
		}
	}
}

func TestBandedMatchesTridiag(t *testing.T) {
	// Banded(1,1) and Tridiag must agree.
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(25)
		lower, diag, upper, rhs := randTridiag(rng, n)
		triVecs := [][]float64{
			append([]float64(nil), lower...),
			append([]float64(nil), diag...),
			append([]float64(nil), upper...),
			append([]float64(nil), rhs...),
		}
		bandVecs := [][]float64{
			append([]float64(nil), lower...),
			append([]float64(nil), diag...),
			append([]float64(nil), upper...),
			append([]float64(nil), rhs...),
		}
		cuts := randomCuts(rng, n)
		ChunkedSolve(Tridiag{}, triVecs, cuts)
		ChunkedSolve(Banded{1, 1}, bandVecs, cuts)
		for k := 0; k < n; k++ {
			if math.Abs(triVecs[3][k]-bandVecs[3][k]) > tol {
				t.Fatalf("trial %d: tridiag %g vs banded %g at %d", trial, triVecs[3][k], bandVecs[3][k], k)
			}
		}
	}
}

func TestSolverMetadata(t *testing.T) {
	cases := []struct {
		s        Solver
		nv, f, b int
	}{
		{Recurrence{}, 2, 1, 0},
		{Tridiag{}, 4, 2, 1},
		{Banded{2, 2}, 6, 8, 2},
		{Banded{1, 1}, 4, 3, 1},
	}
	for _, c := range cases {
		if c.s.NumVecs() != c.nv || c.s.ForwardCarryLen() != c.f || c.s.BackwardCarryLen() != c.b {
			t.Errorf("%s: metadata (%d, %d, %d), want (%d, %d, %d)", c.s.Name(),
				c.s.NumVecs(), c.s.ForwardCarryLen(), c.s.BackwardCarryLen(), c.nv, c.f, c.b)
		}
		if c.s.FlopsPerElement() <= 0 {
			t.Errorf("%s: FlopsPerElement must be positive", c.s.Name())
		}
	}
}

func TestSolveDenseOracle(t *testing.T) {
	// Known 2×2 system.
	x := SolveDense([][]float64{{2, 1}, {1, 3}}, []float64{5, 10})
	if math.Abs(x[0]-1) > tol || math.Abs(x[1]-3) > tol {
		t.Errorf("SolveDense = %v, want [1 3]", x)
	}
	// Requires pivoting.
	x = SolveDense([][]float64{{0, 1}, {1, 0}}, []float64{2, 3})
	if math.Abs(x[0]-3) > tol || math.Abs(x[1]-2) > tol {
		t.Errorf("SolveDense with pivot = %v, want [3 2]", x)
	}
}

func TestTridiagZeroPivotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero pivot should panic")
		}
	}()
	vecs := [][]float64{{0, 1}, {0, 0}, {0, 0}, {1, 1}} // diag[0] = 0
	Tridiag{}.Forward(vecs, nil, nil)
}

func BenchmarkTridiagForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1024
	lower, diag, upper, rhs := randTridiag(rng, n)
	vecs := [][]float64{lower, diag, upper, rhs}
	work := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range vecs {
			copy(work[v], vecs[v])
		}
		ChunkedSolve(Tridiag{}, work, nil)
	}
}

func BenchmarkPentaForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 1024
	band := NewPenta()
	vecs, _, _ := randBanded(rng, n, band.KL, band.KU)
	work := make([][]float64, len(vecs))
	for v := range work {
		work[v] = make([]float64, n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range vecs {
			copy(work[v], vecs[v])
		}
		ChunkedSolve(band, work, nil)
	}
}

package sweep

// Periodic (cyclic) tridiagonal systems arise in ADI integration with
// periodic boundary conditions: row 0 couples to x[n−1] and row n−1 back to
// x[0]. SolvePeriodicTridiagonal handles them with the Sherman–Morrison
// rank-one correction: the cyclic matrix A is written as A′ + u·vᵀ with A′
// strictly tridiagonal, so two ordinary Thomas solves and a scalar
// correction give the answer.
//
// The solver is whole-line (it needs both line ends); in a multipartitioned
// sweep the non-periodic solves chunk as usual and the correction needs one
// extra end-to-end exchange — this implementation provides the serial /
// local-sweep building block.

// SolvePeriodicTridiagonal solves the cyclic system
//
//	lower[k]·x[k−1] + diag[k]·x[k] + upper[k]·x[k+1] = rhs[k]  (indices mod n)
//
// where lower[0] is the coupling of row 0 to x[n−1] and upper[n−1] the
// coupling of row n−1 to x[0]. Inputs are not modified; n ≥ 3 is required.
// The system must remain elimination-stable after the corner modification
// (diagonally dominant systems are safe).
func SolvePeriodicTridiagonal(lower, diag, upper, rhs []float64) []float64 {
	n := len(diag)
	if n < 3 {
		panic("sweep: SolvePeriodicTridiagonal needs n ≥ 3")
	}
	a0 := lower[0]   // row 0 → x[n−1]
	cn := upper[n-1] // row n−1 → x[0]
	if a0 == 0 && cn == 0 {
		return SolveTridiagonal(lower, diag, upper, rhs)
	}

	// A = A′ + u·vᵀ with u = (γ, 0, …, cn)ᵀ, v = (1, 0, …, a0/γ)ᵀ.
	gamma := -diag[0] // any nonzero value keeping A′ stable works; −b₀ is customary
	if gamma == 0 {
		gamma = 1
	}
	modDiag := make([]float64, n)
	copy(modDiag, diag)
	modDiag[0] -= gamma
	modDiag[n-1] -= cn * a0 / gamma

	modLower := make([]float64, n)
	copy(modLower, lower)
	modLower[0] = 0
	modUpper := make([]float64, n)
	copy(modUpper, upper)
	modUpper[n-1] = 0

	y := SolveTridiagonal(modLower, modDiag, modUpper, rhs)
	u := make([]float64, n)
	u[0] = gamma
	u[n-1] = cn
	z := SolveTridiagonal(modLower, modDiag, modUpper, u)

	// x = y − (v·y)/(1 + v·z)·z with v = (1, 0, …, a0/γ).
	vy := y[0] + a0/gamma*y[n-1]
	vz := z[0] + a0/gamma*z[n-1]
	den := 1 + vz
	if den == 0 {
		panic("sweep: SolvePeriodicTridiagonal: singular rank-one correction")
	}
	f := vy / den
	x := make([]float64, n)
	for k := range x {
		x[k] = y[k] - f*z[k]
	}
	return x
}

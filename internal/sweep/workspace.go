package sweep

// Workspace is a reusable per-rank (or per-goroutine) arena for the
// scratch a sweep executor needs: SoA panels, chunk view headers, carry
// buffers and chunk bounds. Buffers grow monotonically and are reused
// across calls, so steady-state sweep iterations perform no heap
// allocations. A Workspace is NOT safe for concurrent use; executors keep
// one per rank.
type Workspace struct {
	panels         [][]float64
	views          [][]float64
	carryA, carryB []float64
	bounds         []int
}

// Panels returns nv panel slices of elems elements each, reusing prior
// capacity. Contents are unspecified; callers overwrite them (GatherLines
// fills every element).
func (w *Workspace) Panels(nv, elems int) [][]float64 {
	if cap(w.panels) < nv {
		w.panels = append(w.panels[:cap(w.panels)], make([][]float64, nv-cap(w.panels))...)
	}
	w.panels = w.panels[:nv]
	for v := range w.panels {
		if cap(w.panels[v]) < elems {
			w.panels[v] = make([]float64, elems)
		}
		w.panels[v] = w.panels[v][:elems]
	}
	return w.panels
}

// Views returns nv slice headers for chunk views (contents overwritten by
// the caller), reusing prior capacity.
func (w *Workspace) Views(nv int) [][]float64 {
	if cap(w.views) < nv {
		w.views = make([][]float64, nv)
	}
	return w.views[:nv]
}

// CarryPair returns two carry buffers of n elements each (the in/out pair
// a chunk loop swaps), reusing prior capacity.
func (w *Workspace) CarryPair(n int) (a, b []float64) {
	if cap(w.carryA) < n {
		w.carryA = make([]float64, n)
	}
	if cap(w.carryB) < n {
		w.carryB = make([]float64, n)
	}
	return w.carryA[:n], w.carryB[:n]
}

// Bounds returns [0, cuts..., n] reusing prior capacity.
func (w *Workspace) Bounds(cuts []int, n int) []int {
	need := len(cuts) + 2
	if cap(w.bounds) < need {
		w.bounds = make([]int, 0, need)
	}
	w.bounds = w.bounds[:0]
	w.bounds = append(w.bounds, 0)
	w.bounds = append(w.bounds, cuts...)
	w.bounds = append(w.bounds, n)
	return w.bounds
}

// ChunkedSolveWS is ChunkedSolve with caller-provided scratch: zero heap
// allocations once ws has warmed up. Results are identical to ChunkedSolve
// (same Forward/Backward call sequence on the same views).
func ChunkedSolveWS(s Solver, vecs [][]float64, cuts []int, ws *Workspace) {
	n := len(vecs[0])
	bounds := ws.Bounds(cuts, n)
	nv := len(vecs)
	chunk := ws.Views(nv)

	fLen := s.ForwardCarryLen()
	var cIn, cOut []float64
	if fLen > 0 {
		cIn, cOut = ws.CarryPair(fLen)
	}
	first := true
	for c := 0; c+1 < len(bounds); c++ {
		lo, hi := bounds[c], bounds[c+1]
		for v := 0; v < nv; v++ {
			chunk[v] = vecs[v][lo:hi]
		}
		if first {
			s.Forward(chunk, nil, cOut)
			first = false
		} else {
			s.Forward(chunk, cIn, cOut)
		}
		cIn, cOut = cOut, cIn
	}

	bLen := s.BackwardCarryLen()
	if bLen == 0 {
		return
	}
	bIn, bOut := ws.CarryPair(bLen)
	first = true
	for c := len(bounds) - 2; c >= 0; c-- {
		lo, hi := bounds[c], bounds[c+1]
		for v := 0; v < nv; v++ {
			chunk[v] = vecs[v][lo:hi]
		}
		if first {
			s.Backward(chunk, nil, bOut)
			first = false
		} else {
			s.Backward(chunk, bIn, bOut)
		}
		bIn, bOut = bOut, bIn
	}
}

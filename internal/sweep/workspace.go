package sweep

// WorkspaceStats counts arena traffic: Gets is the number of buffer
// acquisitions served (one per Panels/Views/CarryPair/Bounds call), Hits
// the subset satisfied entirely from existing capacity, with no heap
// allocation. In steady state every acquisition is a hit.
type WorkspaceStats struct {
	Gets int64
	Hits int64
}

// HitRate is Hits/Gets, or 0 for an unused workspace (never NaN).
func (s WorkspaceStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Workspace is a reusable per-rank (or per-goroutine) arena for the
// scratch a sweep executor needs: SoA panels, chunk view headers, carry
// buffers and chunk bounds. Buffers grow monotonically and are reused
// across calls, so steady-state sweep iterations perform no heap
// allocations. A Workspace is NOT safe for concurrent use; executors keep
// one per rank.
type Workspace struct {
	panels         [][]float64
	views          [][]float64
	carryA, carryB []float64
	bounds         []int
	stats          WorkspaceStats
}

// Stats reports cumulative acquisition counts since the workspace was
// created (or since ResetStats).
func (w *Workspace) Stats() WorkspaceStats { return w.stats }

// ResetStats zeroes the acquisition counters without releasing buffers,
// so a warmed-up workspace can be measured from a steady-state baseline.
func (w *Workspace) ResetStats() { w.stats = WorkspaceStats{} }

// Panels returns nv panel slices of elems elements each, reusing prior
// capacity. Contents are unspecified; callers overwrite them (GatherLines
// fills every element).
func (w *Workspace) Panels(nv, elems int) [][]float64 {
	w.stats.Gets++
	hit := true
	if cap(w.panels) < nv {
		w.panels = append(w.panels[:cap(w.panels)], make([][]float64, nv-cap(w.panels))...)
		hit = false
	}
	w.panels = w.panels[:nv]
	for v := range w.panels {
		if cap(w.panels[v]) < elems {
			w.panels[v] = make([]float64, elems)
			hit = false
		}
		w.panels[v] = w.panels[v][:elems]
	}
	if hit {
		w.stats.Hits++
	}
	return w.panels
}

// Views returns nv slice headers for chunk views (contents overwritten by
// the caller), reusing prior capacity.
func (w *Workspace) Views(nv int) [][]float64 {
	w.stats.Gets++
	if cap(w.views) < nv {
		w.views = make([][]float64, nv)
	} else {
		w.stats.Hits++
	}
	return w.views[:nv]
}

// CarryPair returns two carry buffers of n elements each (the in/out pair
// a chunk loop swaps), reusing prior capacity.
func (w *Workspace) CarryPair(n int) (a, b []float64) {
	w.stats.Gets++
	hit := true
	if cap(w.carryA) < n {
		w.carryA = make([]float64, n)
		hit = false
	}
	if cap(w.carryB) < n {
		w.carryB = make([]float64, n)
		hit = false
	}
	if hit {
		w.stats.Hits++
	}
	return w.carryA[:n], w.carryB[:n]
}

// Bounds returns [0, cuts..., n] reusing prior capacity.
func (w *Workspace) Bounds(cuts []int, n int) []int {
	w.stats.Gets++
	need := len(cuts) + 2
	if cap(w.bounds) < need {
		w.bounds = make([]int, 0, need)
	} else {
		w.stats.Hits++
	}
	w.bounds = w.bounds[:0]
	w.bounds = append(w.bounds, 0)
	w.bounds = append(w.bounds, cuts...)
	w.bounds = append(w.bounds, n)
	return w.bounds
}

// ChunkedSolveWS is ChunkedSolve with caller-provided scratch: zero heap
// allocations once ws has warmed up. Results are identical to ChunkedSolve
// (same Forward/Backward call sequence on the same views).
func ChunkedSolveWS(s Solver, vecs [][]float64, cuts []int, ws *Workspace) {
	n := len(vecs[0])
	bounds := ws.Bounds(cuts, n)
	nv := len(vecs)
	chunk := ws.Views(nv)

	fLen := s.ForwardCarryLen()
	var cIn, cOut []float64
	if fLen > 0 {
		cIn, cOut = ws.CarryPair(fLen)
	}
	first := true
	for c := 0; c+1 < len(bounds); c++ {
		lo, hi := bounds[c], bounds[c+1]
		for v := 0; v < nv; v++ {
			chunk[v] = vecs[v][lo:hi]
		}
		if first {
			s.Forward(chunk, nil, cOut)
			first = false
		} else {
			s.Forward(chunk, cIn, cOut)
		}
		cIn, cOut = cOut, cIn
	}

	bLen := s.BackwardCarryLen()
	if bLen == 0 {
		return
	}
	bIn, bOut := ws.CarryPair(bLen)
	first = true
	for c := len(bounds) - 2; c >= 0; c-- {
		lo, hi := bounds[c], bounds[c+1]
		for v := 0; v < nv; v++ {
			chunk[v] = vecs[v][lo:hi]
		}
		if first {
			s.Backward(chunk, nil, bOut)
			first = false
		} else {
			s.Backward(chunk, bIn, bOut)
		}
		bIn, bOut = bOut, bIn
	}
}

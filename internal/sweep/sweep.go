// Package sweep implements the 1-D recurrence solvers at the heart of
// line-sweep computations (ADI integration, NAS SP), in *partitioned* form:
// a line of n unknowns may be cut into chunks living on different tiles, and
// each solver processes one chunk given a small carry from the previous
// chunk, producing the carry for the next. This is exactly the per-phase
// computation of a multipartitioned sweep: a processor solves its tiles'
// chunks, then ships the carries for all lines crossing the tile face to the
// neighbor processor in one aggregated message.
//
// Three solvers are provided:
//
//   - Recurrence: first-order linear recurrences x[k] = a[k]·x[k−1] + b[k]
//     (forward-only; carry = 1 value per line).
//   - Tridiag: the Thomas algorithm for tridiagonal systems (forward
//     elimination carry = 2 values; back-substitution carry = 1 value).
//   - Banded: LU without pivoting for banded systems with kl sub- and ku
//     super-diagonals (pentadiagonal solves of NAS SP are kl = ku = 2).
//     Forward carry = kl·(ku+2) values; backward carry = ku values.
//
// All solvers require elimination-stable systems (e.g. diagonally dominant),
// as no pivoting can cross tile boundaries.
package sweep

import "fmt"

// Solver processes chunks of 1-D lines with carries. Vecs is a solver-
// specific list of equal-length slices (see each implementation); the
// solution is produced in place.
type Solver interface {
	// Name identifies the solver in diagnostics.
	Name() string
	// NumVecs returns how many per-line arrays the solver operates on.
	NumVecs() int
	// ForwardCarryLen and BackwardCarryLen are the per-line carry sizes.
	ForwardCarryLen() int
	BackwardCarryLen() int
	// Forward processes a chunk left-to-right. carryIn is nil (or all zero)
	// for the leftmost chunk of a line; carryOut receives the outgoing
	// carry (length ForwardCarryLen).
	Forward(vecs [][]float64, carryIn, carryOut []float64)
	// Backward processes a chunk right-to-left. carryIn is nil for the
	// rightmost chunk; carryOut receives the carry for the chunk to the
	// left (length BackwardCarryLen). Solvers without a backward pass make
	// this a no-op.
	Backward(vecs [][]float64, carryIn, carryOut []float64)
	// ForwardFlopsPerElement and BackwardFlopsPerElement report the
	// approximate floating-point operations per line element of each pass,
	// used by the performance model.
	ForwardFlopsPerElement() float64
	BackwardFlopsPerElement() float64
	// FlopsPerElement is the two passes combined.
	FlopsPerElement() float64
}

// --- first-order recurrence ---------------------------------------------

// Recurrence solves x[k] = a[k]·x[k−1] + b[k] in place. Vecs: [a, x] where x
// holds b on entry and the solution on exit. The carry is the last x of the
// chunk. There is no backward pass.
type Recurrence struct{}

// Name implements Solver.
func (Recurrence) Name() string                     { return "recurrence" }
func (Recurrence) NumVecs() int                     { return 2 }
func (Recurrence) ForwardCarryLen() int             { return 1 }
func (Recurrence) BackwardCarryLen() int            { return 0 }
func (Recurrence) ForwardFlopsPerElement() float64  { return 2 }
func (Recurrence) BackwardFlopsPerElement() float64 { return 0 }
func (Recurrence) FlopsPerElement() float64         { return 2 }

func (Recurrence) Forward(vecs [][]float64, carryIn, carryOut []float64) {
	a, x := vecs[0], vecs[1]
	prev := 0.0
	if len(carryIn) > 0 {
		prev = carryIn[0]
	}
	for k := range x {
		prev = a[k]*prev + x[k]
		x[k] = prev
	}
	if len(carryOut) > 0 {
		carryOut[0] = prev
	}
}

func (Recurrence) Backward(vecs [][]float64, carryIn, carryOut []float64) {}

// --- Thomas tridiagonal ---------------------------------------------------

// Tridiag solves lower[k]·x[k−1] + diag[k]·x[k] + upper[k]·x[k+1] = rhs[k]
// by the Thomas algorithm. Vecs: [lower, diag, upper, rhs]. The forward pass
// overwrites upper with the modified coefficients c′ and rhs with d′ (diag
// and lower are consumed); the backward pass overwrites rhs with the
// solution. Forward carry: (c′, d′) of the chunk's last row. Backward carry:
// x of the chunk's first row.
type Tridiag struct{}

func (Tridiag) Name() string                     { return "tridiag" }
func (Tridiag) NumVecs() int                     { return 4 }
func (Tridiag) ForwardCarryLen() int             { return 2 }
func (Tridiag) BackwardCarryLen() int            { return 1 }
func (Tridiag) ForwardFlopsPerElement() float64  { return 6 }
func (Tridiag) BackwardFlopsPerElement() float64 { return 2 }
func (Tridiag) FlopsPerElement() float64         { return 8 }

func (Tridiag) Forward(vecs [][]float64, carryIn, carryOut []float64) {
	lower, diag, upper, rhs := vecs[0], vecs[1], vecs[2], vecs[3]
	cPrev, dPrev := 0.0, 0.0
	if len(carryIn) > 0 {
		cPrev, dPrev = carryIn[0], carryIn[1]
	}
	for k := range diag {
		den := diag[k] - lower[k]*cPrev
		if den == 0 {
			panic("sweep: Tridiag: zero pivot (system not elimination-stable)")
		}
		cPrev = upper[k] / den
		dPrev = (rhs[k] - lower[k]*dPrev) / den
		upper[k] = cPrev
		rhs[k] = dPrev
	}
	if len(carryOut) > 0 {
		carryOut[0], carryOut[1] = cPrev, dPrev
	}
}

func (Tridiag) Backward(vecs [][]float64, carryIn, carryOut []float64) {
	upper, rhs := vecs[2], vecs[3]
	xNext := 0.0
	haveNext := false
	if len(carryIn) > 0 {
		xNext = carryIn[0]
		haveNext = true
	}
	for k := len(rhs) - 1; k >= 0; k-- {
		if haveNext {
			rhs[k] -= upper[k] * xNext
		}
		xNext = rhs[k]
		haveNext = true
	}
	if len(carryOut) > 0 {
		carryOut[0] = xNext
	}
}

// --- general banded -------------------------------------------------------

// Banded solves banded systems with KL sub-diagonals and KU super-diagonals
// by LU elimination without pivoting. Vecs: KL lower-band arrays (nearest
// first: vecs[0][k] multiplies x[k−1], vecs[1][k] multiplies x[k−2], …),
// then diag, then KU upper-band arrays (vecs[KL+1][k] multiplies x[k+1], …),
// then rhs — NumVecs = KL+KU+2 in total. Band entries that would reach
// outside the line must be zero.
//
// The forward pass stores the eliminated rows in place (diag, uppers, rhs
// updated; lowers zeroed). Forward carry: the last KL eliminated rows, each
// as (diag, u₁…u_KU, rhs), oldest row first — KL·(KU+2) values. Backward
// carry: the x values of the chunk's first KU rows, nearest first.
type Banded struct {
	KL, KU int
}

func (b Banded) Name() string          { return fmt.Sprintf("banded(%d,%d)", b.KL, b.KU) }
func (b Banded) NumVecs() int          { return b.KL + b.KU + 2 }
func (b Banded) ForwardCarryLen() int  { return b.KL * (b.KU + 2) }
func (b Banded) BackwardCarryLen() int { return b.KU }

// ForwardFlopsPerElement: KL eliminations × (1 div + (KU+1) mul-sub).
func (b Banded) ForwardFlopsPerElement() float64 { return float64(b.KL * (2*b.KU + 3)) }

// BackwardFlopsPerElement: KU mul-subs + 1 div.
func (b Banded) BackwardFlopsPerElement() float64 { return float64(2*b.KU + 1) }

func (b Banded) FlopsPerElement() float64 {
	return b.ForwardFlopsPerElement() + b.BackwardFlopsPerElement()
}

// rowLen is the per-eliminated-row carry stride: diag + KU uppers + rhs.
func (b Banded) rowLen() int { return b.KU + 2 }

func (b Banded) Forward(vecs [][]float64, carryIn, carryOut []float64) {
	kl, ku := b.KL, b.KU
	diag := vecs[kl]
	rhs := vecs[kl+ku+1]
	n := len(diag)
	rl := b.rowLen()

	// window holds the last kl eliminated rows, each rl values
	// (diag, u₁…u_KU, rhs); window[(head+kl−1)%kl] is the most recent.
	// valid counts how many window slots hold real rows (the first rows of
	// a whole line have no predecessors).
	window := make([]float64, kl*rl)
	valid := 0
	if len(carryIn) == b.ForwardCarryLen() {
		copy(window, carryIn)
		valid = kl
	} else if len(carryIn) != 0 {
		panic(fmt.Sprintf("sweep: Banded.Forward: carryIn length %d, want 0 or %d", len(carryIn), b.ForwardCarryLen()))
	}

	// active[j] for j in [0, kl+ku]: coefficient of x[row−kl+j].
	active := make([]float64, kl+ku+1)
	for row := 0; row < n; row++ {
		for k := 1; k <= kl; k++ {
			active[kl-k] = vecs[k-1][row]
		}
		active[kl] = diag[row]
		for t := 1; t <= ku; t++ {
			active[kl+t] = vecs[kl+t][row]
		}
		r := rhs[row]

		// Eliminate the lower-band coefficients, farthest predecessor
		// first, using the corresponding eliminated rows from the window.
		for k := kl; k >= 1; k-- {
			c := active[kl-k]
			if c == 0 {
				continue
			}
			// Row (row−k): window slot offset k from the most recent.
			if k > valid {
				panic("sweep: Banded.Forward: nonzero lower-band coefficient reaches before the start of the line")
			}
			w := window[(valid-k)*rl : (valid-k)*rl+rl]
			d := w[0]
			if d == 0 {
				panic("sweep: Banded.Forward: zero pivot (system not elimination-stable)")
			}
			f := c / d
			active[kl-k] = 0
			for t := 1; t <= ku; t++ {
				active[kl-k+t] -= f * w[t]
			}
			r -= f * w[ku+1]
		}

		// Store the eliminated row back into the vecs (lowers zeroed).
		for k := 1; k <= kl; k++ {
			vecs[k-1][row] = 0
		}
		diag[row] = active[kl]
		for t := 1; t <= ku; t++ {
			vecs[kl+t][row] = active[kl+t]
		}
		rhs[row] = r

		// Slide the window: drop the oldest row, append this one.
		if valid == kl {
			copy(window, window[rl:])
			valid--
		}
		w := window[valid*rl : valid*rl+rl]
		w[0] = active[kl]
		for t := 1; t <= ku; t++ {
			w[t] = active[kl+t]
		}
		w[ku+1] = r
		valid++
	}

	if len(carryOut) > 0 {
		if len(carryOut) != b.ForwardCarryLen() {
			panic("sweep: Banded.Forward: carryOut length mismatch")
		}
		// If the chunk (plus incoming carry) is shorter than kl the window
		// may be partially valid; the missing oldest slots are zero rows
		// whose diag is 0 — they are never referenced because the matching
		// lower coefficients must be zero at the start of the line.
		for i := range carryOut {
			carryOut[i] = 0
		}
		copy(carryOut[(kl-valid)*rl:], window[:valid*rl])
	}
}

func (b Banded) Backward(vecs [][]float64, carryIn, carryOut []float64) {
	kl, ku := b.KL, b.KU
	diag := vecs[kl]
	rhs := vecs[kl+ku+1]
	n := len(diag)

	// xr holds the ku solution values immediately right of the current row,
	// nearest first.
	xr := make([]float64, ku)
	validR := 0
	if len(carryIn) == ku {
		copy(xr, carryIn)
		validR = ku
	} else if len(carryIn) != 0 {
		panic(fmt.Sprintf("sweep: Banded.Backward: carryIn length %d, want 0 or %d", len(carryIn), ku))
	}

	for row := n - 1; row >= 0; row-- {
		r := rhs[row]
		for t := 1; t <= ku; t++ {
			u := vecs[kl+t][row]
			if u == 0 {
				continue
			}
			if t > validR {
				panic("sweep: Banded.Backward: nonzero upper-band coefficient reaches past the end of the line")
			}
			r -= u * xr[t-1]
		}
		d := diag[row]
		if d == 0 {
			panic("sweep: Banded.Backward: zero pivot")
		}
		x := r / d
		rhs[row] = x
		// Shift xr right and prepend x.
		if ku > 0 {
			copy(xr[1:], xr[:ku-1])
			xr[0] = x
			if validR < ku {
				validR++
			}
		}
	}

	if len(carryOut) > 0 {
		if len(carryOut) != ku {
			panic("sweep: Banded.Backward: carryOut length mismatch")
		}
		// After the loop xr[t] is the solution at relative position t
		// (covering the incoming carry too when the chunk is shorter than
		// ku), which is exactly the carry the next-left chunk needs.
		for t := 0; t < ku; t++ {
			if t < validR {
				carryOut[t] = xr[t]
			} else {
				carryOut[t] = 0
			}
		}
	}
}

// NewPenta returns the pentadiagonal solver (KL = KU = 2) used by the SP
// benchmark's scalar penta-diagonal line solves.
func NewPenta() Banded { return Banded{KL: 2, KU: 2} }

// --- serial references ----------------------------------------------------

// SolveRecurrence computes x[k] = a[k]·x[k−1] + b[k] for a whole line with
// x[−1] = x0, returning a new slice.
func SolveRecurrence(a, b []float64, x0 float64) []float64 {
	x := make([]float64, len(b))
	prev := x0
	for k := range b {
		prev = a[k]*prev + b[k]
		x[k] = prev
	}
	return x
}

// SolveTridiagonal solves a whole tridiagonal system by the Thomas
// algorithm, returning a new slice. Inputs are not modified.
func SolveTridiagonal(lower, diag, upper, rhs []float64) []float64 {
	n := len(diag)
	c := make([]float64, n)
	d := make([]float64, n)
	cPrev, dPrev := 0.0, 0.0
	for k := 0; k < n; k++ {
		den := diag[k] - lower[k]*cPrev
		cPrev = upper[k] / den
		dPrev = (rhs[k] - lower[k]*dPrev) / den
		c[k], d[k] = cPrev, dPrev
	}
	x := make([]float64, n)
	xNext := 0.0
	for k := n - 1; k >= 0; k-- {
		if k == n-1 {
			x[k] = d[k]
		} else {
			x[k] = d[k] - c[k]*xNext
		}
		xNext = x[k]
	}
	return x
}

// SolveDense solves A·x = b by Gaussian elimination with partial pivoting
// (test oracle; O(n³)). A and b are not modified.
func SolveDense(A [][]float64, b []float64) []float64 {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], A[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(m[r][col]) > abs(m[piv][col]) {
				piv = r
			}
		}
		m[col], m[piv] = m[piv], m[col]
		if m[col][col] == 0 {
			panic("sweep: SolveDense: singular matrix")
		}
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for row := n - 1; row >= 0; row-- {
		s := m[row][n]
		for c := row + 1; c < n; c++ {
			s -= m[row][c] * x[c]
		}
		x[row] = s / m[row][row]
	}
	return x
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ChunkedSolve runs a Solver over a whole line cut at the given boundaries
// (ascending interior cut points), threading carries between chunks exactly
// as a distributed sweep would. vecs are full-line arrays; the solution is
// produced in place. Used by tests and the serial executors.
func ChunkedSolve(s Solver, vecs [][]float64, cuts []int) {
	var ws Workspace
	ChunkedSolveWS(s, vecs, cuts, &ws)
}

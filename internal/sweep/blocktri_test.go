package sweep

import (
	"math"
	"math/rand"
	"testing"
)

// randBlockTri builds a random block-diagonally-dominant block tridiagonal
// system in the vec layout plus the equivalent dense system.
func randBlockTri(rng *rand.Rand, n, b int) (vecs [][]float64, A [][]float64, rhs []float64) {
	bb := b * b
	nv := 3*bb + b
	vecs = make([][]float64, nv)
	for v := range vecs {
		vecs[v] = make([]float64, n)
	}
	N := n * b
	A = make([][]float64, N)
	for i := range A {
		A[i] = make([]float64, N)
	}
	rhs = make([]float64, N)
	for k := 0; k < n; k++ {
		for r := 0; r < b; r++ {
			rowSum := 0.0
			// Off-diagonal blocks A_k (k > 0) and C_k (k < n−1).
			if k > 0 {
				for c := 0; c < b; c++ {
					v := rng.Float64() - 0.5
					vecs[r*b+c][k] = v
					A[k*b+r][(k-1)*b+c] = v
					rowSum += math.Abs(v)
				}
			}
			if k < n-1 {
				for c := 0; c < b; c++ {
					v := rng.Float64() - 0.5
					vecs[2*bb+r*b+c][k] = v
					A[k*b+r][(k+1)*b+c] = v
					rowSum += math.Abs(v)
				}
			}
			// Diagonal block B_k: off-diagonal entries then a dominant
			// diagonal.
			for c := 0; c < b; c++ {
				if c == r {
					continue
				}
				v := rng.Float64() - 0.5
				vecs[bb+r*b+c][k] = v
				A[k*b+r][k*b+c] = v
				rowSum += math.Abs(v)
			}
			d := rowSum + 1 + rng.Float64()
			vecs[bb+r*b+r][k] = d
			A[k*b+r][k*b+r] = d
			f := rng.Float64()*10 - 5
			vecs[3*bb+r][k] = f
			rhs[k*b+r] = f
		}
	}
	return
}

func TestBlockTridiagWholeLineMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, b := range []int{1, 2, 3, 5} {
		for trial := 0; trial < 25; trial++ {
			n := 3 + rng.Intn(15)
			vecs, A, rhs := randBlockTri(rng, n, b)
			want := SolveDense(A, rhs)
			solver := NewBlockTridiag(b)
			ChunkedSolve(solver, vecs, nil)
			for k := 0; k < n; k++ {
				for r := 0; r < b; r++ {
					got := vecs[3*b*b+r][k]
					if math.Abs(got-want[k*b+r]) > 1e-8 {
						t.Fatalf("b=%d trial %d: X[%d][%d] = %g, want %g", b, trial, k, r, got, want[k*b+r])
					}
				}
			}
		}
	}
}

func TestBlockTridiagChunkedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, b := range []int{2, 5} {
		for trial := 0; trial < 40; trial++ {
			n := 4 + rng.Intn(20)
			vecs, A, rhs := randBlockTri(rng, n, b)
			want := SolveDense(A, rhs)
			solver := NewBlockTridiag(b)
			ChunkedSolve(solver, vecs, randomCuts(rng, n))
			for k := 0; k < n; k++ {
				for r := 0; r < b; r++ {
					got := vecs[3*b*b+r][k]
					if math.Abs(got-want[k*b+r]) > 1e-8 {
						t.Fatalf("b=%d trial %d (n=%d): X[%d][%d] = %g, want %g", b, trial, n, k, r, got, want[k*b+r])
					}
				}
			}
		}
	}
}

func TestBlockTridiagSize1EquivalentToTridiag(t *testing.T) {
	// With 1×1 blocks the block solver degenerates to scalar Thomas.
	rng := rand.New(rand.NewSource(83))
	n := 20
	lower, diag, upper, rhs := randTridiag(rng, n)
	triVecs := [][]float64{
		append([]float64(nil), lower...),
		append([]float64(nil), diag...),
		append([]float64(nil), upper...),
		append([]float64(nil), rhs...),
	}
	ChunkedSolve(Tridiag{}, triVecs, nil)

	blockVecs := [][]float64{
		append([]float64(nil), lower...),
		append([]float64(nil), diag...),
		append([]float64(nil), upper...),
		append([]float64(nil), rhs...),
	}
	ChunkedSolve(NewBlockTridiag(1), blockVecs, []int{7, 13})
	for k := 0; k < n; k++ {
		if math.Abs(triVecs[3][k]-blockVecs[3][k]) > 1e-9 {
			t.Fatalf("k=%d: tridiag %g vs blocktri(1) %g", k, triVecs[3][k], blockVecs[3][k])
		}
	}
}

func TestBlockTridiagMetadata(t *testing.T) {
	s := NewBlockTridiag(5)
	if s.NumVecs() != 80 {
		t.Errorf("NumVecs = %d, want 80", s.NumVecs())
	}
	if s.ForwardCarryLen() != 30 || s.BackwardCarryLen() != 5 {
		t.Errorf("carry lens = %d, %d", s.ForwardCarryLen(), s.BackwardCarryLen())
	}
	if s.ForwardFlopsPerElement() <= 0 || s.FlopsPerElement() <= s.BackwardFlopsPerElement() {
		t.Error("flop weights inconsistent")
	}
	if s.Name() != "blocktri(5)" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestNewBlockTridiagPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("block size 0 should panic")
		}
	}()
	NewBlockTridiag(0)
}

func TestLUFactorSolve(t *testing.T) {
	// 3×3 system requiring pivoting.
	m := []float64{0, 2, 1, 1, 0, 3, 2, 1, 0}
	piv := make([]int, 3)
	x := []float64{5, 10, 4} // arbitrary rhs
	orig := append([]float64(nil), m...)
	luFactor(m, piv, 3)
	got := append([]float64(nil), x...)
	luSolve(m, piv, got, 3)
	// Check A·got = x.
	for r := 0; r < 3; r++ {
		acc := 0.0
		for c := 0; c < 3; c++ {
			acc += orig[r*3+c] * got[c]
		}
		if math.Abs(acc-x[r]) > 1e-9 {
			t.Fatalf("row %d: A·x = %g, want %g", r, acc, x[r])
		}
	}
}

func BenchmarkBlockTridiag5Forward(b *testing.B) {
	rng := rand.New(rand.NewSource(84))
	n := 128
	vecs, _, _ := randBlockTri(rng, n, 5)
	work := make([][]float64, len(vecs))
	for v := range work {
		work[v] = make([]float64, n)
	}
	solver := NewBlockTridiag(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := range vecs {
			copy(work[v], vecs[v])
		}
		ChunkedSolve(solver, work, nil)
	}
}

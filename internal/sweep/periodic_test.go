package sweep

import (
	"math"
	"math/rand"
	"testing"
)

// densePeriodic builds the dense form of a cyclic tridiagonal system.
func densePeriodic(lower, diag, upper []float64) [][]float64 {
	n := len(diag)
	A := make([][]float64, n)
	for i := range A {
		A[i] = make([]float64, n)
		A[i][i] = diag[i]
	}
	for i := 1; i < n; i++ {
		A[i][i-1] = lower[i]
	}
	for i := 0; i < n-1; i++ {
		A[i][i+1] = upper[i]
	}
	A[0][n-1] = lower[0]
	A[n-1][0] = upper[n-1]
	return A
}

func TestPeriodicTridiagonalAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.Intn(40)
		lower := make([]float64, n)
		diag := make([]float64, n)
		upper := make([]float64, n)
		rhs := make([]float64, n)
		for k := 0; k < n; k++ {
			lower[k] = rng.Float64()*2 - 1
			upper[k] = rng.Float64()*2 - 1
			diag[k] = 5 + rng.Float64()
			rhs[k] = rng.Float64()*10 - 5
		}
		want := SolveDense(densePeriodic(lower, diag, upper), rhs)
		got := SolvePeriodicTridiagonal(lower, diag, upper, rhs)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-8 {
				t.Fatalf("trial %d (n=%d): x[%d] = %g, want %g", trial, n, k, got[k], want[k])
			}
		}
	}
}

func TestPeriodicDegeneratesToOrdinary(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	n := 17
	lower, diag, upper, rhs := randTridiag(rng, n) // lower[0] = upper[n−1] = 0
	want := SolveTridiagonal(lower, diag, upper, rhs)
	got := SolvePeriodicTridiagonal(lower, diag, upper, rhs)
	for k := range want {
		if math.Abs(got[k]-want[k]) > 1e-10 {
			t.Fatalf("x[%d] = %g, want %g", k, got[k], want[k])
		}
	}
}

func TestPeriodicConstantCoefficientCirculant(t *testing.T) {
	// A circulant system with constant rhs has the constant solution
	// x = r/(a+b+c).
	n := 12
	lower := make([]float64, n)
	diag := make([]float64, n)
	upper := make([]float64, n)
	rhs := make([]float64, n)
	for k := 0; k < n; k++ {
		lower[k] = -1
		diag[k] = 4
		upper[k] = -1
		rhs[k] = 6
	}
	x := SolvePeriodicTridiagonal(lower, diag, upper, rhs)
	for k := range x {
		if math.Abs(x[k]-3) > 1e-10 {
			t.Fatalf("x[%d] = %g, want 3", k, x[k])
		}
	}
}

func TestPeriodicSmallNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=2 should panic")
		}
	}()
	SolvePeriodicTridiagonal([]float64{1, 1}, []float64{4, 4}, []float64{1, 1}, []float64{1, 1})
}

package sweep

import "fmt"

// BlockTridiag solves block tridiagonal systems
//
//	A_k·X_{k−1} + B_k·X_k + C_k·X_{k+1} = F_k
//
// with dense B×B blocks and B-vectors X, F, by block Thomas elimination —
// the structure of the NAS BT benchmark's line solves (B = 5 there), the
// second of the two line-sweep CFD codes the multipartitioning literature
// targets.
//
// Vec layout (NumVecs = 3·B² + B): the A blocks' entries row-major
// (vecs[0..B²−1], entry (r,c) in vecs[r·B+c]), then the B blocks
// (vecs[B²..2B²−1]), then the C blocks (vecs[2B²..3B²−1]), then the F
// vectors (vecs[3B²..3B²+B−1]). A at a line's first element and C at its
// last must be zero.
//
// The forward pass overwrites C with C′ = (B − A·C′_prev)⁻¹·C and F with
// F′ = (B − A·C′_prev)⁻¹·(F − A·F′_prev); the backward pass overwrites F
// with the solution X = F′ − C′·X_next. Forward carry: (C′, F′) of the last
// element — B²+B values. Backward carry: X of the first element — B values.
type BlockTridiag struct {
	B int
}

// NewBlockTridiag returns a solver for B×B blocks (B ≥ 1).
func NewBlockTridiag(b int) BlockTridiag {
	if b < 1 {
		panic(fmt.Sprintf("sweep: BlockTridiag block size %d must be ≥ 1", b))
	}
	return BlockTridiag{B: b}
}

func (s BlockTridiag) Name() string          { return fmt.Sprintf("blocktri(%d)", s.B) }
func (s BlockTridiag) NumVecs() int          { return 3*s.B*s.B + s.B }
func (s BlockTridiag) ForwardCarryLen() int  { return s.B*s.B + s.B }
func (s BlockTridiag) BackwardCarryLen() int { return s.B }

// ForwardFlopsPerElement: form B − A·C′ (2B³), factor (≈2/3·B³), apply to
// C (2B³) and F (2B²).
func (s BlockTridiag) ForwardFlopsPerElement() float64 {
	b := float64(s.B)
	return 2*b*b*b + 2.0/3.0*b*b*b + 2*b*b*b + 2*b*b
}

// BackwardFlopsPerElement: X = F′ − C′·X_next (2B²).
func (s BlockTridiag) BackwardFlopsPerElement() float64 {
	b := float64(s.B)
	return 2 * b * b
}

func (s BlockTridiag) FlopsPerElement() float64 {
	return s.ForwardFlopsPerElement() + s.BackwardFlopsPerElement()
}

// block accessors into the vec layout at element k.
func (s BlockTridiag) blockAt(vecs [][]float64, base, k int, dst []float64) []float64 {
	bb := s.B * s.B
	for e := 0; e < bb; e++ {
		dst[e] = vecs[base+e][k]
	}
	return dst
}

func (s BlockTridiag) storeBlockAt(vecs [][]float64, base, k int, src []float64) {
	bb := s.B * s.B
	for e := 0; e < bb; e++ {
		vecs[base+e][k] = src[e]
	}
}

func (s BlockTridiag) vecAt(vecs [][]float64, base, k int, dst []float64) []float64 {
	for e := 0; e < s.B; e++ {
		dst[e] = vecs[base+e][k]
	}
	return dst
}

func (s BlockTridiag) storeVecAt(vecs [][]float64, base, k int, src []float64) {
	for e := 0; e < s.B; e++ {
		vecs[base+e][k] = src[e]
	}
}

// Forward implements Solver.
func (s BlockTridiag) Forward(vecs [][]float64, carryIn, carryOut []float64) {
	b := s.B
	bb := b * b
	baseA, baseB, baseC, baseF := 0, bb, 2*bb, 3*bb
	n := len(vecs[0])

	cPrev := make([]float64, bb) // C′_{k−1}
	fPrev := make([]float64, b)  // F′_{k−1}
	havePrev := false
	if len(carryIn) == s.ForwardCarryLen() {
		copy(cPrev, carryIn[:bb])
		copy(fPrev, carryIn[bb:])
		havePrev = true
	} else if len(carryIn) != 0 {
		panic("sweep: BlockTridiag.Forward: carryIn length mismatch")
	}

	A := make([]float64, bb)
	M := make([]float64, bb) // B_k − A_k·C′_{k−1}
	C := make([]float64, bb)
	F := make([]float64, b)
	tmp := make([]float64, b)
	piv := make([]int, b)

	for k := 0; k < n; k++ {
		s.blockAt(vecs, baseA, k, A)
		s.blockAt(vecs, baseB, k, M)
		s.blockAt(vecs, baseC, k, C)
		s.vecAt(vecs, baseF, k, F)

		if havePrev {
			// M ← B − A·C′_prev; F ← F − A·F′_prev.
			for r := 0; r < b; r++ {
				for c := 0; c < b; c++ {
					acc := 0.0
					for t := 0; t < b; t++ {
						acc += A[r*b+t] * cPrev[t*b+c]
					}
					M[r*b+c] -= acc
				}
				acc := 0.0
				for t := 0; t < b; t++ {
					acc += A[r*b+t] * fPrev[t]
				}
				F[r] -= acc
			}
		}

		// Factor M in place (LU with partial pivoting), then solve
		// M·C′ = C (B right-hand sides) and M·F′ = F.
		luFactor(M, piv, b)
		for col := 0; col < b; col++ {
			for r := 0; r < b; r++ {
				tmp[r] = C[r*b+col]
			}
			luSolve(M, piv, tmp, b)
			for r := 0; r < b; r++ {
				C[r*b+col] = tmp[r]
			}
		}
		luSolve(M, piv, F, b)

		s.storeBlockAt(vecs, baseC, k, C)
		s.storeVecAt(vecs, baseF, k, F)
		copy(cPrev, C)
		copy(fPrev, F)
		havePrev = true
	}

	if len(carryOut) > 0 {
		if len(carryOut) != s.ForwardCarryLen() {
			panic("sweep: BlockTridiag.Forward: carryOut length mismatch")
		}
		copy(carryOut[:bb], cPrev)
		copy(carryOut[bb:], fPrev)
	}
}

// Backward implements Solver.
func (s BlockTridiag) Backward(vecs [][]float64, carryIn, carryOut []float64) {
	b := s.B
	bb := b * b
	baseC, baseF := 2*bb, 3*bb
	n := len(vecs[0])

	xNext := make([]float64, b)
	haveNext := false
	if len(carryIn) == b {
		copy(xNext, carryIn)
		haveNext = true
	} else if len(carryIn) != 0 {
		panic("sweep: BlockTridiag.Backward: carryIn length mismatch")
	}

	C := make([]float64, bb)
	X := make([]float64, b)
	for k := n - 1; k >= 0; k-- {
		s.vecAt(vecs, baseF, k, X)
		if haveNext {
			s.blockAt(vecs, baseC, k, C)
			for r := 0; r < b; r++ {
				acc := 0.0
				for t := 0; t < b; t++ {
					acc += C[r*b+t] * xNext[t]
				}
				X[r] -= acc
			}
		}
		s.storeVecAt(vecs, baseF, k, X)
		copy(xNext, X)
		haveNext = true
	}

	if len(carryOut) > 0 {
		if len(carryOut) != b {
			panic("sweep: BlockTridiag.Backward: carryOut length mismatch")
		}
		copy(carryOut, xNext)
	}
}

// luFactor computes an in-place LU factorization with partial pivoting of
// the n×n row-major matrix m; piv records the row exchanges.
func luFactor(m []float64, piv []int, n int) {
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if abs(m[r*n+col]) > abs(m[p*n+col]) {
				p = r
			}
		}
		piv[col] = p
		if p != col {
			for c := 0; c < n; c++ {
				m[col*n+c], m[p*n+c] = m[p*n+c], m[col*n+c]
			}
		}
		d := m[col*n+col]
		if d == 0 {
			panic("sweep: BlockTridiag: singular pivot block")
		}
		for r := col + 1; r < n; r++ {
			f := m[r*n+col] / d
			m[r*n+col] = f
			for c := col + 1; c < n; c++ {
				m[r*n+c] -= f * m[col*n+c]
			}
		}
	}
}

// luSolve solves A·x = b in place using a factorization from luFactor.
// All row interchanges are applied to the right-hand side first (later
// pivots permute the stored L entries of earlier columns, so interleaving
// swaps with the forward substitution would be inconsistent).
func luSolve(m []float64, piv []int, x []float64, n int) {
	for col := 0; col < n; col++ {
		if p := piv[col]; p != col {
			x[col], x[p] = x[p], x[col]
		}
	}
	for col := 0; col < n; col++ {
		for r := col + 1; r < n; r++ {
			x[r] -= m[r*n+col] * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		for c := r + 1; c < n; c++ {
			x[r] -= m[r*n+c] * x[c]
		}
		x[r] /= m[r*n+r]
	}
}

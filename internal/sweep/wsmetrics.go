package sweep

import "genmp/internal/obs/metrics"

// WorkspacePublisher mirrors one or more workspace arenas' acquisition
// counters into a live metrics registry as monotonic deltas, so repeated
// Publish calls never double-count. Like the arenas it covers, it is NOT
// safe for concurrent use; executors keep one per rank.
type WorkspacePublisher struct {
	reg  *metrics.Registry
	gets *metrics.Counter
	hits *metrics.Counter
	last WorkspaceStats
}

// Publish adds the arenas' acquisition counts accumulated since the
// previous call to reg's sweep_workspace_{gets,hits}_total counters. A nil
// reg is a no-op (and forgets nothing: the next non-nil call publishes the
// backlog). When reg changes, the full cumulative history is re-published
// into the new registry, so one attached mid-run still sees executor
// totals. Instrument resolution happens once per registry; steady-state
// calls are two counter adds.
func (p *WorkspacePublisher) Publish(reg *metrics.Registry, arenas ...*Workspace) {
	if reg == nil {
		return
	}
	if p.reg != reg {
		p.reg = reg
		p.gets = reg.Counter("sweep_workspace_gets_total", "sweep workspace buffer acquisitions")
		p.hits = reg.Counter("sweep_workspace_hits_total", "sweep workspace acquisitions served from existing capacity (no allocation)")
		p.last = WorkspaceStats{}
	}
	var cur WorkspaceStats
	for _, w := range arenas {
		s := w.Stats()
		cur.Gets += s.Gets
		cur.Hits += s.Hits
	}
	p.gets.Add(cur.Gets - p.last.Gets)
	p.hits.Add(cur.Hits - p.last.Hits)
	p.last = cur
}

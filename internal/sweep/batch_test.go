package sweep

import (
	"math/rand"
	"testing"
)

// batchSolvers enumerates every BatchSolver with a deterministic system
// generator producing elimination-stable (diagonally dominant) vectors.
func batchSolvers() []BatchSolver {
	return []BatchSolver{
		Recurrence{},
		Tridiag{},
		Banded{KL: 1, KU: 1},
		NewPenta(),
		Banded{KL: 3, KU: 2},
		Banded{KL: 1, KU: 3},
	}
}

// randomLine builds one line's vecs for solver s: diagonally dominant with
// band entries that reach outside the line zeroed, the Solver contract.
func randomLine(s Solver, n int, rng *rand.Rand) [][]float64 {
	vecs := make([][]float64, s.NumVecs())
	for v := range vecs {
		vecs[v] = make([]float64, n)
		for k := range vecs[v] {
			vecs[v][k] = rng.Float64()*2 - 1
		}
	}
	switch sv := s.(type) {
	case Recurrence:
		for k := range vecs[0] {
			vecs[0][k] *= 0.5 // keep the recurrence stable
		}
	case Tridiag:
		for k := 0; k < n; k++ {
			vecs[1][k] = 4 + rng.Float64() // dominant diagonal
		}
		vecs[0][0] = 0
		vecs[2][n-1] = 0
	case Banded:
		kl, ku := sv.KL, sv.KU
		for k := 0; k < n; k++ {
			vecs[kl][k] = 2*float64(kl+ku) + 1 + rng.Float64()
			for j := 1; j <= kl; j++ {
				if k-j < 0 {
					vecs[j-1][k] = 0
				}
			}
			for t := 1; t <= ku; t++ {
				if k+t >= n {
					vecs[kl+t][k] = 0
				}
			}
		}
	}
	return vecs
}

// packPanel lays nb lines' vecs out as SoA panels.
func packPanel(lines [][][]float64, nv, n, nb int) [][]float64 {
	panels := make([][]float64, nv)
	for v := range panels {
		panels[v] = make([]float64, n*nb)
		for b, vecs := range lines {
			for k := 0; k < n; k++ {
				panels[v][k*nb+b] = vecs[v][k]
			}
		}
	}
	return panels
}

// requireSamePanel asserts exact (bitwise) equality of the panel against
// the per-line scalar results.
func requireSamePanel(t *testing.T, panels [][]float64, lines [][][]float64, nv, n, nb int) {
	t.Helper()
	for v := 0; v < nv; v++ {
		for b := range lines {
			for k := 0; k < n; k++ {
				got, want := panels[v][k*nb+b], lines[b][v][k]
				if got != want {
					t.Fatalf("vec %d line %d elem %d: batched %v != scalar %v", v, b, k, got, want)
				}
			}
		}
	}
}

// TestBatchBitIdentityWholeLines runs full lines (nil carries both ways)
// through the scalar and batched kernels and requires exact equality.
func TestBatchBitIdentityWholeLines(t *testing.T) {
	for _, s := range batchSolvers() {
		for _, n := range []int{1, 2, 3, 5, 17, 33} {
			for _, nb := range []int{1, 7, 64} {
				rng := rand.New(rand.NewSource(int64(100*n + nb)))
				if minN := minLineLen(s); n < minN {
					continue // bands must fit in the line
				}
				scalar := make([][][]float64, nb)
				batched := make([][][]float64, nb)
				for b := 0; b < nb; b++ {
					scalar[b] = randomLine(s, n, rng)
					batched[b] = cloneVecs(scalar[b])
				}
				nv := s.NumVecs()
				panels := packPanel(batched, nv, n, nb)
				for b := 0; b < nb; b++ {
					s.Forward(scalar[b], nil, nil)
					s.Backward(scalar[b], nil, nil)
				}
				s.ForwardBatch(panels, nb, nil, nil)
				s.BackwardBatch(panels, nb, nil, nil)
				requireSamePanel(t, panels, scalar, nv, n, nb)
			}
		}
	}
}

// TestBatchBitIdentityChunked cuts lines into chunks, threads forward and
// backward carries through both paths, and requires exact equality of both
// the results and every intermediate carry.
func TestBatchBitIdentityChunked(t *testing.T) {
	for _, s := range batchSolvers() {
		n := 29 // odd, not a multiple of any batch size
		cuts := [][]int{{13}, {5, 11, 20}, {1, 2, 3, 28}}
		for ci, cut := range cuts {
			for _, nb := range []int{1, 7, 64} {
				rng := rand.New(rand.NewSource(int64(1000*ci + nb)))
				scalar := make([][][]float64, nb)
				batched := make([][][]float64, nb)
				for b := 0; b < nb; b++ {
					scalar[b] = randomLine(s, n, rng)
					batched[b] = cloneVecs(scalar[b])
				}
				nv := s.NumVecs()

				// Scalar oracle: ChunkedSolve per line.
				for b := 0; b < nb; b++ {
					ChunkedSolve(s, scalar[b], cut)
				}

				// Batched: same cuts, carries threaded between chunk panels
				// in the line-major wire layout.
				bounds := append(append([]int{0}, cut...), n)
				fLen, bLen := s.ForwardCarryLen(), s.BackwardCarryLen()
				chunkPanels := make([][][]float64, len(bounds)-1)
				chunkViews := make([][][][]float64, len(bounds)-1)
				for c := 0; c+1 < len(bounds); c++ {
					lo, hi := bounds[c], bounds[c+1]
					views := make([][][]float64, nb)
					for b := 0; b < nb; b++ {
						views[b] = make([][]float64, nv)
						for v := 0; v < nv; v++ {
							views[b][v] = batched[b][v][lo:hi]
						}
					}
					chunkViews[c] = views
					chunkPanels[c] = packPanel(views, nv, hi-lo, nb)
				}
				var cIn, cOut []float64
				if fLen > 0 {
					cIn = make([]float64, nb*fLen)
					cOut = make([]float64, nb*fLen)
				}
				for c := range chunkPanels {
					if c == 0 {
						s.ForwardBatch(chunkPanels[c], nb, nil, cOut)
					} else {
						s.ForwardBatch(chunkPanels[c], nb, cIn, cOut)
					}
					cIn, cOut = cOut, cIn
				}
				if bLen > 0 {
					bIn := make([]float64, nb*bLen)
					bOut := make([]float64, nb*bLen)
					for c := len(chunkPanels) - 1; c >= 0; c-- {
						if c == len(chunkPanels)-1 {
							s.BackwardBatch(chunkPanels[c], nb, nil, bOut)
						} else {
							s.BackwardBatch(chunkPanels[c], nb, bIn, bOut)
						}
						bIn, bOut = bOut, bIn
					}
				}

				// Unpack each chunk panel and compare against the scalar
				// lines, exactly.
				for c := range chunkPanels {
					lo, hi := bounds[c], bounds[c+1]
					cn := hi - lo
					for v := 0; v < nv; v++ {
						for b := 0; b < nb; b++ {
							for k := 0; k < cn; k++ {
								got := chunkPanels[c][v][k*nb+b]
								want := scalar[b][v][lo+k]
								if got != want {
									t.Fatalf("%s cut %v nb=%d: vec %d line %d elem %d: batched %v != scalar %v",
										s.Name(), cut, nb, v, b, lo+k, got, want)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestBatchCarriesMatchScalar checks the emitted carries themselves (both
// directions) equal the scalar ones bit for bit, including the short-chunk
// pass-through cases (chunk shorter than the band).
func TestBatchCarriesMatchScalar(t *testing.T) {
	for _, s := range batchSolvers() {
		for _, n := range []int{1, 2, 3, 9} {
			nb := 5
			rng := rand.New(rand.NewSource(int64(n)))
			fLen, bLen := s.ForwardCarryLen(), s.BackwardCarryLen()

			// Random (stable-looking) incoming carries, as if a previous
			// chunk had produced them. For Banded forward the carry rows
			// must have usable pivots, so fill diagonally-dominant rows.
			scalar := make([][][]float64, nb)
			batched := make([][][]float64, nb)
			fIn := make([]float64, nb*fLen)
			for i := range fIn {
				fIn[i] = rng.Float64() + 1.5
			}
			for b := 0; b < nb; b++ {
				scalar[b] = randomLineInterior(s, n, rng)
				batched[b] = cloneVecs(scalar[b])
			}
			nv := s.NumVecs()
			panels := packPanel(batched, nv, n, nb)

			fOutScalar := make([]float64, nb*fLen)
			for b := 0; b < nb; b++ {
				s.Forward(scalar[b], fIn[b*fLen:(b+1)*fLen], fOutScalar[b*fLen:(b+1)*fLen])
			}
			fOutBatch := make([]float64, nb*fLen)
			s.ForwardBatch(panels, nb, fIn, fOutBatch)
			for i := range fOutScalar {
				if fOutScalar[i] != fOutBatch[i] {
					t.Fatalf("%s n=%d: forward carry[%d]: batched %v != scalar %v", s.Name(), n, i, fOutBatch[i], fOutScalar[i])
				}
			}

			if bLen > 0 {
				bIn := make([]float64, nb*bLen)
				for i := range bIn {
					bIn[i] = rng.Float64()
				}
				bOutScalar := make([]float64, nb*bLen)
				for b := 0; b < nb; b++ {
					s.Backward(scalar[b], bIn[b*bLen:(b+1)*bLen], bOutScalar[b*bLen:(b+1)*bLen])
				}
				bOutBatch := make([]float64, nb*bLen)
				s.BackwardBatch(panels, nb, bIn, bOutBatch)
				for i := range bOutScalar {
					if bOutScalar[i] != bOutBatch[i] {
						t.Fatalf("%s n=%d: backward carry[%d]: batched %v != scalar %v", s.Name(), n, i, bOutBatch[i], bOutScalar[i])
					}
				}
			}
			requireSamePanel(t, panels, scalar, nv, n, nb)
		}
	}
}

// randomLineInterior builds vecs for a chunk in the middle of a line: band
// entries may reach outside the chunk (the carries cover them).
func randomLineInterior(s Solver, n int, rng *rand.Rand) [][]float64 {
	vecs := make([][]float64, s.NumVecs())
	for v := range vecs {
		vecs[v] = make([]float64, n)
		for k := range vecs[v] {
			vecs[v][k] = rng.Float64()*2 - 1
		}
	}
	switch sv := s.(type) {
	case Recurrence:
		for k := range vecs[0] {
			vecs[0][k] *= 0.5
		}
	case Tridiag:
		for k := 0; k < n; k++ {
			vecs[1][k] = 4 + rng.Float64()
		}
	case Banded:
		kl, ku := sv.KL, sv.KU
		for k := 0; k < n; k++ {
			vecs[kl][k] = 2*float64(kl+ku) + 1 + rng.Float64()
		}
	}
	return vecs
}

func minLineLen(s Solver) int {
	if b, ok := s.(Banded); ok {
		if b.KL > b.KU {
			return b.KL + 1
		}
		return b.KU + 1
	}
	return 1
}

func cloneVecs(vecs [][]float64) [][]float64 {
	out := make([][]float64, len(vecs))
	for v := range vecs {
		out[v] = append([]float64(nil), vecs[v]...)
	}
	return out
}

// TestChunkedSolveWSMatchesChunkedSolve checks the workspace variant is
// exactly the allocating one, and allocation-free once warm.
func TestChunkedSolveWSMatchesChunkedSolve(t *testing.T) {
	for _, s := range batchSolvers() {
		rng := rand.New(rand.NewSource(7))
		n := 31
		a := randomLine(s, n, rng)
		b := cloneVecs(a)
		cuts := []int{4, 11, 19}
		ChunkedSolve(s, a, cuts)
		var ws Workspace
		ChunkedSolveWS(s, b, cuts, &ws)
		for v := range a {
			for k := range a[v] {
				if a[v][k] != b[v][k] {
					t.Fatalf("%s: vec %d elem %d: WS %v != plain %v", s.Name(), v, k, b[v][k], a[v][k])
				}
			}
		}
	}
}

// TestChunkedSolveWSZeroAllocs: the workspace variant must not allocate in
// steady state — it runs inside every executor's inner loop.
func TestChunkedSolveWSZeroAllocs(t *testing.T) {
	s := Tridiag{}
	rng := rand.New(rand.NewSource(3))
	vecs := randomLine(s, 64, rng)
	orig := cloneVecs(vecs)
	cuts := []int{16, 32, 48}
	var ws Workspace
	ChunkedSolveWS(s, vecs, cuts, &ws) // warm up
	allocs := testing.AllocsPerRun(20, func() {
		for v := range vecs {
			copy(vecs[v], orig[v])
		}
		ChunkedSolveWS(s, vecs, cuts, &ws)
	})
	if allocs != 0 {
		t.Fatalf("ChunkedSolveWS allocates %v per run, want 0", allocs)
	}
}

// TestBatchKernelZeroAllocs: the batched kernels themselves must never
// allocate.
func TestBatchKernelZeroAllocs(t *testing.T) {
	for _, s := range []BatchSolver{Recurrence{}, Tridiag{}, NewPenta()} {
		rng := rand.New(rand.NewSource(11))
		nb, n := 16, 32
		lines := make([][][]float64, nb)
		for b := 0; b < nb; b++ {
			lines[b] = randomLineInterior(s, n, rng)
		}
		nv := s.NumVecs()
		panels := packPanel(lines, nv, n, nb)
		save := make([][]float64, nv)
		for v := range panels {
			save[v] = append([]float64(nil), panels[v]...)
		}
		fIn := make([]float64, nb*s.ForwardCarryLen())
		for i := range fIn {
			fIn[i] = rng.Float64() + 1.5
		}
		fOut := make([]float64, nb*s.ForwardCarryLen())
		bIn := make([]float64, nb*s.BackwardCarryLen())
		bOut := make([]float64, nb*s.BackwardCarryLen())
		allocs := testing.AllocsPerRun(10, func() {
			for v := range panels {
				copy(panels[v], save[v])
			}
			s.ForwardBatch(panels, nb, fIn, fOut)
			s.BackwardBatch(panels, nb, bIn, bOut)
		})
		if allocs != 0 {
			t.Fatalf("%s batch kernels allocate %v per run, want 0", s.Name(), allocs)
		}
	}
}

package sweep

import (
	"testing"

	"genmp/internal/obs/metrics"
)

// Cold acquisitions miss, repeat acquisitions at the same (or smaller)
// sizes hit, and growth misses again — the invariant the executor hit-rate
// assertions build on.
func TestWorkspaceStatsHitMiss(t *testing.T) {
	var w Workspace
	w.Panels(2, 16) // cold: header + panels allocate
	w.Views(3)
	w.CarryPair(4)
	w.Bounds([]int{8}, 16)
	st := w.Stats()
	if st.Gets != 4 || st.Hits != 0 {
		t.Fatalf("cold stats = %+v, want 4 gets, 0 hits", st)
	}

	w.Panels(2, 16) // warm: same shapes, all served from capacity
	w.Panels(1, 8)  // smaller is a hit too
	w.Views(3)
	w.CarryPair(4)
	w.Bounds([]int{4}, 12)
	st = w.Stats()
	if st.Gets != 9 || st.Hits != 5 {
		t.Fatalf("warm stats = %+v, want 9 gets, 5 hits", st)
	}
	if got := st.HitRate(); got != 5.0/9.0 {
		t.Errorf("HitRate = %v, want 5/9", got)
	}

	w.Panels(2, 32) // growth: a miss again
	if st = w.Stats(); st.Hits != 5 {
		t.Errorf("growth counted as hit: %+v", st)
	}

	w.ResetStats()
	if st = w.Stats(); st != (WorkspaceStats{}) {
		t.Errorf("stats after reset = %+v, want zero", st)
	}
	w.Panels(2, 32) // buffers survive a reset
	if st = w.Stats(); st.Gets != 1 || st.Hits != 1 {
		t.Errorf("post-reset warm get = %+v, want 1 get, 1 hit", st)
	}

	if (WorkspaceStats{}).HitRate() != 0 {
		t.Error("unused workspace HitRate should be 0, not NaN")
	}
}

// The publisher streams deltas: repeated calls never double-count, and a
// registry attached late receives the full history.
func TestWorkspacePublisherDeltas(t *testing.T) {
	var w Workspace
	var p WorkspacePublisher

	w.Panels(2, 16)
	p.Publish(nil, &w) // metrics off: remembered, not lost

	reg := metrics.New()
	w.Panels(2, 16)
	p.Publish(reg, &w)
	p.Publish(reg, &w) // no new traffic: counters must not move

	read := func(r *metrics.Registry, name string) float64 {
		v, ok := r.Snapshot().Value(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		return v
	}
	if got := read(reg, "sweep_workspace_gets_total"); got != 2 {
		t.Errorf("gets = %g, want 2", got)
	}
	if got := read(reg, "sweep_workspace_hits_total"); got != 1 {
		t.Errorf("hits = %g, want 1", got)
	}

	// A registry swapped in later sees cumulative executor totals.
	reg2 := metrics.New()
	w.Panels(2, 16)
	p.Publish(reg2, &w)
	if got := read(reg2, "sweep_workspace_gets_total"); got != 3 {
		t.Errorf("late registry gets = %g, want full history 3", got)
	}
}

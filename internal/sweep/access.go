package sweep

// PassAccess is an optional Solver refinement declaring which per-line
// arrays each pass touches. Executors on the batched path use it to skip
// packing panels a pass never reads (gather) and unpacking panels it never
// writes (scatter): skipping a scatter of unmodified values is a numeric
// no-op, so bit-identity with the scalar oracle — which always moves every
// vector — is preserved while the pack/unpack traffic shrinks to what the
// kernel actually uses.
//
// Both methods return (touched, written): touched[v] is true when the pass
// reads or writes vector v at all (the executor must gather it), written[v]
// when the pass stores into it (the executor must scatter it). Returned
// slices are shared and must not be mutated. A nil slice means "all".
type PassAccess interface {
	ForwardAccess() (touched, written []bool)
	BackwardAccess() (touched, written []bool)
}

var (
	recurrenceFwdTouched = []bool{true, true}
	recurrenceFwdWritten = []bool{false, true}
	recurrenceBwdNone    = []bool{false, false}

	tridiagAll        = []bool{true, true, true, true}
	tridiagFwdWritten = []bool{false, false, true, true}
	tridiagBwd        = []bool{false, false, true, true}
	tridiagBwdWritten = []bool{false, false, false, true}
)

// ForwardAccess implements PassAccess: x = a·prev + x reads both arrays and
// stores only x.
func (Recurrence) ForwardAccess() (touched, written []bool) {
	return recurrenceFwdTouched, recurrenceFwdWritten
}

// BackwardAccess implements PassAccess: there is no backward pass.
func (Recurrence) BackwardAccess() (touched, written []bool) {
	return recurrenceBwdNone, recurrenceBwdNone
}

// ForwardAccess implements PassAccess: the Thomas elimination reads all four
// arrays and stores c′, d′ into upper and rhs.
func (Tridiag) ForwardAccess() (touched, written []bool) {
	return tridiagAll, tridiagFwdWritten
}

// BackwardAccess implements PassAccess: back-substitution reads upper and
// rhs and stores the solution into rhs.
func (Tridiag) BackwardAccess() (touched, written []bool) {
	return tridiagBwd, tridiagBwdWritten
}

// ForwardAccess implements PassAccess: the in-place elimination touches and
// rewrites every band array (lowers are zeroed, diag/uppers/rhs updated).
func (bd Banded) ForwardAccess() (touched, written []bool) {
	return nil, nil
}

// BackwardAccess implements PassAccess: back-substitution reads diag, the
// uppers and rhs (never the zeroed lowers) and stores only into rhs.
func (bd Banded) BackwardAccess() (touched, written []bool) {
	nv := bd.NumVecs()
	touched = make([]bool, nv)
	written = make([]bool, nv)
	for v := bd.KL; v < nv; v++ {
		touched[v] = true
	}
	written[nv-1] = true
	return touched, written
}

// MaskOn reports whether a mask admits vector v (nil means "all").
func MaskOn(mask []bool, v int) bool { return mask == nil || mask[v] }

// PassMasks resolves the gather/scatter masks an executor should apply for
// one batched pass of s: nil masks mean "move every vector".
func PassMasks(s Solver, backward bool) (touched, written []bool) {
	pa, ok := s.(PassAccess)
	if !ok {
		return nil, nil
	}
	if backward {
		return pa.BackwardAccess()
	}
	return pa.ForwardAccess()
}

package plan_test

import (
	"testing"

	"genmp/internal/obs/metrics"
	"genmp/internal/plan"
	"genmp/internal/sweep"
)

func metricValue(t *testing.T, reg *metrics.Registry, name string, labels ...metrics.Label) float64 {
	t.Helper()
	v, _ := reg.Snapshot().Value(name, labels...)
	return v
}

func TestPlanMetrics(t *testing.T) {
	reg := metrics.New()
	plan.EnableMetrics(reg)
	defer plan.EnableMetrics(nil)

	pl := compile(t)
	if got := metricValue(t, reg, "plan_compiles_total", metrics.L("kind", "multipartition")); got != 1 {
		t.Errorf("compiles{multipartition} = %g, want 1", got)
	}

	if _, err := plan.CompileWavefront(plan.WavefrontSpec{
		P: 4, Eta: []int{16, 8, 8}, Dim: 0, Grain: 4, Solver: sweep.NewPenta(),
	}); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, reg, "plan_compiles_total", metrics.L("kind", "wavefront")); got != 1 {
		t.Errorf("compiles{wavefront} = %g, want 1", got)
	}

	// A rejected spec counts as an error, not a compile.
	if _, err := plan.Compile(plan.Spec{}); err == nil {
		t.Fatal("empty spec compiled")
	}
	if got := metricValue(t, reg, "plan_compile_errors_total"); got != 1 {
		t.Errorf("compile errors = %g, want 1", got)
	}

	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	broken := compile(t)
	broken.Passes[0][0].CarryLen++
	if err := broken.Validate(); err == nil {
		t.Fatal("corrupted plan validated")
	}
	if got := metricValue(t, reg, "plan_validations_total"); got != 2 {
		t.Errorf("validations = %g, want 2", got)
	}
	if got := metricValue(t, reg, "plan_validation_failures_total"); got != 1 {
		t.Errorf("validation failures = %g, want 1", got)
	}

	// Fingerprint memoizes: first call computed, repeats served from cache.
	fp := pl.Fingerprint()
	if pl.Fingerprint() != fp || pl.Fingerprint() != fp {
		t.Error("memoized fingerprint changed across calls")
	}
	if got := metricValue(t, reg, "plan_fingerprints_total", metrics.L("source", "computed")); got != 1 {
		t.Errorf("fingerprints{computed} = %g, want 1", got)
	}
	if got := metricValue(t, reg, "plan_fingerprints_total", metrics.L("source", "cached")); got != 2 {
		t.Errorf("fingerprints{cached} = %g, want 2", got)
	}
}

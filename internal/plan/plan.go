// Package plan is the compiled intermediate representation of a line-sweep
// communication schedule — the repo's stand-in for the schedule dHPF
// materializes at compile time (paper Section 5). A SweepPlan is compiled
// once from (partitioning, modular mapping, solver, per-field halo/layout,
// batch knob) and then consumed by every subsystem that used to re-derive
// it privately: the dist.MultiSweep executor, the dist wavefront pipeline,
// the strict distributed-memory dmem.SweepRunner, the cost model's
// per-phase prediction fold, and the obs plan dump. One plan, many
// consumers — predictions and executors can no longer silently disagree.
//
// The IR materializes, per rank × sweep dimension × direction, the full
// phase schedule: neighbor ranks, tile line geometry in canonical
// (row-major tile, row-major line) order, carry byte counts, and message
// tags drawn from the shared xport.ReserveTags reservation. Validate checks
// the properties the executors rely on: a single neighbor per direction
// (the paper's neighbor property), tag disjointness per channel, and
// byte-count symmetry between matching send/recv phases.
package plan

import (
	"fmt"
	"sync"

	"genmp/internal/core"
	"genmp/internal/grid"
	"genmp/internal/numutil"
	"genmp/internal/sweep"
	"genmp/internal/xport"
)

// SweepTags is the shared tag reservation all compiled sweep schedules mint
// from. Both runtimes (dist and dmem) execute plans drawn from this single
// space: their sweeps never share a machine, and per-channel FIFO order
// disambiguates messages within one run.
var SweepTags = xport.ReserveTags("plan/sweep", 1<<28, 1<<28)

// Spec is the input of Compile: everything a multipartitioned sweep
// schedule depends on.
type Spec struct {
	// M is the multipartitioning (tile grid + modular mapping).
	M *core.Multipartitioning
	// Eta is the array extents the tile grid cuts.
	Eta []int
	// Solver supplies the schedule's identity (name) and the per-line carry
	// lengths that size every message.
	Solver sweep.Solver
	// Halos records the per-field halo depths of the storage the plan will
	// run over (layout metadata carried into the dump; nil when the
	// executor's fields are unpadded or shared).
	Halos []int
	// Batch is the executor's kernel panel-width knob, recorded for the
	// dump (0 = default, negative = scalar oracle). It does not affect the
	// schedule.
	Batch int
	// Tags is the tag space messages are minted from; the zero value picks
	// SweepTags.
	Tags xport.TagSpace
	// Overlap enables the boundary-first split annotation (see Overlap).
	Overlap Overlap
}

// WavefrontSpec is the input of CompileWavefront: a block unipartitioning
// pipelined along its cut dimension.
type WavefrontSpec struct {
	// P is the number of processors (slabs along Dim).
	P int
	// Eta is the array extents.
	Eta []int
	// Dim is the partitioned dimension the pipeline advances along.
	Dim int
	// Grain is the number of lines per pipeline message.
	Grain int
	// Solver supplies the plan identity and carry lengths.
	Solver sweep.Solver
	// Batch is the executor's kernel panel-width knob (metadata).
	Batch int
	// Tags is the tag space; the zero value picks SweepTags.
	Tags xport.TagSpace
	// Overlap enables the boundary-first split annotation (see Overlap).
	Overlap Overlap
}

// Kind distinguishes the two schedule families the IR covers.
type Kind string

const (
	// KindMultipartition is a full multipartitioned sweep: γ_dim phases per
	// direction, one aggregated carry message per phase boundary.
	KindMultipartition Kind = "multipartition"
	// KindWavefront is a pipelined block sweep: one phase per grain block,
	// carries flowing rank to rank along the cut dimension.
	KindWavefront Kind = "wavefront"
)

// Tile is one tile's line geometry inside a phase, in the canonical order
// both runtimes iterate (row-major tiles, row-major lines within a tile).
type Tile struct {
	// Coord is the tile-grid coordinate (nil for wavefront plans, whose
	// "tile" is the rank's whole slab).
	Coord []int
	// Rect is the tile's index region of the global array.
	Rect grid.Rect
	// LineOff is the offset of this tile's first line in the canonical line
	// order: within the phase (and so within the carry payload) for
	// multipartitioned plans, within the rank's full pass for wavefront
	// blocks (whose executors index the slab's line list directly).
	LineOff int
	// Lines is the tile's cross-section line count orthogonal to the sweep.
	Lines int
	// ChunkLen is the tile's extent along the sweep dimension.
	ChunkLen int
}

// Phase is one step of a pass: receive the upstream carries, compute the
// slab's tiles, ship the downstream carries.
type Phase struct {
	// Slab is the slab index (multipartition) or pipeline block index
	// (wavefront) this phase covers.
	Slab int
	// RecvFrom / SendTo are the single upstream / downstream ranks, −1 at
	// the open ends of the chain.
	RecvFrom int
	SendTo   int
	// RecvTag / SendTag are the message tags of the carries (meaningful
	// only when the corresponding rank is ≥ 0).
	RecvTag int
	SendTag int
	// RecvBytes / SendBytes are the carry message sizes: Lines × carry
	// length × 8. Matching send/recv phases must agree (Validate checks).
	RecvBytes int
	SendBytes int
	// Lines is the total line count across the phase's tiles.
	Lines int
	// Tiles is the phase's tile geometry in canonical order.
	Tiles []Tile
	// Boundary is the overlap split point: the first Boundary lines of the
	// canonical order form the boundary set an overlapping executor solves
	// (and ships) first; the remaining Lines−Boundary interior lines solve
	// while the boundary carry is in flight. 0 = unsplit (always, when the
	// plan was compiled without Overlap).
	Boundary int
	// InteriorRecvTag / InteriorSendTag are the tags of the interior carry
	// messages of a split phase (Boundary > 0): the boundary carries travel
	// under RecvTag/SendTag, the interior remainder under these. Zero when
	// unsplit or when the corresponding peer does not exist.
	InteriorRecvTag int
	InteriorSendTag int
}

// Pass is one direction of one sweep dimension for one rank.
type Pass struct {
	// Dim is the sweep dimension.
	Dim int
	// Backward marks the back-substitution direction.
	Backward bool
	// CarryLen is the per-line carry length (float64s) of this direction.
	CarryLen int
	// Phases is the ordered phase schedule.
	Phases []Phase
}

// SweepPlan is the compiled schedule: per rank, per (dimension, direction),
// the full phase sequence an executor runs and a cost fold predicts over.
type SweepPlan struct {
	Kind Kind
	P    int
	Eta  []int
	// Gamma is the tile-grid shape (multipartition plans; nil otherwise).
	Gamma []int
	// Dim / Grain describe wavefront plans (Dim = −1 otherwise).
	Dim   int
	Grain int
	// Solver identity and per-direction carry lengths.
	Solver        string
	ForwardCarry  int
	BackwardCarry int
	// Halos / Batch are compile-input metadata (see Spec); they do not
	// affect the schedule or the Fingerprint.
	Halos []int
	Batch int
	// Tags is the reservation every RecvTag/SendTag falls in.
	Tags xport.TagSpace
	// Overlap records whether (and how) the plan's phases carry the
	// boundary-first split annotation. Executors switch schedules on it;
	// plans compiled with it off are byte-identical to pre-overlap compiles.
	Overlap Overlap
	// Passes is indexed [rank][dim*2 + direction] (direction 1 = backward).
	Passes [][]Pass
	// fpOnce/fp memoize Fingerprint. A plan is immutable once compiled, and
	// its consumers fingerprint repeatedly (equivalence checks, dump keys);
	// callers who hand-build and then mutate a SweepPlan must not
	// fingerprint it before the mutation.
	fpOnce sync.Once
	fp     string
}

// Pass returns rank q's schedule for a sweep along dim in the given
// direction. Pure slice indexing — safe to call from every rank's
// goroutine concurrently, allocation-free.
func (pl *SweepPlan) Pass(q, dim int, backward bool) *Pass {
	k := dim * 2
	if backward {
		k++
	}
	return &pl.Passes[q][k]
}

// sweepTag mints the tag of the carry crossing the given phase boundary:
// the (dim, direction) pair selects a 2²⁰-tag band, the boundary index the
// offset within it. Identical to the formula both runtimes historically
// used, so dist-side tag values are unchanged.
func sweepTag(ts xport.TagSpace, dim int, backward bool, phase int) int {
	pass := 0
	if backward {
		pass = 1
	}
	return ts.Tag((dim*2+pass)<<20 | phase)
}

// carryLens returns the per-direction carry lengths of a solver.
func carryLens(s sweep.Solver) (fwd, bwd int) {
	return s.ForwardCarryLen(), s.BackwardCarryLen()
}

// Compile builds the full multipartitioned sweep schedule of spec, eagerly
// over every rank × dimension × direction. The schedule is derived from
// core.Multipartitioning.SweepSchedule and TileBounds exactly as the
// executors historically did, so a rewired executor replays byte-identical
// Compute/Send/Recv sequences.
func Compile(spec Spec) (pl *SweepPlan, err error) {
	defer func() { countCompile(KindMultipartition, err) }()
	if spec.M == nil {
		return nil, fmt.Errorf("plan: Compile: Spec.M is nil")
	}
	if spec.Solver == nil {
		return nil, fmt.Errorf("plan: Compile: Spec.Solver is nil")
	}
	d := spec.M.Dims()
	if len(spec.Eta) != d {
		return nil, fmt.Errorf("plan: Compile: eta has %d extents for a %d-dimensional partitioning", len(spec.Eta), d)
	}
	gamma := spec.M.Gamma()
	for i, e := range spec.Eta {
		if e < gamma[i] {
			return nil, fmt.Errorf("plan: Compile: extent η[%d] = %d smaller than cut count γ[%d] = %d", i, e, i, gamma[i])
		}
	}
	tags := spec.Tags
	if tags.Size() == 0 {
		tags = SweepTags
	}
	fwd, bwd := carryLens(spec.Solver)
	p := spec.M.P()
	pl = &SweepPlan{
		Kind:          KindMultipartition,
		P:             p,
		Eta:           numutil.CopyInts(spec.Eta),
		Gamma:         gamma,
		Dim:           -1,
		Solver:        spec.Solver.Name(),
		ForwardCarry:  fwd,
		BackwardCarry: bwd,
		Halos:         numutil.CopyInts(spec.Halos),
		Batch:         spec.Batch,
		Tags:          tags,
		Passes:        make([][]Pass, p),
	}
	for q := 0; q < p; q++ {
		pl.Passes[q] = make([]Pass, 2*d)
		for dim := 0; dim < d; dim++ {
			for _, backward := range []bool{false, true} {
				carry := fwd
				if backward {
					carry = bwd
				}
				pass := Pass{Dim: dim, Backward: backward, CarryLen: carry}
				pass.Phases = compileMultiPass(spec, tags, q, dim, backward, carry)
				k := dim * 2
				if backward {
					k++
				}
				pl.Passes[q][k] = pass
			}
		}
	}
	if spec.Overlap.Enabled {
		pl.applyOverlap(spec.Overlap)
	}
	return pl, nil
}

// compileMultiPass resolves one rank's phase schedule for one (dim,
// direction) from the runtime sweep schedule and the tile bounds.
func compileMultiPass(spec Spec, tags xport.TagSpace, q, dim int, backward bool, carry int) []Phase {
	step := 1
	if backward {
		step = -1
	}
	sched := spec.M.SweepSchedule(q, dim, backward)
	recvFrom := -1
	if len(sched) > 1 {
		recvFrom = spec.M.NeighborProc(q, dim, -step)
	}
	phases := make([]Phase, len(sched))
	for k, sp := range sched {
		ph := Phase{Slab: sp.Slab, RecvFrom: -1, SendTo: sp.SendTo, Tiles: make([]Tile, len(sp.Tiles))}
		lineOff := 0
		for ti, tile := range sp.Tiles {
			lo, hi := spec.M.TileBounds(spec.Eta, tile)
			n := 1
			for j := range spec.Eta {
				if j != dim {
					n *= hi[j] - lo[j]
				}
			}
			ph.Tiles[ti] = Tile{
				Coord:    numutil.CopyInts(tile),
				Rect:     grid.RectOf(lo, hi),
				LineOff:  lineOff,
				Lines:    n,
				ChunkLen: hi[dim] - lo[dim],
			}
			lineOff += n
		}
		ph.Lines = lineOff
		if k > 0 {
			ph.RecvFrom = recvFrom
			ph.RecvTag = sweepTag(tags, dim, backward, k)
			ph.RecvBytes = ph.Lines * carry * 8
		}
		if ph.SendTo >= 0 {
			ph.SendTag = sweepTag(tags, dim, backward, k+1)
			ph.SendBytes = ph.Lines * carry * 8
		}
		phases[k] = ph
	}
	return phases
}

// CompileWavefront builds the pipelined sweep schedule of a block
// unipartitioning: per direction, one phase per grain block of the lines
// crossing the rank's slab, with carries flowing to the next rank along the
// cut dimension. Unlike multipartitioned phases, a wavefront block's send
// and recv share one tag (block index); the chain pairs sender phase m with
// receiver phase m.
func CompileWavefront(spec WavefrontSpec) (pl *SweepPlan, err error) {
	defer func() { countCompile(KindWavefront, err) }()
	if spec.P < 1 {
		return nil, fmt.Errorf("plan: CompileWavefront: p = %d must be ≥ 1", spec.P)
	}
	if spec.Solver == nil {
		return nil, fmt.Errorf("plan: CompileWavefront: Spec.Solver is nil")
	}
	d := len(spec.Eta)
	if spec.Dim < 0 || spec.Dim >= d {
		return nil, fmt.Errorf("plan: CompileWavefront: dim %d out of range for rank %d", spec.Dim, d)
	}
	if spec.Eta[spec.Dim] < spec.P {
		return nil, fmt.Errorf("plan: CompileWavefront: extent η[%d] = %d smaller than p = %d", spec.Dim, spec.Eta[spec.Dim], spec.P)
	}
	if spec.Grain < 1 {
		return nil, fmt.Errorf("plan: CompileWavefront: grain %d must be ≥ 1", spec.Grain)
	}
	tags := spec.Tags
	if tags.Size() == 0 {
		tags = SweepTags
	}
	fwd, bwd := carryLens(spec.Solver)
	pl = &SweepPlan{
		Kind:          KindWavefront,
		P:             spec.P,
		Eta:           numutil.CopyInts(spec.Eta),
		Dim:           spec.Dim,
		Grain:         spec.Grain,
		Solver:        spec.Solver.Name(),
		ForwardCarry:  fwd,
		BackwardCarry: bwd,
		Batch:         spec.Batch,
		Tags:          tags,
		Passes:        make([][]Pass, spec.P),
	}
	for q := 0; q < spec.P; q++ {
		pl.Passes[q] = make([]Pass, 2*d)
		for _, backward := range []bool{false, true} {
			carry := fwd
			if backward {
				carry = bwd
			}
			pass := Pass{Dim: spec.Dim, Backward: backward, CarryLen: carry}
			pass.Phases = compileWavefrontPass(spec, tags, q, backward, carry)
			k := spec.Dim * 2
			if backward {
				k++
			}
			pl.Passes[q][k] = pass
		}
		// The other dimensions are fully local for a block partitioning:
		// their passes stay empty (Dim/Backward filled for self-description).
		for dim := 0; dim < d; dim++ {
			if dim == spec.Dim {
				continue
			}
			pl.Passes[q][dim*2] = Pass{Dim: dim, CarryLen: fwd}
			pl.Passes[q][dim*2+1] = Pass{Dim: dim, Backward: true, CarryLen: bwd}
		}
	}
	if spec.Overlap.Enabled {
		pl.applyOverlap(spec.Overlap)
	}
	return pl, nil
}

// compileWavefrontPass resolves one rank's pipeline blocks for one
// direction.
func compileWavefrontPass(spec WavefrontSpec, tags xport.TagSpace, q int, backward bool, carry int) []Phase {
	lo := make([]int, len(spec.Eta))
	hi := numutil.CopyInts(spec.Eta)
	lo[spec.Dim], hi[spec.Dim] = core.BlockRange(spec.Eta[spec.Dim], spec.P, q)
	rect := grid.RectOf(lo, hi)
	chunkLen := hi[spec.Dim] - lo[spec.Dim]
	totalLines := 1
	for j := range spec.Eta {
		if j != spec.Dim {
			totalLines *= spec.Eta[j]
		}
	}
	upstream, downstream := q-1, q+1
	if backward {
		upstream, downstream = q+1, q-1
	}
	if upstream < 0 || upstream >= spec.P {
		upstream = -1
	}
	if downstream < 0 || downstream >= spec.P {
		downstream = -1
	}
	blocks := numutil.CeilDiv(totalLines, spec.Grain)
	phases := make([]Phase, blocks)
	for m := 0; m < blocks; m++ {
		first := m * spec.Grain
		count := numutil.MinInt(spec.Grain, totalLines-first)
		ph := Phase{
			Slab:     m,
			RecvFrom: upstream,
			SendTo:   downstream,
			Lines:    count,
			Tiles:    []Tile{{Rect: rect, LineOff: first, Lines: count, ChunkLen: chunkLen}},
		}
		if upstream >= 0 {
			ph.RecvTag = sweepTag(tags, spec.Dim, backward, m)
			ph.RecvBytes = count * carry * 8
		}
		if downstream >= 0 {
			ph.SendTag = sweepTag(tags, spec.Dim, backward, m)
			ph.SendBytes = count * carry * 8
		}
		phases[m] = ph
	}
	return phases
}

// Elements returns the total number of array elements the plan computes in
// one sweep along dim, summed over all ranks — exactly η for a complete
// schedule (the cost fold's K₁ volume).
func (pl *SweepPlan) Elements(dim int) int {
	n := 0
	for q := 0; q < pl.P; q++ {
		for _, ph := range pl.Pass(q, dim, false).Phases {
			for _, t := range ph.Tiles {
				n += t.Lines * t.ChunkLen
			}
		}
	}
	return n
}

// DimSendBytes returns the total carry bytes the plan schedules for a full
// sweep along dim (both directions, all ranks) — the expected-traffic side
// of the obs audit.
func (pl *SweepPlan) DimSendBytes(dim int) int {
	n := 0
	for q := 0; q < pl.P; q++ {
		for _, backward := range []bool{false, true} {
			for _, ph := range pl.Pass(q, dim, backward).Phases {
				if ph.SendTo >= 0 {
					n += ph.SendBytes
				}
			}
		}
	}
	return n
}

// TotalSendBytes returns the carry bytes of one full round of sweeps along
// every dimension.
func (pl *SweepPlan) TotalSendBytes() int {
	n := 0
	for dim := range pl.Eta {
		n += pl.DimSendBytes(dim)
	}
	return n
}

package plan

import (
	"fmt"
	"sort"
	"strings"
)

// Validate checks the structural invariants the executors and the cost fold
// rely on, failing with the first violated one:
//
//   - shape: P ranks, each with a pass per (dimension, direction), carry
//     lengths consistent across ranks, phase line counts matching their
//     tile geometry and byte counts matching Lines × CarryLen × 8;
//   - neighbor property: within one pass every phase that communicates
//     names the same single upstream and the same single downstream rank
//     (the property that makes one aggregated message per phase legal);
//   - tag overlap: every tag falls inside the plan's reservation, and no
//     rank reuses a tag on the same channel (same peer, same direction of
//     transfer) — a collision would let the simulator match the wrong
//     carries;
//   - byte-count symmetry: every send phase has a matching recv phase on
//     the destination rank (the next phase index for multipartitioned
//     plans, the same block index for wavefronts) agreeing on source, tag,
//     byte count, and per-tile line counts.
func (pl *SweepPlan) Validate() (err error) {
	if pm := planMetricsPtr.Load(); pm != nil {
		pm.validations.Inc()
		defer func() {
			if err != nil {
				pm.validationFail.Inc()
			}
		}()
	}
	if err := pl.validateShape(); err != nil {
		return err
	}
	if err := pl.validateNeighbors(); err != nil {
		return err
	}
	if err := pl.validateTags(); err != nil {
		return err
	}
	if err := pl.validateOverlap(); err != nil {
		return err
	}
	return pl.validateSymmetry()
}

// passName renders a pass position for error messages.
func passName(q int, pass *Pass) string {
	dir := "forward"
	if pass.Backward {
		dir = "backward"
	}
	return fmt.Sprintf("rank %d dim %d %s", q, pass.Dim, dir)
}

func (pl *SweepPlan) validateShape() error {
	if pl.P < 1 {
		return fmt.Errorf("plan: invalid processor count %d", pl.P)
	}
	if len(pl.Passes) != pl.P {
		return fmt.Errorf("plan: %d rank schedules for %d processors", len(pl.Passes), pl.P)
	}
	d := len(pl.Eta)
	for q, passes := range pl.Passes {
		if len(passes) != 2*d {
			return fmt.Errorf("plan: rank %d has %d passes, want %d (one per dimension and direction)", q, len(passes), 2*d)
		}
		for k := range passes {
			pass := &passes[k]
			wantDim, wantBwd := k/2, k%2 == 1
			if pass.Dim != wantDim || pass.Backward != wantBwd {
				return fmt.Errorf("plan: rank %d pass %d labeled (dim %d, backward %v), want (dim %d, backward %v)",
					q, k, pass.Dim, pass.Backward, wantDim, wantBwd)
			}
			wantCarry := pl.ForwardCarry
			if pass.Backward {
				wantCarry = pl.BackwardCarry
			}
			if pass.CarryLen != wantCarry {
				return fmt.Errorf("plan: %s: carry length %d disagrees with solver %s's %d",
					passName(q, pass), pass.CarryLen, pl.Solver, wantCarry)
			}
			// Multipartitioned phases restart the canonical line order per
			// phase (each phase has its own carry payload); wavefront blocks
			// index into the rank's full line order, so their offsets
			// accumulate across the pass.
			passOff := 0
			for i := range pass.Phases {
				ph := &pass.Phases[i]
				off := 0
				if pl.Kind == KindWavefront {
					off = passOff
				}
				lines := 0
				for ti := range ph.Tiles {
					t := &ph.Tiles[ti]
					if t.LineOff != off {
						return fmt.Errorf("plan: %s phase %d tile %d: line offset %d, want %d (canonical order)",
							passName(q, pass), i, ti, t.LineOff, off)
					}
					lines += t.Lines
					off += t.Lines
				}
				passOff += lines
				if ph.Lines != lines {
					return fmt.Errorf("plan: %s phase %d: Lines = %d but tiles hold %d", passName(q, pass), i, ph.Lines, lines)
				}
				if ph.SendTo >= 0 && ph.SendBytes != ph.Lines*pass.CarryLen*8 {
					return fmt.Errorf("plan: %s phase %d: SendBytes = %d, want %d lines × %d carries × 8",
						passName(q, pass), i, ph.SendBytes, ph.Lines, pass.CarryLen)
				}
				if ph.RecvFrom >= 0 && ph.RecvBytes != ph.Lines*pass.CarryLen*8 {
					return fmt.Errorf("plan: %s phase %d: RecvBytes = %d, want %d lines × %d carries × 8",
						passName(q, pass), i, ph.RecvBytes, ph.Lines, pass.CarryLen)
				}
				if ph.SendTo == q || ph.RecvFrom == q {
					return fmt.Errorf("plan: %s phase %d: rank sends/receives to itself", passName(q, pass), i)
				}
				if ph.SendTo >= pl.P || ph.RecvFrom >= pl.P {
					return fmt.Errorf("plan: %s phase %d: peer out of range (recv %d, send %d, p %d)",
						passName(q, pass), i, ph.RecvFrom, ph.SendTo, pl.P)
				}
			}
		}
	}
	return nil
}

// validateNeighbors enforces the neighbor property phase-aggregation
// depends on: within one pass, a single downstream rank receives every
// carry the rank ships and a single upstream rank feeds every carry it
// consumes.
func (pl *SweepPlan) validateNeighbors() error {
	for q, passes := range pl.Passes {
		for k := range passes {
			pass := &passes[k]
			sendTo, recvFrom := -1, -1
			for i := range pass.Phases {
				ph := &pass.Phases[i]
				if ph.SendTo >= 0 {
					if sendTo >= 0 && ph.SendTo != sendTo {
						return fmt.Errorf("plan: %s: phases send to both rank %d and rank %d — neighbor property violated",
							passName(q, pass), sendTo, ph.SendTo)
					}
					sendTo = ph.SendTo
				}
				if ph.RecvFrom >= 0 {
					if recvFrom >= 0 && ph.RecvFrom != recvFrom {
						return fmt.Errorf("plan: %s: phases receive from both rank %d and rank %d — neighbor property violated",
							passName(q, pass), recvFrom, ph.RecvFrom)
					}
					recvFrom = ph.RecvFrom
				}
			}
		}
	}
	return nil
}

// validateTags checks containment in the plan's reservation and per-channel
// uniqueness: one rank must never post two sends to the same peer, or two
// receives from the same peer, under one tag within a plan execution.
func (pl *SweepPlan) validateTags() error {
	type channel struct {
		peer, tag int
		recv      bool
	}
	for q, passes := range pl.Passes {
		seen := map[channel]string{}
		for k := range passes {
			pass := &passes[k]
			for i := range pass.Phases {
				ph := &pass.Phases[i]
				at := fmt.Sprintf("%s phase %d", passName(q, pass), i)
				if ph.SendTo >= 0 {
					if !pl.Tags.Contains(ph.SendTag) {
						return fmt.Errorf("plan: %s: send tag %d outside reservation %q [%d,+%d)",
							at, ph.SendTag, pl.Tags.Name(), pl.Tags.Base(), pl.Tags.Size())
					}
					c := channel{peer: ph.SendTo, tag: ph.SendTag}
					if prev, dup := seen[c]; dup {
						return fmt.Errorf("plan: %s: send tag %d to rank %d already used by %s — tag overlap",
							at, ph.SendTag, ph.SendTo, prev)
					}
					seen[c] = at
					if ph.Boundary > 0 {
						ci := channel{peer: ph.SendTo, tag: ph.InteriorSendTag}
						if prev, dup := seen[ci]; dup {
							return fmt.Errorf("plan: %s: interior send tag %d to rank %d already used by %s — tag overlap",
								at, ph.InteriorSendTag, ph.SendTo, prev)
						}
						seen[ci] = at
					}
				}
				if ph.RecvFrom >= 0 {
					if !pl.Tags.Contains(ph.RecvTag) {
						return fmt.Errorf("plan: %s: recv tag %d outside reservation %q [%d,+%d)",
							at, ph.RecvTag, pl.Tags.Name(), pl.Tags.Base(), pl.Tags.Size())
					}
					c := channel{peer: ph.RecvFrom, tag: ph.RecvTag, recv: true}
					if prev, dup := seen[c]; dup {
						return fmt.Errorf("plan: %s: recv tag %d from rank %d already used by %s — tag overlap",
							at, ph.RecvTag, ph.RecvFrom, prev)
					}
					seen[c] = at
					if ph.Boundary > 0 {
						ci := channel{peer: ph.RecvFrom, tag: ph.InteriorRecvTag, recv: true}
						if prev, dup := seen[ci]; dup {
							return fmt.Errorf("plan: %s: interior recv tag %d from rank %d already used by %s — tag overlap",
								at, ph.InteriorRecvTag, ph.RecvFrom, prev)
						}
						seen[ci] = at
					}
				}
			}
		}
	}
	return nil
}

// matchOffset is the receiver phase index paired with sender phase k: the
// next phase of the receiver's own schedule for multipartitioned sweeps,
// the same pipeline block for wavefronts.
func (pl *SweepPlan) matchOffset() int {
	if pl.Kind == KindWavefront {
		return 0
	}
	return 1
}

// validateSymmetry pairs every send phase with the receive phase that
// consumes it and checks source, tag, byte count, and per-tile line counts
// (cross-sections are preserved by the one-slab shift, so mismatched tile
// line counts mean a corrupted schedule).
func (pl *SweepPlan) validateSymmetry() error {
	off := pl.matchOffset()
	for q, passes := range pl.Passes {
		for k := range passes {
			pass := &passes[k]
			for i := range pass.Phases {
				ph := &pass.Phases[i]
				if ph.SendTo < 0 {
					continue
				}
				at := fmt.Sprintf("%s phase %d", passName(q, pass), i)
				peer := pl.Passes[ph.SendTo][k]
				j := i + off
				if j >= len(peer.Phases) {
					return fmt.Errorf("plan: %s: sends to rank %d, which has no matching phase %d", at, ph.SendTo, j)
				}
				rp := &peer.Phases[j]
				if rp.RecvFrom != q {
					return fmt.Errorf("plan: %s: sends to rank %d, whose phase %d receives from rank %d",
						at, ph.SendTo, j, rp.RecvFrom)
				}
				if rp.RecvTag != ph.SendTag {
					return fmt.Errorf("plan: %s: send tag %d but rank %d phase %d receives tag %d",
						at, ph.SendTag, ph.SendTo, j, rp.RecvTag)
				}
				if rp.RecvBytes != ph.SendBytes {
					return fmt.Errorf("plan: %s: sends %d bytes but rank %d phase %d expects %d — byte-count symmetry violated",
						at, ph.SendBytes, ph.SendTo, j, rp.RecvBytes)
				}
				if rp.Boundary != ph.Boundary {
					return fmt.Errorf("plan: %s: boundary split %d but rank %d phase %d expects %d — overlap symmetry violated",
						at, ph.Boundary, ph.SendTo, j, rp.Boundary)
				}
				if ph.Boundary > 0 && rp.InteriorRecvTag != ph.InteriorSendTag {
					return fmt.Errorf("plan: %s: interior send tag %d but rank %d phase %d receives interior tag %d",
						at, ph.InteriorSendTag, ph.SendTo, j, rp.InteriorRecvTag)
				}
				if pl.Kind == KindMultipartition {
					if len(rp.Tiles) != len(ph.Tiles) {
						return fmt.Errorf("plan: %s: %d tiles feed %d receiving tiles on rank %d phase %d",
							at, len(ph.Tiles), len(rp.Tiles), ph.SendTo, j)
					}
					for ti := range ph.Tiles {
						if ph.Tiles[ti].Lines != rp.Tiles[ti].Lines {
							return fmt.Errorf("plan: %s tile %d: %d lines feed %d lines on rank %d phase %d — cross-sections must match",
								at, ti, ph.Tiles[ti].Lines, rp.Tiles[ti].Lines, ph.SendTo, j)
						}
					}
				}
			}
		}
	}
	return nil
}

// Fingerprint renders the executable schedule deterministically: kind,
// dimensions, solver identity, carry lengths, tag space, and every rank's
// passes, phases and tiles. Two plans with equal fingerprints run
// byte-identical schedules. Compile-input metadata that does not affect the
// wire schedule (Halos, Batch) is deliberately excluded, so the dist and
// dmem runtimes compile byte-identical fingerprints for one configuration.
//
// The rendering is memoized: the first call materializes the string, later
// calls return it — a compiled plan is immutable, so repeated equivalence
// checks and dump keys pay the walk once.
func (pl *SweepPlan) Fingerprint() string {
	computed := false
	pl.fpOnce.Do(func() {
		computed = true
		pl.fp = pl.fingerprint()
	})
	if pm := planMetricsPtr.Load(); pm != nil {
		if computed {
			pm.fpComputed.Inc()
		} else {
			pm.fpCached.Inc()
		}
	}
	return pl.fp
}

// fingerprint renders the schedule (see Fingerprint).
func (pl *SweepPlan) fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kind=%s p=%d eta=%v gamma=%v dim=%d grain=%d solver=%s carry=%d/%d tags=%s[%d,+%d)\n",
		pl.Kind, pl.P, pl.Eta, pl.Gamma, pl.Dim, pl.Grain, pl.Solver,
		pl.ForwardCarry, pl.BackwardCarry, pl.Tags.Name(), pl.Tags.Base(), pl.Tags.Size())
	// Overlap renders only when enabled, so plans compiled without it keep
	// their historical fingerprints (and the committed goldens) byte for
	// byte.
	if pl.Overlap.Enabled {
		fmt.Fprintf(&sb, "overlap frac=%g\n", pl.Overlap.Frac)
	}
	for q, passes := range pl.Passes {
		for k := range passes {
			pass := &passes[k]
			fmt.Fprintf(&sb, "q%d dim%d bwd=%v carry=%d\n", q, pass.Dim, pass.Backward, pass.CarryLen)
			for i := range pass.Phases {
				ph := &pass.Phases[i]
				fmt.Fprintf(&sb, " ph%d slab=%d recv=%d/%d/%dB send=%d/%d/%dB lines=%d",
					i, ph.Slab, ph.RecvFrom, ph.RecvTag, ph.RecvBytes, ph.SendTo, ph.SendTag, ph.SendBytes, ph.Lines)
				if pl.Overlap.Enabled {
					fmt.Fprintf(&sb, " b=%d it=%d/%d", ph.Boundary, ph.InteriorRecvTag, ph.InteriorSendTag)
				}
				sb.WriteString("\n")
				for ti := range ph.Tiles {
					t := &ph.Tiles[ti]
					fmt.Fprintf(&sb, "  t%d coord=%v lo=%v hi=%v off=%d lines=%d chunk=%d\n",
						ti, t.Coord, t.Rect.Lo, t.Rect.Hi, t.LineOff, t.Lines, t.ChunkLen)
				}
			}
		}
	}
	return sb.String()
}

// Summary renders a one-paragraph human description: phase counts, carry
// traffic, and the per-dimension boundary counts — the CLI -plan preamble.
func (pl *SweepPlan) Summary() string {
	var sb strings.Builder
	switch pl.Kind {
	case KindWavefront:
		fmt.Fprintf(&sb, "wavefront plan: p=%d eta=%v dim=%d grain=%d solver=%s\n", pl.P, pl.Eta, pl.Dim, pl.Grain, pl.Solver)
	default:
		fmt.Fprintf(&sb, "multipartition plan: p=%d eta=%v gamma=%v solver=%s\n", pl.P, pl.Eta, pl.Gamma, pl.Solver)
	}
	dims := make([]int, 0, len(pl.Eta))
	for dim := range pl.Eta {
		dims = append(dims, dim)
	}
	sort.Ints(dims)
	for _, dim := range dims {
		phases := 0
		if pl.P > 0 {
			phases = len(pl.Pass(0, dim, false).Phases)
		}
		fmt.Fprintf(&sb, "  dim %d: %d phase(s)/rank, %d carry bytes/sweep\n", dim, phases, pl.DimSendBytes(dim))
	}
	return sb.String()
}

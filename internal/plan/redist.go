package plan

import "genmp/internal/xport"

// RedistTags is the tag reservation redistribution schedules mint from by
// default — the plan layer's tag discipline (central reservation, Validate
// checks containment and per-channel uniqueness, exactly as SweepTags'
// consumers do) extended to the redistribution phases compiled by
// internal/redist. Wrappers that must reproduce a historical schedule
// bit-for-bit (the dist and dmem halo exchanges) pass their legacy spaces
// instead, so existing tag values on the wire are unchanged.
var RedistTags = xport.ReserveTags("plan/redist", 1<<27, 64)

// Live metrics bridge for the plan compiler. EnableMetrics mirrors
// compilation, validation and fingerprint-cache activity into an
// obs/metrics.Registry; disabled (the default) the compiler pays one
// atomic load per entry point and nothing else.
package plan

import (
	"sync/atomic"

	"genmp/internal/obs/metrics"
)

type planMetrics struct {
	reg            *metrics.Registry
	compilesMulti  *metrics.Counter
	compilesWave   *metrics.Counter
	compileErrors  *metrics.Counter
	validations    *metrics.Counter
	validationFail *metrics.Counter
	fpComputed     *metrics.Counter
	fpCached       *metrics.Counter
}

var planMetricsPtr atomic.Pointer[planMetrics]

// EnableMetrics mirrors plan-compiler activity into reg (nil disables).
func EnableMetrics(reg *metrics.Registry) {
	if reg == nil {
		planMetricsPtr.Store(nil)
		return
	}
	pm := &planMetrics{
		reg:            reg,
		compilesMulti:  reg.Counter("plan_compiles_total", "successful plan compilations, by schedule kind", metrics.L("kind", "multipartition")),
		compilesWave:   reg.Counter("plan_compiles_total", "successful plan compilations, by schedule kind", metrics.L("kind", "wavefront")),
		compileErrors:  reg.Counter("plan_compile_errors_total", "plan compilations rejected with an error"),
		validations:    reg.Counter("plan_validations_total", "SweepPlan.Validate calls"),
		validationFail: reg.Counter("plan_validation_failures_total", "SweepPlan.Validate calls that found a violation"),
		fpComputed:     reg.Counter("plan_fingerprints_total", "Fingerprint calls, by how the result was produced", metrics.L("source", "computed")),
		fpCached:       reg.Counter("plan_fingerprints_total", "Fingerprint calls, by how the result was produced", metrics.L("source", "cached")),
	}
	planMetricsPtr.Store(pm)
}

// countCompile records one Compile/CompileWavefront outcome.
func countCompile(kind Kind, err error) {
	pm := planMetricsPtr.Load()
	if pm == nil {
		return
	}
	if err != nil {
		pm.compileErrors.Inc()
		return
	}
	if kind == KindWavefront {
		pm.compilesWave.Inc()
	} else {
		pm.compilesMulti.Inc()
	}
}

package plan_test

import (
	"testing"

	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/dmem"
	"genmp/internal/plan"
	"genmp/internal/sweep"
)

// TestCrossRuntimeEquivalence is the contract the refactor exists for: the
// shared-memory dist executor, the strict distributed-memory dmem runtime,
// and a direct Compile all produce byte-identical schedules for one
// configuration. The runtimes differ only in storage binding (halo padding,
// batch width), which the fingerprint deliberately excludes.
func TestCrossRuntimeEquivalence(t *testing.T) {
	m, err := core.NewGeneralized(6, []int{2, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	eta := []int{12, 12, 12}
	solver := sweep.Tridiag{}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		t.Fatal(err)
	}

	ms, err := dist.NewMultiSweep(env, solver, nil)
	if err != nil {
		t.Fatal(err)
	}
	distPlan := ms.CompiledPlan()
	if err := distPlan.Validate(); err != nil {
		t.Fatalf("dist plan invalid: %v", err)
	}

	dmemPlan, err := dmem.CompileSweepPlan(env, solver)
	if err != nil {
		t.Fatal(err)
	}
	if err := dmemPlan.Validate(); err != nil {
		t.Fatalf("dmem plan invalid: %v", err)
	}

	// A runner built over padded per-rank fields still compiles the same
	// schedule — padding lives in its binding cache, not the plan.
	fields := make([]*dmem.Field, solver.NumVecs())
	for i := range fields {
		fields[i] = dmem.NewField(env, 0, 1)
	}
	runnerPlan := dmem.NewSweepRunner(solver, fields).CompiledPlan()
	if err := runnerPlan.Validate(); err != nil {
		t.Fatalf("dmem runner plan invalid: %v", err)
	}

	direct, err := plan.Compile(plan.Spec{M: m, Eta: eta, Solver: solver})
	if err != nil {
		t.Fatal(err)
	}

	want := direct.Fingerprint()
	for _, c := range []struct {
		name string
		got  string
	}{
		{"dist", distPlan.Fingerprint()},
		{"dmem", dmemPlan.Fingerprint()},
		{"dmem runner", runnerPlan.Fingerprint()},
	} {
		if c.got != want {
			t.Errorf("%s fingerprint diverges from direct Compile:\n%s\nvs\n%s", c.name, c.got, want)
		}
	}
}

package plan_test

import (
	"strings"
	"testing"

	"genmp/internal/core"
	"genmp/internal/plan"
	"genmp/internal/sweep"
)

// compile builds a 4-rank 2×2×4 plan over a 12³ array: γ[2] = 4 gives
// multi-phase passes (several sends per pass) so every Validate check has
// something to bite on.
func compile(t *testing.T) *plan.SweepPlan {
	t.Helper()
	m, err := core.NewGeneralized(4, []int{2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Compile(plan.Spec{M: m, Eta: []int{12, 12, 12}, Solver: sweep.NewPenta()})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestCompileMultipartition(t *testing.T) {
	pl := compile(t)
	if err := pl.Validate(); err != nil {
		t.Fatalf("fresh plan invalid: %v", err)
	}
	if pl.Kind != plan.KindMultipartition || pl.P != 4 || pl.Dim != -1 {
		t.Errorf("header = kind %v p %d dim %d", pl.Kind, pl.P, pl.Dim)
	}
	s := sweep.NewPenta()
	if pl.ForwardCarry != s.ForwardCarryLen() || pl.BackwardCarry != s.BackwardCarryLen() {
		t.Errorf("carries = %d/%d, want solver's %d/%d",
			pl.ForwardCarry, pl.BackwardCarry, s.ForwardCarryLen(), s.BackwardCarryLen())
	}

	eta := 12 * 12 * 12
	for dim := 0; dim < 3; dim++ {
		// Balance: the full sweep covers the array exactly once.
		if got := pl.Elements(dim); got != eta {
			t.Errorf("Elements(%d) = %d, want %d", dim, got, eta)
		}
		// Traffic: (γ−1) slab boundaries, a full η/η_dim cross-section of
		// lines each, both directions.
		gamma := []int{2, 2, 4}[dim]
		want := (gamma - 1) * (eta / 12) * (s.ForwardCarryLen() + s.BackwardCarryLen()) * 8
		if got := pl.DimSendBytes(dim); got != want {
			t.Errorf("DimSendBytes(%d) = %d, want %d", dim, got, want)
		}
	}
	if pl.TotalSendBytes() != pl.DimSendBytes(0)+pl.DimSendBytes(1)+pl.DimSendBytes(2) {
		t.Error("TotalSendBytes is not the per-dimension sum")
	}

	// Phase counts equal the slab count; tags stay inside the reservation;
	// the chain is open at both ends.
	for q := 0; q < 4; q++ {
		for dim := 0; dim < 3; dim++ {
			for _, bwd := range []bool{false, true} {
				pp := pl.Pass(q, dim, bwd)
				if len(pp.Phases) != []int{2, 2, 4}[dim] {
					t.Fatalf("rank %d dim %d has %d phases", q, dim, len(pp.Phases))
				}
				for i := range pp.Phases {
					ph := &pp.Phases[i]
					if ph.SendTo >= 0 && !pl.Tags.Contains(ph.SendTag) {
						t.Errorf("send tag %d outside reservation", ph.SendTag)
					}
					if i == 0 && ph.RecvFrom != -1 {
						t.Errorf("rank %d dim %d phase 0 receives from %d, want -1", q, dim, ph.RecvFrom)
					}
					if i == len(pp.Phases)-1 && ph.SendTo != -1 {
						t.Errorf("rank %d dim %d last phase sends to %d, want -1", q, dim, ph.SendTo)
					}
				}
			}
		}
	}

	// Fingerprints are deterministic and ignore the Halos/Batch metadata.
	m2, _ := core.NewGeneralized(4, []int{2, 2, 4})
	pl2, err := plan.Compile(plan.Spec{M: m2, Eta: []int{12, 12, 12}, Solver: sweep.NewPenta(),
		Halos: []int{2, 2, 2, 2, 2, 2}, Batch: -1})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Fingerprint() != pl2.Fingerprint() {
		t.Error("fingerprint depends on Halos/Batch metadata")
	}
	if !strings.Contains(pl.Summary(), "multipartition plan") {
		t.Errorf("summary = %q", pl.Summary())
	}
}

func TestCompileWavefront(t *testing.T) {
	pl, err := plan.CompileWavefront(plan.WavefrontSpec{
		P: 4, Eta: []int{16, 8, 8}, Dim: 0, Grain: 16, Solver: sweep.Tridiag{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("wavefront plan invalid: %v", err)
	}
	if pl.Kind != plan.KindWavefront || pl.Dim != 0 || pl.Grain != 16 {
		t.Errorf("header = %v dim %d grain %d", pl.Kind, pl.Dim, pl.Grain)
	}
	// 8×8 = 64 lines in grains of 16 → 4 pipeline blocks per rank, chained
	// rank to rank.
	for q := 0; q < 4; q++ {
		pp := pl.Pass(q, 0, false)
		if len(pp.Phases) != 4 {
			t.Fatalf("rank %d has %d blocks, want 4", q, len(pp.Phases))
		}
		for _, ph := range pp.Phases {
			if q > 0 && ph.RecvFrom != q-1 {
				t.Errorf("rank %d receives from %d", q, ph.RecvFrom)
			}
			if q < 3 && ph.SendTo != q+1 {
				t.Errorf("rank %d sends to %d", q, ph.SendTo)
			}
		}
	}
	// The last block of an uneven split is short.
	pl2, err := plan.CompileWavefront(plan.WavefrontSpec{
		P: 2, Eta: []int{8, 5, 5}, Dim: 0, Grain: 16, Solver: sweep.Tridiag{}})
	if err != nil {
		t.Fatal(err)
	}
	pp := pl2.Pass(0, 0, false)
	if len(pp.Phases) != 2 || pp.Phases[1].Lines != 25-16 {
		t.Errorf("uneven split: %d blocks, last %d lines", len(pp.Phases), pp.Phases[len(pp.Phases)-1].Lines)
	}
	if err := pl2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompileErrors(t *testing.T) {
	m, err := core.NewGeneralized(4, []int{2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		spec    plan.Spec
		wantSub string
	}{
		{"nil mapping", plan.Spec{Eta: []int{8, 8, 8}, Solver: sweep.Tridiag{}}, "M is nil"},
		{"nil solver", plan.Spec{M: m, Eta: []int{8, 8, 8}}, "Solver is nil"},
		{"rank mismatch", plan.Spec{M: m, Eta: []int{8, 8}, Solver: sweep.Tridiag{}}, "extents"},
		{"extent under gamma", plan.Spec{M: m, Eta: []int{8, 8, 3}, Solver: sweep.Tridiag{}}, "smaller than cut count"},
	}
	for _, c := range cases {
		if _, err := plan.Compile(c.spec); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantSub)
		}
	}

	wcases := []struct {
		name    string
		spec    plan.WavefrontSpec
		wantSub string
	}{
		{"bad p", plan.WavefrontSpec{P: 0, Eta: []int{8, 8}, Dim: 0, Grain: 4, Solver: sweep.Tridiag{}}, "p = 0"},
		{"bad dim", plan.WavefrontSpec{P: 2, Eta: []int{8, 8}, Dim: 2, Grain: 4, Solver: sweep.Tridiag{}}, "out of range"},
		{"bad grain", plan.WavefrontSpec{P: 2, Eta: []int{8, 8}, Dim: 0, Grain: 0, Solver: sweep.Tridiag{}}, "grain"},
		{"thin extent", plan.WavefrontSpec{P: 16, Eta: []int{8, 8}, Dim: 0, Grain: 4, Solver: sweep.Tridiag{}}, "smaller than p"},
		{"nil solver", plan.WavefrontSpec{P: 2, Eta: []int{8, 8}, Dim: 0, Grain: 4}, "Solver is nil"},
	}
	for _, c := range wcases {
		if _, err := plan.CompileWavefront(c.spec); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantSub)
		}
	}
}

// sendingPhase returns the skip-th phase of rank q's dim-2 forward pass that
// ships carries; γ[2] = 4 guarantees three of them.
func sendingPhase(t *testing.T, pl *plan.SweepPlan, q, skip int) *plan.Phase {
	t.Helper()
	pp := pl.Pass(q, 2, false)
	for i := range pp.Phases {
		if pp.Phases[i].SendTo >= 0 {
			if skip == 0 {
				return &pp.Phases[i]
			}
			skip--
		}
	}
	t.Fatal("no sending phase found")
	return nil
}

func TestValidateFailurePaths(t *testing.T) {
	// Each case corrupts a fresh plan in a way that slips past the earlier
	// checks and trips exactly the one under test.
	cases := []struct {
		name    string
		corrupt func(t *testing.T, pl *plan.SweepPlan)
		wantSub string
	}{
		{"lines vs tiles", func(t *testing.T, pl *plan.SweepPlan) {
			pl.Pass(0, 0, false).Phases[0].Lines++
		}, "tiles hold"},
		{"send bytes formula", func(t *testing.T, pl *plan.SweepPlan) {
			sendingPhase(t, pl, 0, 0).SendBytes += 8
		}, "SendBytes"},
		{"self send", func(t *testing.T, pl *plan.SweepPlan) {
			sendingPhase(t, pl, 0, 0).SendTo = 0
		}, "itself"},
		{"peer out of range", func(t *testing.T, pl *plan.SweepPlan) {
			sendingPhase(t, pl, 0, 0).SendTo = pl.P
		}, "out of range"},
		{"carry length", func(t *testing.T, pl *plan.SweepPlan) {
			pl.Pass(1, 0, true).CarryLen++
		}, "carry length"},
		{"neighbor property", func(t *testing.T, pl *plan.SweepPlan) {
			// Two sending phases of one pass naming different downstream
			// ranks: exactly what phase-aggregated messages cannot survive.
			first := sendingPhase(t, pl, 0, 0)
			second := sendingPhase(t, pl, 0, 1)
			for other := 1; other < pl.P; other++ {
				if other != first.SendTo {
					second.SendTo = other
					return
				}
			}
			t.Fatal("no alternative peer")
		}, "neighbor property"},
		{"tag outside reservation", func(t *testing.T, pl *plan.SweepPlan) {
			sendingPhase(t, pl, 0, 0).SendTag = 5
		}, "outside reservation"},
		{"tag overlap", func(t *testing.T, pl *plan.SweepPlan) {
			first := sendingPhase(t, pl, 0, 0)
			second := sendingPhase(t, pl, 0, 1)
			second.SendTag = first.SendTag
		}, "tag overlap"},
		{"recv source mismatch", func(t *testing.T, pl *plan.SweepPlan) {
			// Reroute the peer's receives to a different upstream —
			// consistently, so the neighbor check passes and only the
			// sender's symmetry check can notice.
			first := sendingPhase(t, pl, 0, 0)
			peer := pl.Pass(first.SendTo, 2, false)
			other := -1
			for cand := 1; cand < pl.P; cand++ {
				if cand != first.SendTo {
					other = cand
					break
				}
			}
			rerouted := false
			for i := range peer.Phases {
				if peer.Phases[i].RecvFrom >= 0 {
					peer.Phases[i].RecvFrom = other
					rerouted = true
				}
			}
			if !rerouted {
				t.Fatal("no receive to reroute")
			}
		}, "receives from"},
		{"byte-count symmetry", func(t *testing.T, pl *plan.SweepPlan) {
			// Grow the receiver's final phase self-consistently (lines,
			// bytes, tile geometry all agree locally) so only the cross-rank
			// byte comparison can notice.
			first := sendingPhase(t, pl, 0, 0)
			peer := pl.Pass(first.SendTo, 2, false)
			last := &peer.Phases[len(peer.Phases)-1]
			if last.SendTo >= 0 || last.RecvFrom < 0 {
				t.Fatal("expected a recv-only final phase")
			}
			last.Lines++
			last.Tiles[len(last.Tiles)-1].Lines++
			last.RecvBytes = last.Lines * pl.ForwardCarry * 8
		}, "byte-count symmetry"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pl := compile(t)
			c.corrupt(t, pl)
			err := pl.Validate()
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestValidateShapeErrors(t *testing.T) {
	pl := compile(t)
	pl.Passes = pl.Passes[:2]
	if err := pl.Validate(); err == nil || !strings.Contains(err.Error(), "rank schedules") {
		t.Errorf("truncated rank table: %v", err)
	}
	pl = compile(t)
	pl.Passes[1] = pl.Passes[1][:3]
	if err := pl.Validate(); err == nil || !strings.Contains(err.Error(), "passes") {
		t.Errorf("truncated pass table: %v", err)
	}
	pl = compile(t)
	pl.Pass(0, 2, false).Phases[1].Tiles[0].LineOff++
	if err := pl.Validate(); err == nil || !strings.Contains(err.Error(), "canonical") {
		t.Errorf("broken canonical order: %v", err)
	}
}

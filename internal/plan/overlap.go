// Overlap annotation: the boundary-first split that lets executors hide the
// carry wire behind interior compute (DESIGN.md §14). The split is a plan
// property, not an executor trick — Compile computes one Boundary per phase
// and mints the interior-message tags, Validate checks the split is
// conservative (boundary ∪ interior == the full line set, carry bytes
// unchanged), and both runtimes plus the cost model fold over the same
// annotated schedule.
package plan

import "fmt"

// DefaultOverlapFrac is the boundary share of each phase's lines when
// Overlap.Frac is left zero. It matches the causal engine's default
// `overlap:` perturbation fraction (obs/causal), so `critpath -whatif`
// predictions and the executed schedule describe the same split.
const DefaultOverlapFrac = 0.25

// interiorTagDelta offsets a phase's interior-message tag from its boundary
// tag. Base tag offsets are (dim·2+pass)<<20 | phase — far below 2²⁶ for
// any real schedule — so the shifted band cannot collide, and it stays
// inside the 2²⁸-wide SweepTags reservation.
const interiorTagDelta = 1 << 26

// Overlap configures the boundary-first split of every phase's compute.
type Overlap struct {
	// Enabled turns the split on. Off (the default), plans are byte-identical
	// to pre-overlap compiles: Boundary stays 0 everywhere and the
	// fingerprint is unchanged.
	Enabled bool
	// Frac is the fraction of each phase's lines solved before the carry
	// posts (the boundary share); 0 picks DefaultOverlapFrac. The remaining
	// interior lines are solved while the boundary carry is in flight.
	Frac float64
}

// Fraction returns the effective boundary share.
func (o Overlap) Fraction() float64 {
	if o.Frac > 0 {
		return o.Frac
	}
	return DefaultOverlapFrac
}

// BoundaryLines returns the boundary share of a phase's line count: at
// least 1 and at most lines−1, so both halves of a split are non-empty.
// Phases too small to split (lines < 2) return 0.
func BoundaryLines(lines int, frac float64) int {
	if lines < 2 {
		return 0
	}
	b := int(frac*float64(lines) + 0.5)
	if b < 1 {
		b = 1
	}
	if b > lines-1 {
		b = lines - 1
	}
	return b
}

// InteriorBoundary returns the boundary and interior line counts of a
// phase: (Boundary, Lines−Boundary) when split, (Lines, 0) otherwise — the
// unsplit phase is "all boundary" so executors can treat both cases with
// one loop.
func (ph *Phase) InteriorBoundary() (boundary, interior int) {
	if ph.Boundary <= 0 {
		return ph.Lines, 0
	}
	return ph.Boundary, ph.Lines - ph.Boundary
}

// applyOverlap annotates every phase of a compiled plan with its boundary
// split and interior-message tags. Splitting is per phase: a phase splits
// when it communicates at all (otherwise there is no wire to hide) and has
// at least two lines. Because matched send/recv phases carry equal line
// counts (validateSymmetry), computing Boundary from Lines alone keeps the
// two sides of every channel in agreement by construction.
func (pl *SweepPlan) applyOverlap(o Overlap) {
	pl.Overlap = Overlap{Enabled: true, Frac: o.Fraction()}
	for q := range pl.Passes {
		for k := range pl.Passes[q] {
			pass := &pl.Passes[q][k]
			for i := range pass.Phases {
				ph := &pass.Phases[i]
				if ph.RecvFrom < 0 && ph.SendTo < 0 {
					continue
				}
				ph.Boundary = BoundaryLines(ph.Lines, pl.Overlap.Frac)
				if ph.Boundary == 0 {
					continue
				}
				if ph.RecvFrom >= 0 {
					ph.InteriorRecvTag = ph.RecvTag + interiorTagDelta
				}
				if ph.SendTo >= 0 {
					ph.InteriorSendTag = ph.SendTag + interiorTagDelta
				}
			}
		}
	}
}

// validateOverlap checks the overlap annotation: with the knob off every
// phase must be unsplit; with it on, every split must be conservative —
// 0 < Boundary < Lines so boundary ∪ interior is exactly the phase's line
// set, interior tags present (inside the reservation, offset from the
// boundary tag) exactly on the communicating sides, and total carry bytes
// unchanged (SendBytes/RecvBytes still cover Lines, which validateShape
// already pinned). Cross-rank Boundary agreement is checked with the other
// symmetry properties in validateSymmetry.
func (pl *SweepPlan) validateOverlap() error {
	for q, passes := range pl.Passes {
		for k := range passes {
			pass := &passes[k]
			for i := range pass.Phases {
				ph := &pass.Phases[i]
				at := fmt.Sprintf("%s phase %d", passName(q, pass), i)
				if !pl.Overlap.Enabled {
					if ph.Boundary != 0 || ph.InteriorRecvTag != 0 || ph.InteriorSendTag != 0 {
						return fmt.Errorf("plan: %s: overlap annotation (boundary %d) on a plan compiled without Overlap", at, ph.Boundary)
					}
					continue
				}
				if ph.Boundary == 0 {
					if ph.InteriorRecvTag != 0 || ph.InteriorSendTag != 0 {
						return fmt.Errorf("plan: %s: interior tags on an unsplit phase", at)
					}
					continue
				}
				if ph.Boundary < 0 || ph.Boundary >= ph.Lines {
					return fmt.Errorf("plan: %s: boundary %d outside (0, %d) — boundary ∪ interior must equal the phase's lines",
						at, ph.Boundary, ph.Lines)
				}
				b, in := ph.InteriorBoundary()
				if b+in != ph.Lines {
					return fmt.Errorf("plan: %s: boundary %d + interior %d ≠ %d lines", at, b, in, ph.Lines)
				}
				if ph.RecvFrom >= 0 {
					if ph.InteriorRecvTag != ph.RecvTag+interiorTagDelta {
						return fmt.Errorf("plan: %s: interior recv tag %d, want boundary tag %d + %d",
							at, ph.InteriorRecvTag, ph.RecvTag, interiorTagDelta)
					}
					if !pl.Tags.Contains(ph.InteriorRecvTag) {
						return fmt.Errorf("plan: %s: interior recv tag %d outside reservation %q [%d,+%d)",
							at, ph.InteriorRecvTag, pl.Tags.Name(), pl.Tags.Base(), pl.Tags.Size())
					}
				} else if ph.InteriorRecvTag != 0 {
					return fmt.Errorf("plan: %s: interior recv tag on a phase with no upstream", at)
				}
				if ph.SendTo >= 0 {
					if ph.InteriorSendTag != ph.SendTag+interiorTagDelta {
						return fmt.Errorf("plan: %s: interior send tag %d, want boundary tag %d + %d",
							at, ph.InteriorSendTag, ph.SendTag, interiorTagDelta)
					}
					if !pl.Tags.Contains(ph.InteriorSendTag) {
						return fmt.Errorf("plan: %s: interior send tag %d outside reservation %q [%d,+%d)",
							at, ph.InteriorSendTag, pl.Tags.Name(), pl.Tags.Base(), pl.Tags.Size())
					}
				} else if ph.InteriorSendTag != 0 {
					return fmt.Errorf("plan: %s: interior send tag on a phase with no downstream", at)
				}
			}
		}
	}
	return nil
}

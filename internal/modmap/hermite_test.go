package modmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"genmp/internal/numutil"
)

// mulMat computes A·B for small integer matrices.
func mulMat(A, B [][]int) [][]int {
	rows := len(A)
	inner := len(B)
	cols := len(B[0])
	out := make([][]int, rows)
	for i := range out {
		out[i] = make([]int, cols)
		for j := 0; j < cols; j++ {
			s := 0
			for k := 0; k < inner; k++ {
				s += A[i][k] * B[k][j]
			}
			out[i][j] = s
		}
	}
	return out
}

// det computes the determinant by cofactor expansion (n ≤ 4 in tests).
func det(A [][]int) int {
	n := len(A)
	if n == 1 {
		return A[0][0]
	}
	sign := 1
	total := 0
	for j := 0; j < n; j++ {
		if A[0][j] != 0 {
			minor := make([][]int, n-1)
			for i := 1; i < n; i++ {
				row := make([]int, 0, n-1)
				for k := 0; k < n; k++ {
					if k != j {
						row = append(row, A[i][k])
					}
				}
				minor[i-1] = row
			}
			total += sign * A[0][j] * det(minor)
		}
		sign = -sign
	}
	return total
}

func randMatrix(rng *rand.Rand, rows, cols, span int) [][]int {
	m := make([][]int, rows)
	for i := range m {
		m[i] = make([]int, cols)
		for j := range m[i] {
			m[i][j] = rng.Intn(2*span+1) - span
		}
	}
	return m
}

func TestHermiteNormalFormProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(4)
		cols := 1 + rng.Intn(4)
		A := randMatrix(rng, rows, cols, 6)
		H, U := HermiteNormalForm(A)
		// A·U = H.
		if got := mulMat(A, U); !matEqual(got, H) {
			t.Fatalf("trial %d: A·U ≠ H\nA=%v\nU=%v\nH=%v\nAU=%v", trial, A, U, H, got)
		}
		// U unimodular.
		if cols == len(U) && cols > 0 {
			if d := det(U); d != 1 && d != -1 {
				t.Fatalf("trial %d: det(U) = %d", trial, d)
			}
		}
	}
}

func TestHermiteKnownCase(t *testing.T) {
	A := [][]int{{4, 6}, {2, 4}}
	H, U := HermiteNormalForm(A)
	if got := mulMat(A, U); !matEqual(got, H) {
		t.Fatalf("A·U ≠ H")
	}
	// Pivots positive, staircase shape: H[0][1] row entries left of pivots
	// reduced.
	if H[0][0] <= 0 {
		t.Errorf("H = %v: first pivot must be positive", H)
	}
}

func TestSmithNormalFormKnownCases(t *testing.T) {
	cases := []struct {
		A    [][]int
		want []int
	}{
		{[][]int{{1, 0}, {0, 1}}, []int{1, 1}},
		{[][]int{{2, 0}, {0, 4}}, []int{2, 4}},
		{[][]int{{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}}, []int{2, 2, 156}}, // classic example
		{[][]int{{0, 0}, {0, 0}}, []int{0, 0}},
		{[][]int{{6, 4}, {2, 8}}, []int{2, 20}}, // det = 40, gcd = 2
	}
	for _, c := range cases {
		got := SmithNormalForm(c.A)
		if !numutil.EqualInts(got, c.want) {
			t.Errorf("SNF(%v) = %v, want %v", c.A, got, c.want)
		}
	}
}

func TestSmithDivisibilityChainAndDeterminant(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(3)
		A := randMatrix(rng, n, n, 5)
		f := SmithNormalForm(A)
		// Chain d₁ | d₂ | …
		for i := 1; i < len(f); i++ {
			if f[i-1] != 0 && f[i]%f[i-1] != 0 {
				t.Fatalf("trial %d: factors %v not a divisibility chain (A=%v)", trial, f, A)
			}
			if f[i-1] == 0 && f[i] != 0 {
				t.Fatalf("trial %d: zero factor before nonzero in %v", trial, f)
			}
		}
		// ∏factors = |det A|.
		want := det(A)
		if want < 0 {
			want = -want
		}
		got := 1
		for _, d := range f {
			got *= d
		}
		if got != want {
			t.Fatalf("trial %d: ∏SNF = %d, |det| = %d (A=%v, f=%v)", trial, got, want, A, f)
		}
	}
}

func TestIsSurjectiveModularAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		dOut := 1 + rng.Intn(2)
		dIn := 1 + rng.Intn(3)
		mod := make([]int, dOut)
		for i := range mod {
			mod[i] = 1 + rng.Intn(5)
		}
		M := randMatrix(rng, dOut, dIn, 4)
		alg := IsSurjectiveModular(M, mod)
		enum := ImageSize(M, mod) == numutil.Prod(mod...)
		if alg != enum {
			t.Fatalf("trial %d: algebraic %v vs enumerated %v (M=%v, mod=%v)", trial, alg, enum, M, mod)
		}
	}
}

func TestConstructedMappingsAreSurjective(t *testing.T) {
	// The paper's mappings are equally-many-to-one onto the processor grid,
	// so in particular surjective — the algebraic test must agree.
	cases := []struct {
		p int
		b []int
	}{
		{16, []int{4, 4, 4}}, {30, []int{10, 15, 6}}, {50, []int{5, 10, 10}},
		{8, []int{4, 4, 2}}, {8, []int{8, 8, 1}}, {72, []int{6, 12, 12}},
	}
	for _, c := range cases {
		mp, err := New(c.p, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if !IsSurjectiveModular(mp.M, mp.Mod) {
			t.Errorf("p=%d b=%v: constructed mapping not surjective onto its grid", c.p, c.b)
		}
	}
}

func TestHermiteQuickProperty(t *testing.T) {
	// testing/quick: A·U = H holds for arbitrary small matrices.
	f := func(a, b, c, d int8) bool {
		A := [][]int{{int(a), int(b)}, {int(c), int(d)}}
		H, U := HermiteNormalForm(A)
		return matEqual(mulMat(A, U), H)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func matEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !numutil.EqualInts(a[i], b[i]) {
			return false
		}
	}
	return true
}

package modmap

import (
	"fmt"

	"genmp/internal/numutil"
)

// This file provides the integer-matrix machinery behind the Section 4
// theory of modular mappings: Hermite and Smith normal forms over ℤ. The
// paper's construction is "linked to the symbolic computation of some
// Hermite form"; the Smith form yields an algebraic surjectivity test for
// modular mappings that cross-validates the exhaustive counting predicates
// (a mapping that is equally-many-to-one onto the processor grid must in
// particular generate the whole group ℤ_{m₁}×…×ℤ_{m_d'}).

// CloneMatrix deep-copies an integer matrix.
func CloneMatrix(m [][]int) [][]int {
	out := make([][]int, len(m))
	for i := range m {
		out[i] = numutil.CopyInts(m[i])
	}
	return out
}

// HermiteNormalForm returns the column-style Hermite normal form H of A
// (rows×cols) and a unimodular matrix U (cols×cols) with A·U = H: H is
// lower-triangular-ish with non-negative pivots, and entries left of each
// pivot reduced modulo it. A is not modified.
func HermiteNormalForm(A [][]int) (H, U [][]int) {
	rows := len(A)
	if rows == 0 {
		return nil, nil
	}
	cols := len(A[0])
	H = CloneMatrix(A)
	U = identity(cols)

	row, col := 0, 0
	for row < rows && col < cols {
		// Find a nonzero entry in this row at column ≥ col.
		pivot := -1
		for j := col; j < cols; j++ {
			if H[row][j] != 0 {
				pivot = j
				break
			}
		}
		if pivot < 0 {
			row++
			continue
		}
		swapCols(H, U, col, pivot)
		// Eliminate the row entries right of col by gcd column operations.
		for j := col + 1; j < cols; j++ {
			for H[row][j] != 0 {
				q := H[row][col] / H[row][j]
				addCol(H, U, col, j, -q) // col ← col − q·j
				swapCols(H, U, col, j)
			}
		}
		// Make the pivot positive.
		if H[row][col] < 0 {
			negateCol(H, U, col)
		}
		// Reduce the entries left of the pivot in this row into [0, pivot).
		for j := 0; j < col; j++ {
			q := floorDiv(H[row][j], H[row][col])
			if q != 0 {
				addCol(H, U, j, col, -q)
			}
		}
		row++
		col++
	}
	return H, U
}

func identity(n int) [][]int {
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
		m[i][i] = 1
	}
	return m
}

// The column operations apply to both H and U to maintain A·U = H.

func swapCols(H, U [][]int, a, b int) {
	if a == b {
		return
	}
	for i := range H {
		H[i][a], H[i][b] = H[i][b], H[i][a]
	}
	for i := range U {
		U[i][a], U[i][b] = U[i][b], U[i][a]
	}
}

func addCol(H, U [][]int, dst, src, factor int) {
	for i := range H {
		H[i][dst] += factor * H[i][src]
	}
	for i := range U {
		U[i][dst] += factor * U[i][src]
	}
}

func negateCol(H, U [][]int, col int) {
	for i := range H {
		H[i][col] = -H[i][col]
	}
	for i := range U {
		U[i][col] = -U[i][col]
	}
}

func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// SmithNormalForm returns the invariant factors d₁ | d₂ | … of A: the
// diagonal of its Smith normal form, including zeros for rank deficiency
// (length = min(rows, cols)). A is not modified.
func SmithNormalForm(A [][]int) []int {
	rows := len(A)
	if rows == 0 {
		return nil
	}
	cols := len(A[0])
	m := CloneMatrix(A)
	n := rows
	if cols < n {
		n = cols
	}
	factors := make([]int, n)

	for t := 0; t < n; t++ {
		// Find a nonzero entry in the trailing submatrix.
		pi, pj := -1, -1
		for i := t; i < rows && pi < 0; i++ {
			for j := t; j < cols; j++ {
				if m[i][j] != 0 {
					pi, pj = i, j
					break
				}
			}
		}
		if pi < 0 {
			break // remaining factors stay 0
		}
		m[t], m[pi] = m[pi], m[t]
		for i := range m {
			m[i][t], m[i][pj] = m[i][pj], m[i][t]
		}
		// Repeat row/column elimination until the pivot divides its whole
		// row and column and they are zeroed.
		for {
			again := false
			for i := t + 1; i < rows; i++ {
				for m[i][t] != 0 {
					q := m[i][t] / m[t][t]
					for j := t; j < cols; j++ {
						m[i][j] -= q * m[t][j]
					}
					if m[i][t] != 0 {
						m[t], m[i] = m[i], m[t]
						again = true
					}
				}
			}
			for j := t + 1; j < cols; j++ {
				for m[t][j] != 0 {
					q := m[t][j] / m[t][t]
					for i := t; i < rows; i++ {
						m[i][j] -= q * m[i][t]
					}
					if m[t][j] != 0 {
						for i := t; i < rows; i++ {
							m[i][t], m[i][j] = m[i][j], m[i][t]
						}
						again = true
					}
				}
			}
			if !again {
				break
			}
		}
		// Ensure the pivot divides every entry of the trailing submatrix
		// (invariant-factor condition); if not, fold the offending row in
		// and re-eliminate.
		fixed := true
		for i := t + 1; i < rows && fixed; i++ {
			for j := t + 1; j < cols; j++ {
				if m[i][j]%m[t][t] != 0 {
					for jj := t; jj < cols; jj++ {
						m[t][jj] += m[i][jj]
					}
					fixed = false
					break
				}
			}
		}
		if !fixed {
			t-- // redo this pivot with the folded row
			continue
		}
		if m[t][t] < 0 {
			for j := t; j < cols; j++ {
				m[t][j] = -m[t][j]
			}
		}
		factors[t] = m[t][t]
	}
	return factors
}

// IsSurjectiveModular reports, algebraically, whether the modular mapping
// x ↦ (M·x) mod m⃗ from ℤ^d onto the grid ℤ_{m₁}×…×ℤ_{m_d'} is surjective:
// the columns of M together with the columns of diag(m⃗) must generate
// ℤ^{d'}, i.e. the Smith invariant factors of [M | diag(m⃗)] are all 1.
// Surjectivity onto the grid is a necessary condition for the
// equally-many-to-one and load-balancing properties whenever the domain box
// is large enough to cover the grid.
func IsSurjectiveModular(M [][]int, mod []int) bool {
	dOut := len(mod)
	if len(M) != dOut {
		panic(fmt.Sprintf("modmap: IsSurjectiveModular: matrix has %d rows for %d moduli", len(M), dOut))
	}
	dIn := 0
	if dOut > 0 {
		dIn = len(M[0])
	}
	aug := make([][]int, dOut)
	for i := 0; i < dOut; i++ {
		aug[i] = make([]int, dIn+dOut)
		copy(aug[i], M[i])
		aug[i][dIn+i] = mod[i]
	}
	for _, f := range SmithNormalForm(aug) {
		if f != 1 {
			return false
		}
	}
	return true
}

// ImageSize returns the number of distinct values the modular mapping
// takes on all of ℤ^d: the index formula ∏mod / |coker|, computed via the
// Smith form of [M | diag(m⃗)] — the product of invariant factors beyond 1
// is the cokernel size... more directly, the image subgroup size equals
// ∏ mod_i / ∏ invariant factors of the cokernel presentation. Implemented
// by brute-force enumeration over the fundamental box for verification use
// (domains used in tests are small).
func ImageSize(M [][]int, mod []int) int {
	dOut := len(mod)
	dIn := 0
	if dOut > 0 {
		dIn = len(M[0])
	}
	// Enumerate x over the box ∏ mod (the mapping is periodic with period
	// mod_j in... not exactly, but lcm of mods bounds periodicity; use the
	// box of side L = lcm(mod) in every input dimension).
	L := 1
	for _, m := range mod {
		L = numutil.LCM(L, m)
	}
	shape := make([]int, dIn)
	for i := range shape {
		shape[i] = L
	}
	seen := map[int]bool{}
	vec := make([]int, dOut)
	numutil.EachCoord(shape, func(x []int) {
		for r := 0; r < dOut; r++ {
			s := 0
			for k := 0; k < dIn; k++ {
				s += M[r][k] * x[k]
			}
			vec[r] = numutil.EMod(s, mod[r])
		}
		seen[numutil.RankOf(vec, mod)] = true
	})
	return len(seen)
}

// Package modmap implements Section 4 of the paper: multi-dimensional
// modular mappings and the constructive proof that every valid partitioning
// (γᵢ) admits a tile-to-processor assignment with both the balance and the
// neighbor properties of a multipartitioning.
//
// A modular mapping M_m⃗ maps a tile coordinate vector i⃗ ∈ ℤᵈ to the
// processor-grid vector (M·i⃗) mod m⃗, where M is an integral d×d matrix and
// m⃗ a positive integral modulo vector whose component product equals the
// number of processors p. The paper's construction (its Figure 3) chooses m⃗
// by a gcd telescoping formula and builds M row by row so that the mapping
// is equally-many-to-one on every slab of the tile grid — the balance
// property. The neighbor property comes for free from linearity: the tiles
// adjacent (with wraparound) to processor q's tiles along coordinate
// direction i all belong to the single processor whose grid vector is q's
// shifted by column i of M.
package modmap

import (
	"fmt"

	"genmp/internal/numutil"
)

// Mapping is a modular tile-to-processor mapping for a tile grid of shape B
// on P processors, with the balance and neighbor properties.
type Mapping struct {
	P   int     // number of processors, ∏ Mod[i]
	B   []int   // tile-grid shape (the partitioning γ)
	Mod []int   // moduli m⃗; Mod[0] == 1 and ∏ Mod == P
	M   [][]int // d×d mapping matrix, reduced: 0 ≤ M[i][k] < Mod[i]

	raw [][]int // the matrix as built by the Figure 3 kernel, before reduction
}

// New builds the paper's modular mapping for p processors over a tile grid
// of shape b. It fails unless (b) is a valid partitioning of p, i.e. p
// divides the tile count of every slab (∏_{j≠i} b_j for every i) — the
// condition Section 4 proves both necessary and sufficient.
func New(p int, b []int) (*Mapping, error) {
	d := len(b)
	if p < 1 {
		return nil, fmt.Errorf("modmap: p = %d must be ≥ 1", p)
	}
	if d == 0 {
		return nil, fmt.Errorf("modmap: empty tile-grid shape")
	}
	for i, bi := range b {
		if bi < 1 {
			return nil, fmt.Errorf("modmap: tile-grid extent b[%d] = %d must be ≥ 1", i, bi)
		}
	}
	for i := range b {
		if numutil.ProdExcept(b, i)%p != 0 {
			return nil, fmt.Errorf("modmap: invalid partitioning %v for p = %d: slab along dimension %d has %d tiles, not a multiple of p",
				b, p, i, numutil.ProdExcept(b, i))
		}
	}

	mod := Moduli(p, b)
	raw := kernel(b, mod)

	// Reduce row i modulo mod[i]: component i of the mapping is only ever
	// used mod m_i, and small non-negative coefficients keep the dot
	// products far from overflow. (Reduction happens after the full kernel
	// runs — later rows are built from the unreduced earlier rows.)
	reduced := make([][]int, d)
	for i := range raw {
		reduced[i] = make([]int, d)
		for k := range raw[i] {
			reduced[i][k] = numutil.EMod(raw[i][k], mod[i])
		}
	}

	return &Mapping{P: p, B: numutil.CopyInts(b), Mod: mod, M: reduced, raw: raw}, nil
}

// Moduli returns the paper's modulo vector for p processors and tile grid b:
//
//	m_i = gcd(p, ∏_{j=i..d} b_j) / gcd(p, ∏_{j=i+1..d} b_j)
//
// It always satisfies m_1 = 1, ∏ m_i = p and m_i | b_i when (b) is a valid
// partitioning. The suffix products can exceed 64 bits, so the gcds are
// computed per prime factor of p instead of forming the products.
func Moduli(p int, b []int) []int {
	d := len(b)
	factors := numutil.Factorize(p)
	// suffixGCD[i] = gcd(p, ∏_{j=i..d-1} b_j), with suffixGCD[d] = gcd(p, 1) = 1.
	suffixGCD := make([]int, d+1)
	suffixGCD[d] = 1
	// Per prime α with multiplicity r in p: v_α(gcd(p, X)) = min(r, v_α(X)).
	suffixVal := make([]int, len(factors)) // running Σ_{j≥i} v_α(b_j), capped lazily
	for i := d - 1; i >= 0; i-- {
		g := 1
		for fi, f := range factors {
			bi := b[i]
			for bi%f.Prime == 0 {
				bi /= f.Prime
				suffixVal[fi]++
			}
			if suffixVal[fi] > f.Exp {
				suffixVal[fi] = f.Exp // cap: only min(r, Σv) matters and Σv only grows
			}
			g *= numutil.Pow(f.Prime, suffixVal[fi])
		}
		suffixGCD[i] = g
	}
	mod := make([]int, d)
	for i := 0; i < d; i++ {
		mod[i] = suffixGCD[i] / suffixGCD[i+1]
	}
	return mod
}

// kernel is the paper's Figure 3 ModularMapping procedure (0-based): it
// returns the d×d matrix with ones on the diagonal and in the first column,
// where each row i ≥ 1 is corrected by multiples of the previous rows so
// that the mapping acquires the load-balancing property (the correction
// mirrors a symbolic Hermite-form computation; see the extended paper).
func kernel(b, mod []int) [][]int {
	d := len(b)
	m := make([][]int, d)
	for i := range m {
		m[i] = make([]int, d)
		m[i][0] = 1
		m[i][i] = 1
	}
	for i := 1; i < d; i++ {
		r := mod[i]
		for j := i - 1; j >= 1; j-- {
			t := r / numutil.GCD(r, b[j])
			for k := 0; k < i; k++ {
				m[i][k] -= t * m[j][k]
			}
			r = numutil.GCD(t*mod[j], r)
		}
	}
	return m
}

// Dims returns the number of tile-grid dimensions d.
func (mp *Mapping) Dims() int { return len(mp.B) }

// NumTiles returns the total number of tiles ∏ B_i.
func (mp *Mapping) NumTiles() int { return numutil.Prod(mp.B...) }

// TilesPerProc returns ∏ B_i / p, the number of tiles owned by each
// processor (the mapping is equally-many-to-one on the whole grid).
func (mp *Mapping) TilesPerProc() int { return mp.NumTiles() / mp.P }

// ProcVec writes the processor-grid vector of the given tile into dst (which
// must have length d) and returns it. Tile coordinates outside the grid are
// reduced into it first (coordinate i modulo B[i]).
func (mp *Mapping) ProcVec(tile, dst []int) []int {
	d := len(mp.B)
	if len(tile) != d || len(dst) != d {
		panic("modmap: ProcVec rank mismatch")
	}
	for i := 0; i < d; i++ {
		s := 0
		for k := 0; k < d; k++ {
			s += mp.M[i][k] * numutil.EMod(tile[k], mp.B[k])
		}
		dst[i] = numutil.EMod(s, mp.Mod[i])
	}
	return dst
}

// Proc returns the linearized processor id of a tile: the row-major rank of
// its processor-grid vector within the virtual grid Mod. Ids run 0..P-1.
func (mp *Mapping) Proc(tile []int) int {
	vec := make([]int, len(mp.B))
	mp.ProcVec(tile, vec)
	return numutil.RankOf(vec, mp.Mod)
}

// ProcOfID decodes a linear processor id into its grid vector.
func (mp *Mapping) ProcOfID(id int, dst []int) []int {
	return numutil.CoordOf(id, mp.Mod, dst)
}

// DirectionOffset returns the processor-grid offset vector induced by moving
// one tile in the +dim direction: column dim of M, component-wise mod Mod.
// Because the mapping is linear, θ(tile + e_dim) = θ(tile) + offset (mod m⃗)
// for every tile — this is exactly the neighbor property.
func (mp *Mapping) DirectionOffset(dim int) []int {
	d := len(mp.B)
	off := make([]int, d)
	for i := 0; i < d; i++ {
		off[i] = numutil.EMod(mp.M[i][dim], mp.Mod[i])
	}
	return off
}

// NeighborProc returns the processor that owns the tiles adjacent to
// processor proc's tiles along dimension dim, step tiles away (step may be
// negative). All of proc's tiles with an in-grid step-neighbor have that
// neighbor on this single processor — the neighbor property, which follows
// from linearity: θ(tile + step·e_dim) = θ(tile) + step·(column dim of M)
// whenever tile + step·e_dim stays inside the grid.
func (mp *Mapping) NeighborProc(proc, dim, step int) int {
	d := len(mp.B)
	vec := make([]int, d)
	mp.ProcOfID(proc, vec)
	for i := 0; i < d; i++ {
		vec[i] = numutil.EMod(vec[i]+step*mp.M[i][dim], mp.Mod[i])
	}
	return numutil.RankOf(vec, mp.Mod)
}

// Tiles returns the tile coordinates owned by each processor: Tiles()[q] is
// the list of q's tiles in row-major tile order. The layout is computed once
// per call; callers that need it repeatedly should cache it.
func (mp *Mapping) Tiles() [][][]int {
	out := make([][][]int, mp.P)
	numutil.EachCoord(mp.B, func(tile []int) {
		q := mp.Proc(tile)
		out[q] = append(out[q], numutil.CopyInts(tile))
	})
	return out
}

// SlabTiles returns, for the slab of tiles with coordinate slab along
// dimension dim, the tiles in that slab owned by each processor. Every
// processor owns the same number (the balance property).
func (mp *Mapping) SlabTiles(dim, slab int) [][][]int {
	if dim < 0 || dim >= len(mp.B) || slab < 0 || slab >= mp.B[dim] {
		panic(fmt.Sprintf("modmap: SlabTiles(%d, %d) out of range for shape %v", dim, slab, mp.B))
	}
	out := make([][][]int, mp.P)
	sub := numutil.CopyInts(mp.B)
	sub[dim] = 1
	numutil.EachCoord(sub, func(tile []int) {
		tile[dim] = slab
		q := mp.Proc(tile)
		out[q] = append(out[q], numutil.CopyInts(tile))
		tile[dim] = 0
	})
	return out
}

// VerifyBalance exhaustively checks the balance (load-balancing) property:
// in every slab along every dimension, every processor owns exactly
// (slab tile count)/p tiles. It returns nil when the property holds.
func (mp *Mapping) VerifyBalance() error {
	d := len(mp.B)
	counts := make([]int, mp.P)
	for dim := 0; dim < d; dim++ {
		slabTiles := numutil.ProdExcept(mp.B, dim)
		want := slabTiles / mp.P
		for slab := 0; slab < mp.B[dim]; slab++ {
			for i := range counts {
				counts[i] = 0
			}
			sub := numutil.CopyInts(mp.B)
			sub[dim] = 1
			bad := false
			numutil.EachCoord(sub, func(tile []int) {
				tile[dim] = slab
				counts[mp.Proc(tile)]++
				tile[dim] = 0
			})
			for _, c := range counts {
				if c != want {
					bad = true
				}
			}
			if bad {
				return fmt.Errorf("modmap: balance violated in slab %d along dimension %d of %v on p=%d: counts %v (want %d each)",
					slab, dim, mp.B, mp.P, counts, want)
			}
		}
	}
	return nil
}

// VerifyNeighbor exhaustively checks the neighbor property: for every
// processor q and every direction ±dim, the in-grid immediate neighbors of
// all of q's tiles belong to a single processor, and it matches
// NeighborProc. (Tiles on the grid boundary have no neighbor beyond it; a
// sweep communicates nothing across the domain boundary, so the property is
// about interior adjacency.)
func (mp *Mapping) VerifyNeighbor() error {
	d := len(mp.B)
	neighborOf := make([]int, mp.P)
	for dim := 0; dim < d; dim++ {
		for _, step := range []int{1, -1} {
			for q := range neighborOf {
				neighborOf[q] = -1
			}
			var err error
			numutil.EachCoord(mp.B, func(tile []int) {
				if err != nil {
					return
				}
				if n := tile[dim] + step; n < 0 || n >= mp.B[dim] {
					return // boundary tile: no neighbor in this direction
				}
				q := mp.Proc(tile)
				nt := numutil.CopyInts(tile)
				nt[dim] += step
				nq := mp.Proc(nt)
				switch {
				case neighborOf[q] == -1:
					neighborOf[q] = nq
				case neighborOf[q] != nq:
					err = fmt.Errorf("modmap: neighbor property violated for proc %d, dim %d step %+d: tiles map to both proc %d and %d",
						q, dim, step, neighborOf[q], nq)
				}
				if want := mp.NeighborProc(q, dim, step); nq != want {
					err = fmt.Errorf("modmap: NeighborProc(%d, %d, %+d) = %d but tile neighbor is on proc %d",
						q, dim, step, want, nq)
				}
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Verify runs both VerifyBalance and VerifyNeighbor.
func (mp *Mapping) Verify() error {
	if err := mp.VerifyBalance(); err != nil {
		return err
	}
	return mp.VerifyNeighbor()
}

// RawMatrix returns the matrix exactly as produced by the Figure 3 kernel,
// before the modular reduction of each row. Useful for inspecting the
// construction; the reduced matrix M defines the same mapping.
func (mp *Mapping) RawMatrix() [][]int {
	out := make([][]int, len(mp.raw))
	for i := range mp.raw {
		out[i] = numutil.CopyInts(mp.raw[i])
	}
	return out
}

// String renders the mapping compactly, e.g. "modmap(p=16, b=4×4×4, m=[1 4 4])".
func (mp *Mapping) String() string {
	return fmt.Sprintf("modmap(p=%d, b=%v, m=%v)", mp.P, mp.B, mp.Mod)
}

// IsOneToOne reports whether an arbitrary modular mapping (matrix M with
// moduli mod) is one-to-one from the hyper-rectangle of shape b onto the
// full grid of shape mod. (Definitions of Section 4; exhaustive check.)
func IsOneToOne(M [][]int, mod, b []int) bool {
	if numutil.Prod(b...) != numutil.Prod(mod...) {
		return false
	}
	return IsEquallyManyToOne(M, mod, b)
}

// IsEquallyManyToOne reports whether the modular mapping hits every point of
// the grid of shape mod the same number of times when applied to the
// hyper-rectangle of shape b. (Exhaustive check.)
func IsEquallyManyToOne(M [][]int, mod, b []int) bool {
	total := numutil.Prod(b...)
	cells := numutil.Prod(mod...)
	if total%cells != 0 {
		return false
	}
	want := total / cells
	counts := make([]int, cells)
	dOut := len(mod)
	vec := make([]int, dOut)
	numutil.EachCoord(b, func(i []int) {
		for r := 0; r < dOut; r++ {
			s := 0
			for k := range i {
				s += M[r][k] * i[k]
			}
			vec[r] = numutil.EMod(s, mod[r])
		}
		counts[numutil.RankOf(vec, mod)]++
	})
	for _, c := range counts {
		if c != want {
			return false
		}
	}
	return true
}

// HasLoadBalancingProperty reports whether the modular mapping (M, mod) has
// the Section 4 load-balancing property for the hyper-rectangle of shape b:
// its restriction to every slice b(i, k) is equally-many-to-one onto the
// grid of shape mod. (Exhaustive check; by linearity it suffices to test
// the slices through 0, i.e. the mappings M[i] of Lemma 2, but this checks
// all slices for test value.)
func HasLoadBalancingProperty(M [][]int, mod, b []int) bool {
	for dim := range b {
		for k := 0; k < b[dim]; k++ {
			if !sliceEquallyManyToOne(M, mod, b, dim, k) {
				return false
			}
		}
	}
	return true
}

func sliceEquallyManyToOne(M [][]int, mod, b []int, dim, k int) bool {
	cells := numutil.Prod(mod...)
	sliceSize := numutil.ProdExcept(b, dim)
	if sliceSize%cells != 0 {
		return false
	}
	want := sliceSize / cells
	counts := make([]int, cells)
	dOut := len(mod)
	vec := make([]int, dOut)
	sub := numutil.CopyInts(b)
	sub[dim] = 1
	ok := true
	numutil.EachCoord(sub, func(i []int) {
		i[dim] = k
		for r := 0; r < dOut; r++ {
			s := 0
			for kk := range i {
				s += M[r][kk] * i[kk]
			}
			vec[r] = numutil.EMod(s, mod[r])
		}
		counts[numutil.RankOf(vec, mod)]++
		i[dim] = 0
	})
	for _, c := range counts {
		if c != want {
			ok = false
		}
	}
	return ok
}

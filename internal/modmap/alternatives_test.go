package modmap

import (
	"testing"

	"genmp/internal/numutil"
)

func TestNewPermutedValidMappings(t *testing.T) {
	cases := []struct {
		p int
		b []int
	}{
		{16, []int{4, 4, 4}},
		{30, []int{10, 15, 6}},
		{8, []int{4, 4, 2}},
		{12, []int{6, 6, 2}},
	}
	for _, c := range cases {
		numutil.Permutations(len(c.b), func(perm []int) {
			mp, err := NewPermuted(c.p, c.b, numutil.CopyInts(perm))
			if err != nil {
				t.Fatalf("p=%d b=%v perm=%v: %v", c.p, c.b, perm, err)
			}
			if !numutil.EqualInts(mp.B, c.b) {
				t.Fatalf("perm %v: mapping shape %v, want %v", perm, mp.B, c.b)
			}
			if err := mp.Verify(); err != nil {
				t.Fatalf("p=%d b=%v perm=%v: %v", c.p, c.b, perm, err)
			}
		})
	}
}

func TestNewPermutedIdentityMatchesNew(t *testing.T) {
	base, err := New(30, []int{10, 15, 6})
	if err != nil {
		t.Fatal(err)
	}
	perm, err := NewPermuted(30, []int{10, 15, 6}, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	numutil.EachCoord(base.B, func(tile []int) {
		if base.Proc(tile) != perm.Proc(tile) {
			t.Fatalf("identity permutation changed the assignment at %v", tile)
		}
	})
}

func TestAlternativesAreDistinctAndLegal(t *testing.T) {
	alts, err := Alternatives(16, []int{4, 4, 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(alts) < 2 {
		t.Fatalf("expected multiple distinct legal mappings, got %d", len(alts))
	}
	sigs := map[string]bool{}
	for i, mp := range alts {
		if err := mp.Verify(); err != nil {
			t.Errorf("alternative %d: %v", i, err)
		}
		sig := mp.assignmentSignature()
		if sigs[sig] {
			t.Errorf("alternative %d duplicates an earlier assignment", i)
		}
		sigs[sig] = true
	}
}

func TestAlternativesRespectsMax(t *testing.T) {
	alts, err := Alternatives(30, []int{10, 15, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(alts) > 2 {
		t.Fatalf("max=2 but got %d", len(alts))
	}
}

func TestNewPermutedRejectsBadPerms(t *testing.T) {
	if _, err := NewPermuted(4, []int{4, 4, 1}, []int{0, 0, 1}); err == nil {
		t.Error("duplicate permutation entries should fail")
	}
	if _, err := NewPermuted(4, []int{4, 4, 1}, []int{0, 1}); err == nil {
		t.Error("rank mismatch should fail")
	}
	if _, err := Alternatives(4, []int{4, 4, 1}, 0); err == nil {
		t.Error("max=0 should fail")
	}
}

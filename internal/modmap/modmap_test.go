package modmap

import (
	"testing"

	"genmp/internal/numutil"
	"genmp/internal/partition"
)

func TestModuliProperties(t *testing.T) {
	cases := []struct {
		p int
		b []int
	}{
		{16, []int{4, 4, 4}},
		{8, []int{4, 4, 2}},
		{8, []int{8, 8, 1}},
		{30, []int{10, 15, 6}},
		{30, []int{30, 30, 1}},
		{50, []int{5, 10, 10}},
		{49, []int{7, 7, 7}},
		{12, []int{6, 6, 2, 1}},
		{1, []int{1, 1}},
		{6, []int{6, 6}},
	}
	for _, c := range cases {
		mod := Moduli(c.p, c.b)
		if mod[0] != 1 {
			t.Errorf("p=%d b=%v: m₁ = %d, want 1", c.p, c.b, mod[0])
		}
		if got := numutil.Prod(mod...); got != c.p {
			t.Errorf("p=%d b=%v: ∏m = %d, want %d (m=%v)", c.p, c.b, got, c.p, mod)
		}
		for i, m := range mod {
			if c.b[i]%m != 0 {
				t.Errorf("p=%d b=%v: m[%d] = %d does not divide b[%d] = %d", c.p, c.b, i, m, i, c.b[i])
			}
		}
	}
}

func TestModuliMatchesDirectFormulaSmall(t *testing.T) {
	// For small inputs the suffix products fit in int64; compare against the
	// literal formula.
	cases := []struct {
		p int
		b []int
	}{
		{16, []int{4, 4, 4}}, {8, []int{4, 4, 2}}, {30, []int{10, 15, 6}},
		{12, []int{6, 6, 2}}, {36, []int{6, 6, 6}}, {50, []int{5, 10, 10}},
	}
	for _, c := range cases {
		d := len(c.b)
		want := make([]int, d)
		for i := 0; i < d; i++ {
			num := 1
			for j := i; j < d; j++ {
				num *= c.b[j]
			}
			den := 1
			for j := i + 1; j < d; j++ {
				den *= c.b[j]
			}
			want[i] = numutil.GCD(c.p, num) / numutil.GCD(c.p, den)
		}
		got := Moduli(c.p, c.b)
		if !numutil.EqualInts(got, want) {
			t.Errorf("Moduli(%d, %v) = %v, want %v", c.p, c.b, got, want)
		}
	}
}

func TestNewRejectsInvalidPartitioning(t *testing.T) {
	if _, err := New(8, []int{4, 2, 2}); err == nil {
		t.Error("New(8, 4×2×2) should fail: slab along dim 0 has 4 tiles")
	}
	if _, err := New(4, []int{2, 2}); err == nil {
		t.Error("New(4, 2×2) should fail: slabs have 2 tiles")
	}
	if _, err := New(0, []int{1}); err == nil {
		t.Error("New(0, …) should fail")
	}
	if _, err := New(2, []int{2, 0}); err == nil {
		t.Error("non-positive extent should fail")
	}
	if _, err := New(2, nil); err == nil {
		t.Error("empty shape should fail")
	}
}

func TestFigure1ShapeMapping(t *testing.T) {
	// The paper's Figure 1 case: p = 16, 4×4×4 tiles. The generalized
	// construction must be a perfect multipartitioning: 4 tiles per
	// processor, one per slab in every dimension.
	mp, err := New(16, []int{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Verify(); err != nil {
		t.Fatal(err)
	}
	if mp.TilesPerProc() != 4 {
		t.Errorf("tiles per proc = %d, want 4", mp.TilesPerProc())
	}
	for dim := 0; dim < 3; dim++ {
		for slab := 0; slab < 4; slab++ {
			per := mp.SlabTiles(dim, slab)
			for q, tiles := range per {
				if len(tiles) != 1 {
					t.Fatalf("dim %d slab %d proc %d owns %d tiles, want 1", dim, slab, q, len(tiles))
				}
			}
		}
	}
}

func TestConstructionAcrossAllElementaryPartitionings(t *testing.T) {
	// The heart of Section 4: for EVERY valid partitioning the construction
	// yields a mapping with balance + neighbor. Sweep every elementary
	// partitioning for a range of processor counts and dimensions.
	for p := 1; p <= 36; p++ {
		for d := 2; d <= 4; d++ {
			for _, gamma := range partition.Elementary(p, d) {
				if numutil.Prod(gamma...) > 100000 {
					continue // keep exhaustive verification affordable
				}
				mp, err := New(p, gamma)
				if err != nil {
					t.Fatalf("p=%d γ=%v: construction failed: %v", p, gamma, err)
				}
				if err := mp.Verify(); err != nil {
					t.Fatalf("p=%d γ=%v: %v\nraw M = %v, mod = %v", p, gamma, err, mp.RawMatrix(), mp.Mod)
				}
			}
		}
	}
}

func TestConstructionOnSelectedLargerCases(t *testing.T) {
	cases := []struct {
		p int
		b []int
	}{
		{49, []int{7, 7, 7}},
		{50, []int{5, 10, 10}},
		{50, []int{10, 10, 5}},
		{64, []int{8, 8, 8}},
		{64, []int{16, 16, 4}},
		{72, []int{12, 12, 6}},
		{81, []int{9, 9, 9}},
		{45, []int{15, 15, 3}},
		{100, []int{10, 10, 10}},
		{36, []int{6, 6, 6, 1}},
		{24, []int{12, 4, 2, 3}},
		{16, []int{4, 4, 2, 2, 1}},
	}
	for _, c := range cases {
		mp, err := New(c.p, c.b)
		if err != nil {
			t.Fatalf("p=%d b=%v: %v", c.p, c.b, err)
		}
		if err := mp.Verify(); err != nil {
			t.Errorf("p=%d b=%v: %v", c.p, c.b, err)
		}
	}
}

func TestConstructionLargeP(t *testing.T) {
	// Construction and exhaustive verification stay cheap even at the
	// paper's "p up to 1000" scale.
	cases := []struct {
		p int
		b []int
	}{
		{720, []int{12, 60, 60}},
		{1000, []int{10, 100, 100}},
		{997, []int{1, 997, 997}}, // large prime: γ = (1, p, p)
	}
	for _, c := range cases {
		mp, err := New(c.p, c.b)
		if err != nil {
			t.Fatalf("p=%d: %v", c.p, err)
		}
		if err := mp.VerifyBalance(); err != nil {
			t.Errorf("p=%d: %v", c.p, err)
		}
		if err := mp.VerifyNeighbor(); err != nil {
			t.Errorf("p=%d: %v", c.p, err)
		}
	}
}

func TestConstructionOnNonElementaryValidPartitionings(t *testing.T) {
	// Section 4 requires only validity, not elementarity — e.g. "multiples"
	// of smaller multipartitionings must work too.
	cases := []struct {
		p int
		b []int
	}{
		{4, []int{4, 4, 4}},  // paving of 2×2×2? no — 4×4×4 is a multiple of 2×2×2 and of 4×4×1
		{4, []int{8, 8, 2}},  // multiple of 4×4×1 and 2×2×2 mixes
		{8, []int{8, 8, 2}},  // multiple of 4×4×2? (8·2=16 ✓, 8·2=16 ✓, 8·8=64 ✓)
		{6, []int{12, 6, 2}}, // slabs: 12, 24, 72 — all multiples of 6
		{9, []int{9, 9, 9}},  // multiple of 3×3×... wait 9×9 = 81 ✓
		{16, []int{8, 8, 4}}, // slabs 32, 32, 64 — all multiples of 16
	}
	for _, c := range cases {
		if partition.IsElementary(c.p, c.b) {
			t.Errorf("test premise broken: %v is elementary for p=%d", c.b, c.p)
		}
		mp, err := New(c.p, c.b)
		if err != nil {
			t.Fatalf("p=%d b=%v: %v", c.p, c.b, err)
		}
		if err := mp.Verify(); err != nil {
			t.Errorf("p=%d b=%v: %v", c.p, c.b, err)
		}
	}
}

func TestTilesPartitionTheGrid(t *testing.T) {
	mp, err := New(8, []int{4, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	tiles := mp.Tiles()
	if len(tiles) != 8 {
		t.Fatalf("Tiles() has %d processors, want 8", len(tiles))
	}
	seen := map[string]bool{}
	count := 0
	for q, ts := range tiles {
		if len(ts) != mp.TilesPerProc() {
			t.Errorf("proc %d owns %d tiles, want %d", q, len(ts), mp.TilesPerProc())
		}
		for _, tile := range ts {
			key := partition.Describe(tile)
			if seen[key] {
				t.Errorf("tile %v assigned twice", tile)
			}
			seen[key] = true
			count++
			if got := mp.Proc(tile); got != q {
				t.Errorf("Proc(%v) = %d, but tile listed under %d", tile, got, q)
			}
		}
	}
	if count != 32 {
		t.Errorf("total tiles = %d, want 32", count)
	}
}

func TestNeighborProcConsistency(t *testing.T) {
	mp, err := New(30, []int{10, 15, 6})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < mp.P; q++ {
		for dim := 0; dim < 3; dim++ {
			// Walking +1 then -1 must return to q.
			fwd := mp.NeighborProc(q, dim, 1)
			if back := mp.NeighborProc(fwd, dim, -1); back != q {
				t.Errorf("proc %d dim %d: +1 then -1 gives %d", q, dim, back)
			}
			// Composing k single steps equals one k-step jump (linearity).
			cur := q
			for s := 0; s < 3; s++ {
				cur = mp.NeighborProc(cur, dim, 1)
			}
			if jump := mp.NeighborProc(q, dim, 3); jump != cur {
				t.Errorf("proc %d dim %d: 3 single steps give %d, one 3-step jump gives %d", q, dim, cur, jump)
			}
		}
	}
}

func TestProcVecWraparound(t *testing.T) {
	mp, err := New(16, []int{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	a := make([]int, 3)
	b := make([]int, 3)
	mp.ProcVec([]int{1, 2, 3}, a)
	mp.ProcVec([]int{5, -2, 7}, b) // ≡ (1, 2, 3) mod 4
	if !numutil.EqualInts(a, b) {
		t.Errorf("wraparound coordinates map differently: %v vs %v", a, b)
	}
}

func TestDiagonalSpecialCase(t *testing.T) {
	// When p = c^(d-1) and b = (c,…,c), every slab holds exactly p tiles, so
	// the balance property forces one tile per processor per slab — the
	// generalized mapping degenerates to a diagonal-style multipartitioning.
	cases := []struct{ c, d int }{{4, 3}, {3, 3}, {5, 3}, {2, 4}, {3, 4}, {2, 5}, {7, 2}}
	for _, cs := range cases {
		p := numutil.Pow(cs.c, cs.d-1)
		b := make([]int, cs.d)
		for i := range b {
			b[i] = cs.c
		}
		mp, err := New(p, b)
		if err != nil {
			t.Fatalf("c=%d d=%d: %v", cs.c, cs.d, err)
		}
		if err := mp.Verify(); err != nil {
			t.Fatalf("c=%d d=%d: %v", cs.c, cs.d, err)
		}
		for dim := 0; dim < cs.d; dim++ {
			for slab := 0; slab < cs.c; slab++ {
				for q, tiles := range mp.SlabTiles(dim, slab) {
					if len(tiles) != 1 {
						t.Fatalf("c=%d d=%d dim=%d slab=%d proc=%d: %d tiles per slab, want 1",
							cs.c, cs.d, dim, slab, q, len(tiles))
					}
				}
			}
		}
	}
}

func TestJohnsson2DAsModularMapping(t *testing.T) {
	// Johnsson et al.'s 2-D mapping θ(i,j) = (i−j) mod p is the modular
	// mapping with M = [[0,0],[1,−1]], m = (1, p). It must pass the same
	// predicates as our construction.
	for _, p := range []int{2, 3, 4, 5, 8} {
		M := [][]int{{0, 0}, {1, -1}}
		mod := []int{1, p}
		b := []int{p, p}
		if !IsEquallyManyToOne(M, mod, b) {
			t.Errorf("p=%d: Johnsson mapping is not equally-many-to-one on the full grid", p)
		}
		if !HasLoadBalancingProperty(M, mod, b) {
			t.Errorf("p=%d: Johnsson mapping lacks the load-balancing property", p)
		}
	}
}

func TestIsOneToOneAndEquallyManyToOne(t *testing.T) {
	// Identity mapping with m = b is one-to-one.
	M := [][]int{{1, 0}, {0, 1}}
	if !IsOneToOne(M, []int{3, 4}, []int{3, 4}) {
		t.Error("identity should be one-to-one from 3×4 onto 3×4")
	}
	// Lemma 3: a one-to-one mapping on b′ is equally-many-to-one on any
	// multiple of b′.
	if !IsEquallyManyToOne(M, []int{3, 4}, []int{6, 8}) {
		t.Error("identity should be equally-many-to-one from 6×8 onto 3×4")
	}
	if IsEquallyManyToOne(M, []int{3, 4}, []int{4, 4}) {
		t.Error("4×4 onto 3×4 cannot be equally-many-to-one (counts don't divide)")
	}
	// A degenerate mapping (all zeros) is not equally-many-to-one unless the
	// grid has one cell.
	Z := [][]int{{0, 0}, {0, 0}}
	if IsEquallyManyToOne(Z, []int{3, 4}, []int{3, 4}) {
		t.Error("zero mapping should fail equally-many-to-one")
	}
	if !IsEquallyManyToOne(Z, []int{1, 1}, []int{3, 4}) {
		t.Error("zero mapping onto a single cell is trivially equally-many-to-one")
	}
}

func TestHasLoadBalancingMatchesMappingVerify(t *testing.T) {
	// The standalone predicate and the Mapping method must agree on the
	// constructed mappings.
	cases := []struct {
		p int
		b []int
	}{
		{8, []int{4, 4, 2}}, {30, []int{10, 15, 6}}, {12, []int{6, 6, 2}},
	}
	for _, c := range cases {
		mp, err := New(c.p, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if !HasLoadBalancingProperty(mp.M, mp.Mod, mp.B) {
			t.Errorf("p=%d b=%v: constructed mapping fails HasLoadBalancingProperty", c.p, c.b)
		}
	}
}

func TestReducedAndRawMatrixAgree(t *testing.T) {
	mp, err := New(30, []int{10, 15, 6})
	if err != nil {
		t.Fatal(err)
	}
	raw := mp.RawMatrix()
	vecR := make([]int, 3)
	numutil.EachCoord(mp.B, func(tile []int) {
		mp.ProcVec(tile, vecR)
		for i := 0; i < 3; i++ {
			s := 0
			for k := 0; k < 3; k++ {
				s += raw[i][k] * tile[k]
			}
			if numutil.EMod(s, mp.Mod[i]) != vecR[i] {
				t.Fatalf("tile %v: raw and reduced matrices disagree in component %d", tile, i)
			}
		}
	})
}

func TestTrivialCases(t *testing.T) {
	// p = 1: everything on processor 0.
	mp, err := New(1, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	numutil.EachCoord(mp.B, func(tile []int) {
		if mp.Proc(tile) != 0 {
			t.Fatalf("p=1: tile %v on proc %d", tile, mp.Proc(tile))
		}
	})
	// Dimensions with a single tile (γᵢ = 1), e.g. 8×8×1 on p = 8.
	mp2, err := New(8, []int{8, 8, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := mp2.Verify(); err != nil {
		t.Error(err)
	}
}

func TestSlabTilesArgumentChecks(t *testing.T) {
	mp, err := New(4, []int{2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SlabTiles out of range should panic")
		}
	}()
	mp.SlabTiles(0, 5)
}

package dist

import (
	"fmt"
	"sync"

	"genmp/internal/core"
	"genmp/internal/grid"
	"genmp/internal/numutil"
	"genmp/internal/plan"
	"genmp/internal/redist"
	"genmp/internal/sweep"
	"genmp/internal/xport"
)

// Block is a static block unipartitioning of a d-dimensional array: one
// dimension (Dim) is cut into p contiguous slabs, one per processor — the
// first of the two "standard" strategies the paper contrasts with
// multipartitioning. Sweeps along unpartitioned dimensions are fully local;
// sweeps along Dim are either pipelined wavefronts (static block) or
// transpose-based (dynamic block).
type Block struct {
	P        int
	Eta      []int
	Dim      int
	Overhead OverheadModel
	// Coll selects the all-to-all algorithm of TransposeSweep
	// (xport.AlgAuto: the direct pairwise exchange).
	Coll xport.Alg
	// Batch is the panel width of the batched sweep kernels: 0 picks
	// sweep.DefaultBatchLines, negative forces the scalar per-line path
	// (the bit-identical oracle, also used as the "before" ablation).
	Batch int
	// Overlap is folded into lazily compiled wavefront plans: enabled, each
	// pipeline block solves its boundary lines first and posts the carry
	// while the interior computes (DESIGN.md §14).
	Overlap plan.Overlap
	// scratchBuf holds one reusable arena per rank (indexed by rank ID, so
	// concurrently running ranks never share); presized lazily by scratch,
	// so literal-built Blocks are allocation-free in steady state too.
	scratchBuf []rankScratch
	scOnce     sync.Once
	// wfPlans caches compiled wavefront schedules per (solver, grain) so
	// repeated sweeps share one plan across ranks and steps.
	wfMu    sync.Mutex
	wfPlans map[wfKey]*plan.SweepPlan
	// tpPlans caches compiled transpose redistributions per (tDim, nGrids):
	// index 0 holds the forward move (Dim-slabs → tDim-slabs), index 1 the
	// reverse. Shared across concurrently running ranks, hence the mutex.
	tpMu    sync.Mutex
	tpPlans map[tpKey][2]*redist.Plan
}

// tpKey identifies one compiled transpose pair.
type tpKey struct {
	tDim, nGrids int
}

// wfKey identifies one compiled wavefront schedule: the carry lengths come
// from the named solver, the phase structure from the grain.
type wfKey struct {
	solver  string
	grain   int
	overlap bool
}

// rankScratch is the per-rank reusable state of a sweep executor: the SoA
// panel arena, a second workspace for chunked scalar solves (the two must
// be distinct — a chunk solve runs while panel views are live), and the
// cached line geometry.
type rankScratch struct {
	pan       sweep.Workspace
	chunk     sweep.Workspace
	lines     []grid.Line
	tileLines []int
	pub       sweep.WorkspacePublisher
}

// publish streams this rank's arena acquisition counters into the run's
// live registry (a no-op when metrics are off).
func (sc *rankScratch) publish(r xport.Transport) {
	sc.pub.Publish(r.MetricsRegistry(), &sc.pan, &sc.chunk)
}

// scratchWorkspaceStats aggregates arena counters across a per-rank
// scratch slice — the executor-wide hit/miss view the alloc tests assert
// on. Callers must not race it against running ranks.
func scratchWorkspaceStats(buf []rankScratch) sweep.WorkspaceStats {
	var out sweep.WorkspaceStats
	for q := range buf {
		for _, s := range []sweep.WorkspaceStats{buf[q].pan.Stats(), buf[q].chunk.Stats()} {
			out.Gets += s.Gets
			out.Hits += s.Hits
		}
	}
	return out
}

// scratch returns rank q's arena, presizing the per-rank slice on first use
// so a Block built as a literal is served from persistent arenas too.
func (b *Block) scratch(q int) *rankScratch {
	b.scOnce.Do(func() {
		if b.scratchBuf == nil {
			b.scratchBuf = make([]rankScratch, b.P)
		}
	})
	return &b.scratchBuf[q]
}

// WorkspaceStats aggregates arena acquisition counters across all ranks'
// scratch; with warmed arenas the hit rate is 1. Not safe against ranks
// still running.
func (b *Block) WorkspaceStats() sweep.WorkspaceStats {
	return scratchWorkspaceStats(b.scratchBuf)
}

// wavefrontPlan returns the compiled pipeline schedule for (solver, grain),
// compiling it on first use. All ranks execute the one shared instance.
func (b *Block) wavefrontPlan(solver sweep.Solver, grainLines int) *plan.SweepPlan {
	key := wfKey{solver: solver.Name(), grain: grainLines, overlap: b.Overlap.Enabled}
	b.wfMu.Lock()
	defer b.wfMu.Unlock()
	if pl, ok := b.wfPlans[key]; ok {
		return pl
	}
	pl, err := plan.CompileWavefront(plan.WavefrontSpec{
		P: b.P, Eta: b.Eta, Dim: b.Dim, Grain: grainLines, Solver: solver, Batch: b.Batch, Overlap: b.Overlap,
	})
	if err != nil {
		panic("dist: " + err.Error())
	}
	if b.wfPlans == nil {
		b.wfPlans = map[wfKey]*plan.SweepPlan{}
	}
	b.wfPlans[key] = pl
	return pl
}

// NewBlock builds a block unipartitioning along the given dimension.
func NewBlock(p int, eta []int, dim int, ov OverheadModel) (*Block, error) {
	if p < 1 {
		return nil, fmt.Errorf("dist: Block: p = %d must be ≥ 1", p)
	}
	if dim < 0 || dim >= len(eta) {
		return nil, fmt.Errorf("dist: Block: dim %d out of range for rank %d", dim, len(eta))
	}
	if eta[dim] < p {
		return nil, fmt.Errorf("dist: Block: extent η[%d] = %d smaller than p = %d", dim, eta[dim], p)
	}
	return &Block{P: p, Eta: numutil.CopyInts(eta), Dim: dim, Overhead: ov, scratchBuf: make([]rankScratch, p)}, nil
}

// OwnedRange returns rank q's slab [lo, hi) along the partitioned dimension.
func (b *Block) OwnedRange(q int) (lo, hi int) {
	return core.BlockRange(b.Eta[b.Dim], b.P, q)
}

// ownedRect returns rank q's region of the array.
func (b *Block) ownedRect(q int) grid.Rect {
	lo := make([]int, len(b.Eta))
	hi := numutil.CopyInts(b.Eta)
	lo[b.Dim], hi[b.Dim] = b.OwnedRange(q)
	return grid.RectOf(lo, hi)
}

// orthoLines returns the number of lines along dim crossing rank q's slab.
func (b *Block) orthoLines(q, dim int) int {
	rect := b.ownedRect(q)
	n := 1
	for j := range b.Eta {
		if j != dim {
			n *= rect.Hi[j] - rect.Lo[j]
		}
	}
	return n
}

// ComputeOnSlab models (and, when f is non-nil, performs) a local
// computation phase of flopsPerElement over every element of the calling
// rank's slab.
func (b *Block) ComputeOnSlab(r xport.Transport, flopsPerElement float64, f func(rect grid.Rect)) {
	rect := b.ownedRect(r.Rank())
	r.Compute(b.Overhead.PerTileVisit)
	if f != nil {
		f(rect)
	}
	r.ComputeFlops(flopsPerElement * float64(rect.Size()) * b.Overhead.ComputeFactor)
}

// OwnedRect returns rank q's region of the array.
func (b *Block) OwnedRect(q int) grid.Rect { return b.ownedRect(q) }

// LocalSweep performs a sweep along an unpartitioned dimension: every line
// is fully local to its owner, so there is no communication at all.
func (b *Block) LocalSweep(r xport.Transport, dim int, solver sweep.Solver, vecs []*grid.Grid) {
	if dim == b.Dim {
		panic("dist: LocalSweep along the partitioned dimension; use WavefrontSweep or TransposeSweep")
	}
	rect := b.ownedRect(r.Rank())
	lines := b.orthoLines(r.Rank(), dim)
	elements := lines * b.Eta[dim]
	r.Compute(b.Overhead.PerTileVisit)
	if vecs != nil {
		sc := b.scratch(r.Rank())
		solveLocalLines(solver, vecs, rect, dim, b.Batch, sc)
		sc.publish(r)
	}
	r.ComputeFlops(solver.FlopsPerElement() * float64(elements) * b.Overhead.ComputeFactor)
}

// solveLocalLines runs full-line solves over every line of rect along dim.
// Lines are packed into SoA panels of `batch` lines and solved by the
// batched kernels (bit-identical to the scalar path); solvers without a
// batched form, or batch < 0, take the per-line scalar path.
func solveLocalLines(solver sweep.Solver, vecs []*grid.Grid, rect grid.Rect, dim, batch int, sc *rankScratch) {
	n := rect.Hi[dim] - rect.Lo[dim]
	nv := solver.NumVecs()
	bs, ok := solver.(sweep.BatchSolver)
	if !ok || batch < 0 {
		chunk := sc.pan.Panels(nv, n)
		vecs[0].EachLine(rect, dim, func(l grid.Line) {
			for v, g := range vecs {
				g.Gather(l, chunk[v])
			}
			sweep.ChunkedSolveWS(solver, chunk, nil, &sc.chunk)
			for v, g := range vecs {
				g.Scatter(l, chunk[v])
			}
		})
		return
	}
	if batch == 0 {
		batch = sweep.DefaultBatchLines
	}
	sc.lines = vecs[0].AppendLines(rect, dim, sc.lines[:0])
	lines := sc.lines
	runBackward := solver.BackwardCarryLen() > 0
	// Both passes run on one packed panel, so the move masks are the union
	// of the passes': gather what either touches, scatter what either
	// writes (skipping a scatter of unmodified values is a numeric no-op).
	fwdT, fwdW := sweep.PassMasks(solver, false)
	var bwdT, bwdW []bool
	if runBackward {
		bwdT, bwdW = sweep.PassMasks(solver, true)
	}
	for s0 := 0; s0 < len(lines); s0 += batch {
		nb := min(batch, len(lines)-s0)
		blk := lines[s0 : s0+nb]
		panels := sc.pan.Panels(nv, nb*n)
		for v, g := range vecs {
			if sweep.MaskOn(fwdT, v) || (runBackward && sweep.MaskOn(bwdT, v)) {
				g.GatherLines(blk, panels[v])
			}
		}
		bs.ForwardBatch(panels, nb, nil, nil)
		if runBackward {
			bs.BackwardBatch(panels, nb, nil, nil)
		}
		for v, g := range vecs {
			if sweep.MaskOn(fwdW, v) || (runBackward && sweep.MaskOn(bwdW, v)) {
				g.ScatterLines(blk, panels[v])
			}
		}
	}
}

// WavefrontSweep performs a pipelined sweep along the partitioned
// dimension. The lines crossing all slabs are processed in blocks of
// grainLines; rank q handles block m only after receiving its carries from
// rank q−1, so computation proceeds as a software pipeline whose fill and
// drain cost shrinks with the grain while the per-message overhead grows —
// the Section 1 tension of static block partitionings.
func (b *Block) WavefrontSweep(r xport.Transport, solver sweep.Solver, vecs []*grid.Grid, grainLines int) {
	if grainLines < 1 {
		panic("dist: WavefrontSweep: grainLines must be ≥ 1")
	}
	pl := b.wavefrontPlan(solver, grainLines)
	b.wavefrontPass(r, solver, vecs, pl, false)
	if solver.BackwardCarryLen() > 0 || solver.BackwardFlopsPerElement() > 0 {
		b.wavefrontPass(r, solver, vecs, pl, true)
	}
}

func (b *Block) wavefrontPass(r xport.Transport, solver sweep.Solver, vecs []*grid.Grid, pl *plan.SweepPlan, backward bool) {
	q := r.Rank()
	pp := pl.Pass(q, b.Dim, backward)
	carryLen := pp.CarryLen
	flopsPerElem := solver.ForwardFlopsPerElement()
	if backward {
		flopsPerElem = solver.BackwardFlopsPerElement()
	}
	rect := b.ownedRect(q)
	chunkLen := rect.Hi[b.Dim] - rect.Lo[b.Dim]

	// Collect this rank's line geometry once (identical ordering on all
	// ranks: row-major over the full orthogonal extents). The batched path
	// treats each grain block as one panel and marshals its carries
	// directly in the line-major wire format, so the outgoing message
	// payload IS the kernel's carryOut — no per-line copy.
	sc := b.scratch(q)
	bs, batched := solver.(sweep.BatchSolver)
	batched = batched && b.Batch >= 0
	var chunk [][]float64
	var touched, written []bool
	nv := solver.NumVecs()
	if vecs != nil {
		sc.lines = vecs[0].AppendLines(rect, b.Dim, sc.lines[:0])
		if batched {
			touched, written = sweep.PassMasks(solver, backward)
		} else {
			chunk = sc.pan.Panels(nv, chunkLen)
		}
	}

	wc := &wfPassCtx{
		sc: sc, solver: solver, bs: bs, batched: batched, backward: backward,
		carryLen: carryLen, flopsPerElem: flopsPerElem, chunkLen: chunkLen,
		nv: nv, chunk: chunk, touched: touched, written: written,
	}
	var preB, preI xport.Request
	for m := range pp.Phases {
		ph := &pp.Phases[m]
		if ph.Boundary > 0 {
			preB, preI = b.wavefrontOverlapPhase(r, wc, vecs, pp, m, preB, preI)
			continue
		}
		first := ph.Tiles[0].LineOff
		count := ph.Lines

		var inBuf []float64
		if ph.RecvFrom >= 0 && carryLen > 0 {
			msg := r.Recv(ph.RecvFrom, ph.RecvTag)
			r.Compute(b.Overhead.PerMessage)
			inBuf = msg.Payload
		}
		var outBuf []float64
		if ph.SendTo >= 0 && carryLen > 0 && vecs != nil {
			outBuf = r.GetPayload(count * carryLen)
		}

		if vecs != nil {
			blk := sc.lines[first : first+count]
			if batched {
				panels := sc.pan.Panels(nv, count*chunkLen)
				for v, g := range vecs {
					if sweep.MaskOn(touched, v) {
						g.GatherLines(blk, panels[v])
					}
				}
				if backward {
					bs.BackwardBatch(panels, count, inBuf, outBuf)
				} else {
					bs.ForwardBatch(panels, count, inBuf, outBuf)
				}
				for v, g := range vecs {
					if sweep.MaskOn(written, v) {
						g.ScatterLines(blk, panels[v])
					}
				}
			} else {
				for i := 0; i < count; i++ {
					l := blk[i]
					for v, g := range vecs {
						g.Gather(l, chunk[v])
					}
					var cIn, cOut []float64
					if inBuf != nil {
						cIn = inBuf[i*carryLen : (i+1)*carryLen]
					}
					if outBuf != nil {
						cOut = outBuf[i*carryLen : (i+1)*carryLen]
					}
					if backward {
						solver.Backward(chunk, cIn, cOut)
					} else {
						solver.Forward(chunk, cIn, cOut)
					}
					for v, g := range vecs {
						g.Scatter(l, chunk[v])
					}
				}
			}
		}
		// A received payload belongs to this rank once consumed; recycle it.
		if inBuf != nil {
			r.PutPayload(inBuf)
		}
		r.ComputeFlops(flopsPerElem * float64(count*chunkLen) * b.Overhead.ComputeFactor)

		if ph.SendTo >= 0 && carryLen > 0 {
			r.Compute(b.Overhead.PerMessage)
			r.Send(ph.SendTo, ph.SendTag, xport.Msg{Bytes: ph.SendBytes, Payload: outBuf})
		}
	}
	sc.publish(r)
}

// TransposeSweep performs the dynamic-block strategy for the partitioned
// dimension: transpose so the sweep dimension becomes local, solve whole
// lines, transpose back. Each transpose is an all-to-all in which every
// rank exchanges its 1/p share of the others' slabs; grids share storage in
// this process, so the messages carry cost and ordering while the solve
// reads whole lines directly. transposeGrids is the number of arrays that
// must move (the solver's vec count in a real code).
func (b *Block) TransposeSweep(r xport.Transport, solver sweep.Solver, vecs []*grid.Grid) {
	q := r.Rank()
	nGrids := solver.NumVecs()

	// Pick the dimension that becomes the distributed one after the
	// transpose: the first dimension other than b.Dim.
	tDim := 0
	if b.Dim == 0 {
		tDim = 1
	}

	b.allToAll(r, tDim, nGrids, 0)

	// After the transpose rank q owns the slab [lo,hi) of tDim with the
	// sweep dimension local: solve whole lines.
	lo, hi := core.BlockRange(b.Eta[tDim], b.P, q)
	rect := grid.RectOf(make([]int, len(b.Eta)), numutil.CopyInts(b.Eta))
	rect.Lo[tDim], rect.Hi[tDim] = lo, hi
	lines := 1
	for j := range b.Eta {
		if j != b.Dim {
			lines *= rect.Hi[j] - rect.Lo[j]
		}
	}
	r.Compute(b.Overhead.PerTileVisit)
	if vecs != nil {
		sc := b.scratch(q)
		solveLocalLines(solver, vecs, rect, b.Dim, b.Batch, sc)
		sc.publish(r)
	}
	r.ComputeFlops(solver.FlopsPerElement() * float64(lines*b.Eta[b.Dim]) * b.Overhead.ComputeFactor)

	b.allToAll(r, tDim, nGrids, 1)
}

// transposePlans returns the compiled transpose redistributions for
// (tDim, nGrids) — [0] forward (Dim-slabs → tDim-slabs), [1] reverse —
// compiling them on first use. Each phase is a BLOCK→BLOCK special case of
// redist.Compile: every peer receives the intersection of q's outgoing slab
// with the peer's incoming slab — q's span along the outgoing distributed
// dimension times the peer's span along the incoming one times the full
// orthogonal extents, exactly the bytes the historical hand-built
// transposeSizes loop computed. (The even older `own/p` shortcut truncated
// whenever an extent was not divisible by p, undercounting the traffic.)
func (b *Block) transposePlans(tDim, nGrids int) [2]*redist.Plan {
	key := tpKey{tDim: tDim, nGrids: nGrids}
	b.tpMu.Lock()
	defer b.tpMu.Unlock()
	if pls, ok := b.tpPlans[key]; ok {
		return pls
	}
	home, err := redist.NewBlockLayout(b.P, b.Eta, b.Dim)
	if err == nil {
		var away *redist.BlockLayout
		if away, err = redist.NewBlockLayout(b.P, b.Eta, tDim); err == nil {
			var pls [2]*redist.Plan
			if pls[0], err = redist.Compile(redist.Spec{From: home, To: away, NGrids: nGrids}); err == nil {
				if pls[1], err = redist.Compile(redist.Spec{From: away, To: home, NGrids: nGrids}); err == nil {
					if b.tpPlans == nil {
						b.tpPlans = map[tpKey][2]*redist.Plan{}
					}
					b.tpPlans[key] = pls
					return pls
				}
			}
		}
	}
	panic("dist: " + err.Error())
}

// transposeSizes returns the modeled bytes rank q ships to each peer for
// one transpose phase, read off the compiled redistribution plan.
func (b *Block) transposeSizes(q, tDim, nGrids, phase int) []int {
	return b.transposePlans(tDim, nGrids)[phase].SendSizes(q, 0, b.P)
}

// allToAll runs one transpose phase by executing its compiled plan: a
// single OpAllToAll step under the algorithm selected by Block.Coll,
// bit-identical to the historical hand-rolled collective call.
func (b *Block) allToAll(r xport.Transport, tDim, nGrids, phase int) {
	if b.P == 1 {
		return
	}
	redist.Execute(r, b.transposePlans(tDim, nGrids)[phase],
		redist.ExecOpts{Coll: b.Coll, PerMessage: b.Overhead.PerMessage})
}

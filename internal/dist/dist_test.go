package dist

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"genmp/internal/core"
	"genmp/internal/grid"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

const tol = 1e-9

func testMachine(p int) *sim.Machine {
	return sim.NewMachine(p,
		sim.Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 1e-6, RecvOverhead: 1e-6},
		sim.CPU{FlopsPerSec: 250e6})
}

// makeBandedGrids builds diagonally dominant random banded systems in the
// sweep package's vec layout over an eta-shaped domain, with band entries
// that would reach outside a line along dim zeroed.
func makeBandedGrids(rng *rand.Rand, eta []int, kl, ku, dim int) []*grid.Grid {
	gs := make([]*grid.Grid, kl+ku+2)
	for i := range gs {
		gs[i] = grid.New(eta...)
	}
	n := eta[dim]
	for k := 1; k <= kl; k++ {
		k := k
		gs[k-1].FillFunc(func(idx []int) float64 {
			if idx[dim] < k {
				return 0
			}
			return rng.Float64() - 0.5
		})
	}
	gs[kl].FillFunc(func([]int) float64 { return 4 + float64(kl+ku) + rng.Float64() })
	for t := 1; t <= ku; t++ {
		t := t
		gs[kl+t].FillFunc(func(idx []int) float64 {
			if idx[dim] >= n-t {
				return 0
			}
			return rng.Float64() - 0.5
		})
	}
	gs[kl+ku+1].FillFunc(func([]int) float64 { return rng.Float64()*10 - 5 })
	return gs
}

// makeRecurrenceGrids builds [a, x] grids for the first-order recurrence.
func makeRecurrenceGrids(rng *rand.Rand, eta []int) []*grid.Grid {
	a := grid.New(eta...)
	x := grid.New(eta...)
	a.FillFunc(func([]int) float64 { return rng.Float64()*1.6 - 0.8 })
	x.FillFunc(func([]int) float64 { return rng.Float64()*4 - 2 })
	return []*grid.Grid{a, x}
}

// serialSolve runs the solver over every full line along dim on clones and
// returns them.
func serialSolve(solver sweep.Solver, gs []*grid.Grid, dim int) []*grid.Grid {
	clones := make([]*grid.Grid, len(gs))
	for i, g := range gs {
		clones[i] = g.Clone()
	}
	n := clones[0].Shape()[dim]
	chunk := make([][]float64, len(clones))
	for v := range chunk {
		chunk[v] = make([]float64, n)
	}
	clones[0].EachLine(clones[0].Bounds(), dim, func(l grid.Line) {
		for v, g := range clones {
			g.Gather(l, chunk[v])
		}
		sweep.ChunkedSolve(solver, chunk, nil)
		for v, g := range clones {
			g.Scatter(l, chunk[v])
		}
	})
	return clones
}

// cloneAll deep-copies a grid list.
func cloneAll(gs []*grid.Grid) []*grid.Grid {
	out := make([]*grid.Grid, len(gs))
	for i, g := range gs {
		out[i] = g.Clone()
	}
	return out
}

func runMultiSweep(t *testing.T, p int, gamma, eta []int, solver sweep.Solver, aggregate bool, dims []int) {
	t.Helper()
	m, err := core.NewGeneralized(p, gamma)
	if err != nil {
		t.Fatalf("p=%d γ=%v: %v", p, gamma, err)
	}
	env, err := NewEnv(m, eta, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(p)))
	for _, dim := range dims {
		var gs []*grid.Grid
		switch sv := solver.(type) {
		case sweep.Recurrence:
			gs = makeRecurrenceGrids(rng, eta)
		case sweep.Tridiag:
			gs = makeBandedGrids(rng, eta, 1, 1, dim)
		case sweep.Banded:
			gs = makeBandedGrids(rng, eta, sv.KL, sv.KU, dim)
		default:
			t.Fatalf("unknown solver %T", solver)
		}
		want := serialSolve(solver, gs, dim)
		work := cloneAll(gs)
		ms, err := NewMultiSweep(env, solver, work)
		if err != nil {
			t.Fatal(err)
		}
		ms.Aggregate = aggregate
		mach := testMachine(p)
		res, err := mach.Run(func(r *sim.Rank) { ms.Run(r, dim) })
		if err != nil {
			t.Fatalf("p=%d γ=%v dim=%d: %v", p, gamma, dim, err)
		}
		if res.Makespan <= 0 {
			t.Errorf("p=%d γ=%v dim=%d: makespan = %g", p, gamma, dim, res.Makespan)
		}
		for v := range want {
			if d := grid.MaxAbsDiff(want[v], work[v]); d > tol {
				t.Fatalf("p=%d γ=%v dim=%d solver=%s vec=%d: max diff %g", p, gamma, dim, solver.Name(), v, d)
			}
		}
	}
}

func TestMultiSweepTridiagMatchesSerial(t *testing.T) {
	runMultiSweep(t, 4, []int{2, 2, 2}, []int{12, 10, 8}, sweep.Tridiag{}, true, []int{0, 1, 2})
	runMultiSweep(t, 8, []int{4, 4, 2}, []int{16, 13, 9}, sweep.Tridiag{}, true, []int{0, 1, 2})
	runMultiSweep(t, 16, []int{4, 4, 4}, []int{17, 16, 15}, sweep.Tridiag{}, true, []int{0, 1, 2})
	runMultiSweep(t, 6, []int{6, 6, 1}, []int{13, 14, 5}, sweep.Tridiag{}, true, []int{0, 1, 2})
}

func TestMultiSweepPentaMatchesSerial(t *testing.T) {
	runMultiSweep(t, 8, []int{4, 4, 2}, []int{14, 12, 10}, sweep.NewPenta(), true, []int{0, 1, 2})
	runMultiSweep(t, 9, []int{3, 3, 3}, []int{12, 11, 13}, sweep.NewPenta(), true, []int{0, 1, 2})
}

func TestMultiSweepRecurrenceMatchesSerial(t *testing.T) {
	runMultiSweep(t, 12, []int{6, 6, 2}, []int{12, 12, 12}, sweep.Recurrence{}, true, []int{0, 1, 2})
}

func TestMultiSweep2D(t *testing.T) {
	runMultiSweep(t, 5, []int{5, 5}, []int{17, 13}, sweep.Tridiag{}, true, []int{0, 1})
}

func TestMultiSweep4D(t *testing.T) {
	// 4-D arrays: γ = (2,2,2,2) is valid for p = 8 (every co-product is 8),
	// exercising the full d-generality of the construction and executor.
	runMultiSweep(t, 8, []int{2, 2, 2, 2}, []int{8, 7, 6, 5}, sweep.Tridiag{}, true, []int{0, 1, 2, 3})
}

func TestMultiSweepBlockTridiag(t *testing.T) {
	// The fat-carry path: 2×2 block tridiagonal sweeps over a
	// multipartitioned 3-D array (carries of B²+B = 6 values per line).
	p := 4
	gamma := []int{2, 2, 2}
	eta := []int{8, 8, 8}
	m, err := core.NewGeneralized(p, gamma)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(m, eta, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	solver := sweep.NewBlockTridiag(2)
	rng := rand.New(rand.NewSource(99))
	for dim := 0; dim < 3; dim++ {
		gs := makeBlockTriGrids(rng, eta, 2, dim)
		want := serialSolve(solver, gs, dim)
		work := cloneAll(gs)
		ms, err := NewMultiSweep(env, solver, work)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := testMachine(p).Run(func(r *sim.Rank) { ms.Run(r, dim) }); err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if d := grid.MaxAbsDiff(want[v], work[v]); d > 1e-8 {
				t.Fatalf("dim %d vec %d: max diff %g", dim, v, d)
			}
		}
	}
}

// makeBlockTriGrids builds block-diagonally-dominant block tridiagonal
// systems along dim over an eta-shaped domain, in sweep.BlockTridiag's vec
// layout.
func makeBlockTriGrids(rng *rand.Rand, eta []int, b, dim int) []*grid.Grid {
	bb := b * b
	gs := make([]*grid.Grid, 3*bb+b)
	for i := range gs {
		gs[i] = grid.New(eta...)
	}
	n := eta[dim]
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			r, c := r, c
			gs[r*b+c].FillFunc(func(idx []int) float64 { // A blocks
				if idx[dim] == 0 {
					return 0
				}
				return rng.Float64()*0.4 - 0.2
			})
			gs[2*bb+r*b+c].FillFunc(func(idx []int) float64 { // C blocks
				if idx[dim] == n-1 {
					return 0
				}
				return rng.Float64()*0.4 - 0.2
			})
			if r != c {
				gs[bb+r*b+c].FillFunc(func([]int) float64 { return rng.Float64()*0.4 - 0.2 })
			}
		}
		gs[bb+r*b+r].FillFunc(func([]int) float64 { return 3 + rng.Float64() })  // dominant diag
		gs[3*bb+r].FillFunc(func([]int) float64 { return rng.Float64()*10 - 5 }) // rhs
	}
	return gs
}

func TestMultiSweepNonAggregated(t *testing.T) {
	runMultiSweep(t, 8, []int{4, 4, 2}, []int{12, 12, 12}, sweep.Tridiag{}, false, []int{0, 2})
}

func TestAggregationReducesMessages(t *testing.T) {
	// 8×8×4 on 8 procs: 4 tiles per processor per slab along dim 0 with
	// small per-tile carries, the regime where per-message overheads
	// dominate and aggregation pays off.
	p := 8
	m, err := core.NewGeneralized(p, []int{8, 8, 4})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(m, []int{32, 32, 8}, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	count := func(aggregate bool) (int, float64) {
		ms, err := NewMultiSweep(env, sweep.Tridiag{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ms.Aggregate = aggregate
		res, err := testMachine(p).Run(func(r *sim.Rank) { ms.Run(r, 0) })
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalMessages(), res.Makespan
	}
	aggMsgs, aggTime := count(true)
	tileMsgs, tileTime := count(false)
	if tileMsgs <= aggMsgs {
		t.Errorf("per-tile messages (%d) should exceed aggregated (%d)", tileMsgs, aggMsgs)
	}
	if tileTime <= aggTime {
		t.Errorf("per-tile time (%g) should exceed aggregated (%g)", tileTime, aggTime)
	}
}

func TestModelOnlyMatchesDataModeMakespan(t *testing.T) {
	// The virtual clock advances identically whether payloads flow or not.
	p := 8
	gamma := []int{4, 4, 2}
	eta := []int{16, 16, 16}
	m, err := core.NewGeneralized(p, gamma)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(m, eta, DHPF())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	gs := makeBandedGrids(rng, eta, 1, 1, 0)

	msData, err := NewMultiSweep(env, sweep.Tridiag{}, cloneAll(gs))
	if err != nil {
		t.Fatal(err)
	}
	resData, err := testMachine(p).Run(func(r *sim.Rank) { msData.Run(r, 0) })
	if err != nil {
		t.Fatal(err)
	}
	msModel, err := NewMultiSweep(env, sweep.Tridiag{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resModel, err := testMachine(p).Run(func(r *sim.Rank) { msModel.Run(r, 0) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resData.Makespan-resModel.Makespan) > 1e-12*resData.Makespan {
		t.Errorf("data %g vs model %g makespan", resData.Makespan, resModel.Makespan)
	}
	if resData.TotalBytes() != resModel.TotalBytes() {
		t.Errorf("data %d vs model %d bytes", resData.TotalBytes(), resModel.TotalBytes())
	}
}

func TestBlockLocalSweep(t *testing.T) {
	p := 4
	eta := []int{12, 10, 8}
	b, err := NewBlock(p, eta, 0, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	gs := makeBandedGrids(rng, eta, 1, 1, 1)
	want := serialSolve(sweep.Tridiag{}, gs, 1)
	work := cloneAll(gs)
	_, err = testMachine(p).Run(func(r *sim.Rank) { b.LocalSweep(r, 1, sweep.Tridiag{}, work) })
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if d := grid.MaxAbsDiff(want[v], work[v]); d > tol {
			t.Fatalf("vec %d: max diff %g", v, d)
		}
	}
}

func TestBlockWavefrontSweep(t *testing.T) {
	for _, grain := range []int{1, 4, 1000} {
		p := 4
		eta := []int{13, 6, 5}
		b, err := NewBlock(p, eta, 0, HandCoded())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		gs := makeBandedGrids(rng, eta, 1, 1, 0)
		want := serialSolve(sweep.Tridiag{}, gs, 0)
		work := cloneAll(gs)
		_, err = testMachine(p).Run(func(r *sim.Rank) { b.WavefrontSweep(r, sweep.Tridiag{}, work, grain) })
		if err != nil {
			t.Fatal(err)
		}
		for v := range want {
			if d := grid.MaxAbsDiff(want[v], work[v]); d > tol {
				t.Fatalf("grain %d vec %d: max diff %g", grain, v, d)
			}
		}
	}
}

func TestWavefrontGranularityTradeoff(t *testing.T) {
	// Tiny grains pay message overhead; huge grains serialize the pipeline.
	// An intermediate grain should beat both extremes on a domain with many
	// lines.
	p := 8
	eta := []int{64, 24, 24}
	b, err := NewBlock(p, eta, 0, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	timeOf := func(grain int) float64 {
		res, err := testMachine(p).Run(func(r *sim.Rank) { b.WavefrontSweep(r, sweep.Tridiag{}, nil, grain) })
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	tiny := timeOf(1)
	mid := timeOf(36)
	huge := timeOf(24 * 24)
	if mid >= tiny {
		t.Errorf("grain 36 (%g) should beat grain 1 (%g)", mid, tiny)
	}
	if mid >= huge {
		t.Errorf("grain 36 (%g) should beat one-block pipeline (%g)", mid, huge)
	}
}

func TestBlockTransposeSweep(t *testing.T) {
	p := 4
	eta := []int{12, 8, 8}
	b, err := NewBlock(p, eta, 0, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	gs := makeBandedGrids(rng, eta, 1, 1, 0)
	want := serialSolve(sweep.Tridiag{}, gs, 0)
	work := cloneAll(gs)
	res, err := testMachine(p).Run(func(r *sim.Rank) { b.TransposeSweep(r, sweep.Tridiag{}, work) })
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if d := grid.MaxAbsDiff(want[v], work[v]); d > tol {
			t.Fatalf("vec %d: max diff %g", v, d)
		}
	}
	// Transpose moves bulk data: far more bytes than a multipartitioned
	// sweep's carries.
	if res.TotalBytes() == 0 {
		t.Error("transpose sweep sent no bytes")
	}
}

func TestTransposeSizesNonDivisibleExtent(t *testing.T) {
	// η[0] = 10, η[1] = 7, p = 4: slabs of 3,3,2,2 and 2,2,2,1 — nothing
	// divides evenly. The per-peer bytes must be the exact slab
	// intersections, summing to (own − self-overlap) per phase; the
	// historical own/p shortcut truncated and undercounted.
	p := 4
	eta := []int{10, 7, 5}
	b, err := NewBlock(p, eta, 0, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	const nGrids, tDim = 3, 1
	for phase := 0; phase < 2; phase++ {
		outDim, inDim := 0, tDim
		if phase == 1 {
			outDim, inDim = tDim, 0
		}
		for q := 0; q < p; q++ {
			sizes := b.transposeSizes(q, tDim, nGrids, phase)
			if sizes[q] != 0 {
				t.Fatalf("phase %d rank %d: self size %d, want 0", phase, q, sizes[q])
			}
			qlo, qhi := core.BlockRange(eta[outDim], p, q)
			ortho := eta[2] // the only dim other than 0 and tDim
			total := 0
			for d, s := range sizes {
				dlo, dhi := core.BlockRange(eta[inDim], p, d)
				want := (qhi - qlo) * (dhi - dlo) * ortho * 8 * nGrids
				if d == q {
					want = 0
				}
				if s != want {
					t.Errorf("phase %d rank %d → %d: %d bytes, want %d", phase, q, d, s, want)
				}
				total += s
			}
			// Everything q owns along outDim leaves except the slice staying
			// with q itself.
			qIn := func() int { lo, hi := core.BlockRange(eta[inDim], p, q); return hi - lo }()
			wantTotal := (qhi - qlo) * (eta[inDim] - qIn) * ortho * 8 * nGrids
			if total != wantTotal {
				t.Errorf("phase %d rank %d: total %d bytes, want %d", phase, q, total, wantTotal)
			}
			// The fix matters here: the historical uniform own/p estimate
			// (truncating division, self block smeared over peers) cannot
			// match the unequal slab intersections.
			own := (qhi - qlo) * eta[inDim] * ortho
			old := own / p * 8 * nGrids
			uniform := true
			for d, s := range sizes {
				if d != q && s != old {
					uniform = false
				}
			}
			if uniform {
				t.Errorf("phase %d rank %d: exact sizes all equal the truncated own/p value %d", phase, q, old)
			}
		}
	}
}

func TestExchangeHalosCompletes(t *testing.T) {
	p := 8
	m, err := core.NewGeneralized(p, []int{4, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(m, []int{16, 16, 16}, DHPF())
	if err != nil {
		t.Fatal(err)
	}
	res, err := testMachine(p).Run(func(r *sim.Rank) {
		env.ExchangeHalos(r, 2, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every rank exchanges in both directions of every cut dimension.
	if res.TotalMessages() != p*3*2 {
		t.Errorf("halo messages = %d, want %d", res.TotalMessages(), p*3*2)
	}
	if res.TotalBytes() == 0 {
		t.Error("halo exchange moved no bytes")
	}
}

func TestHaloBytesCounts(t *testing.T) {
	m, err := core.NewGeneralized(4, []int{4, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(m, []int{16, 16, 4}, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	// Each proc owns 4 tiles of 4×4×4. Along dims 0 and 1 each tile has up
	// to 2 in-grid neighbors; dim 2 has γ=1 (no neighbors).
	got := env.HaloBytes(0, 1, 1)
	if got <= 0 {
		t.Fatalf("HaloBytes = %d", got)
	}
	// Upper bound: 4 tiles × 2 dims × 2 dirs × 16 cross × 8 bytes.
	if got > 4*2*2*16*8 {
		t.Errorf("HaloBytes = %d exceeds upper bound", got)
	}
}

func TestComputeOnTilesAccounting(t *testing.T) {
	p := 4
	m, err := core.NewGeneralized(p, []int{4, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(m, []int{16, 16, 4}, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	visited := make([]int, p)
	res, err := testMachine(p).Run(func(r *sim.Rank) {
		env.ComputeOnTiles(r, 10, func(lo, hi []int) {
			visited[r.ID] += grid.RectOf(lo, hi).Size()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for q, v := range visited {
		if v != env.OwnedElements(q) {
			t.Errorf("rank %d visited %d elements, owns %d", q, v, env.OwnedElements(q))
		}
	}
	if res.Ranks[0].ComputeTime <= 0 {
		t.Error("no compute time charged")
	}
}

func TestOwnedElementsSumToDomain(t *testing.T) {
	m, err := core.NewGeneralized(30, []int{10, 15, 6})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(m, []int{31, 47, 13}, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for q := 0; q < 30; q++ {
		total += env.OwnedElements(q)
	}
	if total != 31*47*13 {
		t.Errorf("owned elements sum to %d, want %d", total, 31*47*13)
	}
}

func TestNewEnvValidation(t *testing.T) {
	m, err := core.NewGeneralized(4, []int{4, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEnv(m, []int{16, 16}, HandCoded()); err == nil {
		t.Error("rank mismatch should fail")
	}
	if _, err := NewEnv(m, []int{2, 16, 4}, HandCoded()); err == nil {
		t.Error("extent smaller than cuts should fail")
	}
}

func TestNewBlockValidation(t *testing.T) {
	if _, err := NewBlock(0, []int{8, 8}, 0, HandCoded()); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := NewBlock(2, []int{8, 8}, 5, HandCoded()); err == nil {
		t.Error("bad dim should fail")
	}
	if _, err := NewBlock(16, []int{8, 8}, 0, HandCoded()); err == nil {
		t.Error("p > extent should fail")
	}
}

func TestMultiSweepExactMessageCount(t *testing.T) {
	// Full vectorization: each rank sends exactly (γ_dim − 1) carry
	// messages per pass, so a tridiagonal sweep (forward + backward) totals
	// p · 2 · (γ_dim − 1) messages.
	cases := []struct {
		p     int
		gamma []int
		dim   int
	}{
		{8, []int{4, 4, 2}, 0},
		{8, []int{4, 4, 2}, 2},
		{16, []int{4, 4, 4}, 1},
		{30, []int{10, 15, 6}, 0},
		{6, []int{6, 6, 1}, 2}, // γ = 1: a fully local sweep, zero messages
	}
	for _, c := range cases {
		m, err := core.NewGeneralized(c.p, c.gamma)
		if err != nil {
			t.Fatal(err)
		}
		eta := []int{numutilMax(c.gamma[0], 8) * 2, numutilMax(c.gamma[1], 8) * 2, numutilMax(c.gamma[2], 8) * 2}
		env, err := NewEnv(m, eta, HandCoded())
		if err != nil {
			t.Fatal(err)
		}
		ms, err := NewMultiSweep(env, sweep.Tridiag{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := testMachine(c.p).Run(func(r *sim.Rank) { ms.Run(r, c.dim) })
		if err != nil {
			t.Fatal(err)
		}
		want := c.p * 2 * (c.gamma[c.dim] - 1)
		if got := res.TotalMessages(); got != want {
			t.Errorf("p=%d γ=%v dim=%d: %d messages, want %d", c.p, c.gamma, c.dim, got, want)
		}
	}
}

func numutilMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSolverPanicMidRunSurfacesAsError(t *testing.T) {
	// Failure injection: a singular system makes the Thomas kernel panic on
	// one rank mid-sweep. The machine must return an error (with the rank
	// and cause), not deadlock the other ranks.
	p := 4
	m, err := core.NewGeneralized(p, []int{4, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	eta := []int{8, 8, 4}
	env, err := NewEnv(m, eta, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	gs := make([]*grid.Grid, 4)
	for i := range gs {
		gs[i] = grid.New(eta...)
	}
	gs[1].Fill(1)         // diag fine everywhere …
	gs[1].Set(0, 5, 3, 2) // … except one zero pivot deep in the domain
	ms, err := NewMultiSweep(env, sweep.Tridiag{}, gs)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := testMachine(p).Run(func(r *sim.Rank) { ms.Run(r, 0) })
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error from the zero pivot")
		}
		if !strings.Contains(err.Error(), "pivot") {
			t.Errorf("error should name the pivot failure: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run hung instead of failing")
	}
}

func TestWavefrontInvalidGrainPanics(t *testing.T) {
	b, err := NewBlock(2, []int{8, 8}, 0, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	_, err = testMachine(2).Run(func(r *sim.Rank) {
		b.WavefrontSweep(r, sweep.Tridiag{}, nil, 0)
	})
	if err == nil || !strings.Contains(err.Error(), "grainLines") {
		t.Fatalf("grain 0 should fail the run: %v", err)
	}
}

func TestMultiSweepWrongVecCount(t *testing.T) {
	m, err := core.NewGeneralized(4, []int{4, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(m, []int{8, 8, 4}, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiSweep(env, sweep.Tridiag{}, []*grid.Grid{grid.New(8, 8, 4)}); err == nil {
		t.Error("vec-count mismatch should fail")
	}
	if _, err := NewMultiSweep(env, sweep.Tridiag{}, []*grid.Grid{
		grid.New(8, 8, 4), grid.New(8, 8, 4), grid.New(8, 8, 4), grid.New(9, 8, 4),
	}); err == nil {
		t.Error("vec-shape mismatch should fail")
	}
}

func TestOverheadModelsOrdering(t *testing.T) {
	h, d := HandCoded(), DHPF()
	if h.ComputeFactor >= d.ComputeFactor {
		t.Error("dHPF compute factor should exceed hand-coded")
	}
	if h.PerTileVisit >= d.PerTileVisit {
		t.Error("dHPF per-tile overhead should exceed hand-coded")
	}
}

func TestDHPFOverheadSlowsSweep(t *testing.T) {
	p := 8
	m, err := core.NewGeneralized(p, []int{4, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	timeUnder := func(ov OverheadModel) float64 {
		env, err := NewEnv(m, []int{32, 32, 32}, ov)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := NewMultiSweep(env, sweep.Tridiag{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := testMachine(p).Run(func(r *sim.Rank) {
			for dim := 0; dim < 3; dim++ {
				ms.Run(r, dim)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	th, td := timeUnder(HandCoded()), timeUnder(DHPF())
	if td <= th {
		t.Errorf("dHPF (%g) should be slower than hand-coded (%g)", td, th)
	}
}

package dist

import (
	"fmt"

	"genmp/internal/grid"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

// MultiSweep executes a line sweep (forward elimination + back
// substitution) along one dimension of a multipartitioned array.
//
// In data mode, Vecs holds Solver.NumVecs() grids of the array's extents
// (the solver's per-line arrays; see internal/sweep for each solver's
// layout); the solution is produced in place. In model-only mode Vecs is
// nil and only time/bytes are accounted.
//
// Aggregate selects communication vectorization: when true (the behavior of
// both dHPF-generated and hand-coded multipartitioned codes), the carries
// of all lines of all of a processor's tiles in a slab travel in a single
// message per phase — possible because the mapping has the neighbor
// property; when false, one message per tile is sent (the ablation of
// DESIGN.md §4.1).
type MultiSweep struct {
	Env       *Env
	Solver    sweep.Solver
	Vecs      []*grid.Grid
	Aggregate bool
}

// NewMultiSweep builds a sweep executor; vecs may be nil for model-only
// runs.
func NewMultiSweep(env *Env, solver sweep.Solver, vecs []*grid.Grid) (*MultiSweep, error) {
	if vecs != nil {
		if len(vecs) != solver.NumVecs() {
			return nil, fmt.Errorf("dist: solver %s needs %d grids, got %d", solver.Name(), solver.NumVecs(), len(vecs))
		}
		for i, g := range vecs {
			for dim, e := range env.Eta {
				if g.Shape()[dim] != e {
					return nil, fmt.Errorf("dist: grid %d has shape %v, want %v", i, g.Shape(), env.Eta)
				}
			}
		}
	}
	return &MultiSweep{Env: env, Solver: solver, Vecs: vecs, Aggregate: true}, nil
}

// Run performs the full sweep along dim for the calling rank: the forward
// pass over slabs 0..γ−1 and (if the solver has one) the backward pass over
// slabs γ−1..0.
func (s *MultiSweep) Run(r *sim.Rank, dim int) {
	s.pass(r, dim, false)
	if s.Solver.BackwardCarryLen() > 0 || s.Solver.BackwardFlopsPerElement() > 0 {
		s.pass(r, dim, true)
	}
}

// sweepTag builds a unique message tag for (dim, pass, phase boundary)
// inside the dist/sweep reservation. Per-channel FIFO order disambiguates
// the per-tile messages of non-aggregated mode, which share the phase tag.
func sweepTag(dim int, backward bool, phase int) int {
	pass := 0
	if backward {
		pass = 1
	}
	return sweepTags.Tag((dim*2+pass)<<20 | phase)
}

func (s *MultiSweep) pass(r *sim.Rank, dim int, backward bool) {
	env := s.Env
	q := r.ID
	sched := env.M.SweepSchedule(q, dim, backward)
	carryLen := s.Solver.ForwardCarryLen()
	flopsPerElem := s.Solver.ForwardFlopsPerElement()
	if backward {
		carryLen = s.Solver.BackwardCarryLen()
		flopsPerElem = s.Solver.BackwardFlopsPerElement()
	}
	step := 1
	if backward {
		step = -1
	}
	recvFrom := -1
	if len(sched) > 1 {
		recvFrom = env.M.NeighborProc(q, dim, -step)
	}

	// Scratch: per-line chunk buffers, reused across lines and tiles.
	var chunk, views [][]float64
	if s.Vecs != nil {
		nv := s.Solver.NumVecs()
		chunk = make([][]float64, nv)
		views = make([][]float64, nv)
		for v := range chunk {
			chunk[v] = make([]float64, env.Eta[dim])
		}
	}

	for k, ph := range sched {
		// Per-tile line counts (identical on the sending and receiving side
		// of a phase boundary: tiles correspond by a one-slab shift, which
		// preserves both order and cross-section).
		lines := 0
		tileLines := make([]int, len(ph.Tiles))
		for ti, tile := range ph.Tiles {
			lo, hi := env.M.TileBounds(env.Eta, tile)
			n := 1
			for j := range env.Eta {
				if j != dim {
					n *= hi[j] - lo[j]
				}
			}
			tileLines[ti] = n
			lines += n
		}

		// Receive the carries produced by the upstream slab.
		var inBuf []float64
		if k > 0 && carryLen > 0 {
			if s.Aggregate {
				msg := r.Recv(recvFrom, sweepTag(dim, backward, k))
				r.Compute(env.Overhead.PerMessage)
				inBuf = msg.Payload
			} else {
				if s.Vecs != nil {
					inBuf = make([]float64, lines*carryLen)
				}
				off := 0
				for _, n := range tileLines {
					msg := r.Recv(recvFrom, sweepTag(dim, backward, k))
					r.Compute(env.Overhead.PerMessage)
					if inBuf != nil {
						copy(inBuf[off:off+n*carryLen], msg.Payload)
					}
					off += n * carryLen
				}
			}
		}

		var outBuf []float64
		if ph.SendTo >= 0 && carryLen > 0 && s.Vecs != nil {
			outBuf = make([]float64, lines*carryLen)
		}

		// Compute this slab's tiles.
		elements := 0
		inOff, outOff := 0, 0
		for ti, tile := range ph.Tiles {
			r.Compute(env.Overhead.PerTileVisit)
			lo, hi := env.M.TileBounds(env.Eta, tile)
			chunkLen := hi[dim] - lo[dim]
			elements += chunkLen * tileLines[ti]
			if s.Vecs == nil {
				continue
			}
			rect := grid.RectOf(lo, hi)
			s.Vecs[0].EachLine(rect, dim, func(l grid.Line) {
				for v, g := range s.Vecs {
					g.Gather(l, chunk[v][:chunkLen])
					views[v] = chunk[v][:chunkLen]
				}
				var cIn, cOut []float64
				if inBuf != nil {
					cIn = inBuf[inOff : inOff+carryLen]
					inOff += carryLen
				}
				if outBuf != nil {
					cOut = outBuf[outOff : outOff+carryLen]
					outOff += carryLen
				}
				if backward {
					s.Solver.Backward(views, cIn, cOut)
				} else {
					s.Solver.Forward(views, cIn, cOut)
				}
				for v, g := range s.Vecs {
					g.Scatter(l, chunk[v][:chunkLen])
				}
			})
		}
		r.ComputeFlops(flopsPerElem * float64(elements) * env.Overhead.ComputeFactor)

		// Ship the carries downstream.
		if ph.SendTo >= 0 && carryLen > 0 {
			if s.Aggregate {
				r.Compute(env.Overhead.PerMessage)
				r.Send(ph.SendTo, sweepTag(dim, backward, k+1),
					sim.Msg{Bytes: lines * carryLen * 8, Payload: outBuf})
			} else {
				off := 0
				for _, n := range tileLines {
					r.Compute(env.Overhead.PerMessage)
					msg := sim.Msg{Bytes: n * carryLen * 8}
					if outBuf != nil {
						msg.Payload = outBuf[off : off+n*carryLen]
					}
					off += n * carryLen
					r.Send(ph.SendTo, sweepTag(dim, backward, k+1), msg)
				}
			}
		}
	}
}

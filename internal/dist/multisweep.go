package dist

import (
	"fmt"

	"genmp/internal/grid"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

// MultiSweep executes a line sweep (forward elimination + back
// substitution) along one dimension of a multipartitioned array.
//
// In data mode, Vecs holds Solver.NumVecs() grids of the array's extents
// (the solver's per-line arrays; see internal/sweep for each solver's
// layout); the solution is produced in place. In model-only mode Vecs is
// nil and only time/bytes are accounted.
//
// Aggregate selects communication vectorization: when true (the behavior of
// both dHPF-generated and hand-coded multipartitioned codes), the carries
// of all lines of all of a processor's tiles in a slab travel in a single
// message per phase — possible because the mapping has the neighbor
// property; when false, one message per tile is sent (the ablation of
// DESIGN.md §4.1).
type MultiSweep struct {
	Env       *Env
	Solver    sweep.Solver
	Vecs      []*grid.Grid
	Aggregate bool
	// Batch is the panel width of the batched sweep kernels: 0 picks
	// sweep.DefaultBatchLines, negative forces the scalar per-line path
	// (the bit-identical oracle / "before" ablation).
	Batch int
	// scratchBuf holds one reusable arena per rank; presized by
	// NewMultiSweep so concurrently running ranks never share or resize.
	scratchBuf []rankScratch
}

// NewMultiSweep builds a sweep executor; vecs may be nil for model-only
// runs.
func NewMultiSweep(env *Env, solver sweep.Solver, vecs []*grid.Grid) (*MultiSweep, error) {
	if vecs != nil {
		if len(vecs) != solver.NumVecs() {
			return nil, fmt.Errorf("dist: solver %s needs %d grids, got %d", solver.Name(), solver.NumVecs(), len(vecs))
		}
		for i, g := range vecs {
			for dim, e := range env.Eta {
				if g.Shape()[dim] != e {
					return nil, fmt.Errorf("dist: grid %d has shape %v, want %v", i, g.Shape(), env.Eta)
				}
			}
		}
	}
	return &MultiSweep{Env: env, Solver: solver, Vecs: vecs, Aggregate: true,
		scratchBuf: make([]rankScratch, env.M.P())}, nil
}

// scratch returns rank q's arena (a throwaway one for a literal-built
// MultiSweep — correct, just allocating).
func (s *MultiSweep) scratch(q int) *rankScratch {
	if q < len(s.scratchBuf) {
		return &s.scratchBuf[q]
	}
	return &rankScratch{}
}

// Run performs the full sweep along dim for the calling rank: the forward
// pass over slabs 0..γ−1 and (if the solver has one) the backward pass over
// slabs γ−1..0.
func (s *MultiSweep) Run(r *sim.Rank, dim int) {
	s.pass(r, dim, false)
	if s.Solver.BackwardCarryLen() > 0 || s.Solver.BackwardFlopsPerElement() > 0 {
		s.pass(r, dim, true)
	}
}

// sweepTag builds a unique message tag for (dim, pass, phase boundary)
// inside the dist/sweep reservation. Per-channel FIFO order disambiguates
// the per-tile messages of non-aggregated mode, which share the phase tag.
func sweepTag(dim int, backward bool, phase int) int {
	pass := 0
	if backward {
		pass = 1
	}
	return sweepTags.Tag((dim*2+pass)<<20 | phase)
}

// phasesFor returns rank q's cached schedule geometry for (dim, backward),
// resolving the schedule and every tile's bounds on first use.
func (s *MultiSweep) phasesFor(sc *rankScratch, q, dim int, backward bool) []msPhase {
	key := dim * 2
	if backward {
		key++
	}
	if sc.sched == nil {
		sc.sched = map[int][]msPhase{}
	}
	if pg, ok := sc.sched[key]; ok {
		return pg
	}
	env := s.Env
	sched := env.M.SweepSchedule(q, dim, backward)
	pg := make([]msPhase, len(sched))
	for k, ph := range sched {
		pk := msPhase{sendTo: ph.SendTo, tiles: make([]msTile, len(ph.Tiles))}
		for ti, tile := range ph.Tiles {
			lo, hi := env.M.TileBounds(env.Eta, tile)
			n := 1
			for j := range env.Eta {
				if j != dim {
					n *= hi[j] - lo[j]
				}
			}
			pk.tiles[ti] = msTile{rect: grid.RectOf(lo, hi), lines: n, chunkLen: hi[dim] - lo[dim]}
			pk.lines += n
		}
		pg[k] = pk
	}
	sc.sched[key] = pg
	return pg
}

func (s *MultiSweep) pass(r *sim.Rank, dim int, backward bool) {
	env := s.Env
	q := r.ID
	carryLen := s.Solver.ForwardCarryLen()
	flopsPerElem := s.Solver.ForwardFlopsPerElement()
	if backward {
		carryLen = s.Solver.BackwardCarryLen()
		flopsPerElem = s.Solver.BackwardFlopsPerElement()
	}
	step := 1
	if backward {
		step = -1
	}
	// Per-rank scratch: SoA panel arena, phase geometry, and line geometry,
	// reused across phases, passes and steps. The batched path packs each
	// tile's lines into panels and reads/writes its carries directly in the
	// line-major message payloads — the kernel's carry marshalling IS the
	// wire format.
	sc := s.scratch(q)
	sched := s.phasesFor(sc, q, dim, backward)
	recvFrom := -1
	if len(sched) > 1 {
		recvFrom = env.M.NeighborProc(q, dim, -step)
	}
	bs, batched := s.Solver.(sweep.BatchSolver)
	batched = batched && s.Batch >= 0
	batch := s.Batch
	if batch <= 0 {
		batch = sweep.DefaultBatchLines
	}
	nv := s.Solver.NumVecs()
	var chunk, views [][]float64
	var touched, written []bool
	if s.Vecs != nil {
		if batched {
			touched, written = sweep.PassMasks(s.Solver, backward)
		} else {
			chunk = sc.pan.Panels(nv, env.Eta[dim])
			views = sc.chunk.Views(nv)
		}
	}

	for k := range sched {
		ph := &sched[k]
		// Per-tile line counts are identical on the sending and receiving
		// side of a phase boundary: tiles correspond by a one-slab shift,
		// which preserves both order and cross-section.
		lines := ph.lines

		// Receive the carries produced by the upstream slab. An aggregated
		// payload is a pooled buffer whose ownership arrives with the
		// message; it is recycled below once consumed. Non-aggregated
		// payloads are sub-slices of the sender's buffer and must not be
		// recycled here.
		var inBuf []float64
		pooledIn := false
		if k > 0 && carryLen > 0 {
			if s.Aggregate {
				msg := r.Recv(recvFrom, sweepTag(dim, backward, k))
				r.Compute(env.Overhead.PerMessage)
				inBuf = msg.Payload
				pooledIn = inBuf != nil
			} else {
				if s.Vecs != nil {
					inBuf = make([]float64, lines*carryLen)
				}
				off := 0
				for ti := range ph.tiles {
					n := ph.tiles[ti].lines
					msg := r.Recv(recvFrom, sweepTag(dim, backward, k))
					r.Compute(env.Overhead.PerMessage)
					if inBuf != nil {
						copy(inBuf[off:off+n*carryLen], msg.Payload)
					}
					off += n * carryLen
				}
			}
		}

		var outBuf []float64
		if ph.sendTo >= 0 && carryLen > 0 && s.Vecs != nil {
			if s.Aggregate {
				outBuf = r.GetPayload(lines * carryLen)
			} else {
				outBuf = make([]float64, lines*carryLen)
			}
		}

		// Compute this slab's tiles.
		elements := 0
		inOff, outOff := 0, 0
		for ti := range ph.tiles {
			tg := &ph.tiles[ti]
			r.Compute(env.Overhead.PerTileVisit)
			chunkLen := tg.chunkLen
			elements += chunkLen * tg.lines
			if s.Vecs == nil {
				continue
			}
			rect := tg.rect
			if batched {
				n := tg.lines
				sc.lines = s.Vecs[0].AppendLines(rect, dim, sc.lines[:0])
				for s0 := 0; s0 < n; s0 += batch {
					nb := min(batch, n-s0)
					blk := sc.lines[s0 : s0+nb]
					panels := sc.pan.Panels(nv, nb*chunkLen)
					for v, g := range s.Vecs {
						if sweep.MaskOn(touched, v) {
							g.GatherLines(blk, panels[v])
						}
					}
					var cIn, cOut []float64
					if inBuf != nil {
						cIn = inBuf[inOff+s0*carryLen : inOff+(s0+nb)*carryLen]
					}
					if outBuf != nil {
						cOut = outBuf[outOff+s0*carryLen : outOff+(s0+nb)*carryLen]
					}
					if backward {
						bs.BackwardBatch(panels, nb, cIn, cOut)
					} else {
						bs.ForwardBatch(panels, nb, cIn, cOut)
					}
					for v, g := range s.Vecs {
						if sweep.MaskOn(written, v) {
							g.ScatterLines(blk, panels[v])
						}
					}
				}
				if inBuf != nil {
					inOff += n * carryLen
				}
				if outBuf != nil {
					outOff += n * carryLen
				}
				continue
			}
			s.Vecs[0].EachLine(rect, dim, func(l grid.Line) {
				for v, g := range s.Vecs {
					g.Gather(l, chunk[v][:chunkLen])
					views[v] = chunk[v][:chunkLen]
				}
				var cIn, cOut []float64
				if inBuf != nil {
					cIn = inBuf[inOff : inOff+carryLen]
					inOff += carryLen
				}
				if outBuf != nil {
					cOut = outBuf[outOff : outOff+carryLen]
					outOff += carryLen
				}
				if backward {
					s.Solver.Backward(views, cIn, cOut)
				} else {
					s.Solver.Forward(views, cIn, cOut)
				}
				for v, g := range s.Vecs {
					g.Scatter(l, chunk[v][:chunkLen])
				}
			})
		}
		if pooledIn {
			r.PutPayload(inBuf)
		}
		r.ComputeFlops(flopsPerElem * float64(elements) * env.Overhead.ComputeFactor)

		// Ship the carries downstream.
		if ph.sendTo >= 0 && carryLen > 0 {
			if s.Aggregate {
				r.Compute(env.Overhead.PerMessage)
				r.Send(ph.sendTo, sweepTag(dim, backward, k+1),
					sim.Msg{Bytes: lines * carryLen * 8, Payload: outBuf})
			} else {
				off := 0
				for ti := range ph.tiles {
					n := ph.tiles[ti].lines
					r.Compute(env.Overhead.PerMessage)
					msg := sim.Msg{Bytes: n * carryLen * 8}
					if outBuf != nil {
						msg.Payload = outBuf[off : off+n*carryLen]
					}
					off += n * carryLen
					r.Send(ph.sendTo, sweepTag(dim, backward, k+1), msg)
				}
			}
		}
	}
}

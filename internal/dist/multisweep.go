package dist

import (
	"fmt"
	"sync"

	"genmp/internal/grid"
	"genmp/internal/plan"
	"genmp/internal/sweep"
	"genmp/internal/xport"
)

// MultiSweep executes a line sweep (forward elimination + back
// substitution) along one dimension of a multipartitioned array.
//
// In data mode, Vecs holds Solver.NumVecs() grids of the array's extents
// (the solver's per-line arrays; see internal/sweep for each solver's
// layout); the solution is produced in place. In model-only mode Vecs is
// nil and only time/bytes are accounted.
//
// Aggregate selects communication vectorization: when true (the behavior of
// both dHPF-generated and hand-coded multipartitioned codes), the carries
// of all lines of all of a processor's tiles in a slab travel in a single
// message per phase — possible because the mapping has the neighbor
// property; when false, one message per tile is sent (the ablation of
// DESIGN.md §4.1).
type MultiSweep struct {
	Env       *Env
	Solver    sweep.Solver
	Vecs      []*grid.Grid
	Aggregate bool
	// Batch is the panel width of the batched sweep kernels: 0 picks
	// sweep.DefaultBatchLines, negative forces the scalar per-line path
	// (the bit-identical oracle / "before" ablation).
	Batch int
	// Overlap is folded into the lazily compiled plan's Spec (ignored when
	// Plan is pre-set): enabled, phases solve boundary lines first and post
	// the carry while the interior computes (DESIGN.md §14). The executor
	// itself switches on Plan.Overlap, so overlap is a property of the
	// compiled schedule, not of this struct. Overlap requires aggregated
	// messaging; with Aggregate false the annotation is ignored.
	Overlap plan.Overlap
	// Plan is the compiled schedule the executor runs. Leave nil to have
	// the first Run compile it from (Env, Solver, Batch, Overlap); pre-set
	// it to share one instance with other consumers (the cost fold, the obs
	// dump) — it must have been compiled from the same configuration.
	Plan *plan.SweepPlan
	// scratchBuf holds one reusable arena per rank (indexed by rank ID, so
	// concurrently running ranks never share); presized by init.
	scratchBuf []rankScratch
	once       sync.Once
}

// NewMultiSweep builds a sweep executor; vecs may be nil for model-only
// runs.
func NewMultiSweep(env *Env, solver sweep.Solver, vecs []*grid.Grid) (*MultiSweep, error) {
	if vecs != nil {
		if len(vecs) != solver.NumVecs() {
			return nil, fmt.Errorf("dist: solver %s needs %d grids, got %d", solver.Name(), solver.NumVecs(), len(vecs))
		}
		for i, g := range vecs {
			for dim, e := range env.Eta {
				if g.Shape()[dim] != e {
					return nil, fmt.Errorf("dist: grid %d has shape %v, want %v", i, g.Shape(), env.Eta)
				}
			}
		}
	}
	return &MultiSweep{Env: env, Solver: solver, Vecs: vecs, Aggregate: true}, nil
}

// init lazily compiles the plan and presizes the per-rank arenas exactly
// once, so a MultiSweep built as a literal is as allocation-free in steady
// state as one from NewMultiSweep.
func (s *MultiSweep) init() {
	s.once.Do(func() {
		if s.Plan == nil {
			pl, err := plan.Compile(plan.Spec{M: s.Env.M, Eta: s.Env.Eta, Solver: s.Solver, Batch: s.Batch, Overlap: s.Overlap})
			if err != nil {
				panic("dist: " + err.Error())
			}
			s.Plan = pl
		}
		if s.scratchBuf == nil {
			s.scratchBuf = make([]rankScratch, s.Env.M.P())
		}
	})
}

// CompiledPlan returns the executor's SweepPlan, compiling it on first use
// — the instance the cost model folds over and obs dumps.
func (s *MultiSweep) CompiledPlan() *plan.SweepPlan {
	s.init()
	return s.Plan
}

// WorkspaceStats aggregates arena acquisition counters across all ranks'
// scratch; with warmed arenas the hit rate is 1. Not safe against ranks
// still running.
func (s *MultiSweep) WorkspaceStats() sweep.WorkspaceStats {
	return scratchWorkspaceStats(s.scratchBuf)
}

// Run performs the full sweep along dim for the calling rank: the forward
// pass over slabs 0..γ−1 and (if the solver has one) the backward pass over
// slabs γ−1..0.
func (s *MultiSweep) Run(r xport.Transport, dim int) {
	s.init()
	s.pass(r, dim, false)
	if s.Solver.BackwardCarryLen() > 0 || s.Solver.BackwardFlopsPerElement() > 0 {
		s.pass(r, dim, true)
	}
}

func (s *MultiSweep) pass(r xport.Transport, dim int, backward bool) {
	env := s.Env
	q := r.Rank()
	pp := s.Plan.Pass(q, dim, backward)
	carryLen := pp.CarryLen
	flopsPerElem := s.Solver.ForwardFlopsPerElement()
	if backward {
		flopsPerElem = s.Solver.BackwardFlopsPerElement()
	}
	// Per-rank scratch: SoA panel arena and line geometry, reused across
	// phases, passes and steps. The batched path packs each tile's lines
	// into panels and reads/writes its carries directly in the line-major
	// message payloads — the kernel's carry marshalling IS the wire format.
	sc := &s.scratchBuf[q]
	bs, batched := s.Solver.(sweep.BatchSolver)
	batched = batched && s.Batch >= 0
	batch := s.Batch
	if batch <= 0 {
		batch = sweep.DefaultBatchLines
	}
	nv := s.Solver.NumVecs()
	var chunk, views [][]float64
	var touched, written []bool
	if s.Vecs != nil {
		if batched {
			touched, written = sweep.PassMasks(s.Solver, backward)
		} else {
			chunk = sc.pan.Panels(nv, env.Eta[dim])
			views = sc.chunk.Views(nv)
		}
	}
	pc := &msPassCtx{
		sc: sc, dim: dim, backward: backward, carryLen: carryLen,
		flopsPerElem: flopsPerElem, batch: batch, nv: nv, bs: bs,
		batched: batched, touched: touched, written: written,
		chunk: chunk, views: views,
	}

	// Overlap-annotated phases run the boundary-first schedule; preB/preI
	// carry receive requests preposted for the next phase while the current
	// one's interior solve hides the wire.
	var preB, preI xport.Request
	for k := range pp.Phases {
		ph := &pp.Phases[k]
		if ph.Boundary > 0 && s.Aggregate {
			preB, preI = s.overlapPhase(r, pc, pp, k, preB, preI)
			continue
		}
		// Per-tile line counts are identical on the sending and receiving
		// side of a phase boundary: tiles correspond by a one-slab shift,
		// which preserves both order and cross-section (Plan.Validate checks
		// exactly this symmetry).
		lines := ph.Lines

		// Receive the carries produced by the upstream slab. An aggregated
		// payload is a pooled buffer whose ownership arrives with the
		// message; it is recycled below once consumed. Non-aggregated
		// payloads are sub-slices of the sender's buffer and must not be
		// recycled here.
		var inBuf []float64
		pooledIn := false
		if ph.RecvFrom >= 0 && carryLen > 0 {
			if s.Aggregate {
				msg := r.Recv(ph.RecvFrom, ph.RecvTag)
				r.Compute(env.Overhead.PerMessage)
				inBuf = msg.Payload
				pooledIn = inBuf != nil
			} else {
				if s.Vecs != nil {
					inBuf = make([]float64, lines*carryLen)
				}
				off := 0
				for ti := range ph.Tiles {
					n := ph.Tiles[ti].Lines
					msg := r.Recv(ph.RecvFrom, ph.RecvTag)
					r.Compute(env.Overhead.PerMessage)
					if inBuf != nil {
						copy(inBuf[off:off+n*carryLen], msg.Payload)
					}
					off += n * carryLen
				}
			}
		}

		var outBuf []float64
		if ph.SendTo >= 0 && carryLen > 0 && s.Vecs != nil {
			if s.Aggregate {
				outBuf = r.GetPayload(lines * carryLen)
			} else {
				outBuf = make([]float64, lines*carryLen)
			}
		}

		// Compute this slab's tiles.
		elements := 0
		inOff, outOff := 0, 0
		for ti := range ph.Tiles {
			tg := &ph.Tiles[ti]
			r.Compute(env.Overhead.PerTileVisit)
			chunkLen := tg.ChunkLen
			elements += chunkLen * tg.Lines
			if s.Vecs == nil {
				continue
			}
			rect := tg.Rect
			if batched {
				n := tg.Lines
				sc.lines = s.Vecs[0].AppendLines(rect, dim, sc.lines[:0])
				for s0 := 0; s0 < n; s0 += batch {
					nb := min(batch, n-s0)
					blk := sc.lines[s0 : s0+nb]
					panels := sc.pan.Panels(nv, nb*chunkLen)
					for v, g := range s.Vecs {
						if sweep.MaskOn(touched, v) {
							g.GatherLines(blk, panels[v])
						}
					}
					var cIn, cOut []float64
					if inBuf != nil {
						cIn = inBuf[inOff+s0*carryLen : inOff+(s0+nb)*carryLen]
					}
					if outBuf != nil {
						cOut = outBuf[outOff+s0*carryLen : outOff+(s0+nb)*carryLen]
					}
					if backward {
						bs.BackwardBatch(panels, nb, cIn, cOut)
					} else {
						bs.ForwardBatch(panels, nb, cIn, cOut)
					}
					for v, g := range s.Vecs {
						if sweep.MaskOn(written, v) {
							g.ScatterLines(blk, panels[v])
						}
					}
				}
				if inBuf != nil {
					inOff += n * carryLen
				}
				if outBuf != nil {
					outOff += n * carryLen
				}
				continue
			}
			s.Vecs[0].EachLine(rect, dim, func(l grid.Line) {
				for v, g := range s.Vecs {
					g.Gather(l, chunk[v][:chunkLen])
					views[v] = chunk[v][:chunkLen]
				}
				var cIn, cOut []float64
				if inBuf != nil {
					cIn = inBuf[inOff : inOff+carryLen]
					inOff += carryLen
				}
				if outBuf != nil {
					cOut = outBuf[outOff : outOff+carryLen]
					outOff += carryLen
				}
				if backward {
					s.Solver.Backward(views, cIn, cOut)
				} else {
					s.Solver.Forward(views, cIn, cOut)
				}
				for v, g := range s.Vecs {
					g.Scatter(l, chunk[v][:chunkLen])
				}
			})
		}
		if pooledIn {
			r.PutPayload(inBuf)
		}
		r.ComputeFlops(flopsPerElem * float64(elements) * env.Overhead.ComputeFactor)

		// Ship the carries downstream.
		if ph.SendTo >= 0 && carryLen > 0 {
			if s.Aggregate {
				r.Compute(env.Overhead.PerMessage)
				r.Send(ph.SendTo, ph.SendTag, xport.Msg{Bytes: ph.SendBytes, Payload: outBuf})
			} else {
				off := 0
				for ti := range ph.Tiles {
					n := ph.Tiles[ti].Lines
					r.Compute(env.Overhead.PerMessage)
					msg := xport.Msg{Bytes: n * carryLen * 8}
					if outBuf != nil {
						msg.Payload = outBuf[off : off+n*carryLen]
					}
					off += n * carryLen
					r.Send(ph.SendTo, ph.SendTag, msg)
				}
			}
		}
	}
	sc.publish(r)
}

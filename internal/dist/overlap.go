// Boundary-first overlapped phase execution for MultiSweep (DESIGN.md §14).
// A phase annotated with a split (plan.Phase.Boundary > 0) runs as:
//
//	wait boundary carries → solve boundary lines → Isend boundary carry
//	→ prepost next phase's receives → wait interior carries
//	→ solve interior lines → Isend interior carry
//
// so the downstream rank starts its boundary solve after only the boundary
// share of the compute, and each rank's interior solve executes while its
// boundary carry is on the wire. Field data is bit-identical to the strict
// schedule: the batched kernels guarantee bit-equality regardless of panel
// grouping, and the boundary/interior regrouping never reorders lines.
package dist

import (
	"genmp/internal/grid"
	"genmp/internal/plan"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

// msPassCtx bundles one pass invocation's resolved locals so the strict
// loop and the overlapped phase executor share them without re-deriving.
type msPassCtx struct {
	sc           *rankScratch
	dim          int
	backward     bool
	carryLen     int
	flopsPerElem float64
	batch        int
	nv           int
	bs           sweep.BatchSolver
	batched      bool
	touched      []bool
	written      []bool
	chunk        [][]float64
	views        [][]float64
}

// overlapPhase executes one split phase. preB/preI are this phase's receive
// requests if the previous phase preposted them (nil to post here); the
// return values are the next phase's preposted requests (nil when the next
// phase is unsplit or absent).
func (s *MultiSweep) overlapPhase(r *sim.Rank, pc *msPassCtx, pp *plan.Pass, k int, preB, preI *sim.Request) (nextB, nextI *sim.Request) {
	env := s.Env
	ph := &pp.Phases[k]
	carryLen := pc.carryLen
	bnd, inter := ph.InteriorBoundary()

	var reqB, reqI *sim.Request
	if ph.RecvFrom >= 0 && carryLen > 0 {
		reqB, reqI = preB, preI
		if reqB == nil {
			reqB = r.Irecv(ph.RecvFrom, ph.RecvTag)
			reqI = r.Irecv(ph.RecvFrom, ph.InteriorRecvTag)
		}
	}

	var outB, outI []float64
	if ph.SendTo >= 0 && carryLen > 0 && s.Vecs != nil {
		outB = r.GetPayload(bnd * carryLen)
		outI = r.GetPayload(inter * carryLen)
	}

	// Boundary: wait the boundary carries, solve the boundary lines, ship
	// their carries immediately.
	var inB []float64
	if reqB != nil {
		msg := reqB.Wait()
		r.Compute(env.Overhead.PerMessage)
		inB = msg.Payload
	}
	elems := s.solveLineRange(r, pc, ph, 0, bnd, inB, outB)
	if inB != nil {
		r.PutPayload(inB)
	}
	r.ComputeFlops(pc.flopsPerElem * float64(elems) * env.Overhead.ComputeFactor)
	var sendB, sendI *sim.Request
	if ph.SendTo >= 0 && carryLen > 0 {
		r.Compute(env.Overhead.PerMessage)
		sendB = r.Isend(ph.SendTo, ph.SendTag, sim.Msg{Bytes: bnd * carryLen * 8, Payload: outB})
	}

	// The boundary carry is on the wire. Prepost the next phase's receives
	// (free in virtual time; the MPI discipline the real-parallel backend
	// inherits), then solve the interior while the messages fly.
	if k+1 < len(pp.Phases) {
		if np := &pp.Phases[k+1]; np.Boundary > 0 && np.RecvFrom >= 0 && carryLen > 0 {
			nextB = r.Irecv(np.RecvFrom, np.RecvTag)
			nextI = r.Irecv(np.RecvFrom, np.InteriorRecvTag)
		}
	}

	var inI []float64
	if reqI != nil {
		msg := reqI.Wait()
		r.Compute(env.Overhead.PerMessage)
		inI = msg.Payload
	}
	elems = s.solveLineRange(r, pc, ph, bnd, ph.Lines, inI, outI)
	if inI != nil {
		r.PutPayload(inI)
	}
	r.ComputeFlops(pc.flopsPerElem * float64(elems) * env.Overhead.ComputeFactor)
	if ph.SendTo >= 0 && carryLen > 0 {
		r.Compute(env.Overhead.PerMessage)
		sendI = r.Isend(ph.SendTo, ph.InteriorSendTag, sim.Msg{Bytes: inter * carryLen * 8, Payload: outI})
	}
	if sendB != nil {
		sendB.Wait()
	}
	if sendI != nil {
		sendI.Wait()
	}
	return nextB, nextI
}

// wfPassCtx bundles one wavefront pass invocation's resolved locals for the
// overlapped block executor.
type wfPassCtx struct {
	sc           *rankScratch
	solver       sweep.Solver
	bs           sweep.BatchSolver
	batched      bool
	backward     bool
	carryLen     int
	flopsPerElem float64
	chunkLen     int
	nv           int
	chunk        [][]float64
	touched      []bool
	written      []bool
}

// wavefrontOverlapPhase executes one split pipeline block: wait the
// boundary carries, solve the block's boundary lines, Isend their carries,
// prepost the next block's receives, then solve the interior behind the
// in-flight messages. preB/preI and the return values follow overlapPhase.
func (b *Block) wavefrontOverlapPhase(r *sim.Rank, wc *wfPassCtx, vecs []*grid.Grid, pp *plan.Pass, m int, preB, preI *sim.Request) (nextB, nextI *sim.Request) {
	ph := &pp.Phases[m]
	carryLen := wc.carryLen
	first := ph.Tiles[0].LineOff
	bnd, inter := ph.InteriorBoundary()

	var reqB, reqI *sim.Request
	if ph.RecvFrom >= 0 && carryLen > 0 {
		reqB, reqI = preB, preI
		if reqB == nil {
			reqB = r.Irecv(ph.RecvFrom, ph.RecvTag)
			reqI = r.Irecv(ph.RecvFrom, ph.InteriorRecvTag)
		}
	}
	var outB, outI []float64
	if ph.SendTo >= 0 && carryLen > 0 && vecs != nil {
		outB = r.GetPayload(bnd * carryLen)
		outI = r.GetPayload(inter * carryLen)
	}

	solve := func(off, count int, cIn, cOut []float64) {
		if vecs == nil || count == 0 {
			return
		}
		blk := wc.sc.lines[first+off : first+off+count]
		if wc.batched {
			panels := wc.sc.pan.Panels(wc.nv, count*wc.chunkLen)
			for v, g := range vecs {
				if sweep.MaskOn(wc.touched, v) {
					g.GatherLines(blk, panels[v])
				}
			}
			if wc.backward {
				wc.bs.BackwardBatch(panels, count, cIn, cOut)
			} else {
				wc.bs.ForwardBatch(panels, count, cIn, cOut)
			}
			for v, g := range vecs {
				if sweep.MaskOn(wc.written, v) {
					g.ScatterLines(blk, panels[v])
				}
			}
			return
		}
		for i := 0; i < count; i++ {
			l := blk[i]
			for v, g := range vecs {
				g.Gather(l, wc.chunk[v])
			}
			var lIn, lOut []float64
			if cIn != nil {
				lIn = cIn[i*carryLen : (i+1)*carryLen]
			}
			if cOut != nil {
				lOut = cOut[i*carryLen : (i+1)*carryLen]
			}
			if wc.backward {
				wc.solver.Backward(wc.chunk, lIn, lOut)
			} else {
				wc.solver.Forward(wc.chunk, lIn, lOut)
			}
			for v, g := range vecs {
				g.Scatter(l, wc.chunk[v])
			}
		}
	}

	var inB []float64
	if reqB != nil {
		msg := reqB.Wait()
		r.Compute(b.Overhead.PerMessage)
		inB = msg.Payload
	}
	solve(0, bnd, inB, outB)
	if inB != nil {
		r.PutPayload(inB)
	}
	r.ComputeFlops(wc.flopsPerElem * float64(bnd*wc.chunkLen) * b.Overhead.ComputeFactor)
	var sendB, sendI *sim.Request
	if ph.SendTo >= 0 && carryLen > 0 {
		r.Compute(b.Overhead.PerMessage)
		sendB = r.Isend(ph.SendTo, ph.SendTag, sim.Msg{Bytes: bnd * carryLen * 8, Payload: outB})
	}
	if m+1 < len(pp.Phases) {
		if np := &pp.Phases[m+1]; np.Boundary > 0 && np.RecvFrom >= 0 && carryLen > 0 {
			nextB = r.Irecv(np.RecvFrom, np.RecvTag)
			nextI = r.Irecv(np.RecvFrom, np.InteriorRecvTag)
		}
	}
	var inI []float64
	if reqI != nil {
		msg := reqI.Wait()
		r.Compute(b.Overhead.PerMessage)
		inI = msg.Payload
	}
	solve(bnd, inter, inI, outI)
	if inI != nil {
		r.PutPayload(inI)
	}
	r.ComputeFlops(wc.flopsPerElem * float64(inter*wc.chunkLen) * b.Overhead.ComputeFactor)
	if ph.SendTo >= 0 && carryLen > 0 {
		r.Compute(b.Overhead.PerMessage)
		sendI = r.Isend(ph.SendTo, ph.InteriorSendTag, sim.Msg{Bytes: inter * carryLen * 8, Payload: outI})
	}
	if sendB != nil {
		sendB.Wait()
	}
	if sendI != nil {
		sendI.Wait()
	}
	return nextB, nextI
}

// solveLineRange computes the phase's canonical lines in [gLo, gHi),
// clipping each tile to the range. cInBuf/cOutBuf hold the range's carries,
// indexed from gLo (line g's carry block starts at (g−gLo)·carryLen). Tiles
// intersecting the range pay PerTileVisit per visit — a tile straddling the
// split is visited twice. Returns the elements computed; the caller charges
// the flops so boundary and interior compute appear as separate intervals.
func (s *MultiSweep) solveLineRange(r *sim.Rank, pc *msPassCtx, ph *plan.Phase, gLo, gHi int, cInBuf, cOutBuf []float64) int {
	env := s.Env
	carryLen := pc.carryLen
	elements := 0
	for ti := range ph.Tiles {
		tg := &ph.Tiles[ti]
		lo := max(gLo, tg.LineOff)
		hi := min(gHi, tg.LineOff+tg.Lines)
		if lo >= hi {
			continue
		}
		r.Compute(env.Overhead.PerTileVisit)
		chunkLen := tg.ChunkLen
		elements += (hi - lo) * chunkLen
		if s.Vecs == nil {
			continue
		}
		rect := tg.Rect
		if pc.batched {
			sc := pc.sc
			sc.lines = s.Vecs[0].AppendLines(rect, pc.dim, sc.lines[:0])
			tLo, tHi := lo-tg.LineOff, hi-tg.LineOff
			for s0 := tLo; s0 < tHi; s0 += pc.batch {
				nb := min(pc.batch, tHi-s0)
				blk := sc.lines[s0 : s0+nb]
				panels := sc.pan.Panels(pc.nv, nb*chunkLen)
				for v, g := range s.Vecs {
					if sweep.MaskOn(pc.touched, v) {
						g.GatherLines(blk, panels[v])
					}
				}
				var cIn, cOut []float64
				c0 := tg.LineOff + s0 - gLo
				if cInBuf != nil {
					cIn = cInBuf[c0*carryLen : (c0+nb)*carryLen]
				}
				if cOutBuf != nil {
					cOut = cOutBuf[c0*carryLen : (c0+nb)*carryLen]
				}
				if pc.backward {
					pc.bs.BackwardBatch(panels, nb, cIn, cOut)
				} else {
					pc.bs.ForwardBatch(panels, nb, cIn, cOut)
				}
				for v, g := range s.Vecs {
					if sweep.MaskOn(pc.written, v) {
						g.ScatterLines(blk, panels[v])
					}
				}
			}
			continue
		}
		// Scalar oracle path: walk the tile's canonical line order, solving
		// only the lines inside the range.
		g := tg.LineOff
		s.Vecs[0].EachLine(rect, pc.dim, func(l grid.Line) {
			idx := g
			g++
			if idx < gLo || idx >= gHi {
				return
			}
			for v, gr := range s.Vecs {
				gr.Gather(l, pc.chunk[v][:chunkLen])
				pc.views[v] = pc.chunk[v][:chunkLen]
			}
			var cIn, cOut []float64
			c0 := idx - gLo
			if cInBuf != nil {
				cIn = cInBuf[c0*carryLen : (c0+1)*carryLen]
			}
			if cOutBuf != nil {
				cOut = cOutBuf[c0*carryLen : (c0+1)*carryLen]
			}
			if pc.backward {
				s.Solver.Backward(pc.views, cIn, cOut)
			} else {
				s.Solver.Forward(pc.views, cIn, cOut)
			}
			for v, gr := range s.Vecs {
				gr.Scatter(l, pc.chunk[v][:chunkLen])
			}
		})
	}
	return elements
}

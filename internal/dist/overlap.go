// Boundary-first overlapped phase execution (DESIGN.md §14). A phase
// annotated with a split (plan.Phase.Boundary > 0) runs as:
//
//	wait boundary carries → solve boundary lines → Isend boundary carry
//	→ prepost next phase's receives → wait interior carries
//	→ solve interior lines → Isend interior carry
//
// so the downstream rank starts its boundary solve after only the boundary
// share of the compute, and each rank's interior solve executes while its
// boundary carry is on the wire. Field data is bit-identical to the strict
// schedule: the batched kernels guarantee bit-equality regardless of panel
// grouping, and the boundary/interior regrouping never reorders lines.
//
// The message choreography is identical for every executor — MultiSweep,
// the wavefront pipeline, and dmem's strict SweepRunner — so it lives in
// the one shared helper OverlapPhase, parameterized over the transport
// interface and a per-executor solve callback.
package dist

import (
	"genmp/internal/grid"
	"genmp/internal/plan"
	"genmp/internal/sweep"
	"genmp/internal/xport"
)

// OverlapPhaseSpec parameterizes one split-phase execution: the schedule
// position plus the two things that differ between executors — the packing
// overhead and the solve kernel.
type OverlapPhaseSpec struct {
	Pass  *plan.Pass
	Phase int
	// PerMessage is the executor's per-message packing overhead, charged
	// once per carry message received or sent.
	PerMessage float64
	// Payloads selects data mode: outgoing carries are assembled in pooled
	// payload buffers. False sends byte-count-only messages (model-only).
	Payloads bool
	// Solve computes the phase's canonical lines in [gLo, gHi) and charges
	// their flops. cIn/cOut hold the range's carries indexed from gLo (line
	// g's carry block starts at (g−gLo)·CarryLen); either may be nil.
	Solve func(gLo, gHi int, cIn, cOut []float64)
}

// OverlapPhase executes one split phase over any transport. preB/preI are
// this phase's receive requests if the previous phase preposted them (nil
// to post here); the return values are the next phase's preposted requests
// (nil when the next phase is unsplit or absent).
func OverlapPhase(t xport.Transport, sp OverlapPhaseSpec, preB, preI xport.Request) (nextB, nextI xport.Request) {
	pp := sp.Pass
	ph := &pp.Phases[sp.Phase]
	carryLen := pp.CarryLen
	bnd, inter := ph.InteriorBoundary()

	var reqB, reqI xport.Request
	if ph.RecvFrom >= 0 && carryLen > 0 {
		reqB, reqI = preB, preI
		if reqB == nil {
			reqB = t.Irecv(ph.RecvFrom, ph.RecvTag)
			reqI = t.Irecv(ph.RecvFrom, ph.InteriorRecvTag)
		}
	}

	var outB, outI []float64
	if ph.SendTo >= 0 && carryLen > 0 && sp.Payloads {
		outB = t.GetPayload(bnd * carryLen)
		outI = t.GetPayload(inter * carryLen)
	}

	// Boundary: wait the boundary carries, solve the boundary lines, ship
	// their carries immediately.
	var inB []float64
	if reqB != nil {
		msg := reqB.Wait()
		t.Compute(sp.PerMessage)
		inB = msg.Payload
	}
	sp.Solve(0, bnd, inB, outB)
	if inB != nil {
		t.PutPayload(inB)
	}
	var sendB, sendI xport.Request
	if ph.SendTo >= 0 && carryLen > 0 {
		t.Compute(sp.PerMessage)
		sendB = t.Isend(ph.SendTo, ph.SendTag, xport.Msg{Bytes: bnd * carryLen * 8, Payload: outB})
	}

	// The boundary carry is on the wire. Prepost the next phase's receives
	// (free in virtual time; the MPI discipline the real-parallel backend
	// inherits), then solve the interior while the messages fly.
	if sp.Phase+1 < len(pp.Phases) {
		if np := &pp.Phases[sp.Phase+1]; np.Boundary > 0 && np.RecvFrom >= 0 && carryLen > 0 {
			nextB = t.Irecv(np.RecvFrom, np.RecvTag)
			nextI = t.Irecv(np.RecvFrom, np.InteriorRecvTag)
		}
	}

	var inI []float64
	if reqI != nil {
		msg := reqI.Wait()
		t.Compute(sp.PerMessage)
		inI = msg.Payload
	}
	sp.Solve(bnd, ph.Lines, inI, outI)
	if inI != nil {
		t.PutPayload(inI)
	}
	if ph.SendTo >= 0 && carryLen > 0 {
		t.Compute(sp.PerMessage)
		sendI = t.Isend(ph.SendTo, ph.InteriorSendTag, xport.Msg{Bytes: inter * carryLen * 8, Payload: outI})
	}
	if sendB != nil {
		sendB.Wait()
	}
	if sendI != nil {
		sendI.Wait()
	}
	return nextB, nextI
}

// msPassCtx bundles one pass invocation's resolved locals so the strict
// loop and the overlapped phase executor share them without re-deriving.
type msPassCtx struct {
	sc           *rankScratch
	dim          int
	backward     bool
	carryLen     int
	flopsPerElem float64
	batch        int
	nv           int
	bs           sweep.BatchSolver
	batched      bool
	touched      []bool
	written      []bool
	chunk        [][]float64
	views        [][]float64
}

// overlapPhase adapts MultiSweep's solve kernel to the shared executor.
func (s *MultiSweep) overlapPhase(r xport.Transport, pc *msPassCtx, pp *plan.Pass, k int, preB, preI xport.Request) (nextB, nextI xport.Request) {
	env := s.Env
	ph := &pp.Phases[k]
	return OverlapPhase(r, OverlapPhaseSpec{
		Pass: pp, Phase: k,
		PerMessage: env.Overhead.PerMessage,
		Payloads:   s.Vecs != nil,
		Solve: func(gLo, gHi int, cIn, cOut []float64) {
			elems := s.solveLineRange(r, pc, ph, gLo, gHi, cIn, cOut)
			r.ComputeFlops(pc.flopsPerElem * float64(elems) * env.Overhead.ComputeFactor)
		},
	}, preB, preI)
}

// wfPassCtx bundles one wavefront pass invocation's resolved locals for the
// overlapped block executor.
type wfPassCtx struct {
	sc           *rankScratch
	solver       sweep.Solver
	bs           sweep.BatchSolver
	batched      bool
	backward     bool
	carryLen     int
	flopsPerElem float64
	chunkLen     int
	nv           int
	chunk        [][]float64
	touched      []bool
	written      []bool
}

// wavefrontOverlapPhase adapts the wavefront pipeline's block solve to the
// shared executor: the phase is a contiguous run of whole lines, so the
// range [gLo, gHi) maps directly onto the cached line geometry.
func (b *Block) wavefrontOverlapPhase(r xport.Transport, wc *wfPassCtx, vecs []*grid.Grid, pp *plan.Pass, m int, preB, preI xport.Request) (nextB, nextI xport.Request) {
	ph := &pp.Phases[m]
	carryLen := wc.carryLen
	first := ph.Tiles[0].LineOff

	solve := func(gLo, gHi int, cIn, cOut []float64) {
		count := gHi - gLo
		if vecs != nil && count > 0 {
			blk := wc.sc.lines[first+gLo : first+gLo+count]
			if wc.batched {
				panels := wc.sc.pan.Panels(wc.nv, count*wc.chunkLen)
				for v, g := range vecs {
					if sweep.MaskOn(wc.touched, v) {
						g.GatherLines(blk, panels[v])
					}
				}
				if wc.backward {
					wc.bs.BackwardBatch(panels, count, cIn, cOut)
				} else {
					wc.bs.ForwardBatch(panels, count, cIn, cOut)
				}
				for v, g := range vecs {
					if sweep.MaskOn(wc.written, v) {
						g.ScatterLines(blk, panels[v])
					}
				}
			} else {
				for i := 0; i < count; i++ {
					l := blk[i]
					for v, g := range vecs {
						g.Gather(l, wc.chunk[v])
					}
					var lIn, lOut []float64
					if cIn != nil {
						lIn = cIn[i*carryLen : (i+1)*carryLen]
					}
					if cOut != nil {
						lOut = cOut[i*carryLen : (i+1)*carryLen]
					}
					if wc.backward {
						wc.solver.Backward(wc.chunk, lIn, lOut)
					} else {
						wc.solver.Forward(wc.chunk, lIn, lOut)
					}
					for v, g := range vecs {
						g.Scatter(l, wc.chunk[v])
					}
				}
			}
		}
		r.ComputeFlops(wc.flopsPerElem * float64(count*wc.chunkLen) * b.Overhead.ComputeFactor)
	}

	return OverlapPhase(r, OverlapPhaseSpec{
		Pass: pp, Phase: m,
		PerMessage: b.Overhead.PerMessage,
		Payloads:   vecs != nil,
		Solve:      solve,
	}, preB, preI)
}

// solveLineRange computes the phase's canonical lines in [gLo, gHi),
// clipping each tile to the range. cInBuf/cOutBuf hold the range's carries,
// indexed from gLo (line g's carry block starts at (g−gLo)·carryLen). Tiles
// intersecting the range pay PerTileVisit per visit — a tile straddling the
// split is visited twice. Returns the elements computed; the caller charges
// the flops so boundary and interior compute appear as separate intervals.
func (s *MultiSweep) solveLineRange(r xport.Transport, pc *msPassCtx, ph *plan.Phase, gLo, gHi int, cInBuf, cOutBuf []float64) int {
	env := s.Env
	carryLen := pc.carryLen
	elements := 0
	for ti := range ph.Tiles {
		tg := &ph.Tiles[ti]
		lo := max(gLo, tg.LineOff)
		hi := min(gHi, tg.LineOff+tg.Lines)
		if lo >= hi {
			continue
		}
		r.Compute(env.Overhead.PerTileVisit)
		chunkLen := tg.ChunkLen
		elements += (hi - lo) * chunkLen
		if s.Vecs == nil {
			continue
		}
		rect := tg.Rect
		if pc.batched {
			sc := pc.sc
			sc.lines = s.Vecs[0].AppendLines(rect, pc.dim, sc.lines[:0])
			tLo, tHi := lo-tg.LineOff, hi-tg.LineOff
			for s0 := tLo; s0 < tHi; s0 += pc.batch {
				nb := min(pc.batch, tHi-s0)
				blk := sc.lines[s0 : s0+nb]
				panels := sc.pan.Panels(pc.nv, nb*chunkLen)
				for v, g := range s.Vecs {
					if sweep.MaskOn(pc.touched, v) {
						g.GatherLines(blk, panels[v])
					}
				}
				var cIn, cOut []float64
				c0 := tg.LineOff + s0 - gLo
				if cInBuf != nil {
					cIn = cInBuf[c0*carryLen : (c0+nb)*carryLen]
				}
				if cOutBuf != nil {
					cOut = cOutBuf[c0*carryLen : (c0+nb)*carryLen]
				}
				if pc.backward {
					pc.bs.BackwardBatch(panels, nb, cIn, cOut)
				} else {
					pc.bs.ForwardBatch(panels, nb, cIn, cOut)
				}
				for v, g := range s.Vecs {
					if sweep.MaskOn(pc.written, v) {
						g.ScatterLines(blk, panels[v])
					}
				}
			}
			continue
		}
		// Scalar oracle path: walk the tile's canonical line order, solving
		// only the lines inside the range.
		g := tg.LineOff
		s.Vecs[0].EachLine(rect, pc.dim, func(l grid.Line) {
			idx := g
			g++
			if idx < gLo || idx >= gHi {
				return
			}
			for v, gr := range s.Vecs {
				gr.Gather(l, pc.chunk[v][:chunkLen])
				pc.views[v] = pc.chunk[v][:chunkLen]
			}
			var cIn, cOut []float64
			c0 := idx - gLo
			if cInBuf != nil {
				cIn = cInBuf[c0*carryLen : (c0+1)*carryLen]
			}
			if cOutBuf != nil {
				cOut = cOutBuf[c0*carryLen : (c0+1)*carryLen]
			}
			if pc.backward {
				s.Solver.Backward(pc.views, cIn, cOut)
			} else {
				s.Solver.Forward(pc.views, cIn, cOut)
			}
			for v, gr := range s.Vecs {
				gr.Scatter(l, pc.chunk[v][:chunkLen])
			}
		})
	}
	return elements
}

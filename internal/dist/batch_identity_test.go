package dist

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"genmp/internal/core"
	"genmp/internal/grid"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

// requireBitIdentical fails unless every element of got matches want down to
// the exact float64 bit pattern: the batched kernels are drop-in replacements
// for the scalar oracle, not approximations, so the tolerance is zero.
func requireBitIdentical(t *testing.T, tag string, want, got []*grid.Grid) {
	t.Helper()
	for v := range want {
		wd, gd := want[v].Data(), got[v].Data()
		for i := range wd {
			if math.Float64bits(wd[i]) != math.Float64bits(gd[i]) {
				t.Fatalf("%s: vec %d element %d: scalar %v vs batched %v",
					tag, v, i, wd[i], gd[i])
			}
		}
	}
}

// identitySolvers covers every batched kernel family: the first-order
// recurrence, the specialized tridiagonal, and the general banded code
// (pentadiagonal), whose backward pass also exercises the PassAccess masks
// that skip gathering the lower bands and scatter only the rhs.
func identitySolvers() []sweep.Solver {
	return []sweep.Solver{sweep.Recurrence{}, sweep.Tridiag{}, sweep.NewPenta()}
}

func identityGrids(t *testing.T, rng *rand.Rand, solver sweep.Solver, eta []int, dim int) []*grid.Grid {
	t.Helper()
	switch sv := solver.(type) {
	case sweep.Recurrence:
		return makeRecurrenceGrids(rng, eta)
	case sweep.Tridiag:
		return makeBandedGrids(rng, eta, 1, 1, dim)
	case sweep.Banded:
		return makeBandedGrids(rng, eta, sv.KL, sv.KU, dim)
	}
	t.Fatalf("unknown solver %T", solver)
	return nil
}

// identityBatches spans the interesting panel widths: single-line panels,
// a width that never divides the odd line counts below, and one wider than
// most cross-sections.
var identityBatches = []int{1, 7, 64}

func TestMultiSweepBatchBitIdentical(t *testing.T) {
	p, gamma, eta := 8, []int{4, 4, 2}, []int{16, 13, 9}
	m, err := core.NewGeneralized(p, gamma)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(m, eta, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for _, solver := range identitySolvers() {
		for dim := range eta {
			gs := identityGrids(t, rng, solver, eta, dim)
			run := func(batch int) []*grid.Grid {
				work := cloneAll(gs)
				ms, err := NewMultiSweep(env, solver, work)
				if err != nil {
					t.Fatal(err)
				}
				ms.Batch = batch
				if _, err := testMachine(p).Run(func(r *sim.Rank) { ms.Run(r, dim) }); err != nil {
					t.Fatalf("%s dim %d batch %d: %v", solver.Name(), dim, batch, err)
				}
				return work
			}
			want := run(-1)
			for _, batch := range identityBatches {
				tag := fmt.Sprintf("multisweep %s dim %d batch %d", solver.Name(), dim, batch)
				requireBitIdentical(t, tag, want, run(batch))
			}
		}
	}
}

func TestBlockSweepsBatchBitIdentical(t *testing.T) {
	p := 4
	eta := []int{13, 10, 9}
	rng := rand.New(rand.NewSource(12))
	for _, solver := range identitySolvers() {
		modes := []struct {
			name  string
			dim   int // dimension the sweep runs along
			grain int
			exec  func(b *Block, r *sim.Rank, work []*grid.Grid, grain int)
		}{
			{"local", 1, 0, func(b *Block, r *sim.Rank, work []*grid.Grid, _ int) {
				b.LocalSweep(r, 1, solver, work)
			}},
			{"wavefront", 0, 1, func(b *Block, r *sim.Rank, work []*grid.Grid, grain int) {
				b.WavefrontSweep(r, solver, work, grain)
			}},
			{"wavefront", 0, 5, func(b *Block, r *sim.Rank, work []*grid.Grid, grain int) {
				b.WavefrontSweep(r, solver, work, grain)
			}},
			{"transpose", 0, 0, func(b *Block, r *sim.Rank, work []*grid.Grid, _ int) {
				b.TransposeSweep(r, solver, work)
			}},
		}
		for _, mode := range modes {
			gs := identityGrids(t, rng, solver, eta, mode.dim)
			run := func(batch int) []*grid.Grid {
				b, err := NewBlock(p, eta, 0, HandCoded())
				if err != nil {
					t.Fatal(err)
				}
				b.Batch = batch
				work := cloneAll(gs)
				if _, err := testMachine(p).Run(func(r *sim.Rank) {
					mode.exec(b, r, work, mode.grain)
				}); err != nil {
					t.Fatalf("%s %s batch %d: %v", mode.name, solver.Name(), batch, err)
				}
				return work
			}
			want := run(-1)
			for _, batch := range identityBatches {
				tag := fmt.Sprintf("block %s grain %d %s batch %d", mode.name, mode.grain, solver.Name(), batch)
				requireBitIdentical(t, tag, want, run(batch))
			}
		}
	}
}

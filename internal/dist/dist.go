// Package dist is the distribution runtime — the stand-in for the code the
// Rice dHPF compiler generates from HPF directives. It executes line-sweep
// computations over distributed arrays on the virtual-time machine of
// internal/sim, under three data distributions:
//
//   - Multipartitioning (MultiSweep): the paper's subject. Tiles are
//     enumerated slab by slab in dependence order; the carries of all lines
//     crossing a processor's tile faces travel in one aggregated message per
//     communication phase (full communication vectorization, possible
//     because generalized multipartitionings have the neighbor property).
//   - Static block unipartitioning (Block.WavefrontSweep): one dimension is
//     cut into p slabs; sweeps along it are pipelined wavefronts whose
//     message granularity trades pipeline fill/drain against per-message
//     overhead (the Section 1 tension).
//   - Dynamic block partitioning (Block.TransposeSweep): sweeps along the
//     partitioned dimension first transpose the array so the sweep is
//     local, then transpose back.
//
// Every executor runs in two modes: data mode (real float64 grids are
// gathered/solved/scattered, with message payloads carrying the real
// carries) for correctness validation, and model-only mode (nil grids; only
// element counts and byte counts flow) for large-scale performance runs.
package dist

import (
	"fmt"
	"sync"

	"genmp/internal/core"
	"genmp/internal/grid"
	"genmp/internal/numutil"
	"genmp/internal/redist"
	"genmp/internal/xport"
)

// Reserved message-tag space of the halo exchange (see xport.ReserveTags).
// Sweep carries are tagged by the compiled schedule itself, from the shared
// plan.SweepTags reservation — same base as the historical dist/sweep
// space, so tag values are unchanged.
var haloTags = xport.ReserveTags("dist/halo", 1<<26, 64)

// OverheadModel captures the per-construct costs that distinguish hand-
// written message-passing code from compiler-generated code. The paper's
// Table 1 compares the NASA hand-coded SP (diagonal multipartitioning) with
// dHPF-generated code (generalized multipartitioning); the residual gaps
// (e.g. 22% at 64 CPUs) are code-quality overheads, modeled here.
type OverheadModel struct {
	Name string
	// ComputeFactor multiplies all computation time (scalar code quality:
	// the dHPF-generated serial SP ran at 0.91 of the original's speed,
	// the hand-coded MPI version at 0.95).
	ComputeFactor float64
	// PerTileVisit is charged once per tile per computation phase (loop
	// nest setup, distribution-descriptor interpretation).
	PerTileVisit float64
	// PerMessage is charged per message for packing/unpacking beyond the
	// network's own overheads.
	PerMessage float64
	// ReplicationDepth is the width (in elements) of partially replicated
	// computation into shadow regions, the dHPF technique that trades a
	// little redundant compute for fewer/smaller messages. The replicated
	// work is charged; its benefit is modeled as no separate boundary
	// exchange for stencil phases.
	ReplicationDepth int
}

// Original returns the overhead model of the original sequential program:
// no parallelization overheads at all. Used as the speedup baseline (the
// paper's speedups are "relative to the original sequential version").
func Original() OverheadModel {
	return OverheadModel{Name: "original", ComputeFactor: 1.0}
}

// HandCoded returns the overhead model of carefully hand-written MPI code.
func HandCoded() OverheadModel {
	return OverheadModel{
		Name:          "hand-coded",
		ComputeFactor: 1.0 / 0.95,
		PerTileVisit:  2e-6,
		PerMessage:    1e-6,
	}
}

// DHPF returns the overhead model of dHPF-generated code.
func DHPF() OverheadModel {
	return OverheadModel{
		Name:             "dHPF",
		ComputeFactor:    1.0 / 0.91,
		PerTileVisit:     6e-6,
		PerMessage:       3e-6,
		ReplicationDepth: 1,
	}
}

// Env binds a multipartitioning to a concrete array size and overhead model.
type Env struct {
	M        *core.Multipartitioning
	Eta      []int
	Overhead OverheadModel

	// haloPlans caches compiled halo redistributions per (depth, nGrids) so
	// repeated exchanges share one schedule across ranks and timesteps. Env
	// is shared by concurrently running rank goroutines, hence the mutex.
	haloMu    sync.Mutex
	haloPlans map[haloKey]*redist.Plan
}

// haloKey identifies one compiled halo schedule.
type haloKey struct {
	depth, nGrids int
}

// NewEnv validates extents against the multipartitioning.
func NewEnv(m *core.Multipartitioning, eta []int, ov OverheadModel) (*Env, error) {
	if len(eta) != m.Dims() {
		return nil, fmt.Errorf("dist: array rank %d does not match partitioning rank %d", len(eta), m.Dims())
	}
	for i, e := range eta {
		if e < m.Gamma()[i] {
			return nil, fmt.Errorf("dist: extent η[%d] = %d smaller than cut count γ[%d] = %d", i, e, i, m.Gamma()[i])
		}
	}
	return &Env{M: m, Eta: numutil.CopyInts(eta), Overhead: ov}, nil
}

// OwnedElements returns the number of array elements owned by rank q.
func (e *Env) OwnedElements(q int) int {
	n := 0
	for _, tile := range e.M.TilesOf(q) {
		lo, hi := e.M.TileBounds(e.Eta, tile)
		n += grid.RectOf(lo, hi).Size()
	}
	return n
}

// EachOwnedTile calls f with the bounds of every tile of rank q (no cost
// accounting).
func (e *Env) EachOwnedTile(q int, f func(lo, hi []int)) {
	for _, tile := range e.M.TilesOf(q) {
		lo, hi := e.M.TileBounds(e.Eta, tile)
		f(lo, hi)
	}
}

// ComputeOnTiles models (and, when f is non-nil, performs) a local
// computation phase of flopsPerElement over every element of every tile of
// the calling rank, charging per-tile overheads and the compute factor.
// Used for the stencil phases (compute_rhs, add) between sweeps.
func (e *Env) ComputeOnTiles(r xport.Transport, flopsPerElement float64, f func(lo, hi []int)) {
	elements := 0
	for _, tile := range e.M.TilesOf(r.Rank()) {
		lo, hi := e.M.TileBounds(e.Eta, tile)
		r.Compute(e.Overhead.PerTileVisit)
		rect := grid.RectOf(lo, hi)
		elements += rect.Size()
		if e.Overhead.ReplicationDepth > 0 {
			// Partial replication: recompute a shadow shell of the given
			// depth around the tile (bounded by the domain).
			elements += shellElements(lo, hi, e.Eta, e.Overhead.ReplicationDepth)
		}
		if f != nil {
			f(lo, hi)
		}
	}
	r.ComputeFlops(flopsPerElement * float64(elements) * e.Overhead.ComputeFactor)
}

// shellElements counts the elements in a shell of the given depth around
// [lo,hi), clipped to the domain extents.
func shellElements(lo, hi, eta []int, depth int) int {
	inner := 1
	outer := 1
	for i := range lo {
		inner *= hi[i] - lo[i]
		olo := numutil.MaxInt(0, lo[i]-depth)
		ohi := numutil.MinInt(eta[i], hi[i]+depth)
		outer *= ohi - olo
	}
	return outer - inner
}

// HaloBytes returns the bytes rank q must receive per stencil exchange of
// the given depth over nGrids grids: for each direction ±dim, the cross-
// sections of its tiles that have an in-domain neighbor.
func (e *Env) HaloBytes(q, depth, nGrids int) int {
	total := 0
	gamma := e.M.Gamma()
	for _, tile := range e.M.TilesOf(q) {
		lo, hi := e.M.TileBounds(e.Eta, tile)
		for dim := range e.Eta {
			cross := 1
			for j := range e.Eta {
				if j != dim {
					cross *= hi[j] - lo[j]
				}
			}
			if tile[dim] > 0 {
				total += depth * cross
			}
			if tile[dim] < gamma[dim]-1 {
				total += depth * cross
			}
		}
	}
	return total * 8 * nGrids
}

// ExchangeHalos models a stencil boundary exchange of the given depth for
// nGrids grids: one aggregated message to each of the 2d neighbor
// processors (the neighbor property makes a single target per direction),
// each via the sim.Exchange neighbor primitive under the dist/halo tag
// space. In data mode the grids share storage, so the messages carry no
// payload — they establish ordering and cost. Ranks whose tiles touch the
// domain boundary in a direction still exchange with their tile-neighbors
// for the interior faces.
// The schedule itself is compiled once per (depth, nGrids) by
// redist.CompileHalo — this wrapper is the thin special case of the
// generalized redistribution engine, replaying the historical hand-built
// loop bit for bit (same step order, byte counts, tags, and per-message
// bracketing).
func (e *Env) ExchangeHalos(r xport.Transport, depth, nGrids int) {
	if e.M.P() == 1 || depth == 0 {
		return
	}
	redist.Execute(r, e.haloPlan(depth, nGrids), redist.ExecOpts{PerMessage: e.Overhead.PerMessage})
}

// PostHaloRecvs posts the receives of the NEXT ExchangeHalosPiped call with
// the same (depth, nGrids) as nonblocking requests — the cross-timestep
// halo pipelining of the overlap schedule (DESIGN.md §14). Returns nil when
// there is no halo traffic.
func (e *Env) PostHaloRecvs(r xport.Transport, depth, nGrids int) []xport.Request {
	if e.M.P() == 1 || depth == 0 {
		return nil
	}
	return redist.PostRecvs(r, e.haloPlan(depth, nGrids))
}

// ExchangeHalosPiped is ExchangeHalos consuming requests preposted by an
// earlier PostHaloRecvs; pre == nil falls back to the blocking exchange.
// Virtual time is identical either way.
func (e *Env) ExchangeHalosPiped(r xport.Transport, depth, nGrids int, pre []xport.Request) {
	if e.M.P() == 1 || depth == 0 {
		return
	}
	redist.Execute(r, e.haloPlan(depth, nGrids), redist.ExecOpts{PerMessage: e.Overhead.PerMessage, Preposted: pre})
}

// haloPlan returns the compiled halo schedule for (depth, nGrids),
// compiling it on first use. All ranks execute the one shared instance.
func (e *Env) haloPlan(depth, nGrids int) *redist.Plan {
	key := haloKey{depth: depth, nGrids: nGrids}
	e.haloMu.Lock()
	defer e.haloMu.Unlock()
	if pl, ok := e.haloPlans[key]; ok {
		return pl
	}
	pl, err := redist.CompileHalo(redist.HaloSpec{
		M: e.M, Eta: e.Eta, Depth: depth, NGrids: nGrids, Tags: haloTags,
	})
	if err != nil {
		panic("dist: " + err.Error())
	}
	if e.haloPlans == nil {
		e.haloPlans = map[haloKey]*redist.Plan{}
	}
	e.haloPlans[key] = pl
	return pl
}

package dist

import (
	"math/rand"
	"testing"

	"genmp/internal/core"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

// TestWavefrontPerBlockAllocFree verifies the wavefront inner loop no longer
// allocates per block: carries travel in pooled payloads and line data moves
// through the per-rank arena. Machine.Run has fixed bookkeeping allocations,
// so the test is differential — a warmed run with one block per slab versus
// a warmed run with one-line blocks (144 blocks per slab). If the per-block
// path allocated, the many-block run would exceed the one-block run by
// hundreds of allocations; messaging itself reuses pooled buffers.
func TestWavefrontPerBlockAllocFree(t *testing.T) {
	p := 4
	eta := []int{40, 12, 12}
	rng := rand.New(rand.NewSource(9))
	gs := makeBandedGrids(rng, eta, 1, 1, 0)
	work := cloneAll(gs)
	restore := func() {
		for v := range work {
			copy(work[v].Data(), gs[v].Data())
		}
	}
	measure := func(grain int) float64 {
		b, err := NewBlock(p, eta, 0, HandCoded())
		if err != nil {
			t.Fatal(err)
		}
		mach := testMachine(p)
		run := func() {
			restore()
			if _, err := mach.Run(func(r *sim.Rank) {
				b.WavefrontSweep(r, sweep.Tridiag{}, work, grain)
			}); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the per-rank arenas and the machine's payload pool
		resetScratchStats(b.scratchBuf)
		pool := mach.PayloadPoolStats()
		allocs := testing.AllocsPerRun(5, run)
		// Warmed arenas must serve every acquisition from existing capacity,
		// and the payload pool must recycle (scheduling can make a rank
		// request a buffer before a peer returns one, so allow a small slack).
		if ws := b.WorkspaceStats(); ws.Gets == 0 || ws.HitRate() != 1 {
			t.Errorf("grain %d: steady-state workspace hit rate = %v (%+v), want 1", grain, ws.HitRate(), ws)
		}
		assertPoolSteadyState(t, mach, pool)
		return allocs
	}
	many := measure(1)   // 12×12 = 144 single-line blocks per slab
	one := measure(1000) // whole slab in one block
	t.Logf("allocs per run: many-block %v, one-block %v", many, one)
	if many > one+64 {
		t.Errorf("many-block wavefront allocates %v per run vs %v for one block: per-block path is allocating", many, one)
	}
}

// TestMultiSweepSteadyStateAllocFree pins the warmed per-run allocation
// count of the strictest executor path the benchmarks gate: repeated batched
// multipartitioned sweeps on one machine must not grow the heap per line,
// per block, or per message (payloads cycle through the machine pool).
func TestMultiSweepSteadyStateAllocFree(t *testing.T) {
	p, gamma, eta := 4, []int{2, 2, 2}, []int{16, 16, 8}
	env := mustTestEnv(t, p, gamma, eta)
	rng := rand.New(rand.NewSource(10))
	gs := makeBandedGrids(rng, eta, 1, 1, 0)
	work := cloneAll(gs)
	ms, err := NewMultiSweep(env, sweep.Tridiag{}, work)
	if err != nil {
		t.Fatal(err)
	}
	mach := testMachine(p)
	run := func() {
		for v := range work {
			copy(work[v].Data(), gs[v].Data())
		}
		if _, err := mach.Run(func(r *sim.Rank) { ms.Run(r, 0) }); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm arenas and pools
	baseline := runOverhead(mach, p)
	resetScratchStats(ms.scratchBuf)
	pool := mach.PayloadPoolStats()
	allocs := testing.AllocsPerRun(5, run)
	t.Logf("allocs per run: sweep %v, bare machine %v", allocs, baseline)
	if allocs > baseline+32 {
		t.Errorf("warmed multipartitioned sweep allocates %v per run vs %v for an empty run: executor path is allocating", allocs, baseline)
	}
	if ws := ms.WorkspaceStats(); ws.Gets == 0 || ws.HitRate() != 1 {
		t.Errorf("steady-state workspace hit rate = %v (%+v), want 1", ws.HitRate(), ws)
	}
	assertPoolSteadyState(t, mach, pool)
}

// resetScratchStats zeroes the arena counters of warmed per-rank scratch so
// hit rates are measured from a steady-state baseline.
func resetScratchStats(buf []rankScratch) {
	for q := range buf {
		buf[q].pan.ResetStats()
		buf[q].chunk.ResetStats()
	}
}

// assertPoolSteadyState checks that the payload pool recycled nearly every
// buffer requested since the pre snapshot. Goroutine interleaving can make
// a rank request a payload before a peer has returned one, so a warmed pool
// may still miss occasionally; ≥ 90% recycled means the hot path is served
// by the pool, not the heap.
func assertPoolSteadyState(t *testing.T, mach *sim.Machine, pre sim.PoolStats) {
	t.Helper()
	post := mach.PayloadPoolStats()
	gets, hits := post.Gets-pre.Gets, post.Hits-pre.Hits
	if gets == 0 {
		t.Error("steady-state runs requested no pooled payloads")
		return
	}
	if rate := float64(hits) / float64(gets); rate < 0.9 {
		t.Errorf("steady-state payload pool hit rate = %v (%d/%d gets), want ≈ 1", rate, hits, gets)
	}
}

// runOverhead measures Machine.Run's own fixed allocation cost (goroutines,
// per-rank stats) with an empty body on an already-warmed machine.
func runOverhead(mach *sim.Machine, p int) float64 {
	body := func(r *sim.Rank) {}
	mach.Run(body)
	return testing.AllocsPerRun(5, func() { mach.Run(body) })
}

func mustTestEnv(t *testing.T, p int, gamma, eta []int) *Env {
	t.Helper()
	m, err := core.NewGeneralized(p, gamma)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(m, eta, HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

package dist

import (
	"testing"

	"genmp/internal/core"
)

// TestTransposeSizesConservation is the byte-conservation property of the
// compiled transpose: for every (p, η, tDim, nGrids) — divisible or not —
// and both phases, the per-peer size matrix must (a) ship every byte that
// leaves q's slab somewhere (row sums equal the slab minus its self
// overlap), (b) deliver exactly what each receiver's new slab is owed
// (column sums, so total sent == total received), and (c) be the transpose
// of the reverse phase's matrix — phase 1 returns precisely the bytes phase
// 0 scattered, rank pair by rank pair.
func TestTransposeSizesConservation(t *testing.T) {
	cases := []struct {
		p      int
		eta    []int
		tDim   int
		nGrids int
	}{
		{2, []int{8, 8}, 1, 1},
		{4, []int{10, 7, 5}, 1, 3},
		{4, []int{10, 7, 5}, 2, 2},
		{3, []int{7, 11, 13}, 2, 1},
		{5, []int{9, 6, 14}, 1, 4},
		{8, []int{16, 9, 10}, 2, 5},
	}
	for _, tc := range cases {
		b, err := NewBlock(tc.p, tc.eta, 0, HandCoded())
		if err != nil {
			t.Fatal(err)
		}
		// sizes[phase][q][d]: bytes q ships to d in that phase.
		var sizes [2][][]int
		for phase := 0; phase < 2; phase++ {
			sizes[phase] = make([][]int, tc.p)
			for q := 0; q < tc.p; q++ {
				sizes[phase][q] = b.transposeSizes(q, tc.tDim, tc.nGrids, phase)
			}
		}
		ortho := 8 * tc.nGrids
		for i, e := range tc.eta {
			if i != 0 && i != tc.tDim {
				ortho *= e
			}
		}
		for phase := 0; phase < 2; phase++ {
			outDim, inDim := 0, tc.tDim
			if phase == 1 {
				outDim, inDim = tc.tDim, 0
			}
			sent, recvd := 0, 0
			for q := 0; q < tc.p; q++ {
				qOutLo, qOutHi := core.BlockRange(tc.eta[outDim], tc.p, q)
				qInLo, qInHi := core.BlockRange(tc.eta[inDim], tc.p, q)
				rowSum, colSum := 0, 0
				for d := 0; d < tc.p; d++ {
					rowSum += sizes[phase][q][d]
					colSum += sizes[phase][d][q]
				}
				// (a) q ships its whole outgoing slab except the slice that
				// stays with q under the incoming distribution.
				wantRow := (qOutHi - qOutLo) * (tc.eta[inDim] - (qInHi - qInLo)) * ortho
				if rowSum != wantRow {
					t.Errorf("p=%d η=%v tDim=%d phase %d rank %d: sends %d bytes, slab owes %d",
						tc.p, tc.eta, tc.tDim, phase, q, rowSum, wantRow)
				}
				// (b) q receives its whole incoming slab except what it
				// already held.
				wantCol := (qInHi - qInLo) * (tc.eta[outDim] - (qOutHi - qOutLo)) * ortho
				if colSum != wantCol {
					t.Errorf("p=%d η=%v tDim=%d phase %d rank %d: receives %d bytes, new slab owed %d",
						tc.p, tc.eta, tc.tDim, phase, q, colSum, wantCol)
				}
				sent += rowSum
				recvd += colSum
			}
			if sent != recvd {
				t.Errorf("p=%d η=%v tDim=%d phase %d: %d bytes sent vs %d received",
					tc.p, tc.eta, tc.tDim, phase, sent, recvd)
			}
		}
		// (c) the reverse phase is the exact mirror.
		for q := 0; q < tc.p; q++ {
			for d := 0; d < tc.p; d++ {
				if sizes[0][q][d] != sizes[1][d][q] {
					t.Errorf("p=%d η=%v tDim=%d: phase0[%d→%d]=%d but phase1[%d→%d]=%d",
						tc.p, tc.eta, tc.tDim, q, d, sizes[0][q][d], d, q, sizes[1][d][q])
				}
			}
		}
	}
}

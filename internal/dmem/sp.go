package dmem

import (
	"fmt"

	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/nas"
	"genmp/internal/plan"
	"genmp/internal/rt"
	"genmp/internal/sim"
	"genmp/internal/sweep"
	"genmp/internal/xport"
)

// RunSP executes the SP pseudo-application in strict distributed-memory
// mode: every rank holds private padded copies of its tiles, stencil halos
// and sweep carries move in real message payloads, and the final state is
// gathered to rank 0 over messages. The returned grid (non-nil only from
// the outer call, assembled on rank 0) matches nas.SerialSolve elementwise.
//
// Every tile must be at least haloDepth (2) cells thick in every cut
// dimension so a single neighbor's face covers the stencil reach.
func RunSP(env *dist.Env, mach *sim.Machine, steps int) (*grid.Grid, sim.Result, error) {
	return RunSPOverlap(env, mach, steps, plan.Overlap{})
}

// RunSPOverlap is RunSP with the boundary-first overlap schedule: the sweep
// plan is compiled with the overlap annotation (each phase solves its
// boundary lines, posts the carry with Isend and solves the interior while
// the message flies), and the stencil halos pipeline across timesteps (each
// step preposts the next step's halo receives before the add phase). The
// final field is bit-identical to RunSP; the zero Overlap reproduces it
// exactly.
func RunSPOverlap(env *dist.Env, mach *sim.Machine, steps int, o plan.Overlap) (*grid.Grid, sim.Result, error) {
	if err := spCheck(env); err != nil {
		return nil, sim.Result{}, err
	}
	solver := sweep.NewPenta()
	sweepPlan, err := CompileSweepPlanOverlap(env, solver, o)
	if err != nil {
		return nil, sim.Result{}, err
	}
	var out *grid.Grid
	body := spBody(env, solver, sweepPlan, steps, o, &out)
	res, err := mach.Run(func(r *sim.Rank) { body(r) })
	if err != nil {
		return nil, sim.Result{}, err
	}
	return out, res, nil
}

// RunSPReal executes SP on the real-parallel runtime: the same per-rank
// body, the same compiled schedule, measured in wall-clock time. pl is the
// schedule to execute — typically shipped via obs.WritePlanJSON/
// obs.PlanFromJSON so workers load rather than recompile it; nil compiles
// locally. The final field is Float64bits-identical to RunSPOverlap's.
func RunSPReal(env *dist.Env, rm *rt.Machine, steps int, o plan.Overlap, pl *plan.SweepPlan) (*grid.Grid, rt.Result, error) {
	if err := spCheck(env); err != nil {
		return nil, rt.Result{}, err
	}
	solver := sweep.NewPenta()
	if pl == nil {
		var err error
		if pl, err = CompileSweepPlanOverlap(env, solver, o); err != nil {
			return nil, rt.Result{}, err
		}
	}
	var out *grid.Grid
	body := spBody(env, solver, pl, steps, o, &out)
	res, err := rm.Run(func(r *rt.Rank) { body(r) })
	if err != nil {
		return nil, rt.Result{}, err
	}
	return out, res, nil
}

// spHaloDepth is the stencil reach of the SP pseudo-application.
const spHaloDepth = 2

// spCheck validates that every tile is thick enough for the halo depth.
func spCheck(env *dist.Env) error {
	gamma := env.M.Gamma()
	for dim := range env.Eta {
		if gamma[dim] > 1 && env.Eta[dim]/gamma[dim] < spHaloDepth {
			return fmt.Errorf("dmem: tiles along dim %d are thinner than the halo depth %d", dim, spHaloDepth)
		}
	}
	return nil
}

// spBody builds the per-rank body of the SP strict run — shared verbatim
// by the simulator and real-parallel backends, so schedule and data flow
// cannot drift between them. Only rank 0 writes *out (the gathered grid).
func spBody(env *dist.Env, solver sweep.Solver, sweepPlan *plan.SweepPlan, steps int, o plan.Overlap, out **grid.Grid) func(t xport.Transport) {
	return func(t xport.Transport) {
		u := NewField(env, t.Rank(), spHaloDepth)
		u.FillFunc(initialAt(env.Eta))
		vecs := make([]*Field, solver.NumVecs())
		for v := range vecs {
			vecs[v] = NewField(env, t.Rank(), 0)
		}
		rhs := vecs[5]
		runner := NewSweepRunner(solver, vecs)
		runner.Plan = sweepPlan

		var haloPre []xport.Request
		for step := 0; step < steps; step++ {
			u.ExchangeHalosPiped(t, haloPre)
			haloPre = nil
			t.Compute(env.Overhead.PerTileVisit * float64(u.NumTiles()))
			strictComputeRHS(u, rhs)
			t.ComputeFlops(nas.FlopsRHS * float64(ownedElements(u)) * env.Overhead.ComputeFactor)
			for dim := range env.Eta {
				strictBuildLHS(dim, env.Eta[dim], vecs)
				t.ComputeFlops(nas.FlopsLHSBuild * float64(ownedElements(u)) * env.Overhead.ComputeFactor)
				runner.Run(t, dim)
			}
			if o.Enabled && step+1 < steps {
				haloPre = u.PostHaloRecvs(t)
			}
			strictAdd(u, rhs)
			t.ComputeFlops(nas.FlopsAdd * float64(ownedElements(u)) * env.Overhead.ComputeFactor)
		}
		if g := GatherToRoot(t, u, xport.AlgAuto); g != nil {
			*out = g
		}
	}
}

// initialAt evaluates nas.InitialState's formula pointwise so every rank
// initializes its own tiles without touching shared data.
func initialAt(eta []int) func(global []int) float64 {
	return func(idx []int) float64 {
		v := 1.0
		for i, x := range idx {
			v += float64((x+1)*(i+2)) / float64(eta[i]*(i+3))
		}
		return v
	}
}

func ownedElements(f *Field) int {
	n := 0
	for i := 0; i < f.NumTiles(); i++ {
		n += f.GlobalBounds(i).Size()
	}
	return n
}

// strictComputeRHS evaluates the SP stencil over every owned tile reading
// only the rank's private padded storage. Domain-boundary reads clamp
// exactly as the serial nas.ComputeRHS does.
func strictComputeRHS(u *Field, rhs *Field) {
	env := u.Env
	d := len(env.Eta)
	for i := 0; i < u.NumTiles(); i++ {
		ug := u.TileGrid(i)
		rg := rhs.TileGrid(i)
		ud := ug.Data()
		rd := rg.Data()
		uShape := ug.Shape()
		// Strides of the padded u grid.
		uStride := make([]int, d)
		s := 1
		for k := d - 1; k >= 0; k-- {
			uStride[k] = s
			s *= uShape[k]
		}
		global := make([]int, d)
		interiorU := u.InteriorRect(i)
		rhsInterior := rhs.InteriorRect(i)
		// Walk u's interior and rhs's interior in lockstep (same shape,
		// different padding).
		rhsLines := rg.AppendLines(rhsInterior, d-1, nil)
		li := 0
		ug.EachLine(interiorU, d-1, func(l grid.Line) {
			rl := rhsLines[li]
			li++
			u.localToGlobal(i, l.Base, global)
			uOff := l.Base
			rOff := rl.Base
			for k := 0; k < l.N; k++ {
				acc := 0.0
				for dim := 0; dim < d; dim++ {
					g := global[dim]
					n := env.Eta[dim]
					at := func(delta int) float64 {
						cc := g + delta
						if cc < 0 {
							cc = 0
						}
						if cc >= n {
							cc = n - 1
						}
						return ud[uOff+(cc-g)*uStride[dim]]
					}
					acc += nas.StencilTerm(at(-2), at(-1), at(0), at(1), at(2))
				}
				rd[rOff] = acc
				uOff += l.Stride
				rOff += rl.Stride
				global[d-1]++
			}
			global[d-1] -= l.N
		})
	}
}

// strictBuildLHS assembles the pentadiagonal bands over every owned tile
// from the global row formula (identical to nas.BuildLHS).
func strictBuildLHS(dim, n int, vecs []*Field) {
	f := vecs[0]
	d := len(f.Env.Eta)
	for i := 0; i < f.NumTiles(); i++ {
		b := f.GlobalBounds(i)
		start := b.Lo[dim]
		grids := make([]*grid.Grid, 5)
		data := make([][]float64, 5)
		for v := 0; v < 5; v++ {
			grids[v] = vecs[v].TileGrid(i)
			data[v] = grids[v].Data()
		}
		interior := vecs[0].InteriorRect(i)
		grids[0].EachLine(interior, dim, func(l grid.Line) {
			off := l.Base
			for k := 0; k < l.N; k++ {
				l1, l2, dg, u1, u2 := nas.BandRow(start+k, dim, n)
				data[0][off] = l1
				data[1][off] = l2
				data[2][off] = dg
				data[3][off] = u1
				data[4][off] = u2
				off += l.Stride
			}
		})
	}
	_ = d
}

// strictAdd folds rhs into u over every owned tile (different paddings).
func strictAdd(u *Field, rhs *Field) {
	d := len(u.Env.Eta)
	for i := 0; i < u.NumTiles(); i++ {
		ug := u.TileGrid(i)
		rg := rhs.TileGrid(i)
		ud := ug.Data()
		rd := rg.Data()
		rhsLines := rg.AppendLines(rhs.InteriorRect(i), d-1, nil)
		li := 0
		ug.EachLine(u.InteriorRect(i), d-1, func(l grid.Line) {
			rl := rhsLines[li]
			li++
			uOff, rOff := l.Base, rl.Base
			for k := 0; k < l.N; k++ {
				ud[uOff] += rd[rOff]
				uOff += l.Stride
				rOff += rl.Stride
			}
		})
	}
}

// Package dmem provides strict distributed-memory execution: every rank
// owns private copies of its tiles (padded with halo shells), all boundary
// data moves in real message payloads, and no rank ever reads another
// rank's storage. It is the fully faithful counterpart of internal/dist's
// shared-storage data mode (where messages carry carries and establish
// ordering, but stencil reads go through the common backing arrays).
//
// The cost: extra memory for per-tile copies and pack/unpack work. The
// payoff: an execution model identical to an MPI program's, validated
// elementwise against the serial references by gathering the distributed
// state back to rank 0 over messages.
package dmem

import (
	"fmt"

	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/numutil"
	"genmp/internal/sim"
)

// Field is one rank's private storage for one distributed array: a padded
// local grid per owned tile. Depth is the halo width (0 for arrays that
// never feed a stencil).
type Field struct {
	Env   *dist.Env
	Rank  int
	Depth int
	// tiles[i] is the padded local grid of the i-th tile in the rank's
	// canonical (row-major) tile order; bounds[i] its global interior.
	tiles  []*grid.Grid
	bounds []grid.Rect
	// index maps a tile's row-major rank in the tile grid to its position
	// in tiles (or −1 when not owned by this rank).
	index map[int]int
}

// NewField allocates the rank's tile storage for one array.
func NewField(env *dist.Env, rank, depth int) *Field {
	if depth < 0 {
		panic("dmem: negative halo depth")
	}
	f := &Field{Env: env, Rank: rank, Depth: depth, index: map[int]int{}}
	gamma := env.M.Gamma()
	for _, tile := range env.M.TilesOf(rank) {
		lo, hi := env.M.TileBounds(env.Eta, tile)
		shape := make([]int, len(lo))
		for i := range shape {
			shape[i] = hi[i] - lo[i] + 2*depth
		}
		f.index[numutil.RankOf(tile, gamma)] = len(f.tiles)
		f.tiles = append(f.tiles, grid.New(shape...))
		f.bounds = append(f.bounds, grid.RectOf(lo, hi))
	}
	return f
}

// NumTiles returns the number of locally stored tiles.
func (f *Field) NumTiles() int { return len(f.tiles) }

// TileGrid returns the padded local grid of local tile i.
func (f *Field) TileGrid(i int) *grid.Grid { return f.tiles[i] }

// GlobalBounds returns the global interior region of local tile i.
func (f *Field) GlobalBounds(i int) grid.Rect { return f.bounds[i] }

// InteriorRect returns the interior region of local tile i within its
// padded grid.
func (f *Field) InteriorRect(i int) grid.Rect {
	b := f.bounds[i]
	d := len(b.Lo)
	lo := make([]int, d)
	hi := make([]int, d)
	for k := 0; k < d; k++ {
		lo[k] = f.Depth
		hi[k] = f.Depth + b.Hi[k] - b.Lo[k]
	}
	return grid.RectOf(lo, hi)
}

// LocalTileOf returns the local index of the tile with the given
// coordinates, or −1 when this rank does not own it.
func (f *Field) LocalTileOf(tile []int) int {
	i, ok := f.index[numutil.RankOf(tile, f.Env.M.Gamma())]
	if !ok {
		return -1
	}
	return i
}

// FillFunc initializes every interior cell from its global coordinates.
func (f *Field) FillFunc(fn func(global []int) float64) {
	for i, g := range f.tiles {
		b := f.bounds[i]
		d := len(b.Lo)
		global := make([]int, d)
		interior := f.InteriorRect(i)
		data := g.Data()
		g.EachLine(interior, d-1, func(l grid.Line) {
			f.localToGlobal(i, l.Base, global)
			off := l.Base
			for k := 0; k < l.N; k++ {
				data[off] = fn(global)
				global[d-1]++
				off += l.Stride
			}
			global[d-1] -= l.N
		})
	}
}

// localToGlobal converts a storage offset of local tile i into global
// coordinates (writing into dst).
func (f *Field) localToGlobal(i, offset int, dst []int) {
	g := f.tiles[i]
	numutil.CoordOf(offset, g.Shape(), dst)
	b := f.bounds[i]
	for k := range dst {
		dst[k] = dst[k] - f.Depth + b.Lo[k]
	}
}

// SumSquares returns Σv² over the rank's interiors (a reduction input).
func (f *Field) SumSquares() float64 {
	s := 0.0
	for i, g := range f.tiles {
		data := g.Data()
		d := g.Dims()
		g.EachLine(f.InteriorRect(i), d-1, func(l grid.Line) {
			off := l.Base
			for k := 0; k < l.N; k++ {
				v := data[off]
				s += v * v
				off += l.Stride
			}
		})
	}
	return s
}

// haloFaceRect returns, within local tile i's padded grid, either the
// interior face of width w on the given side of dim (src = true: the data
// to send) or the halo shell of width w beyond that side (src = false: the
// cells to fill on receive).
func (f *Field) haloFaceRect(i, dim, side, w int, src bool) grid.Rect {
	interior := f.InteriorRect(i)
	lo := numutil.CopyInts(interior.Lo)
	hi := numutil.CopyInts(interior.Hi)
	if side > 0 {
		if src {
			lo[dim] = hi[dim] - w
		} else {
			lo[dim] = hi[dim]
			hi[dim] = lo[dim] + w
		}
	} else {
		if src {
			hi[dim] = lo[dim] + w
		} else {
			hi[dim] = lo[dim]
			lo[dim] = hi[dim] - w
		}
	}
	return grid.RectOf(lo, hi)
}

// Reserved message-tag spaces of the strict runtime (see sim.ReserveTags);
// the bases keep the historical literal values.
var (
	strictSweepTags = sim.ReserveTags("dmem/sweep", 1<<29, 1<<28)
	strictHaloTags  = sim.ReserveTags("dmem/halo", 1<<25, 64)
)

// ExchangeHalos fills the field's halo shells with real face data from the
// neighboring processors: one aggregated payload message per direction per
// dimension (the neighbor property gives a single peer each way), via the
// sim.Exchange neighbor primitive under the dmem/halo tag space.
func (f *Field) ExchangeHalos(r *sim.Rank) {
	if f.Depth == 0 || f.Env.M.P() == 1 {
		return
	}
	env := f.Env
	gamma := env.M.Gamma()
	for dim := range env.Eta {
		if gamma[dim] == 1 {
			continue
		}
		for s, step := range []int{1, -1} {
			// Pack the faces of every owned tile that has an in-grid
			// neighbor in direction step, in canonical tile order.
			var payload []float64
			for i := range f.tiles {
				tile := env.M.TilesOf(f.Rank)[i]
				n := tile[dim] + step
				if n < 0 || n >= gamma[dim] {
					continue
				}
				payload = append(payload, f.tiles[i].Extract(f.haloFaceRect(i, dim, step, f.Depth, true))...)
			}
			dst := env.M.NeighborProc(f.Rank, dim, step)
			src := env.M.NeighborProc(f.Rank, dim, -step)
			msg := r.Exchange(dst, src, strictHaloTags.Tag(dim*2+s),
				sim.Msg{Payload: payload}, env.Overhead.PerMessage)
			// Unpack into the halo shells on the −step side of the tiles
			// with an in-grid neighbor that way (the shifted bijection
			// preserves canonical order and cross-sections).
			pos := 0
			for i := range f.tiles {
				tile := env.M.TilesOf(f.Rank)[i]
				n := tile[dim] - step
				if n < 0 || n >= gamma[dim] {
					continue
				}
				rect := f.haloFaceRect(i, dim, -step, f.Depth, false)
				size := rect.Size()
				f.tiles[i].Inject(rect, msg.Payload[pos:pos+size])
				pos += size
			}
			if pos != len(msg.Payload) {
				panic(fmt.Sprintf("dmem: halo exchange misaligned: consumed %d of %d values (dim %d step %+d)",
					pos, len(msg.Payload), dim, step))
			}
		}
	}
}

// GatherToRoot reconstructs the global array on rank 0 from every rank's
// interiors, over the sim.GatherTo collective (the default linear
// algorithm reproduces the historical send-to-root loop exactly; alg
// selects an alternative). All ranks must call it; non-root ranks return
// nil.
func GatherToRoot(r *sim.Rank, f *Field, alg sim.Alg) *grid.Grid {
	env := f.Env
	var payload []float64
	for i := range f.tiles {
		payload = append(payload, f.tiles[i].Extract(f.InteriorRect(i))...)
	}
	parts := r.GatherTo(0, 8*len(payload), payload, sim.CollOpts{Alg: alg})
	if r.ID != 0 {
		return nil
	}
	out := grid.New(env.Eta...)
	for q := 0; q < env.M.P(); q++ {
		pos := 0
		for _, tile := range env.M.TilesOf(q) {
			lo, hi := env.M.TileBounds(env.Eta, tile)
			rect := grid.RectOf(lo, hi)
			size := rect.Size()
			out.Inject(rect, parts[q][pos:pos+size])
			pos += size
		}
	}
	return out
}

// Package dmem provides strict distributed-memory execution: every rank
// owns private copies of its tiles (padded with halo shells), all boundary
// data moves in real message payloads, and no rank ever reads another
// rank's storage. It is the fully faithful counterpart of internal/dist's
// shared-storage data mode (where messages carry carries and establish
// ordering, but stencil reads go through the common backing arrays).
//
// The cost: extra memory for per-tile copies and pack/unpack work. The
// payoff: an execution model identical to an MPI program's, validated
// elementwise against the serial references by gathering the distributed
// state back to rank 0 over messages.
package dmem

import (
	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/numutil"
	"genmp/internal/redist"
	"genmp/internal/xport"
)

// Field is one rank's private storage for one distributed array: a padded
// local grid per owned tile. Depth is the halo width (0 for arrays that
// never feed a stencil).
type Field struct {
	Env   *dist.Env
	Rank  int
	Depth int
	// tiles[i] is the padded local grid of the i-th tile in the rank's
	// canonical (row-major) tile order; bounds[i] its global interior.
	tiles  []*grid.Grid
	bounds []grid.Rect
	// shapes[i] is tiles[i]'s padded shape and interior[i] its interior
	// region within the padded grid — cached because the per-line hot paths
	// (coordinate conversion, sweep geometry) would otherwise re-derive
	// them per call. Callers must treat both as read-only.
	shapes   [][]int
	interior []grid.Rect
	// index maps a tile's row-major rank in the tile grid to its position
	// in tiles (or −1 when not owned by this rank).
	index map[int]int
	// haloPlan is the compiled halo schedule (redist.CompileHalo), built
	// lazily on the first ExchangeHalos call. A Field belongs to one rank,
	// so no lock is needed.
	haloPlan *redist.Plan
	// lrLo/lrHi are the scratch coordinates of localRect, reused so
	// steady-state exchanges stay allocation-light.
	lrLo, lrHi []int
}

// NewField allocates the rank's tile storage for one array.
func NewField(env *dist.Env, rank, depth int) *Field {
	if depth < 0 {
		panic("dmem: negative halo depth")
	}
	f := &Field{Env: env, Rank: rank, Depth: depth, index: map[int]int{}}
	gamma := env.M.Gamma()
	for _, tile := range env.M.TilesOf(rank) {
		lo, hi := env.M.TileBounds(env.Eta, tile)
		shape := make([]int, len(lo))
		for i := range shape {
			shape[i] = hi[i] - lo[i] + 2*depth
		}
		f.index[numutil.RankOf(tile, gamma)] = len(f.tiles)
		f.tiles = append(f.tiles, grid.New(shape...))
		f.bounds = append(f.bounds, grid.RectOf(lo, hi))
		f.shapes = append(f.shapes, shape)
		ilo := make([]int, len(lo))
		ihi := make([]int, len(lo))
		for k := range ilo {
			ilo[k] = depth
			ihi[k] = depth + hi[k] - lo[k]
		}
		f.interior = append(f.interior, grid.RectOf(ilo, ihi))
	}
	return f
}

// NumTiles returns the number of locally stored tiles.
func (f *Field) NumTiles() int { return len(f.tiles) }

// TileGrid returns the padded local grid of local tile i.
func (f *Field) TileGrid(i int) *grid.Grid { return f.tiles[i] }

// GlobalBounds returns the global interior region of local tile i.
func (f *Field) GlobalBounds(i int) grid.Rect { return f.bounds[i] }

// InteriorRect returns the interior region of local tile i within its
// padded grid (a cached Rect — treat as read-only).
func (f *Field) InteriorRect(i int) grid.Rect {
	return f.interior[i]
}

// LocalTileOf returns the local index of the tile with the given
// coordinates, or −1 when this rank does not own it.
func (f *Field) LocalTileOf(tile []int) int {
	i, ok := f.index[numutil.RankOf(tile, f.Env.M.Gamma())]
	if !ok {
		return -1
	}
	return i
}

// FillFunc initializes every interior cell from its global coordinates.
func (f *Field) FillFunc(fn func(global []int) float64) {
	for i, g := range f.tiles {
		b := f.bounds[i]
		d := len(b.Lo)
		global := make([]int, d)
		interior := f.InteriorRect(i)
		data := g.Data()
		g.EachLine(interior, d-1, func(l grid.Line) {
			f.localToGlobal(i, l.Base, global)
			off := l.Base
			for k := 0; k < l.N; k++ {
				data[off] = fn(global)
				global[d-1]++
				off += l.Stride
			}
			global[d-1] -= l.N
		})
	}
}

// localToGlobal converts a storage offset of local tile i into global
// coordinates (writing into dst).
func (f *Field) localToGlobal(i, offset int, dst []int) {
	numutil.CoordOf(offset, f.shapes[i], dst)
	b := f.bounds[i]
	for k := range dst {
		dst[k] = dst[k] - f.Depth + b.Lo[k]
	}
}

// SumSquares returns Σv² over the rank's interiors (a reduction input).
func (f *Field) SumSquares() float64 {
	s := 0.0
	for i, g := range f.tiles {
		data := g.Data()
		d := g.Dims()
		g.EachLine(f.InteriorRect(i), d-1, func(l grid.Line) {
			off := l.Base
			for k := 0; k < l.N; k++ {
				v := data[off]
				s += v * v
				off += l.Stride
			}
		})
	}
	return s
}

// Reserved message-tag space of the strict halo exchange (see
// xport.ReserveTags). Sweep carries are tagged by the compiled schedule
// itself, from the shared plan.SweepTags reservation — both runtimes now
// draw sweep tags from the same space, which is safe because a machine
// never mixes dist and dmem sweeps.
var strictHaloTags = xport.ReserveTags("dmem/halo", 1<<25, 64)

// localRect converts a move's global region into local tile i's padded
// coordinates (interior starts at Depth). Scratch-backed: the returned Rect
// is valid until the next call.
func (f *Field) localRect(i int, g grid.Rect) grid.Rect {
	d := len(g.Lo)
	if cap(f.lrLo) < d {
		f.lrLo, f.lrHi = make([]int, d), make([]int, d)
	}
	lo, hi := f.lrLo[:d], f.lrHi[:d]
	b := f.bounds[i]
	for k := 0; k < d; k++ {
		lo[k] = g.Lo[k] - b.Lo[k] + f.Depth
		hi[k] = g.Hi[k] - b.Lo[k] + f.Depth
	}
	return grid.RectOf(lo, hi)
}

// Extract packs the move's region (an interior face of the sending tile)
// into dst — the redist.Binding hook of the strict storage model.
func (f *Field) Extract(m redist.Move, dst []float64) {
	i := f.LocalTileOf(m.FromCoord)
	f.tiles[i].ExtractInto(f.localRect(i, m.Rect), dst)
}

// Inject unpacks src into the move's region (a halo shell of the receiving
// tile, which the padded local grid covers).
func (f *Field) Inject(m redist.Move, src []float64) {
	i := f.LocalTileOf(m.ToCoord)
	f.tiles[i].InjectFrom(f.localRect(i, m.Rect), src)
}

// ExchangeHalos fills the field's halo shells with real face data from the
// neighboring processors: one aggregated payload message per direction per
// dimension (the neighbor property gives a single peer each way), via the
// sim.Exchange neighbor primitive under the dmem/halo tag space. The
// schedule is compiled once per field by redist.CompileHalo and executed
// with the Field itself as the storage binding — the historical hand-built
// pack/exchange/unpack loop, replayed bit for bit as a special case of the
// generalized redistribution engine. Payloads cycle through the machine's
// buffer pool, so steady-state exchanges allocate nothing.
func (f *Field) ExchangeHalos(r xport.Transport) {
	if f.Depth == 0 || f.Env.M.P() == 1 {
		return
	}
	f.ensureHaloPlan()
	redist.Execute(r, f.haloPlan, redist.ExecOpts{
		PerMessage: f.Env.Overhead.PerMessage, Bind: f,
	})
}

// ensureHaloPlan lazily compiles the field's halo redistribution schedule.
func (f *Field) ensureHaloPlan() {
	if f.haloPlan != nil {
		return
	}
	pl, err := redist.CompileHalo(redist.HaloSpec{
		M: f.Env.M, Eta: f.Env.Eta, Depth: f.Depth, Tags: strictHaloTags,
	})
	if err != nil {
		panic("dmem: " + err.Error())
	}
	f.haloPlan = pl
}

// PostHaloRecvs posts the receives of the NEXT ExchangeHalosPiped call as
// nonblocking requests (halo pipelining across timesteps, DESIGN.md §14).
// Call it once the current step's field updates are in flight — typically
// right before the add phase — and hand the result to the next step's
// ExchangeHalosPiped. Returns nil when the field has no halo traffic.
func (f *Field) PostHaloRecvs(r xport.Transport) []xport.Request {
	if f.Depth == 0 || f.Env.M.P() == 1 {
		return nil
	}
	f.ensureHaloPlan()
	return redist.PostRecvs(r, f.haloPlan)
}

// ExchangeHalosPiped is ExchangeHalos consuming receive requests preposted
// by an earlier PostHaloRecvs; pre == nil falls back to the blocking
// exchange. The halo data and virtual time are identical either way — the
// preposting is the wire discipline that lets a real MPI runtime overlap
// the previous step's tail with the next step's halo traffic.
func (f *Field) ExchangeHalosPiped(r xport.Transport, pre []xport.Request) {
	if f.Depth == 0 || f.Env.M.P() == 1 {
		return
	}
	f.ensureHaloPlan()
	redist.Execute(r, f.haloPlan, redist.ExecOpts{
		PerMessage: f.Env.Overhead.PerMessage, Bind: f, Preposted: pre,
	})
}

// GatherToRoot reconstructs the global array on rank 0 from every rank's
// interiors, over the sim.GatherTo collective (the default linear
// algorithm reproduces the historical send-to-root loop exactly; alg
// selects an alternative). All ranks must call it; non-root ranks return
// nil.
func GatherToRoot(r xport.Transport, f *Field, alg xport.Alg) *grid.Grid {
	env := f.Env
	total := 0
	for i := range f.tiles {
		total += f.interior[i].Size()
	}
	payload := make([]float64, total)
	pos := 0
	for i := range f.tiles {
		size := f.interior[i].Size()
		f.tiles[i].ExtractInto(f.interior[i], payload[pos:pos+size])
		pos += size
	}
	parts := r.GatherTo(0, 8*len(payload), payload, xport.CollOpts{Alg: alg})
	if r.Rank() != 0 {
		return nil
	}
	out := grid.New(env.Eta...)
	for q := 0; q < env.M.P(); q++ {
		pos := 0
		for _, tile := range env.M.TilesOf(q) {
			lo, hi := env.M.TileBounds(env.Eta, tile)
			rect := grid.RectOf(lo, hi)
			size := rect.Size()
			out.Inject(rect, parts[q][pos:pos+size])
			pos += size
		}
	}
	return out
}

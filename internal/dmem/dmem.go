// Package dmem provides strict distributed-memory execution: every rank
// owns private copies of its tiles (padded with halo shells), all boundary
// data moves in real message payloads, and no rank ever reads another
// rank's storage. It is the fully faithful counterpart of internal/dist's
// shared-storage data mode (where messages carry carries and establish
// ordering, but stencil reads go through the common backing arrays).
//
// The cost: extra memory for per-tile copies and pack/unpack work. The
// payoff: an execution model identical to an MPI program's, validated
// elementwise against the serial references by gathering the distributed
// state back to rank 0 over messages.
package dmem

import (
	"fmt"

	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/numutil"
	"genmp/internal/sim"
)

// Field is one rank's private storage for one distributed array: a padded
// local grid per owned tile. Depth is the halo width (0 for arrays that
// never feed a stencil).
type Field struct {
	Env   *dist.Env
	Rank  int
	Depth int
	// tiles[i] is the padded local grid of the i-th tile in the rank's
	// canonical (row-major) tile order; bounds[i] its global interior.
	tiles  []*grid.Grid
	bounds []grid.Rect
	// shapes[i] is tiles[i]'s padded shape and interior[i] its interior
	// region within the padded grid — cached because the per-line hot paths
	// (coordinate conversion, sweep geometry) would otherwise re-derive
	// them per call. Callers must treat both as read-only.
	shapes   [][]int
	interior []grid.Rect
	// index maps a tile's row-major rank in the tile grid to its position
	// in tiles (or −1 when not owned by this rank).
	index map[int]int
	// halo caches the exchange plan per (dim, direction); built lazily on
	// the first ExchangeHalos call and keyed dim*2+s.
	halo map[int]*haloDirPlan
}

// haloFace is one tile's face in a halo exchange: the region within the
// padded local grid and its flat size.
type haloFace struct {
	tile int
	rect grid.Rect
	size int
}

// haloDirPlan caches one (dim, step) exchange: the peer ranks, the faces
// to pack, and the halo shells to fill.
type haloDirPlan struct {
	dst, src  int
	send      []haloFace
	recv      []haloFace
	sendTotal int
}

// NewField allocates the rank's tile storage for one array.
func NewField(env *dist.Env, rank, depth int) *Field {
	if depth < 0 {
		panic("dmem: negative halo depth")
	}
	f := &Field{Env: env, Rank: rank, Depth: depth, index: map[int]int{}}
	gamma := env.M.Gamma()
	for _, tile := range env.M.TilesOf(rank) {
		lo, hi := env.M.TileBounds(env.Eta, tile)
		shape := make([]int, len(lo))
		for i := range shape {
			shape[i] = hi[i] - lo[i] + 2*depth
		}
		f.index[numutil.RankOf(tile, gamma)] = len(f.tiles)
		f.tiles = append(f.tiles, grid.New(shape...))
		f.bounds = append(f.bounds, grid.RectOf(lo, hi))
		f.shapes = append(f.shapes, shape)
		ilo := make([]int, len(lo))
		ihi := make([]int, len(lo))
		for k := range ilo {
			ilo[k] = depth
			ihi[k] = depth + hi[k] - lo[k]
		}
		f.interior = append(f.interior, grid.RectOf(ilo, ihi))
	}
	return f
}

// NumTiles returns the number of locally stored tiles.
func (f *Field) NumTiles() int { return len(f.tiles) }

// TileGrid returns the padded local grid of local tile i.
func (f *Field) TileGrid(i int) *grid.Grid { return f.tiles[i] }

// GlobalBounds returns the global interior region of local tile i.
func (f *Field) GlobalBounds(i int) grid.Rect { return f.bounds[i] }

// InteriorRect returns the interior region of local tile i within its
// padded grid (a cached Rect — treat as read-only).
func (f *Field) InteriorRect(i int) grid.Rect {
	return f.interior[i]
}

// LocalTileOf returns the local index of the tile with the given
// coordinates, or −1 when this rank does not own it.
func (f *Field) LocalTileOf(tile []int) int {
	i, ok := f.index[numutil.RankOf(tile, f.Env.M.Gamma())]
	if !ok {
		return -1
	}
	return i
}

// FillFunc initializes every interior cell from its global coordinates.
func (f *Field) FillFunc(fn func(global []int) float64) {
	for i, g := range f.tiles {
		b := f.bounds[i]
		d := len(b.Lo)
		global := make([]int, d)
		interior := f.InteriorRect(i)
		data := g.Data()
		g.EachLine(interior, d-1, func(l grid.Line) {
			f.localToGlobal(i, l.Base, global)
			off := l.Base
			for k := 0; k < l.N; k++ {
				data[off] = fn(global)
				global[d-1]++
				off += l.Stride
			}
			global[d-1] -= l.N
		})
	}
}

// localToGlobal converts a storage offset of local tile i into global
// coordinates (writing into dst).
func (f *Field) localToGlobal(i, offset int, dst []int) {
	numutil.CoordOf(offset, f.shapes[i], dst)
	b := f.bounds[i]
	for k := range dst {
		dst[k] = dst[k] - f.Depth + b.Lo[k]
	}
}

// SumSquares returns Σv² over the rank's interiors (a reduction input).
func (f *Field) SumSquares() float64 {
	s := 0.0
	for i, g := range f.tiles {
		data := g.Data()
		d := g.Dims()
		g.EachLine(f.InteriorRect(i), d-1, func(l grid.Line) {
			off := l.Base
			for k := 0; k < l.N; k++ {
				v := data[off]
				s += v * v
				off += l.Stride
			}
		})
	}
	return s
}

// haloFaceRect returns, within local tile i's padded grid, either the
// interior face of width w on the given side of dim (src = true: the data
// to send) or the halo shell of width w beyond that side (src = false: the
// cells to fill on receive).
func (f *Field) haloFaceRect(i, dim, side, w int, src bool) grid.Rect {
	interior := f.InteriorRect(i)
	lo := numutil.CopyInts(interior.Lo)
	hi := numutil.CopyInts(interior.Hi)
	if side > 0 {
		if src {
			lo[dim] = hi[dim] - w
		} else {
			lo[dim] = hi[dim]
			hi[dim] = lo[dim] + w
		}
	} else {
		if src {
			hi[dim] = lo[dim] + w
		} else {
			hi[dim] = lo[dim]
			lo[dim] = hi[dim] - w
		}
	}
	return grid.RectOf(lo, hi)
}

// Reserved message-tag space of the strict halo exchange (see
// sim.ReserveTags). Sweep carries are tagged by the compiled schedule
// itself, from the shared plan.SweepTags reservation — both runtimes now
// draw sweep tags from the same space, which is safe because a machine
// never mixes dist and dmem sweeps.
var strictHaloTags = sim.ReserveTags("dmem/halo", 1<<25, 64)

// haloDir returns the cached plan for the exchange along dim in direction
// step (s is the tag index of the direction), building it on first use.
func (f *Field) haloDir(dim, s, step int) *haloDirPlan {
	key := dim*2 + s
	if f.halo == nil {
		f.halo = map[int]*haloDirPlan{}
	}
	if p, ok := f.halo[key]; ok {
		return p
	}
	env := f.Env
	gamma := env.M.Gamma()
	p := &haloDirPlan{
		dst: env.M.NeighborProc(f.Rank, dim, step),
		src: env.M.NeighborProc(f.Rank, dim, -step),
	}
	// Faces of every owned tile with an in-grid neighbor in direction
	// step, in canonical tile order; halo shells on the −step side of the
	// tiles with a neighbor that way (the shifted bijection preserves
	// canonical order and cross-sections).
	for i := range f.tiles {
		tile := env.M.TilesOf(f.Rank)[i]
		if n := tile[dim] + step; n >= 0 && n < gamma[dim] {
			rect := f.haloFaceRect(i, dim, step, f.Depth, true)
			p.send = append(p.send, haloFace{tile: i, rect: rect, size: rect.Size()})
			p.sendTotal += rect.Size()
		}
		if n := tile[dim] - step; n >= 0 && n < gamma[dim] {
			rect := f.haloFaceRect(i, dim, -step, f.Depth, false)
			p.recv = append(p.recv, haloFace{tile: i, rect: rect, size: rect.Size()})
		}
	}
	f.halo[key] = p
	return p
}

// ExchangeHalos fills the field's halo shells with real face data from the
// neighboring processors: one aggregated payload message per direction per
// dimension (the neighbor property gives a single peer each way), via the
// sim.Exchange neighbor primitive under the dmem/halo tag space. The face
// geometry comes from a lazily built per-field plan, and payloads cycle
// through the machine's buffer pool, so steady-state exchanges allocate
// nothing.
func (f *Field) ExchangeHalos(r *sim.Rank) {
	if f.Depth == 0 || f.Env.M.P() == 1 {
		return
	}
	env := f.Env
	gamma := env.M.Gamma()
	for dim := range env.Eta {
		if gamma[dim] == 1 {
			continue
		}
		for s, step := range []int{1, -1} {
			p := f.haloDir(dim, s, step)
			payload := r.GetPayload(p.sendTotal)
			pos := 0
			for _, fc := range p.send {
				f.tiles[fc.tile].ExtractInto(fc.rect, payload[pos:pos+fc.size])
				pos += fc.size
			}
			msg := r.Exchange(p.dst, p.src, strictHaloTags.Tag(dim*2+s),
				sim.Msg{Payload: payload}, env.Overhead.PerMessage)
			pos = 0
			for _, fc := range p.recv {
				f.tiles[fc.tile].InjectFrom(fc.rect, msg.Payload[pos:pos+fc.size])
				pos += fc.size
			}
			if pos != len(msg.Payload) {
				panic(fmt.Sprintf("dmem: halo exchange misaligned: consumed %d of %d values (dim %d step %+d)",
					pos, len(msg.Payload), dim, step))
			}
			r.PutPayload(msg.Payload)
		}
	}
}

// GatherToRoot reconstructs the global array on rank 0 from every rank's
// interiors, over the sim.GatherTo collective (the default linear
// algorithm reproduces the historical send-to-root loop exactly; alg
// selects an alternative). All ranks must call it; non-root ranks return
// nil.
func GatherToRoot(r *sim.Rank, f *Field, alg sim.Alg) *grid.Grid {
	env := f.Env
	total := 0
	for i := range f.tiles {
		total += f.interior[i].Size()
	}
	payload := make([]float64, total)
	pos := 0
	for i := range f.tiles {
		size := f.interior[i].Size()
		f.tiles[i].ExtractInto(f.interior[i], payload[pos:pos+size])
		pos += size
	}
	parts := r.GatherTo(0, 8*len(payload), payload, sim.CollOpts{Alg: alg})
	if r.ID != 0 {
		return nil
	}
	out := grid.New(env.Eta...)
	for q := 0; q < env.M.P(); q++ {
		pos := 0
		for _, tile := range env.M.TilesOf(q) {
			lo, hi := env.M.TileBounds(env.Eta, tile)
			rect := grid.RectOf(lo, hi)
			size := rect.Size()
			out.Inject(rect, parts[q][pos:pos+size])
			pos += size
		}
	}
	return out
}

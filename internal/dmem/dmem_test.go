package dmem

import (
	"math"
	"math/rand"
	"testing"

	"genmp/internal/adi"
	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/nas"
	"genmp/internal/numutil"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

func testMachine(p int) *sim.Machine {
	return sim.NewMachine(p,
		sim.Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 1e-6, RecvOverhead: 1e-6},
		sim.CPU{FlopsPerSec: 250e6})
}

func mustEnv(t *testing.T, p int, gamma, eta []int) *dist.Env {
	t.Helper()
	m, err := core.NewGeneralized(p, gamma)
	if err != nil {
		t.Fatal(err)
	}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestFieldLayout(t *testing.T) {
	env := mustEnv(t, 4, []int{4, 4, 1}, []int{16, 16, 4})
	f := NewField(env, 0, 2)
	if f.NumTiles() != 4 {
		t.Fatalf("rank 0 owns %d tiles, want 4", f.NumTiles())
	}
	for i := 0; i < f.NumTiles(); i++ {
		b := f.GlobalBounds(i)
		shape := f.TileGrid(i).Shape()
		for k := range shape {
			if shape[k] != b.Hi[k]-b.Lo[k]+4 {
				t.Fatalf("tile %d shape %v vs bounds %v (depth 2)", i, shape, b)
			}
		}
		interior := f.InteriorRect(i)
		if interior.Size() != b.Size() {
			t.Fatalf("tile %d interior %d cells vs bounds %d", i, interior.Size(), b.Size())
		}
	}
	// Every owned tile resolvable; foreign tiles not.
	owned := 0
	for _, tile := range env.M.TilesOf(0) {
		if f.LocalTileOf(tile) < 0 {
			t.Fatalf("owned tile %v not resolvable", tile)
		}
		owned++
	}
	if owned != 4 {
		t.Fatalf("owned = %d", owned)
	}
	for _, tile := range env.M.TilesOf(1) {
		if f.LocalTileOf(tile) >= 0 {
			t.Fatalf("foreign tile %v resolvable on rank 0", tile)
		}
	}
}

func TestFillFuncUsesGlobalCoordinates(t *testing.T) {
	env := mustEnv(t, 4, []int{4, 4, 1}, []int{8, 8, 4})
	fields := make([]*Field, 4)
	// Gather all ranks' fields filled with a coordinate hash; rebuild and
	// compare against a directly built global grid.
	var rebuilt *grid.Grid
	_, err := testMachine(4).Run(func(r *sim.Rank) {
		f := NewField(env, r.ID, 1)
		f.FillFunc(func(g []int) float64 { return float64(100*g[0] + 10*g[1] + g[2]) })
		fields[r.ID] = f
		if g := GatherToRoot(r, f, sim.AlgAuto); g != nil {
			rebuilt = g
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := grid.New(8, 8, 4)
	want.FillFunc(func(g []int) float64 { return float64(100*g[0] + 10*g[1] + g[2]) })
	if d := grid.MaxAbsDiff(want, rebuilt); d != 0 {
		t.Fatalf("gathered grid differs by %g", d)
	}
}

// haloShellRect returns tile i's halo shell of width w beyond the given
// side of dim, in padded local coordinates — the geometry the hand-built
// halo planner used before redist.CompileHalo took over, kept here as the
// independent oracle the exchange is checked against.
func haloShellRect(f *Field, i, dim, side, w int) grid.Rect {
	interior := f.InteriorRect(i)
	lo := numutil.CopyInts(interior.Lo)
	hi := numutil.CopyInts(interior.Hi)
	if side > 0 {
		lo[dim] = hi[dim]
		hi[dim] = lo[dim] + w
	} else {
		hi[dim] = lo[dim]
		lo[dim] = hi[dim] - w
	}
	return grid.RectOf(lo, hi)
}

func TestHaloExchangeDeliversNeighborFaces(t *testing.T) {
	env := mustEnv(t, 4, []int{4, 4, 1}, []int{8, 8, 4})
	_, err := testMachine(4).Run(func(r *sim.Rank) {
		f := NewField(env, r.ID, 2)
		f.FillFunc(func(g []int) float64 { return float64(100*g[0] + 10*g[1] + g[2]) })
		f.ExchangeHalos(r)
		// After the exchange, every halo cell adjacent to an in-grid
		// neighbor must hold the neighbor's value = the same global
		// formula.
		for i := 0; i < f.NumTiles(); i++ {
			g := f.TileGrid(i)
			b := f.GlobalBounds(i)
			d := g.Dims()
			global := make([]int, d)
			for dim := 0; dim < 2; dim++ { // dims 0,1 are cut; dim 2 is not
				for _, side := range []int{-1, 1} {
					// Skip domain-boundary sides.
					if side < 0 && b.Lo[dim] == 0 {
						continue
					}
					if side > 0 && b.Hi[dim] == env.Eta[dim] {
						continue
					}
					rect := haloShellRect(f, i, dim, side, 2)
					g.EachLine(rect, d-1, func(l grid.Line) {
						f.localToGlobal(i, l.Base, global)
						off := l.Base
						for k := 0; k < l.N; k++ {
							want := float64(100*global[0] + 10*global[1] + global[2])
							if got := g.Data()[off]; got != want {
								panic("halo value mismatch")
							}
							global[d-1]++
							off += l.Stride
						}
						global[d-1] -= l.N
					})
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStrictSweepMatchesSerial(t *testing.T) {
	// A tridiagonal sweep with strictly private storage must reproduce the
	// serial whole-line solve elementwise.
	p := 4
	gamma := []int{4, 4, 1}
	eta := []int{12, 12, 6}
	env := mustEnv(t, p, gamma, eta)
	rng := rand.New(rand.NewSource(7))

	// Global reference system.
	gs := make([]*grid.Grid, 4)
	for i := range gs {
		gs[i] = grid.New(eta...)
	}
	gs[0].FillFunc(func(idx []int) float64 {
		if idx[0] == 0 {
			return 0
		}
		return rng.Float64()*2 - 1
	})
	gs[1].FillFunc(func([]int) float64 { return 4 + rng.Float64() })
	gs[2].FillFunc(func(idx []int) float64 {
		if idx[0] == eta[0]-1 {
			return 0
		}
		return rng.Float64()*2 - 1
	})
	gs[3].FillFunc(func([]int) float64 { return rng.Float64()*10 - 5 })

	want := make([]*grid.Grid, 4)
	for i, g := range gs {
		want[i] = g.Clone()
	}
	n := eta[0]
	chunk := make([][]float64, 4)
	for v := range chunk {
		chunk[v] = make([]float64, n)
	}
	want[0].EachLine(want[0].Bounds(), 0, func(l grid.Line) {
		for v, g := range want {
			g.Gather(l, chunk[v])
		}
		sweep.ChunkedSolve(sweep.Tridiag{}, chunk, nil)
		for v, g := range want {
			g.Scatter(l, chunk[v])
		}
	})

	var rebuilt *grid.Grid
	_, err := testMachine(p).Run(func(r *sim.Rank) {
		fields := make([]*Field, 4)
		for v := range fields {
			fields[v] = NewField(env, r.ID, 0)
			v := v
			fields[v].FillFunc(func(g []int) float64 { return gs[v].At(g...) })
		}
		RunSweep(r, sweep.Tridiag{}, fields, 0)
		if g := GatherToRoot(r, fields[3], sim.AlgAuto); g != nil {
			rebuilt = g
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(want[3], rebuilt); d > 1e-10 {
		t.Fatalf("strict sweep differs from serial by %g", d)
	}
}

func TestStrictSPMatchesSerial(t *testing.T) {
	cases := []struct {
		p     int
		gamma []int
		eta   []int
	}{
		{4, []int{2, 2, 2}, []int{12, 12, 12}},
		{8, []int{4, 4, 2}, []int{12, 12, 12}},
		{6, []int{6, 6, 1}, []int{12, 13, 7}},
	}
	for _, c := range cases {
		steps := 3
		want := nas.InitialState(c.eta)
		nas.SerialSolve(want, steps)

		env := mustEnv(t, c.p, c.gamma, c.eta)
		got, res, err := RunSP(env, testMachine(c.p), steps)
		if err != nil {
			t.Fatalf("p=%d: %v", c.p, err)
		}
		if got == nil {
			t.Fatal("no gathered grid")
		}
		if d := grid.MaxAbsDiff(want, got); d > 1e-9 {
			t.Errorf("p=%d γ=%v: strict SP differs from serial by %g", c.p, c.gamma, d)
		}
		if res.TotalBytes() == 0 {
			t.Error("strict SP moved no bytes")
		}
	}
}

func TestStrictADIMatchesSerial(t *testing.T) {
	cases := []struct {
		p     int
		gamma []int
		eta   []int
	}{
		{4, []int{2, 2, 2}, []int{10, 9, 8}},
		{8, []int{4, 4, 2}, []int{12, 12, 8}},
		{5, []int{5, 5}, []int{15, 11}},
	}
	for _, c := range cases {
		pb := adi.Problem{Eta: c.eta, Alpha: 0.3, Steps: 3}
		want := pb.InitialCondition()
		pb.SerialSolve(want)

		env := mustEnv(t, c.p, c.gamma, c.eta)
		got, res, err := RunADI(pb, env, testMachine(c.p))
		if err != nil {
			t.Fatalf("p=%d: %v", c.p, err)
		}
		if d := grid.MaxAbsDiff(want, got); d > 1e-9 {
			t.Errorf("p=%d γ=%v: strict ADI differs from serial by %g", c.p, c.gamma, d)
		}
		if res.Makespan <= 0 {
			t.Error("zero makespan")
		}
	}
}

func TestStrictBTMatchesSerial(t *testing.T) {
	p := 4
	gamma := []int{2, 2, 2}
	eta := []int{10, 10, 10}
	steps := 2
	want := nas.InitialState(eta)
	nas.BTSerialSolve(want, steps)

	env := mustEnv(t, p, gamma, eta)
	got, res, err := RunBT(env, testMachine(p), steps)
	if err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(want, got); d > 1e-8 {
		t.Errorf("strict BT differs from serial by %g", d)
	}
	if res.TotalBytes() == 0 {
		t.Error("strict BT moved no bytes")
	}
}

func TestStrictSPRejectsThinTiles(t *testing.T) {
	env := mustEnv(t, 8, []int{8, 8, 1}, []int{8, 8, 4}) // tiles 1 cell thick
	if _, _, err := RunSP(env, testMachine(8), 1); err == nil {
		t.Error("tiles thinner than the halo depth should be rejected")
	}
}

func TestStrictVersusSharedTrafficParity(t *testing.T) {
	// Strict mode moves real halo payloads; the shared-mode run models the
	// same byte counts. Carry bytes must agree exactly; total strict bytes
	// are at least the modeled ones (gather-to-root adds more).
	p := 4
	gamma := []int{2, 2, 2}
	eta := []int{12, 12, 12}
	env := mustEnv(t, p, gamma, eta)
	steps := 2

	u := nas.InitialState(eta)
	resShared, err := nas.Run(env, testMachine(p), steps, u)
	if err != nil {
		t.Fatal(err)
	}
	_, resStrict, err := RunSP(env, testMachine(p), steps)
	if err != nil {
		t.Fatal(err)
	}
	if resStrict.TotalBytes() < resShared.TotalBytes() {
		t.Errorf("strict bytes (%d) below shared-mode modeled bytes (%d)",
			resStrict.TotalBytes(), resShared.TotalBytes())
	}
	if math.Abs(resStrict.Makespan-resShared.Makespan) > 0.5*resShared.Makespan {
		t.Errorf("strict makespan %g wildly differs from shared %g", resStrict.Makespan, resShared.Makespan)
	}
}

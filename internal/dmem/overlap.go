// Boundary-first overlapped phase execution for the strict runtime — the
// dmem mirror of dist's overlapPhase (DESIGN.md §14). A split phase waits
// only the boundary carries, solves the boundary lines, posts their carry
// with Isend, preposts the next phase's receives, and solves the interior
// while the messages fly. Field data is bit-identical to the strict
// schedule: the batched kernels are bit-equal under any panel grouping, and
// the split never reorders the canonical line order.
package dmem

import (
	"genmp/internal/plan"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

// dmPassCtx bundles one pass invocation's resolved locals shared by the
// strict loop and the overlapped phase executor.
type dmPassCtx struct {
	binds        [][]tileBind
	backward     bool
	carryLen     int
	flopsPerElem float64
	batch        int
	nv           int
	bs           sweep.BatchSolver
	batched      bool
	touched      []bool
	written      []bool
	chunk        [][]float64
	views        [][]float64
}

// overlapPhase executes one split phase of the strict runtime. preB/preI
// are receive requests preposted by the previous phase (nil to post here);
// the return values are the next phase's preposted requests.
func (sr *SweepRunner) overlapPhase(r *sim.Rank, pc *dmPassCtx, pp *plan.Pass, k int, preB, preI *sim.Request) (nextB, nextI *sim.Request) {
	env := sr.Fields[0].Env
	ph := &pp.Phases[k]
	carryLen := pc.carryLen
	bnd, inter := ph.InteriorBoundary()

	var reqB, reqI *sim.Request
	if ph.RecvFrom >= 0 && carryLen > 0 {
		reqB, reqI = preB, preI
		if reqB == nil {
			reqB = r.Irecv(ph.RecvFrom, ph.RecvTag)
			reqI = r.Irecv(ph.RecvFrom, ph.InteriorRecvTag)
		}
	}
	var outB, outI []float64
	if ph.SendTo >= 0 && carryLen > 0 {
		outB = r.GetPayload(bnd * carryLen)
		outI = r.GetPayload(inter * carryLen)
	}

	var inB []float64
	if reqB != nil {
		msg := reqB.Wait()
		r.Compute(env.Overhead.PerMessage)
		inB = msg.Payload
	}
	elems := sr.solveLineRange(r, pc, ph, k, 0, bnd, inB, outB)
	if inB != nil {
		r.PutPayload(inB)
	}
	r.ComputeFlops(pc.flopsPerElem * float64(elems) * env.Overhead.ComputeFactor)
	var sendB, sendI *sim.Request
	if ph.SendTo >= 0 && carryLen > 0 {
		r.Compute(env.Overhead.PerMessage)
		sendB = r.Isend(ph.SendTo, ph.SendTag, sim.Msg{Bytes: bnd * carryLen * 8, Payload: outB})
	}
	if k+1 < len(pp.Phases) {
		if np := &pp.Phases[k+1]; np.Boundary > 0 && np.RecvFrom >= 0 && carryLen > 0 {
			nextB = r.Irecv(np.RecvFrom, np.RecvTag)
			nextI = r.Irecv(np.RecvFrom, np.InteriorRecvTag)
		}
	}
	var inI []float64
	if reqI != nil {
		msg := reqI.Wait()
		r.Compute(env.Overhead.PerMessage)
		inI = msg.Payload
	}
	elems = sr.solveLineRange(r, pc, ph, k, bnd, ph.Lines, inI, outI)
	if inI != nil {
		r.PutPayload(inI)
	}
	r.ComputeFlops(pc.flopsPerElem * float64(elems) * env.Overhead.ComputeFactor)
	if ph.SendTo >= 0 && carryLen > 0 {
		r.Compute(env.Overhead.PerMessage)
		sendI = r.Isend(ph.SendTo, ph.InteriorSendTag, sim.Msg{Bytes: inter * carryLen * 8, Payload: outI})
	}
	if sendB != nil {
		sendB.Wait()
	}
	if sendI != nil {
		sendI.Wait()
	}
	return nextB, nextI
}

// solveLineRange computes the phase's canonical lines in [gLo, gHi) over
// this rank's bound tile storage, clipping each tile to the range.
// cInBuf/cOutBuf hold the range's carries indexed from gLo. Tiles
// intersecting the range pay PerTileVisit per visit; the caller charges the
// flops so boundary and interior compute appear as separate intervals.
func (sr *SweepRunner) solveLineRange(r *sim.Rank, pc *dmPassCtx, ph *plan.Phase, k, gLo, gHi int, cInBuf, cOutBuf []float64) int {
	fields := sr.Fields
	env := fields[0].Env
	carryLen := pc.carryLen
	elements := 0
	for ti := range ph.Tiles {
		t := &ph.Tiles[ti]
		lo := max(gLo, t.LineOff)
		hi := min(gHi, t.LineOff+t.Lines)
		if lo >= hi {
			continue
		}
		tb := &pc.binds[k][ti]
		r.Compute(env.Overhead.PerTileVisit)
		elements += (hi - lo) * t.ChunkLen
		tLo, tHi := lo-t.LineOff, hi-t.LineOff
		if pc.batched {
			for s0 := tLo; s0 < tHi; s0 += pc.batch {
				nb := min(pc.batch, tHi-s0)
				panels := sr.pan.Panels(pc.nv, nb*t.ChunkLen)
				for v, f := range fields {
					if sweep.MaskOn(pc.touched, v) {
						f.TileGrid(tb.local).GatherLines(tb.geom[v][s0:s0+nb], panels[v])
					}
				}
				var cIn, cOut []float64
				c0 := t.LineOff + s0 - gLo
				if cInBuf != nil {
					cIn = cInBuf[c0*carryLen : (c0+nb)*carryLen]
				}
				if cOutBuf != nil {
					cOut = cOutBuf[c0*carryLen : (c0+nb)*carryLen]
				}
				if pc.backward {
					pc.bs.BackwardBatch(panels, nb, cIn, cOut)
				} else {
					pc.bs.ForwardBatch(panels, nb, cIn, cOut)
				}
				for v, f := range fields {
					if sweep.MaskOn(pc.written, v) {
						f.TileGrid(tb.local).ScatterLines(tb.geom[v][s0:s0+nb], panels[v])
					}
				}
			}
			continue
		}
		for li := tLo; li < tHi; li++ {
			for v, f := range fields {
				f.TileGrid(tb.local).Gather(tb.geom[v][li], pc.chunk[v][:t.ChunkLen])
				pc.views[v] = pc.chunk[v][:t.ChunkLen]
			}
			var cIn, cOut []float64
			c0 := t.LineOff + li - gLo
			if cInBuf != nil {
				cIn = cInBuf[c0*carryLen : (c0+1)*carryLen]
			}
			if cOutBuf != nil {
				cOut = cOutBuf[c0*carryLen : (c0+1)*carryLen]
			}
			if pc.backward {
				sr.Solver.Backward(pc.views, cIn, cOut)
			} else {
				sr.Solver.Forward(pc.views, cIn, cOut)
			}
			for v, f := range fields {
				f.TileGrid(tb.local).Scatter(tb.geom[v][li], pc.chunk[v][:t.ChunkLen])
			}
		}
	}
	return elements
}

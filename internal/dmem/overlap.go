// Boundary-first overlapped phase execution for the strict runtime — the
// dmem adapter over the shared executor dist.OverlapPhase (DESIGN.md §14).
// A split phase waits only the boundary carries, solves the boundary
// lines, posts their carry with Isend, preposts the next phase's receives,
// and solves the interior while the messages fly. Field data is
// bit-identical to the strict schedule: the batched kernels are bit-equal
// under any panel grouping, and the split never reorders the canonical
// line order.
package dmem

import (
	"genmp/internal/dist"
	"genmp/internal/plan"
	"genmp/internal/sweep"
	"genmp/internal/xport"
)

// dmPassCtx bundles one pass invocation's resolved locals shared by the
// strict loop and the overlapped phase executor.
type dmPassCtx struct {
	binds        [][]tileBind
	backward     bool
	carryLen     int
	flopsPerElem float64
	batch        int
	nv           int
	bs           sweep.BatchSolver
	batched      bool
	touched      []bool
	written      []bool
	chunk        [][]float64
	views        [][]float64
}

// overlapPhase adapts the strict runtime's solve kernel to the shared
// executor. preB/preI are receive requests preposted by the previous phase
// (nil to post here); the return values are the next phase's preposted
// requests.
func (sr *SweepRunner) overlapPhase(r xport.Transport, pc *dmPassCtx, pp *plan.Pass, k int, preB, preI xport.Request) (nextB, nextI xport.Request) {
	env := sr.Fields[0].Env
	ph := &pp.Phases[k]
	return dist.OverlapPhase(r, dist.OverlapPhaseSpec{
		Pass: pp, Phase: k,
		PerMessage: env.Overhead.PerMessage,
		Payloads:   true,
		Solve: func(gLo, gHi int, cIn, cOut []float64) {
			elems := sr.solveLineRange(r, pc, ph, k, gLo, gHi, cIn, cOut)
			r.ComputeFlops(pc.flopsPerElem * float64(elems) * env.Overhead.ComputeFactor)
		},
	}, preB, preI)
}

// solveLineRange computes the phase's canonical lines in [gLo, gHi) over
// this rank's bound tile storage, clipping each tile to the range.
// cInBuf/cOutBuf hold the range's carries indexed from gLo. Tiles
// intersecting the range pay PerTileVisit per visit; the caller charges the
// flops so boundary and interior compute appear as separate intervals.
func (sr *SweepRunner) solveLineRange(r xport.Transport, pc *dmPassCtx, ph *plan.Phase, k, gLo, gHi int, cInBuf, cOutBuf []float64) int {
	fields := sr.Fields
	env := fields[0].Env
	carryLen := pc.carryLen
	elements := 0
	for ti := range ph.Tiles {
		t := &ph.Tiles[ti]
		lo := max(gLo, t.LineOff)
		hi := min(gHi, t.LineOff+t.Lines)
		if lo >= hi {
			continue
		}
		tb := &pc.binds[k][ti]
		r.Compute(env.Overhead.PerTileVisit)
		elements += (hi - lo) * t.ChunkLen
		tLo, tHi := lo-t.LineOff, hi-t.LineOff
		if pc.batched {
			for s0 := tLo; s0 < tHi; s0 += pc.batch {
				nb := min(pc.batch, tHi-s0)
				panels := sr.pan.Panels(pc.nv, nb*t.ChunkLen)
				for v, f := range fields {
					if sweep.MaskOn(pc.touched, v) {
						f.TileGrid(tb.local).GatherLines(tb.geom[v][s0:s0+nb], panels[v])
					}
				}
				var cIn, cOut []float64
				c0 := t.LineOff + s0 - gLo
				if cInBuf != nil {
					cIn = cInBuf[c0*carryLen : (c0+nb)*carryLen]
				}
				if cOutBuf != nil {
					cOut = cOutBuf[c0*carryLen : (c0+nb)*carryLen]
				}
				if pc.backward {
					pc.bs.BackwardBatch(panels, nb, cIn, cOut)
				} else {
					pc.bs.ForwardBatch(panels, nb, cIn, cOut)
				}
				for v, f := range fields {
					if sweep.MaskOn(pc.written, v) {
						f.TileGrid(tb.local).ScatterLines(tb.geom[v][s0:s0+nb], panels[v])
					}
				}
			}
			continue
		}
		for li := tLo; li < tHi; li++ {
			for v, f := range fields {
				f.TileGrid(tb.local).Gather(tb.geom[v][li], pc.chunk[v][:t.ChunkLen])
				pc.views[v] = pc.chunk[v][:t.ChunkLen]
			}
			var cIn, cOut []float64
			c0 := t.LineOff + li - gLo
			if cInBuf != nil {
				cIn = cInBuf[c0*carryLen : (c0+1)*carryLen]
			}
			if cOutBuf != nil {
				cOut = cOutBuf[c0*carryLen : (c0+1)*carryLen]
			}
			if pc.backward {
				sr.Solver.Backward(pc.views, cIn, cOut)
			} else {
				sr.Solver.Forward(pc.views, cIn, cOut)
			}
			for v, f := range fields {
				f.TileGrid(tb.local).Scatter(tb.geom[v][li], pc.chunk[v][:t.ChunkLen])
			}
		}
	}
	return elements
}

package dmem

import (
	"fmt"

	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/nas"
	"genmp/internal/plan"
	"genmp/internal/rt"
	"genmp/internal/sim"
	"genmp/internal/sweep"
	"genmp/internal/xport"
)

// RunBT executes the BT pseudo-application (5×5 block tridiagonal line
// solves) in strict distributed-memory mode. The returned grid (rank 0)
// matches nas.BTSerialSolve elementwise.
func RunBT(env *dist.Env, mach *sim.Machine, steps int) (*grid.Grid, sim.Result, error) {
	return RunBTOverlap(env, mach, steps, plan.Overlap{})
}

// RunBTOverlap is RunBT under the boundary-first overlap schedule with
// cross-timestep halo pipelining (see RunSPOverlap); the final field is
// bit-identical to RunBT.
func RunBTOverlap(env *dist.Env, mach *sim.Machine, steps int, o plan.Overlap) (*grid.Grid, sim.Result, error) {
	if err := btCheck(env); err != nil {
		return nil, sim.Result{}, err
	}
	solver := sweep.NewBlockTridiag(nas.BTBlockSize)
	sweepPlan, err := CompileSweepPlanOverlap(env, solver, o)
	if err != nil {
		return nil, sim.Result{}, err
	}
	var out *grid.Grid
	body := btBody(env, solver, sweepPlan, steps, o, &out)
	res, err := mach.Run(func(r *sim.Rank) { body(r) })
	if err != nil {
		return nil, sim.Result{}, err
	}
	return out, res, nil
}

// RunBTReal executes BT on the real-parallel runtime (see RunSPReal). pl
// nil compiles the schedule locally; the final field is Float64bits-
// identical to RunBTOverlap's.
func RunBTReal(env *dist.Env, rm *rt.Machine, steps int, o plan.Overlap, pl *plan.SweepPlan) (*grid.Grid, rt.Result, error) {
	if err := btCheck(env); err != nil {
		return nil, rt.Result{}, err
	}
	solver := sweep.NewBlockTridiag(nas.BTBlockSize)
	if pl == nil {
		var err error
		if pl, err = CompileSweepPlanOverlap(env, solver, o); err != nil {
			return nil, rt.Result{}, err
		}
	}
	var out *grid.Grid
	body := btBody(env, solver, pl, steps, o, &out)
	res, err := rm.Run(func(r *rt.Rank) { body(r) })
	if err != nil {
		return nil, rt.Result{}, err
	}
	return out, res, nil
}

// btCheck validates tile thickness against the BT halo depth.
func btCheck(env *dist.Env) error {
	const haloDepth = 2
	gamma := env.M.Gamma()
	for dim := range env.Eta {
		if gamma[dim] > 1 && env.Eta[dim]/gamma[dim] < haloDepth {
			return fmt.Errorf("dmem: tiles along dim %d are thinner than the halo depth %d", dim, haloDepth)
		}
	}
	return nil
}

// btBody builds the per-rank body of the BT strict run, shared by both
// backends. Only rank 0 writes *out.
func btBody(env *dist.Env, solver sweep.Solver, sweepPlan *plan.SweepPlan, steps int, o plan.Overlap, out **grid.Grid) func(t xport.Transport) {
	const haloDepth = 2
	bb := nas.BTBlockSize * nas.BTBlockSize
	return func(t xport.Transport) {
		u := NewField(env, t.Rank(), haloDepth)
		u.FillFunc(initialAt(env.Eta))
		rhs := NewField(env, t.Rank(), 0)
		vecs := make([]*Field, solver.NumVecs())
		for v := range vecs {
			vecs[v] = NewField(env, t.Rank(), 0)
		}
		fvecs := vecs[3*bb:]
		runner := NewSweepRunner(solver, vecs)
		runner.Plan = sweepPlan

		var haloPre []xport.Request
		for step := 0; step < steps; step++ {
			u.ExchangeHalosPiped(t, haloPre)
			haloPre = nil
			strictComputeRHS(u, rhs)
			strictScatterBTRHS(rhs, fvecs)
			t.ComputeFlops(nas.BTFlopsRHS * float64(ownedElements(u)) * env.Overhead.ComputeFactor)
			for dim := range env.Eta {
				strictBuildBTLHS(dim, env.Eta[dim], vecs)
				t.ComputeFlops(nas.BTFlopsLHSBuild * float64(ownedElements(u)) * env.Overhead.ComputeFactor)
				runner.Run(t, dim)
			}
			if o.Enabled && step+1 < steps {
				haloPre = u.PostHaloRecvs(t)
			}
			strictAdd(u, fvecs[0])
			t.ComputeFlops(nas.BTFlopsAdd * float64(ownedElements(u)) * env.Overhead.ComputeFactor)
		}
		if g := GatherToRoot(t, u, xport.AlgAuto); g != nil {
			*out = g
		}
	}
}

// strictScatterBTRHS copies the scalar stencil output into the B solution
// components with the same scaling as nas.btScatterRHS.
func strictScatterBTRHS(rhs *Field, fvecs []*Field) {
	for i := 0; i < rhs.NumTiles(); i++ {
		src := rhs.TileGrid(i).Data()
		for c, f := range fvecs {
			dst := f.TileGrid(i).Data()
			scale := 1 + 0.1*float64(c)
			for k, v := range src {
				dst[k] = v * scale
			}
		}
	}
}

// strictBuildBTLHS assembles the block coefficients per owned tile from the
// same global formula as nas.BuildBlockLHS.
func strictBuildBTLHS(dim, n int, vecs []*Field) {
	const b = nas.BTBlockSize
	bb := b * b
	f := vecs[0]
	for i := 0; i < f.NumTiles(); i++ {
		bnd := f.GlobalBounds(i)
		start := bnd.Lo[dim]
		data := make([][]float64, 3*bb)
		for v := range data {
			data[v] = vecs[v].TileGrid(i).Data()
		}
		ref := f.TileGrid(i)
		ref.EachLine(f.InteriorRect(i), dim, func(l grid.Line) {
			off := l.Base
			for k := 0; k < l.N; k++ {
				g := start + k
				for r := 0; r < b; r++ {
					rowSum := 0.0
					for c := 0; c < b; c++ {
						av, cv := 0.0, 0.0
						if g >= 1 {
							av = nas.BTCoeff(g+dim, r, c, 0)
						}
						if g < n-1 {
							cv = nas.BTCoeff(g+dim, r, c, 1)
						}
						data[r*b+c][off] = av
						data[2*bb+r*b+c][off] = cv
						rowSum += abs(av) + abs(cv)
						if c != r {
							bv := nas.BTCoeff(g+dim, r, c, 2)
							data[bb+r*b+c][off] = bv
							rowSum += abs(bv)
						}
					}
					data[bb+r*b+r][off] = rowSum + 1.5
				}
				off += l.Stride
			}
		})
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

package dmem

import (
	"fmt"

	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/nas"
	"genmp/internal/plan"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

// RunBT executes the BT pseudo-application (5×5 block tridiagonal line
// solves) in strict distributed-memory mode. The returned grid (rank 0)
// matches nas.BTSerialSolve elementwise.
func RunBT(env *dist.Env, mach *sim.Machine, steps int) (*grid.Grid, sim.Result, error) {
	return RunBTOverlap(env, mach, steps, plan.Overlap{})
}

// RunBTOverlap is RunBT under the boundary-first overlap schedule with
// cross-timestep halo pipelining (see RunSPOverlap); the final field is
// bit-identical to RunBT.
func RunBTOverlap(env *dist.Env, mach *sim.Machine, steps int, o plan.Overlap) (*grid.Grid, sim.Result, error) {
	const haloDepth = 2
	gamma := env.M.Gamma()
	for dim := range env.Eta {
		if gamma[dim] > 1 && env.Eta[dim]/gamma[dim] < haloDepth {
			return nil, sim.Result{}, fmt.Errorf("dmem: tiles along dim %d are thinner than the halo depth %d", dim, haloDepth)
		}
	}
	const b = nas.BTBlockSize
	bb := b * b
	solver := sweep.NewBlockTridiag(b)
	sweepPlan, err := CompileSweepPlanOverlap(env, solver, o)
	if err != nil {
		return nil, sim.Result{}, err
	}
	var out *grid.Grid
	res, err := mach.Run(func(r *sim.Rank) {
		u := NewField(env, r.ID, haloDepth)
		u.FillFunc(initialAt(env.Eta))
		rhs := NewField(env, r.ID, 0)
		vecs := make([]*Field, solver.NumVecs())
		for v := range vecs {
			vecs[v] = NewField(env, r.ID, 0)
		}
		fvecs := vecs[3*bb:]
		runner := NewSweepRunner(solver, vecs)
		runner.Plan = sweepPlan

		var haloPre []*sim.Request
		for step := 0; step < steps; step++ {
			u.ExchangeHalosPiped(r, haloPre)
			haloPre = nil
			strictComputeRHS(u, rhs)
			strictScatterBTRHS(rhs, fvecs)
			r.ComputeFlops(nas.BTFlopsRHS * float64(ownedElements(u)) * env.Overhead.ComputeFactor)
			for dim := range env.Eta {
				strictBuildBTLHS(dim, env.Eta[dim], vecs)
				r.ComputeFlops(nas.BTFlopsLHSBuild * float64(ownedElements(u)) * env.Overhead.ComputeFactor)
				runner.Run(r, dim)
			}
			if o.Enabled && step+1 < steps {
				haloPre = u.PostHaloRecvs(r)
			}
			strictAdd(u, fvecs[0])
			r.ComputeFlops(nas.BTFlopsAdd * float64(ownedElements(u)) * env.Overhead.ComputeFactor)
		}
		if g := GatherToRoot(r, u, sim.AlgAuto); g != nil {
			out = g
		}
	})
	if err != nil {
		return nil, sim.Result{}, err
	}
	return out, res, nil
}

// strictScatterBTRHS copies the scalar stencil output into the B solution
// components with the same scaling as nas.btScatterRHS.
func strictScatterBTRHS(rhs *Field, fvecs []*Field) {
	for i := 0; i < rhs.NumTiles(); i++ {
		src := rhs.TileGrid(i).Data()
		for c, f := range fvecs {
			dst := f.TileGrid(i).Data()
			scale := 1 + 0.1*float64(c)
			for k, v := range src {
				dst[k] = v * scale
			}
		}
	}
}

// strictBuildBTLHS assembles the block coefficients per owned tile from the
// same global formula as nas.BuildBlockLHS.
func strictBuildBTLHS(dim, n int, vecs []*Field) {
	const b = nas.BTBlockSize
	bb := b * b
	f := vecs[0]
	for i := 0; i < f.NumTiles(); i++ {
		bnd := f.GlobalBounds(i)
		start := bnd.Lo[dim]
		data := make([][]float64, 3*bb)
		for v := range data {
			data[v] = vecs[v].TileGrid(i).Data()
		}
		ref := f.TileGrid(i)
		ref.EachLine(f.InteriorRect(i), dim, func(l grid.Line) {
			off := l.Base
			for k := 0; k < l.N; k++ {
				g := start + k
				for r := 0; r < b; r++ {
					rowSum := 0.0
					for c := 0; c < b; c++ {
						av, cv := 0.0, 0.0
						if g >= 1 {
							av = nas.BTCoeff(g+dim, r, c, 0)
						}
						if g < n-1 {
							cv = nas.BTCoeff(g+dim, r, c, 1)
						}
						data[r*b+c][off] = av
						data[2*bb+r*b+c][off] = cv
						rowSum += abs(av) + abs(cv)
						if c != r {
							bv := nas.BTCoeff(g+dim, r, c, 2)
							data[bb+r*b+c][off] = bv
							rowSum += abs(bv)
						}
					}
					data[bb+r*b+r][off] = rowSum + 1.5
				}
				off += l.Stride
			}
		})
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

package dmem

import (
	"fmt"

	"genmp/internal/grid"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

// SweepRunner executes line sweeps over one rank's strictly distributed
// fields, keeping everything a sweep needs between calls: the per-dimension
// schedules, every tile's line geometry for every field (each field may
// have its own halo depth, so the offsets differ even though the
// cross-sections coincide), and the SoA panel arenas of the batched
// kernels. A rank builds one runner and reuses it across timesteps and
// dimensions, so the steady state allocates nothing: carries travel in
// pooled payload buffers, and line data moves through the reusable
// workspace panels.
type SweepRunner struct {
	Solver sweep.Solver
	Fields []*Field
	// Batch is the panel width of the batched sweep kernels: 0 picks
	// sweep.DefaultBatchLines, negative forces the scalar per-line path
	// (the bit-identical oracle / "before" ablation).
	Batch int

	pan   sweep.Workspace // SoA panel arena (batched) / chunk buffers (scalar)
	views sweep.Workspace // view headers of the scalar path
	sched map[int][]phaseGeom
}

// phaseGeom is one cached sweep phase: its destination and the resolved
// geometry of every tile it computes.
type phaseGeom struct {
	sendTo int
	lines  int // total lines across the phase's tiles
	tiles  []tileGeom
}

// tileGeom is one tile's cached sweep geometry.
type tileGeom struct {
	local    int // index into each Field's local tile storage
	lines    int // cross-section line count
	chunkLen int // extent along the sweep dimension
	// geom[v] lists field v's line offsets for this tile, in the shared
	// canonical order (identical cross-sections, field-specific padding).
	geom [][]grid.Line
}

// NewSweepRunner builds a runner for one rank's fields. fields must hold
// Solver.NumVecs() fields of the same rank.
func NewSweepRunner(solver sweep.Solver, fields []*Field) *SweepRunner {
	if len(fields) != solver.NumVecs() {
		panic(fmt.Sprintf("dmem: solver %s needs %d fields, got %d", solver.Name(), solver.NumVecs(), len(fields)))
	}
	return &SweepRunner{Solver: solver, Fields: fields, sched: map[int][]phaseGeom{}}
}

// RunSweep performs a full line sweep (forward elimination and, when the
// solver has one, back substitution) along dim over strictly distributed
// fields: the solver's per-line arrays live in the calling rank's private
// tile storage, and inter-tile carries travel in real message payloads.
// fields must hold Solver.NumVecs() fields of this rank.
//
// The helper builds a throwaway SweepRunner per call; loops should build
// one runner up front and call its Run so geometry and arenas persist.
func RunSweep(r *sim.Rank, solver sweep.Solver, fields []*Field, dim int) {
	NewSweepRunner(solver, fields).Run(r, dim)
}

// Run performs the full sweep along dim for the calling rank.
func (sr *SweepRunner) Run(r *sim.Rank, dim int) {
	sr.pass(r, dim, false)
	if sr.Solver.BackwardCarryLen() > 0 || sr.Solver.BackwardFlopsPerElement() > 0 {
		sr.pass(r, dim, true)
	}
}

func strictSweepTag(dim int, backward bool, phase int) int {
	pass := 0
	if backward {
		pass = 1
	}
	return strictSweepTags.Tag((dim*2+pass)<<20 | phase)
}

// phases returns the cached schedule geometry for (dim, backward),
// resolving it on first use.
func (sr *SweepRunner) phases(dim int, backward bool) []phaseGeom {
	key := dim * 2
	if backward {
		key++
	}
	if sr.sched == nil {
		sr.sched = map[int][]phaseGeom{}
	}
	if pg, ok := sr.sched[key]; ok {
		return pg
	}
	f0 := sr.Fields[0]
	env := f0.Env
	sched := env.M.SweepSchedule(f0.Rank, dim, backward)
	pg := make([]phaseGeom, len(sched))
	for k, ph := range sched {
		pk := phaseGeom{sendTo: ph.SendTo, tiles: make([]tileGeom, len(ph.Tiles))}
		for ti, tile := range ph.Tiles {
			i := f0.LocalTileOf(tile)
			if i < 0 {
				panic("dmem: sweep schedule names a tile this rank does not own")
			}
			b := f0.GlobalBounds(i)
			n := 1
			for j := range env.Eta {
				if j != dim {
					n *= b.Hi[j] - b.Lo[j]
				}
			}
			tg := tileGeom{local: i, lines: n, chunkLen: b.Hi[dim] - b.Lo[dim],
				geom: make([][]grid.Line, len(sr.Fields))}
			for v, f := range sr.Fields {
				// Fields with equal halo depth have identical padded shapes
				// and so identical line geometry — share one slice.
				shared := false
				for w := 0; w < v; w++ {
					if sr.Fields[w].Depth == f.Depth {
						tg.geom[v] = tg.geom[w]
						shared = true
						break
					}
				}
				if !shared {
					tg.geom[v] = f.TileGrid(i).AppendLines(f.InteriorRect(i), dim, make([]grid.Line, 0, n))
				}
			}
			pk.tiles[ti] = tg
			pk.lines += n
		}
		pg[k] = pk
	}
	sr.sched[key] = pg
	return pg
}

func (sr *SweepRunner) pass(r *sim.Rank, dim int, backward bool) {
	solver := sr.Solver
	fields := sr.Fields
	env := fields[0].Env
	q := r.ID
	phases := sr.phases(dim, backward)
	carryLen := solver.ForwardCarryLen()
	flopsPerElem := solver.ForwardFlopsPerElement()
	if backward {
		carryLen = solver.BackwardCarryLen()
		flopsPerElem = solver.BackwardFlopsPerElement()
	}
	step := 1
	if backward {
		step = -1
	}
	recvFrom := -1
	if len(phases) > 1 {
		recvFrom = env.M.NeighborProc(q, dim, -step)
	}

	bs, batched := solver.(sweep.BatchSolver)
	batched = batched && sr.Batch >= 0
	batch := sr.Batch
	if batch <= 0 {
		batch = sweep.DefaultBatchLines
	}
	nv := len(fields)
	var chunk, views [][]float64
	var touched, written []bool
	if batched {
		touched, written = sweep.PassMasks(solver, backward)
	} else {
		chunk = sr.pan.Panels(nv, env.Eta[dim])
		views = sr.views.Views(nv)
	}

	for k, ph := range phases {
		// Carries arrive in a pooled payload whose ownership transfers with
		// the message; it is recycled below once every tile has read its
		// rows. Outgoing carries are assembled directly in a pooled payload
		// — the batched kernels' carry marshalling IS the wire format.
		var inBuf []float64
		if k > 0 && carryLen > 0 {
			msg := r.Recv(recvFrom, strictSweepTag(dim, backward, k))
			r.Compute(env.Overhead.PerMessage)
			inBuf = msg.Payload
		}
		var outBuf []float64
		if ph.sendTo >= 0 && carryLen > 0 {
			outBuf = r.GetPayload(ph.lines * carryLen)
		}

		elements := 0
		inOff, outOff := 0, 0
		for ti := range ph.tiles {
			tg := &ph.tiles[ti]
			r.Compute(env.Overhead.PerTileVisit)
			elements += tg.chunkLen * tg.lines

			if batched {
				for s0 := 0; s0 < tg.lines; s0 += batch {
					nb := min(batch, tg.lines-s0)
					panels := sr.pan.Panels(nv, nb*tg.chunkLen)
					for v, f := range fields {
						if sweep.MaskOn(touched, v) {
							f.TileGrid(tg.local).GatherLines(tg.geom[v][s0:s0+nb], panels[v])
						}
					}
					var cIn, cOut []float64
					if inBuf != nil {
						cIn = inBuf[inOff+s0*carryLen : inOff+(s0+nb)*carryLen]
					}
					if outBuf != nil {
						cOut = outBuf[outOff+s0*carryLen : outOff+(s0+nb)*carryLen]
					}
					if backward {
						bs.BackwardBatch(panels, nb, cIn, cOut)
					} else {
						bs.ForwardBatch(panels, nb, cIn, cOut)
					}
					for v, f := range fields {
						if sweep.MaskOn(written, v) {
							f.TileGrid(tg.local).ScatterLines(tg.geom[v][s0:s0+nb], panels[v])
						}
					}
				}
				if inBuf != nil {
					inOff += tg.lines * carryLen
				}
				if outBuf != nil {
					outOff += tg.lines * carryLen
				}
				continue
			}

			for li := 0; li < tg.lines; li++ {
				for v, f := range fields {
					f.TileGrid(tg.local).Gather(tg.geom[v][li], chunk[v][:tg.chunkLen])
					views[v] = chunk[v][:tg.chunkLen]
				}
				var cIn, cOut []float64
				if inBuf != nil {
					cIn = inBuf[inOff : inOff+carryLen]
					inOff += carryLen
				}
				if outBuf != nil {
					cOut = outBuf[outOff : outOff+carryLen]
					outOff += carryLen
				}
				if backward {
					solver.Backward(views, cIn, cOut)
				} else {
					solver.Forward(views, cIn, cOut)
				}
				for v, f := range fields {
					f.TileGrid(tg.local).Scatter(tg.geom[v][li], chunk[v][:tg.chunkLen])
				}
			}
		}
		if inBuf != nil {
			r.PutPayload(inBuf)
		}
		r.ComputeFlops(flopsPerElem * float64(elements) * env.Overhead.ComputeFactor)

		if ph.sendTo >= 0 && carryLen > 0 {
			r.Compute(env.Overhead.PerMessage)
			r.Send(ph.sendTo, strictSweepTag(dim, backward, k+1),
				sim.Msg{Bytes: ph.lines * carryLen * 8, Payload: outBuf})
		}
	}
}

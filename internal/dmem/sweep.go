package dmem

import (
	"fmt"

	"genmp/internal/grid"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

// RunSweep performs a full line sweep (forward elimination and, when the
// solver has one, back substitution) along dim over strictly distributed
// fields: the solver's per-line arrays live in the calling rank's private
// tile storage, and inter-tile carries travel in real message payloads.
// fields must hold Solver.NumVecs() fields of this rank.
func RunSweep(r *sim.Rank, solver sweep.Solver, fields []*Field, dim int) {
	if len(fields) != solver.NumVecs() {
		panic(fmt.Sprintf("dmem: solver %s needs %d fields, got %d", solver.Name(), solver.NumVecs(), len(fields)))
	}
	sweepPass(r, solver, fields, dim, false)
	if solver.BackwardCarryLen() > 0 || solver.BackwardFlopsPerElement() > 0 {
		sweepPass(r, solver, fields, dim, true)
	}
}

func strictSweepTag(dim int, backward bool, phase int) int {
	pass := 0
	if backward {
		pass = 1
	}
	return strictSweepTags.Tag((dim*2+pass)<<20 | phase)
}

func sweepPass(r *sim.Rank, solver sweep.Solver, fields []*Field, dim int, backward bool) {
	env := fields[0].Env
	q := r.ID
	sched := env.M.SweepSchedule(q, dim, backward)
	carryLen := solver.ForwardCarryLen()
	flopsPerElem := solver.ForwardFlopsPerElement()
	if backward {
		carryLen = solver.BackwardCarryLen()
		flopsPerElem = solver.BackwardFlopsPerElement()
	}
	step := 1
	if backward {
		step = -1
	}
	recvFrom := -1
	if len(sched) > 1 {
		recvFrom = env.M.NeighborProc(q, dim, -step)
	}

	nv := len(fields)
	chunk := make([][]float64, nv)
	views := make([][]float64, nv)
	for v := range chunk {
		chunk[v] = make([]float64, env.Eta[dim])
	}

	for k, ph := range sched {
		// Per-tile line counts (identical across the phase boundary by the
		// shifted-tile bijection).
		lines := 0
		tileLines := make([]int, len(ph.Tiles))
		tileLocal := make([]int, len(ph.Tiles))
		for ti, tile := range ph.Tiles {
			i := fields[0].LocalTileOf(tile)
			if i < 0 {
				panic("dmem: sweep schedule names a tile this rank does not own")
			}
			tileLocal[ti] = i
			b := fields[0].GlobalBounds(i)
			n := 1
			for j := range env.Eta {
				if j != dim {
					n *= b.Hi[j] - b.Lo[j]
				}
			}
			tileLines[ti] = n
			lines += n
		}

		var inBuf []float64
		if k > 0 && carryLen > 0 {
			msg := r.Recv(recvFrom, strictSweepTag(dim, backward, k))
			r.Compute(env.Overhead.PerMessage)
			inBuf = msg.Payload
		}
		var outBuf []float64
		if ph.SendTo >= 0 && carryLen > 0 {
			outBuf = make([]float64, lines*carryLen)
		}

		elements := 0
		inOff, outOff := 0, 0
		for ti := range ph.Tiles {
			r.Compute(env.Overhead.PerTileVisit)
			i := tileLocal[ti]
			b := fields[0].GlobalBounds(i)
			chunkLen := b.Hi[dim] - b.Lo[dim]
			elements += chunkLen * tileLines[ti]

			// Gather/solve/scatter every line chunk of this tile from the
			// rank-private storage. Each field may have its own halo
			// depth, so line geometry is computed per field; all share the
			// same interior cross-section and canonical order.
			tileGrids := make([]*grid.Grid, nv)
			tileLineGeom := make([][]grid.Line, nv)
			for v, f := range fields {
				tileGrids[v] = f.TileGrid(i)
				var ls []grid.Line
				tileGrids[v].EachLine(f.InteriorRect(i), dim, func(l grid.Line) { ls = append(ls, l) })
				tileLineGeom[v] = ls
			}
			for li := 0; li < tileLines[ti]; li++ {
				for v := range fields {
					tileGrids[v].Gather(tileLineGeom[v][li], chunk[v][:chunkLen])
					views[v] = chunk[v][:chunkLen]
				}
				var cIn, cOut []float64
				if inBuf != nil {
					cIn = inBuf[inOff : inOff+carryLen]
					inOff += carryLen
				}
				if outBuf != nil {
					cOut = outBuf[outOff : outOff+carryLen]
					outOff += carryLen
				}
				if backward {
					solver.Backward(views, cIn, cOut)
				} else {
					solver.Forward(views, cIn, cOut)
				}
				for v := range fields {
					tileGrids[v].Scatter(tileLineGeom[v][li], chunk[v][:chunkLen])
				}
			}
		}
		r.ComputeFlops(flopsPerElem * float64(elements) * env.Overhead.ComputeFactor)

		if ph.SendTo >= 0 && carryLen > 0 {
			r.Compute(env.Overhead.PerMessage)
			r.Send(ph.SendTo, strictSweepTag(dim, backward, k+1),
				sim.Msg{Payload: outBuf})
		}
	}
}

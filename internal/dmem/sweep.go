package dmem

import (
	"fmt"

	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/plan"
	"genmp/internal/sweep"
	"genmp/internal/xport"
)

// SweepRunner executes line sweeps over one rank's strictly distributed
// fields. The schedule itself — phases, neighbors, tags, carry byte counts
// — is a compiled plan.SweepPlan shared with every other consumer; the
// runner keeps only what binds that plan to this rank's storage: each
// tile's local index and per-field line geometry (each field may have its
// own halo depth, so the offsets differ even though the cross-sections
// coincide), plus the SoA panel arenas of the batched kernels. A rank
// builds one runner and reuses it across timesteps and dimensions, so the
// steady state allocates nothing: carries travel in pooled payload
// buffers, and line data moves through the reusable workspace panels.
type SweepRunner struct {
	Solver sweep.Solver
	Fields []*Field
	// Batch is the panel width of the batched sweep kernels: 0 picks
	// sweep.DefaultBatchLines, negative forces the scalar per-line path
	// (the bit-identical oracle / "before" ablation).
	Batch int
	// Overlap is folded into the lazily compiled plan's Spec (ignored when
	// Plan is pre-set — use CompileSweepPlanOverlap for the shared
	// instance). The runner itself switches on Plan.Overlap.
	Overlap plan.Overlap
	// Plan is the compiled schedule the runner executes. Leave nil to have
	// the first Run compile it from the fields' environment; pre-set it
	// (see CompileSweepPlan) to share one instance across all rank
	// runners instead of compiling the full O(p) schedule per rank.
	Plan *plan.SweepPlan

	pan   sweep.Workspace // SoA panel arena (batched) / chunk buffers (scalar)
	views sweep.Workspace // view headers of the scalar path
	pub   sweep.WorkspacePublisher
	binds map[int][][]tileBind
}

// WorkspaceStats reports this runner's arena acquisition counters; with
// warmed arenas the hit rate is 1. Runners are per-rank, so read it only
// after the owning rank has finished.
func (sr *SweepRunner) WorkspaceStats() sweep.WorkspaceStats {
	var out sweep.WorkspaceStats
	for _, s := range []sweep.WorkspaceStats{sr.pan.Stats(), sr.views.Stats()} {
		out.Gets += s.Gets
		out.Hits += s.Hits
	}
	return out
}

// tileBind binds one plan tile to this rank's storage: the local tile
// index and, per field, the tile's line offsets in the shared canonical
// order (identical cross-sections, field-specific padding).
type tileBind struct {
	local int
	geom  [][]grid.Line
}

// CompileSweepPlan compiles the sweep schedule the strict runtime executes
// over env with the given solver — the one instance every rank's
// SweepRunner should share (set SweepRunner.Plan). The fields are assumed
// unpadded (the solve vectors of the strict applications); runners over
// padded fields may still share it, since padding only moves storage
// offsets, which live in the runner's binding cache, not the plan.
func CompileSweepPlan(env *dist.Env, solver sweep.Solver) (*plan.SweepPlan, error) {
	return plan.Compile(plan.Spec{
		M: env.M, Eta: env.Eta, Solver: solver,
		Halos: make([]int, solver.NumVecs()),
	})
}

// CompileSweepPlanOverlap is CompileSweepPlan with the boundary-first
// overlap annotation enabled (plan.Overlap): the same schedule plus per-
// phase split points and interior-message tags.
func CompileSweepPlanOverlap(env *dist.Env, solver sweep.Solver, o plan.Overlap) (*plan.SweepPlan, error) {
	return plan.Compile(plan.Spec{
		M: env.M, Eta: env.Eta, Solver: solver,
		Halos:   make([]int, solver.NumVecs()),
		Overlap: o,
	})
}

// NewSweepRunner builds a runner for one rank's fields. fields must hold
// Solver.NumVecs() fields of the same rank.
func NewSweepRunner(solver sweep.Solver, fields []*Field) *SweepRunner {
	if len(fields) != solver.NumVecs() {
		panic(fmt.Sprintf("dmem: solver %s needs %d fields, got %d", solver.Name(), solver.NumVecs(), len(fields)))
	}
	return &SweepRunner{Solver: solver, Fields: fields, binds: map[int][][]tileBind{}}
}

// RunSweep performs a full line sweep (forward elimination and, when the
// solver has one, back substitution) along dim over strictly distributed
// fields: the solver's per-line arrays live in the calling rank's private
// tile storage, and inter-tile carries travel in real message payloads.
// fields must hold Solver.NumVecs() fields of this rank.
//
// The helper builds a throwaway SweepRunner (and compiles a throwaway
// plan) per call; loops should build one runner up front, sharing a
// CompileSweepPlan instance, so schedule, bindings and arenas persist.
func RunSweep(r xport.Transport, solver sweep.Solver, fields []*Field, dim int) {
	NewSweepRunner(solver, fields).Run(r, dim)
}

// ensurePlan compiles the runner's schedule on first use when no shared
// instance was provided.
func (sr *SweepRunner) ensurePlan() {
	if sr.Plan != nil {
		return
	}
	f0 := sr.Fields[0]
	halos := make([]int, len(sr.Fields))
	for i, f := range sr.Fields {
		halos[i] = f.Depth
	}
	pl, err := plan.Compile(plan.Spec{
		M: f0.Env.M, Eta: f0.Env.Eta, Solver: sr.Solver,
		Halos: halos, Batch: sr.Batch, Overlap: sr.Overlap,
	})
	if err != nil {
		panic("dmem: " + err.Error())
	}
	sr.Plan = pl
}

// CompiledPlan returns the runner's SweepPlan, compiling it on first use.
func (sr *SweepRunner) CompiledPlan() *plan.SweepPlan {
	sr.ensurePlan()
	return sr.Plan
}

// Run performs the full sweep along dim for the calling rank.
func (sr *SweepRunner) Run(r xport.Transport, dim int) {
	sr.ensurePlan()
	sr.pass(r, dim, false)
	if sr.Solver.BackwardCarryLen() > 0 || sr.Solver.BackwardFlopsPerElement() > 0 {
		sr.pass(r, dim, true)
	}
	sr.pub.Publish(r.MetricsRegistry(), &sr.pan, &sr.views)
}

// bindings returns the storage binding of the plan's (dim, backward) pass
// for this rank's fields, resolving local tile indices and per-field line
// geometry on first use.
func (sr *SweepRunner) bindings(pp *plan.Pass, dim int, backward bool) [][]tileBind {
	key := dim * 2
	if backward {
		key++
	}
	if sr.binds == nil {
		sr.binds = map[int][][]tileBind{}
	}
	if tb, ok := sr.binds[key]; ok {
		return tb
	}
	f0 := sr.Fields[0]
	out := make([][]tileBind, len(pp.Phases))
	for k := range pp.Phases {
		ph := &pp.Phases[k]
		tb := make([]tileBind, len(ph.Tiles))
		for ti := range ph.Tiles {
			t := &ph.Tiles[ti]
			i := f0.LocalTileOf(t.Coord)
			if i < 0 {
				panic("dmem: sweep plan names a tile this rank does not own")
			}
			geom := make([][]grid.Line, len(sr.Fields))
			for v, f := range sr.Fields {
				// Fields with equal halo depth have identical padded shapes
				// and so identical line geometry — share one slice.
				shared := false
				for w := 0; w < v; w++ {
					if sr.Fields[w].Depth == f.Depth {
						geom[v] = geom[w]
						shared = true
						break
					}
				}
				if !shared {
					geom[v] = f.TileGrid(i).AppendLines(f.InteriorRect(i), dim, make([]grid.Line, 0, t.Lines))
				}
			}
			tb[ti] = tileBind{local: i, geom: geom}
		}
		out[k] = tb
	}
	sr.binds[key] = out
	return out
}

func (sr *SweepRunner) pass(r xport.Transport, dim int, backward bool) {
	solver := sr.Solver
	fields := sr.Fields
	env := fields[0].Env
	q := r.Rank()
	pp := sr.Plan.Pass(q, dim, backward)
	binds := sr.bindings(pp, dim, backward)
	carryLen := pp.CarryLen
	flopsPerElem := solver.ForwardFlopsPerElement()
	if backward {
		flopsPerElem = solver.BackwardFlopsPerElement()
	}

	bs, batched := solver.(sweep.BatchSolver)
	batched = batched && sr.Batch >= 0
	batch := sr.Batch
	if batch <= 0 {
		batch = sweep.DefaultBatchLines
	}
	nv := len(fields)
	var chunk, views [][]float64
	var touched, written []bool
	if batched {
		touched, written = sweep.PassMasks(solver, backward)
	} else {
		chunk = sr.pan.Panels(nv, env.Eta[dim])
		views = sr.views.Views(nv)
	}
	pc := &dmPassCtx{
		binds: binds, backward: backward, carryLen: carryLen,
		flopsPerElem: flopsPerElem, batch: batch, nv: nv, bs: bs,
		batched: batched, touched: touched, written: written,
		chunk: chunk, views: views,
	}

	// Overlap-annotated phases run the boundary-first schedule; preB/preI
	// carry receive requests preposted for the next phase.
	var preB, preI xport.Request
	for k := range pp.Phases {
		ph := &pp.Phases[k]
		if ph.Boundary > 0 {
			preB, preI = sr.overlapPhase(r, pc, pp, k, preB, preI)
			continue
		}
		// Carries arrive in a pooled payload whose ownership transfers with
		// the message; it is recycled below once every tile has read its
		// rows. Outgoing carries are assembled directly in a pooled payload
		// — the batched kernels' carry marshalling IS the wire format.
		var inBuf []float64
		if ph.RecvFrom >= 0 && carryLen > 0 {
			msg := r.Recv(ph.RecvFrom, ph.RecvTag)
			r.Compute(env.Overhead.PerMessage)
			inBuf = msg.Payload
		}
		var outBuf []float64
		if ph.SendTo >= 0 && carryLen > 0 {
			outBuf = r.GetPayload(ph.Lines * carryLen)
		}

		elements := 0
		inOff, outOff := 0, 0
		for ti := range ph.Tiles {
			t := &ph.Tiles[ti]
			tb := &binds[k][ti]
			r.Compute(env.Overhead.PerTileVisit)
			elements += t.ChunkLen * t.Lines

			if batched {
				for s0 := 0; s0 < t.Lines; s0 += batch {
					nb := min(batch, t.Lines-s0)
					panels := sr.pan.Panels(nv, nb*t.ChunkLen)
					for v, f := range fields {
						if sweep.MaskOn(touched, v) {
							f.TileGrid(tb.local).GatherLines(tb.geom[v][s0:s0+nb], panels[v])
						}
					}
					var cIn, cOut []float64
					if inBuf != nil {
						cIn = inBuf[inOff+s0*carryLen : inOff+(s0+nb)*carryLen]
					}
					if outBuf != nil {
						cOut = outBuf[outOff+s0*carryLen : outOff+(s0+nb)*carryLen]
					}
					if backward {
						bs.BackwardBatch(panels, nb, cIn, cOut)
					} else {
						bs.ForwardBatch(panels, nb, cIn, cOut)
					}
					for v, f := range fields {
						if sweep.MaskOn(written, v) {
							f.TileGrid(tb.local).ScatterLines(tb.geom[v][s0:s0+nb], panels[v])
						}
					}
				}
				if inBuf != nil {
					inOff += t.Lines * carryLen
				}
				if outBuf != nil {
					outOff += t.Lines * carryLen
				}
				continue
			}

			for li := 0; li < t.Lines; li++ {
				for v, f := range fields {
					f.TileGrid(tb.local).Gather(tb.geom[v][li], chunk[v][:t.ChunkLen])
					views[v] = chunk[v][:t.ChunkLen]
				}
				var cIn, cOut []float64
				if inBuf != nil {
					cIn = inBuf[inOff : inOff+carryLen]
					inOff += carryLen
				}
				if outBuf != nil {
					cOut = outBuf[outOff : outOff+carryLen]
					outOff += carryLen
				}
				if backward {
					solver.Backward(views, cIn, cOut)
				} else {
					solver.Forward(views, cIn, cOut)
				}
				for v, f := range fields {
					f.TileGrid(tb.local).Scatter(tb.geom[v][li], chunk[v][:t.ChunkLen])
				}
			}
		}
		if inBuf != nil {
			r.PutPayload(inBuf)
		}
		r.ComputeFlops(flopsPerElem * float64(elements) * env.Overhead.ComputeFactor)

		if ph.SendTo >= 0 && carryLen > 0 {
			r.Compute(env.Overhead.PerMessage)
			r.Send(ph.SendTo, ph.SendTag, xport.Msg{Bytes: ph.SendBytes, Payload: outBuf})
		}
	}
}

package dmem

import (
	"genmp/internal/adi"
	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/plan"
	"genmp/internal/rt"
	"genmp/internal/sim"
	"genmp/internal/sweep"
	"genmp/internal/xport"
)

// RunADI executes the ADI heat integration in strict distributed-memory
// mode: tridiagonal half-steps along every dimension with per-rank private
// storage and payload-borne carries. ADI's stencil-free coefficient builds
// need no halos at all, so the only communication is the sweep carries plus
// the final gather. The returned grid (rank 0) matches
// adi.Problem.SerialSolve elementwise.
func RunADI(pb adi.Problem, env *dist.Env, mach *sim.Machine) (*grid.Grid, sim.Result, error) {
	return RunADIOverlap(pb, env, mach, plan.Overlap{})
}

// RunADIOverlap is RunADI under the boundary-first overlap schedule (ADI
// has no stencil halos, so the sweep carries are the only pipelined
// traffic); the final field is bit-identical to RunADI.
func RunADIOverlap(pb adi.Problem, env *dist.Env, mach *sim.Machine, o plan.Overlap) (*grid.Grid, sim.Result, error) {
	solver := sweep.Tridiag{}
	sweepPlan, err := CompileSweepPlanOverlap(env, solver, o)
	if err != nil {
		return nil, sim.Result{}, err
	}
	var out *grid.Grid
	body := adiBody(pb, env, sweepPlan, &out)
	res, err := mach.Run(func(r *sim.Rank) { body(r) })
	if err != nil {
		return nil, sim.Result{}, err
	}
	return out, res, nil
}

// RunADIReal executes ADI on the real-parallel runtime (see RunSPReal). pl
// nil compiles the schedule locally; the final field is Float64bits-
// identical to RunADIOverlap's.
func RunADIReal(pb adi.Problem, env *dist.Env, rm *rt.Machine, o plan.Overlap, pl *plan.SweepPlan) (*grid.Grid, rt.Result, error) {
	if pl == nil {
		var err error
		if pl, err = CompileSweepPlanOverlap(env, sweep.Tridiag{}, o); err != nil {
			return nil, rt.Result{}, err
		}
	}
	var out *grid.Grid
	body := adiBody(pb, env, pl, &out)
	res, err := rm.Run(func(r *rt.Rank) { body(r) })
	if err != nil {
		return nil, rt.Result{}, err
	}
	return out, res, nil
}

// adiBody builds the per-rank body of the ADI strict run, shared by both
// backends. Only rank 0 writes *out.
func adiBody(pb adi.Problem, env *dist.Env, sweepPlan *plan.SweepPlan, out **grid.Grid) func(t xport.Transport) {
	solver := sweep.Tridiag{}
	return func(t xport.Transport) {
		u := NewField(env, t.Rank(), 0)
		init := pb.InitialCondition()
		u.FillFunc(func(g []int) float64 { return init.At(g...) })
		vecs := make([]*Field, solver.NumVecs()) // lower, diag, upper, rhs
		for v := range vecs {
			vecs[v] = NewField(env, t.Rank(), 0)
		}
		runner := NewSweepRunner(solver, vecs)
		runner.Plan = sweepPlan
		const buildFlops = 4
		for step := 0; step < pb.Steps; step++ {
			for dim := range pb.Eta {
				strictFillADI(pb, dim, u, vecs)
				t.ComputeFlops(buildFlops * float64(ownedElements(u)) * env.Overhead.ComputeFactor)
				runner.Run(t, dim)
				strictCopy(vecs[3], u)
				t.ComputeFlops(1 * float64(ownedElements(u)) * env.Overhead.ComputeFactor)
			}
		}
		if g := GatherToRoot(t, u, xport.AlgAuto); g != nil {
			*out = g
		}
	}
}

// strictFillADI assembles the half-step coefficients over every owned tile:
// lower = upper = −α (zeroed at the physical boundary), diag = 1+2α, and
// rhs = u — the same arithmetic as adi.Problem.fillCoefficients.
func strictFillADI(pb adi.Problem, dim int, u *Field, vecs []*Field) {
	a := pb.Alpha
	n := pb.Eta[dim]
	for i := 0; i < u.NumTiles(); i++ {
		b := u.GlobalBounds(i)
		start := b.Lo[dim]
		ug := u.TileGrid(i)
		grids := make([]*grid.Grid, 4)
		data := make([][]float64, 4)
		for v := 0; v < 4; v++ {
			grids[v] = vecs[v].TileGrid(i)
			data[v] = grids[v].Data()
		}
		ud := ug.Data()
		interior := vecs[0].InteriorRect(i)
		grids[0].EachLine(interior, dim, func(l grid.Line) {
			off := l.Base
			for k := 0; k < l.N; k++ {
				g := start + k
				if g == 0 {
					data[0][off] = 0
				} else {
					data[0][off] = -a
				}
				data[1][off] = 1 + 2*a
				if g == n-1 {
					data[2][off] = 0
				} else {
					data[2][off] = -a
				}
				data[3][off] = ud[off] // u has depth 0 here: same layout
				off += l.Stride
			}
		})
	}
}

// strictCopy copies src interiors into dst interiors (same depth-0 layout).
func strictCopy(src, dst *Field) {
	for i := 0; i < src.NumTiles(); i++ {
		copy(dst.TileGrid(i).Data(), src.TileGrid(i).Data())
	}
}

package dmem

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"genmp/internal/grid"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

// strictIdentityGrids builds the global reference system for one solver: a
// diagonally dominant random banded system (band entries reaching outside a
// line along dim zeroed) or the [a, x] pair of the first-order recurrence.
func strictIdentityGrids(rng *rand.Rand, solver sweep.Solver, eta []int, dim int) []*grid.Grid {
	if _, ok := solver.(sweep.Recurrence); ok {
		a := grid.New(eta...)
		x := grid.New(eta...)
		a.FillFunc(func([]int) float64 { return rng.Float64()*1.6 - 0.8 })
		x.FillFunc(func([]int) float64 { return rng.Float64()*4 - 2 })
		return []*grid.Grid{a, x}
	}
	kl, ku := 1, 1
	if sv, ok := solver.(sweep.Banded); ok {
		kl, ku = sv.KL, sv.KU
	}
	gs := make([]*grid.Grid, kl+ku+2)
	for i := range gs {
		gs[i] = grid.New(eta...)
	}
	n := eta[dim]
	for k := 1; k <= kl; k++ {
		k := k
		gs[k-1].FillFunc(func(idx []int) float64 {
			if idx[dim] < k {
				return 0
			}
			return rng.Float64() - 0.5
		})
	}
	gs[kl].FillFunc(func([]int) float64 { return 4 + float64(kl+ku) + rng.Float64() })
	for u := 1; u <= ku; u++ {
		u := u
		gs[kl+u].FillFunc(func(idx []int) float64 {
			if idx[dim] >= n-u {
				return 0
			}
			return rng.Float64() - 0.5
		})
	}
	gs[kl+ku+1].FillFunc(func([]int) float64 { return rng.Float64()*10 - 5 })
	return gs
}

// TestSweepRunnerBatchBitIdentical proves the strict runner's batched path
// (including the PassAccess masks that skip untouched gathers and unwritten
// scatters) produces bitwise-identical results to the scalar per-line oracle
// for every kernel family, sweep dimension, and panel width — on odd extents
// so partial panels are exercised.
func TestSweepRunnerBatchBitIdentical(t *testing.T) {
	p, gamma, eta := 8, []int{4, 4, 2}, []int{16, 13, 9}
	env := mustEnv(t, p, gamma, eta)
	rng := rand.New(rand.NewSource(21))
	for _, solver := range []sweep.Solver{sweep.Recurrence{}, sweep.Tridiag{}, sweep.NewPenta()} {
		for dim := range eta {
			gs := strictIdentityGrids(rng, solver, eta, dim)
			run := func(batch int) []*grid.Grid {
				out := make([]*grid.Grid, len(gs))
				_, err := testMachine(p).Run(func(r *sim.Rank) {
					fields := make([]*Field, len(gs))
					for v := range fields {
						fields[v] = NewField(env, r.ID, 0)
						v := v
						fields[v].FillFunc(func(g []int) float64 { return gs[v].At(g...) })
					}
					runner := NewSweepRunner(solver, fields)
					runner.Batch = batch
					runner.Run(r, dim)
					for v := range fields {
						if g := GatherToRoot(r, fields[v], sim.AlgAuto); g != nil {
							out[v] = g
						}
					}
				})
				if err != nil {
					t.Fatalf("%s dim %d batch %d: %v", solver.Name(), dim, batch, err)
				}
				return out
			}
			want := run(-1)
			for _, batch := range []int{1, 7, 64} {
				got := run(batch)
				for v := range want {
					wd, gd := want[v].Data(), got[v].Data()
					for i := range wd {
						if math.Float64bits(wd[i]) != math.Float64bits(gd[i]) {
							t.Fatal(fmt.Sprintf("%s dim %d batch %d: vec %d element %d: scalar %v vs batched %v",
								solver.Name(), dim, batch, v, i, wd[i], gd[i]))
						}
					}
				}
			}
		}
	}
}

package numutil

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestGCDBasics(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {1, 1, 1},
		{12, 18, 6}, {18, 12, 6}, {-12, 18, 6}, {12, -18, 6}, {-12, -18, 6},
		{7, 13, 1}, {100, 10, 10}, {270, 192, 6},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDProperties(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := int(a), int(b)
		g := GCD(x, y)
		if g < 0 {
			return false
		}
		if g == 0 {
			return x == 0 && y == 0
		}
		return x%g == 0 && y%g == 0 && GCD(x/g, y/g) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLCM(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 5, 0}, {4, 6, 12}, {7, 13, 91}, {10, 10, 10},
	}
	for _, c := range cases {
		if got := LCM(c.a, c.b); got != c.want {
			t.Errorf("LCM(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDAll(t *testing.T) {
	if got := GCDAll(); got != 0 {
		t.Errorf("GCDAll() = %d, want 0", got)
	}
	if got := GCDAll(12, 18, 30); got != 6 {
		t.Errorf("GCDAll(12,18,30) = %d, want 6", got)
	}
}

func TestEMod(t *testing.T) {
	cases := []struct{ a, m, want int }{
		{7, 3, 1}, {-7, 3, 2}, {-1, 4, 3}, {0, 5, 0}, {-12, 4, 0}, {9, 9, 0},
	}
	for _, c := range cases {
		if got := EMod(c.a, c.m); got != c.want {
			t.Errorf("EMod(%d, %d) = %d, want %d", c.a, c.m, got, c.want)
		}
	}
}

func TestEModPanicsOnNonPositiveModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EMod(1, 0) should panic")
		}
	}()
	EMod(1, 0)
}

func TestFactorize(t *testing.T) {
	cases := []struct {
		n    int
		want []Factor
	}{
		{1, nil},
		{2, []Factor{{2, 1}}},
		{8, []Factor{{2, 3}}},
		{30, []Factor{{2, 1}, {3, 1}, {5, 1}}},
		{360, []Factor{{2, 3}, {3, 2}, {5, 1}}},
		{97, []Factor{{97, 1}}},
		{1024, []Factor{{2, 10}}},
	}
	for _, c := range cases {
		got := Factorize(c.n)
		if len(got) != len(c.want) {
			t.Errorf("Factorize(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Factorize(%d)[%d] = %v, want %v", c.n, i, got[i], c.want[i])
			}
		}
	}
}

func TestFactorizeRoundTrip(t *testing.T) {
	for n := 1; n <= 5000; n++ {
		prod := 1
		prev := 1
		for _, f := range Factorize(n) {
			if f.Prime <= prev {
				t.Fatalf("Factorize(%d): primes not strictly increasing: %v", n, Factorize(n))
			}
			prev = f.Prime
			prod *= Pow(f.Prime, f.Exp)
		}
		if prod != n {
			t.Fatalf("Factorize(%d) product = %d", n, prod)
		}
	}
}

func TestDivisors(t *testing.T) {
	got := Divisors(12)
	want := []int{1, 2, 3, 4, 6, 12}
	if !EqualInts(got, want) {
		t.Errorf("Divisors(12) = %v, want %v", got, want)
	}
	if !EqualInts(Divisors(1), []int{1}) {
		t.Errorf("Divisors(1) = %v, want [1]", Divisors(1))
	}
	if !EqualInts(Divisors(49), []int{1, 7, 49}) {
		t.Errorf("Divisors(49) = %v", Divisors(49))
	}
}

func TestDivisorsComplete(t *testing.T) {
	for n := 1; n <= 500; n++ {
		divs := Divisors(n)
		if !sort.IntsAreSorted(divs) {
			t.Fatalf("Divisors(%d) not sorted: %v", n, divs)
		}
		set := map[int]bool{}
		for _, d := range divs {
			if n%d != 0 {
				t.Fatalf("Divisors(%d) contains non-divisor %d", n, d)
			}
			set[d] = true
		}
		for d := 1; d <= n; d++ {
			if n%d == 0 && !set[d] {
				t.Fatalf("Divisors(%d) missing %d", n, d)
			}
		}
	}
}

func TestPow(t *testing.T) {
	cases := []struct{ b, e, want int }{
		{2, 0, 1}, {2, 10, 1024}, {3, 4, 81}, {10, 3, 1000}, {1, 100, 1}, {0, 0, 1}, {0, 3, 0},
	}
	for _, c := range cases {
		if got := Pow(c.b, c.e); got != c.want {
			t.Errorf("Pow(%d, %d) = %d, want %d", c.b, c.e, got, c.want)
		}
	}
}

func TestProdSum(t *testing.T) {
	if Prod() != 1 || Prod(2, 3, 4) != 24 {
		t.Error("Prod wrong")
	}
	if Sum() != 0 || Sum(1, 2, 3) != 6 {
		t.Error("Sum wrong")
	}
	if ProdExcept([]int{2, 3, 4}, 1) != 8 {
		t.Error("ProdExcept wrong")
	}
}

func TestMinMax(t *testing.T) {
	if MaxInt(3, 1, 4, 1, 5) != 5 {
		t.Error("MaxInt wrong")
	}
	if MinInt(3, 1, 4, 1, 5) != 1 {
		t.Error("MinInt wrong")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{{0, 3, 0}, {1, 3, 1}, {3, 3, 1}, {4, 3, 2}, {9, 3, 3}}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestISqrtAndPerfectSquare(t *testing.T) {
	for n := 0; n <= 10000; n++ {
		r := ISqrt(n)
		if r*r > n || (r+1)*(r+1) <= n {
			t.Fatalf("ISqrt(%d) = %d", n, r)
		}
		want := math.Sqrt(float64(n)) == math.Trunc(math.Sqrt(float64(n)))
		if IsPerfectSquare(n) != want {
			t.Fatalf("IsPerfectSquare(%d) = %v", n, IsPerfectSquare(n))
		}
	}
	if IsPerfectSquare(-4) {
		t.Error("IsPerfectSquare(-4) should be false")
	}
}

func TestIntRoot(t *testing.T) {
	for k := 1; k <= 5; k++ {
		for n := 0; n <= 3000; n++ {
			r := IntRoot(n, k)
			if Pow(r, k) > n {
				t.Fatalf("IntRoot(%d, %d) = %d too large", n, k, r)
			}
			if Pow(r+1, k) <= n {
				t.Fatalf("IntRoot(%d, %d) = %d too small", n, k, r)
			}
		}
	}
	if !IsPerfectPower(64, 2) || !IsPerfectPower(64, 3) || !IsPerfectPower(64, 6) {
		t.Error("64 should be a perfect square, cube and 6th power")
	}
	if IsPerfectPower(63, 2) || IsPerfectPower(50, 3) {
		t.Error("63/50 misclassified as perfect powers")
	}
}

func TestRankCoordRoundTrip(t *testing.T) {
	shapes := [][]int{{4}, {3, 5}, {2, 3, 4}, {5, 1, 2, 3}}
	for _, shape := range shapes {
		n := Prod(shape...)
		coord := make([]int, len(shape))
		for r := 0; r < n; r++ {
			CoordOf(r, shape, coord)
			if RankOf(coord, shape) != r {
				t.Fatalf("round trip failed for shape %v rank %d (coord %v)", shape, r, coord)
			}
		}
	}
}

func TestRankRowMajorOrder(t *testing.T) {
	// Last coordinate varies fastest.
	shape := []int{2, 3}
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	i := 0
	EachCoord(shape, func(c []int) {
		if !EqualInts(c, want[i]) {
			t.Fatalf("EachCoord[%d] = %v, want %v", i, c, want[i])
		}
		i++
	})
	if i != 6 {
		t.Fatalf("EachCoord visited %d coords, want 6", i)
	}
}

func TestPermutations(t *testing.T) {
	count := 0
	seen := map[string]bool{}
	Permutations(4, func(p []int) {
		count++
		key := ""
		for _, v := range p {
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[key] = true
	})
	if count != 24 {
		t.Fatalf("Permutations(4) produced %d perms, want 24", count)
	}
}

func TestGrayCode(t *testing.T) {
	for i := 0; i < 1024; i++ {
		g := GrayCode(i)
		if GrayRank(g) != i {
			t.Fatalf("GrayRank(GrayCode(%d)) = %d", i, GrayRank(g))
		}
		if i > 0 {
			diff := g ^ GrayCode(i-1)
			if PopCount(diff) != 1 {
				t.Fatalf("consecutive Gray codes %d,%d differ in %d bits", i-1, i, PopCount(diff))
			}
		}
	}
}

func TestCopyEqualSorted(t *testing.T) {
	a := []int{3, 1, 2}
	b := CopyInts(a)
	b[0] = 9
	if a[0] != 3 {
		t.Error("CopyInts did not copy")
	}
	if !EqualInts([]int{1, 2}, []int{1, 2}) || EqualInts([]int{1}, []int{1, 2}) || EqualInts([]int{1, 2}, []int{2, 1}) {
		t.Error("EqualInts wrong")
	}
	if !EqualInts(SortedCopy(a), []int{1, 2, 3}) {
		t.Error("SortedCopy wrong")
	}
}

func TestEModRandomAgainstDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := rng.Intn(2001) - 1000
		m := rng.Intn(50) + 1
		r := EMod(a, m)
		if r < 0 || r >= m || (a-r)%m != 0 {
			t.Fatalf("EMod(%d, %d) = %d violates definition", a, m, r)
		}
	}
}

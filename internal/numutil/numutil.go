// Package numutil provides small integer-arithmetic helpers shared by the
// partitioning and mapping algorithms: gcd/lcm, Euclidean remainders, prime
// factorization, divisor enumeration and mixed-radix index codecs.
//
// Everything here operates on int; the quantities involved (processor counts,
// tile counts, matrix coefficients) comfortably fit in 64-bit integers for
// every realistic input (p up to millions, d up to ~8).
package numutil

import (
	"fmt"
	"sort"
)

// GCD returns the non-negative greatest common divisor of a and b.
// GCD(0, 0) == 0 by convention.
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, or 0 if either is 0.
func LCM(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	g := GCD(a, b)
	return a / g * b
}

// GCDAll folds GCD over xs. GCDAll() == 0.
func GCDAll(xs ...int) int {
	g := 0
	for _, x := range xs {
		g = GCD(g, x)
	}
	return g
}

// EMod returns the Euclidean remainder of a modulo m: the unique value in
// [0, m) congruent to a. m must be positive.
func EMod(a, m int) int {
	if m <= 0 {
		panic(fmt.Sprintf("numutil: EMod modulus %d must be positive", m))
	}
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// Factor is one prime factor of an integer together with its multiplicity.
type Factor struct {
	Prime int // the prime α
	Exp   int // its multiplicity r (≥ 1)
}

// Factorize returns the prime factorization of n (n ≥ 1) with primes in
// increasing order. Factorize(1) returns an empty slice.
func Factorize(n int) []Factor {
	if n < 1 {
		panic(fmt.Sprintf("numutil: Factorize(%d): argument must be ≥ 1", n))
	}
	var fs []Factor
	for p := 2; p*p <= n; p++ {
		if n%p != 0 {
			continue
		}
		e := 0
		for n%p == 0 {
			n /= p
			e++
		}
		fs = append(fs, Factor{Prime: p, Exp: e})
	}
	if n > 1 {
		fs = append(fs, Factor{Prime: n, Exp: 1})
	}
	return fs
}

// Divisors returns all positive divisors of n (n ≥ 1) in increasing order.
func Divisors(n int) []int {
	if n < 1 {
		panic(fmt.Sprintf("numutil: Divisors(%d): argument must be ≥ 1", n))
	}
	divs := []int{1}
	for _, f := range Factorize(n) {
		cur := len(divs)
		pk := 1
		for e := 1; e <= f.Exp; e++ {
			pk *= f.Prime
			for i := 0; i < cur; i++ {
				divs = append(divs, divs[i]*pk)
			}
		}
	}
	sort.Ints(divs)
	return divs
}

// Pow returns base**exp for exp ≥ 0 using binary exponentiation.
func Pow(base, exp int) int {
	if exp < 0 {
		panic(fmt.Sprintf("numutil: Pow exponent %d must be ≥ 0", exp))
	}
	result := 1
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}

// Prod returns the product of xs. Prod() == 1.
func Prod(xs ...int) int {
	p := 1
	for _, x := range xs {
		p *= x
	}
	return p
}

// ProdExcept returns the product of all xs except xs[i].
func ProdExcept(xs []int, i int) int {
	p := 1
	for j, x := range xs {
		if j != i {
			p *= x
		}
	}
	return p
}

// Sum returns the sum of xs.
func Sum(xs ...int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// MaxInt returns the maximum of xs; it panics on an empty argument list.
func MaxInt(xs ...int) int {
	if len(xs) == 0 {
		panic("numutil: MaxInt of no values")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MinInt returns the minimum of xs; it panics on an empty argument list.
func MinInt(xs ...int) int {
	if len(xs) == 0 {
		panic("numutil: MinInt of no values")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// CeilDiv returns ⌈a/b⌉ for positive b and non-negative a.
func CeilDiv(a, b int) int {
	if b <= 0 || a < 0 {
		panic(fmt.Sprintf("numutil: CeilDiv(%d, %d): need a ≥ 0, b > 0", a, b))
	}
	return (a + b - 1) / b
}

// IsPerfectSquare reports whether n is a perfect square (n ≥ 0).
func IsPerfectSquare(n int) bool {
	if n < 0 {
		return false
	}
	r := ISqrt(n)
	return r*r == n
}

// ISqrt returns ⌊√n⌋ for n ≥ 0.
func ISqrt(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("numutil: ISqrt(%d): argument must be ≥ 0", n))
	}
	if n < 2 {
		return n
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}

// IntRoot returns the largest r with r**k ≤ n, for n ≥ 0 and k ≥ 1.
func IntRoot(n, k int) int {
	if n < 0 || k < 1 {
		panic(fmt.Sprintf("numutil: IntRoot(%d, %d): need n ≥ 0, k ≥ 1", n, k))
	}
	if n < 2 || k == 1 {
		return n
	}
	lo, hi := 1, 1
	for Pow(hi+1, k) <= n {
		hi = hi*2 + 1
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if Pow(mid, k) <= n {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// IsPerfectPower reports whether n == r**k for some integer r (n ≥ 1, k ≥ 1).
func IsPerfectPower(n, k int) bool {
	if n < 1 {
		return false
	}
	r := IntRoot(n, k)
	return Pow(r, k) == n
}

// Mixed-radix codecs. A shape (s₀, …, s_{n−1}) defines coordinates
// 0 ≤ cᵢ < sᵢ; Rank linearizes with the LAST coordinate varying fastest
// (row-major), matching the layout used by grid storage.

// RankOf returns the row-major linear index of coord within shape.
func RankOf(coord, shape []int) int {
	if len(coord) != len(shape) {
		panic("numutil: RankOf: coordinate/shape rank mismatch")
	}
	r := 0
	for i, c := range coord {
		if c < 0 || c >= shape[i] {
			panic(fmt.Sprintf("numutil: RankOf: coordinate %d out of range [0,%d)", c, shape[i]))
		}
		r = r*shape[i] + c
	}
	return r
}

// CoordOf writes the row-major coordinates of linear index r within shape
// into dst (which must have len(shape)) and returns dst.
func CoordOf(r int, shape, dst []int) []int {
	if len(dst) != len(shape) {
		panic("numutil: CoordOf: dst/shape rank mismatch")
	}
	for i := len(shape) - 1; i >= 0; i-- {
		dst[i] = r % shape[i]
		r /= shape[i]
	}
	if r != 0 {
		panic("numutil: CoordOf: index out of range for shape")
	}
	return dst
}

// EachCoord calls f once for every coordinate of shape in row-major order.
// The slice passed to f is reused between calls; f must copy it to retain it.
func EachCoord(shape []int, f func(coord []int)) {
	n := Prod(shape...)
	coord := make([]int, len(shape))
	for r := 0; r < n; r++ {
		CoordOf(r, shape, coord)
		f(coord)
	}
}

// CopyInts returns a copy of xs.
func CopyInts(xs []int) []int {
	out := make([]int, len(xs))
	copy(out, xs)
	return out
}

// EqualInts reports whether a and b hold the same values.
func EqualInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortedCopy returns a sorted copy of xs (ascending).
func SortedCopy(xs []int) []int {
	out := CopyInts(xs)
	sort.Ints(out)
	return out
}

// Permutations calls f with every permutation of [0, n). The slice passed to
// f is reused; f must copy it to retain it. n must be small (it is used for
// dimension counts, n ≤ 8 in practice).
func Permutations(n int, f func(perm []int)) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			f(perm)
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
}

// GrayCode returns the i-th value of the binary reflected Gray code.
func GrayCode(i int) int {
	return i ^ (i >> 1)
}

// GrayRank is the inverse of GrayCode: given g = GrayCode(i), it returns i.
func GrayRank(g int) int {
	i := 0
	for g != 0 {
		i ^= g
		g >>= 1
	}
	return i
}

// PopCount returns the number of set bits in x (x ≥ 0).
func PopCount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

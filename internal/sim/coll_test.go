package sim

import (
	"fmt"
	"math"
	"runtime"
	"testing"
)

func collMachine(p int) *Machine {
	return NewMachine(p,
		Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 1e-6, RecvOverhead: 1e-6},
		CPU{FlopsPerSec: 1e9})
}

// TestAllToAllPairwiseMatchesLegacyLoop pins the default AllToAll to the
// hand-rolled transpose loop it replaced: same peer order, same
// per-message compute bracketing, bit-identical clocks.
func TestAllToAllPairwiseMatchesLegacyLoop(t *testing.T) {
	const p, pm = 6, 2e-6
	sizes := func(q int) []int {
		s := make([]int, p)
		for i := range s {
			if i != q {
				s[i] = 1000 + 37*q + 11*i
			}
		}
		return s
	}
	legacy, err := collMachine(p).Run(func(r *Rank) {
		q, sz := r.ID, sizes(r.ID)
		tag := 424242
		for off := 1; off < p; off++ {
			dst := (q + off) % p
			r.Compute(pm)
			r.Send(dst, tag, Msg{Bytes: sz[dst]})
		}
		for off := 1; off < p; off++ {
			src := (q + off) % p
			r.Recv(src, tag)
			r.Compute(pm)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := collMachine(p).Run(func(r *Rank) {
		r.AllToAll(sizes(r.ID), nil, CollOpts{PerMessage: pm})
	})
	if err != nil {
		t.Fatal(err)
	}
	if coll.Makespan != legacy.Makespan {
		t.Errorf("AllToAll makespan %g != legacy loop %g", coll.Makespan, legacy.Makespan)
	}
	for id := range coll.Ranks {
		if coll.Ranks[id].FinalClock != legacy.Ranks[id].FinalClock {
			t.Errorf("rank %d clock %g != legacy %g",
				id, coll.Ranks[id].FinalClock, legacy.Ranks[id].FinalClock)
		}
	}
	if coll.TotalBytes() != legacy.TotalBytes() || coll.TotalMessages() != legacy.TotalMessages() {
		t.Errorf("traffic %d/%d != legacy %d/%d",
			coll.TotalBytes(), coll.TotalMessages(), legacy.TotalBytes(), legacy.TotalMessages())
	}
}

// TestGatherToLinearMatchesLegacyLoop pins the default GatherTo to the old
// dmem.GatherToRoot pattern: non-roots send, root receives in rank order,
// no per-message compute.
func TestGatherToLinearMatchesLegacyLoop(t *testing.T) {
	const p, bytes = 5, 4096
	legacy, err := collMachine(p).Run(func(r *Rank) {
		if r.ID != 0 {
			r.Send(0, 777, Msg{Bytes: bytes})
			return
		}
		for q := 1; q < p; q++ {
			r.Recv(q, 777)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	coll, err := collMachine(p).Run(func(r *Rank) {
		r.GatherTo(0, bytes, nil, CollOpts{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if coll.Makespan != legacy.Makespan {
		t.Errorf("GatherTo makespan %g != legacy loop %g", coll.Makespan, legacy.Makespan)
	}
}

func TestAllToAllDeliversPayloads(t *testing.T) {
	for _, alg := range []Alg{AlgPairwise, AlgRing, AlgBruck, AlgDoubling} {
		for _, p := range []int{1, 2, 4, 5, 8} {
			name := fmt.Sprintf("%s/p%d", alg, p)
			_, err := collMachine(p).Run(func(r *Rank) {
				data := make([][]float64, p)
				sizes := make([]int, p)
				for i := range data {
					data[i] = []float64{float64(100*r.ID + i)}
					sizes[i] = 8
				}
				out := r.AllToAll(sizes, data, CollOpts{Alg: alg, PerMessage: 1e-6})
				for src := 0; src < p; src++ {
					if len(out[src]) != 1 || out[src][0] != float64(100*src+r.ID) {
						panic(fmt.Sprintf("%s: block from %d corrupted: %v", name, src, out[src]))
					}
				}
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestAllToAllModelOnly(t *testing.T) {
	for _, alg := range []Alg{AlgPairwise, AlgRing, AlgBruck} {
		const p = 5
		res, err := collMachine(p).Run(func(r *Rank) {
			sizes := make([]int, p)
			for i := range sizes {
				if i != r.ID {
					sizes[i] = 1 << 10
				}
			}
			r.AllToAll(sizes, nil, CollOpts{Alg: alg})
		})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		// Every modeled byte must be charged at least once regardless of
		// how the algorithm stages the blocks.
		if min := p * (p - 1) << 10; res.TotalBytes() < min {
			t.Errorf("%s: %d bytes < direct-exchange volume %d", alg, res.TotalBytes(), min)
		}
	}
}

func TestAllGatherDeliversPayloads(t *testing.T) {
	for _, alg := range []Alg{AlgPairwise, AlgRing, AlgDoubling} {
		for _, p := range []int{1, 2, 4, 5, 8} {
			name := fmt.Sprintf("%s/p%d", alg, p)
			_, err := collMachine(p).Run(func(r *Rank) {
				out := r.AllGather(8, []float64{float64(r.ID) * 3}, CollOpts{Alg: alg})
				for src := 0; src < p; src++ {
					if len(out[src]) != 1 || out[src][0] != float64(src)*3 {
						panic(fmt.Sprintf("%s: origin %d block corrupted: %v", name, src, out[src]))
					}
				}
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestGatherToDeliversPayloads(t *testing.T) {
	for _, alg := range []Alg{AlgPairwise, AlgRing, AlgDoubling} {
		for _, root := range []int{0, 2} {
			const p = 5
			name := fmt.Sprintf("%s/root%d", alg, root)
			_, err := collMachine(p).Run(func(r *Rank) {
				out := r.GatherTo(root, 8, []float64{float64(r.ID) + 0.5}, CollOpts{Alg: alg})
				if r.ID != root {
					if out != nil {
						panic(name + ": non-root got data")
					}
					return
				}
				for src := 0; src < p; src++ {
					if len(out[src]) != 1 || out[src][0] != float64(src)+0.5 {
						panic(fmt.Sprintf("%s: origin %d corrupted: %v", name, src, out[src]))
					}
				}
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestBcastDeliversPayload(t *testing.T) {
	for _, alg := range []Alg{AlgPairwise, AlgRing, AlgDoubling} {
		for _, root := range []int{0, 2} {
			const p = 6
			name := fmt.Sprintf("%s/root%d", alg, root)
			_, err := collMachine(p).Run(func(r *Rank) {
				var mine []float64
				if r.ID == root {
					mine = []float64{42, 43}
				}
				got := r.Bcast(root, 16, mine, CollOpts{Alg: alg})
				if len(got) != 2 || got[0] != 42 || got[1] != 43 {
					panic(fmt.Sprintf("%s: rank %d got %v", name, r.ID, got))
				}
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

// TestCollectiveEventEmission checks that a collective appears as exactly
// one labeled EvCollective per rank with its constituent sends, receives
// and per-message computes suppressed from the trace (stats still accrue).
func TestCollectiveEventEmission(t *testing.T) {
	const p = 4
	m := collMachine(p)
	m.Trace = &Trace{}
	res, err := m.Run(func(r *Rank) {
		r.AllToAll([]int{100, 100, 100, 100}, nil, CollOpts{PerMessage: 1e-6})
	})
	if err != nil {
		t.Fatal(err)
	}
	var colls, others int
	for _, e := range m.Trace.Events() {
		switch e.Kind {
		case EvCollective:
			colls++
			if e.Label != "alltoall/pairwise" {
				t.Errorf("collective label = %q", e.Label)
			}
			if e.Bytes != 300 {
				t.Errorf("collective bytes = %d, want 300 sent inside", e.Bytes)
			}
		default:
			others++
		}
	}
	if colls != p {
		t.Errorf("%d collective events, want %d", colls, p)
	}
	if others != 0 {
		t.Errorf("%d constituent events leaked into the trace", others)
	}
	if res.TotalMessages() != p*(p-1) {
		t.Errorf("stats lost inner messages: %d", res.TotalMessages())
	}
}

// TestCollectivesUnderPhaseLabelReconcile is the satellite edge-case suite:
// collectives under an active phase label must bucket all their time so
// that per-phase totals reconcile exactly with each rank's final clock.
func TestCollectivesUnderPhaseLabelReconcile(t *testing.T) {
	const p = 5
	res, err := collMachine(p).Run(func(r *Rank) {
		r.BeginPhase("setup")
		r.Compute(5e-6)
		r.Barrier()
		r.BeginPhase("exchange")
		sizes := make([]int, p)
		for i := range sizes {
			sizes[i] = 512
		}
		r.AllToAll(sizes, nil, CollOpts{Alg: AlgRing, PerMessage: 1e-6})
		r.AllReduce([]float64{float64(r.ID)}, math.Max)
		r.BeginPhase("drain")
		r.GatherTo(0, 256, nil, CollOpts{})
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range res.Ranks {
		sum := 0.0
		for _, ps := range s.Phases {
			sum += ps.Total()
		}
		if math.Abs(sum-s.FinalClock) > 1e-12 {
			t.Errorf("rank %d: phase totals %g != final clock %g", id, sum, s.FinalClock)
		}
		for _, label := range []string{"setup", "exchange", "drain"} {
			if _, ok := s.Phases[label]; !ok {
				t.Errorf("rank %d: phase %q has no bucket", id, label)
			}
		}
	}
}

func TestCollectivePrimitivesP1(t *testing.T) {
	res, err := collMachine(1).Run(func(r *Rank) {
		out := r.AllToAll([]int{0}, [][]float64{{7}}, CollOpts{})
		if out[0][0] != 7 {
			panic("p=1 alltoall lost own block")
		}
		ag := r.AllGather(8, []float64{9}, CollOpts{})
		if ag[0][0] != 9 {
			panic("p=1 allgather lost own block")
		}
		g := r.GatherTo(0, 8, []float64{4}, CollOpts{})
		if g[0][0] != 4 {
			panic("p=1 gather lost own block")
		}
		if b := r.Bcast(0, 8, []float64{5}, CollOpts{}); b[0] != 5 {
			panic("p=1 bcast lost data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || res.TotalMessages() != 0 {
		t.Errorf("p=1 collectives cost time or messages: %g, %d", res.Makespan, res.TotalMessages())
	}
}

// TestCollectivesDeterministicUnderShuffledScheduling perturbs goroutine
// interleaving with yields and checks the virtual-time results are
// bit-identical across runs — the determinism contract the simulator
// promises (run under -race in CI).
func TestCollectivesDeterministicUnderShuffledScheduling(t *testing.T) {
	const p = 8
	body := func(seed int) func(r *Rank) {
		return func(r *Rank) {
			sizes := make([]int, p)
			for i := range sizes {
				sizes[i] = 256 * (1 + (r.ID+i)%3)
			}
			for y := 0; y < (r.ID*7+seed)%5; y++ {
				runtime.Gosched()
			}
			r.AllToAll(sizes, nil, CollOpts{Alg: AlgBruck, PerMessage: 1e-6})
			runtime.Gosched()
			r.Barrier()
			r.AllReduce([]float64{float64(r.ID)}, func(a, b float64) float64 { return a + b })
			r.AllGather(128, nil, CollOpts{Alg: AlgRing})
		}
	}
	first, err := collMachine(p).Run(body(0))
	if err != nil {
		t.Fatal(err)
	}
	for seed := 1; seed < 5; seed++ {
		again, err := collMachine(p).Run(body(seed))
		if err != nil {
			t.Fatal(err)
		}
		if again.Makespan != first.Makespan {
			t.Fatalf("seed %d: makespan %g != %g", seed, again.Makespan, first.Makespan)
		}
		for id := range again.Ranks {
			a, b := again.Ranks[id], first.Ranks[id]
			if a.FinalClock != b.FinalClock || a.WaitTime != b.WaitTime ||
				a.ComputeTime != b.ComputeTime || a.CommTime != b.CommTime ||
				a.BytesSent != b.BytesSent || a.MsgsSent != b.MsgsSent {
				t.Fatalf("seed %d: rank %d stats differ", seed, id)
			}
		}
	}
}

func TestExchangePrimitiveMatchesLegacyBracketing(t *testing.T) {
	const p, pm = 4, 2e-6
	legacy, err := collMachine(p).Run(func(r *Rank) {
		next, prev := (r.ID+1)%p, (r.ID+p-1)%p
		r.Compute(pm)
		r.SendRecv(next, 3, Msg{Bytes: 800}, prev, 3)
		r.Compute(pm)
	})
	if err != nil {
		t.Fatal(err)
	}
	prim, err := collMachine(p).Run(func(r *Rank) {
		next, prev := (r.ID+1)%p, (r.ID+p-1)%p
		r.Exchange(next, prev, 3, Msg{Bytes: 800}, pm)
	})
	if err != nil {
		t.Fatal(err)
	}
	if prim.Makespan != legacy.Makespan {
		t.Errorf("Exchange makespan %g != legacy %g", prim.Makespan, legacy.Makespan)
	}
}

package sim

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// EventKind classifies trace events.
type EventKind int

const (
	// EvCompute is a computation interval.
	EvCompute EventKind = iota
	// EvSend is a message injection.
	EvSend
	// EvRecv is a completed receive (including any wait).
	EvRecv
	// EvCollective is a barrier or reduction.
	EvCollective
	// EvMark is an application-defined annotation.
	EvMark
	// EvBlocked is a receive posted but (so far) not completed. Only the
	// flight recorder sees these: Recv records one before blocking so a
	// deadlock post-mortem shows what each rank's final, never-completed
	// receive was waiting on. Healthy receives follow up with an EvRecv.
	EvBlocked
	// EvIsend is a nonblocking message injection (Rank.Isend). Timing is
	// identical to EvSend — injection is eager either way — but the kind is
	// distinct so traces show which sends the overlap schedule posted early.
	EvIsend
	// EvIrecv marks the posting of a nonblocking receive (Rank.Irecv). The
	// event is zero-duration: matching and all cost happen at the Wait.
	EvIrecv
	// EvWait is the completion of a nonblocking receive (Request.Wait): the
	// interval from the Wait call to message consumption, with the blocked
	// portion in Wait — the same shape as EvRecv, which is what lets the
	// causal DAG treat the two uniformly.
	EvWait
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvCompute:
		return "compute"
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvCollective:
		return "collective"
	case EvBlocked:
		return "blocked"
	case EvIsend:
		return "isend"
	case EvIrecv:
		return "irecv"
	case EvWait:
		return "wait"
	default:
		return "mark"
	}
}

// ParseEventKind inverts EventKind.String. Unknown names are an error so
// trace deserialization fails loudly on schema drift.
func ParseEventKind(s string) (EventKind, error) {
	switch s {
	case "compute":
		return EvCompute, nil
	case "send":
		return EvSend, nil
	case "recv":
		return EvRecv, nil
	case "collective":
		return EvCollective, nil
	case "mark":
		return EvMark, nil
	case "blocked":
		return EvBlocked, nil
	case "isend":
		return EvIsend, nil
	case "irecv":
		return EvIrecv, nil
	case "wait":
		return EvWait, nil
	default:
		return 0, fmt.Errorf("sim: unknown event kind %q", s)
	}
}

// Event is one traced interval on a rank's timeline.
type Event struct {
	Rank  int
	Kind  EventKind
	Start float64 // virtual seconds
	End   float64
	Peer  int // counterpart rank for send/recv, −1 otherwise
	Bytes int
	Label string
	// Tag is the message tag for send/recv events. Together with
	// (Rank, Peer) and the per-channel FIFO delivery order it pairs each
	// recv with the send that produced its message.
	Tag int
	// Wait is the blocked portion of a recv or collective interval
	// (End − Start − Wait is the busy portion).
	Wait float64
	// Phase is the rank's phase label (Rank.BeginPhase) when the event was
	// recorded.
	Phase string
}

// Busy returns the non-waiting duration of the event.
func (e Event) Busy() float64 { return e.End - e.Start - e.Wait }

// Trace collects events from all ranks of a run. Enable by setting
// Machine.Trace before Run; the collection is concurrency-safe and ordered
// by (start time, rank) in Events().
type Trace struct {
	mu     sync.Mutex
	events []Event
}

func (t *Trace) add(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns the collected events sorted by start time, then rank.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].Rank < out[b].Rank
	})
	return out
}

// Append adds events to the trace directly, without a running machine.
// Deserializers and tests use it to reconstitute a recorded trace; Events()
// re-establishes the (start, rank) order regardless of insertion order.
func (t *Trace) Append(events ...Event) {
	t.mu.Lock()
	t.events = append(t.events, events...)
	t.mu.Unlock()
}

// Len returns the number of collected events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// RenderTimeline writes an ASCII Gantt chart of the run: one row per rank,
// the horizontal axis spanning [0, makespan] in width columns. Compute
// intervals render as '#', sends as '>', receives (including waiting) as
// '<', collectives as '|', idle as '.'. A non-positive makespan has no
// renderable time axis and is reported as an error.
func (t *Trace) RenderTimeline(w io.Writer, p int, makespan float64, width int) error {
	if makespan <= 0 || math.IsNaN(makespan) {
		return fmt.Errorf("sim: RenderTimeline: makespan %g is not positive; nothing to render", makespan)
	}
	if width < 10 {
		width = 10
	}
	rows := make([][]byte, p)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	colOf := func(ts float64) int {
		c := int(ts / makespan * float64(width))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	glyph := map[EventKind]byte{EvCompute: '#', EvSend: '>', EvRecv: '<', EvCollective: '|', EvMark: '*', EvBlocked: '?', EvIsend: '>', EvIrecv: '^', EvWait: '<'}
	for _, e := range t.Events() {
		if e.Rank < 0 || e.Rank >= p {
			continue
		}
		g := glyph[e.Kind]
		from, to := colOf(e.Start), colOf(e.End)
		for c := from; c <= to; c++ {
			// Compute fills; punctual events overwrite only idle cells so
			// long compute spans stay visible.
			if e.Kind == EvCompute || rows[e.Rank][c] == '.' {
				rows[e.Rank][c] = g
			}
		}
	}
	for r := 0; r < p; r++ {
		if _, err := fmt.Fprintf(w, "rank %3d |%s|\n", r, rows[r]); err != nil {
			return err
		}
	}
	// The footer right-aligns the makespan under the chart; narrow charts
	// (width < 18) get no padding rather than a negative strings.Repeat.
	pad := width - 18
	if pad < 0 {
		pad = 0
	}
	_, err := fmt.Fprintf(w, "          0%smakespan %.3gs\n", strings.Repeat(" ", pad), makespan)
	return err
}

// Mark records an application annotation at the rank's current time.
func (r *Rank) Mark(label string) {
	if tr := r.machine.Trace; tr != nil {
		tr.add(Event{Rank: r.ID, Kind: EvMark, Start: r.clock, End: r.clock, Peer: -1, Label: label, Phase: r.phase})
	}
}

// Fabric abstracts the interconnect topology behind Network. The paper's
// Section 3.1 cost model footnotes exactly two regimes — per-link scaling
// (crossbar-like, K₃ ∝ 1/p) and a shared bus (K₃ constant) — which Network
// hard-codes as a BandwidthScaling toggle. A Fabric generalizes that: the
// transit time of a message becomes a function of the endpoint pair (hop
// counts), the byte count, and optionally the current virtual-time link
// occupancy (contention). The two legacy regimes are Fabrics too, with
// bit-identical timing, so the default machine reproduces committed
// baselines exactly.
package sim

import (
	"fmt"
	"math/bits"
	"strings"

	"genmp/internal/obs/metrics"
)

// Fabric models the interconnect. A message from src to dst is charged
// HeadLatency (first byte in flight) plus BodyTime (bytes on the wire); the
// split matters because the head overlaps with the receiver still being
// busy, while the body serializes on the receiver's link. Inject maps a
// sender-side departure time to the actual injection time, which is where a
// contention model queues overlapping transfers; occupancy-free fabrics
// return t unchanged.
//
// A Fabric instance may carry mutable occupancy state (see WithContention)
// and must not be shared by concurrently running machines.
type Fabric interface {
	// Name identifies the topology ("crossbar", "bus", "hypercube", ...).
	Name() string
	// HeadLatency is the time for the first byte from src to reach dst.
	HeadLatency(src, dst int) float64
	// BodyTime is the time the message body occupies the endpoint link.
	BodyTime(src, dst, bytes int) float64
	// Transit is the full in-flight time, HeadLatency + BodyTime. It is a
	// separate method (not recombined by callers) so the uniform fabrics
	// can evaluate the legacy Network.Transit expression unchanged —
	// floating-point re-association would drift the zero-tolerance gate.
	Transit(src, dst, bytes int) float64
	// MeanHeadLatency is the head latency averaged over distinct pairs —
	// the K₂ flavor an analytic cost model should use for this topology.
	MeanHeadLatency() float64
	// Uniform reports whether transit time is independent of the endpoint
	// pair, letting collective cost models multiply instead of sum rounds.
	Uniform() bool
	// SharedMedium reports whether all ranks contend for one medium (the
	// paper's bus regime: K₃ independent of p).
	SharedMedium() bool
	// Inject returns the virtual time the message actually departs given
	// the sender wants to inject at t, and records any occupancy.
	Inject(src, dst int, t float64, bytes int) float64
}

// linkFabric is the occupancy-free fabric behind the two legacy regimes:
// every endpoint pair is one hop apart and timing is exactly the embedded
// Network's. The crossbar keeps a private link per rank; the bus shares one
// medium (Network.Transit divides bandwidth by p via FixedBus).
type linkFabric struct {
	net  Network
	name string
}

func (f linkFabric) Name() string                     { return f.name }
func (f linkFabric) HeadLatency(src, dst int) float64 { return f.net.Latency }
func (f linkFabric) BodyTime(src, dst, bytes int) float64 {
	return f.net.Transit(bytes) - f.net.Latency
}
func (f linkFabric) Transit(src, dst, bytes int) float64               { return f.net.Transit(bytes) }
func (f linkFabric) MeanHeadLatency() float64                          { return f.net.Latency }
func (f linkFabric) Uniform() bool                                     { return true }
func (f linkFabric) SharedMedium() bool                                { return f.net.Scaling == FixedBus }
func (f linkFabric) Inject(src, dst int, t float64, bytes int) float64 { return t }

// NewCrossbar returns the scalable per-link fabric: one hop everywhere,
// every rank its own full-bandwidth link (the Origin-like regime).
func NewCrossbar(net Network, p int) Fabric {
	net.Scaling = ScalePerProcessor
	net.p = p
	return linkFabric{net: net, name: "crossbar"}
}

// NewBus returns the shared-medium fabric: one hop everywhere, the stated
// bandwidth divided among all p ranks (the paper's bus footnote).
func NewBus(net Network, p int) Fabric {
	net.Scaling = FixedBus
	net.p = p
	return linkFabric{net: net, name: "bus"}
}

// hypercubeFabric routes on a binary hypercube over rank ids: the head
// latency multiplies by the hop count popcount(src⊕dst) while the body
// pipelines through at per-link bandwidth (wormhole-style). Non-power-of-2
// rank counts embed into the enclosing cube.
type hypercubeFabric struct {
	net      Network
	p        int
	meanHead float64
}

// NewHypercube builds the hop-count fabric for p ranks.
func NewHypercube(net Network, p int) Fabric {
	net.Scaling = ScalePerProcessor
	net.p = p
	f := &hypercubeFabric{net: net, p: p}
	if p > 1 {
		hops := 0
		for s := 0; s < p; s++ {
			for d := 0; d < p; d++ {
				if s != d {
					hops += bits.OnesCount(uint(s ^ d))
				}
			}
		}
		f.meanHead = net.Latency * float64(hops) / float64(p*(p-1))
	} else {
		f.meanHead = net.Latency
	}
	return f
}

func (f *hypercubeFabric) hops(src, dst int) int {
	h := bits.OnesCount(uint(src ^ dst))
	if h < 1 {
		h = 1
	}
	return h
}

func (f *hypercubeFabric) Name() string { return "hypercube" }
func (f *hypercubeFabric) HeadLatency(src, dst int) float64 {
	return f.net.Latency * float64(f.hops(src, dst))
}
func (f *hypercubeFabric) BodyTime(src, dst, bytes int) float64 {
	return f.net.Transit(bytes) - f.net.Latency
}
func (f *hypercubeFabric) Transit(src, dst, bytes int) float64 {
	return f.HeadLatency(src, dst) + f.BodyTime(src, dst, bytes)
}
func (f *hypercubeFabric) MeanHeadLatency() float64                          { return f.meanHead }
func (f *hypercubeFabric) Uniform() bool                                     { return false }
func (f *hypercubeFabric) SharedMedium() bool                                { return false }
func (f *hypercubeFabric) Inject(src, dst int, t float64, bytes int) float64 { return t }

// ContentionFabric wraps a base topology with per-link occupancy: each
// sender's egress link carries one message body at a time, so overlapping
// transfers from the same rank serialize in virtual time (an all-to-all
// burst queues instead of departing simultaneously). Only the egress side
// is modeled here — ingress already serializes on the receiver's clock in
// Recv. The occupancy array is indexed by sender and touched only from that
// rank's goroutine, so runs stay bit-reproducible; Machine.Run resets it so
// a fabric can be reused across runs (but never across concurrent ones).
type ContentionFabric struct {
	base   Fabric
	egress []float64
	// stalls, when set by Machine.Run, accumulates the virtual seconds
	// departures were delayed by a busy egress link. Purely observational:
	// timing is identical with or without it.
	stalls *metrics.FloatCounter
}

// WithContention wraps base with the per-egress-link serialization model.
func WithContention(base Fabric, p int) *ContentionFabric {
	return &ContentionFabric{base: base, egress: make([]float64, p)}
}

// Base returns the wrapped topology.
func (c *ContentionFabric) Base() Fabric { return c.base }

func (c *ContentionFabric) Name() string                     { return c.base.Name() + "+contention" }
func (c *ContentionFabric) HeadLatency(src, dst int) float64 { return c.base.HeadLatency(src, dst) }
func (c *ContentionFabric) BodyTime(src, dst, bytes int) float64 {
	return c.base.BodyTime(src, dst, bytes)
}
func (c *ContentionFabric) Transit(src, dst, bytes int) float64 {
	return c.base.Transit(src, dst, bytes)
}
func (c *ContentionFabric) MeanHeadLatency() float64 { return c.base.MeanHeadLatency() }
func (c *ContentionFabric) Uniform() bool            { return c.base.Uniform() }
func (c *ContentionFabric) SharedMedium() bool       { return c.base.SharedMedium() }

func (c *ContentionFabric) Inject(src, dst int, t float64, bytes int) float64 {
	depart := t
	if busy := c.egress[src]; busy > depart {
		depart = busy
	}
	if c.stalls != nil && depart > t {
		c.stalls.Add(depart - t)
	}
	c.egress[src] = depart + c.base.BodyTime(src, dst, bytes)
	return depart
}

func (c *ContentionFabric) reset() {
	for i := range c.egress {
		c.egress[i] = 0
	}
}

// DefaultFabric maps a Network's BandwidthScaling to the equivalent fabric:
// the timing is bit-identical to the pre-Fabric simulator for both regimes.
func DefaultFabric(net Network, p int) Fabric {
	if net.Scaling == FixedBus {
		return NewBus(net, p)
	}
	return NewCrossbar(net, p)
}

// FabricNames lists the topologies NewFabric accepts (a bare name may also
// take a "+contention" suffix).
func FabricNames() []string {
	return []string{"crossbar", "bus", "hypercube", "hypercube+contention"}
}

// NewFabric builds a fabric by topology name over the given network
// constants. The empty name (or "default") follows net.Scaling like the
// pre-Fabric simulator did; explicit names override the scaling field.
func NewFabric(name string, net Network, p int) (Fabric, error) {
	base, contend := strings.CutSuffix(name, "+contention")
	var fab Fabric
	switch base {
	case "", "default":
		fab = DefaultFabric(net, p)
	case "crossbar":
		fab = NewCrossbar(net, p)
	case "bus":
		fab = NewBus(net, p)
	case "hypercube":
		fab = NewHypercube(net, p)
	default:
		return nil, fmt.Errorf("sim: unknown topology %q (want one of %s)",
			name, strings.Join(FabricNames(), ", "))
	}
	if contend {
		fab = WithContention(fab, p)
	}
	return fab, nil
}

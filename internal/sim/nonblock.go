// Nonblocking point-to-point primitives — the virtual-time analogue of
// MPI_Isend/MPI_Irecv/MPI_Wait. The executors' overlap schedule (DESIGN.md
// §14) is built on these: post the carry send as soon as the boundary lines
// are solved, prepost the next phase's receives, and pay the wire only for
// whatever the interior compute failed to hide.
//
// Virtual-time semantics:
//
//   - Isend is eager, exactly like Send: the sender pays SendOverhead and the
//     fabric stamps the departure; the returned request exists so the caller
//     can observe MPI completion discipline (every request must be Waited).
//     Waiting a send request costs nothing.
//   - Irecv is free: it records the post (an EvIrecv marker) and returns a
//     handle. No clock movement, no matching.
//   - Wait on a receive request performs the entire receive: it matches the
//     message (FIFO per (src,dst,tag) channel, enforced to follow Irecv post
//     order), accrues the wait cost max(0, headArrival − clock) *at the Wait
//     call*, then pays the fabric body time and RecvOverhead. This is what
//     makes overlap measurable: compute executed between the post and the
//     Wait shrinks the wait term one-for-one.
//
// Because all cost accrues at Wait with the same arithmetic Recv uses,
// posting receives early is timing-neutral on its own; the win comes from
// posting *sends* early (boundary-first compute). The primitives still model
// the full discipline so the real-parallel backend (ROADMAP item 1) can
// inherit the schedule unchanged.
package sim

import (
	"fmt"

	"genmp/internal/xport"
)

// Request is the handle of one outstanding nonblocking operation. Every
// request must be completed by exactly one Wait (or via WaitAll); a failed
// run's FlightReport names the requests that were posted but never Waited.
// Waited requests are recycled — do not retain or reuse them after Wait.
type Request struct {
	r      *Rank
	isSend bool
	peer   int // dst for sends, src for receives
	tag    int
	bytes  int     // modeled size (sends; receives learn it at Wait)
	posted float64 // virtual time of the post
	phase  string  // rank phase label at post time
	seq    int     // post order within the (src,dst,tag) channel (receives)
	done   bool
	idx    int // position in r.pending while outstanding
}

// chanOrder tracks Irecv post order per mailbox channel so Waits cannot
// reorder matching: the mailbox matches at Wait time, so waiting requests
// out of post order on one channel would silently swap message contents
// relative to MPI semantics. We panic instead.
type chanOrder struct{ posted, waited int }

// IsSend reports whether the request belongs to an Isend.
func (q *Request) IsSend() bool { return q.isSend }

// Peer returns the counterpart rank (destination for sends, source for
// receives).
func (q *Request) Peer() int { return q.peer }

// Tag returns the request's message tag.
func (q *Request) Tag() int { return q.tag }

// Isend posts a nonblocking send to dst. Injection is eager — the sender
// pays only SendOverhead, identically to Send — so the message timing is
// bit-identical to Send posted at the same clock; the request handle exists
// for completion discipline and post-mortems. The event kind is EvIsend so
// traces and the causal DAG distinguish overlapped injections.
func (r *Rank) Isend(dst, tag int, m Msg) xport.Request {
	if dst < 0 || dst >= r.machine.P {
		panic(fmt.Sprintf("sim: Isend to rank %d of %d", dst, r.machine.P))
	}
	if m.Bytes == 0 && m.Payload != nil {
		m.Bytes = 8 * len(m.Payload)
	}
	m.Src = r.ID
	m.Tag = tag
	r.clock += r.machine.Net.SendOverhead
	r.addComm(r.machine.Net.SendOverhead)
	sent := r.machine.Fabric.Inject(r.ID, dst, r.clock, m.Bytes)
	r.addSent(dst, m.Bytes)
	if mm := r.machine.mm; mm != nil {
		mm.sent(r.ID, dst, m.Bytes)
		mm.nonblocking("isend").Inc()
	}
	if r.observing() {
		r.emit(Event{Rank: r.ID, Kind: EvIsend, Start: r.clock - r.machine.Net.SendOverhead, End: r.clock, Peer: dst, Bytes: m.Bytes, Tag: tag, Phase: r.phase})
	}
	r.mb.put(msgKey{src: r.ID, dst: dst, tag: tag}, m, sent)
	return r.newRequest(true, dst, tag, m.Bytes)
}

// Irecv posts a nonblocking receive from src. Posting is free in virtual
// time — matching and every cost component happen at Wait — and leaves an
// EvIrecv marker on the timeline so traces show where the post happened
// relative to the compute that hides the wire.
func (r *Rank) Irecv(src, tag int) xport.Request {
	if src < 0 || src >= r.machine.P {
		panic(fmt.Sprintf("sim: Irecv from rank %d of %d", src, r.machine.P))
	}
	if mm := r.machine.mm; mm != nil {
		mm.nonblocking("irecv").Inc()
	}
	if r.observing() {
		r.emit(Event{Rank: r.ID, Kind: EvIrecv, Start: r.clock, End: r.clock, Peer: src, Tag: tag, Phase: r.phase})
	}
	q := r.newRequest(false, src, tag, 0)
	key := msgKey{src: src, dst: r.ID, tag: tag}
	if r.chanSeq == nil {
		r.chanSeq = make(map[msgKey]*chanOrder)
	}
	co := r.chanSeq[key]
	if co == nil {
		co = &chanOrder{}
		r.chanSeq[key] = co
	}
	q.seq = co.posted
	co.posted++
	return q
}

// Wait completes the request. For receive requests it performs the full
// receive: the wait cost max(0, headArrival − clock) accrues here — not at
// the Irecv — then the fabric body time and RecvOverhead, and the matched
// message is returned. For send requests (eager injection) it returns the
// zero Msg at no cost. Waiting a request twice panics.
func (q *Request) Wait() Msg {
	r := q.r
	if q.done || r == nil {
		panic("sim: Wait on a completed (or recycled) request")
	}
	r.completeRequest(q)
	if mm := r.machine.mm; mm != nil {
		mm.nonblocking("wait").Inc()
	}
	if q.isSend {
		r.retireRequest(q)
		return Msg{}
	}
	key := msgKey{src: q.peer, dst: r.ID, tag: q.tag}
	co := r.chanSeq[key]
	if co.waited != q.seq {
		panic(fmt.Sprintf("sim: Wait out of Irecv post order on channel src=%d dst=%d tag=%d (request #%d waited, #%d is next)",
			q.peer, r.ID, q.tag, q.seq, co.waited))
	}
	co.waited++
	waitStart := r.clock
	// As in Recv: mark the wait as in-flight before blocking so a deadlock
	// post-mortem shows what this rank's final, never-completed Wait was
	// waiting on. A healthy Wait supersedes it with an EvWait.
	if fr := r.machine.Flight; fr != nil {
		fr.record(r.ID, Event{Rank: r.ID, Kind: EvBlocked, Start: waitStart, End: waitStart, Peer: q.peer, Tag: q.tag, Phase: r.phase})
	}
	m, sent, err := r.mb.get(key)
	if err != nil {
		panic(err)
	}
	fab := r.machine.Fabric
	headArrive := sent + fab.HeadLatency(q.peer, r.ID)
	wait := 0.0
	if headArrive > r.clock {
		wait = headArrive - r.clock
		r.addWait(wait)
		r.clock = headArrive
	}
	body := fab.BodyTime(q.peer, r.ID, m.Bytes)
	r.clock += body + r.machine.Net.RecvOverhead
	r.addComm(body + r.machine.Net.RecvOverhead)
	r.addRecvd(q.peer, m.Bytes)
	if r.observing() {
		r.emit(Event{Rank: r.ID, Kind: EvWait, Start: waitStart, End: r.clock, Peer: q.peer, Bytes: m.Bytes, Tag: q.tag, Wait: wait, Phase: r.phase})
	}
	r.retireRequest(q)
	return m
}

// WaitAll completes every request in order. Callers that need the received
// payloads should Wait the receive requests individually.
func (r *Rank) WaitAll(reqs ...xport.Request) {
	for _, q := range reqs {
		if q != nil {
			q.Wait()
		}
	}
}

// PendingRequests returns the rank's posted-but-not-Waited requests in post
// order. FlightReport uses it post-run to name leaked requests; tests use
// it to assert completion discipline.
func (r *Rank) PendingRequests() []*Request {
	out := make([]*Request, len(r.pending))
	copy(out, r.pending)
	return out
}

// newRequest takes a request from the rank's free list (or allocates one)
// and registers it as pending.
func (r *Rank) newRequest(isSend bool, peer, tag, bytes int) *Request {
	var q *Request
	if n := len(r.reqFree); n > 0 {
		q = r.reqFree[n-1]
		r.reqFree[n-1] = nil
		r.reqFree = r.reqFree[:n-1]
	} else {
		q = new(Request)
	}
	*q = Request{r: r, isSend: isSend, peer: peer, tag: tag, bytes: bytes, posted: r.clock, phase: r.phase, idx: len(r.pending)}
	r.pending = append(r.pending, q)
	return q
}

// completeRequest unlinks q from the pending list (swap-remove; report
// order is re-established by sorting on post time).
func (r *Rank) completeRequest(q *Request) {
	n := len(r.pending) - 1
	last := r.pending[n]
	r.pending[q.idx] = last
	last.idx = q.idx
	r.pending[n] = nil
	r.pending = r.pending[:n]
	q.done = true
}

// retireRequest recycles a completed request envelope.
func (r *Rank) retireRequest(q *Request) {
	*q = Request{done: true}
	if len(r.reqFree) < 64 {
		r.reqFree = append(r.reqFree, q)
	}
}

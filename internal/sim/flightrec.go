// The flight recorder is the machine's black box: a fixed-size ring of the
// most recent events per rank, recorded unconditionally (even inside
// collectives, where the timeline trace is suppressed) and without
// allocation, so it can stay on during long runs. When a run fails — a
// deadlock, a panic in a rank body — the recorder turns the one-line error
// into a post-mortem: each rank's last N events, what each blocked rank
// was waiting for, and which sent messages were never received. The rings
// can also be rendered as a Trace for Perfetto export of the final
// moments.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultFlightDepth is the per-rank ring size NewFlightRecorder uses for
// depth ≤ 0.
const DefaultFlightDepth = 64

// FlightRecorder is a bounded per-rank ring of recent events. Attach one
// to Machine.Flight before Run; it is reset (not grown) on every run.
// Recording is single-writer per ring — each rank records only its own
// events — and readers (the failure report, Trace) run only after the rank
// has blocked or exited, so no per-event locking is needed.
type FlightRecorder struct {
	depth int
	rings []flightRing
}

type flightRing struct {
	buf []Event
	n   int // total events recorded; buf[(n-1)%depth] is the newest
}

// NewFlightRecorder returns a recorder keeping the last depth events per
// rank (DefaultFlightDepth if depth ≤ 0).
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{depth: depth}
}

// Depth returns the per-rank ring capacity.
func (f *FlightRecorder) Depth() int { return f.depth }

// attach sizes the rings for p ranks and clears the previous run's events;
// ring buffers are reused so repeated runs allocate nothing new.
func (f *FlightRecorder) attach(p int) {
	if len(f.rings) != p {
		f.rings = make([]flightRing, p)
	}
	for i := range f.rings {
		if f.rings[i].buf == nil {
			f.rings[i].buf = make([]Event, f.depth)
		}
		f.rings[i].n = 0
	}
}

// record stores one event in rank's ring, overwriting the oldest.
func (f *FlightRecorder) record(rank int, e Event) {
	rg := &f.rings[rank]
	rg.buf[rg.n%f.depth] = e
	rg.n++
}

// RankEvents returns rank's retained events, oldest first, and the total
// number the rank recorded (≥ len of the returned slice once the ring has
// wrapped).
func (f *FlightRecorder) RankEvents(rank int) (events []Event, total int) {
	if rank < 0 || rank >= len(f.rings) {
		return nil, 0
	}
	rg := &f.rings[rank]
	kept := rg.n
	if kept > f.depth {
		kept = f.depth
	}
	out := make([]Event, 0, kept)
	for i := rg.n - kept; i < rg.n; i++ {
		out = append(out, rg.buf[i%f.depth])
	}
	return out, rg.n
}

// Trace assembles the retained events of every rank into a Trace, suitable
// for obs.WriteTraceFile — a Perfetto fragment of the run's final moments.
func (f *FlightRecorder) Trace() *Trace {
	tr := &Trace{}
	for rank := range f.rings {
		events, _ := f.RankEvents(rank)
		for _, e := range events {
			tr.add(e)
		}
	}
	return tr
}

// formatFlightEvent renders one ring entry for the report.
func formatFlightEvent(e Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%-12.6g %-10s", e.Start, e.Kind)
	switch e.Kind {
	case EvCompute:
		fmt.Fprintf(&b, " %.6gs", e.End-e.Start)
	case EvSend, EvIsend:
		fmt.Fprintf(&b, " -> rank %d tag %d (%d B)", e.Peer, e.Tag, e.Bytes)
	case EvRecv, EvWait:
		fmt.Fprintf(&b, " <- rank %d tag %d (%d B", e.Peer, e.Tag, e.Bytes)
		if e.Wait > 0 {
			fmt.Fprintf(&b, ", waited %.6gs", e.Wait)
		}
		b.WriteString(")")
	case EvIrecv:
		fmt.Fprintf(&b, " <- rank %d tag %d (posted)", e.Peer, e.Tag)
	case EvBlocked:
		fmt.Fprintf(&b, " <- rank %d tag %d (never completed)", e.Peer, e.Tag)
	case EvCollective:
		fmt.Fprintf(&b, " %s", e.Label)
		if e.Wait > 0 {
			fmt.Fprintf(&b, " (waited %.6gs)", e.Wait)
		}
	case EvMark:
		fmt.Fprintf(&b, " %q", e.Label)
	}
	if e.Phase != "" {
		fmt.Fprintf(&b, "  [phase %s]", e.Phase)
	}
	return b.String()
}

// pendingMsg summarizes one undelivered mailbox channel in the report.
type pendingMsg struct {
	src, dst, tag, count, bytes int
}

// mailboxState snapshots what the post-mortem needs: which ranks are
// blocked on which (src, tag), and which channels hold sent-but-unreceived
// messages.
func (mb *mailbox) mailboxState() (waiting map[int]msgKey, pending []pendingMsg) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	waiting = make(map[int]msgKey, len(mb.waiting))
	for dst, k := range mb.waiting {
		waiting[dst] = k
	}
	for k, q := range mb.queues {
		if len(q) == 0 {
			continue
		}
		bytes := 0
		for _, env := range q {
			bytes += env.msg.Bytes
		}
		pending = append(pending, pendingMsg{src: k.src, dst: k.dst, tag: k.tag, count: len(q), bytes: bytes})
	}
	sort.Slice(pending, func(a, b int) bool {
		if pending[a].src != pending[b].src {
			return pending[a].src < pending[b].src
		}
		if pending[a].dst != pending[b].dst {
			return pending[a].dst < pending[b].dst
		}
		return pending[a].tag < pending[b].tag
	})
	return waiting, pending
}

// FlightReport renders the post-mortem of the machine's most recent run:
// per rank, its blocked receive (if any) and the last events in its ring,
// followed by the sent-but-never-received messages still queued in the
// mailbox. It is what Run appends to the error when a flight recorder is
// attached; callers can also invoke it directly after a failed run.
func (m *Machine) FlightReport() string {
	f := m.Flight
	if f == nil {
		return "sim: no flight recorder attached"
	}
	var waiting map[int]msgKey
	var pending []pendingMsg
	if m.mbox != nil {
		waiting, pending = m.mbox.mailboxState()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder (last %d events per rank):\n", f.depth)
	for rank := range f.rings {
		events, total := f.RankEvents(rank)
		fmt.Fprintf(&b, "rank %d", rank)
		if k, ok := waiting[rank]; ok {
			fmt.Fprintf(&b, "  BLOCKED in Recv(src=%d, tag=%d)", k.src, k.tag)
		}
		fmt.Fprintf(&b, ":\n")
		if total > len(events) {
			fmt.Fprintf(&b, "  ... %d earlier event(s) overwritten\n", total-len(events))
		}
		for _, e := range events {
			fmt.Fprintf(&b, "  %s\n", formatFlightEvent(e))
		}
		if len(events) == 0 {
			fmt.Fprintf(&b, "  (no events recorded)\n")
		}
		if rank < len(m.ranks) && m.ranks[rank] != nil {
			if reqs := m.ranks[rank].PendingRequests(); len(reqs) > 0 {
				sort.Slice(reqs, func(a, b int) bool { return reqs[a].posted < reqs[b].posted })
				fmt.Fprintf(&b, "  un-Waited requests:\n")
				for _, q := range reqs {
					op, arrow := "irecv", "<-"
					if q.isSend {
						op, arrow = "isend", "->"
					}
					fmt.Fprintf(&b, "    %s %s rank %d tag %d, posted t=%.6g", op, arrow, q.peer, q.tag, q.posted)
					if q.phase != "" {
						fmt.Fprintf(&b, " [phase %s]", q.phase)
					}
					b.WriteString("\n")
				}
			}
		}
	}
	if len(pending) > 0 {
		fmt.Fprintf(&b, "sent but never received:\n")
		for _, pm := range pending {
			fmt.Fprintf(&b, "  rank %d -> rank %d tag %d: %d message(s), %d bytes\n",
				pm.src, pm.dst, pm.tag, pm.count, pm.bytes)
		}
	}
	return b.String()
}

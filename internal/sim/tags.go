package sim

import "genmp/internal/xport"

// The tag registry moved to internal/xport with the transport carve-out:
// tag values are part of the compiled schedule, so they must be shared by
// every backend. These aliases keep the historical sim.ReserveTags /
// sim.TagSpace spellings (and every reservation made through them) working
// unchanged — there is exactly one registry.

// TagSpace is a reserved, half-open range [Base, Base+Size) of message
// tags (see xport.TagSpace).
type TagSpace = xport.TagSpace

// ReserveTags registers the half-open tag range [base, base+size) under
// the given owner name in the shared registry (see xport.ReserveTags).
func ReserveTags(name string, base, size int) TagSpace {
	return xport.ReserveTags(name, base, size)
}

// TagSpaces returns a snapshot of all reservations sorted by base.
func TagSpaces() []TagSpace { return xport.TagSpaces() }

// collTags is the tag space of the built-in collective primitives
// (AllToAll, AllGather, GatherTo, Bcast).
var collTags = ReserveTags("sim/collective", 1<<30, 16)

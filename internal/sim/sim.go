// Package sim is a deterministic virtual-time message-passing machine — the
// stand-in for the paper's MPI runs on a 128-CPU SGI Origin 2000. Each rank
// executes as a goroutine and carries a logical clock; computation advances
// the clock by modeled time, and every message carries the virtual time at
// which it arrives (sender clock + per-message latency + bytes / bandwidth).
// A receive completes at max(receiver clock, arrival time). The program's
// makespan is the maximum final clock over all ranks.
//
// The timing is data-driven, so results are bit-reproducible regardless of
// goroutine scheduling. Payloads are optional: correctness runs exchange
// real float64 data; performance-model runs ship only byte counts.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"

	"genmp/internal/obs/metrics"
	"genmp/internal/xport"
)

// A Rank is the virtual-time implementation of the transport interface the
// plan executors run against; internal/rt provides the wall-clock one.
var _ xport.Transport = (*Rank)(nil)

// Network models the communication fabric. Transit time of an n-byte
// message is Latency + n/Bandwidth(p); the sender additionally spends
// SendOverhead of CPU time per message and the receiver RecvOverhead.
//
// BandwidthScaling selects the Section 3.1 footnote alternatives: with
// ScalePerProcessor the aggregate bandwidth grows with p (each link keeps
// Bandwidth bytes/s — a scalable interconnect like the Origin's); with
// FixedBus all processors share a single Bandwidth (K₃(p) constant).
type Network struct {
	Latency      float64 // seconds per message (start-up, the paper's K₂ flavor)
	Bandwidth    float64 // bytes per second per link
	SendOverhead float64 // sender CPU seconds per message
	RecvOverhead float64 // receiver CPU seconds per message
	Scaling      BandwidthScaling
	p            int
}

// BandwidthScaling selects how aggregate bandwidth depends on p.
type BandwidthScaling int

const (
	// ScalePerProcessor: every rank has its own link of the stated
	// bandwidth (network bandwidth proportional to p; K₃(p) ∝ 1/p per the
	// paper's footnote when expressed per total volume).
	ScalePerProcessor BandwidthScaling = iota
	// FixedBus: the stated bandwidth is shared by all ranks (bus-based
	// system; K₃ constant).
	FixedBus
)

// Transit returns the modeled in-flight time of an n-byte message.
func (nw Network) Transit(bytes int) float64 {
	bw := nw.Bandwidth
	if nw.Scaling == FixedBus && nw.p > 1 {
		bw /= float64(nw.p)
	}
	t := nw.Latency
	if bytes > 0 && bw > 0 {
		t += float64(bytes) / bw
	}
	return t
}

// CPU models per-rank computation speed, with an optional cache-residence
// effect: as the per-rank working set shrinks toward the L2 capacity, the
// sustained rate rises toward FlopsPerSec·CacheBoost. This reproduces the
// superlinear speedups real SP runs show on machines like the Origin 2000
// (4 MB L2 per CPU) once each processor's slice of the arrays becomes
// cache-resident.
type CPU struct {
	FlopsPerSec float64
	// CacheBoost is the maximum rate multiplier when the working set fits
	// in L2 (≤ 1 disables the model).
	CacheBoost float64
	// L2Bytes is the per-CPU cache capacity.
	L2Bytes float64
	// WorkingSetBytes is the per-rank resident data volume of the current
	// program (0 disables the model).
	WorkingSetBytes float64
}

// EffectiveFlopsPerSec returns the modeled sustained rate:
// FlopsPerSec · (1 + (CacheBoost−1)·min(1, L2Bytes/WorkingSetBytes)).
func (c CPU) EffectiveFlopsPerSec() float64 {
	if c.CacheBoost <= 1 || c.L2Bytes <= 0 || c.WorkingSetBytes <= 0 {
		return c.FlopsPerSec
	}
	frac := c.L2Bytes / c.WorkingSetBytes
	if frac > 1 {
		frac = 1
	}
	return c.FlopsPerSec * (1 + (c.CacheBoost-1)*frac)
}

// Machine is a p-rank virtual machine. Set Trace to a non-nil *Trace
// before Run to collect per-rank event timelines.
type Machine struct {
	P   int
	Net Network
	CPU CPU
	// Fabric is the interconnect topology. Left nil, Run installs
	// DefaultFabric(Net, P) — timing bit-identical to the pre-Fabric
	// simulator. A stateful fabric (contention) is reset at each Run and
	// must not be shared by concurrently running machines.
	Fabric Fabric
	// Coll is the default collective algorithm applied when a call passes
	// AlgAuto; zero (AlgAuto) keeps each primitive's legacy algorithm.
	Coll  Alg
	Trace *Trace
	// Metrics mirrors run activity (messages, bytes, per-link traffic,
	// collectives, pool and mailbox recycling, contention stalls) into a
	// live registry scrapeable mid-run. Nil falls back to the package
	// default installed by SetDefaultMetrics; with both nil the hot paths
	// pay one nil check and nothing else. Metrics never touch virtual
	// clocks, so results are bit-identical either way.
	Metrics *metrics.Registry
	// Flight, when non-nil, keeps a bounded ring of recent events per rank
	// (recorded even inside collectives) and turns a failed run's one-line
	// error into a post-mortem: Run appends FlightReport to the error.
	Flight *FlightRecorder
	// PProfLabels tags every rank goroutine with runtime/pprof labels
	// ("rank", and "phase" updated by BeginPhase), so CPU/heap profiles
	// collected from the -metrics-addr endpoint attribute samples to sweep
	// phases. Off by default: label swaps allocate, and the differential
	// alloc tests pin the unlabeled path.
	PProfLabels bool
	// mm holds the resolved metric handles of the effective registry.
	mm *machMetrics
	// pool recycles message payload buffers across ranks (Rank.GetPayload/
	// PutPayload); zero value ready to use.
	pool payloadPool
	// mbox is the reusable mailbox: queues and envelope free list persist
	// across runs (reset each Run) so repeated runs on one machine do not
	// re-allocate messaging state.
	mbox *mailbox
	// ranks retains the most recent run's rank states so FlightReport can
	// name nonblocking requests that were posted but never Waited.
	ranks []*Rank
}

// NewMachine builds a machine with the given rank count, network and CPU.
func NewMachine(p int, net Network, cpu CPU) *Machine {
	if p < 1 {
		panic(fmt.Sprintf("sim: machine needs p ≥ 1, got %d", p))
	}
	net.p = p
	return &Machine{P: p, Net: net, CPU: cpu}
}

// Stats aggregates one rank's activity.
type Stats struct {
	ComputeTime float64 // seconds spent in Compute/ComputeFlops
	CommTime    float64 // seconds spent in send/recv overheads
	WaitTime    float64 // seconds spent idle waiting for messages/barriers
	MsgsSent    int
	BytesSent   int
	MsgsRecv    int
	BytesRecv   int
	// FinalClock is the rank's clock when its body returned; IdleTime is
	// Makespan − FinalClock, the trailing idle until the slowest rank
	// finishes. Both are filled in by Run.
	FinalClock float64
	IdleTime   float64
	// Phases breaks the three time counters and the traffic down by the
	// phase label active when they accrued (see Rank.BeginPhase). Activity
	// before the first BeginPhase lands under the empty label.
	Phases map[string]PhaseStats
	// Peers breaks the point-to-point traffic down by counterpart rank.
	Peers map[int]PeerIO
}

// PhaseStats is one phase-label bucket of a rank's Stats.
type PhaseStats struct {
	ComputeTime float64
	CommTime    float64
	WaitTime    float64
	MsgsSent    int
	BytesSent   int
	MsgsRecv    int
	BytesRecv   int
}

// Busy returns the non-waiting time of the bucket.
func (ps PhaseStats) Busy() float64 { return ps.ComputeTime + ps.CommTime }

// Total returns all time accounted to the bucket.
func (ps PhaseStats) Total() float64 { return ps.ComputeTime + ps.CommTime + ps.WaitTime }

// PhaseLabels returns the rank's phase labels in sorted order — the
// deterministic iteration order for Phases, which profiling and
// serialization rely on for bit-stable output.
func (s Stats) PhaseLabels() []string {
	out := make([]string, 0, len(s.Phases))
	for l := range s.Phases {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// PeerIO is the point-to-point traffic between one rank and one peer.
type PeerIO struct {
	MsgsSent  int
	BytesSent int
	MsgsRecv  int
	BytesRecv int
}

// Result summarizes a completed run.
type Result struct {
	Makespan float64 // max final clock over ranks (seconds of virtual time)
	Ranks    []Stats // per-rank statistics
}

// PhaseLabels returns the union of all ranks' phase labels in sorted
// order.
func (r Result) PhaseLabels() []string {
	set := map[string]bool{}
	for _, s := range r.Ranks {
		for l := range s.Phases {
			set[l] = true
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// TotalBytes returns the total bytes sent across all ranks.
func (r Result) TotalBytes() int {
	n := 0
	for _, s := range r.Ranks {
		n += s.BytesSent
	}
	return n
}

// TotalMessages returns the total messages sent across all ranks.
func (r Result) TotalMessages() int {
	n := 0
	for _, s := range r.Ranks {
		n += s.MsgsSent
	}
	return n
}

// Msg is a point-to-point message (see xport.Msg; the struct moved with
// the transport carve-out so plan consumers can build messages without
// importing the simulator).
type Msg = xport.Msg

type msgKey struct{ src, dst, tag int }

// envelope is a queued message plus the simulator-private injection
// timestamp (the sender's virtual time when the fabric accepted it). The
// timestamp used to be an unexported Msg field; it rides in the mailbox
// now so Msg itself is transport-neutral.
type envelope struct {
	msg  Msg
	sent float64
}

// mailbox matches sends to receives with per-(src,dst,tag) FIFO order.
// Deadlock detection: when every live rank is blocked in a receive and none
// of the keys they are waiting on has a queued message, nobody can ever
// make progress (messages for other keys can only be consumed by the
// already-blocked ranks). That situation — reachable via mismatched
// programs or a rank dying mid-protocol — fails the run instead of hanging.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][]*envelope
	// free recycles message envelopes, and drained queues keep their map
	// entry and backing array, so steady-state messaging allocates nothing
	// (the executors' hot loops send one message per phase or per block).
	free     []*envelope
	waiting  map[int]msgKey // dst rank → key it is blocked on
	alive    int
	blocked  int
	deadlock bool
	// envNew/envReused count envelope provenance (always on, read via
	// Machine.MailboxStats); mm mirrors them into the live registry.
	envNew, envReused int64
	mm                *machMetrics
}

// mailboxMaxFree bounds the envelope free list; in-flight envelopes live in
// the queues, so steady state holds far fewer.
const mailboxMaxFree = 1024

func newMailbox(p int) *mailbox {
	mb := &mailbox{
		queues:  make(map[msgKey][]*envelope),
		waiting: make(map[int]msgKey),
		alive:   p,
	}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// reset readies a mailbox for a fresh run: stale queued messages (left by an
// aborted run) are recycled, per-run progress state is cleared, and the
// queues keep their map entries and backing arrays.
func (mb *mailbox) reset(p int) {
	mb.mu.Lock()
	for k, q := range mb.queues {
		for i, env := range q {
			*env = envelope{}
			if len(mb.free) < mailboxMaxFree {
				mb.free = append(mb.free, env)
			}
			q[i] = nil
		}
		mb.queues[k] = q[:0]
	}
	for k := range mb.waiting {
		delete(mb.waiting, k)
	}
	mb.alive = p
	mb.blocked = 0
	mb.deadlock = false
	mb.mu.Unlock()
}

// setMetrics installs the registry handles the mailbox mirrors its envelope
// counters into (nil detaches); called by Run before ranks start.
func (mb *mailbox) setMetrics(mm *machMetrics) {
	mb.mu.Lock()
	mb.mm = mm
	mb.mu.Unlock()
}

func (mb *mailbox) isDeadlocked() bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.deadlock
}

func (mb *mailbox) put(k msgKey, m Msg, sent float64) {
	mb.mu.Lock()
	var env *envelope
	if n := len(mb.free); n > 0 {
		env = mb.free[n-1]
		mb.free[n-1] = nil
		mb.free = mb.free[:n-1]
		mb.envReused++
		if mb.mm != nil {
			mb.mm.envReused.Inc()
		}
	} else {
		env = new(envelope)
		mb.envNew++
		if mb.mm != nil {
			mb.mm.envNew.Inc()
		}
	}
	*env = envelope{msg: m, sent: sent}
	mb.queues[k] = append(mb.queues[k], env)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// anyDeliverable reports whether some blocked rank's awaited key has a
// queued message (it just has not woken yet). Callers hold mb.mu.
func (mb *mailbox) anyDeliverable() bool {
	for _, k := range mb.waiting {
		if len(mb.queues[k]) > 0 {
			return true
		}
	}
	return false
}

func (mb *mailbox) get(k msgKey) (Msg, float64, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if q := mb.queues[k]; len(q) > 0 {
			env := q[0]
			// Shift down in place (queues are short) so the key keeps its
			// backing array, and recycle the envelope.
			copy(q, q[1:])
			q[len(q)-1] = nil
			mb.queues[k] = q[:len(q)-1]
			m, sent := env.msg, env.sent
			*env = envelope{}
			if len(mb.free) < mailboxMaxFree {
				mb.free = append(mb.free, env)
			}
			return m, sent, nil
		}
		if mb.deadlock {
			// Keep (or restore) the waiting entry: once the run is doomed it
			// no longer drives progress detection, but the post-mortem
			// (mailboxState) reads it to name what each rank was blocked on.
			mb.waiting[k.dst] = k
			return Msg{}, 0, fmt.Errorf("sim: deadlock: rank %d waiting for message from %d tag %d", k.dst, k.src, k.tag)
		}
		mb.waiting[k.dst] = k
		mb.blocked++
		if mb.blocked == mb.alive && !mb.anyDeliverable() {
			mb.deadlock = true
			mb.blocked--
			mb.cond.Broadcast()
			return Msg{}, 0, fmt.Errorf("sim: deadlock: all ranks blocked with nothing deliverable (rank %d waits on src %d tag %d)", k.dst, k.src, k.tag)
		}
		mb.cond.Wait()
		mb.blocked--
		if !mb.deadlock {
			delete(mb.waiting, k.dst)
		}
	}
}

func (mb *mailbox) exit() {
	mb.mu.Lock()
	mb.alive--
	if mb.blocked == mb.alive && mb.alive > 0 && !mb.anyDeliverable() {
		mb.deadlock = true
	}
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// barrier implements a clock-synchronizing barrier / reduction rendezvous.
// Completion publishes a per-generation snapshot (outT, out) so that a fast
// rank re-entering the next generation cannot clobber what slower ranks of
// the previous generation still need to read; a new generation cannot
// complete before every rank (including the slow readers) participates in
// it.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	p       int
	count   int
	gen     int
	maxT    float64
	reduced []float64
	outT    float64
	out     []float64
	dead    bool
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// abort wakes and fails every present and future waiter; called when a rank
// exits (normally or by panic) so collectives cannot hang.
func (b *barrier) abort() {
	b.mu.Lock()
	b.dead = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// sync blocks until all p ranks arrive; returns the max arrival clock and
// the elementwise-combined values (combine may be nil when vals is nil).
func (b *barrier) sync(t float64, vals []float64, combine func(a, b float64) float64) (float64, []float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		panic("sim: collective entered after a rank exited")
	}
	gen := b.gen
	if b.count == 0 {
		b.maxT = t
		b.reduced = append(b.reduced[:0], vals...)
	} else {
		b.maxT = math.Max(b.maxT, t)
		for i, v := range vals {
			b.reduced[i] = combine(b.reduced[i], v)
		}
	}
	b.count++
	if b.count == b.p {
		b.outT = b.maxT
		b.out = append([]float64(nil), b.reduced...)
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen && !b.dead {
			b.cond.Wait()
		}
		if gen == b.gen {
			panic("sim: collective aborted: a rank exited while others waited")
		}
	}
	out := make([]float64, len(b.out))
	copy(out, b.out)
	return b.outT, out
}

// MailboxStats reports the machine's cumulative envelope recycling
// counters: a healthy steady state allocates a bounded set of new
// envelopes and then reuses them for the rest of the machine's life.
type MailboxStats struct {
	EnvelopesNew    int64
	EnvelopesReused int64
}

// MailboxStats returns the machine's envelope recycling counters
// (cumulative across runs; zero before the first Run).
func (m *Machine) MailboxStats() MailboxStats {
	if m.mbox == nil {
		return MailboxStats{}
	}
	m.mbox.mu.Lock()
	defer m.mbox.mu.Unlock()
	return MailboxStats{EnvelopesNew: m.mbox.envNew, EnvelopesReused: m.mbox.envReused}
}

// Rank is one simulated processor, usable only inside Machine.Run's body.
type Rank struct {
	ID      int
	machine *Machine
	mb      *mailbox
	bar     *barrier
	clock   float64
	stats   Stats
	phase   string
	idStr   string // preformatted rank label for pprof (set when PProfLabels)
	// quiet suppresses per-event tracing while > 0 (stats still accrue):
	// collectives bracket their constituent messages with it so the
	// timeline carries one labeled interval instead of the pieces.
	quiet int
	// pending holds posted-but-not-Waited nonblocking requests; reqFree
	// recycles completed request envelopes; chanSeq enforces that Waits on
	// one (src,dst,tag) channel follow Irecv post order.
	pending []*Request
	reqFree []*Request
	chanSeq map[msgKey]*chanOrder
}

// Rank returns the rank's id — the xport.Transport spelling of ID.
func (r *Rank) Rank() int { return r.ID }

// P returns the machine's rank count.
func (r *Rank) P() int { return r.machine.P }

// Clock returns the rank's current virtual time in seconds.
func (r *Rank) Clock() float64 { return r.clock }

// Stats returns the rank's statistics so far.
func (r *Rank) Stats() Stats { return r.stats }

// BeginPhase labels all subsequent activity of this rank with the given
// phase (per-phase buckets in Stats.Phases, Phase field on trace events)
// until the next BeginPhase. It returns the previous label so nested
// libraries can restore it.
func (r *Rank) BeginPhase(label string) (prev string) {
	prev = r.phase
	r.phase = label
	if r.machine.PProfLabels {
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
			pprof.Labels("rank", r.idStr, "phase", label)))
	}
	return prev
}

// observing reports whether event structs need to be built at all.
func (r *Rank) observing() bool {
	return r.machine.Trace != nil || r.machine.Flight != nil
}

// emit routes one event to the flight recorder (always, so post-mortems see
// inside collectives) and to the timeline trace (only outside a collective
// bracket, preserving the one-labeled-interval invariant).
func (r *Rank) emit(e Event) {
	if fr := r.machine.Flight; fr != nil {
		fr.record(r.ID, e)
	}
	if tr := r.machine.Trace; tr != nil && r.quiet == 0 {
		tr.add(e)
	}
}

// Phase returns the rank's current phase label.
func (r *Rank) Phase() string { return r.phase }

// phaseBucket returns the current phase's mutable bucket, allocating the
// map and entry on first use.
func (r *Rank) phaseBucket() *PhaseStats {
	if r.stats.Phases == nil {
		r.stats.Phases = make(map[string]PhaseStats)
	}
	ps := r.stats.Phases[r.phase]
	return &ps
}

func (r *Rank) putPhase(ps *PhaseStats) { r.stats.Phases[r.phase] = *ps }

func (r *Rank) addCompute(sec float64) {
	r.stats.ComputeTime += sec
	ps := r.phaseBucket()
	ps.ComputeTime += sec
	r.putPhase(ps)
}

func (r *Rank) addComm(sec float64) {
	r.stats.CommTime += sec
	ps := r.phaseBucket()
	ps.CommTime += sec
	r.putPhase(ps)
}

func (r *Rank) addWait(sec float64) {
	r.stats.WaitTime += sec
	ps := r.phaseBucket()
	ps.WaitTime += sec
	r.putPhase(ps)
}

func (r *Rank) addSent(peer, bytes int) {
	r.stats.MsgsSent++
	r.stats.BytesSent += bytes
	ps := r.phaseBucket()
	ps.MsgsSent++
	ps.BytesSent += bytes
	r.putPhase(ps)
	if r.stats.Peers == nil {
		r.stats.Peers = make(map[int]PeerIO)
	}
	io := r.stats.Peers[peer]
	io.MsgsSent++
	io.BytesSent += bytes
	r.stats.Peers[peer] = io
}

func (r *Rank) addRecvd(peer, bytes int) {
	r.stats.MsgsRecv++
	r.stats.BytesRecv += bytes
	ps := r.phaseBucket()
	ps.MsgsRecv++
	ps.BytesRecv += bytes
	r.putPhase(ps)
	if r.stats.Peers == nil {
		r.stats.Peers = make(map[int]PeerIO)
	}
	io := r.stats.Peers[peer]
	io.MsgsRecv++
	io.BytesRecv += bytes
	r.stats.Peers[peer] = io
}

// Compute advances the rank's clock by the given virtual seconds.
func (r *Rank) Compute(seconds float64) {
	if seconds < 0 {
		panic("sim: Compute with negative time")
	}
	start := r.clock
	r.clock += seconds
	r.addCompute(seconds)
	if seconds > 0 && r.observing() {
		r.emit(Event{Rank: r.ID, Kind: EvCompute, Start: start, End: r.clock, Peer: -1, Phase: r.phase})
	}
}

// ComputeFlops advances the clock by flops / CPU.EffectiveFlopsPerSec().
func (r *Rank) ComputeFlops(flops float64) {
	r.Compute(flops / r.machine.CPU.EffectiveFlopsPerSec())
}

// Send posts a message to dst. Sends are eager (buffered): the sender only
// pays its injection overhead.
func (r *Rank) Send(dst, tag int, m Msg) {
	if dst < 0 || dst >= r.machine.P {
		panic(fmt.Sprintf("sim: Send to rank %d of %d", dst, r.machine.P))
	}
	if m.Bytes == 0 && m.Payload != nil {
		m.Bytes = 8 * len(m.Payload)
	}
	m.Src = r.ID
	m.Tag = tag
	r.clock += r.machine.Net.SendOverhead
	r.addComm(r.machine.Net.SendOverhead)
	// The fabric may delay the departure past the sender's clock when the
	// egress link is still busy (contention); the sender itself does not
	// stall — injection is eager.
	sent := r.machine.Fabric.Inject(r.ID, dst, r.clock, m.Bytes)
	r.addSent(dst, m.Bytes)
	if mm := r.machine.mm; mm != nil {
		mm.sent(r.ID, dst, m.Bytes)
	}
	if r.observing() {
		r.emit(Event{Rank: r.ID, Kind: EvSend, Start: r.clock - r.machine.Net.SendOverhead, End: r.clock, Peer: dst, Bytes: m.Bytes, Tag: tag, Phase: r.phase})
	}
	r.mb.put(msgKey{src: r.ID, dst: dst, tag: tag}, m, sent)
}

// Recv blocks until the next message from src with the given tag arrives,
// advancing the clock to max(now, arrival) + receive overhead.
func (r *Rank) Recv(src, tag int) Msg {
	if src < 0 || src >= r.machine.P {
		panic(fmt.Sprintf("sim: Recv from rank %d of %d", src, r.machine.P))
	}
	recvStart := r.clock
	// Mark the receive as in-flight in the flight ring before blocking: if
	// it never completes, the post-mortem shows exactly what this rank was
	// waiting on as its final event. The completed EvRecv below supersedes
	// it in healthy runs.
	if fr := r.machine.Flight; fr != nil {
		fr.record(r.ID, Event{Rank: r.ID, Kind: EvBlocked, Start: recvStart, End: recvStart, Peer: src, Tag: tag, Phase: r.phase})
	}
	m, sent, err := r.mb.get(msgKey{src: src, dst: r.ID, tag: tag})
	if err != nil {
		panic(err)
	}
	// The first byte reaches the receiver at sent + head latency (fabric
	// hop count); the message body then occupies the receiver's link,
	// which serializes concurrent incoming traffic (all-to-alls pay for
	// their volume).
	fab := r.machine.Fabric
	headArrive := sent + fab.HeadLatency(src, r.ID)
	wait := 0.0
	if headArrive > r.clock {
		wait = headArrive - r.clock
		r.addWait(wait)
		r.clock = headArrive
	}
	body := fab.BodyTime(src, r.ID, m.Bytes)
	r.clock += body + r.machine.Net.RecvOverhead
	r.addComm(body + r.machine.Net.RecvOverhead)
	r.addRecvd(src, m.Bytes)
	if r.observing() {
		r.emit(Event{Rank: r.ID, Kind: EvRecv, Start: recvStart, End: r.clock, Peer: src, Bytes: m.Bytes, Tag: tag, Wait: wait, Phase: r.phase})
	}
	return m
}

// SendRecv posts a send to dst and then receives from src (safe in rings
// and shifts because sends never block).
func (r *Rank) SendRecv(dst, sendTag int, m Msg, src, recvTag int) Msg {
	r.Send(dst, sendTag, m)
	return r.Recv(src, recvTag)
}

// Barrier synchronizes all ranks; every clock advances to the latest
// arrival plus a log₂(p)-round latency cost.
func (r *Rank) Barrier() {
	start := r.clock
	t, _ := r.bar.sync(r.clock, nil, nil)
	cost := r.collectiveCost(0)
	wait := 0.0
	if t > r.clock {
		wait = t - r.clock
		r.addWait(wait)
	}
	r.clock = t + cost
	r.addComm(cost)
	if mm := r.machine.mm; mm != nil {
		mm.collective("barrier").Inc()
	}
	if fr := r.machine.Flight; fr != nil {
		fr.record(r.ID, Event{Rank: r.ID, Kind: EvCollective, Start: start, End: r.clock, Peer: -1, Label: "barrier", Wait: wait, Phase: r.phase})
	}
	if tr := r.machine.Trace; tr != nil {
		tr.add(Event{Rank: r.ID, Kind: EvCollective, Start: start, End: r.clock, Peer: -1, Label: "barrier", Wait: wait, Phase: r.phase})
	}
}

// AllReduce combines each rank's values elementwise with the given function
// (e.g. math.Max, or addition) and returns the combined vector to every
// rank, modeled as ⌈log₂ p⌉ exchange rounds.
func (r *Rank) AllReduce(vals []float64, combine func(a, b float64) float64) []float64 {
	start := r.clock
	t, out := r.bar.sync(r.clock, vals, combine)
	cost := r.collectiveCost(8 * len(vals))
	wait := 0.0
	if t > r.clock {
		wait = t - r.clock
		r.addWait(wait)
	}
	r.clock = t + cost
	r.addComm(cost)
	if mm := r.machine.mm; mm != nil {
		mm.collective("allreduce").Inc()
	}
	if fr := r.machine.Flight; fr != nil {
		fr.record(r.ID, Event{Rank: r.ID, Kind: EvCollective, Start: start, End: r.clock, Peer: -1, Label: "allreduce", Wait: wait, Phase: r.phase})
	}
	if tr := r.machine.Trace; tr != nil {
		tr.add(Event{Rank: r.ID, Kind: EvCollective, Start: start, End: r.clock, Peer: -1, Label: "allreduce", Wait: wait, Phase: r.phase})
	}
	return out
}

// collectiveCost models a barrier/reduction round structure on this rank:
// ⌈log₂ p⌉ exchange rounds for the tree algorithms (the legacy default) or
// p−1 neighbor rounds for ring/pairwise (Machine.Coll). On a uniform
// fabric the per-round cost is endpoint-independent and multiplies — the
// exact pre-Fabric expression; on a topology-aware fabric each round is
// charged at its hypercube partner's (or ring neighbor's) distance.
func (r *Rank) collectiveCost(bytes int) float64 {
	p := r.machine.P
	if p == 1 {
		return 0
	}
	fab := r.machine.Fabric
	so, ro := r.machine.Net.SendOverhead, r.machine.Net.RecvOverhead
	switch r.machine.Coll {
	case AlgRing, AlgPairwise:
		per := so + ro + fab.Transit(r.ID, (r.ID+1)%p, bytes)
		return float64(p-1) * per
	default: // AlgAuto, AlgDoubling, AlgBruck: the ⌈log₂ p⌉ tree
		rounds := 0
		for n := 1; n < p; n *= 2 {
			rounds++
		}
		if fab.Uniform() {
			per := so + ro + fab.Transit(r.ID, (r.ID+1)%p, bytes)
			return float64(rounds) * per
		}
		total := 0.0
		for k := 0; k < rounds; k++ {
			total += so + ro + fab.Transit(r.ID, (r.ID^1<<k)%p, bytes)
		}
		return total
	}
}

// Run executes body on every rank concurrently and returns the run's
// Result. A panic in any rank aborts the run and is returned as an error.
func (m *Machine) Run(body func(r *Rank)) (Result, error) {
	if m.Fabric == nil {
		m.Fabric = DefaultFabric(m.Net, m.P)
	}
	if rf, ok := m.Fabric.(interface{ reset() }); ok {
		rf.reset()
	}
	m.attachMetrics()
	if m.Flight == nil {
		if d := int(defaultFlightDepth.Load()); d > 0 {
			m.Flight = NewFlightRecorder(d)
		}
	}
	if !m.PProfLabels && defaultPProfLabels.Load() {
		m.PProfLabels = true
	}
	if cf, ok := m.Fabric.(*ContentionFabric); ok {
		if m.mm != nil {
			cf.stalls = m.mm.stalls
		} else {
			cf.stalls = nil
		}
	}
	if m.Flight != nil {
		m.Flight.attach(m.P)
	}
	if m.mbox == nil {
		m.mbox = newMailbox(m.P)
	} else {
		m.mbox.reset(m.P)
	}
	m.mbox.setMetrics(m.mm)
	mb := m.mbox
	bar := newBarrier(m.P)
	ranks := make([]*Rank, m.P)
	m.ranks = ranks
	errs := make([]error, m.P)
	var wg sync.WaitGroup
	for id := 0; id < m.P; id++ {
		ranks[id] = &Rank{ID: id, machine: m, mb: mb, bar: bar}
		if m.PProfLabels {
			ranks[id].idStr = strconv.Itoa(id)
		}
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer mb.exit()
			defer bar.abort()
			defer func() {
				if rec := recover(); rec != nil {
					errs[r.ID] = fmt.Errorf("sim: rank %d: %v", r.ID, rec)
				}
			}()
			if m.PProfLabels {
				pprof.Do(context.Background(), pprof.Labels("rank", r.idStr), func(context.Context) {
					body(r)
				})
			} else {
				body(r)
			}
		}(ranks[id])
	}
	wg.Wait()
	if m.mm != nil {
		m.mm.runs.Inc()
		if mb.isDeadlocked() {
			m.mm.deadlocks.Inc()
		}
	}
	if err := errors.Join(errs...); err != nil {
		if m.Flight != nil {
			err = fmt.Errorf("%w\n\n%s", err, m.FlightReport())
		}
		return Result{}, err
	}
	res := Result{Ranks: make([]Stats, m.P)}
	for _, r := range ranks {
		if r.clock > res.Makespan {
			res.Makespan = r.clock
		}
	}
	for id, r := range ranks {
		r.stats.FinalClock = r.clock
		r.stats.IdleTime = res.Makespan - r.clock
		res.Ranks[id] = r.stats
	}
	if m.mm != nil {
		m.mm.makespan.Set(res.Makespan)
	}
	return res, nil
}

package sim

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatalf("no panic (want %q)", want)
		}
		if msg, ok := rec.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v does not mention %q", rec, want)
		}
	}()
	f()
}

// Successful reservations live at package level: the registry is global
// and init-once, so re-running the tests (-count=2) must not re-reserve.
var (
	_ = ReserveTags("test/a", 5000, 10)
	_ = ReserveTags("test/e", 5010, 10) // adjacent to test/a: no overlap
)

func TestReserveTagsOverlapPanics(t *testing.T) {
	mustPanic(t, "overlaps", func() { ReserveTags("test/b", 5009, 10) })
	mustPanic(t, "overlaps", func() { ReserveTags("test/c", 4991, 10) })
	mustPanic(t, "overlaps", func() { ReserveTags("test/d", 5003, 2) })
	mustPanic(t, "already reserved", func() { ReserveTags("test/a", 6000, 1) })
}

func TestReserveTagsValidation(t *testing.T) {
	mustPanic(t, "owner name", func() { ReserveTags("", 7000, 1) })
	mustPanic(t, "non-empty", func() { ReserveTags("test/empty", 7000, 0) })
	mustPanic(t, "non-negative", func() { ReserveTags("test/neg", -1, 5) })
}

var tagTestBounds = ReserveTags("test/bounds", 8000, 4)

func TestTagSpaceTagBounds(t *testing.T) {
	ts := tagTestBounds
	if got := ts.Tag(3); got != 8003 {
		t.Errorf("Tag(3) = %d, want 8003", got)
	}
	if !ts.Contains(8000) || ts.Contains(8004) {
		t.Error("Contains boundaries wrong")
	}
	mustPanic(t, "outside space", func() { ts.Tag(4) })
	mustPanic(t, "outside space", func() { ts.Tag(-1) })
}

func TestTagSpacesRegistryListsCollectives(t *testing.T) {
	var found bool
	prev := -1
	for _, ts := range TagSpaces() {
		if ts.Base() < prev {
			t.Error("TagSpaces not sorted by base")
		}
		prev = ts.Base()
		if ts.Name() == "sim/collective" {
			found = true
			if ts.Base() != 1<<30 {
				t.Errorf("sim/collective base = %d, want 1<<30", ts.Base())
			}
		}
	}
	if !found {
		t.Error("sim/collective reservation missing from registry")
	}
}

package sim

import (
	"strings"
	"testing"
)

func TestTraceCollectsEvents(t *testing.T) {
	m := testMachine(2)
	m.Trace = &Trace{}
	res, err := m.Run(func(r *Rank) {
		r.Compute(1e-3)
		if r.ID == 0 {
			r.Send(1, 0, Msg{Bytes: 100})
		} else {
			r.Recv(0, 0)
		}
		r.Mark("done")
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	events := m.Trace.Events()
	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.End < e.Start {
			t.Errorf("event %+v ends before it starts", e)
		}
		if e.End > res.Makespan+1e-12 {
			t.Errorf("event %+v extends beyond the makespan %g", e, res.Makespan)
		}
	}
	if kinds[EvCompute] != 2 || kinds[EvSend] != 1 || kinds[EvRecv] != 1 || kinds[EvCollective] != 2 || kinds[EvMark] != 2 {
		t.Errorf("event counts %v", kinds)
	}
	// Sorted by start time.
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatal("events not sorted")
		}
	}
}

func TestTraceSendRecvPeersAndBytes(t *testing.T) {
	m := testMachine(2)
	m.Trace = &Trace{}
	if _, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 5, Msg{Bytes: 4096})
		} else {
			r.Recv(0, 5)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for _, e := range m.Trace.Events() {
		switch e.Kind {
		case EvSend:
			if e.Rank != 0 || e.Peer != 1 || e.Bytes != 4096 {
				t.Errorf("send event %+v", e)
			}
		case EvRecv:
			if e.Rank != 1 || e.Peer != 0 || e.Bytes != 4096 {
				t.Errorf("recv event %+v", e)
			}
		}
	}
}

func TestRenderTimeline(t *testing.T) {
	m := testMachine(3)
	m.Trace = &Trace{}
	res, err := m.Run(func(r *Rank) {
		r.Compute(float64(r.ID+1) * 1e-3)
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := m.Trace.RenderTimeline(&sb, 3, res.Makespan, 60); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "rank   0") || !strings.Contains(out, "rank   2") {
		t.Errorf("timeline missing rank rows:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "|") {
		t.Errorf("timeline missing compute/collective glyphs:\n%s", out)
	}
	// Rank 2 computes ~3× longer: its compute bar should be the longest.
	lines := strings.Split(out, "\n")
	count := func(s string) int { return strings.Count(s, "#") }
	if count(lines[2]) <= count(lines[0]) {
		t.Errorf("rank 2 bar (%d) not longer than rank 0 (%d):\n%s", count(lines[2]), count(lines[0]), out)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := testMachine(2)
	if _, err := m.Run(func(r *Rank) {
		r.Compute(1e-3)
		r.Mark("x")
	}); err != nil {
		t.Fatal(err)
	}
	if m.Trace != nil {
		t.Fatal("trace should stay nil unless set")
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvCompute: "compute", EvSend: "send", EvRecv: "recv", EvCollective: "collective", EvMark: "mark",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

// Regression: width values in [10, 18) used to panic in the footer's
// strings.Repeat(" ", width-18) with a negative count.
func TestRenderTimelineNarrowWidthNoPanic(t *testing.T) {
	m := testMachine(2)
	m.Trace = &Trace{}
	res, err := m.Run(func(r *Rank) { r.Compute(1e-3) })
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{0, 5, 10, 11, 17, 18, 19} {
		var sb strings.Builder
		if err := m.Trace.RenderTimeline(&sb, 2, res.Makespan, width); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if !strings.Contains(sb.String(), "makespan") {
			t.Fatalf("width %d: footer missing:\n%s", width, sb.String())
		}
	}
}

// Regression: a non-positive makespan used to silently render an all-idle
// chart (and, before that, feed a division by zero into colOf); it must be
// an explicit error now.
func TestRenderTimelineNonPositiveMakespan(t *testing.T) {
	m := testMachine(2)
	m.Trace = &Trace{}
	if _, err := m.Run(func(r *Rank) { r.Compute(1e-3) }); err != nil {
		t.Fatal(err)
	}
	for _, makespan := range []float64{0, -1} {
		var sb strings.Builder
		if err := m.Trace.RenderTimeline(&sb, 2, makespan, 60); err == nil {
			t.Fatalf("makespan %g: want error, got output:\n%s", makespan, sb.String())
		}
	}
}

func TestEventPhaseAndWait(t *testing.T) {
	m := testMachine(2)
	m.Trace = &Trace{}
	if _, err := m.Run(func(r *Rank) {
		r.BeginPhase("p0")
		if r.ID == 0 {
			r.Compute(5e-3) // make rank 1 wait on the recv
			r.Send(1, 7, Msg{Bytes: 64})
		} else {
			r.Recv(0, 7)
		}
	}); err != nil {
		t.Fatal(err)
	}
	sawRecvWait := false
	for _, e := range m.Trace.Events() {
		if e.Phase != "p0" {
			t.Errorf("event %+v missing phase label", e)
		}
		if e.Kind == EvRecv {
			if e.Tag != 7 {
				t.Errorf("recv event tag = %d, want 7", e.Tag)
			}
			if e.Wait > 0 {
				sawRecvWait = true
			}
			if e.Busy() < 0 {
				t.Errorf("recv busy %g < 0", e.Busy())
			}
		}
	}
	if !sawRecvWait {
		t.Error("recv event did not record its wait portion")
	}
}

// TestTraceEventsOrdering pins the Events() contract consumers rely on
// (the causal DAG builder, the Perfetto exporter, the profile): sorted by
// start time with rank breaking ties, stable for identical keys, and
// independent of insertion order.
func TestTraceEventsOrdering(t *testing.T) {
	tr := &Trace{}
	tr.Append(
		Event{Rank: 1, Kind: EvCompute, Start: 2, End: 3, Peer: -1},
		Event{Rank: 0, Kind: EvCompute, Start: 2, End: 2.5, Peer: -1},
		Event{Rank: 0, Kind: EvSend, Start: 0, End: 0.1, Peer: 1, Label: "first"},
		Event{Rank: 0, Kind: EvMark, Start: 0, End: 0, Peer: -1, Label: "second"},
	)
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Start < ev[i-1].Start {
			t.Fatalf("events not sorted by start: %g after %g", ev[i].Start, ev[i-1].Start)
		}
		if ev[i].Start == ev[i-1].Start && ev[i].Rank < ev[i-1].Rank {
			t.Fatalf("rank tie-break broken at %d", i)
		}
	}
	// Stability: the two rank-0 events at Start 0 keep insertion order.
	if ev[0].Label != "first" || ev[1].Label != "second" {
		t.Errorf("equal-key events reordered: %q before %q", ev[0].Label, ev[1].Label)
	}
	// Events returns a copy: mutating it must not corrupt the trace.
	ev[0].Rank = 99
	if tr.Events()[0].Rank == 99 {
		t.Error("Events() exposed internal storage")
	}
}

// TestEventBusyWithWait pins Busy() = End − Start − Wait for a synthetic
// event and for every traced event of a run with real blocking.
func TestEventBusyWithWait(t *testing.T) {
	e := Event{Start: 1, End: 4, Wait: 2.5}
	if got := e.Busy(); got != 0.5 {
		t.Errorf("Busy() = %g, want 0.5", got)
	}
	m := testMachine(2)
	m.Trace = &Trace{}
	if _, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Compute(3e-3)
			r.Send(1, 0, Msg{Bytes: 64})
		} else {
			r.Recv(0, 0)
		}
		r.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	sawWait := false
	for _, e := range m.Trace.Events() {
		if e.Wait < 0 {
			t.Errorf("event %+v has negative wait", e)
		}
		if e.Wait > 0 {
			sawWait = true
		}
		if b := e.Busy(); b < 0 || b > e.End-e.Start {
			t.Errorf("event %+v busy %g outside [0, duration]", e, b)
		}
	}
	if !sawWait {
		t.Error("run recorded no waiting event (rank 1 should block on the recv)")
	}
}

func TestParseEventKindRoundTrip(t *testing.T) {
	for _, k := range []EventKind{EvCompute, EvSend, EvRecv, EvCollective, EvMark, EvBlocked} {
		got, err := ParseEventKind(k.String())
		if err != nil {
			t.Errorf("%v: %v", k, err)
			continue
		}
		if got != k {
			t.Errorf("ParseEventKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseEventKind("warp"); err == nil {
		t.Error("unknown kind accepted")
	}
}

package sim

import (
	"strings"
	"testing"
)

func TestTraceCollectsEvents(t *testing.T) {
	m := testMachine(2)
	m.Trace = &Trace{}
	res, err := m.Run(func(r *Rank) {
		r.Compute(1e-3)
		if r.ID == 0 {
			r.Send(1, 0, Msg{Bytes: 100})
		} else {
			r.Recv(0, 0)
		}
		r.Mark("done")
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	events := m.Trace.Events()
	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.End < e.Start {
			t.Errorf("event %+v ends before it starts", e)
		}
		if e.End > res.Makespan+1e-12 {
			t.Errorf("event %+v extends beyond the makespan %g", e, res.Makespan)
		}
	}
	if kinds[EvCompute] != 2 || kinds[EvSend] != 1 || kinds[EvRecv] != 1 || kinds[EvCollective] != 2 || kinds[EvMark] != 2 {
		t.Errorf("event counts %v", kinds)
	}
	// Sorted by start time.
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatal("events not sorted")
		}
	}
}

func TestTraceSendRecvPeersAndBytes(t *testing.T) {
	m := testMachine(2)
	m.Trace = &Trace{}
	if _, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 5, Msg{Bytes: 4096})
		} else {
			r.Recv(0, 5)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for _, e := range m.Trace.Events() {
		switch e.Kind {
		case EvSend:
			if e.Rank != 0 || e.Peer != 1 || e.Bytes != 4096 {
				t.Errorf("send event %+v", e)
			}
		case EvRecv:
			if e.Rank != 1 || e.Peer != 0 || e.Bytes != 4096 {
				t.Errorf("recv event %+v", e)
			}
		}
	}
}

func TestRenderTimeline(t *testing.T) {
	m := testMachine(3)
	m.Trace = &Trace{}
	res, err := m.Run(func(r *Rank) {
		r.Compute(float64(r.ID+1) * 1e-3)
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := m.Trace.RenderTimeline(&sb, 3, res.Makespan, 60); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "rank   0") || !strings.Contains(out, "rank   2") {
		t.Errorf("timeline missing rank rows:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "|") {
		t.Errorf("timeline missing compute/collective glyphs:\n%s", out)
	}
	// Rank 2 computes ~3× longer: its compute bar should be the longest.
	lines := strings.Split(out, "\n")
	count := func(s string) int { return strings.Count(s, "#") }
	if count(lines[2]) <= count(lines[0]) {
		t.Errorf("rank 2 bar (%d) not longer than rank 0 (%d):\n%s", count(lines[2]), count(lines[0]), out)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := testMachine(2)
	if _, err := m.Run(func(r *Rank) {
		r.Compute(1e-3)
		r.Mark("x")
	}); err != nil {
		t.Fatal(err)
	}
	if m.Trace != nil {
		t.Fatal("trace should stay nil unless set")
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvCompute: "compute", EvSend: "send", EvRecv: "recv", EvCollective: "collective", EvMark: "mark",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

package sim

import (
	"reflect"
	"testing"
)

func TestPhaseLabelsSortedUnion(t *testing.T) {
	m := NewMachine(2, Network{Latency: 1e-6, Bandwidth: 1e8}, CPU{FlopsPerSec: 1e8})
	res, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.BeginPhase("zeta")
			r.Compute(1e-6)
			r.BeginPhase("alpha")
			r.Compute(1e-6)
		} else {
			r.BeginPhase("mid")
			r.Compute(1e-6)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.PhaseLabels(), []string{"alpha", "mid", "zeta"}; !reflect.DeepEqual(got, want) {
		t.Errorf("result labels %v, want %v", got, want)
	}
	if got, want := res.Ranks[0].PhaseLabels(), []string{"alpha", "zeta"}; !reflect.DeepEqual(got, want) {
		t.Errorf("rank 0 labels %v, want %v", got, want)
	}
}

package sim

import (
	"math"
	"strings"
	"testing"
)

func testMachine(p int) *Machine {
	return NewMachine(p,
		Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 1e-6, RecvOverhead: 1e-6},
		CPU{FlopsPerSec: 1e9})
}

func TestPingPongTiming(t *testing.T) {
	m := testMachine(2)
	res, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 7, Msg{Bytes: 1000})
		} else {
			msg := r.Recv(0, 7)
			if msg.Bytes != 1000 || msg.Src != 0 || msg.Tag != 7 {
				panic("bad message")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 clock: arrival (1µs send overhead + 10µs latency + 10µs
	// transfer) + 1µs recv overhead = 22µs.
	want := 22e-6
	if math.Abs(res.Makespan-want) > 1e-12 {
		t.Errorf("makespan = %g, want %g", res.Makespan, want)
	}
	if res.TotalBytes() != 1000 || res.TotalMessages() != 1 {
		t.Errorf("totals: %d bytes, %d msgs", res.TotalBytes(), res.TotalMessages())
	}
}

func TestPayloadDelivery(t *testing.T) {
	m := testMachine(2)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 0, Msg{Payload: []float64{1, 2, 3}})
		} else {
			msg := r.Recv(0, 0)
			if len(msg.Payload) != 3 || msg.Payload[2] != 3 {
				panic("payload corrupted")
			}
			if msg.Bytes != 24 {
				panic("payload byte count not inferred")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOOrderPerChannel(t *testing.T) {
	m := testMachine(2)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			for i := 0; i < 20; i++ {
				r.Send(1, 3, Msg{Payload: []float64{float64(i)}})
			}
		} else {
			for i := 0; i < 20; i++ {
				msg := r.Recv(0, 3)
				if msg.Payload[0] != float64(i) {
					panic("out of order delivery")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagsAreIndependent(t *testing.T) {
	m := testMachine(2)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 1, Msg{Payload: []float64{1}})
			r.Send(1, 2, Msg{Payload: []float64{2}})
		} else {
			// Receive in reverse tag order.
			if r.Recv(0, 2).Payload[0] != 2 {
				panic("tag 2 wrong")
			}
			if r.Recv(0, 1).Payload[0] != 1 {
				panic("tag 1 wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	m := testMachine(1)
	res, err := m.Run(func(r *Rank) {
		r.Compute(0.5)
		r.ComputeFlops(1e9) // 1 more second at 1 Gflop/s
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-1.5) > 1e-12 {
		t.Errorf("makespan = %g, want 1.5", res.Makespan)
	}
	if math.Abs(res.Ranks[0].ComputeTime-1.5) > 1e-12 {
		t.Errorf("compute time = %g", res.Ranks[0].ComputeTime)
	}
}

func TestWaitTimeAccounting(t *testing.T) {
	m := testMachine(2)
	res, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Compute(1.0)
			r.Send(1, 0, Msg{Bytes: 8})
		} else {
			r.Recv(0, 0) // idles ~1 second
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[1].WaitTime < 0.99 {
		t.Errorf("rank 1 wait time = %g, want ≈ 1", res.Ranks[1].WaitTime)
	}
}

func TestDeterministicMakespan(t *testing.T) {
	// A ring shift with staggered compute: rerun many times, the virtual
	// makespan must be bit-identical (scheduling independence).
	run := func() float64 {
		m := testMachine(8)
		res, err := m.Run(func(r *Rank) {
			for round := 0; round < 5; round++ {
				r.Compute(float64(r.ID+1) * 1e-4)
				next := (r.ID + 1) % r.P()
				prev := (r.ID + r.P() - 1) % r.P()
				r.SendRecv(next, round, Msg{Bytes: 4096}, prev, round)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: makespan %g ≠ %g", i, got, first)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m := testMachine(4)
	res, err := m.Run(func(r *Rank) {
		r.Compute(float64(r.ID) * 0.1) // rank 3 reaches 0.3
		r.Barrier()
		if r.Clock() < 0.3 {
			panic("barrier did not advance clock to the latest rank")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < 0.3 {
		t.Errorf("makespan = %g", res.Makespan)
	}
}

func TestAllReduce(t *testing.T) {
	m := testMachine(4)
	_, err := m.Run(func(r *Rank) {
		sum := r.AllReduce([]float64{float64(r.ID), 1}, func(a, b float64) float64 { return a + b })
		if sum[0] != 6 || sum[1] != 4 {
			panic("allreduce sum wrong")
		}
		max := r.AllReduce([]float64{float64(r.ID)}, math.Max)
		if max[0] != 3 {
			panic("allreduce max wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := testMachine(2)
	_, err := m.Run(func(r *Rank) {
		// Both ranks wait for a message that is never sent.
		r.Recv((r.ID+1)%2, 9)
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestRecvAfterPeerExitsIsDeadlock(t *testing.T) {
	m := testMachine(2)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 1 {
			r.Recv(0, 0)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestPanicInBodyIsReturned(t *testing.T) {
	m := testMachine(1)
	_, err := m.Run(func(r *Rank) { panic("boom") })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("expected boom, got %v", err)
	}
}

func TestFixedBusScaling(t *testing.T) {
	// On a bus, the same message takes p× longer to transfer.
	scal := NewMachine(8, Network{Latency: 0, Bandwidth: 1e6, Scaling: ScalePerProcessor}, CPU{FlopsPerSec: 1})
	bus := NewMachine(8, Network{Latency: 0, Bandwidth: 1e6, Scaling: FixedBus}, CPU{FlopsPerSec: 1})
	if got := scal.Net.Transit(1e6); math.Abs(got-1) > 1e-12 {
		t.Errorf("scalable transit = %g, want 1", got)
	}
	if got := bus.Net.Transit(1e6); math.Abs(got-8) > 1e-12 {
		t.Errorf("bus transit = %g, want 8", got)
	}
}

func TestSendRecvRingDoesNotDeadlock(t *testing.T) {
	m := testMachine(16)
	_, err := m.Run(func(r *Rank) {
		next := (r.ID + 1) % r.P()
		prev := (r.ID + r.P() - 1) % r.P()
		got := r.SendRecv(next, 0, Msg{Payload: []float64{float64(r.ID)}}, prev, 0)
		if got.Payload[0] != float64(prev) {
			panic("ring value wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRankPanics(t *testing.T) {
	m := testMachine(2)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(5, 0, Msg{})
		}
	})
	if err == nil {
		t.Fatal("send to invalid rank should error")
	}
}

func TestStatsTotals(t *testing.T) {
	m := testMachine(2)
	res, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 0, Msg{Bytes: 100})
			r.Send(1, 0, Msg{Bytes: 200})
		} else {
			r.Recv(0, 0)
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0].MsgsSent != 2 || res.Ranks[0].BytesSent != 300 {
		t.Errorf("sender stats: %+v", res.Ranks[0])
	}
	if res.Ranks[1].MsgsRecv != 2 || res.Ranks[1].BytesRecv != 300 {
		t.Errorf("receiver stats: %+v", res.Ranks[1])
	}
}

func TestP1Collectives(t *testing.T) {
	m := testMachine(1)
	res, err := m.Run(func(r *Rank) {
		r.Barrier()
		v := r.AllReduce([]float64{42}, math.Max)
		if v[0] != 42 {
			panic("p=1 allreduce")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 {
		t.Errorf("p=1 collectives should be free, makespan = %g", res.Makespan)
	}
}

// The per-phase buckets must tile the whole-run counters exactly, and the
// accounting identity compute+comm+wait = FinalClock must hold per rank.
func TestPhaseStatsPartitionTotals(t *testing.T) {
	m := testMachine(2)
	res, err := m.Run(func(r *Rank) {
		r.Compute(1e-3) // lands in the unlabeled phase
		r.BeginPhase("exchange")
		if r.ID == 0 {
			r.Send(1, 3, Msg{Bytes: 1 << 12})
			r.Recv(1, 4)
		} else {
			r.Send(0, 4, Msg{Bytes: 256})
			r.Recv(0, 3)
		}
		r.BeginPhase("reduce")
		r.AllReduce([]float64{float64(r.ID)}, func(a, b float64) float64 { return a + b })
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range res.Ranks {
		var comp, comm, wait float64
		var msgsSent, bytesSent, msgsRecv, bytesRecv int
		for _, ps := range s.Phases {
			comp += ps.ComputeTime
			comm += ps.CommTime
			wait += ps.WaitTime
			msgsSent += ps.MsgsSent
			bytesSent += ps.BytesSent
			msgsRecv += ps.MsgsRecv
			bytesRecv += ps.BytesRecv
		}
		if math.Abs(comp-s.ComputeTime) > 1e-12 || math.Abs(comm-s.CommTime) > 1e-12 || math.Abs(wait-s.WaitTime) > 1e-12 {
			t.Errorf("rank %d: phase buckets (%g,%g,%g) do not tile totals (%g,%g,%g)",
				id, comp, comm, wait, s.ComputeTime, s.CommTime, s.WaitTime)
		}
		if msgsSent != s.MsgsSent || bytesSent != s.BytesSent || msgsRecv != s.MsgsRecv || bytesRecv != s.BytesRecv {
			t.Errorf("rank %d: phase traffic does not tile totals", id)
		}
		if got := s.ComputeTime + s.CommTime + s.WaitTime; math.Abs(got-s.FinalClock) > 1e-12 {
			t.Errorf("rank %d: compute+comm+wait = %g, FinalClock = %g", id, got, s.FinalClock)
		}
		if math.Abs(s.FinalClock+s.IdleTime-res.Makespan) > 1e-12 {
			t.Errorf("rank %d: FinalClock+IdleTime = %g, makespan = %g", id, s.FinalClock+s.IdleTime, res.Makespan)
		}
		if len(s.Phases) != 3 {
			t.Errorf("rank %d: want 3 phase buckets (unlabeled, exchange, reduce), got %v", id, len(s.Phases))
		}
		if s.Phases["exchange"].MsgsSent != 1 || s.Phases["exchange"].MsgsRecv != 1 {
			t.Errorf("rank %d: exchange bucket traffic %+v", id, s.Phases["exchange"])
		}
	}
	// Peer buckets: rank 0 sent 4096 bytes to peer 1 and received 256 back.
	p0 := res.Ranks[0].Peers[1]
	if p0.BytesSent != 1<<12 || p0.BytesRecv != 256 || p0.MsgsSent != 1 || p0.MsgsRecv != 1 {
		t.Errorf("rank 0 peer-1 IO %+v", p0)
	}
}

func TestBeginPhaseRestores(t *testing.T) {
	m := testMachine(1)
	if _, err := m.Run(func(r *Rank) {
		if prev := r.BeginPhase("outer"); prev != "" {
			t.Errorf("first BeginPhase returned %q", prev)
		}
		if prev := r.BeginPhase("inner"); prev != "outer" {
			t.Errorf("nested BeginPhase returned %q", prev)
		}
		r.BeginPhase("outer")
		if r.Phase() != "outer" {
			t.Errorf("Phase() = %q", r.Phase())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

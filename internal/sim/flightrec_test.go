package sim

import (
	"strings"
	"testing"
)

// A deliberately deadlocked 2-rank program: rank 0 sends to rank 1 on tag
// 7 and then waits for a reply on tag 8 that rank 1 never sends (it waits
// on tag 9 instead). The flight report must name the blocked send/recv
// pair on both sides.
func TestFlightReportNamesDeadlockedPair(t *testing.T) {
	m := testMachine(2)
	m.Flight = NewFlightRecorder(16)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 7, Msg{Bytes: 64})
			r.Recv(1, 8) // never satisfied
		} else {
			r.Recv(0, 9) // wrong tag: rank 0 sent tag 7
		}
	})
	if err == nil {
		t.Fatal("deadlocked program returned nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "deadlock") {
		t.Fatalf("error does not mention deadlock:\n%s", msg)
	}
	for _, want := range []string{
		"flight recorder",
		"rank 0  BLOCKED in Recv(src=1, tag=8)",
		"rank 1  BLOCKED in Recv(src=0, tag=9)",
		"-> rank 1 tag 7",                   // rank 0's completed send
		"<- rank 1 tag 8 (never completed)", // rank 0's blocked recv
		"<- rank 0 tag 9 (never completed)", // rank 1's blocked recv
		"sent but never received:",
		"rank 0 -> rank 1 tag 7: 1 message(s), 64 bytes",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("flight report missing %q:\n%s", want, msg)
		}
	}
	// One side timed out blocked: the deadlock counter path and report must
	// also be reachable directly.
	if rep := m.FlightReport(); !strings.Contains(rep, "BLOCKED") {
		t.Errorf("direct FlightReport lost the blocked state:\n%s", rep)
	}
}

func TestFlightRingKeepsLastEvents(t *testing.T) {
	m := testMachine(1)
	m.Flight = NewFlightRecorder(4)
	if m.Flight.Depth() != 4 {
		t.Fatalf("Depth = %d, want 4", m.Flight.Depth())
	}
	if _, err := m.Run(func(r *Rank) {
		for i := 0; i < 10; i++ {
			r.Compute(1e-6)
		}
	}); err != nil {
		t.Fatal(err)
	}
	events, total := m.Flight.RankEvents(0)
	if total != 10 {
		t.Errorf("total = %d, want 10", total)
	}
	if len(events) != 4 {
		t.Fatalf("kept %d events, want 4", len(events))
	}
	// Oldest-first: the last 4 of 10 computes start at 6e-6 .. 9e-6.
	for i, e := range events {
		if e.Kind != EvCompute {
			t.Errorf("event %d kind %v, want compute", i, e.Kind)
		}
		want := float64(6+i) * 1e-6
		if diff := e.Start - want; diff > 1e-18 || diff < -1e-18 {
			t.Errorf("event %d start %g, want %g", i, e.Start, want)
		}
	}
	if ev, total := m.Flight.RankEvents(99); ev != nil || total != 0 {
		t.Error("out-of-range rank should report no events")
	}
	report := m.FlightReport()
	if !strings.Contains(report, "... 6 earlier event(s) overwritten") {
		t.Errorf("report missing overwrite note:\n%s", report)
	}
}

// The recorder sees events inside collectives (where the trace is quiet),
// and its Trace() renders the retained window for Perfetto export.
func TestFlightRecorderSeesInsideCollectives(t *testing.T) {
	m := testMachine(4)
	m.Flight = NewFlightRecorder(64)
	m.Trace = &Trace{}
	if _, err := m.Run(func(r *Rank) {
		r.AllToAll([]int{8, 8, 8, 8}, nil, CollOpts{})
	}); err != nil {
		t.Fatal(err)
	}
	countKind := func(events []Event, k EventKind) int {
		n := 0
		for _, e := range events {
			if e.Kind == k {
				n++
			}
		}
		return n
	}
	events, _ := m.Flight.RankEvents(0)
	if countKind(events, EvSend) == 0 {
		t.Error("flight ring missing the sends inside the collective")
	}
	if countKind(events, EvCollective) != 1 {
		t.Errorf("flight ring has %d collective events, want 1", countKind(events, EvCollective))
	}
	// The timeline trace stays collective-only — no leaked inner events.
	for _, e := range m.Trace.Events() {
		if e.Kind == EvSend || e.Kind == EvRecv {
			t.Fatalf("trace leaked inner %v event from collective", e.Kind)
		}
	}
	if m.Flight.Trace().Len() != len(events)*m.P {
		t.Errorf("Flight.Trace() has %d events, want %d", m.Flight.Trace().Len(), len(events)*m.P)
	}
	if m.FlightReport() == "" {
		t.Error("healthy-run FlightReport empty")
	}
	if (&Machine{}).FlightReport() == "" {
		t.Error("recorder-less FlightReport empty")
	}
}

// Flight recording must not change timing: makespans with and without the
// recorder (and with a panicking rank) are bit-identical.
func TestFlightRecorderDoesNotPerturbTiming(t *testing.T) {
	run := func(m *Machine) float64 {
		res, err := m.Run(func(r *Rank) {
			next := (r.ID + 1) % m.P
			prev := (r.ID + m.P - 1) % m.P
			r.Compute(float64(r.ID+1) * 1e-6)
			r.SendRecv(next, 3, Msg{Bytes: 256}, prev, 3)
			r.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	plain := run(testMachine(4))
	mf := testMachine(4)
	mf.Flight = NewFlightRecorder(8)
	if got := run(mf); got != plain {
		t.Errorf("flight recorder changed makespan: %g != %g", got, plain)
	}
}

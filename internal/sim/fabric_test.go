package sim

import (
	"math"
	"testing"
)

// mixedWorkload exercises point-to-point traffic of varied sizes plus both
// modeled collectives — the paths whose timing the fabric refactor must
// not move.
func mixedWorkload(r *Rank) {
	p := r.P()
	if p == 1 {
		return
	}
	next, prev := (r.ID+1)%p, (r.ID+p-1)%p
	r.Compute(3e-6 * float64(r.ID+1))
	r.SendRecv(next, 1, Msg{Bytes: 1000 + 13*r.ID}, prev, 1)
	r.Barrier()
	r.SendRecv(prev, 2, Msg{Bytes: 77}, next, 2)
	r.AllReduce([]float64{float64(r.ID)}, math.Max)
}

func TestDefaultFabricBitIdentical(t *testing.T) {
	for _, scaling := range []BandwidthScaling{ScalePerProcessor, FixedBus} {
		net := Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 1e-6, RecvOverhead: 1e-6, Scaling: scaling}
		cpu := CPU{FlopsPerSec: 1e9}
		base, err := NewMachine(7, net, cpu).Run(mixedWorkload)
		if err != nil {
			t.Fatal(err)
		}
		explicit := NewMachine(7, net, cpu)
		explicit.Fabric = DefaultFabric(explicit.Net, 7)
		got, err := explicit.Run(mixedWorkload)
		if err != nil {
			t.Fatal(err)
		}
		if got.Makespan != base.Makespan {
			t.Errorf("scaling %v: explicit default fabric makespan %g != nil-fabric %g",
				scaling, got.Makespan, base.Makespan)
		}
		for id := range got.Ranks {
			if got.Ranks[id].FinalClock != base.Ranks[id].FinalClock {
				t.Errorf("scaling %v: rank %d clock %g != %g",
					scaling, id, got.Ranks[id].FinalClock, base.Ranks[id].FinalClock)
			}
		}
	}
}

func TestDefaultFabricNames(t *testing.T) {
	net := Network{Latency: 1e-6, Bandwidth: 1e8}
	if n := DefaultFabric(net, 4).Name(); n != "crossbar" {
		t.Errorf("scalable default = %q, want crossbar", n)
	}
	net.Scaling = FixedBus
	if n := DefaultFabric(net, 4).Name(); n != "bus" {
		t.Errorf("bus default = %q, want bus", n)
	}
}

func TestNewFabric(t *testing.T) {
	net := Network{Latency: 1e-6, Bandwidth: 1e8}
	for _, name := range FabricNames() {
		f, err := NewFabric(name, net, 8)
		if err != nil {
			t.Fatalf("NewFabric(%q): %v", name, err)
		}
		if f.Name() != name {
			t.Errorf("NewFabric(%q).Name() = %q", name, f.Name())
		}
	}
	if f, err := NewFabric("bus+contention", net, 8); err != nil || f.Name() != "bus+contention" {
		t.Errorf("bus+contention: %v, %v", f, err)
	}
	if _, err := NewFabric("torus", net, 8); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestHypercubeHopLatency(t *testing.T) {
	net := Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 1e-6, RecvOverhead: 1e-6}
	m := NewMachine(4, net, CPU{FlopsPerSec: 1e9})
	m.Fabric = NewHypercube(m.Net, 4)
	res, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(3, 9, Msg{Bytes: 1000})
		} else if r.ID == 3 {
			r.Recv(0, 9)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 0→3 is 2 hops: 1µs send overhead + 2·10µs head + 10µs body + 1µs
	// recv overhead.
	want := 1e-6 + 2*10e-6 + 10e-6 + 1e-6
	if math.Abs(res.Makespan-want) > 1e-15 {
		t.Errorf("2-hop makespan = %g, want %g", res.Makespan, want)
	}
}

func TestHypercubeMeanHeadLatency(t *testing.T) {
	net := Network{Latency: 10e-6, Bandwidth: 100e6}
	if got := NewHypercube(net, 2).MeanHeadLatency(); got != 10e-6 {
		t.Errorf("p=2 mean head = %g, want latency", got)
	}
	// p=4: xor distances over ordered pairs are 1,1,2 per rank (×4 ranks),
	// mean hops = 16/12 = 4/3.
	want := 10e-6 * 4 / 3
	if got := NewHypercube(net, 4).MeanHeadLatency(); math.Abs(got-want) > 1e-18 {
		t.Errorf("p=4 mean head = %g, want %g", got, want)
	}
}

func TestContentionSerializesEgress(t *testing.T) {
	net := Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 1e-6, RecvOverhead: 1e-6}
	body := func(r *Rank) {
		switch r.ID {
		case 0:
			r.Send(1, 1, Msg{Bytes: 1000})
			r.Send(2, 2, Msg{Bytes: 1000})
		case 1:
			r.Recv(0, 1)
		case 2:
			r.Recv(0, 2)
		}
	}
	plain, err := NewMachine(3, net, CPU{FlopsPerSec: 1e9}).Run(body)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(3, net, CPU{FlopsPerSec: 1e9})
	m.Fabric = WithContention(NewCrossbar(m.Net, 3), 3)
	queued, err := m.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	// Plain crossbar: the second message departs at 2µs, arrives 2+10+10,
	// +1 recv = 23µs. With egress contention it cannot depart before the
	// first body clears the link at 1+10 = 11µs: 11+10+10+1 = 32µs.
	if math.Abs(plain.Makespan-23e-6) > 1e-15 {
		t.Errorf("plain makespan = %g, want 23µs", plain.Makespan)
	}
	if math.Abs(queued.Makespan-32e-6) > 1e-15 {
		t.Errorf("contended makespan = %g, want 32µs", queued.Makespan)
	}
}

// TestContentionDeterministic reruns an all-to-all burst on a contended
// fabric: timing must be bit-identical across runs (the occupancy state is
// per-sender and reset by Run), regardless of goroutine scheduling.
func TestContentionDeterministic(t *testing.T) {
	net := Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 1e-6, RecvOverhead: 1e-6}
	m := NewMachine(8, net, CPU{FlopsPerSec: 1e9})
	m.Fabric = WithContention(NewHypercube(m.Net, 8), 8)
	body := func(r *Rank) {
		p := r.P()
		for off := 1; off < p; off++ {
			r.Send((r.ID+off)%p, 5, Msg{Bytes: 4096})
		}
		for off := 1; off < p; off++ {
			r.Recv((r.ID+off)%p, 5)
		}
	}
	first, err := m.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		again, err := m.Run(body)
		if err != nil {
			t.Fatal(err)
		}
		if again.Makespan != first.Makespan {
			t.Fatalf("run %d: makespan %g != %g", i, again.Makespan, first.Makespan)
		}
		for id := range again.Ranks {
			if again.Ranks[id].FinalClock != first.Ranks[id].FinalClock {
				t.Fatalf("run %d: rank %d clock differs", i, id)
			}
		}
	}
}

func TestCollectiveCostRingAlgorithm(t *testing.T) {
	net := Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 1e-6, RecvOverhead: 1e-6}
	barrier := func(r *Rank) { r.Barrier() }
	tree, err := NewMachine(8, net, CPU{FlopsPerSec: 1e9}).Run(barrier)
	if err != nil {
		t.Fatal(err)
	}
	ring := NewMachine(8, net, CPU{FlopsPerSec: 1e9})
	ring.Coll = AlgRing
	rres, err := ring.Run(barrier)
	if err != nil {
		t.Fatal(err)
	}
	per := 1e-6 + 1e-6 + 10e-6
	if math.Abs(tree.Makespan-3*per) > 1e-15 {
		t.Errorf("tree barrier = %g, want 3 rounds", tree.Makespan)
	}
	if math.Abs(rres.Makespan-7*per) > 1e-15 {
		t.Errorf("ring barrier = %g, want 7 rounds", rres.Makespan)
	}
}

// First-class collective operations on Rank. Historically the distribution
// layers hand-rolled these as point-to-point loops (dist.Block.allToAll,
// dmem.GatherToRoot); promoting them into sim gives every caller selectable
// algorithms (direct pairwise, ring, recursive-doubling/Bruck, binomial
// trees), one EvCollective trace event per rank with the algorithm in the
// label, and a single place where the timing conventions live.
//
// Inside a collective the constituent sends and receives still accrue to
// the rank's Stats (traffic and time are real), but their individual trace
// events are suppressed so the timeline and the critical-path analysis see
// one labeled collective interval instead of double-counted pieces.
package sim

import (
	"fmt"

	"genmp/internal/xport"
)

// The algorithm enum and call options moved to internal/xport with the
// transport carve-out (plan consumers carry them in transport-neutral
// options structs); the aliases keep historical sim.AlgAuto / sim.CollOpts
// spellings working unchanged.

// Alg selects a collective algorithm (see xport.Alg).
type Alg = xport.Alg

const (
	// AlgAuto picks the machine default (Machine.Coll), falling back to
	// each primitive's legacy algorithm — the one whose timing matches the
	// pre-collective hand-rolled loops bit for bit.
	AlgAuto = xport.AlgAuto
	// AlgPairwise exchanges directly with every peer (p−1 messages each).
	AlgPairwise = xport.AlgPairwise
	// AlgRing forwards blocks around a ring in p−1 steps.
	AlgRing = xport.AlgRing
	// AlgDoubling exchanges with hypercube partners in ⌈log₂ p⌉ rounds.
	AlgDoubling = xport.AlgDoubling
	// AlgBruck is the log-round store-and-forward all-to-all; for tree
	// collectives it selects the binomial tree.
	AlgBruck = xport.AlgBruck
)

// ParseAlg parses a collective-algorithm name (the -coll flag values).
func ParseAlg(s string) (Alg, error) { return xport.ParseAlg(s) }

// CollOpts tunes one collective call (see xport.CollOpts).
type CollOpts = xport.CollOpts

// resolveAlg applies the AlgAuto chain: call option, then machine default.
// The caller maps a remaining AlgAuto to its own legacy algorithm.
func (r *Rank) resolveAlg(o CollOpts) Alg {
	if o.Alg != AlgAuto {
		return o.Alg
	}
	return r.machine.Coll
}

// collective brackets body as one traced EvCollective interval: inner
// send/recv/compute events are suppressed (stats still accrue) and the
// emitted event carries the accumulated wait and bytes sent inside.
func (r *Rank) collective(label string, body func()) {
	if mm := r.machine.mm; mm != nil && r.quiet == 0 {
		mm.collective(label).Inc()
	}
	start := r.clock
	waitBefore := r.stats.WaitTime
	sentBefore := r.stats.BytesSent
	r.quiet++
	body()
	r.quiet--
	if r.quiet == 0 && r.observing() {
		e := Event{
			Rank: r.ID, Kind: EvCollective, Start: start, End: r.clock, Peer: -1,
			Label: label, Bytes: r.stats.BytesSent - sentBefore,
			Wait: r.stats.WaitTime - waitBefore, Phase: r.phase,
		}
		if fr := r.machine.Flight; fr != nil {
			fr.record(r.ID, e)
		}
		if tr := r.machine.Trace; tr != nil {
			tr.add(e)
		}
	}
}

// collBlock is one origin→dst unit moving through a composed collective.
// size is the modeled byte count; data is the optional payload.
type collBlock struct {
	origin, dst int
	size        int
	data        []float64
}

// encodeBlocks flattens blocks into one forwardable payload. The framing is
// float64 words — [n, then (origin, dst, size, len(data)) per block, then
// all data concatenated] — so composed algorithms work in model-only runs
// too. It returns the payload and the modeled byte total (the block sizes;
// framing words are bookkeeping, not modeled traffic, though an otherwise
// empty bundle is still charged its 8-byte count word by Send).
func encodeBlocks(blocks []collBlock) (payload []float64, modeled int) {
	payload = append(payload, float64(len(blocks)))
	for _, b := range blocks {
		payload = append(payload, float64(b.origin), float64(b.dst), float64(b.size), float64(len(b.data)))
		modeled += b.size
	}
	for _, b := range blocks {
		payload = append(payload, b.data...)
	}
	return payload, modeled
}

func decodeBlocks(payload []float64) []collBlock {
	n := int(payload[0])
	blocks := make([]collBlock, n)
	off := 1 + 4*n
	for i := 0; i < n; i++ {
		h := payload[1+4*i:]
		nd := int(h[3])
		blocks[i] = collBlock{origin: int(h[0]), dst: int(h[1]), size: int(h[2])}
		if nd > 0 {
			blocks[i].data = payload[off : off+nd]
		}
		off += nd
	}
	return blocks
}

// sendBlocks ships a bundle with the modeled byte count, bracketed by the
// per-message overhead.
func (r *Rank) sendBlocks(dst, tag int, blocks []collBlock, pm float64) {
	payload, modeled := encodeBlocks(blocks)
	r.Compute(pm)
	r.Send(dst, tag, Msg{Bytes: modeled, Payload: payload})
}

// recvBlocks receives a bundle, charging the per-message overhead after.
func (r *Rank) recvBlocks(src, tag int, pm float64) []collBlock {
	m := r.Recv(src, tag)
	r.Compute(pm)
	return decodeBlocks(m.Payload)
}

// AllToAll performs a personalized total exchange: rank q contributes
// sizes[i] modeled bytes (and data[i], when data is non-nil) for every rank
// i, and receives every rank's contribution for q, returned indexed by
// origin. The default algorithm (AlgAuto with no machine override) is the
// direct pairwise exchange, whose timing is bit-identical to the historical
// hand-rolled transpose loop: peers are walked in (q+off) mod p order,
// every send and receive bracketed by o.PerMessage of CPU time. AlgRing
// forwards blocks around a ring in p−1 steps; AlgDoubling/AlgBruck
// store-and-forward in ⌈log₂ p⌉ rounds.
func (r *Rank) AllToAll(sizes []int, data [][]float64, o CollOpts) [][]float64 {
	p := r.machine.P
	if len(sizes) != p {
		panic(fmt.Sprintf("sim: AllToAll needs %d sizes, got %d", p, len(sizes)))
	}
	if data != nil && len(data) != p {
		panic(fmt.Sprintf("sim: AllToAll needs %d data blocks, got %d", p, len(data)))
	}
	alg := r.resolveAlg(o)
	var label string
	switch alg {
	case AlgRing:
		label = "alltoall/ring"
	case AlgDoubling, AlgBruck:
		label = "alltoall/bruck"
	default:
		alg = AlgPairwise
		label = "alltoall/pairwise"
	}
	out := make([][]float64, p)
	if data != nil {
		out[r.ID] = data[r.ID]
	}
	if p == 1 {
		r.collective(label, func() {})
		return out
	}
	r.collective(label, func() {
		switch alg {
		case AlgRing:
			r.allToAllRing(sizes, data, o.PerMessage, out)
		case AlgDoubling, AlgBruck:
			r.allToAllBruck(sizes, data, o.PerMessage, out)
		default:
			r.allToAllPairwise(sizes, data, o.PerMessage, out)
		}
	})
	return out
}

func (r *Rank) allToAllPairwise(sizes []int, data [][]float64, pm float64, out [][]float64) {
	p, q := r.machine.P, r.ID
	tag := collTags.Tag(tagAllToAll)
	for off := 1; off < p; off++ {
		dst := (q + off) % p
		var payload []float64
		if data != nil {
			payload = data[dst]
		}
		r.Compute(pm)
		r.Send(dst, tag, Msg{Bytes: sizes[dst], Payload: payload})
	}
	for off := 1; off < p; off++ {
		src := (q + off) % p
		m := r.Recv(src, tag)
		r.Compute(pm)
		out[src] = m.Payload
	}
}

func (r *Rank) allToAllRing(sizes []int, data [][]float64, pm float64, out [][]float64) {
	p, q := r.machine.P, r.ID
	tag := collTags.Tag(tagAllToAll)
	right, left := (q+1)%p, (q+p-1)%p
	var pending []collBlock
	for i := 0; i < p; i++ {
		if i != q {
			b := collBlock{origin: q, dst: i, size: sizes[i]}
			if data != nil {
				b.data = data[i]
			}
			pending = append(pending, b)
		}
	}
	// Every block advances one hop per step; the farthest is p−1 hops away.
	for s := 1; s < p; s++ {
		r.sendBlocks(right, tag, pending, pm)
		pending = pending[:0]
		for _, b := range r.recvBlocks(left, tag, pm) {
			if b.dst == q {
				out[b.origin] = b.data
			} else {
				pending = append(pending, b)
			}
		}
	}
}

func (r *Rank) allToAllBruck(sizes []int, data [][]float64, pm float64, out [][]float64) {
	p, q := r.machine.P, r.ID
	tag := collTags.Tag(tagAllToAll)
	var pending []collBlock
	for i := 0; i < p; i++ {
		if i != q {
			b := collBlock{origin: q, dst: i, size: sizes[i]}
			if data != nil {
				b.data = data[i]
			}
			pending = append(pending, b)
		}
	}
	// Round k moves blocks whose remaining ring distance has bit k set by
	// 2^k; distances are < p, so ⌈log₂ p⌉ rounds clear every bit.
	for k := 0; 1<<k < p; k++ {
		dst := (q + 1<<k) % p
		src := (q + p - 1<<k) % p
		var ship, keep []collBlock
		for _, b := range pending {
			if (b.dst-q+p)%p&(1<<k) != 0 {
				ship = append(ship, b)
			} else {
				keep = append(keep, b)
			}
		}
		pending = keep
		r.sendBlocks(dst, tag, ship, pm)
		for _, b := range r.recvBlocks(src, tag, pm) {
			if b.dst == q {
				out[b.origin] = b.data
			} else {
				pending = append(pending, b)
			}
		}
	}
	if len(pending) > 0 {
		panic(fmt.Sprintf("sim: bruck all-to-all left %d undelivered blocks on rank %d", len(pending), q))
	}
}

// AllGather collects every rank's size-byte contribution on every rank,
// returned indexed by origin (mine may be nil in model-only runs). The
// default algorithm is the ring (p−1 neighbor steps, each forwarding one
// origin's block); AlgPairwise sends directly to every peer;
// AlgDoubling/AlgBruck exchange held sets with hypercube-distance peers in
// ⌈log₂ p⌉ rounds.
func (r *Rank) AllGather(size int, mine []float64, o CollOpts) [][]float64 {
	p, q := r.machine.P, r.ID
	alg := r.resolveAlg(o)
	var label string
	switch alg {
	case AlgPairwise:
		label = "allgather/pairwise"
	case AlgDoubling, AlgBruck:
		label = "allgather/doubling"
	default:
		alg = AlgRing
		label = "allgather/ring"
	}
	out := make([][]float64, p)
	out[q] = mine
	if p == 1 {
		r.collective(label, func() {})
		return out
	}
	tag := collTags.Tag(tagAllGather)
	r.collective(label, func() {
		switch alg {
		case AlgPairwise:
			for off := 1; off < p; off++ {
				dst := (q + off) % p
				r.Compute(o.PerMessage)
				r.Send(dst, tag, Msg{Bytes: size, Payload: mine})
			}
			for off := 1; off < p; off++ {
				src := (q + off) % p
				m := r.Recv(src, tag)
				r.Compute(o.PerMessage)
				out[src] = m.Payload
			}
		case AlgDoubling, AlgBruck:
			// Bruck-style: the held set doubles each round (the last round
			// overlaps for non-power-of-2 p; have dedups).
			have := make([]bool, p)
			have[q] = true
			held := []collBlock{{origin: q, dst: -1, size: size, data: mine}}
			for k := 0; 1<<k < p; k++ {
				dst := (q + p - 1<<k) % p
				src := (q + 1<<k) % p
				r.sendBlocks(dst, tag, held, o.PerMessage)
				for _, b := range r.recvBlocks(src, tag, o.PerMessage) {
					if !have[b.origin] {
						have[b.origin] = true
						out[b.origin] = b.data
						held = append(held, b)
					}
				}
			}
		default: // ring
			right, left := (q+1)%p, (q+p-1)%p
			cur := Msg{Bytes: size, Payload: mine}
			for s := 1; s < p; s++ {
				r.Compute(o.PerMessage)
				r.Send(right, tag, cur)
				cur = r.Recv(left, tag)
				r.Compute(o.PerMessage)
				out[(q+p-s)%p] = cur.Payload
			}
		}
	})
	return out
}

// GatherTo collects every rank's size-byte contribution on root, returned
// there indexed by origin (nil elsewhere). The default algorithm is the
// linear gather whose timing is bit-identical to the historical
// dmem.GatherToRoot loop: non-roots send to root, root receives in
// ascending rank order. AlgRing chains bundles down the ring toward root;
// AlgDoubling/AlgBruck climb a binomial tree in ⌈log₂ p⌉ rounds.
func (r *Rank) GatherTo(root, size int, mine []float64, o CollOpts) [][]float64 {
	p, q := r.machine.P, r.ID
	if root < 0 || root >= p {
		panic(fmt.Sprintf("sim: GatherTo root %d of %d", root, p))
	}
	alg := r.resolveAlg(o)
	var label string
	switch alg {
	case AlgRing:
		label = "gather/chain"
	case AlgDoubling, AlgBruck:
		label = "gather/binomial"
	default:
		alg = AlgPairwise
		label = "gather/linear"
	}
	var out [][]float64
	if q == root {
		out = make([][]float64, p)
		out[q] = mine
	}
	if p == 1 {
		r.collective(label, func() {})
		return out
	}
	tag := collTags.Tag(tagGather)
	r.collective(label, func() {
		switch alg {
		case AlgRing:
			// Offsets p−1 → 1 pass accumulated bundles toward the root.
			o1 := (q - root + p) % p
			var held []collBlock
			if o1 < p-1 {
				held = r.recvBlocks((root+o1+1)%p, tag, o.PerMessage)
			}
			held = append(held, collBlock{origin: q, dst: root, size: size, data: mine})
			if o1 > 0 {
				r.sendBlocks((root+o1-1)%p, tag, held, o.PerMessage)
			} else {
				for _, b := range held {
					out[b.origin] = b.data
				}
			}
		case AlgDoubling, AlgBruck:
			o1 := (q - root + p) % p
			held := []collBlock{{origin: q, dst: root, size: size, data: mine}}
			for k := 0; 1<<k < p; k++ {
				peer := o1 ^ 1<<k
				if o1&(1<<k) != 0 {
					r.sendBlocks((root+peer)%p, tag, held, o.PerMessage)
					held = nil
					break
				}
				if peer < p {
					held = append(held, r.recvBlocks((root+peer)%p, tag, o.PerMessage)...)
				}
			}
			if q == root {
				for _, b := range held {
					out[b.origin] = b.data
				}
			}
		default: // linear
			if q != root {
				r.Compute(o.PerMessage)
				r.Send(root, tag, Msg{Bytes: size, Payload: mine})
				return
			}
			for src := 0; src < p; src++ {
				if src == root {
					continue
				}
				m := r.Recv(src, tag)
				r.Compute(o.PerMessage)
				out[src] = m.Payload
			}
		}
	})
	return out
}

// Bcast distributes root's size-byte block to every rank and returns it
// (the payload travels when data is non-nil on root). The default is the
// binomial tree (⌈log₂ p⌉ depth); AlgPairwise sends linearly from root;
// AlgRing chains around the ring.
func (r *Rank) Bcast(root, size int, data []float64, o CollOpts) []float64 {
	p, q := r.machine.P, r.ID
	if root < 0 || root >= p {
		panic(fmt.Sprintf("sim: Bcast root %d of %d", root, p))
	}
	alg := r.resolveAlg(o)
	var label string
	switch alg {
	case AlgPairwise:
		label = "bcast/linear"
	case AlgRing:
		label = "bcast/chain"
	default:
		alg = AlgDoubling
		label = "bcast/binomial"
	}
	if p == 1 {
		r.collective(label, func() {})
		return data
	}
	tag := collTags.Tag(tagBcast)
	o1 := (q - root + p) % p
	r.collective(label, func() {
		switch alg {
		case AlgPairwise:
			if q == root {
				for off := 1; off < p; off++ {
					r.Compute(o.PerMessage)
					r.Send((root+off)%p, tag, Msg{Bytes: size, Payload: data})
				}
			} else {
				m := r.Recv(root, tag)
				r.Compute(o.PerMessage)
				data, size = m.Payload, m.Bytes
			}
		case AlgRing:
			if o1 > 0 {
				m := r.Recv((root+o1-1)%p, tag)
				r.Compute(o.PerMessage)
				data, size = m.Payload, m.Bytes
			}
			if o1 < p-1 {
				r.Compute(o.PerMessage)
				r.Send((root+o1+1)%p, tag, Msg{Bytes: size, Payload: data})
			}
		default: // binomial
			k := 0
			if o1 > 0 {
				for ; 1<<(k+1) <= o1; k++ {
				}
				m := r.Recv((root+o1-1<<k)%p, tag)
				r.Compute(o.PerMessage)
				data, size = m.Payload, m.Bytes
				k++
			}
			for ; 1<<k < p; k++ {
				dst := o1 + 1<<k
				if dst < p {
					r.Compute(o.PerMessage)
					r.Send((root+dst)%p, tag, Msg{Bytes: size, Payload: data})
				}
			}
		}
	})
	return data
}

// Exchange is the neighbor-exchange (halo) primitive: per-message CPU
// overhead, a combined send-to-dst / receive-from-src, per-message overhead
// again — the exact bracketing the distribution layers historically used,
// centralized so all halo paths share one convention.
func (r *Rank) Exchange(dst, src, tag int, m Msg, perMessage float64) Msg {
	r.Compute(perMessage)
	got := r.SendRecv(dst, tag, m, src, tag)
	r.Compute(perMessage)
	return got
}

// Collective tag offsets within collTags.
const (
	tagAllToAll = iota
	tagAllGather
	tagGather
	tagBcast
)

package sim

import (
	"math"
	"strings"
	"testing"

	"genmp/internal/xport"
)

// Isend + Wait must be timing-identical to Send: injection is eager and
// completing a send request is free.
func TestIsendTimingMatchesSend(t *testing.T) {
	run := func(nonblocking bool) float64 {
		m := testMachine(2)
		res, err := m.Run(func(r *Rank) {
			if r.ID == 0 {
				if nonblocking {
					q := r.Isend(1, 3, Msg{Bytes: 1000})
					r.Compute(5e-6)
					q.Wait()
				} else {
					r.Send(1, 3, Msg{Bytes: 1000})
					r.Compute(5e-6)
				}
			} else {
				r.Recv(0, 3)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if off, on := run(false), run(true); off != on {
		t.Errorf("Isend makespan %g != Send makespan %g", on, off)
	}
}

// Preposting a receive is timing-neutral on its own: all receive cost
// accrues at Wait with the same arithmetic Recv uses.
func TestIrecvWaitTimingMatchesRecv(t *testing.T) {
	run := func(nonblocking bool) float64 {
		m := testMachine(2)
		res, err := m.Run(func(r *Rank) {
			if r.ID == 0 {
				r.Compute(30e-6)
				r.Send(1, 0, Msg{Bytes: 1000})
			} else {
				var msg Msg
				if nonblocking {
					q := r.Irecv(0, 0)
					msg = q.Wait()
				} else {
					msg = r.Recv(0, 0)
				}
				if msg.Bytes != 1000 {
					panic("wrong message")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if off, on := run(false), run(true); off != on {
		t.Errorf("Irecv+Wait makespan %g != Recv makespan %g", on, off)
	}
}

// Compute executed between the Irecv post and its Wait hides the wire
// one-for-one: the exposed wait shrinks by exactly the overlapped compute,
// down to zero.
func TestWaitShrinksWithOverlappedCompute(t *testing.T) {
	waitFor := func(overlap float64) float64 {
		m := testMachine(2)
		res, err := m.Run(func(r *Rank) {
			if r.ID == 0 {
				r.Send(1, 0, Msg{Bytes: 1000})
			} else {
				q := r.Irecv(0, 0)
				if overlap > 0 {
					r.Compute(overlap)
				}
				q.Wait()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Ranks[1].WaitTime
	}
	base := waitFor(0)
	if base <= 0 {
		t.Fatalf("baseline exposed wait = %g, want > 0", base)
	}
	const hide = 5e-6
	if got, want := waitFor(hide), base-hide; math.Abs(got-want) > 1e-15 {
		t.Errorf("wait with %gs overlapped compute = %g, want %g", hide, got, want)
	}
	// More compute than the message needs: the wait clamps at zero.
	if got := waitFor(10 * base); got != 0 {
		t.Errorf("wait with excess overlapped compute = %g, want 0", got)
	}
}

// The k-th Isend on a (src,dst,tag) channel pairs with the k-th Irecv, and
// payloads come back in FIFO order even though matching happens at Wait.
func TestNonblockingFIFOMatching(t *testing.T) {
	m := testMachine(2)
	_, err := m.Run(func(r *Rank) {
		const n = 4
		if r.ID == 0 {
			var reqs []xport.Request
			for k := 0; k < n; k++ {
				reqs = append(reqs, r.Isend(1, 7, Msg{Payload: []float64{float64(k)}}))
			}
			r.WaitAll(reqs...)
		} else {
			var reqs []xport.Request
			for k := 0; k < n; k++ {
				reqs = append(reqs, r.Irecv(0, 7))
			}
			for k, q := range reqs {
				if got := q.Wait().Payload[0]; got != float64(k) {
					panic("FIFO order violated")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Distinct tags are independent channels: preposted receives match by tag,
// not by arrival order.
func TestNonblockingTagsIndependent(t *testing.T) {
	m := testMachine(2)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 2, Msg{Payload: []float64{22}})
			r.Send(1, 1, Msg{Payload: []float64{11}})
		} else {
			q1 := r.Irecv(0, 1)
			q2 := r.Irecv(0, 2)
			if q1.Wait().Payload[0] != 11 || q2.Wait().Payload[0] != 22 {
				panic("tag channels crossed")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Waiting receive requests out of their Irecv post order on one channel
// would silently swap message contents relative to MPI semantics; the
// simulator panics instead.
func TestWaitOutOfPostOrderPanics(t *testing.T) {
	m := testMachine(2)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 0, Msg{Bytes: 8})
			r.Send(1, 0, Msg{Bytes: 8})
		} else {
			first := r.Irecv(0, 0)
			second := r.Irecv(0, 0)
			second.Wait() // out of post order: must panic
			first.Wait()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "out of Irecv post order") {
		t.Fatalf("expected post-order panic, got %v", err)
	}
}

// Waiting the same request twice panics.
func TestDoubleWaitPanics(t *testing.T) {
	m := testMachine(2)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 0, Msg{Bytes: 8})
		} else {
			q := r.Irecv(0, 0)
			q.Wait()
			q.Wait()
		}
	})
	if err == nil || !strings.Contains(err.Error(), "completed (or recycled) request") {
		t.Fatalf("expected double-Wait panic, got %v", err)
	}
}

// Deadlock post-mortem: a rank blocked in Wait shows as BLOCKED, and the
// flight report names the requests it posted but never Waited — the leak a
// mis-wired overlap schedule produces.
func TestFlightReportNamesUnwaitedRequests(t *testing.T) {
	m := testMachine(2)
	m.Flight = NewFlightRecorder(16)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.BeginPhase("solve0")
			r.Irecv(1, 5)                 // leaked: never Waited
			r.Isend(1, 6, Msg{Bytes: 64}) // leaked: never Waited
			r.Irecv(1, 9).Wait()          // never satisfied: deadlock here
		}
		// Rank 1 exits immediately.
	})
	if err == nil {
		t.Fatal("deadlocked program returned nil error")
	}
	msg := err.Error()
	for _, want := range []string{
		"deadlock",
		"rank 0  BLOCKED in Recv(src=1, tag=9)",
		"un-Waited requests:",
		"irecv <- rank 1 tag 5",
		"isend -> rank 1 tag 6",
		"[phase solve0]",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("flight report missing %q:\n%s", want, msg)
		}
	}
}

// PendingRequests reflects completion discipline while the program runs:
// posts appear, Waits retire them.
func TestPendingRequestsTracksDiscipline(t *testing.T) {
	m := testMachine(2)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 0, Msg{Bytes: 8})
			return
		}
		q1 := r.Irecv(0, 0)
		q2 := r.Isend(0, 1, Msg{Bytes: 8})
		if n := len(r.PendingRequests()); n != 2 {
			panic("expected 2 pending requests")
		}
		q1.Wait()
		q2.Wait()
		if n := len(r.PendingRequests()); n != 0 {
			panic("requests not retired after Wait")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 never receives tag 1 — harmless here: the run ends when all
	// bodies return, and that send stays in the mailbox.
}

// Nonblocking events land in the trace with their distinct kinds, in
// timeline order: the Irecv marker at the post, the Wait carrying the full
// receive arithmetic.
func TestNonblockingTraceEvents(t *testing.T) {
	m := testMachine(2)
	m.Trace = &Trace{}
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			q := r.Isend(1, 0, Msg{Bytes: 1000})
			q.Wait()
		} else {
			q := r.Irecv(0, 0)
			r.Compute(2e-6)
			q.Wait()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var kinds []EventKind
	for _, e := range m.Trace.Events() {
		if e.Rank == 1 {
			kinds = append(kinds, e.Kind)
		}
	}
	want := []EventKind{EvIrecv, EvCompute, EvWait}
	if len(kinds) != len(want) {
		t.Fatalf("rank 1 trace kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("rank 1 trace kinds = %v, want %v", kinds, want)
		}
	}
	for _, e := range m.Trace.Events() {
		if e.Kind == EvIrecv && e.End != e.Start {
			t.Errorf("EvIrecv has nonzero duration: %+v", e)
		}
		if e.Kind == EvWait && e.Bytes != 1000 {
			t.Errorf("EvWait lost the matched size: %+v", e)
		}
	}
}

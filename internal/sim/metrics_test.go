package sim

import (
	"testing"

	"genmp/internal/obs/metrics"
)

// ringBody is a small program exercising sends, receives, computes, a
// collective and the payload pool.
func ringBody(m *Machine) func(r *Rank) {
	return func(r *Rank) {
		next := (r.ID + 1) % m.P
		prev := (r.ID + m.P - 1) % m.P
		buf := r.GetPayload(16)
		for i := range buf {
			buf[i] = float64(r.ID)
		}
		got := r.SendRecv(next, 5, Msg{Payload: buf}, prev, 5)
		r.PutPayload(got.Payload)
		r.Compute(1e-6)
		r.Barrier()
	}
}

func TestMachineMetricsCounters(t *testing.T) {
	reg := metrics.New()
	m := testMachine(4)
	m.Metrics = reg
	res, err := m.Run(ringBody(m))
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if v, _ := s.Value("sim_messages_total"); v != 4 {
		t.Errorf("sim_messages_total = %g, want 4", v)
	}
	if v, _ := s.Value("sim_bytes_total"); v != 4*16*8 {
		t.Errorf("sim_bytes_total = %g, want %d", v, 4*16*8)
	}
	if v, _ := s.Value("sim_link_bytes_total", metrics.L("link", "0->1")); v != 128 {
		t.Errorf("link 0->1 bytes = %g, want 128", v)
	}
	if _, ok := s.Value("sim_link_bytes_total", metrics.L("link", "0->2")); ok {
		t.Error("idle link 0->2 was registered")
	}
	if v, _ := s.Value("sim_collectives_total", metrics.L("op", "barrier")); v != 4 {
		t.Errorf("barrier invocations = %g, want 4", v)
	}
	if v, _ := s.Value("sim_runs_total"); v != 1 {
		t.Errorf("sim_runs_total = %g, want 1", v)
	}
	if v, _ := s.Value("sim_deadlocks_total"); v != 0 {
		t.Errorf("sim_deadlocks_total = %g, want 0", v)
	}
	if v, _ := s.Value("sim_makespan_seconds"); v != res.Makespan {
		t.Errorf("sim_makespan_seconds = %g, want %g", v, res.Makespan)
	}
	if v, _ := s.Value("sim_payload_pool_gets_total"); v != 4 {
		t.Errorf("pool gets = %g, want 4", v)
	}
	if v, _ := s.Value("sim_payload_pool_puts_total"); v != 4 {
		t.Errorf("pool puts = %g, want 4", v)
	}
	p, ok := s.Point("sim_message_bytes")
	if !ok || p.Count != 4 {
		t.Errorf("sim_message_bytes count = %d, want 4", p.Count)
	}
	// Second run on the same machine: counters accumulate, pool now hits.
	if _, err := m.Run(ringBody(m)); err != nil {
		t.Fatal(err)
	}
	s = reg.Snapshot()
	if v, _ := s.Value("sim_runs_total"); v != 2 {
		t.Errorf("sim_runs_total after 2nd run = %g, want 2", v)
	}
	// Hit counts depend on goroutine interleaving (a rank may return its
	// buffer before a peer requests one), but the second run recycles at
	// least its own four buffers.
	if v, _ := s.Value("sim_payload_pool_hits_total"); v < 4 {
		t.Errorf("pool hits after 2nd run = %g, want ≥ 4", v)
	}
	if v, _ := s.Value("sim_mailbox_envelopes_total", metrics.L("source", "reused")); v == 0 {
		t.Error("no envelope reuse recorded on the 2nd run")
	}
}

func TestMachineMetricsDeadlockAndStalls(t *testing.T) {
	reg := metrics.New()
	m := testMachine(2)
	m.Metrics = reg
	m.Fabric = WithContention(DefaultFabric(m.Net, m.P), m.P)
	if _, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			// Back-to-back sends from one rank: the second stalls behind the
			// first body on the egress link.
			r.Send(1, 1, Msg{Bytes: 1 << 20})
			r.Send(1, 2, Msg{Bytes: 1 << 20})
		} else {
			r.Recv(0, 1)
			r.Recv(0, 2)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if v, _ := s.Value("sim_contention_stall_seconds_total"); v <= 0 {
		t.Errorf("contention stalls = %g, want > 0", v)
	}
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Recv(1, 1)
		}
	})
	if err == nil {
		t.Fatal("mismatched program did not deadlock")
	}
	s = reg.Snapshot()
	if v, _ := s.Value("sim_deadlocks_total"); v != 1 {
		t.Errorf("sim_deadlocks_total = %g, want 1", v)
	}
}

func TestDefaultMetricsFallback(t *testing.T) {
	reg := metrics.New()
	SetDefaultMetrics(reg)
	defer SetDefaultMetrics(nil)
	m := testMachine(2)
	if _, err := m.Run(ringBody(m)); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Snapshot().Value("sim_messages_total"); v != 2 {
		t.Errorf("default-registry sim_messages_total = %g, want 2", v)
	}
	if got := (&Rank{machine: m}).MetricsRegistry(); got != reg {
		t.Error("MetricsRegistry did not return the attached default registry")
	}
	// Detaching stops further reporting without touching old counts.
	SetDefaultMetrics(nil)
	if _, err := m.Run(ringBody(m)); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Snapshot().Value("sim_messages_total"); v != 2 {
		t.Errorf("detached registry still advanced: %g", v)
	}
}

// Metrics must not change virtual timing: makespans with and without a
// registry attached are bit-identical, including under contention.
func TestMetricsDoNotPerturbTiming(t *testing.T) {
	build := func(withReg bool) *Machine {
		m := testMachine(4)
		m.Fabric = WithContention(DefaultFabric(m.Net, m.P), m.P)
		if withReg {
			m.Metrics = metrics.New()
		}
		return m
	}
	body := func(m *Machine) func(r *Rank) {
		return func(r *Rank) {
			r.AllToAll([]int{512, 512, 512, 512}, nil, CollOpts{})
			r.Compute(float64(r.ID) * 1e-6)
			r.Barrier()
		}
	}
	mp, mm := build(false), build(true)
	rp, err := mp.Run(body(mp))
	if err != nil {
		t.Fatal(err)
	}
	rm, err := mm.Run(body(mm))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Makespan != rm.Makespan {
		t.Errorf("metrics changed makespan: %g != %g", rm.Makespan, rp.Makespan)
	}
}

func TestPoolAndMailboxStatsAccessors(t *testing.T) {
	m := testMachine(2)
	if s := m.PayloadPoolStats(); s != (PoolStats{}) {
		t.Errorf("fresh machine pool stats = %+v", s)
	}
	if s := m.MailboxStats(); s != (MailboxStats{}) {
		t.Errorf("fresh machine mailbox stats = %+v", s)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Run(ringBody(m)); err != nil {
			t.Fatal(err)
		}
	}
	ps := m.PayloadPoolStats()
	if ps.Gets != 6 || ps.Puts != 6 {
		t.Errorf("pool gets/puts = %d/%d, want 6/6", ps.Gets, ps.Puts)
	}
	// Warm-up allocates at most one buffer per rank; later runs recycle.
	if ps.Hits < 4 {
		t.Errorf("pool hits = %d, want ≥ 4 (steady state recycles)", ps.Hits)
	}
	if got := ps.HitRate(); got != float64(ps.Hits)/float64(ps.Gets) {
		t.Errorf("HitRate = %g", got)
	}
	if (PoolStats{}).HitRate() != 0 {
		t.Error("zero-traffic HitRate should be 0")
	}
	ms := m.MailboxStats()
	if ms.EnvelopesNew == 0 || ms.EnvelopesReused == 0 {
		t.Errorf("mailbox stats %+v: want both provenance counters nonzero", ms)
	}
}

// Per-message metric updates add no allocations on the send path. The
// differential form mirrors the repo's other alloc tests: measure the same
// program with metrics off and on; the delta must be zero.
func TestMetricsAddNoSendPathAllocs(t *testing.T) {
	run := func(withReg bool) float64 {
		m := testMachine(2)
		if withReg {
			m.Metrics = metrics.New()
		}
		// Warm up: resolve instruments, fill pools, register links.
		if _, err := m.Run(ringBody(m)); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := m.Run(ringBody(m)); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := run(false)
	instrumented := run(true)
	if instrumented > base {
		t.Errorf("metrics add %v allocs/run over baseline %v", instrumented-base, base)
	}
}

func BenchmarkSendPathWithMetrics(b *testing.B) {
	m := testMachine(2)
	m.Metrics = metrics.New()
	body := ringBody(m)
	if _, err := m.Run(body); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(body); err != nil {
			b.Fatal(err)
		}
	}
}

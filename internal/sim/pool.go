package sim

import (
	"sync"
	"sync/atomic"
)

// payloadPool recycles message payload buffers machine-wide. Ranks hand
// buffers to each other through messages (a Send transfers ownership to
// the receiver), so a per-rank free list would drain at the upstream end
// of every pipeline while piling up downstream; one shared LIFO keeps the
// population balanced no matter which direction traffic flows. The mutex
// is uncontended in practice — a rank touches the pool a handful of times
// per sweep phase.
type payloadPool struct {
	mu   sync.Mutex
	bufs [][]float64
	// Traffic counters are atomics (not guarded fields) so PoolStats can be
	// read while a run is in flight.
	gets, hits, puts, drops atomic.Int64
}

// poolMaxBufs bounds the free list; beyond it buffers are dropped to the
// garbage collector (a machine at steady state holds far fewer).
const poolMaxBufs = 256

// get returns a length-n buffer and whether it was recycled from the pool.
func (p *payloadPool) get(n int) (buf []float64, hit bool) {
	p.gets.Add(1)
	p.mu.Lock()
	for i := len(p.bufs) - 1; i >= 0; i-- {
		if cap(p.bufs[i]) >= n {
			buf := p.bufs[i]
			last := len(p.bufs) - 1
			p.bufs[i] = p.bufs[last]
			p.bufs[last] = nil
			p.bufs = p.bufs[:last]
			p.mu.Unlock()
			p.hits.Add(1)
			return buf[:n], true
		}
	}
	p.mu.Unlock()
	return make([]float64, n), false
}

// put returns buf to the pool, reporting whether it was dropped instead
// because the pool was full.
func (p *payloadPool) put(buf []float64) (dropped bool) {
	if cap(buf) == 0 {
		return false
	}
	p.puts.Add(1)
	p.mu.Lock()
	if len(p.bufs) < poolMaxBufs {
		p.bufs = append(p.bufs, buf)
		p.mu.Unlock()
		return false
	}
	p.mu.Unlock()
	p.drops.Add(1)
	return true
}

// PoolStats is the cumulative traffic of a recycling pool. A healthy
// steady state allocates during warm-up only, after which HitRate
// approaches 1.
type PoolStats struct {
	Gets  int64 // buffers requested
	Hits  int64 // requests served by recycling
	Puts  int64 // buffers returned
	Drops int64 // returns discarded because the pool was full
}

// HitRate returns Hits/Gets, or 0 when nothing was requested.
func (s PoolStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// PayloadPoolStats returns the machine's payload-pool traffic, cumulative
// across runs. Safe to call concurrently with a run.
func (m *Machine) PayloadPoolStats() PoolStats {
	return PoolStats{
		Gets:  m.pool.gets.Load(),
		Hits:  m.pool.hits.Load(),
		Puts:  m.pool.puts.Load(),
		Drops: m.pool.drops.Load(),
	}
}

// GetPayload returns a length-n buffer for use as a message payload,
// recycled from the machine-wide pool when one of sufficient capacity is
// free (contents unspecified — overwrite fully).
func (r *Rank) GetPayload(n int) []float64 {
	buf, hit := r.machine.pool.get(n)
	if mm := r.machine.mm; mm != nil {
		mm.poolGets.Inc()
		if hit {
			mm.poolHits.Inc()
		}
	}
	return buf
}

// PutPayload returns a payload buffer to the machine-wide pool. Ownership
// follows the message: Send transfers the payload to the receiver, so only
// the receiver of a message may recycle it (after fully consuming it), and
// a sender must not touch a payload after Send. Callers who allocated a
// buffer themselves may of course recycle it too.
func (r *Rank) PutPayload(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	dropped := r.machine.pool.put(buf)
	if mm := r.machine.mm; mm != nil {
		mm.poolPuts.Inc()
		if dropped {
			mm.poolDrops.Inc()
		}
	}
}

package sim

import "sync"

// payloadPool recycles message payload buffers machine-wide. Ranks hand
// buffers to each other through messages (a Send transfers ownership to
// the receiver), so a per-rank free list would drain at the upstream end
// of every pipeline while piling up downstream; one shared LIFO keeps the
// population balanced no matter which direction traffic flows. The mutex
// is uncontended in practice — a rank touches the pool a handful of times
// per sweep phase.
type payloadPool struct {
	mu   sync.Mutex
	bufs [][]float64
}

// poolMaxBufs bounds the free list; beyond it buffers are dropped to the
// garbage collector (a machine at steady state holds far fewer).
const poolMaxBufs = 256

func (p *payloadPool) get(n int) []float64 {
	p.mu.Lock()
	for i := len(p.bufs) - 1; i >= 0; i-- {
		if cap(p.bufs[i]) >= n {
			buf := p.bufs[i]
			last := len(p.bufs) - 1
			p.bufs[i] = p.bufs[last]
			p.bufs[last] = nil
			p.bufs = p.bufs[:last]
			p.mu.Unlock()
			return buf[:n]
		}
	}
	p.mu.Unlock()
	return make([]float64, n)
}

func (p *payloadPool) put(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.bufs) < poolMaxBufs {
		p.bufs = append(p.bufs, buf)
	}
	p.mu.Unlock()
}

// GetPayload returns a length-n buffer for use as a message payload,
// recycled from the machine-wide pool when one of sufficient capacity is
// free (contents unspecified — overwrite fully).
func (r *Rank) GetPayload(n int) []float64 { return r.machine.pool.get(n) }

// PutPayload returns a payload buffer to the machine-wide pool. Ownership
// follows the message: Send transfers the payload to the receiver, so only
// the receiver of a message may recycle it (after fully consuming it), and
// a sender must not touch a payload after Send. Callers who allocated a
// buffer themselves may of course recycle it too.
func (r *Rank) PutPayload(buf []float64) { r.machine.pool.put(buf) }

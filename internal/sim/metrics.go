// Live metrics wiring for the virtual machine. Every quantity the
// simulator already tracks per run (Stats) is mirrored into an
// obs/metrics.Registry as cumulative process-wide series, so a long run or
// a server embedding machines can be scraped while still in flight. The
// wiring is strictly opt-in: with no registry attached the hot paths see
// one nil check and the virtual-time results are bit-identical either way
// (metrics never touch clocks).
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"genmp/internal/obs/metrics"
)

// defaultMetricsReg is the package-level registry Machine.Run falls back to
// when Machine.Metrics is nil. Commands set it once (the -metrics-addr
// wiring) so every machine they create — including those built deep inside
// exp or nas helpers — reports without plumbing a registry through every
// constructor. Nil (the default) keeps metrics off everywhere.
var defaultMetricsReg atomic.Pointer[metrics.Registry]

// SetDefaultMetrics installs reg as the registry machines attach when their
// own Metrics field is nil; pass nil to detach.
func SetDefaultMetrics(reg *metrics.Registry) { defaultMetricsReg.Store(reg) }

// defaultFlightDepth and defaultPProfLabels are the package-level
// observability defaults Run folds into machines whose own fields are
// unset, mirroring defaultMetricsReg: commands flip them once and every
// machine built deep inside exp or nas helpers follows. Run adopts a
// default by setting the machine's field, so a machine that has run once
// keeps its recorder/labels even if the default is later cleared.
var (
	defaultFlightDepth atomic.Int64
	defaultPProfLabels atomic.Bool
)

// SetDefaultFlightDepth makes Run attach a flight recorder of the given
// per-rank ring depth to machines with a nil Flight; 0 (the default)
// leaves them bare.
func SetDefaultFlightDepth(depth int) { defaultFlightDepth.Store(int64(depth)) }

// SetDefaultPProfLabels makes Run label rank goroutines on machines that
// did not opt in themselves.
func SetDefaultPProfLabels(on bool) { defaultPProfLabels.Store(on) }

// machMetrics holds one machine's resolved instrument handles. Handles are
// resolved once per (registry, p) in Machine.Run, so per-message updates
// are single atomic adds with no lookups or allocations.
type machMetrics struct {
	reg *metrics.Registry
	p   int

	msgs     *metrics.Counter
	bytes    *metrics.Counter
	msgSizes *metrics.Histogram
	// links caches per-(src,dst) traffic counters, filled lazily on first
	// use of each pair. Entry src*p+dst is only written by rank src's
	// goroutine, and runs are separated by Run's WaitGroup, so the cache
	// needs no lock.
	links  []*metrics.Counter
	stalls *metrics.FloatCounter

	poolGets  *metrics.Counter
	poolHits  *metrics.Counter
	poolPuts  *metrics.Counter
	poolDrops *metrics.Counter
	envNew    *metrics.Counter
	envReused *metrics.Counter

	nbIsend *metrics.Counter
	nbIrecv *metrics.Counter
	nbWait  *metrics.Counter

	runs      *metrics.Counter
	deadlocks *metrics.Counter
	makespan  *metrics.Gauge

	collMu sync.Mutex
	coll   map[string]*metrics.Counter
}

func newMachMetrics(reg *metrics.Registry, p int) *machMetrics {
	mm := &machMetrics{reg: reg, p: p}
	mm.msgs = reg.Counter("sim_messages_total", "point-to-point messages injected")
	mm.bytes = reg.Counter("sim_bytes_total", "point-to-point payload bytes injected")
	mm.msgSizes = reg.Histogram("sim_message_bytes", "point-to-point message size distribution", metrics.DefaultBytesBuckets)
	mm.links = make([]*metrics.Counter, p*p)
	mm.stalls = reg.FloatCounter("sim_contention_stall_seconds_total", "virtual seconds message departures were delayed by egress-link contention")
	mm.poolGets = reg.Counter("sim_payload_pool_gets_total", "payload buffers requested from the machine pool")
	mm.poolHits = reg.Counter("sim_payload_pool_hits_total", "payload requests served by recycling a pooled buffer")
	mm.poolPuts = reg.Counter("sim_payload_pool_puts_total", "payload buffers returned to the machine pool")
	mm.poolDrops = reg.Counter("sim_payload_pool_drops_total", "returned payload buffers dropped because the pool was full")
	mm.envNew = reg.Counter("sim_mailbox_envelopes_total", "message envelopes by provenance", metrics.L("source", "new"))
	mm.envReused = reg.Counter("sim_mailbox_envelopes_total", "message envelopes by provenance", metrics.L("source", "reused"))
	mm.nbIsend = reg.Counter("sim_nonblocking_total", "nonblocking operations by kind", metrics.L("op", "isend"))
	mm.nbIrecv = reg.Counter("sim_nonblocking_total", "nonblocking operations by kind", metrics.L("op", "irecv"))
	mm.nbWait = reg.Counter("sim_nonblocking_total", "nonblocking operations by kind", metrics.L("op", "wait"))
	mm.runs = reg.Counter("sim_runs_total", "completed Machine.Run calls")
	mm.deadlocks = reg.Counter("sim_deadlocks_total", "runs aborted by the deadlock detector")
	mm.makespan = reg.Gauge("sim_makespan_seconds", "virtual-time makespan of the most recent run")
	mm.coll = make(map[string]*metrics.Counter)
	return mm
}

// link returns the traffic counter of the src→dst link, registering it on
// first use so an idle pair costs nothing.
func (mm *machMetrics) link(src, dst int) *metrics.Counter {
	i := src*mm.p + dst
	c := mm.links[i]
	if c == nil {
		c = mm.reg.Counter("sim_link_bytes_total", "bytes injected per directed link",
			metrics.L("link", fmt.Sprintf("%d->%d", src, dst)))
		mm.links[i] = c
	}
	return c
}

// collective returns the per-rank invocation counter of one collective
// flavor (the trace label, e.g. "alltoall/bruck" or "barrier").
func (mm *machMetrics) collective(label string) *metrics.Counter {
	mm.collMu.Lock()
	c := mm.coll[label]
	if c == nil {
		c = mm.reg.Counter("sim_collectives_total", "per-rank collective invocations by operation/algorithm",
			metrics.L("op", label))
		mm.coll[label] = c
	}
	mm.collMu.Unlock()
	return c
}

// nonblocking returns the invocation counter of one nonblocking primitive
// ("isend", "irecv", "wait").
func (mm *machMetrics) nonblocking(op string) *metrics.Counter {
	switch op {
	case "isend":
		return mm.nbIsend
	case "irecv":
		return mm.nbIrecv
	default:
		return mm.nbWait
	}
}

// sent records one injected message on the hot path.
func (mm *machMetrics) sent(src, dst, bytes int) {
	mm.msgs.Inc()
	mm.bytes.Add(int64(bytes))
	mm.msgSizes.Observe(float64(bytes))
	mm.link(src, dst).Add(int64(bytes))
}

// attachMetrics resolves the machine's instrument handles against the
// effective registry (Machine.Metrics, else the package default), reusing
// the previous resolution when nothing changed.
func (m *Machine) attachMetrics() {
	reg := m.Metrics
	if reg == nil {
		reg = defaultMetricsReg.Load()
	}
	if reg == nil {
		m.mm = nil
		return
	}
	if m.mm == nil || m.mm.reg != reg || m.mm.p != m.P {
		m.mm = newMachMetrics(reg, m.P)
	}
}

// MetricsRegistry returns the registry the machine's current/most recent
// run reports to, or nil when metrics are off. Executors use it to publish
// their own pool statistics next to the machine's.
func (r *Rank) MetricsRegistry() *metrics.Registry {
	if mm := r.machine.mm; mm != nil {
		return mm.reg
	}
	return nil
}

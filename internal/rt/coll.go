// Collectives over the shared-memory mailbox. The return-shape contracts
// match the simulator exactly — out indexed by origin, own slot filled
// locally, root-only results on GatherTo — so plan consumers cannot tell
// the backends apart. Every algorithm option maps to the direct exchange:
// composed algorithms (ring, Bruck) exist in sim to model their timing,
// which has no meaning here, and the direct form moves each payload once,
// zero-copy.
package rt

import (
	"fmt"

	"genmp/internal/xport"
)

// Reserved tag space of the rt collectives, disjoint from every executor
// reservation in the shared registry.
var collTags = xport.ReserveTags("rt/collective", 1<<29, 16)

// Collective tag offsets within collTags.
const (
	tagAllToAll = iota
	tagAllGather
	tagGather
	tagBcast
)

// Barrier synchronizes all ranks.
func (r *Rank) Barrier() {
	r.bar.sync(r.ID, nil, nil)
}

// AllReduce combines each rank's values elementwise and returns the
// combined vector to every rank. The combine runs in ascending rank order
// regardless of arrival order, so results are deterministic; callers must
// not mutate the returned (shared) slice.
func (r *Rank) AllReduce(vals []float64, combine func(a, b float64) float64) []float64 {
	return r.bar.sync(r.ID, vals, combine)
}

// AllToAll performs a personalized total exchange: rank q contributes
// sizes[i] bytes (and data[i], when data is non-nil) for every rank i and
// receives every rank's contribution for q, returned indexed by origin.
func (r *Rank) AllToAll(sizes []int, data [][]float64, o xport.CollOpts) [][]float64 {
	p, q := r.machine.P, r.ID
	if len(sizes) != p {
		panic(fmt.Sprintf("rt: AllToAll needs %d sizes, got %d", p, len(sizes)))
	}
	if data != nil && len(data) != p {
		panic(fmt.Sprintf("rt: AllToAll needs %d data blocks, got %d", p, len(data)))
	}
	out := make([][]float64, p)
	if data != nil {
		out[q] = data[q]
	}
	if p == 1 {
		return out
	}
	tag := collTags.Tag(tagAllToAll)
	for off := 1; off < p; off++ {
		dst := (q + off) % p
		var payload []float64
		if data != nil {
			payload = data[dst]
		}
		r.Send(dst, tag, xport.Msg{Bytes: sizes[dst], Payload: payload})
	}
	for off := 1; off < p; off++ {
		src := (q + off) % p
		out[src] = r.Recv(src, tag).Payload
	}
	return out
}

// AllGather collects every rank's size-byte contribution on every rank,
// returned indexed by origin.
func (r *Rank) AllGather(size int, mine []float64, o xport.CollOpts) [][]float64 {
	p, q := r.machine.P, r.ID
	out := make([][]float64, p)
	out[q] = mine
	if p == 1 {
		return out
	}
	tag := collTags.Tag(tagAllGather)
	for off := 1; off < p; off++ {
		dst := (q + off) % p
		r.Send(dst, tag, xport.Msg{Bytes: size, Payload: mine})
	}
	for off := 1; off < p; off++ {
		src := (q + off) % p
		out[src] = r.Recv(src, tag).Payload
	}
	return out
}

// GatherTo collects every rank's size-byte contribution on root, returned
// there indexed by origin (nil elsewhere). Root receives in ascending rank
// order, matching the simulator's linear gather.
func (r *Rank) GatherTo(root, size int, mine []float64, o xport.CollOpts) [][]float64 {
	p, q := r.machine.P, r.ID
	if root < 0 || root >= p {
		panic(fmt.Sprintf("rt: GatherTo root %d of %d", root, p))
	}
	var out [][]float64
	if q == root {
		out = make([][]float64, p)
		out[q] = mine
	}
	if p == 1 {
		return out
	}
	tag := collTags.Tag(tagGather)
	if q != root {
		r.Send(root, tag, xport.Msg{Bytes: size, Payload: mine})
		return nil
	}
	for src := 0; src < p; src++ {
		if src == root {
			continue
		}
		out[src] = r.Recv(src, tag).Payload
	}
	return out
}

// Bcast distributes root's size-byte block to every rank and returns it.
func (r *Rank) Bcast(root, size int, data []float64, o xport.CollOpts) []float64 {
	p, q := r.machine.P, r.ID
	if root < 0 || root >= p {
		panic(fmt.Sprintf("rt: Bcast root %d of %d", root, p))
	}
	if p == 1 {
		return data
	}
	tag := collTags.Tag(tagBcast)
	if q == root {
		for off := 1; off < p; off++ {
			r.Send((root+off)%p, tag, xport.Msg{Bytes: size, Payload: data})
		}
		return data
	}
	return r.Recv(root, tag).Payload
}

// Exchange pairs a send to dst with a receive from src under one tag; the
// per-message overhead is cost accounting and thus free here.
func (r *Rank) Exchange(dst, src, tag int, m xport.Msg, perMessage float64) xport.Msg {
	return r.SendRecv(dst, tag, m, src, tag)
}

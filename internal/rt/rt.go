// Package rt is the real-parallel runtime: the second implementation of
// xport.Transport, executing the same compiled schedules as the virtual-
// time simulator on real OS goroutines measured in wall-clock time. One
// goroutine runs per rank; messages move through shared-memory mailboxes
// (per-channel FIFO queues under a mutex+cond), carrying line-major SoA
// carry panels zero-copy — a Send hands the payload slice to the receiver,
// exactly the ownership discipline the executors already follow for the
// simulator's pooled payloads.
//
// The cost-accounting hooks of the interface are free here: Compute and
// ComputeFlops do nothing, because on a real backend the work itself took
// the time. Sends are eager (the queue is unbounded), so the virtual-time
// machine's no-blocking-send invariant holds and every schedule that runs
// on sim runs here unchanged; preposting receives keeps the MPI completion
// discipline the schedules were built around. Field data is bit-identical
// between the two backends because both execute the same plan phase order
// and the kernels are deterministic — the identity tests in dmem assert
// Float64bits equality across backends.
package rt

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"genmp/internal/obs/metrics"
	"genmp/internal/xport"
)

// Machine is a real-parallel machine of P ranks. Zero-value fields are
// valid; a Machine may be reused across Runs (mailboxes are reset).
type Machine struct {
	P int

	pool payloadPool
}

// NewMachine returns a real-parallel machine of p ranks.
func NewMachine(p int) *Machine {
	if p < 1 {
		panic(fmt.Sprintf("rt: machine needs p ≥ 1 ranks, got %d", p))
	}
	return &Machine{P: p}
}

// Stats is one rank's message traffic for a run.
type Stats struct {
	MsgsSent   int
	BytesSent  int
	MsgsRecvd  int
	BytesRecvd int
}

// Result summarizes one Run: the wall-clock duration from launching the
// rank goroutines to the last one returning, and per-rank traffic.
type Result struct {
	Wall  time.Duration
	Ranks []Stats
}

// TotalMessages sums the messages sent across ranks.
func (res Result) TotalMessages() int {
	n := 0
	for _, s := range res.Ranks {
		n += s.MsgsSent
	}
	return n
}

// TotalBytes sums the bytes sent across ranks.
func (res Result) TotalBytes() int {
	n := 0
	for _, s := range res.Ranks {
		n += s.BytesSent
	}
	return n
}

// Rank is one rank's view of the machine — the rt implementation of
// xport.Transport. All methods must be called from the rank's own
// goroutine (the body passed to Run).
type Rank struct {
	ID int

	machine *Machine
	mb      *mailbox
	bar     *barrier
	phase   string
	stats   Stats
}

var _ xport.Transport = (*Rank)(nil)

// Run executes body on every rank concurrently and returns the run's
// Result. A panic in any rank aborts the run (blocked peers are woken and
// fail too) and is returned as an error.
func (m *Machine) Run(body func(r *Rank)) (Result, error) {
	mb := newMailbox(m.P)
	bar := newBarrier(m.P)
	ranks := make([]*Rank, m.P)
	errs := make([]error, m.P)
	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < m.P; id++ {
		ranks[id] = &Rank{ID: id, machine: m, mb: mb, bar: bar}
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer mb.exit()
			defer bar.exit()
			defer func() {
				if rec := recover(); rec != nil {
					errs[r.ID] = fmt.Errorf("rt: rank %d: %v", r.ID, rec)
					mb.abort()
					bar.abort()
				}
			}()
			body(r)
		}(ranks[id])
	}
	wg.Wait()
	wall := time.Since(start)
	if err := errors.Join(errs...); err != nil {
		return Result{}, err
	}
	res := Result{Wall: wall, Ranks: make([]Stats, m.P)}
	for id, r := range ranks {
		res.Ranks[id] = r.stats
	}
	return res, nil
}

// Rank returns this rank's id.
func (r *Rank) Rank() int { return r.ID }

// P returns the machine's rank count.
func (r *Rank) P() int { return r.machine.P }

// BeginPhase labels subsequent activity and returns the previous label.
// The label is kept for error context only — rt has no tracing.
func (r *Rank) BeginPhase(label string) (prev string) {
	prev = r.phase
	r.phase = label
	return prev
}

// Phase returns the rank's current phase label.
func (r *Rank) Phase() string { return r.phase }

// Compute is a no-op: on a real backend the work itself took the time.
func (r *Rank) Compute(seconds float64) {}

// ComputeFlops is a no-op (see Compute).
func (r *Rank) ComputeFlops(flops float64) {}

// MetricsRegistry returns nil: rt runs carry no live metrics registry
// (publishers treat a nil registry as metrics-off).
func (r *Rank) MetricsRegistry() *metrics.Registry { return nil }

// Send posts a message to dst. Sends are eager — the message is appended
// to the destination's queue and the call returns immediately — and the
// payload slice transfers to the receiver zero-copy (the sender must not
// touch it afterwards).
func (r *Rank) Send(dst, tag int, m xport.Msg) {
	if dst < 0 || dst >= r.machine.P {
		panic(fmt.Sprintf("rt: Send to rank %d of %d", dst, r.machine.P))
	}
	if m.Bytes == 0 && m.Payload != nil {
		m.Bytes = 8 * len(m.Payload)
	}
	m.Src = r.ID
	m.Tag = tag
	r.stats.MsgsSent++
	r.stats.BytesSent += m.Bytes
	r.mb.put(r.ID, dst, tag, m)
}

// Recv blocks until the next message from src with the given tag.
func (r *Rank) Recv(src, tag int) xport.Msg {
	if src < 0 || src >= r.machine.P {
		panic(fmt.Sprintf("rt: Recv from rank %d of %d", src, r.machine.P))
	}
	m := r.mb.get(src, r.ID, tag, r.phase)
	r.stats.MsgsRecvd++
	r.stats.BytesRecvd += m.Bytes
	return m
}

// SendRecv posts the send and then receives; safe in rings and shifts
// because sends never block.
func (r *Rank) SendRecv(dst, sendTag int, m xport.Msg, src, recvTag int) xport.Msg {
	r.Send(dst, sendTag, m)
	return r.Recv(src, recvTag)
}

// request is the rt request handle. Sends complete at post (eager queue);
// receive Waits perform the blocking match, so a request is a recorded
// (peer, tag) to be received later. The executors Wait receive requests in
// post order (the simulator backend enforces the discipline), which makes
// Wait-order matching equal to post-order matching.
type request struct {
	r      *Rank
	isSend bool
	peer   int
	tag    int
	done   bool
}

// IsSend reports whether the request belongs to an Isend.
func (q *request) IsSend() bool { return q.isSend }

// Peer returns the counterpart rank.
func (q *request) Peer() int { return q.peer }

// Tag returns the request's message tag.
func (q *request) Tag() int { return q.tag }

// Wait completes the request: receive requests block for and return the
// matched message; send requests (already delivered at post) return the
// zero Msg.
func (q *request) Wait() xport.Msg {
	if q.done {
		panic("rt: Wait on a completed request")
	}
	q.done = true
	if q.isSend {
		return xport.Msg{}
	}
	return q.r.Recv(q.peer, q.tag)
}

// Isend posts a nonblocking send. Delivery is eager, identical to Send;
// the request exists for completion discipline.
func (r *Rank) Isend(dst, tag int, m xport.Msg) xport.Request {
	r.Send(dst, tag, m)
	return &request{r: r, isSend: true, peer: dst, tag: tag}
}

// Irecv preposts a receive; the blocking match happens at Wait. Preposting
// is how the schedules keep receive buffers ahead of the sender — the
// shared-memory mailbox is already zero-copy, so the post itself is free.
func (r *Rank) Irecv(src, tag int) xport.Request {
	if src < 0 || src >= r.machine.P {
		panic(fmt.Sprintf("rt: Irecv from rank %d of %d", src, r.machine.P))
	}
	return &request{r: r, peer: src, tag: tag}
}

// WaitAll completes every non-nil request in order.
func (r *Rank) WaitAll(reqs ...xport.Request) {
	for _, q := range reqs {
		if q != nil {
			q.Wait()
		}
	}
}

// GetPayload returns a pooled length-n buffer (contents unspecified).
func (r *Rank) GetPayload(n int) []float64 {
	return r.machine.pool.get(n)
}

// PutPayload recycles a payload buffer. As with the simulator, ownership
// follows the message: only the receiver of a message may recycle its
// payload.
func (r *Rank) PutPayload(buf []float64) {
	r.machine.pool.put(buf)
}

// The shared-memory mailbox: per-(src,dst,tag) FIFO queues under one
// mutex+cond pair per destination rank. Sends append and signal — they
// never block, the unbounded-queue analogue of the simulator's eager
// injection — and receives wait on the destination's cond until their
// channel is non-empty. Payload slices move through the queue by
// reference: a message hand-off copies nothing.
package rt

import (
	"fmt"
	"sync"

	"genmp/internal/xport"
)

// msgKey identifies one FIFO channel.
type msgKey struct {
	src, tag int
}

// rankBox is one destination rank's queue set.
type rankBox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queues map[msgKey][]xport.Msg
}

// mailbox is the machine-wide message store plus liveness accounting for
// deadlock detection and abort propagation.
type mailbox struct {
	boxes []rankBox

	liveMu  sync.Mutex
	live    int  // rank goroutines still running
	aborted bool // a rank panicked; wake and fail all waiters
}

func newMailbox(p int) *mailbox {
	mb := &mailbox{boxes: make([]rankBox, p), live: p}
	for i := range mb.boxes {
		mb.boxes[i].cond = sync.NewCond(&mb.boxes[i].mu)
		mb.boxes[i].queues = map[msgKey][]xport.Msg{}
	}
	return mb
}

// put appends m to the (src, dst, tag) channel and wakes dst.
func (mb *mailbox) put(src, dst, tag int, m xport.Msg) {
	b := &mb.boxes[dst]
	k := msgKey{src: src, tag: tag}
	b.mu.Lock()
	b.queues[k] = append(b.queues[k], m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// get blocks until the (src, dst, tag) channel is non-empty and pops its
// head. It panics when the run aborted, or when every other rank has
// exited with the channel still empty — the real-thread analogue of the
// simulator's deadlock detection.
func (mb *mailbox) get(src, dst, tag int, phase string) xport.Msg {
	b := &mb.boxes[dst]
	k := msgKey{src: src, tag: tag}
	b.mu.Lock()
	for {
		if q := b.queues[k]; len(q) > 0 {
			m := q[0]
			q[0] = xport.Msg{}
			b.queues[k] = q[1:]
			b.mu.Unlock()
			return m
		}
		aborted, starved := mb.liveness()
		if aborted {
			b.mu.Unlock()
			panic("rt: run aborted by a peer rank's failure")
		}
		if starved {
			b.mu.Unlock()
			where := ""
			if phase != "" {
				where = fmt.Sprintf(" [phase %s]", phase)
			}
			panic(fmt.Sprintf("rt: deadlock: rank %d blocked in Recv(src=%d, tag=%d)%s with every other rank exited", dst, src, tag, where))
		}
		b.cond.Wait()
	}
}

// liveness reports (aborted, starved): starved means this waiter is the
// only rank still running, so its message can never arrive.
func (mb *mailbox) liveness() (aborted, starved bool) {
	mb.liveMu.Lock()
	defer mb.liveMu.Unlock()
	return mb.aborted, mb.live <= 1
}

// exit marks one rank goroutine as finished and wakes all waiters so
// starved receivers can detect the deadlock.
func (mb *mailbox) exit() {
	mb.liveMu.Lock()
	mb.live--
	mb.liveMu.Unlock()
	mb.wakeAll()
}

// abort marks the run failed and wakes every waiter.
func (mb *mailbox) abort() {
	mb.liveMu.Lock()
	mb.aborted = true
	mb.liveMu.Unlock()
	mb.wakeAll()
}

func (mb *mailbox) wakeAll() {
	for i := range mb.boxes {
		b := &mb.boxes[i]
		b.mu.Lock()
		b.mu.Unlock() //nolint:staticcheck // empty critical section orders the broadcast after any in-flight Wait
		b.cond.Broadcast()
	}
}

// barrier is a reusable generation barrier with an elementwise reduction
// slot (AllReduce). The combine runs in ascending rank order regardless of
// arrival order, so floating-point results are deterministic.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	p       int
	arrived int
	gen     int
	vals    [][]float64
	out     []float64
	exited  int
	aborted bool
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p, vals: make([][]float64, p)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// sync blocks until all live ranks arrive. With vals non-nil the arrivals'
// vectors are combined elementwise in rank order and the combined vector
// returned to every rank (callers must not mutate it).
func (b *barrier) sync(id int, vals []float64, combine func(x, y float64) float64) []float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		panic("rt: run aborted by a peer rank's failure")
	}
	gen := b.gen
	b.vals[id] = vals
	b.arrived++
	if b.arrived+b.exited >= b.p {
		if combine != nil {
			var out []float64
			for q := 0; q < b.p; q++ {
				v := b.vals[q]
				if v == nil {
					continue
				}
				if out == nil {
					out = append([]float64(nil), v...)
					continue
				}
				for i := range out {
					out[i] = combine(out[i], v[i])
				}
			}
			b.out = out
		} else {
			b.out = nil
		}
		for q := range b.vals {
			b.vals[q] = nil
		}
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen && !b.aborted {
			b.cond.Wait()
		}
		if b.aborted {
			panic("rt: run aborted by a peer rank's failure")
		}
	}
	return b.out
}

// exit removes a finished rank from the barrier population so stragglers
// in a sync (an unbalanced program) are released rather than hung; they
// will fail in the mailbox or produce a short-handed reduction, matching
// the simulator's abort-on-exit behavior closely enough for post-mortems.
func (b *barrier) exit() {
	b.mu.Lock()
	b.exited++
	if b.arrived > 0 && b.arrived+b.exited >= b.p {
		b.arrived = 0
		b.gen++
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// abort releases every waiter with a panic.
func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

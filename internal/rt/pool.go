package rt

import "sync"

// payloadPool recycles message payload buffers machine-wide, mirroring the
// simulator's pool: buffers hand off between ranks through messages, so
// one shared LIFO keeps the population balanced no matter which direction
// traffic flows. Safe for concurrent use by all rank goroutines.
type payloadPool struct {
	mu   sync.Mutex
	bufs [][]float64
}

// poolMaxBufs bounds the free list; beyond it buffers go to the garbage
// collector.
const poolMaxBufs = 256

func (p *payloadPool) get(n int) []float64 {
	p.mu.Lock()
	for i := len(p.bufs) - 1; i >= 0; i-- {
		if cap(p.bufs[i]) >= n {
			buf := p.bufs[i]
			last := len(p.bufs) - 1
			p.bufs[i] = p.bufs[last]
			p.bufs[last] = nil
			p.bufs = p.bufs[:last]
			p.mu.Unlock()
			return buf[:n]
		}
	}
	p.mu.Unlock()
	return make([]float64, n)
}

func (p *payloadPool) put(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.bufs) < poolMaxBufs {
		p.bufs = append(p.bufs, buf)
	}
	p.mu.Unlock()
}

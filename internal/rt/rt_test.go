package rt

import (
	"strings"
	"testing"

	"genmp/internal/xport"
)

// Messages on one (src, dst, tag) channel arrive in send order, and
// distinct tags are independent channels.
func TestFIFOAndTagIsolation(t *testing.T) {
	m := NewMachine(2)
	_, err := m.Run(func(r *Rank) {
		const n = 8
		if r.ID == 0 {
			for k := 0; k < n; k++ {
				r.Send(1, 7, xport.Msg{Payload: []float64{float64(k)}})
			}
			r.Send(1, 9, xport.Msg{Payload: []float64{100}})
		} else {
			q9 := r.Irecv(0, 9)
			for k := 0; k < n; k++ {
				if got := r.Recv(0, 7).Payload[0]; got != float64(k) {
					panic("FIFO order violated")
				}
			}
			if q9.Wait().Payload[0] != 100 {
				panic("tag channels crossed")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Payloads hand off zero-copy: the receiver observes the very slice the
// sender built (same backing array).
func TestZeroCopyHandoff(t *testing.T) {
	m := NewMachine(2)
	buf := make([]float64, 4)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			buf[0] = 42
			r.Send(1, 0, xport.Msg{Payload: buf})
		} else {
			got := r.Recv(0, 0).Payload
			if &got[0] != &buf[0] {
				panic("payload was copied")
			}
			if got[0] != 42 {
				panic("payload content lost")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Isend is eager and WaitAll retires mixed requests; Irecv preposts match
// in Wait order.
func TestNonblockingDiscipline(t *testing.T) {
	m := NewMachine(2)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			var reqs []xport.Request
			for k := 0; k < 4; k++ {
				reqs = append(reqs, r.Isend(1, 3, xport.Msg{Payload: []float64{float64(k)}}))
			}
			r.WaitAll(reqs...)
		} else {
			var reqs []xport.Request
			for k := 0; k < 4; k++ {
				reqs = append(reqs, r.Irecv(0, 3))
			}
			for k, q := range reqs {
				if got := q.Wait().Payload[0]; got != float64(k) {
					panic("prepost order violated")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// AllReduce combines in rank order deterministically and returns the same
// vector to all ranks; Barrier synchronizes repeatedly (generation reuse).
func TestBarrierAndAllReduce(t *testing.T) {
	const p = 5
	m := NewMachine(p)
	_, err := m.Run(func(r *Rank) {
		for round := 0; round < 10; round++ {
			out := r.AllReduce([]float64{float64(r.ID), 1}, func(a, b float64) float64 { return a + b })
			if out[0] != float64(p*(p-1)/2) || out[1] != p {
				panic("wrong reduction")
			}
			r.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Collective return shapes match the simulator's contracts.
func TestCollectiveShapes(t *testing.T) {
	const p = 4
	m := NewMachine(p)
	_, err := m.Run(func(r *Rank) {
		q := r.ID
		// AllToAll: out[src] holds src's contribution for q.
		data := make([][]float64, p)
		sizes := make([]int, p)
		for i := 0; i < p; i++ {
			data[i] = []float64{float64(100*q + i)}
			sizes[i] = 8
		}
		out := r.AllToAll(sizes, data, xport.CollOpts{})
		for src := 0; src < p; src++ {
			if out[src][0] != float64(100*src+q) {
				panic("AllToAll misrouted")
			}
		}
		// AllGather: out[src] holds src's block everywhere.
		ag := r.AllGather(8, []float64{float64(q)}, xport.CollOpts{})
		for src := 0; src < p; src++ {
			if ag[src][0] != float64(src) {
				panic("AllGather misrouted")
			}
		}
		// GatherTo: root-indexed result, nil elsewhere.
		gt := r.GatherTo(0, 8, []float64{float64(q)}, xport.CollOpts{})
		if q == 0 {
			for src := 0; src < p; src++ {
				if gt[src][0] != float64(src) {
					panic("GatherTo misrouted")
				}
			}
		} else if gt != nil {
			panic("GatherTo leaked a result to a non-root")
		}
		// Bcast: every rank returns root's block.
		var seed []float64
		if q == 2 {
			seed = []float64{7, 8}
		}
		bc := r.Bcast(2, 16, seed, xport.CollOpts{})
		if bc[0] != 7 || bc[1] != 8 {
			panic("Bcast lost the block")
		}
		// Exchange: ring shift.
		got := r.Exchange((q+1)%p, (q+p-1)%p, collTags.Tag(15), xport.Msg{Payload: []float64{float64(q)}}, 0)
		if got.Payload[0] != float64((q+p-1)%p) {
			panic("Exchange misrouted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A rank panic aborts the run: blocked peers are woken and the joined
// error names the failing rank.
func TestPanicAbortsBlockedPeers(t *testing.T) {
	m := NewMachine(2)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			panic("boom")
		}
		r.Recv(0, 0) // would block forever without abort propagation
	})
	if err == nil || !strings.Contains(err.Error(), "rank 0: boom") {
		t.Fatalf("expected rank 0 panic in error, got %v", err)
	}
}

// A receive whose sender has exited is a deadlock, not a hang.
func TestDeadlockDetection(t *testing.T) {
	m := NewMachine(2)
	_, err := m.Run(func(r *Rank) {
		if r.ID == 1 {
			r.BeginPhase("solve")
			r.Recv(0, 5)
		}
		// Rank 0 exits immediately.
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") || !strings.Contains(err.Error(), "[phase solve]") {
		t.Fatalf("expected deadlock error with phase, got %v", err)
	}
}

// Result carries wall-clock time and per-rank traffic.
func TestResultTraffic(t *testing.T) {
	m := NewMachine(2)
	res, err := m.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 0, xport.Msg{Bytes: 1000})
		} else {
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall <= 0 {
		t.Errorf("wall clock %v, want > 0", res.Wall)
	}
	if res.TotalMessages() != 1 || res.TotalBytes() != 1000 {
		t.Errorf("traffic = %d msgs / %d bytes, want 1 / 1000", res.TotalMessages(), res.TotalBytes())
	}
	if res.Ranks[1].MsgsRecvd != 1 || res.Ranks[1].BytesRecvd != 1000 {
		t.Errorf("rank 1 recv stats = %+v", res.Ranks[1])
	}
}

// The payload pool recycles across ranks (machine-wide), and Machines are
// reusable across Runs.
func TestPoolAndMachineReuse(t *testing.T) {
	m := NewMachine(2)
	for run := 0; run < 3; run++ {
		_, err := m.Run(func(r *Rank) {
			if r.ID == 0 {
				buf := r.GetPayload(64)
				buf[0] = 1
				r.Send(1, 0, xport.Msg{Payload: buf})
			} else {
				got := r.Recv(0, 0)
				r.PutPayload(got.Payload)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := m.pool.get(64); cap(got) < 64 {
		t.Errorf("pool did not retain a recycled buffer")
	}
}

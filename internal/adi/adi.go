// Package adi implements Alternating Direction Implicit (ADI) integration —
// the motivating application for multipartitioning (Johnsson et al.; Naik
// et al.; van der Wijngaart). Each timestep of the heat equation
// u_t = ∇²u is split into d one-dimensional implicit half-steps; the
// half-step along dimension i solves, for every grid line in that
// direction, the tridiagonal system
//
//	(1 + 2α)·u*[k] − α·u*[k−1] − α·u*[k+1] = u[k]
//
// with homogeneous Dirichlet boundaries. Those per-line solves are exactly
// the line sweeps whose parallelization the paper studies.
//
// The package provides a serial reference solver and a distributed runner
// over any of the three strategies of internal/dist: multipartitioning,
// static block with wavefront pipelining, and dynamic block with
// transposes.
package adi

import (
	"fmt"
	"math"

	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/plan"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

// Problem defines an ADI integration: domain extents, the diffusion number
// α = κ·Δt/Δx², and the number of timesteps. With Periodic set the domain
// wraps in every dimension and each half-step solves cyclic tridiagonal
// systems (Sherman–Morrison); periodic runs are whole-line (serial
// reference) — a multipartitioned cyclic sweep would need one extra
// end-to-end exchange per line, which this reproduction leaves as the same
// future work the paper's framework would.
type Problem struct {
	Eta      []int
	Alpha    float64
	Steps    int
	Periodic bool
}

// buildFlops is the modeled per-element cost of assembling one dimension's
// coefficients and right-hand side (a handful of stores and one copy).
const buildFlops = 4

// InitialCondition returns a smooth multi-frequency bump on the domain,
// deterministic in the extents.
func (pb Problem) InitialCondition() *grid.Grid {
	u := grid.New(pb.Eta...)
	u.FillFunc(func(idx []int) float64 {
		v := 1.0
		for i, x := range idx {
			v *= math.Sin(math.Pi * float64(x+1) / float64(pb.Eta[i]+1))
		}
		w := 1.0
		for i, x := range idx {
			w *= math.Sin(2 * math.Pi * float64(x+1) / float64(pb.Eta[i]+1))
		}
		return v + 0.25*w
	})
	return u
}

// fillCoefficients writes the tridiagonal coefficients for a half-step
// along dim into lower/diag/upper and copies u into rhs, over the region
// rect.
func (pb Problem) fillCoefficients(dim int, rect grid.Rect, u, lower, diag, upper, rhs *grid.Grid) {
	a := pb.Alpha
	n := pb.Eta[dim]
	ud := u.Data()
	ld := lower.Data()
	dd := diag.Data()
	pd := upper.Data()
	rd := rhs.Data()
	// The interior coefficients are constants and rhs is a copy of u, so the
	// region can be walked along the innermost (stride-1) dimension whatever
	// dim the half-step solves: same values, contiguous stores.
	last := u.Dims() - 1
	u.EachLine(rect, last, func(l grid.Line) {
		if l.Stride == 1 {
			end := l.Base + l.N
			for off := l.Base; off < end; off++ {
				ld[off] = -a
				pd[off] = -a
				dd[off] = 1 + 2*a
			}
			copy(rd[l.Base:end], ud[l.Base:end])
			return
		}
		off := l.Base
		for k := 0; k < l.N; k++ {
			ld[off] = -a
			pd[off] = -a
			dd[off] = 1 + 2*a
			rd[off] = ud[off]
			off += l.Stride
		}
	})
	// At the physical boundaries: zero the out-of-domain couplings
	// (Dirichlet), or keep them as the wrap couplings of a cyclic system
	// (periodic — the solver interprets lower[0] and upper[n−1] as the
	// wrap-around entries).
	if pb.Periodic {
		return
	}
	zeroFace := func(face grid.Rect, data []float64) {
		u.EachLine(face, last, func(l grid.Line) {
			off := l.Base
			for k := 0; k < l.N; k++ {
				data[off] = 0
				off += l.Stride
			}
		})
	}
	if rect.Lo[dim] == 0 {
		zeroFace(rect.Face(dim, -1), ld)
	}
	if rect.Hi[dim] == n {
		zeroFace(rect.Face(dim, +1), pd)
	}
}

// copySolution writes the solve result (left in rhs) back into u over rect.
// The copy is elementwise, so it walks stride-1 lines regardless of the
// sweep dimension.
func copySolution(rect grid.Rect, rhs, u *grid.Grid, dim int) {
	rd := rhs.Data()
	ud := u.Data()
	u.EachLine(rect, u.Dims()-1, func(l grid.Line) {
		if l.Stride == 1 {
			copy(ud[l.Base:l.Base+l.N], rd[l.Base:l.Base+l.N])
			return
		}
		off := l.Base
		for k := 0; k < l.N; k++ {
			ud[off] = rd[off]
			off += l.Stride
		}
	})
}

// SerialSolve advances u in place by pb.Steps timesteps with whole-line
// Thomas solves — the reference the distributed runs must match.
func (pb Problem) SerialSolve(u *grid.Grid) {
	lower := grid.New(pb.Eta...)
	diag := grid.New(pb.Eta...)
	upper := grid.New(pb.Eta...)
	rhs := grid.New(pb.Eta...)
	vecs := []*grid.Grid{lower, diag, upper, rhs}
	all := u.Bounds()
	for step := 0; step < pb.Steps; step++ {
		for dim := range pb.Eta {
			pb.fillCoefficients(dim, all, u, lower, diag, upper, rhs)
			solveAllLines(vecs, all, dim, pb.Periodic)
			copySolution(all, rhs, u, dim)
		}
	}
}

func solveAllLines(vecs []*grid.Grid, rect grid.Rect, dim int, periodic bool) {
	n := vecs[0].Shape()[dim]
	chunk := make([][]float64, len(vecs))
	for v := range chunk {
		chunk[v] = make([]float64, n)
	}
	vecs[0].EachLine(rect, dim, func(l grid.Line) {
		for v, g := range vecs {
			g.Gather(l, chunk[v])
		}
		if periodic {
			x := sweep.SolvePeriodicTridiagonal(chunk[0], chunk[1], chunk[2], chunk[3])
			copy(chunk[3], x)
		} else {
			sweep.ChunkedSolve(sweep.Tridiag{}, chunk, nil)
		}
		for v, g := range vecs {
			g.Scatter(l, chunk[v])
		}
	})
}

// Strategy selects the parallelization of the distributed run.
type Strategy int

const (
	// Multipartition uses the paper's multipartitioned sweeps.
	Multipartition Strategy = iota
	// BlockWavefront uses a static block unipartitioning with pipelined
	// wavefront sweeps along the partitioned dimension.
	BlockWavefront
	// BlockTranspose uses a dynamic block partitioning with transposes.
	BlockTranspose
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Multipartition:
		return "multipartition"
	case BlockWavefront:
		return "block-wavefront"
	case BlockTranspose:
		return "block-transpose"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Config describes a distributed ADI run.
type Config struct {
	Machine  *sim.Machine
	Strategy Strategy
	// Env is required for Multipartition.
	Env *dist.Env
	// Block is required for the block strategies.
	Block *dist.Block
	// Grain is the wavefront message granularity in lines (BlockWavefront).
	Grain int
	// ModelOnly skips the real data movement: u is not advanced, only
	// virtual time and communication volumes are produced.
	ModelOnly bool
	// Overlap compiles the sweep schedule with the boundary-first overlap
	// annotation (plan.Overlap): split phases solve their boundary lines
	// first and post the carry while the interior computes. Applies to
	// Multipartition and BlockWavefront; the solution is bit-identical
	// either way.
	Overlap plan.Overlap
}

// Run advances u by pb.Steps distributed timesteps and returns the
// simulation result. In data mode the final u matches SerialSolve exactly
// (same arithmetic, same order within each line).
func Run(pb Problem, u *grid.Grid, cfg Config) (sim.Result, error) {
	if pb.Periodic {
		return sim.Result{}, fmt.Errorf("adi: periodic boundaries are whole-line only (use SerialSolve); a distributed cyclic sweep needs an end-to-end correction exchange this runtime does not implement")
	}
	switch cfg.Strategy {
	case Multipartition:
		if cfg.Env == nil {
			return sim.Result{}, fmt.Errorf("adi: Multipartition strategy needs Env")
		}
		return runMulti(pb, u, cfg)
	case BlockWavefront, BlockTranspose:
		if cfg.Block == nil {
			return sim.Result{}, fmt.Errorf("adi: block strategies need Block")
		}
		return runBlock(pb, u, cfg)
	}
	return sim.Result{}, fmt.Errorf("adi: unknown strategy %v", cfg.Strategy)
}

func runMulti(pb Problem, u *grid.Grid, cfg Config) (sim.Result, error) {
	env := cfg.Env
	var vecs []*grid.Grid
	if !cfg.ModelOnly {
		vecs = []*grid.Grid{grid.New(pb.Eta...), grid.New(pb.Eta...), grid.New(pb.Eta...), grid.New(pb.Eta...)}
	}
	ms, err := dist.NewMultiSweep(env, sweep.Tridiag{}, vecs)
	if err != nil {
		return sim.Result{}, err
	}
	ms.Overlap = cfg.Overlap
	return cfg.Machine.Run(func(r *sim.Rank) {
		for step := 0; step < pb.Steps; step++ {
			for dim := range pb.Eta {
				r.BeginPhase(fmt.Sprintf("sweep%d", dim))
				env.ComputeOnTiles(r, buildFlops, tileFiller(pb, dim, u, vecs, cfg.ModelOnly))
				ms.Run(r, dim)
				env.ComputeOnTiles(r, 1, tileCopier(dim, u, vecs, cfg.ModelOnly))
			}
		}
	})
}

func tileFiller(pb Problem, dim int, u *grid.Grid, vecs []*grid.Grid, modelOnly bool) func(lo, hi []int) {
	if modelOnly {
		return nil
	}
	return func(lo, hi []int) {
		pb.fillCoefficients(dim, grid.RectOf(lo, hi), u, vecs[0], vecs[1], vecs[2], vecs[3])
	}
}

func tileCopier(dim int, u *grid.Grid, vecs []*grid.Grid, modelOnly bool) func(lo, hi []int) {
	if modelOnly {
		return nil
	}
	return func(lo, hi []int) {
		copySolution(grid.RectOf(lo, hi), vecs[3], u, dim)
	}
}

func runBlock(pb Problem, u *grid.Grid, cfg Config) (sim.Result, error) {
	b := cfg.Block
	if cfg.Overlap.Enabled {
		b.Overlap = cfg.Overlap
	}
	var vecs []*grid.Grid
	if !cfg.ModelOnly {
		vecs = []*grid.Grid{grid.New(pb.Eta...), grid.New(pb.Eta...), grid.New(pb.Eta...), grid.New(pb.Eta...)}
	}
	grain := cfg.Grain
	if grain < 1 {
		grain = 64
	}
	return cfg.Machine.Run(func(r *sim.Rank) {
		for step := 0; step < pb.Steps; step++ {
			for dim := range pb.Eta {
				fill := func(rect grid.Rect) {
					pb.fillCoefficients(dim, rect, u, vecs[0], vecs[1], vecs[2], vecs[3])
				}
				copyBack := func(rect grid.Rect) {
					copySolution(rect, vecs[3], u, dim)
				}
				if cfg.ModelOnly {
					fill, copyBack = nil, nil
				}
				b.ComputeOnSlab(r, buildFlops, fill)
				switch {
				case dim != b.Dim:
					b.LocalSweep(r, dim, sweep.Tridiag{}, vecs)
				case cfg.Strategy == BlockWavefront:
					b.WavefrontSweep(r, sweep.Tridiag{}, vecs, grain)
				default:
					b.TransposeSweep(r, sweep.Tridiag{}, vecs)
				}
				b.ComputeOnSlab(r, 1, copyBack)
			}
		}
	})
}

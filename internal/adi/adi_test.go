package adi

import (
	"math"
	"testing"

	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/grid"
	"genmp/internal/sim"
)

func testMachine(p int) *sim.Machine {
	return sim.NewMachine(p,
		sim.Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 1e-6, RecvOverhead: 1e-6},
		sim.CPU{FlopsPerSec: 250e6})
}

func multiConfig(t *testing.T, p int, gamma, eta []int) Config {
	t.Helper()
	m, err := core.NewGeneralized(p, gamma)
	if err != nil {
		t.Fatal(err)
	}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	return Config{Machine: testMachine(p), Strategy: Multipartition, Env: env}
}

func TestSerialSolveDiffuses(t *testing.T) {
	pb := Problem{Eta: []int{12, 12, 12}, Alpha: 0.4, Steps: 10}
	u := pb.InitialCondition()
	before := u.Norm2()
	pb.SerialSolve(u)
	after := u.Norm2()
	if after >= before {
		t.Errorf("diffusion should shrink the norm: %g → %g", before, after)
	}
	if after <= 0 {
		t.Errorf("solution vanished entirely: %g", after)
	}
}

func TestMultipartitionedMatchesSerial(t *testing.T) {
	cases := []struct {
		p     int
		gamma []int
		eta   []int
	}{
		{4, []int{2, 2, 2}, []int{10, 9, 8}},
		{8, []int{4, 4, 2}, []int{13, 12, 11}},
		{16, []int{4, 4, 4}, []int{16, 16, 16}},
		{6, []int{6, 6, 1}, []int{12, 13, 6}},
	}
	for _, c := range cases {
		pb := Problem{Eta: c.eta, Alpha: 0.3, Steps: 3}
		want := pb.InitialCondition()
		pb.SerialSolve(want)

		u := pb.InitialCondition()
		cfg := multiConfig(t, c.p, c.gamma, c.eta)
		res, err := Run(pb, u, cfg)
		if err != nil {
			t.Fatalf("p=%d γ=%v: %v", c.p, c.gamma, err)
		}
		if d := grid.MaxAbsDiff(want, u); d > 1e-9 {
			t.Errorf("p=%d γ=%v: distributed ADI differs from serial by %g", c.p, c.gamma, d)
		}
		if res.Makespan <= 0 {
			t.Errorf("p=%d: makespan %g", c.p, res.Makespan)
		}
	}
}

func TestBlockWavefrontMatchesSerial(t *testing.T) {
	p := 4
	eta := []int{12, 10, 9}
	pb := Problem{Eta: eta, Alpha: 0.25, Steps: 3}
	want := pb.InitialCondition()
	pb.SerialSolve(want)

	b, err := dist.NewBlock(p, eta, 0, dist.HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	u := pb.InitialCondition()
	_, err = Run(pb, u, Config{Machine: testMachine(p), Strategy: BlockWavefront, Block: b, Grain: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(want, u); d > 1e-9 {
		t.Errorf("wavefront ADI differs from serial by %g", d)
	}
}

func TestBlockTransposeMatchesSerial(t *testing.T) {
	p := 4
	eta := []int{12, 10, 9}
	pb := Problem{Eta: eta, Alpha: 0.25, Steps: 3}
	want := pb.InitialCondition()
	pb.SerialSolve(want)

	b, err := dist.NewBlock(p, eta, 0, dist.HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	u := pb.InitialCondition()
	_, err = Run(pb, u, Config{Machine: testMachine(p), Strategy: BlockTranspose, Block: b})
	if err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(want, u); d > 1e-9 {
		t.Errorf("transpose ADI differs from serial by %g", d)
	}
}

func TestModelOnlyMatchesDataMakespan(t *testing.T) {
	p := 8
	gamma := []int{4, 4, 2}
	eta := []int{16, 16, 16}
	pb := Problem{Eta: eta, Alpha: 0.3, Steps: 2}

	cfg := multiConfig(t, p, gamma, eta)
	u := pb.InitialCondition()
	resData, err := Run(pb, u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgModel := multiConfig(t, p, gamma, eta)
	cfgModel.ModelOnly = true
	resModel, err := Run(pb, nil, cfgModel)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resData.Makespan-resModel.Makespan) > 1e-12*resData.Makespan {
		t.Errorf("data makespan %g ≠ model makespan %g", resData.Makespan, resModel.Makespan)
	}
}

func TestMultipartitioningBeatsBaselinesOnVirtualTime(t *testing.T) {
	// The van der Wijngaart comparison (model-only, modest domain, 16
	// procs): multipartitioning should beat both block strategies.
	p := 16
	eta := []int{64, 64, 64}
	pb := Problem{Eta: eta, Alpha: 0.3, Steps: 2}

	cfg := multiConfig(t, p, []int{4, 4, 4}, eta)
	cfg.ModelOnly = true
	resMulti, err := Run(pb, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	b, err := dist.NewBlock(p, eta, 0, dist.HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	resWave, err := Run(pb, nil, Config{Machine: testMachine(p), Strategy: BlockWavefront, Block: b, Grain: 64, ModelOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	resTrans, err := Run(pb, nil, Config{Machine: testMachine(p), Strategy: BlockTranspose, Block: b, ModelOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if resMulti.Makespan >= resWave.Makespan {
		t.Errorf("multipartitioning (%g) should beat wavefront (%g)", resMulti.Makespan, resWave.Makespan)
	}
	if resMulti.Makespan >= resTrans.Makespan {
		t.Errorf("multipartitioning (%g) should beat transpose (%g)", resMulti.Makespan, resTrans.Makespan)
	}
}

func TestPeriodicSerialConservesMass(t *testing.T) {
	// On a torus, each half-step matrix has unit column sums, so the total
	// mass Σu is conserved exactly by every solve.
	pb := Problem{Eta: []int{10, 9, 8}, Alpha: 0.4, Steps: 5, Periodic: true}
	u := pb.InitialCondition()
	sum := func(g *grid.Grid) float64 {
		s := 0.0
		for _, v := range g.Data() {
			s += v
		}
		return s
	}
	before := sum(u)
	pb.SerialSolve(u)
	after := sum(u)
	if math.Abs(after-before) > 1e-8*math.Abs(before) {
		t.Errorf("periodic ADI should conserve mass: %g → %g", before, after)
	}
	// And it should still diffuse (norm decreases toward the flat state).
	flatNorm := math.Abs(before) / math.Sqrt(float64(u.Size()))
	if u.Norm2() < flatNorm*0.99 {
		t.Errorf("norm fell below the flat-state floor: %g < %g", u.Norm2(), flatNorm)
	}
}

func TestPeriodicDistributedRejected(t *testing.T) {
	pb := Problem{Eta: []int{8, 8, 8}, Alpha: 0.3, Steps: 1, Periodic: true}
	cfg := multiConfig(t, 4, []int{2, 2, 2}, pb.Eta)
	if _, err := Run(pb, pb.InitialCondition(), cfg); err == nil {
		t.Error("distributed periodic ADI should be rejected")
	}
}

func Test2DADIMultipartitioned(t *testing.T) {
	// The 2-D case (Johnsson's setting): p×p tiles on p processors.
	p := 5
	eta := []int{20, 15}
	pb := Problem{Eta: eta, Alpha: 0.3, Steps: 3}
	want := pb.InitialCondition()
	pb.SerialSolve(want)

	m, err := core.NewGeneralized(p, []int{p, p})
	if err != nil {
		t.Fatal(err)
	}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	u := pb.InitialCondition()
	_, err = Run(pb, u, Config{Machine: testMachine(p), Strategy: Multipartition, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(want, u); d > 1e-9 {
		t.Errorf("2-D distributed ADI differs from serial by %g", d)
	}
}

func TestRunValidation(t *testing.T) {
	pb := Problem{Eta: []int{8, 8}, Alpha: 0.2, Steps: 1}
	if _, err := Run(pb, nil, Config{Machine: testMachine(2), Strategy: Multipartition}); err == nil {
		t.Error("missing Env should fail")
	}
	if _, err := Run(pb, nil, Config{Machine: testMachine(2), Strategy: BlockWavefront}); err == nil {
		t.Error("missing Block should fail")
	}
	if _, err := Run(pb, nil, Config{Machine: testMachine(2), Strategy: Strategy(99)}); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestStrategyString(t *testing.T) {
	if Multipartition.String() != "multipartition" || BlockWavefront.String() != "block-wavefront" ||
		BlockTranspose.String() != "block-transpose" {
		t.Error("strategy names wrong")
	}
}

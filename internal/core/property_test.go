package core

import (
	"testing"
	"testing/quick"

	"genmp/internal/numutil"
	"genmp/internal/partition"
)

func TestBlockRangeQuickProperties(t *testing.T) {
	// For any n ≥ parts ≥ 1: the ranges tile [0, n) contiguously with sizes
	// differing by at most one, larger blocks first.
	f := func(nRaw, partsRaw uint16) bool {
		n := int(nRaw%500) + 1
		parts := int(partsRaw)%n + 1
		prev := 0
		prevSize := -1
		for idx := 0; idx < parts; idx++ {
			lo, hi := BlockRange(n, parts, idx)
			if lo != prev || hi <= lo {
				return false
			}
			size := hi - lo
			if prevSize >= 0 && size > prevSize {
				return false // sizes must be non-increasing
			}
			prevSize = size
			prev = hi
		}
		return prev == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDiagonalQuickBalance(t *testing.T) {
	// For any side c ∈ [1, 6] and d ∈ {2, 3, 4}: the diagonal
	// multipartitioning of c^d tiles on c^(d−1) processors is balanced with
	// exactly one tile per processor per slab.
	f := func(cRaw, dRaw uint8) bool {
		c := int(cRaw)%6 + 1
		d := int(dRaw)%3 + 2
		p := numutil.Pow(c, d-1)
		m, err := NewDiagonal(p, d)
		if err != nil {
			return false
		}
		for dim := 0; dim < d; dim++ {
			if m.TilesPerSlab(dim) != 1 {
				return false
			}
		}
		return m.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGeneralizedQuickOverElementary(t *testing.T) {
	// Random (p, elementary index) draws: every constructed generalized
	// multipartitioning verifies.
	f := func(pRaw, pick uint8) bool {
		p := int(pRaw)%24 + 1
		elems := partition.Elementary(p, 3)
		if len(elems) == 0 {
			return p != 1 // only d=1-style failures; p=1 always has one
		}
		gamma := elems[int(pick)%len(elems)]
		if numutil.Prod(gamma...) > 50000 {
			return true // skip pathologically large grids in quick mode
		}
		m, err := NewGeneralized(p, gamma)
		if err != nil {
			return false
		}
		return m.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestExhaustiveVerificationWide(t *testing.T) {
	// The wide sweep of the §4 theorem: every elementary partitioning for
	// every p up to 64 in 3-D (bounded tile counts). Slow; skipped in
	// -short runs.
	if testing.Short() {
		t.Skip("wide verification sweep skipped in -short mode")
	}
	for p := 37; p <= 64; p++ {
		for _, gamma := range partition.Elementary(p, 3) {
			if numutil.Prod(gamma...) > 200000 {
				continue
			}
			m, err := NewGeneralized(p, gamma)
			if err != nil {
				t.Fatalf("p=%d γ=%v: %v", p, gamma, err)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("p=%d γ=%v: %v", p, gamma, err)
			}
		}
	}
}

func TestSweepScheduleQuickConsistency(t *testing.T) {
	// For random valid partitionings: forward and backward schedules visit
	// the same tiles, in reversed slab order.
	f := func(pick uint8) bool {
		cases := []struct {
			p     int
			gamma []int
		}{
			{8, []int{4, 4, 2}}, {16, []int{4, 4, 4}}, {30, []int{10, 15, 6}},
			{6, []int{6, 6, 1}}, {12, []int{6, 6, 2}},
		}
		c := cases[int(pick)%len(cases)]
		m, err := NewGeneralized(c.p, c.gamma)
		if err != nil {
			return false
		}
		for q := 0; q < c.p; q++ {
			for dim := 0; dim < 3; dim++ {
				fwd := m.SweepSchedule(q, dim, false)
				bwd := m.SweepSchedule(q, dim, true)
				if len(fwd) != len(bwd) {
					return false
				}
				for k := range fwd {
					if fwd[k].Slab != bwd[len(bwd)-1-k].Slab {
						return false
					}
					if len(fwd[k].Tiles) != len(bwd[len(bwd)-1-k].Tiles) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Package core ties the partitioning search (internal/partition) and the
// modular-mapping construction (internal/modmap) into the paper's primary
// artifact: a Multipartitioning — a cut of a d-dimensional array into a
// γ₁×…×γ_d grid of tiles together with a tile-to-processor assignment that
// has the balance property (every slab holds the same number of tiles of
// every processor) and the neighbor property (all +dim neighbors of one
// processor's tiles belong to a single processor).
//
// The package also implements the prior-art multipartitionings the paper
// generalizes (Section 2): Johnsson et al.'s 2-D latin-square mapping,
// Naik et al.'s diagonal multipartitioning for p^(1/(d−1)) integral, and
// Bruno and Cappello's Gray-code mapping of 3-D tiles onto a hypercube.
package core

import (
	"fmt"
	"io"
	"strings"

	"genmp/internal/modmap"
	"genmp/internal/numutil"
	"genmp/internal/partition"
)

// TileMap assigns tiles of a finite grid to processors. Implementations must
// have the balance and neighbor properties for the Multipartitioning wrapper
// to deliver balanced sweeps (Verify checks both exhaustively).
type TileMap interface {
	// P returns the number of processors.
	P() int
	// Shape returns the tile-grid extents (γ).
	Shape() []int
	// Proc returns the processor owning the tile at the given coordinates.
	Proc(tile []int) int
	// NeighborProc returns the processor owning the in-grid neighbors of
	// proc's tiles, step tiles away along dim.
	NeighborProc(proc, dim, step int) int
}

// Multipartitioning is a tile grid plus a TileMap, with precomputed per-
// processor tile lists and per-slab ownership used by sweep executors.
type Multipartitioning struct {
	tm      TileMap
	gamma   []int
	p       int
	tilesOf [][][]int // [proc] -> tiles (coords), row-major tile order
	// slabOf[dim][slab][proc] -> tiles of proc in that slab, row-major order
	slabOf [][][][][]int
	name   string
}

// FromTileMap wraps an arbitrary TileMap. The per-processor tile lists are
// materialized eagerly (O(∏γ·d) time and space).
func FromTileMap(tm TileMap, name string) *Multipartitioning {
	gamma := numutil.CopyInts(tm.Shape())
	p := tm.P()
	m := &Multipartitioning{tm: tm, gamma: gamma, p: p, name: name}
	m.tilesOf = make([][][]int, p)
	d := len(gamma)
	m.slabOf = make([][][][][]int, d)
	for dim := 0; dim < d; dim++ {
		m.slabOf[dim] = make([][][][]int, gamma[dim])
		for s := 0; s < gamma[dim]; s++ {
			m.slabOf[dim][s] = make([][][]int, p)
		}
	}
	numutil.EachCoord(gamma, func(tile []int) {
		q := tm.Proc(tile)
		c := numutil.CopyInts(tile)
		m.tilesOf[q] = append(m.tilesOf[q], c)
		for dim := 0; dim < d; dim++ {
			m.slabOf[dim][tile[dim]][q] = append(m.slabOf[dim][tile[dim]][q], c)
		}
	})
	return m
}

// NewGeneralized builds the paper's generalized multipartitioning: the
// Figure 3 modular mapping over the tile grid gamma on p processors.
// gamma must be a valid partitioning of p.
func NewGeneralized(p int, gamma []int) (*Multipartitioning, error) {
	mm, err := modmap.New(p, gamma)
	if err != nil {
		return nil, err
	}
	return FromTileMap(modularTileMap{mm}, fmt.Sprintf("generalized %s on %d", partition.Describe(gamma), p)), nil
}

// NewOptimal searches for the optimal partitioning of p processors over a
// d-dimensional array under obj (Section 3) and builds the generalized
// multipartitioning for it (Section 4).
func NewOptimal(p, d int, obj partition.Objective) (*Multipartitioning, error) {
	res, err := partition.Optimal(p, d, obj)
	if err != nil {
		return nil, err
	}
	return NewGeneralized(p, res.Gamma)
}

type modularTileMap struct{ m *modmap.Mapping }

func (t modularTileMap) P() int                            { return t.m.P }
func (t modularTileMap) Shape() []int                      { return t.m.B }
func (t modularTileMap) Proc(tile []int) int               { return t.m.Proc(tile) }
func (t modularTileMap) NeighborProc(q, dim, step int) int { return t.m.NeighborProc(q, dim, step) }

// Mapping returns the underlying modular mapping when the multipartitioning
// was built by NewGeneralized/NewOptimal, or nil otherwise.
func (m *Multipartitioning) Mapping() *modmap.Mapping {
	if t, ok := m.tm.(modularTileMap); ok {
		return t.m
	}
	return nil
}

// NewDiagonal builds Naik et al.'s diagonal multipartitioning of a
// d-dimensional array on p processors. It requires c = p^(1/(d−1)) to be
// integral; the grid is c×…×c with θ(v)[t] = (v_t − v_{d−1}) mod c for
// t < d−1, one tile per processor per slab. For d = 2 this is Johnsson's
// latin square (any p).
func NewDiagonal(p, d int) (*Multipartitioning, error) {
	if d < 2 {
		return nil, fmt.Errorf("core: diagonal multipartitioning needs d ≥ 2")
	}
	c := numutil.IntRoot(p, d-1)
	if numutil.Pow(c, d-1) != p {
		return nil, fmt.Errorf("core: diagonal multipartitioning of a %d-D array needs p^(1/%d) integral; p = %d is not a perfect %s",
			d, d-1, p, ordinalPower(d-1))
	}
	return FromTileMap(diagonalTileMap{p: p, d: d, c: c}, fmt.Sprintf("diagonal %d^%d on %d", c, d, p)), nil
}

func ordinalPower(k int) string {
	switch k {
	case 1:
		return "1st power" // unreachable in practice (d ≥ 2 means k ≥ 1; k = 1 always integral)
	case 2:
		return "square"
	case 3:
		return "cube"
	default:
		return fmt.Sprintf("%dth power", k)
	}
}

// diagonalTileMap: tiles c×…×c (d dims), procs as a (d−1)-dim grid of side
// c; component t of the processor vector is (v_t − v_{d−1}) mod c.
type diagonalTileMap struct{ p, d, c int }

func (t diagonalTileMap) P() int { return t.p }

func (t diagonalTileMap) Shape() []int {
	s := make([]int, t.d)
	for i := range s {
		s[i] = t.c
	}
	return s
}

func (t diagonalTileMap) Proc(tile []int) int {
	id := 0
	last := tile[t.d-1]
	for i := 0; i < t.d-1; i++ {
		id = id*t.c + numutil.EMod(tile[i]-last, t.c)
	}
	return id
}

func (t diagonalTileMap) NeighborProc(q, dim, step int) int {
	// Decode q into its (d−1) diagonal components.
	comp := make([]int, t.d-1)
	for i := t.d - 2; i >= 0; i-- {
		comp[i] = q % t.c
		q /= t.c
	}
	if dim < t.d-1 {
		comp[dim] = numutil.EMod(comp[dim]+step, t.c)
	} else {
		for i := range comp {
			comp[i] = numutil.EMod(comp[i]-step, t.c)
		}
	}
	id := 0
	for _, cv := range comp {
		id = id*t.c + cv
	}
	return id
}

// NewJohnsson2D builds Johnsson, Saad and Schultz's 2-D multipartitioning
// for any p: a p×p tile grid with θ(i,j) = (i−j) mod p — a latin square in
// which each processor's tiles lie on a wrapped diagonal.
func NewJohnsson2D(p int) (*Multipartitioning, error) {
	if p < 1 {
		return nil, fmt.Errorf("core: NewJohnsson2D: p = %d must be ≥ 1", p)
	}
	return FromTileMap(johnssonTileMap{p}, fmt.Sprintf("johnsson %d×%d on %d", p, p, p)), nil
}

type johnssonTileMap struct{ p int }

func (t johnssonTileMap) P() int       { return t.p }
func (t johnssonTileMap) Shape() []int { return []int{t.p, t.p} }
func (t johnssonTileMap) Proc(tile []int) int {
	return numutil.EMod(tile[0]-tile[1], t.p)
}
func (t johnssonTileMap) NeighborProc(q, dim, step int) int {
	if dim == 0 {
		return numutil.EMod(q+step, t.p)
	}
	return numutil.EMod(q-step, t.p)
}

// NewGrayCode3D builds Bruno and Cappello's 3-D multipartitioning for a
// hypercube: a 2^k × 2^k × 2^k tile grid on 2^(2k) processors, where the
// processor id is the hypercube node address formed by concatenating the
// Gray codes of the two diagonal components. Tiles adjacent along i or j map
// to hypercube-adjacent processors (Hamming distance 1); tiles adjacent
// along k map to processors exactly two hops apart.
func NewGrayCode3D(k int) (*Multipartitioning, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: NewGrayCode3D: k = %d must be ≥ 1", k)
	}
	side := 1 << k
	return FromTileMap(grayTileMap{k: k, side: side}, fmt.Sprintf("graycode %d^3 on %d", side, side*side)), nil
}

type grayTileMap struct{ k, side int }

func (t grayTileMap) P() int       { return t.side * t.side }
func (t grayTileMap) Shape() []int { return []int{t.side, t.side, t.side} }

func (t grayTileMap) Proc(tile []int) int {
	a := numutil.GrayCode(numutil.EMod(tile[0]-tile[2], t.side))
	b := numutil.GrayCode(numutil.EMod(tile[1]-tile[2], t.side))
	return a<<t.k | b
}

func (t grayTileMap) NeighborProc(q, dim, step int) int {
	a := numutil.GrayRank(q >> t.k)
	b := numutil.GrayRank(q & (t.side - 1))
	switch dim {
	case 0:
		a = numutil.EMod(a+step, t.side)
	case 1:
		b = numutil.EMod(b+step, t.side)
	default:
		a = numutil.EMod(a-step, t.side)
		b = numutil.EMod(b-step, t.side)
	}
	return numutil.GrayCode(a)<<t.k | numutil.GrayCode(b)
}

// HammingDistance returns the hypercube hop count between two processor
// addresses.
func HammingDistance(a, b int) int { return numutil.PopCount(a ^ b) }

// --- accessors ---------------------------------------------------------

// P returns the number of processors.
func (m *Multipartitioning) P() int { return m.p }

// Dims returns the number of array dimensions d.
func (m *Multipartitioning) Dims() int { return len(m.gamma) }

// Gamma returns the tile-grid extents (a copy).
func (m *Multipartitioning) Gamma() []int { return numutil.CopyInts(m.gamma) }

// Name returns a short human-readable description of the mapping.
func (m *Multipartitioning) Name() string { return m.name }

// NumTiles returns ∏γᵢ.
func (m *Multipartitioning) NumTiles() int { return numutil.Prod(m.gamma...) }

// TilesPerProc returns ∏γᵢ/p.
func (m *Multipartitioning) TilesPerProc() int { return m.NumTiles() / m.p }

// Proc returns the processor owning a tile.
func (m *Multipartitioning) Proc(tile []int) int { return m.tm.Proc(tile) }

// NeighborProc returns the processor owning proc's step-neighbors along dim.
func (m *Multipartitioning) NeighborProc(proc, dim, step int) int {
	return m.tm.NeighborProc(proc, dim, step)
}

// TilesOf returns the tiles of processor q in row-major tile order. The
// returned slices are shared; callers must not modify them.
func (m *Multipartitioning) TilesOf(q int) [][]int { return m.tilesOf[q] }

// SlabTilesOf returns the tiles of processor q inside slab s along dim, in
// row-major order. The returned slices are shared; do not modify.
func (m *Multipartitioning) SlabTilesOf(dim, s, q int) [][]int {
	return m.slabOf[dim][s][q]
}

// TilesPerSlab returns the number of tiles each processor owns in every slab
// along dim (the balance property makes it uniform): ∏_{j≠dim}γⱼ / p.
func (m *Multipartitioning) TilesPerSlab(dim int) int {
	return numutil.ProdExcept(m.gamma, dim) / m.p
}

// SweepPhase describes one computation phase of a line sweep for one
// processor: the tiles it computes and the processor to exchange carries
// with afterwards (-1 when the sweep ends at this slab or the slab count is
// 1). For a forward sweep phases run slab 0..γ−1 and SendTo is the +1
// neighbor; for a backward sweep slabs run γ−1..0 and SendTo is the −1
// neighbor.
type SweepPhase struct {
	Slab   int
	Tiles  [][]int
	SendTo int
}

// SweepSchedule returns the ordered phases of a line sweep along dim for
// processor q. Every processor computes the same number of tiles in every
// phase (balance), and sends at most one aggregated message per phase
// (neighbor property).
func (m *Multipartitioning) SweepSchedule(q, dim int, backward bool) []SweepPhase {
	g := m.gamma[dim]
	phases := make([]SweepPhase, 0, g)
	step := 1
	if backward {
		step = -1
	}
	for k := 0; k < g; k++ {
		s := k
		if backward {
			s = g - 1 - k
		}
		ph := SweepPhase{Slab: s, Tiles: m.slabOf[dim][s][q], SendTo: -1}
		if k < g-1 {
			ph.SendTo = m.tm.NeighborProc(q, dim, step)
		}
		phases = append(phases, ph)
	}
	return phases
}

// Verify exhaustively checks the balance and neighbor properties of the
// wrapped TileMap, whatever its construction.
func (m *Multipartitioning) Verify() error {
	d := len(m.gamma)
	// Balance: every processor owns TilesPerSlab(dim) tiles in every slab.
	for dim := 0; dim < d; dim++ {
		slabTiles := numutil.ProdExcept(m.gamma, dim)
		if slabTiles%m.p != 0 {
			return fmt.Errorf("core: slab along dim %d has %d tiles, not a multiple of p = %d", dim, slabTiles, m.p)
		}
		want := slabTiles / m.p
		for s := 0; s < m.gamma[dim]; s++ {
			for q := 0; q < m.p; q++ {
				if got := len(m.slabOf[dim][s][q]); got != want {
					return fmt.Errorf("core: balance violated: proc %d owns %d tiles in slab %d along dim %d (want %d)",
						q, got, s, dim, want)
				}
			}
		}
	}
	// Neighbor: all in-grid +1/−1 neighbors of q's tiles on one processor,
	// matching NeighborProc.
	for dim := 0; dim < d; dim++ {
		for _, step := range []int{1, -1} {
			for q := 0; q < m.p; q++ {
				want := m.tm.NeighborProc(q, dim, step)
				for _, tile := range m.tilesOf[q] {
					n := tile[dim] + step
					if n < 0 || n >= m.gamma[dim] {
						continue
					}
					nt := numutil.CopyInts(tile)
					nt[dim] = n
					if got := m.tm.Proc(nt); got != want {
						return fmt.Errorf("core: neighbor violated: tile %v of proc %d has %+d-neighbor %v on proc %d, NeighborProc says %d",
							tile, q, step, nt, got, want)
					}
				}
			}
		}
	}
	return nil
}

// RenderSlices writes a Figure-1-style rendering: for each slab along the
// last dimension, a 2-D table of the owning processor of every tile. Only
// meaningful for d = 2 or 3.
func (m *Multipartitioning) RenderSlices(w io.Writer) error {
	d := len(m.gamma)
	switch d {
	case 2:
		return m.renderPlane(w, -1)
	case 3:
		for k := 0; k < m.gamma[2]; k++ {
			if _, err := fmt.Fprintf(w, "slice k=%d (of dimension 3):\n", k); err != nil {
				return err
			}
			if err := m.renderPlane(w, k); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("core: RenderSlices supports d = 2 or 3, got d = %d", d)
	}
}

func (m *Multipartitioning) renderPlane(w io.Writer, k int) error {
	width := len(fmt.Sprintf("%d", m.p-1))
	tile := make([]int, len(m.gamma))
	var sb strings.Builder
	for i := 0; i < m.gamma[0]; i++ {
		sb.Reset()
		for j := 0; j < m.gamma[1]; j++ {
			tile[0], tile[1] = i, j
			if k >= 0 {
				tile[2] = k
			}
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%*d", width, m.tm.Proc(tile))
		}
		sb.WriteByte('\n')
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// BlockRange returns the half-open index interval [lo, hi) of block idx when
// n elements are cut into parts blocks: the first n mod parts blocks get
// ⌈n/parts⌉ elements, the rest ⌊n/parts⌋. The paper assumes γᵢ | ηᵢ; this is
// the standard remainder-spreading used "when applying our mappings in
// practice if this assumption is not valid".
func BlockRange(n, parts, idx int) (lo, hi int) {
	if parts < 1 || idx < 0 || idx >= parts {
		panic(fmt.Sprintf("core: BlockRange(%d, %d, %d) out of range", n, parts, idx))
	}
	q, r := n/parts, n%parts
	lo = idx*q + numutil.MinInt(idx, r)
	hi = lo + q
	if idx < r {
		hi++
	}
	return lo, hi
}

// TileBounds returns, for an array of extents eta, the per-dimension index
// intervals [lo, hi) of the given tile.
func (m *Multipartitioning) TileBounds(eta, tile []int) (lo, hi []int) {
	d := len(m.gamma)
	if len(eta) != d || len(tile) != d {
		panic("core: TileBounds rank mismatch")
	}
	lo = make([]int, d)
	hi = make([]int, d)
	for i := 0; i < d; i++ {
		lo[i], hi[i] = BlockRange(eta[i], m.gamma[i], tile[i])
	}
	return lo, hi
}

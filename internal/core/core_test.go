package core

import (
	"strings"
	"testing"

	"genmp/internal/numutil"
	"genmp/internal/partition"
)

func TestFigure1Exact(t *testing.T) {
	// Figure 1 of the paper: the 3-D diagonal multipartitioning for 16
	// processors on a 4×4×4 tile grid is specified by
	// θ(i,j,k) = ((i−k) mod √p)·√p + ((j−k) mod √p) with √p = 4.
	m, err := NewDiagonal(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !numutil.EqualInts(m.Gamma(), []int{4, 4, 4}) {
		t.Fatalf("gamma = %v, want [4 4 4]", m.Gamma())
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				want := numutil.EMod(i-k, 4)*4 + numutil.EMod(j-k, 4)
				if got := m.Proc([]int{i, j, k}); got != want {
					t.Fatalf("θ(%d,%d,%d) = %d, want %d", i, j, k, got, want)
				}
			}
		}
	}
	if err := m.Verify(); err != nil {
		t.Error(err)
	}
	if m.TilesPerProc() != 4 {
		t.Errorf("tiles per proc = %d, want 4", m.TilesPerProc())
	}
	// One tile per processor per slab (diagonal multipartitionings are
	// "compact").
	for dim := 0; dim < 3; dim++ {
		if m.TilesPerSlab(dim) != 1 {
			t.Errorf("tiles per slab along dim %d = %d, want 1", dim, m.TilesPerSlab(dim))
		}
	}
}

func TestDiagonalRequiresIntegralRoot(t *testing.T) {
	if _, err := NewDiagonal(8, 3); err == nil {
		t.Error("NewDiagonal(8, 3) should fail: 8 is not a perfect square")
	}
	if _, err := NewDiagonal(50, 3); err == nil {
		t.Error("NewDiagonal(50, 3) should fail")
	}
	for _, p := range []int{1, 4, 9, 16, 25, 36, 49, 64, 81} {
		m, err := NewDiagonal(p, 3)
		if err != nil {
			t.Fatalf("NewDiagonal(%d, 3): %v", p, err)
		}
		if err := m.Verify(); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
	}
	// 4-D diagonal needs a perfect cube.
	if _, err := NewDiagonal(16, 4); err == nil {
		t.Error("NewDiagonal(16, 4) should fail: 16 is not a perfect cube")
	}
	m, err := NewDiagonal(27, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Error(err)
	}
}

func TestJohnsson2D(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 7, 8, 12} {
		m, err := NewJohnsson2D(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Verify(); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
		// Each processor's tiles lie on a wrapped diagonal: exactly one per
		// row and one per column — a latin square.
		for q := 0; q < p; q++ {
			rows := make([]int, p)
			cols := make([]int, p)
			for _, tile := range m.TilesOf(q) {
				rows[tile[0]]++
				cols[tile[1]]++
			}
			for i := 0; i < p; i++ {
				if rows[i] != 1 || cols[i] != 1 {
					t.Fatalf("p=%d proc %d: not a latin square (row %d: %d, col %d: %d)",
						p, q, i, rows[i], i, cols[i])
				}
			}
		}
		// In an ADI-style sweep each processor exchanges with only its two
		// neighbors in a ring: the ±1 neighbor procs are q±1 mod p.
		for q := 0; q < p; q++ {
			if m.NeighborProc(q, 0, 1) != numutil.EMod(q+1, p) {
				t.Errorf("p=%d: NeighborProc(%d, 0, +1) = %d", p, q, m.NeighborProc(q, 0, 1))
			}
		}
	}
}

func TestGrayCode3D(t *testing.T) {
	for k := 1; k <= 3; k++ {
		m, err := NewGrayCode3D(k)
		if err != nil {
			t.Fatal(err)
		}
		side := 1 << k
		if m.P() != side*side {
			t.Fatalf("k=%d: P = %d, want %d", k, m.P(), side*side)
		}
		if err := m.Verify(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		// Bruno–Cappello property: tiles adjacent along i or j map to
		// hypercube-adjacent processors; tiles adjacent along k map to
		// processors exactly two hops apart.
		numutil.EachCoord(m.Gamma(), func(tile []int) {
			q := m.Proc(tile)
			for dim := 0; dim < 3; dim++ {
				if tile[dim]+1 >= side {
					continue
				}
				nt := numutil.CopyInts(tile)
				nt[dim]++
				nq := m.Proc(nt)
				wantHops := 1
				if dim == 2 {
					wantHops = 2
				}
				if got := HammingDistance(q, nq); got != wantHops {
					t.Fatalf("k=%d tile %v dim %d: neighbor procs %d,%d are %d hops apart, want %d",
						k, tile, dim, q, nq, got, wantHops)
				}
			}
		})
	}
}

func TestGeneralizedAcrossPartitionings(t *testing.T) {
	cases := []struct {
		p     int
		gamma []int
	}{
		{8, []int{4, 4, 2}},
		{8, []int{8, 8, 1}},
		{30, []int{10, 15, 6}},
		{30, []int{5, 30, 6}},
		{12, []int{6, 6, 2}},
	}
	for _, c := range cases {
		m, err := NewGeneralized(c.p, c.gamma)
		if err != nil {
			t.Fatalf("p=%d γ=%v: %v", c.p, c.gamma, err)
		}
		if err := m.Verify(); err != nil {
			t.Errorf("p=%d γ=%v: %v", c.p, c.gamma, err)
		}
		if m.Mapping() == nil {
			t.Errorf("p=%d γ=%v: Mapping() should be non-nil for generalized", c.p, c.gamma)
		}
	}
}

func TestNewOptimal(t *testing.T) {
	m, err := NewOptimal(8, 3, partition.UniformObjective(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := numutil.SortedCopy(m.Gamma()); !numutil.EqualInts(got, []int{2, 4, 4}) {
		t.Errorf("optimal γ for p=8 = %v, want a permutation of [2 4 4]", m.Gamma())
	}
	if err := m.Verify(); err != nil {
		t.Error(err)
	}
	if _, err := NewOptimal(5, 1, partition.UniformObjective(1)); err == nil {
		t.Error("NewOptimal(5, 1) should fail")
	}
}

func TestSweepSchedule(t *testing.T) {
	m, err := NewGeneralized(8, []int{4, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 8; q++ {
		for dim := 0; dim < 3; dim++ {
			fwd := m.SweepSchedule(q, dim, false)
			if len(fwd) != m.Gamma()[dim] {
				t.Fatalf("forward sweep along dim %d has %d phases, want %d", dim, len(fwd), m.Gamma()[dim])
			}
			for k, ph := range fwd {
				if ph.Slab != k {
					t.Fatalf("forward phase %d has slab %d", k, ph.Slab)
				}
				if len(ph.Tiles) != m.TilesPerSlab(dim) {
					t.Fatalf("phase %d: %d tiles, want %d", k, len(ph.Tiles), m.TilesPerSlab(dim))
				}
				if k < len(fwd)-1 {
					if ph.SendTo != m.NeighborProc(q, dim, 1) {
						t.Fatalf("phase %d: SendTo = %d, want %d", k, ph.SendTo, m.NeighborProc(q, dim, 1))
					}
				} else if ph.SendTo != -1 {
					t.Fatalf("last phase should not send (got %d)", ph.SendTo)
				}
			}
			bwd := m.SweepSchedule(q, dim, true)
			for k, ph := range bwd {
				if want := m.Gamma()[dim] - 1 - k; ph.Slab != want {
					t.Fatalf("backward phase %d has slab %d, want %d", k, ph.Slab, want)
				}
			}
			if last := bwd[len(bwd)-1]; last.SendTo != -1 {
				t.Fatalf("backward last phase should not send")
			}
		}
	}
}

func TestSweepScheduleCoversAllTiles(t *testing.T) {
	m, err := NewGeneralized(30, []int{10, 15, 6})
	if err != nil {
		t.Fatal(err)
	}
	for dim := 0; dim < 3; dim++ {
		seen := map[string]bool{}
		total := 0
		for q := 0; q < 30; q++ {
			for _, ph := range m.SweepSchedule(q, dim, false) {
				for _, tile := range ph.Tiles {
					key := partition.Describe(tile)
					if seen[key] {
						t.Fatalf("dim %d: tile %v scheduled twice", dim, tile)
					}
					seen[key] = true
					total++
				}
			}
		}
		if total != m.NumTiles() {
			t.Fatalf("dim %d: schedule covers %d tiles, want %d", dim, total, m.NumTiles())
		}
	}
}

func TestBlockRange(t *testing.T) {
	// 10 elements in 3 parts: 4, 3, 3.
	wants := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	for i, w := range wants {
		lo, hi := BlockRange(10, 3, i)
		if lo != w[0] || hi != w[1] {
			t.Errorf("BlockRange(10,3,%d) = [%d,%d), want [%d,%d)", i, lo, hi, w[0], w[1])
		}
	}
	// Exact division.
	lo, hi := BlockRange(12, 4, 2)
	if lo != 6 || hi != 9 {
		t.Errorf("BlockRange(12,4,2) = [%d,%d)", lo, hi)
	}
	// Coverage and monotonicity for many shapes.
	for n := 1; n <= 40; n++ {
		for parts := 1; parts <= n; parts++ {
			prev := 0
			for idx := 0; idx < parts; idx++ {
				lo, hi := BlockRange(n, parts, idx)
				if lo != prev {
					t.Fatalf("BlockRange(%d,%d,%d): lo = %d, want %d", n, parts, idx, lo, prev)
				}
				if hi-lo != n/parts && hi-lo != n/parts+1 {
					t.Fatalf("BlockRange(%d,%d,%d): size %d", n, parts, idx, hi-lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("BlockRange(%d,%d,·) covers %d", n, parts, prev)
			}
		}
	}
}

func TestTileBounds(t *testing.T) {
	m, err := NewGeneralized(4, []int{4, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.TileBounds([]int{102, 102, 102}, []int{1, 2, 0})
	// 102 into 4 parts: 26, 26, 25, 25 → part 1 = [26,52), part 2 = [52,77).
	if lo[0] != 26 || hi[0] != 52 || lo[1] != 52 || hi[1] != 77 || lo[2] != 0 || hi[2] != 102 {
		t.Errorf("TileBounds = [%v, %v)", lo, hi)
	}
}

func TestRenderSlices(t *testing.T) {
	m, err := NewJohnsson2D(3)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := m.RenderSlices(&sb); err != nil {
		t.Fatal(err)
	}
	want := "0 2 1\n1 0 2\n2 1 0\n"
	if sb.String() != want {
		t.Errorf("render:\n%q\nwant:\n%q", sb.String(), want)
	}
	m3, err := NewDiagonal(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := m3.RenderSlices(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "slice k=0") || !strings.Contains(sb.String(), "slice k=1") {
		t.Errorf("3-D render missing slice headers:\n%s", sb.String())
	}
	m4, err := NewGeneralized(4, []int{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m4.RenderSlices(&sb); err == nil {
		t.Error("RenderSlices with d=4 should fail")
	}
}

func TestGeneralizedDegeneratesToOneTilePerSlabOnSquares(t *testing.T) {
	// "When the number of processors is a perfect square, the generalized
	// multipartitionings … are exactly diagonal multipartitionings": the
	// compactness (one tile per proc per slab) must match.
	for _, p := range []int{4, 9, 16, 25} {
		c := numutil.ISqrt(p)
		m, err := NewGeneralized(p, []int{c, c, c})
		if err != nil {
			t.Fatal(err)
		}
		for dim := 0; dim < 3; dim++ {
			if m.TilesPerSlab(dim) != 1 {
				t.Errorf("p=%d: generalized on %d×%d×%d has %d tiles/slab along %d, want 1",
					p, c, c, c, m.TilesPerSlab(dim), dim)
			}
		}
	}
}

func TestVerifyCatchesBrokenMap(t *testing.T) {
	m := FromTileMap(brokenMap{}, "broken")
	if err := m.Verify(); err == nil {
		t.Error("Verify should reject a map without the balance property")
	}
}

// brokenMap sends every tile to processor 0 — balanced nowhere (p = 2).
type brokenMap struct{}

func (brokenMap) P() int                            { return 2 }
func (brokenMap) Shape() []int                      { return []int{2, 2} }
func (brokenMap) Proc(tile []int) int               { return 0 }
func (brokenMap) NeighborProc(q, dim, step int) int { return 0 }

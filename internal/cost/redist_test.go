package cost

import (
	"math"
	"testing"

	"genmp/internal/core"
	"genmp/internal/redist"
)

func compileBlockMove(t *testing.T, p int, eta []int, maxBytes int) *redist.Plan {
	t.Helper()
	from, err := redist.NewBlockLayout(p, eta, 0)
	if err != nil {
		t.Fatal(err)
	}
	to, err := redist.NewBlockLayout(p, eta, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := redist.Compile(redist.Spec{From: from, To: to, MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestPlanRedistTimeClosedForm: for the 2-rank BLOCK(0)→BLOCK(1) transpose
// of a 4×4 array the fold has a hand-computable value — one AllToAll step in
// which each rank ships its off-diagonal 2×2 quadrant (4 elements) to the
// single other rank.
func TestPlanRedistTimeClosedForm(t *testing.T) {
	m := Origin2000()
	pl := compileBlockMove(t, 2, []int{4, 4}, 0)
	want := m.K2*1 + m.K3(2)*4
	got := m.PlanRedistTime(pl)
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("PlanRedistTime = %g, want %g", got, want)
	}
}

// TestPlanRedistTimeChunkingCost: halving the staging budget doubles the
// round count, and each extra round pays its own K₂ start-ups — the fold
// must price the accountant's chunking, not just total volume.
func TestPlanRedistTimeChunkingCost(t *testing.T) {
	m := Origin2000()
	whole := compileBlockMove(t, 4, []int{16, 16}, 0)
	// Budget small enough to force several rounds but large enough to hold
	// the biggest single wire move after splitting.
	chunked := compileBlockMove(t, 4, []int{16, 16}, 512)
	if len(chunked.Steps) <= len(whole.Steps) {
		t.Fatalf("budget produced %d step(s), want more than %d", len(chunked.Steps), len(whole.Steps))
	}
	tw, tc := m.PlanRedistTime(whole), m.PlanRedistTime(chunked)
	if tc <= tw {
		t.Fatalf("chunked plan modeled at %g, not above whole-move %g", tc, tw)
	}
	// Same wire volume either way: the gap is pure start-up, bounded by one
	// maximal K₂ charge per extra step.
	maxExtra := float64(len(chunked.Steps)-len(whole.Steps)) * m.K2 * float64(chunked.P-1)
	if tc-tw > maxExtra+1e-12 {
		t.Fatalf("chunking overhead %g exceeds start-up bound %g", tc-tw, maxExtra)
	}
}

// TestPlanRedistTimeHalo: a halo plan is priced per direction step with a
// single aggregated message per rank.
func TestPlanRedistTimeHalo(t *testing.T) {
	m := Origin2000()
	mp, err := core.NewGeneralized(4, []int{4, 4, 1})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := redist.CompileHalo(redist.HaloSpec{M: mp, Eta: []int{8, 8, 8}, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := m.PlanRedistTime(pl)
	// Every step moves traffic, so the fold charges at least one K₂ each.
	if min := float64(len(pl.Steps)) * m.K2; got < min {
		t.Fatalf("PlanRedistTime = %g, below the %d-step start-up floor %g", got, len(pl.Steps), min)
	}
}

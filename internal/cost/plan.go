package cost

import "genmp/internal/plan"

// PlanSweepTime returns Tᵢ(p) folded over a compiled multipartitioned
// sweep plan — the same schedule the executors run — instead of the closed
// form over (η, γ). The fold reproduces Section 3.1 term by term:
//
//   - K₁ volume: the elements the plan computes along dim, summed over
//     ranks (exactly η for a complete schedule), divided by p.
//   - Per boundary: each forward-pass phase index at which any rank ships
//     carries is one synchronized communication step — all ranks cross the
//     same slab boundary at once — costing one K₂ start-up plus K₃(p) per
//     line of the crossing hyper-surface (the plan's per-phase line counts
//     summed over ranks, exactly η/ηᵢ per boundary).
//
// The calibrated K₂/K₃ already carry the per-pass factors
// (SweepWorkload.Passes, CarryBytesPerLine summed over passes), so only
// forward-pass boundaries are counted, mirroring the (γᵢ−1) of the closed
// form. For an evenly divided array the fold agrees with SweepTime to
// float precision; wavefront plans are outside this model (their phases
// pipeline rather than synchronize).
// An overlap-annotated plan (pl.Overlap.Enabled with split phases) is
// folded with the overlapped communication model instead: each boundary
// ships two messages (boundary carry, interior carry) paying two K₂
// start-ups, but the wire time hides behind the sender's interior compute —
// the effective wait per boundary is max(0, K₃(p)·lines − interior compute
// share), exactly the schedule the executors run (DESIGN.md §14).
func (m Model) PlanSweepTime(pl *plan.SweepPlan, dim int) float64 {
	p := pl.P
	t := m.K1 * float64(pl.Elements(dim)) / float64(p)
	for k := range pl.Pass(0, dim, false).Phases {
		lines := 0
		sends, split := false, false
		interElems := 0
		for q := 0; q < p; q++ {
			ph := &pl.Pass(q, dim, false).Phases[k]
			if ph.SendTo < 0 {
				continue
			}
			sends = true
			lines += ph.Lines
			if ph.Boundary > 0 {
				split = true
				// Elements of the phase's interior lines [Boundary, Lines):
				// the compute that runs while the boundary carry is in
				// flight. The split point clips each tile in canonical line
				// order, exactly as the executors do.
				for ti := range ph.Tiles {
					tg := &ph.Tiles[ti]
					lo := max(ph.Boundary, tg.LineOff)
					hi := tg.LineOff + tg.Lines
					if lo < hi {
						interElems += (hi - lo) * tg.ChunkLen
					}
				}
			}
		}
		if !sends {
			continue
		}
		wire := m.K3(p) * float64(lines)
		if pl.Overlap.Enabled && split {
			hide := m.K1 * float64(interElems) / float64(p)
			t += 2*m.K2 + max(0, wire-hide)
		} else {
			t += m.K2 + wire
		}
	}
	return t
}

// PlanTotalTime returns Σᵢ PlanSweepTime: the modeled time of one full
// round of sweeps along every dimension of the plan.
func (m Model) PlanTotalTime(pl *plan.SweepPlan) float64 {
	t := 0.0
	for dim := range pl.Eta {
		t += m.PlanSweepTime(pl, dim)
	}
	return t
}

// Package cost implements the analytic execution-time model of Section 3.1
// and the Section 6 compact-partitioning advisor.
//
// For a line sweep along dimension i of an η₁×…×η_d array multipartitioned
// as (γᵢ) on p processors:
//
//	Tᵢ(p) = K₁·η/p + (γᵢ−1)·(K₂ + K₃(p)·η/ηᵢ)
//
// where K₁ is the sequential computation time per element, K₂ the start-up
// cost of one communication phase, and K₃(p) the bandwidth-sensitive cost
// per element of communicated hyper-surface (∝ 1/p on a scalable network,
// constant on a bus). The full-application model sums Tᵢ over all d sweep
// directions.
package cost

import (
	"fmt"
	"math"

	"genmp/internal/numutil"
	"genmp/internal/partition"
	"genmp/internal/sim"
)

// Model holds the machine constants of the Section 3.1 objective.
type Model struct {
	// K1 is the sequential computation time per array element for one
	// dimensional sweep (seconds).
	K1 float64
	// K2 is the fixed start-up overhead of one communication phase
	// (seconds).
	K2 float64
	// K3 returns the per-element transfer cost of hyper-surface
	// communication on p processors (seconds per element).
	K3 func(p int) float64
}

// ScalableNetwork returns a K₃ for a network whose aggregate bandwidth
// grows with p: each processor moves its 1/p share of the surface at
// perElement seconds per element, so K₃(p) = perElement/p.
func ScalableNetwork(perElement float64) func(int) float64 {
	return func(p int) float64 { return perElement / float64(p) }
}

// BusNetwork returns a constant K₃: the whole surface crosses one shared
// medium regardless of p.
func BusNetwork(perElement float64) func(int) float64 {
	return func(int) float64 { return perElement }
}

// SweepWorkload describes one full line sweep of an application for
// Calibrated: the arithmetic per array element (all passes, including any
// coefficient build fused into the sweep phase) and the carry traffic each
// line pushes across a slab boundary.
type SweepWorkload struct {
	// FlopsPerElement is the total flops per array element per sweep.
	FlopsPerElement float64
	// CarryBytesPerLine is the bytes each line ships across one slab
	// boundary, summed over the passes (e.g. a pentadiagonal solve carries
	// 8 doubles forward and 2 backward: 80 bytes).
	CarryBytesPerLine float64
	// Passes is the number of traversals crossing each boundary (1 for a
	// forward-only recurrence, 2 for forward elimination + back
	// substitution).
	Passes int
}

// Calibrated derives the Model constants of the Section 3.1 objective from
// a simulated machine instead of hand-picked numbers, so the analytic
// prediction and the internal/sim measurement share one source of truth
// (the calibration audit of internal/exp quantifies the residual error):
//
//	K₁ = flops/element · computeFactor / effective flop rate
//	K₂ = passes · (2·perMessage + sendOverhead + recvOverhead + latency)
//	K₃ = carryBytes/line / bandwidth (scaled 1/p on a scalable network)
//
// K₂ counts, per slab boundary and pass, one send and one receive on the
// same rank (each wrapped in a perMessage pack/unpack charge) plus the wire
// latency the receiver waits out in the balanced steady state. computeFactor
// and perMessage are the dist.OverheadModel code-quality charges; pass 1 and
// 0 for ideal code. The CPU must carry the workload's WorkingSetBytes for
// the cache-aware effective rate.
func Calibrated(net sim.Network, cpu sim.CPU, computeFactor, perMessage float64, w SweepWorkload) Model {
	k3 := ScalableNetwork(w.CarryBytesPerLine / net.Bandwidth)
	if net.Scaling == sim.FixedBus {
		k3 = BusNetwork(w.CarryBytesPerLine / net.Bandwidth)
	}
	return Model{
		K1: w.FlopsPerElement * computeFactor / cpu.EffectiveFlopsPerSec(),
		K2: float64(w.Passes) * (2*perMessage + net.SendOverhead + net.RecvOverhead + net.Latency),
		K3: k3,
	}
}

// CalibratedFabric is Calibrated with the interconnect described by a
// sim.Fabric instead of the bare Network: the start-up constant uses the
// topology's mean head latency (hop-count average on a hypercube, the plain
// wire latency on the uniform fabrics) and K₃ keys off Fabric.SharedMedium
// rather than the Network scaling field. For the default crossbar and bus
// fabrics the result is identical to Calibrated.
func CalibratedFabric(fab sim.Fabric, net sim.Network, cpu sim.CPU, computeFactor, perMessage float64, w SweepWorkload) Model {
	k3 := ScalableNetwork(w.CarryBytesPerLine / net.Bandwidth)
	if fab.SharedMedium() {
		k3 = BusNetwork(w.CarryBytesPerLine / net.Bandwidth)
	}
	return Model{
		K1: w.FlopsPerElement * computeFactor / cpu.EffectiveFlopsPerSec(),
		K2: float64(w.Passes) * (2*perMessage + net.SendOverhead + net.RecvOverhead + fab.MeanHeadLatency()),
		K3: k3,
	}
}

// Origin2000 returns constants loosely calibrated to the paper's testbed
// (250 MHz R10000, MPI over a scalable interconnect) for an SP-like
// workload: a few µs of computation per element and sweep, ~20 µs message
// start-up, ~80 ns per 8-byte element of surface moved on a per-processor
// link.
func Origin2000() Model {
	return Model{
		K1: 1.0e-6,
		K2: 20e-6,
		K3: ScalableNetwork(80e-9),
	}
}

// SweepTime returns Tᵢ(p) for a sweep along dimension dim.
func (m Model) SweepTime(p int, eta, gamma []int, dim int) float64 {
	eta0 := float64(numutil.Prod(eta...))
	t := m.K1 * eta0 / float64(p)
	if gamma[dim] > 1 {
		t += float64(gamma[dim]-1) * (m.K2 + m.K3(p)*eta0/float64(eta[dim]))
	}
	return t
}

// TotalTime returns Σᵢ Tᵢ(p): the modeled time of one full round of sweeps
// along every dimension.
func (m Model) TotalTime(p int, eta, gamma []int) float64 {
	t := 0.0
	for dim := range eta {
		t += m.SweepTime(p, eta, gamma, dim)
	}
	return t
}

// SerialTime returns the modeled sequential time d·K₁·η of one full round
// of sweeps.
func (m Model) SerialTime(eta []int) float64 {
	return float64(len(eta)) * m.K1 * float64(numutil.Prod(eta...))
}

// Speedup returns SerialTime / TotalTime for the given partitioning.
func (m Model) Speedup(p int, eta, gamma []int) float64 {
	return m.SerialTime(eta) / m.TotalTime(p, eta, gamma)
}

// Objective converts the model into the partitioning-search objective for
// an array of extents eta on p processors: λᵢ = K₂ + K₃(p)·η/ηᵢ.
func (m Model) Objective(p int, eta []int) partition.Objective {
	return partition.MachineObjective(eta, m.K2, m.K3(p))
}

// BestPartitioning searches the optimal (γᵢ) for an array of extents eta on
// p processors under the model's objective.
func (m Model) BestPartitioning(p int, eta []int) (partition.Result, error) {
	return partition.Optimal(p, len(eta), m.Objective(p, eta))
}

// Advice is the outcome of the Section 6 compact-partitioning search: the
// processor count (≤ the available count) and partitioning minimizing the
// modeled time.
type Advice struct {
	UseProcs int
	Gamma    []int
	Time     float64
	// DiagonalProcs is ⌊p^(1/(d−1))⌋^(d−1), the largest processor count ≤ p
	// admitting a compact diagonal multipartitioning — the lower end of the
	// range the paper says the optimum falls in.
	DiagonalProcs int
}

// Advise searches over processor counts p′ ≤ p for the configuration with
// the smallest modeled time — the paper's observation that a non-compact
// partitioning (many tiles per processor) can lose to a compact one on
// slightly fewer processors (e.g. 5×10×10 on 50 vs 7×7×7 on 49 for NAS SP).
// timeOf may be nil, in which case the analytic TotalTime of the model's
// best partitioning is used; supply a custom function (e.g. a simulation)
// to advise against a richer cost measure.
func (m Model) Advise(p int, eta []int, timeOf func(p int, gamma []int) float64) (Advice, error) {
	if p < 1 {
		return Advice{}, fmt.Errorf("cost: Advise: p = %d must be ≥ 1", p)
	}
	d := len(eta)
	if d < 2 {
		return Advice{}, fmt.Errorf("cost: Advise: need d ≥ 2")
	}
	root := numutil.IntRoot(p, d-1)
	best := Advice{Time: math.Inf(1), DiagonalProcs: numutil.Pow(root, d-1)}
	for pp := best.DiagonalProcs; pp <= p; pp++ {
		res, err := partition.Optimal(pp, d, m.Objective(pp, eta))
		if err != nil {
			continue
		}
		t := 0.0
		if timeOf != nil {
			t = timeOf(pp, res.Gamma)
		} else {
			t = m.TotalTime(pp, eta, res.Gamma)
		}
		if t < best.Time {
			best.UseProcs = pp
			best.Gamma = res.Gamma
			best.Time = t
		}
	}
	if best.Gamma == nil {
		return Advice{}, fmt.Errorf("cost: Advise: no feasible configuration for p = %d, d = %d", p, d)
	}
	return best, nil
}

// SurfaceToVolume returns Σᵢ γᵢ/ηᵢ, the paper's measure (Section 6) of the
// relative cost of tile-boundary communication to tile computation.
func SurfaceToVolume(eta, gamma []int) float64 {
	s := 0.0
	for i := range eta {
		s += float64(gamma[i]) / float64(eta[i])
	}
	return s
}

// IsCompact reports whether the partitioning is compact in the paper's
// sense: the tile count ∏γᵢ does not exceed the diagonal multipartitioning
// tile count p^(d/(d−1)) (equivalently, tiles per processor ≤ p^(1/(d−1))).
func IsCompact(p int, gamma []int) bool {
	d := len(gamma)
	tiles := float64(numutil.Prod(gamma...))
	return tiles <= math.Pow(float64(p), float64(d)/float64(d-1))+1e-9
}

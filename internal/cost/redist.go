package cost

import "genmp/internal/redist"

// PlanRedistTime folds the Section 3.1 communication terms over a compiled
// redistribution plan — the same schedule redist.Execute runs. A
// redistribution phase computes nothing, so the K₁ volume term is absent;
// what remains is, per synchronized step, one K₂ start-up for the busiest
// rank's message count and K₃(p) per element of the largest per-rank
// receive volume (the surface the critical-path rank must wait for):
//
//	T = Σ_steps  K₂·max_q msgs_q + K₃(p)·max_q recvElems_q
//
// msgs_q is the number of aggregated payloads rank q sends in the step
// (distinct peers of an AllToAll round, one for an Exchange leg with
// traffic); recvElems_q its incoming element count. Steps advance the whole
// machine together — an AllToAll round or a halo direction is a barrier in
// the paper's bulk-synchronous sense — so each step costs its slowest rank.
func (m Model) PlanRedistTime(pl *redist.Plan) float64 {
	p := pl.P
	t := 0.0
	for si := range pl.Steps {
		st := &pl.Steps[si]
		maxMsgs, maxRecv := 0, 0
		for q := 0; q < p; q++ {
			msgs := 0
			if st.Op == redist.OpExchange {
				if st.Exch[q].SendBytes > 0 {
					msgs = 1
				}
			} else {
				peers := map[int]bool{}
				for _, mv := range st.Sends[q] {
					peers[mv.To] = true
				}
				msgs = len(peers)
			}
			recv := 0
			for _, mv := range st.Recvs[q] {
				recv += mv.Bytes
			}
			if msgs > maxMsgs {
				maxMsgs = msgs
			}
			if recv > maxRecv {
				maxRecv = recv
			}
		}
		t += m.K2*float64(maxMsgs) + m.K3(p)*float64(maxRecv/8)
	}
	return t
}

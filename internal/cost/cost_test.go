package cost

import (
	"math"
	"testing"

	"genmp/internal/numutil"
	"genmp/internal/sim"
)

func testModel() Model {
	return Model{K1: 1e-6, K2: 20e-6, K3: ScalableNetwork(80e-9)}
}

func TestSweepTimeFormula(t *testing.T) {
	m := testModel()
	eta := []int{100, 100, 100}
	gamma := []int{4, 4, 2}
	p := 8
	etaTotal := 1e6
	want := m.K1*etaTotal/8 + 3*(m.K2+(80e-9/8)*etaTotal/100)
	if got := m.SweepTime(p, eta, gamma, 0); math.Abs(got-want) > 1e-15 {
		t.Errorf("SweepTime = %g, want %g", got, want)
	}
	// γᵢ = 1: no communication phases at all.
	gamma = []int{1, 8, 8}
	want = m.K1 * etaTotal / 8
	if got := m.SweepTime(p, eta, gamma, 0); math.Abs(got-want) > 1e-15 {
		t.Errorf("SweepTime with γ=1 = %g, want %g", got, want)
	}
}

func TestTotalTimeIsSumOfSweeps(t *testing.T) {
	m := testModel()
	eta := []int{64, 32, 16}
	gamma := []int{4, 4, 2}
	sum := 0.0
	for dim := 0; dim < 3; dim++ {
		sum += m.SweepTime(8, eta, gamma, dim)
	}
	if got := m.TotalTime(8, eta, gamma); math.Abs(got-sum) > 1e-15 {
		t.Errorf("TotalTime = %g, want %g", got, sum)
	}
}

func TestSpeedupMonotoneOnSquares(t *testing.T) {
	// On perfect squares with diagonal partitionings, speedup should grow
	// with p for a class-B-sized domain.
	m := Origin2000()
	eta := []int{102, 102, 102}
	prev := 0.0
	for _, p := range []int{1, 4, 9, 16, 25, 36, 49, 64, 81} {
		res, err := m.BestPartitioning(p, eta)
		if err != nil {
			t.Fatal(err)
		}
		s := m.Speedup(p, eta, res.Gamma)
		if s <= prev {
			t.Errorf("speedup not increasing at p=%d: %g after %g", p, s, prev)
		}
		prev = s
	}
}

func TestSpeedupNearLinearAtModerateP(t *testing.T) {
	m := Origin2000()
	eta := []int{102, 102, 102}
	res, err := m.BestPartitioning(16, eta)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Speedup(16, eta, res.Gamma)
	if s < 12 || s > 16.5 {
		t.Errorf("speedup at p=16 = %g, expected near-linear (12–16.5)", s)
	}
}

func TestObjectivePrefersFewerCutsOfSmallDims(t *testing.T) {
	// The model objective must reproduce the skewed-domain remark.
	m := Origin2000()
	eta := []int{500, 500, 100}
	res, err := m.BestPartitioning(4, eta)
	if err != nil {
		t.Fatal(err)
	}
	if !numutil.EqualInts(res.Gamma, []int{4, 4, 1}) {
		t.Errorf("skewed optimal = %v, want [4 4 1]", res.Gamma)
	}
}

func TestAdviseFindsCompactConfiguration(t *testing.T) {
	// With a time function that penalizes non-compact partitionings (as the
	// paper measured for 50 vs 49), the advisor must drop back to 49.
	m := Origin2000()
	eta := []int{102, 102, 102}
	timeOf := func(p int, gamma []int) float64 {
		t := m.TotalTime(p, eta, gamma)
		if !IsCompact(p, gamma) {
			t *= 1.25 // non-compact penalty standing in for measured overheads
		}
		return t
	}
	adv, err := m.Advise(50, eta, timeOf)
	if err != nil {
		t.Fatal(err)
	}
	if adv.DiagonalProcs != 49 {
		t.Errorf("DiagonalProcs = %d, want 49", adv.DiagonalProcs)
	}
	if adv.UseProcs != 49 {
		t.Errorf("advisor chose p=%d (γ=%v), want 49", adv.UseProcs, adv.Gamma)
	}
	if !numutil.EqualInts(adv.Gamma, []int{7, 7, 7}) {
		t.Errorf("advisor γ = %v, want [7 7 7]", adv.Gamma)
	}
}

func TestAdviseAnalyticDefault(t *testing.T) {
	m := Origin2000()
	eta := []int{102, 102, 102}
	adv, err := m.Advise(16, eta, nil)
	if err != nil {
		t.Fatal(err)
	}
	if adv.UseProcs < adv.DiagonalProcs || adv.UseProcs > 16 {
		t.Errorf("advice p=%d outside [%d, 16]", adv.UseProcs, adv.DiagonalProcs)
	}
	if adv.Time <= 0 {
		t.Errorf("advice time = %g", adv.Time)
	}
}

func TestAdviseErrors(t *testing.T) {
	m := Origin2000()
	if _, err := m.Advise(0, []int{10, 10}, nil); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := m.Advise(4, []int{10}, nil); err == nil {
		t.Error("d=1 should fail")
	}
}

func TestSurfaceToVolume(t *testing.T) {
	got := SurfaceToVolume([]int{100, 100, 100}, []int{5, 10, 10})
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("SurfaceToVolume = %g, want 0.25", got)
	}
}

func TestIsCompact(t *testing.T) {
	// Diagonal 7×7×7 on 49: tiles = 343 = 49^1.5 → compact.
	if !IsCompact(49, []int{7, 7, 7}) {
		t.Error("7×7×7 on 49 should be compact")
	}
	// 5×10×10 on 50: tiles = 500 > 50^1.5 ≈ 354 → not compact.
	if IsCompact(50, []int{5, 10, 10}) {
		t.Error("5×10×10 on 50 should not be compact")
	}
	// 8×8×1 on 8: tiles 64 > 8^1.5 ≈ 22.6 → not compact.
	if IsCompact(8, []int{8, 8, 1}) {
		t.Error("8×8×1 on 8 should not be compact")
	}
	// 4×4×2 on 8: tiles 32 > 22.6 → also not compact (8 is not a square).
	if IsCompact(8, []int{4, 4, 2}) {
		t.Error("4×4×2 on 8 is not compact either")
	}
}

func TestBusVersusScalableNetwork(t *testing.T) {
	eta := []int{128, 128, 128}
	scalable := Model{K1: 1e-6, K2: 20e-6, K3: ScalableNetwork(80e-9)}
	bus := Model{K1: 1e-6, K2: 20e-6, K3: BusNetwork(80e-9)}
	gamma := []int{8, 8, 8}
	p := 64
	if scalable.TotalTime(p, eta, gamma) >= bus.TotalTime(p, eta, gamma) {
		t.Error("scalable network should beat the bus at p=64")
	}
	// At p=1 they agree (no communication).
	g1 := []int{1, 1, 1}
	if scalable.TotalTime(1, eta, g1) != bus.TotalTime(1, eta, g1) {
		t.Error("p=1 times should match")
	}
}

func TestOrigin2000Constants(t *testing.T) {
	m := Origin2000()
	if m.K1 <= 0 || m.K2 <= 0 || m.K3(1) <= 0 {
		t.Error("Origin2000 constants must be positive")
	}
	if m.K3(10) >= m.K3(1) {
		t.Error("scalable K3 should decrease with p")
	}
}

func TestCalibrated(t *testing.T) {
	net := sim.Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 2e-6, RecvOverhead: 2e-6}
	cpu := sim.CPU{FlopsPerSec: 200e6}
	w := SweepWorkload{FlopsPerElement: 100, CarryBytesPerLine: 80, Passes: 2}
	m := Calibrated(net, cpu, 1.0, 1e-6, w)
	if want := 100.0 / 200e6; math.Abs(m.K1-want) > 1e-18 {
		t.Errorf("K1 = %g, want %g", m.K1, want)
	}
	// Two passes, each 2 pack/unpack charges + both overheads + latency.
	if want := 2 * (2*1e-6 + 2e-6 + 2e-6 + 10e-6); math.Abs(m.K2-want) > 1e-15 {
		t.Errorf("K2 = %g, want %g", m.K2, want)
	}
	if want := 80.0 / 100e6 / 4; math.Abs(m.K3(4)-want) > 1e-18 {
		t.Errorf("scalable K3(4) = %g, want %g", m.K3(4), want)
	}
	bus := net
	bus.Scaling = sim.FixedBus
	mb := Calibrated(bus, cpu, 1.0, 0, w)
	if mb.K3(1) != mb.K3(16) {
		t.Errorf("bus K3 must be p-independent: %g vs %g", mb.K3(1), mb.K3(16))
	}
	// The cache boost raises the effective rate and lowers K1.
	hot := sim.CPU{FlopsPerSec: 200e6, CacheBoost: 2, L2Bytes: 1 << 20, WorkingSetBytes: 1 << 19}
	if mh := Calibrated(net, hot, 1.0, 0, w); mh.K1 >= m.K1 {
		t.Errorf("cache-resident K1 %g should beat %g", mh.K1, m.K1)
	}
}

func TestCalibratedFabricMatchesCalibratedOnDefaults(t *testing.T) {
	net := sim.Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 2e-6, RecvOverhead: 2e-6}
	cpu := sim.CPU{FlopsPerSec: 200e6}
	w := SweepWorkload{FlopsPerElement: 100, CarryBytesPerLine: 80, Passes: 2}
	const p = 8

	// Crossbar and bus fabrics must reproduce the Network-based constants
	// bit for bit: same K₂ expression, same K₃ regime.
	plain := Calibrated(net, cpu, 1.0, 1e-6, w)
	xbar := CalibratedFabric(sim.NewCrossbar(net, p), net, cpu, 1.0, 1e-6, w)
	if plain.K1 != xbar.K1 || plain.K2 != xbar.K2 || plain.K3(p) != xbar.K3(p) || plain.K3(1) != xbar.K3(1) {
		t.Errorf("crossbar fabric model differs from Calibrated: K2 %g vs %g, K3(8) %g vs %g",
			plain.K2, xbar.K2, plain.K3(p), xbar.K3(p))
	}
	busNet := net
	busNet.Scaling = sim.FixedBus
	plainBus := Calibrated(busNet, cpu, 1.0, 1e-6, w)
	busFab := CalibratedFabric(sim.NewBus(net, p), net, cpu, 1.0, 1e-6, w)
	if plainBus.K2 != busFab.K2 || plainBus.K3(p) != busFab.K3(p) {
		t.Errorf("bus fabric model differs from Calibrated on a bus network")
	}
	if busFab.K3(1) != busFab.K3(16) {
		t.Error("bus fabric K3 must be p-independent")
	}
}

func TestCalibratedFabricHypercubeRaisesK2(t *testing.T) {
	net := sim.Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 2e-6, RecvOverhead: 2e-6}
	cpu := sim.CPU{FlopsPerSec: 200e6}
	w := SweepWorkload{FlopsPerElement: 100, CarryBytesPerLine: 80, Passes: 2}
	const p = 8
	xbar := CalibratedFabric(sim.NewCrossbar(net, p), net, cpu, 1.0, 1e-6, w)
	cube := CalibratedFabric(sim.NewHypercube(net, p), net, cpu, 1.0, 1e-6, w)
	// Mean hop count over distinct pairs of an 8-node cube exceeds 1, so the
	// start-up constant grows; the scalable K₃ regime is unchanged.
	if cube.K2 <= xbar.K2 {
		t.Errorf("hypercube K2 %g should exceed crossbar K2 %g", cube.K2, xbar.K2)
	}
	if cube.K3(2*p) >= cube.K3(p) {
		t.Error("hypercube K3 should stay scalable (decreasing in p)")
	}
}

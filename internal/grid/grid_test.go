package grid

import (
	"math"
	"math/rand"
	"testing"

	"genmp/internal/numutil"
)

func TestNewAndIndexing(t *testing.T) {
	g := New(2, 3, 4)
	if g.Size() != 24 || g.Dims() != 3 {
		t.Fatalf("size/dims wrong: %d, %d", g.Size(), g.Dims())
	}
	g.Set(7.5, 1, 2, 3)
	if g.At(1, 2, 3) != 7.5 {
		t.Errorf("At after Set = %g", g.At(1, 2, 3))
	}
	// Row-major: last index fastest.
	if g.Offset(0, 0, 1) != 1 || g.Offset(0, 1, 0) != 4 || g.Offset(1, 0, 0) != 12 {
		t.Errorf("strides wrong: %d %d %d", g.Offset(0, 0, 1), g.Offset(0, 1, 0), g.Offset(1, 0, 0))
	}
}

func TestIndexPanics(t *testing.T) {
	g := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("indexing with %v should panic", idx)
				}
			}()
			g.At(idx...)
		}()
	}
}

func TestFillAndFillFunc(t *testing.T) {
	g := New(3, 3)
	g.Fill(2)
	if g.At(1, 1) != 2 {
		t.Error("Fill failed")
	}
	g.FillFunc(func(idx []int) float64 { return float64(10*idx[0] + idx[1]) })
	if g.At(2, 1) != 21 {
		t.Errorf("FillFunc: At(2,1) = %g", g.At(2, 1))
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(2, 2)
	g.Set(1, 0, 0)
	c := g.Clone()
	c.Set(9, 0, 0)
	if g.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
	g2 := New(2, 2)
	g2.CopyFrom(c)
	if g2.At(0, 0) != 9 {
		t.Error("CopyFrom failed")
	}
}

func TestExtractInjectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New(4, 5, 6)
	g.FillFunc(func([]int) float64 { return rng.Float64() })
	r := RectOf([]int{1, 2, 0}, []int{3, 5, 4})
	buf := g.Extract(r)
	if len(buf) != r.Size() || r.Size() != 2*3*4 {
		t.Fatalf("extract size %d, want %d", len(buf), r.Size())
	}
	h := New(4, 5, 6)
	h.Inject(r, buf)
	// Region matches, outside stays zero.
	idx := make([]int, 3)
	for off := 0; off < g.Size(); off++ {
		numutil.CoordOf(off, g.Shape(), idx)
		inside := true
		for i := range idx {
			if idx[i] < r.Lo[i] || idx[i] >= r.Hi[i] {
				inside = false
			}
		}
		if inside && h.At(idx...) != g.At(idx...) {
			t.Fatalf("inject mismatch at %v", idx)
		}
		if !inside && h.At(idx...) != 0 {
			t.Fatalf("inject leaked outside region at %v", idx)
		}
	}
}

func TestExtractOrderIsRowMajor(t *testing.T) {
	g := New(2, 3)
	g.FillFunc(func(idx []int) float64 { return float64(3*idx[0] + idx[1]) })
	buf := g.Extract(RectOf([]int{0, 1}, []int{2, 3}))
	want := []float64{1, 2, 4, 5}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("extract order: %v, want %v", buf, want)
		}
	}
}

func TestFace(t *testing.T) {
	r := RectOf([]int{0, 0, 0}, []int{4, 5, 6})
	hiFace := r.Face(1, +1)
	if hiFace.Lo[1] != 4 || hiFace.Hi[1] != 5 || hiFace.Size() != 4*1*6 {
		t.Errorf("high face wrong: %+v", hiFace)
	}
	loFace := r.Face(2, -1)
	if loFace.Lo[2] != 0 || loFace.Hi[2] != 1 || loFace.Size() != 4*5*1 {
		t.Errorf("low face wrong: %+v", loFace)
	}
}

func TestGatherScatterLines(t *testing.T) {
	g := New(3, 4)
	g.FillFunc(func(idx []int) float64 { return float64(10*idx[0] + idx[1]) })
	var lines []Line
	g.EachLine(g.Bounds(), 0, func(l Line) { lines = append(lines, l) })
	if len(lines) != 4 || g.NumLines(g.Bounds(), 0) != 4 {
		t.Fatalf("lines along dim 0: %d", len(lines))
	}
	buf := make([]float64, 3)
	g.Gather(lines[1], buf) // column j=1: 1, 11, 21
	if buf[0] != 1 || buf[1] != 11 || buf[2] != 21 {
		t.Errorf("gather column 1 = %v", buf)
	}
	g.Scatter(lines[1], []float64{-1, -2, -3})
	if g.At(1, 1) != -2 {
		t.Errorf("scatter failed: %g", g.At(1, 1))
	}
}

func TestEachLineSubRegion(t *testing.T) {
	g := New(4, 4, 4)
	g.FillFunc(func(idx []int) float64 { return float64(idx[2]) })
	r := RectOf([]int{1, 1, 1}, []int{3, 3, 3})
	count := 0
	buf := make([]float64, 2)
	g.EachLine(r, 2, func(l Line) {
		count++
		if l.N != 2 {
			t.Fatalf("line length %d, want 2", l.N)
		}
		g.Gather(l, buf)
		if buf[0] != 1 || buf[1] != 2 {
			t.Fatalf("line contents %v", buf)
		}
	})
	if count != 4 {
		t.Fatalf("visited %d lines, want 4", count)
	}
}

func TestTranspose(t *testing.T) {
	g := New(2, 3, 4)
	rng := rand.New(rand.NewSource(5))
	g.FillFunc(func([]int) float64 { return rng.Float64() })
	tr := g.Transpose([]int{2, 0, 1})
	if !numutil.EqualInts(tr.Shape(), []int{4, 2, 3}) {
		t.Fatalf("transposed shape %v", tr.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				if tr.At(k, i, j) != g.At(i, j, k) {
					t.Fatalf("transpose value mismatch at %d %d %d", i, j, k)
				}
			}
		}
	}
	// Round trip through the inverse permutation.
	back := tr.Transpose([]int{1, 2, 0})
	if MaxAbsDiff(g, back) != 0 {
		t.Error("transpose round trip differs")
	}
}

func TestTransposePanicsOnBadPerm(t *testing.T) {
	g := New(2, 2)
	for _, perm := range [][]int{{0, 0}, {0, 2}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Transpose(%v) should panic", perm)
				}
			}()
			g.Transpose(perm)
		}()
	}
}

func TestMaxAbsDiffAndNorm(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	a.Set(3, 0, 1)
	b.Set(1, 0, 1)
	if MaxAbsDiff(a, b) != 2 {
		t.Errorf("MaxAbsDiff = %g", MaxAbsDiff(a, b))
	}
	a.Fill(2)
	if math.Abs(a.Norm2()-4) > 1e-12 {
		t.Errorf("Norm2 = %g, want 4", a.Norm2())
	}
}

func TestFromData(t *testing.T) {
	g := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if g.At(1, 2) != 6 || g.At(0, 1) != 2 {
		t.Error("FromData layout wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("FromData with wrong length should panic")
		}
	}()
	FromData([]float64{1, 2}, 2, 3)
}

func TestRectShape(t *testing.T) {
	r := RectOf([]int{1, 2}, []int{4, 7})
	if !numutil.EqualInts(r.Shape(), []int{3, 5}) || r.Size() != 15 {
		t.Errorf("Rect shape/size wrong: %v %d", r.Shape(), r.Size())
	}
}

func TestExtract1D(t *testing.T) {
	g := FromData([]float64{0, 1, 2, 3, 4}, 5)
	buf := g.Extract(RectOf([]int{1}, []int{4}))
	if len(buf) != 3 || buf[0] != 1 || buf[2] != 3 {
		t.Errorf("1-D extract = %v", buf)
	}
}

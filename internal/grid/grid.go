// Package grid provides dense n-dimensional float64 arrays with strided
// storage, the data substrate for the line-sweep computations: tile
// extraction and injection, face (hyperplane) extraction, line iteration
// along any axis, and transposes. Row-major layout: the last index varies
// fastest.
package grid

import (
	"fmt"
	"math"

	"genmp/internal/numutil"
)

// Grid is a dense n-dimensional array of float64.
type Grid struct {
	shape  []int
	stride []int
	data   []float64
}

// New allocates a zeroed grid of the given extents (all ≥ 1).
func New(shape ...int) *Grid {
	if len(shape) == 0 {
		panic("grid: New needs at least one dimension")
	}
	for i, s := range shape {
		if s < 1 {
			panic(fmt.Sprintf("grid: extent[%d] = %d must be ≥ 1", i, s))
		}
	}
	g := &Grid{
		shape:  numutil.CopyInts(shape),
		stride: make([]int, len(shape)),
	}
	n := 1
	for i := len(shape) - 1; i >= 0; i-- {
		g.stride[i] = n
		n *= shape[i]
	}
	g.data = make([]float64, n)
	return g
}

// FromData wraps existing row-major data (not copied). len(data) must equal
// the product of the extents.
func FromData(data []float64, shape ...int) *Grid {
	g := New(shape...)
	if len(data) != len(g.data) {
		panic(fmt.Sprintf("grid: FromData: %d values for shape %v (need %d)", len(data), shape, len(g.data)))
	}
	g.data = data
	return g
}

// Shape returns the extents (a copy).
func (g *Grid) Shape() []int { return numutil.CopyInts(g.shape) }

// Dims returns the number of dimensions.
func (g *Grid) Dims() int { return len(g.shape) }

// Size returns the total element count.
func (g *Grid) Size() int { return len(g.data) }

// Data returns the underlying row-major storage (shared, not a copy).
func (g *Grid) Data() []float64 { return g.data }

// Offset returns the storage index of the element at idx.
func (g *Grid) Offset(idx ...int) int {
	if len(idx) != len(g.shape) {
		panic(fmt.Sprintf("grid: Offset: %d indices for %d-D grid", len(idx), len(g.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= g.shape[i] {
			panic(fmt.Sprintf("grid: index[%d] = %d out of range [0,%d)", i, x, g.shape[i]))
		}
		off += x * g.stride[i]
	}
	return off
}

// At returns the element at idx.
func (g *Grid) At(idx ...int) float64 { return g.data[g.Offset(idx...)] }

// Set stores v at idx.
func (g *Grid) Set(v float64, idx ...int) { g.data[g.Offset(idx...)] = v }

// Fill sets every element to v.
func (g *Grid) Fill(v float64) {
	for i := range g.data {
		g.data[i] = v
	}
}

// FillFunc sets every element to f(coordinates). The coordinate slice is
// reused between calls.
func (g *Grid) FillFunc(f func(idx []int) float64) {
	idx := make([]int, len(g.shape))
	for off := range g.data {
		numutil.CoordOf(off, g.shape, idx)
		g.data[off] = f(idx)
	}
}

// Clone returns a deep copy.
func (g *Grid) Clone() *Grid {
	c := New(g.shape...)
	copy(c.data, g.data)
	return c
}

// CopyFrom copies src's contents into g; shapes must match exactly.
func (g *Grid) CopyFrom(src *Grid) {
	if !numutil.EqualInts(g.shape, src.shape) {
		panic(fmt.Sprintf("grid: CopyFrom shape mismatch: %v vs %v", g.shape, src.shape))
	}
	copy(g.data, src.data)
}

// Rect is a hyper-rectangular region: the half-open intervals [Lo[i], Hi[i]).
type Rect struct {
	Lo, Hi []int
}

// RectOf builds a Rect; the slices are used as-is.
func RectOf(lo, hi []int) Rect { return Rect{Lo: lo, Hi: hi} }

// Shape returns the extents Hi−Lo of the region.
func (r Rect) Shape() []int {
	s := make([]int, len(r.Lo))
	for i := range s {
		s[i] = r.Hi[i] - r.Lo[i]
	}
	return s
}

// Size returns the element count of the region.
func (r Rect) Size() int {
	n := 1
	for i := range r.Lo {
		n *= r.Hi[i] - r.Lo[i]
	}
	return n
}

func (g *Grid) checkRect(r Rect) {
	if len(r.Lo) != len(g.shape) || len(r.Hi) != len(g.shape) {
		panic("grid: region rank mismatch")
	}
	for i := range r.Lo {
		if r.Lo[i] < 0 || r.Hi[i] > g.shape[i] || r.Lo[i] >= r.Hi[i] {
			panic(fmt.Sprintf("grid: region [%v,%v) invalid for shape %v", r.Lo, r.Hi, g.shape))
		}
	}
}

// Extract copies the region r of g into a freshly packed buffer (row-major
// within the region).
func (g *Grid) Extract(r Rect) []float64 {
	g.checkRect(r)
	out := make([]float64, 0, r.Size())
	g.eachRowOf(r, func(off, n int) {
		out = append(out, g.data[off:off+n]...)
	})
	return out
}

// Inject copies a packed buffer (as produced by Extract on a region of the
// same shape) into the region r of g.
func (g *Grid) Inject(r Rect, buf []float64) {
	g.checkRect(r)
	if len(buf) != r.Size() {
		panic(fmt.Sprintf("grid: Inject: buffer has %d values, region %v needs %d", len(buf), r, r.Size()))
	}
	pos := 0
	g.eachRowOf(r, func(off, n int) {
		copy(g.data[off:off+n], buf[pos:pos+n])
		pos += n
	})
}

// eachRowOf visits the contiguous innermost rows of region r as
// (storage offset, length) pairs, in row-major region order.
func (g *Grid) eachRowOf(r Rect, f func(off, n int)) {
	d := len(g.shape)
	last := d - 1
	rowLen := r.Hi[last] - r.Lo[last]
	if d == 1 {
		f(r.Lo[0]*g.stride[0], rowLen)
		return
	}
	outer := make([]int, 0, d-1)
	for i := 0; i < last; i++ {
		outer = append(outer, r.Hi[i]-r.Lo[i])
	}
	idx := make([]int, d-1)
	n := numutil.Prod(outer...)
	for k := 0; k < n; k++ {
		numutil.CoordOf(k, outer, idx)
		off := r.Lo[last] * g.stride[last]
		for i := 0; i < last; i++ {
			off += (r.Lo[i] + idx[i]) * g.stride[i]
		}
		f(off, rowLen)
	}
}

// Face returns the region of r's boundary hyperplane at the high end (side
// +1) or low end (side −1) of dimension dim: the slice of thickness 1.
func (r Rect) Face(dim, side int) Rect {
	lo := numutil.CopyInts(r.Lo)
	hi := numutil.CopyInts(r.Hi)
	if side > 0 {
		lo[dim] = r.Hi[dim] - 1
	} else {
		hi[dim] = r.Lo[dim] + 1
	}
	return Rect{Lo: lo, Hi: hi}
}

// Line is one 1-D line of a grid along some axis: a base storage offset, the
// stride between consecutive elements, and the length.
type Line struct {
	Base, Stride, N int
}

// Gather copies the line's elements from the grid into dst (len ≥ N).
func (g *Grid) Gather(l Line, dst []float64) {
	off := l.Base
	for i := 0; i < l.N; i++ {
		dst[i] = g.data[off]
		off += l.Stride
	}
}

// Scatter copies src (len ≥ N) into the line's elements.
func (g *Grid) Scatter(l Line, src []float64) {
	off := l.Base
	for i := 0; i < l.N; i++ {
		g.data[off] = src[i]
		off += l.Stride
	}
}

// EachLine visits every 1-D line of region r that runs along dimension dim,
// in row-major order of the orthogonal coordinates. Each line spans
// [r.Lo[dim], r.Hi[dim]).
func (g *Grid) EachLine(r Rect, dim int, f func(l Line)) {
	g.checkRect(r)
	d := len(g.shape)
	outer := make([]int, 0, d-1)
	dims := make([]int, 0, d-1)
	for i := 0; i < d; i++ {
		if i != dim {
			outer = append(outer, r.Hi[i]-r.Lo[i])
			dims = append(dims, i)
		}
	}
	n := numutil.Prod(outer...)
	idx := make([]int, len(outer))
	lineN := r.Hi[dim] - r.Lo[dim]
	for k := 0; k < n; k++ {
		numutil.CoordOf(k, outer, idx)
		base := r.Lo[dim] * g.stride[dim]
		for i, od := range dims {
			base += (r.Lo[od] + idx[i]) * g.stride[od]
		}
		f(Line{Base: base, Stride: g.stride[dim], N: lineN})
	}
}

// NumLines returns the number of lines along dim in region r.
func (g *Grid) NumLines(r Rect, dim int) int {
	n := 1
	for i := range g.shape {
		if i != dim {
			n *= r.Hi[i] - r.Lo[i]
		}
	}
	return n
}

// Bounds returns the region covering the whole grid.
func (g *Grid) Bounds() Rect {
	lo := make([]int, len(g.shape))
	return Rect{Lo: lo, Hi: numutil.CopyInts(g.shape)}
}

// Transpose returns a new grid whose axes are permuted: result index
// (i_perm[0], …) equals g index (i_0, …); that is, axis k of the result is
// axis perm[k] of g.
func (g *Grid) Transpose(perm []int) *Grid {
	d := len(g.shape)
	if len(perm) != d {
		panic("grid: Transpose: permutation rank mismatch")
	}
	seen := make([]bool, d)
	shape := make([]int, d)
	for k, a := range perm {
		if a < 0 || a >= d || seen[a] {
			panic(fmt.Sprintf("grid: Transpose: invalid permutation %v", perm))
		}
		seen[a] = true
		shape[k] = g.shape[a]
	}
	out := New(shape...)
	src := make([]int, d)
	dst := make([]int, d)
	for off := range g.data {
		numutil.CoordOf(off, g.shape, src)
		for k, a := range perm {
			dst[k] = src[a]
		}
		out.data[out.Offset(dst...)] = g.data[off]
	}
	return out
}

// MaxAbsDiff returns the maximum absolute elementwise difference between two
// grids of identical shape.
func MaxAbsDiff(a, b *Grid) float64 {
	if !numutil.EqualInts(a.shape, b.shape) {
		panic(fmt.Sprintf("grid: MaxAbsDiff shape mismatch: %v vs %v", a.shape, b.shape))
	}
	m := 0.0
	for i := range a.data {
		d := math.Abs(a.data[i] - b.data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of the grid's elements.
func (g *Grid) Norm2() float64 {
	s := 0.0
	for _, v := range g.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String summarizes the grid.
func (g *Grid) String() string {
	return fmt.Sprintf("grid%v", g.shape)
}

package grid

import (
	"math/rand"
	"testing"
)

func randomGrid(rng *rand.Rand, shape ...int) *Grid {
	g := New(shape...)
	data := g.Data()
	for i := range data {
		data[i] = rng.Float64()
	}
	return g
}

// TestAppendLinesMatchesEachLine: identical lines in identical order.
func TestAppendLinesMatchesEachLine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGrid(rng, 5, 7, 6)
	rects := []Rect{
		g.Bounds(),
		{Lo: []int{1, 2, 0}, Hi: []int{4, 5, 6}},
		{Lo: []int{0, 0, 3}, Hi: []int{1, 7, 4}},
	}
	for _, r := range rects {
		for dim := 0; dim < 3; dim++ {
			var want []Line
			g.EachLine(r, dim, func(l Line) { want = append(want, l) })
			got := g.AppendLines(r, dim, nil)
			if len(got) != len(want) {
				t.Fatalf("dim %d: %d lines, want %d", dim, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dim %d line %d: %+v != %+v", dim, i, got[i], want[i])
				}
			}
		}
	}
	// 1-D grid edge case.
	g1 := randomGrid(rng, 9)
	got := g1.AppendLines(g1.Bounds(), 0, nil)
	if len(got) != 1 || got[0] != (Line{Base: 0, Stride: 1, N: 9}) {
		t.Fatalf("1-D AppendLines: %+v", got)
	}
}

// TestGatherScatterLines: the panel equals per-line Gather, and
// ScatterLines restores the grid exactly, for every axis (stride-1 and
// strided line cases) and ragged batch sizes.
func TestGatherScatterLinesPanel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGrid(rng, 6, 5, 9)
	r := Rect{Lo: []int{1, 0, 2}, Hi: []int{6, 4, 9}}
	for dim := 0; dim < 3; dim++ {
		all := g.AppendLines(r, dim, nil)
		for _, nb := range []int{1, 3, len(all)} {
			lines := all[:nb]
			n := lines[0].N
			panel := make([]float64, n*nb)
			g.GatherLines(lines, panel)
			tmp := make([]float64, n)
			for b, l := range lines {
				g.Gather(l, tmp)
				for k := 0; k < n; k++ {
					if panel[k*nb+b] != tmp[k] {
						t.Fatalf("dim %d nb %d line %d elem %d: %v != %v", dim, nb, b, k, panel[k*nb+b], tmp[k])
					}
				}
			}
			// Perturb the panel, scatter, and check against per-line Scatter
			// on a clone.
			clone := g.Clone()
			for i := range panel {
				panel[i] += 1.0
			}
			g2 := g.Clone()
			g2.ScatterLines(lines, panel)
			for b, l := range lines {
				for k := 0; k < n; k++ {
					tmp[k] = panel[k*nb+b]
				}
				clone.Scatter(l, tmp)
			}
			if d := MaxAbsDiff(g2, clone); d != 0 {
				t.Fatalf("dim %d nb %d: ScatterLines differs from per-line Scatter by %v", dim, nb, d)
			}
			// Restore g for the next axis.
			for i := range panel {
				panel[i] -= 1.0
			}
			g.ScatterLines(lines, panel)
		}
	}
}

// TestExtractIntoInjectFrom: exact agreement with Extract/Inject.
func TestExtractIntoInjectFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range [][]int{{13}, {4, 6}, {5, 4, 7}, {3, 2, 4, 5}} {
		g := randomGrid(rng, shape...)
		r := g.Bounds()
		for i := range r.Lo {
			if r.Hi[i] > 2 {
				r.Lo[i] = 1
			}
		}
		want := g.Extract(r)
		got := make([]float64, r.Size())
		g.ExtractInto(r, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %v: ExtractInto[%d] = %v, want %v", shape, i, got[i], want[i])
			}
		}
		for i := range got {
			got[i] = rng.Float64()
		}
		g2 := g.Clone()
		g.Inject(r, got)
		g2.InjectFrom(r, got)
		if d := MaxAbsDiff(g, g2); d != 0 {
			t.Fatalf("shape %v: InjectFrom differs from Inject by %v", shape, d)
		}
	}
}

// TestPanelOpsZeroAllocs: the batched pack/unpack and region copies are
// inner-loop operations and must not allocate.
func TestPanelOpsZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGrid(rng, 8, 8, 8)
	r := Rect{Lo: []int{1, 1, 1}, Hi: []int{7, 7, 7}}
	lines := g.AppendLines(r, 1, nil)
	panel := make([]float64, lines[0].N*len(lines))
	buf := make([]float64, r.Size())
	linesBuf := lines[:0]
	allocs := testing.AllocsPerRun(10, func() {
		g.GatherLines(lines, panel)
		g.ScatterLines(lines, panel)
		g.ExtractInto(r, buf)
		g.InjectFrom(r, buf)
		linesBuf = g.AppendLines(r, 1, linesBuf[:0])
	})
	if allocs != 0 {
		t.Fatalf("panel ops allocate %v per run, want 0", allocs)
	}
}

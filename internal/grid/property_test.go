package grid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"genmp/internal/numutil"
)

func TestExtractInjectQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		d := 1 + r.Intn(4)
		shape := make([]int, d)
		for i := range shape {
			shape[i] = 1 + r.Intn(6)
		}
		g := New(shape...)
		g.FillFunc(func([]int) float64 { return rng.Float64() })
		lo := make([]int, d)
		hi := make([]int, d)
		for i := range shape {
			lo[i] = r.Intn(shape[i])
			hi[i] = lo[i] + 1 + r.Intn(shape[i]-lo[i])
		}
		rect := RectOf(lo, hi)
		buf := g.Extract(rect)
		h := g.Clone()
		h.Inject(rect, buf)
		return MaxAbsDiff(g, h) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGatherScatterQuickRoundTrip(t *testing.T) {
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		d := 1 + r.Intn(3)
		shape := make([]int, d)
		for i := range shape {
			shape[i] = 2 + r.Intn(5)
		}
		g := New(shape...)
		g.FillFunc(func([]int) float64 { return r.Float64() })
		orig := g.Clone()
		dim := r.Intn(d)
		buf := make([]float64, shape[dim])
		g.EachLine(g.Bounds(), dim, func(l Line) {
			g.Gather(l, buf)
			g.Scatter(l, buf)
		})
		return MaxAbsDiff(g, orig) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTransposeQuickInverse(t *testing.T) {
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		d := 2 + r.Intn(3)
		shape := make([]int, d)
		for i := range shape {
			shape[i] = 1 + r.Intn(5)
		}
		g := New(shape...)
		g.FillFunc(func([]int) float64 { return r.Float64() })
		// Random permutation and its inverse.
		perm := make([]int, d)
		for i := range perm {
			perm[i] = i
		}
		r.Shuffle(d, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		inv := make([]int, d)
		for k, a := range perm {
			inv[a] = k
		}
		back := g.Transpose(perm).Transpose(inv)
		return numutil.EqualInts(back.Shape(), g.Shape()) && MaxAbsDiff(g, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLineCountQuickMatchesGeometry(t *testing.T) {
	f := func(seed uint32) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		d := 1 + r.Intn(4)
		shape := make([]int, d)
		total := 1
		for i := range shape {
			shape[i] = 1 + r.Intn(5)
			total *= shape[i]
		}
		g := New(shape...)
		for dim := 0; dim < d; dim++ {
			count := 0
			g.EachLine(g.Bounds(), dim, func(l Line) {
				if l.N != shape[dim] {
					count = -1 << 30
				}
				count++
			})
			if count != total/shape[dim] || count != g.NumLines(g.Bounds(), dim) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

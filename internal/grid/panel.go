package grid

import "fmt"

// This file is the packing side of the batched sweep path: a block of lines
// is gathered into a structure-of-arrays panel (element k of line b at
// dst[k*nb+b]) so the solver's inner loop runs stride-1 across lines, then
// scattered back. Pack/unpack is the only place that touches the grid's
// strided storage, and it is written to move whole cache lines: when the
// lines themselves are contiguous (sweep along the last axis) the copy is a
// blocked transpose; when the lines are strided, consecutive lines are
// usually adjacent in memory, so iterating lines innermost makes both the
// read and the write streams contiguous.

// Panel-transpose tile sizes: ptK rows × ptB lines keeps the strided side
// of the copy inside L1 while the contiguous side streams.
const (
	ptK = 64
	ptB = 16
)

// maxOdoDims is the rank handled by the allocation-free odometer loops;
// higher-rank grids take the (allocating) closure path.
const maxOdoDims = 8

// checkPanel validates a batch of lines against a panel buffer and returns
// the common line length.
func checkPanel(lines []Line, panel []float64) int {
	n := lines[0].N
	for _, l := range lines {
		if l.N != n {
			panic(fmt.Sprintf("grid: panel lines of unequal length (%d vs %d)", l.N, n))
		}
	}
	if len(panel) != n*len(lines) {
		panic(fmt.Sprintf("grid: panel buffer has %d values, %d lines × %d need %d",
			len(panel), len(lines), n, n*len(lines)))
	}
	return n
}

// GatherLines packs a block of equal-length lines into a structure-of-arrays
// panel: dst[k*len(lines)+b] = element k of lines[b]. The copy is
// cache-blocked; len(dst) must be lines[0].N * len(lines).
func (g *Grid) GatherLines(lines []Line, dst []float64) {
	nb := len(lines)
	if nb == 0 {
		return
	}
	n := checkPanel(lines, dst)
	if lines[0].Stride == 1 {
		// Contiguous lines, strided panel rows: a blocked transpose. The
		// inner copy reads one line segment sequentially and spreads it
		// over ptK panel rows that stay resident in L1.
		for k0 := 0; k0 < n; k0 += ptK {
			k1 := min(k0+ptK, n)
			for b0 := 0; b0 < nb; b0 += ptB {
				b1 := min(b0+ptB, nb)
				for b := b0; b < b1; b++ {
					src := g.data[lines[b].Base+k0 : lines[b].Base+k1]
					for i, v := range src {
						dst[(k0+i)*nb+b] = v
					}
				}
			}
		}
		return
	}
	// Strided lines: consecutive lines of a sweep block are (near-)adjacent
	// in memory, so with lines innermost the reads walk consecutive
	// addresses and the writes are exactly sequential.
	for k := 0; k < n; k++ {
		row := dst[k*nb : (k+1)*nb]
		for b := range row {
			l := lines[b]
			row[b] = g.data[l.Base+k*l.Stride]
		}
	}
}

// ScatterLines unpacks a structure-of-arrays panel (as filled by
// GatherLines) back into the lines.
func (g *Grid) ScatterLines(lines []Line, src []float64) {
	nb := len(lines)
	if nb == 0 {
		return
	}
	n := checkPanel(lines, src)
	if lines[0].Stride == 1 {
		for k0 := 0; k0 < n; k0 += ptK {
			k1 := min(k0+ptK, n)
			for b0 := 0; b0 < nb; b0 += ptB {
				b1 := min(b0+ptB, nb)
				for b := b0; b < b1; b++ {
					dst := g.data[lines[b].Base+k0 : lines[b].Base+k1]
					for i := range dst {
						dst[i] = src[(k0+i)*nb+b]
					}
				}
			}
		}
		return
	}
	for k := 0; k < n; k++ {
		row := src[k*nb : (k+1)*nb]
		for b, v := range row {
			l := lines[b]
			g.data[l.Base+k*l.Stride] = v
		}
	}
}

// AppendLines appends every line of region r along dim to dst and returns
// the extended slice — the same lines in the same row-major orthogonal
// order as EachLine, but without per-call closure or coordinate
// allocations, so executors can keep a reusable []Line.
func (g *Grid) AppendLines(r Rect, dim int, dst []Line) []Line {
	g.checkRect(r)
	d := len(g.shape)
	if d > maxOdoDims {
		g.EachLine(r, dim, func(l Line) { dst = append(dst, l) })
		return dst
	}
	lineN := r.Hi[dim] - r.Lo[dim]
	stride := g.stride[dim]
	base := 0
	for i := range g.shape {
		base += r.Lo[i] * g.stride[i]
	}
	var idx [maxOdoDims]int
	for {
		dst = append(dst, Line{Base: base, Stride: stride, N: lineN})
		// Odometer over the orthogonal dims, last varying fastest.
		i := d - 1
		for ; i >= 0; i-- {
			if i == dim {
				continue
			}
			idx[i]++
			base += g.stride[i]
			if idx[i] < r.Hi[i]-r.Lo[i] {
				break
			}
			base -= idx[i] * g.stride[i]
			idx[i] = 0
		}
		if i < 0 {
			return dst
		}
	}
}

// ExtractInto copies region r of g into dst (row-major within the region,
// the Extract layout) without allocating. len(dst) must be r.Size().
func (g *Grid) ExtractInto(r Rect, dst []float64) {
	g.checkRect(r)
	if len(dst) != r.Size() {
		panic(fmt.Sprintf("grid: ExtractInto: buffer has %d values, region needs %d", len(dst), r.Size()))
	}
	d := len(g.shape)
	if d > maxOdoDims {
		pos := 0
		g.eachRowOf(r, func(off, n int) {
			copy(dst[pos:pos+n], g.data[off:off+n])
			pos += n
		})
		return
	}
	last := d - 1
	rowLen := r.Hi[last] - r.Lo[last]
	off := 0
	for i := range r.Lo {
		off += r.Lo[i] * g.stride[i]
	}
	var idx [maxOdoDims]int
	pos := 0
	for {
		copy(dst[pos:pos+rowLen], g.data[off:off+rowLen])
		pos += rowLen
		i := last - 1
		for ; i >= 0; i-- {
			idx[i]++
			off += g.stride[i]
			if idx[i] < r.Hi[i]-r.Lo[i] {
				break
			}
			off -= idx[i] * g.stride[i]
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// InjectFrom copies a packed buffer (the Extract layout) into region r of g
// without allocating. len(src) must be r.Size().
func (g *Grid) InjectFrom(r Rect, src []float64) {
	g.checkRect(r)
	if len(src) != r.Size() {
		panic(fmt.Sprintf("grid: InjectFrom: buffer has %d values, region needs %d", len(src), r.Size()))
	}
	d := len(g.shape)
	if d > maxOdoDims {
		pos := 0
		g.eachRowOf(r, func(off, n int) {
			copy(g.data[off:off+n], src[pos:pos+n])
			pos += n
		})
		return
	}
	last := d - 1
	rowLen := r.Hi[last] - r.Lo[last]
	off := 0
	for i := range r.Lo {
		off += r.Lo[i] * g.stride[i]
	}
	var idx [maxOdoDims]int
	pos := 0
	for {
		copy(g.data[off:off+rowLen], src[pos:pos+rowLen])
		pos += rowLen
		i := last - 1
		for ; i >= 0; i-- {
			idx[i]++
			off += g.stride[i]
			if idx[i] < r.Hi[i]-r.Lo[i] {
				break
			}
			off -= idx[i] * g.stride[i]
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

package redist

import (
	"strings"
	"testing"
)

// movePlan compiles a fresh valid KindMove plan for corruption.
func movePlan(t *testing.T) *Plan {
	t.Helper()
	return mustCompile(t, Spec{
		From: mustBlock(t, 4, []int{12, 10}, 0),
		To:   mustBlock(t, 4, []int{12, 10}, 1),
	})
}

// haloPlan compiles a fresh valid KindHalo plan for corruption.
func haloPlan(t *testing.T) *Plan {
	t.Helper()
	ml := mustMulti(t, 4, []int{4, 4, 1}, []int{8, 8, 8})
	pl, err := CompileHalo(HaloSpec{M: ml.Multipartitioning(), Eta: ml.Eta(), Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("halo plan fails Validate before corruption: %v", err)
	}
	return pl
}

func wantValidateError(t *testing.T, pl *Plan, substr string) {
	t.Helper()
	err := pl.Validate()
	if err == nil {
		t.Fatalf("Validate accepted a plan that should fail with %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("Validate error %q does not mention %q", err, substr)
	}
}

// One failing input per Validate check, mirroring the plan-IR tests.

func TestValidateShapeBadMoveBytes(t *testing.T) {
	pl := movePlan(t)
	pl.Steps[0].Sends[0][0].Bytes++
	wantValidateError(t, pl, "carries")
}

func TestValidateShapeMisfiledSelfMove(t *testing.T) {
	pl := movePlan(t)
	m := pl.Steps[0].Sends[1][0]
	m.To = m.From
	pl.Steps[0].Sends[1][0] = m
	wantValidateError(t, pl, "self-move")
}

func TestValidateRankOutsideDistributions(t *testing.T) {
	pl := movePlan(t)
	// Point a receive at a rank that exists in neither world.
	mv := pl.Steps[0].Recvs[2][0]
	mv.From = pl.FromP + 3
	pl.Steps[0].Recvs[2][0] = mv
	pl.Steps[0].Recvs[2] = pl.Steps[0].Recvs[2][:1]
	wantValidateError(t, pl, "not in either distribution")
}

func TestValidateAsymmetricBytes(t *testing.T) {
	pl := movePlan(t)
	// Drop one expected receive: the matching send now has no receiver.
	for q := 0; q < pl.P; q++ {
		if len(pl.Steps[0].Recvs[q]) > 0 {
			pl.Steps[0].Recvs[q] = pl.Steps[0].Recvs[q][1:]
			break
		}
	}
	wantValidateError(t, pl, "byte-count symmetry violated")
}

func TestValidateExchangeDescriptorMismatch(t *testing.T) {
	pl := haloPlan(t)
	pl.Steps[0].Exch[0].SendBytes++
	wantValidateError(t, pl, "declares")
}

func TestValidateTagOutsideReservation(t *testing.T) {
	pl := haloPlan(t)
	for q := range pl.Steps[0].Exch {
		pl.Steps[0].Exch[q].Tag = pl.Tags.Base() + pl.Tags.Size() + 7
	}
	wantValidateError(t, pl, "outside reservation")
}

func TestValidateOverlappingTags(t *testing.T) {
	ml := mustMulti(t, 2, []int{2, 2, 1}, []int{8, 8, 8})
	pl, err := CompileHalo(HaloSpec{M: ml.Multipartitioning(), Eta: ml.Eta(), Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Reuse step 0's tag in step 1: same rank, same peer (γ = 2 makes both
	// directions meet the same neighbor), same direction — a collision the
	// simulator could mis-match.
	for q := range pl.Steps[1].Exch {
		pl.Steps[1].Exch[q].Tag = pl.Steps[0].Exch[q].Tag
	}
	wantValidateError(t, pl, "tag overlap")
}

func TestValidateVolumeNotConserved(t *testing.T) {
	pl := movePlan(t)
	// Lose a local copy: wire symmetry still holds, volume does not.
	for q := 0; q < pl.P; q++ {
		if len(pl.Steps[0].Locals[q]) > 0 {
			pl.Steps[0].Locals[q] = pl.Steps[0].Locals[q][:0]
			break
		}
	}
	wantValidateError(t, pl, "volume not conserved")
}

func TestValidatePeakUnderdeclared(t *testing.T) {
	pl := movePlan(t)
	pl.PeakBytes = 1
	wantValidateError(t, pl, "above the declared peak")
}

func TestValidatePeakOverBudget(t *testing.T) {
	pl := movePlan(t)
	pl.MaxBytes = pl.PeakBytes - 1
	wantValidateError(t, pl, "exceeds the staging budget")
}

// TestValidateMetrics: validation outcomes land in the registry.
func TestValidateMetrics(t *testing.T) {
	reg := newTestRegistry(t)
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	pl := mustCompile(t, Spec{
		From: mustBlock(t, 2, []int{4, 4}, 0),
		To:   mustBlock(t, 2, []int{4, 4}, 1),
	})
	pl.PeakBytes = 0
	if err := pl.Validate(); err == nil {
		t.Fatal("corrupted plan validated")
	}
	if got := counterValue(t, reg, "redist_validations_total", "", ""); got != 2 {
		t.Fatalf("redist_validations_total = %d, want 2", got)
	}
	if got := counterValue(t, reg, "redist_validation_failures_total", "", ""); got != 1 {
		t.Fatalf("redist_validation_failures_total = %d, want 1", got)
	}
	if got := counterValue(t, reg, "redist_compiles_total", "kind", "move"); got != 1 {
		t.Fatalf("redist_compiles_total{kind=move} = %d, want 1", got)
	}
}

// TestSplitMoveTooSmall: a budget below one element is a compile error, not
// an infinite recursion.
func TestSplitMoveTooSmall(t *testing.T) {
	_, err := Compile(Spec{
		From:     mustBlock(t, 2, []int{4, 4}, 0),
		To:       mustBlock(t, 2, []int{4, 4}, 1),
		NGrids:   2,
		MaxBytes: 8, // half-budget 4 < one 16-byte element pair
	})
	if err == nil {
		t.Fatal("impossible budget accepted")
	}
	if !strings.Contains(err.Error(), "cannot hold") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// Package redist is the generalized redistribution engine: a planner that
// compiles an arbitrary distribution→distribution move — BLOCK↔MULTI,
// different tile grids, different rank sets — into a schedule of sim
// collectives, plus the executor that runs it in model-only or real-data
// mode. The two historical bespoke paths are special cases: the dynamic
// block transpose is a BLOCK(dim a)→BLOCK(dim b) redistribution lowered
// onto one AllToAll, and both halo exchanges (dist, dmem) are shifted
// partial redistributions lowered onto neighbor Exchange steps. Their
// wrappers re-emit through Compile/CompileHalo and replay the legacy
// schedules bit for bit.
//
// A Plan mirrors the plan.SweepPlan IR one layer up: per-rank send/recv
// slab schedules with exact byte counts, Validate-checked invariants (rank
// membership, byte symmetry, tag discipline, volume conservation, peak
// bound), a deterministic Fingerprint, and a peak-memory accountant that
// chunks oversized moves into rounds so no rank ever stages more than
// Spec.MaxBytes at once — the portable-collectives discipline from Rink et
// al. applied to the paper's distributions.
package redist

import (
	"fmt"
	"strings"
	"sync"

	"genmp/internal/grid"
	"genmp/internal/xport"
)

// Op is the collective primitive a Step lowers onto.
type Op string

const (
	// OpAllToAll is a personalized total exchange round: every rank ships
	// each peer the intersection of its source regions with the peer's
	// target regions.
	OpAllToAll Op = "alltoall"
	// OpExchange is a neighbor exchange: one aggregated message each way
	// between the single upstream and downstream peers (the halo pattern,
	// legal because of the paper's neighbor property).
	OpExchange Op = "exchange"
)

// Kind distinguishes the two schedule families the planner emits.
type Kind string

const (
	// KindMove is a full redistribution: every element of the array moves
	// from its source owner to its target owner (possibly to itself).
	KindMove Kind = "move"
	// KindHalo is a partial redistribution: only boundary faces move, into
	// shadow copies adjacent to the receiving tiles.
	KindHalo Kind = "halo"
)

// Move is one contiguous slab transfer: the global region Rect travels from
// source rank From to target rank To. FromCoord/ToCoord are the owning tile
// coordinates within the respective layouts (nil for slab layouts) — the
// hook a storage binding uses to locate the region in per-tile memory.
type Move struct {
	From, To int
	Rect     grid.Rect
	// Bytes is the modeled wire size: Rect.Size() × 8 × NGrids.
	Bytes              int
	FromCoord, ToCoord []int
}

// Exch is one rank's descriptor of an OpExchange step: the single
// downstream and upstream peers, the message tag, and the aggregated byte
// counts each way.
type Exch struct {
	Dst, Src             int
	Tag                  int
	SendBytes, RecvBytes int
}

// Step is one synchronized round of the schedule. Sends[q] lists rank q's
// outgoing wire moves in deterministic order (the packing order of the
// payload), Recvs[q] its incoming moves in unpacking order, Locals[q] the
// self-moves that never touch the wire. Exch is per-rank metadata for
// OpExchange steps (nil otherwise).
type Step struct {
	Op Op
	// Dim / Dir annotate OpExchange steps with the halo dimension and
	// direction (±1); −1 / 0 for OpAllToAll.
	Dim, Dir int
	// Round is the chunk-round index of an OpAllToAll step (0 when the
	// accountant left the move whole).
	Round                int
	Sends, Recvs, Locals [][]Move
	Exch                 []Exch
}

// Plan is a compiled redistribution: the schedule every rank executes and
// every consumer (executor, cost fold, obs dump, metrics audit) reads.
type Plan struct {
	Kind Kind
	// P is the world size the executor runs under: max(FromP, ToP). Ranks
	// in [FromP, P) only receive; ranks in [ToP, P) only send.
	P          int
	FromP, ToP int
	From, To   string
	Eta        []int
	NGrids     int
	// Depth is the halo width of a KindHalo plan (0 otherwise).
	Depth int
	// Tags is the reservation every Exch tag falls in.
	Tags xport.TagSpace
	// MaxBytes is the accountant's per-rank staging budget (0 = unbounded:
	// the whole move runs in one round).
	MaxBytes int
	// PeakBytes is the accountant's declared bound: the largest number of
	// bytes any rank stages at once executing this plan (send and recv
	// payloads of a round combined, and any single local copy). Validate
	// checks the schedule against it; Execute reports the observed peak.
	PeakBytes int
	Steps     []Step

	fpOnce sync.Once
	fp     string
}

// SendSizes returns rank q's per-peer wire byte counts for one step, as an
// AllToAll sizes vector of length n (n ≥ Plan.P; extra entries stay 0 so a
// plan can run inside a larger machine). Self traffic is local and stays 0.
func (pl *Plan) SendSizes(q, step, n int) []int {
	sizes := make([]int, n)
	for _, m := range pl.Steps[step].Sends[q] {
		sizes[m.To] += m.Bytes
	}
	return sizes
}

// WireBytes returns the total bytes the plan puts on the wire (all steps,
// all ranks; locals excluded).
func (pl *Plan) WireBytes() int {
	t := 0
	for _, st := range pl.Steps {
		for q := range st.Sends {
			for _, m := range st.Sends[q] {
				t += m.Bytes
			}
		}
	}
	return t
}

// WireMessages returns the number of point-to-point payloads the schedule
// itself aggregates moves into: one per (rank, peer) pair per OpAllToAll
// round, one per rank per OpExchange step. (Collective algorithms may
// split or merge these on the actual wire.)
func (pl *Plan) WireMessages() int {
	n := 0
	for si := range pl.Steps {
		st := &pl.Steps[si]
		if st.Op == OpExchange {
			for q := range st.Exch {
				if st.Exch[q].SendBytes > 0 {
					n++
				}
			}
			continue
		}
		for q := range st.Sends {
			peers := map[int]bool{}
			for _, m := range st.Sends[q] {
				peers[m.To] = true
			}
			n += len(peers)
		}
	}
	return n
}

// TotalBytes returns every moved byte including local copies — the volume
// conservation side of the Validate check.
func (pl *Plan) TotalBytes() int {
	t := pl.WireBytes()
	for _, st := range pl.Steps {
		for q := range st.Locals {
			for _, m := range st.Locals[q] {
				t += m.Bytes
			}
		}
	}
	return t
}

// Fingerprint renders the executable schedule deterministically; two plans
// with equal fingerprints execute byte-identical schedules. Memoized — a
// compiled plan is immutable.
func (pl *Plan) Fingerprint() string {
	pl.fpOnce.Do(func() { pl.fp = pl.fingerprint() })
	return pl.fp
}

func (pl *Plan) fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kind=%s p=%d from=%s[%d] to=%s[%d] eta=%v ngrids=%d depth=%d tags=%s[%d,+%d) max=%d peak=%d\n",
		pl.Kind, pl.P, pl.From, pl.FromP, pl.To, pl.ToP, pl.Eta, pl.NGrids, pl.Depth,
		pl.Tags.Name(), pl.Tags.Base(), pl.Tags.Size(), pl.MaxBytes, pl.PeakBytes)
	for si := range pl.Steps {
		st := &pl.Steps[si]
		fmt.Fprintf(&sb, "step%d op=%s dim=%d dir=%d round=%d\n", si, st.Op, st.Dim, st.Dir, st.Round)
		for q := 0; q < pl.P; q++ {
			if st.Exch != nil {
				e := st.Exch[q]
				fmt.Fprintf(&sb, " q%d dst=%d src=%d tag=%d send=%dB recv=%dB\n", q, e.Dst, e.Src, e.Tag, e.SendBytes, e.RecvBytes)
			}
			writeMoves(&sb, "s", st.Sends[q])
			writeMoves(&sb, "r", st.Recvs[q])
			writeMoves(&sb, "l", st.Locals[q])
		}
	}
	return sb.String()
}

func writeMoves(sb *strings.Builder, label string, moves []Move) {
	for _, m := range moves {
		fmt.Fprintf(sb, "  %s %d->%d lo=%v hi=%v %dB fc=%v tc=%v\n",
			label, m.From, m.To, m.Rect.Lo, m.Rect.Hi, m.Bytes, m.FromCoord, m.ToCoord)
	}
}

// Summary renders a one-paragraph human description — the CLI preamble.
func (pl *Plan) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "redistribution plan: %s → %s, eta=%v, %d grid(s), kind=%s\n",
		pl.From, pl.To, pl.Eta, pl.NGrids, pl.Kind)
	fmt.Fprintf(&sb, "  %d step(s), %d wire bytes in %d aggregated message(s), peak %d bytes/rank",
		len(pl.Steps), pl.WireBytes(), pl.WireMessages(), pl.PeakBytes)
	if pl.MaxBytes > 0 {
		fmt.Fprintf(&sb, " (budget %d)", pl.MaxBytes)
	}
	sb.WriteString("\n")
	return sb.String()
}

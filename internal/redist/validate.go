package redist

import (
	"fmt"

	"genmp/internal/numutil"
)

// Validate checks the structural invariants the executor, the cost fold and
// the byte audit rely on, failing with the first violated one:
//
//   - shape: a positive world, per-step move tables sized to it, every
//     move's byte count agreeing with its region and NGrids, wire moves
//     filed under their own sender and receiver, locals truly local;
//   - rank membership: every move's source rank lives in the source
//     distribution's world and its target rank in the target's — a rank in
//     neither world cannot own the data it claims to ship;
//   - byte symmetry: for every ordered rank pair the bytes sent must equal
//     the bytes expected, and OpExchange descriptors must agree with their
//     move tables;
//   - tag discipline: every exchange tag falls inside the plan's
//     reservation and no rank reuses a tag on the same channel (same peer,
//     same transfer direction) — the plan-IR rule extended to
//     redistribution phases;
//   - conservation (KindMove): the moved volume is exactly the array —
//     ∏η × 8 × NGrids bytes, locals included;
//   - peak bound: no rank's staged bytes in any step exceed the declared
//     PeakBytes, and PeakBytes respects MaxBytes when a budget was set.
func (pl *Plan) Validate() (err error) {
	defer func() { countValidate(err) }()
	if err := pl.validateShape(); err != nil {
		return err
	}
	if err := pl.validateRanks(); err != nil {
		return err
	}
	if err := pl.validateSymmetry(); err != nil {
		return err
	}
	if err := pl.validateTags(); err != nil {
		return err
	}
	if err := pl.validateConservation(); err != nil {
		return err
	}
	return pl.validatePeak()
}

func (pl *Plan) validateShape() error {
	if pl.P < 1 || pl.FromP < 1 || pl.ToP < 1 {
		return fmt.Errorf("redist: invalid world sizes p=%d from=%d to=%d", pl.P, pl.FromP, pl.ToP)
	}
	if pl.P != numutil.MaxInt(pl.FromP, pl.ToP) {
		return fmt.Errorf("redist: world size %d is not max(from %d, to %d)", pl.P, pl.FromP, pl.ToP)
	}
	if pl.NGrids < 1 {
		return fmt.Errorf("redist: NGrids = %d must be ≥ 1", pl.NGrids)
	}
	for si := range pl.Steps {
		st := &pl.Steps[si]
		if len(st.Sends) != pl.P || len(st.Recvs) != pl.P || len(st.Locals) != pl.P {
			return fmt.Errorf("redist: step %d: move tables sized %d/%d/%d for %d ranks",
				si, len(st.Sends), len(st.Recvs), len(st.Locals), pl.P)
		}
		if st.Op == OpExchange && len(st.Exch) != pl.P {
			return fmt.Errorf("redist: step %d: %d exchange descriptors for %d ranks", si, len(st.Exch), pl.P)
		}
		for q := 0; q < pl.P; q++ {
			for _, m := range st.Sends[q] {
				if m.From != q {
					return fmt.Errorf("redist: step %d: rank %d's send table holds a move from rank %d", si, q, m.From)
				}
				if m.To == q {
					return fmt.Errorf("redist: step %d: rank %d files a self-move as a wire send", si, q)
				}
				if err := checkMoveBytes(si, m, pl.NGrids); err != nil {
					return err
				}
			}
			for _, m := range st.Recvs[q] {
				if m.To != q {
					return fmt.Errorf("redist: step %d: rank %d's recv table holds a move to rank %d", si, q, m.To)
				}
				if err := checkMoveBytes(si, m, pl.NGrids); err != nil {
					return err
				}
			}
			for _, m := range st.Locals[q] {
				if m.From != q || m.To != q {
					return fmt.Errorf("redist: step %d: rank %d's local table holds move %d→%d", si, q, m.From, m.To)
				}
				if err := checkMoveBytes(si, m, pl.NGrids); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func checkMoveBytes(step int, m Move, nGrids int) error {
	for i := range m.Rect.Lo {
		if m.Rect.Hi[i] <= m.Rect.Lo[i] {
			return fmt.Errorf("redist: step %d: move %d→%d has empty region (lo %v, hi %v)", step, m.From, m.To, m.Rect.Lo, m.Rect.Hi)
		}
	}
	if want := m.Rect.Size() * 8 * nGrids; m.Bytes != want {
		return fmt.Errorf("redist: step %d: move %d→%d carries %d bytes, want %d (%d elements × %d grids × 8)",
			step, m.From, m.To, m.Bytes, want, m.Rect.Size(), nGrids)
	}
	return nil
}

// validateRanks checks that every move's endpoints belong to the worlds
// that own the data: sources in [0, FromP), targets in [0, ToP).
func (pl *Plan) validateRanks() error {
	for si := range pl.Steps {
		st := &pl.Steps[si]
		check := func(m Move) error {
			if m.From < 0 || m.From >= pl.FromP {
				return fmt.Errorf("redist: step %d: move sources from rank %d, which is not in either distribution (source world has %d ranks)",
					si, m.From, pl.FromP)
			}
			if m.To < 0 || m.To >= pl.ToP {
				return fmt.Errorf("redist: step %d: move targets rank %d, which is not in either distribution (target world has %d ranks)",
					si, m.To, pl.ToP)
			}
			return nil
		}
		for q := 0; q < pl.P; q++ {
			for _, tbl := range [][]Move{st.Sends[q], st.Recvs[q], st.Locals[q]} {
				for _, m := range tbl {
					if err := check(m); err != nil {
						return err
					}
				}
			}
			if st.Op == OpExchange {
				e := st.Exch[q]
				if e.Dst < 0 || e.Dst >= pl.P || e.Src < 0 || e.Src >= pl.P {
					return fmt.Errorf("redist: step %d: rank %d exchanges with (%d, %d), which is not in either distribution (world has %d ranks)",
						si, q, e.Dst, e.Src, pl.P)
				}
			}
		}
	}
	return nil
}

// validateSymmetry pairs every sender's traffic with its receiver's
// expectation, per step and per ordered rank pair.
func (pl *Plan) validateSymmetry() error {
	for si := range pl.Steps {
		st := &pl.Steps[si]
		type pair struct{ from, to int }
		sent := map[pair]int{}
		expect := map[pair]int{}
		for q := 0; q < pl.P; q++ {
			for _, m := range st.Sends[q] {
				sent[pair{m.From, m.To}] += m.Bytes
			}
			for _, m := range st.Recvs[q] {
				expect[pair{m.From, m.To}] += m.Bytes
			}
		}
		for pr, b := range sent {
			if expect[pr] != b {
				return fmt.Errorf("redist: step %d: rank %d sends %d bytes to rank %d, which expects %d — byte-count symmetry violated",
					si, pr.from, b, pr.to, expect[pr])
			}
		}
		for pr, b := range expect {
			if _, ok := sent[pr]; !ok {
				return fmt.Errorf("redist: step %d: rank %d expects %d bytes from rank %d, which sends none — byte-count symmetry violated",
					si, pr.to, b, pr.from)
			}
		}
		if st.Op == OpExchange {
			for q := 0; q < pl.P; q++ {
				e := st.Exch[q]
				if got := sent[pair{q, e.Dst}]; e.SendBytes != got {
					return fmt.Errorf("redist: step %d: rank %d's exchange descriptor declares %d send bytes but its moves carry %d",
						si, q, e.SendBytes, got)
				}
				if got := expect[pair{e.Src, q}]; e.RecvBytes != got {
					return fmt.Errorf("redist: step %d: rank %d's exchange descriptor declares %d recv bytes but its moves expect %d",
						si, q, e.RecvBytes, got)
				}
			}
		}
	}
	return nil
}

// validateTags checks containment in the plan's reservation and per-channel
// uniqueness across the whole schedule: one rank must never post two sends
// to the same peer, or two receives from the same peer, under one tag.
func (pl *Plan) validateTags() error {
	type channel struct {
		rank, peer, tag int
		recv            bool
	}
	seen := map[channel]string{}
	for si := range pl.Steps {
		st := &pl.Steps[si]
		if st.Op != OpExchange {
			continue
		}
		for q := 0; q < pl.P; q++ {
			e := st.Exch[q]
			at := fmt.Sprintf("step %d rank %d", si, q)
			if !pl.Tags.Contains(e.Tag) {
				return fmt.Errorf("redist: %s: tag %d outside reservation %q [%d,+%d)",
					at, e.Tag, pl.Tags.Name(), pl.Tags.Base(), pl.Tags.Size())
			}
			s := channel{rank: q, peer: e.Dst, tag: e.Tag}
			if prev, dup := seen[s]; dup {
				return fmt.Errorf("redist: %s: send tag %d to rank %d already used by %s — tag overlap", at, e.Tag, e.Dst, prev)
			}
			seen[s] = at
			r := channel{rank: q, peer: e.Src, tag: e.Tag, recv: true}
			if prev, dup := seen[r]; dup {
				return fmt.Errorf("redist: %s: recv tag %d from rank %d already used by %s — tag overlap", at, e.Tag, e.Src, prev)
			}
			seen[r] = at
		}
	}
	return nil
}

// validateConservation checks that a full redistribution moves the array
// exactly once: wire and local bytes together equal ∏η × 8 × NGrids.
func (pl *Plan) validateConservation() error {
	if pl.Kind != KindMove {
		return nil
	}
	want := 8 * pl.NGrids
	for _, e := range pl.Eta {
		want *= e
	}
	if got := pl.TotalBytes(); got != want {
		return fmt.Errorf("redist: plan moves %d bytes but the array holds %d (%v × %d grids × 8) — volume not conserved",
			got, want, pl.Eta, pl.NGrids)
	}
	return nil
}

// validatePeak recomputes the accountant's bound from the schedule and
// checks the declaration: staged bytes (send + recv payloads of a step,
// and every single local copy) never exceed PeakBytes, and PeakBytes never
// exceeds the requested MaxBytes budget.
func (pl *Plan) validatePeak() error {
	for si := range pl.Steps {
		st := &pl.Steps[si]
		for q := 0; q < pl.P; q++ {
			staged := 0
			for _, m := range st.Sends[q] {
				staged += m.Bytes
			}
			for _, m := range st.Recvs[q] {
				staged += m.Bytes
			}
			if staged > pl.PeakBytes {
				return fmt.Errorf("redist: step %d: rank %d stages %d bytes, above the declared peak %d", si, q, staged, pl.PeakBytes)
			}
			for _, m := range st.Locals[q] {
				if m.Bytes > pl.PeakBytes {
					return fmt.Errorf("redist: step %d: rank %d's local copy of %d bytes is above the declared peak %d", si, q, m.Bytes, pl.PeakBytes)
				}
			}
		}
	}
	if pl.MaxBytes > 0 && pl.PeakBytes > pl.MaxBytes {
		return fmt.Errorf("redist: declared peak %d exceeds the staging budget MaxBytes = %d", pl.PeakBytes, pl.MaxBytes)
	}
	return nil
}

package redist

import (
	"testing"

	"genmp/internal/core"
	"genmp/internal/grid"
	"genmp/internal/obs/metrics"
	"genmp/internal/sim"
)

func testMachine(p int) *sim.Machine {
	return sim.NewMachine(p,
		sim.Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 1e-6, RecvOverhead: 1e-6},
		sim.CPU{FlopsPerSec: 250e6})
}

func mustBlock(t *testing.T, p int, eta []int, dim int) *BlockLayout {
	t.Helper()
	b, err := NewBlockLayout(p, eta, dim)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustMulti(t *testing.T, p int, gamma, eta []int) *MultiLayout {
	t.Helper()
	m, err := core.NewGeneralized(p, gamma)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := NewMultiLayout(m, eta)
	if err != nil {
		t.Fatal(err)
	}
	return ml
}

func mustCompile(t *testing.T, spec Spec) *Plan {
	t.Helper()
	pl, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("compiled plan fails its own Validate: %v", err)
	}
	return pl
}

// globalBinding backs a rank's moves with whole-array grids: Extract reads
// the move's global region from src, Inject writes it into dst. Target
// regions are disjoint across ranks, so concurrent rank goroutines never
// write the same element.
type globalBinding struct {
	src, dst *grid.Grid
}

func (b *globalBinding) Extract(m Move, dst []float64) { b.src.ExtractInto(m.Rect, dst) }
func (b *globalBinding) Inject(m Move, src []float64)  { b.dst.InjectFrom(m.Rect, src) }

// TestCompileBlockToBlock: the transpose special case — every byte of the
// array moves exactly once, and the per-peer send sizes agree with the
// closed-form slab intersection the legacy transpose computed.
func TestCompileBlockToBlock(t *testing.T) {
	eta := []int{12, 10, 8}
	p := 4
	pl := mustCompile(t, Spec{
		From: mustBlock(t, p, eta, 0),
		To:   mustBlock(t, p, eta, 1),
	})
	if len(pl.Steps) != 1 || pl.Steps[0].Op != OpAllToAll {
		t.Fatalf("block→block plan has %d steps, want one OpAllToAll", len(pl.Steps))
	}
	want := eta[0] * eta[1] * eta[2] * 8
	if got := pl.TotalBytes(); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
	// Closed form: rank q sends its dim-0 slab cut by rank d's dim-1 slab.
	ortho := eta[2]
	for q := 0; q < p; q++ {
		sizes := pl.SendSizes(q, 0, p)
		qlo, qhi := core.BlockRange(eta[0], p, q)
		for d := 0; d < p; d++ {
			if d == q {
				if sizes[d] != 0 {
					t.Fatalf("rank %d self size = %d, want 0", q, sizes[d])
				}
				continue
			}
			dlo, dhi := core.BlockRange(eta[1], p, d)
			if want := (qhi - qlo) * (dhi - dlo) * ortho * 8; sizes[d] != want {
				t.Fatalf("rank %d → %d: %d bytes, want %d", q, d, sizes[d], want)
			}
		}
	}
}

// TestCompileRejects: structural spec errors are reported, not compiled.
func TestCompileRejects(t *testing.T) {
	eta := []int{8, 8}
	b0 := mustBlock(t, 4, eta, 0)
	if _, err := Compile(Spec{From: b0}); err == nil {
		t.Error("nil To accepted")
	}
	if _, err := Compile(Spec{From: b0, To: mustBlock(t, 4, []int{8, 8, 8}, 1)}); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := Compile(Spec{From: b0, To: mustBlock(t, 4, []int{8, 10}, 1)}); err == nil {
		t.Error("extent mismatch accepted")
	}
	if _, err := Compile(Spec{From: b0, To: mustBlock(t, 4, eta, 1), NGrids: -1}); err == nil {
		t.Error("negative NGrids accepted")
	}
}

// TestBlockMultiRoundTrip is the acceptance scenario: a BLOCK↔MULTI
// round trip between different rank sets (12-rank block, 8-rank multi) on a
// 12-rank machine, real data, a staging budget forcing the accountant to
// chunk. The array must come back exactly, every rank's observed staging
// peak must respect the plan's declared bound, and the metrics registry
// must account for every wire byte.
func TestBlockMultiRoundTrip(t *testing.T) {
	eta := []int{24, 8, 8}
	from := mustBlock(t, 12, eta, 0)
	to := mustMulti(t, 8, []int{4, 4, 2}, eta)

	const budget = 1024
	fwd := mustCompile(t, Spec{From: from, To: to, MaxBytes: budget})
	bwd := mustCompile(t, Spec{From: to, To: from, MaxBytes: budget})
	if fwd.P != 12 || fwd.FromP != 12 || fwd.ToP != 8 {
		t.Fatalf("world sizes %d/%d/%d, want 12/12/8", fwd.P, fwd.FromP, fwd.ToP)
	}
	if fwd.PeakBytes > budget {
		t.Fatalf("declared peak %d exceeds budget %d", fwd.PeakBytes, budget)
	}
	if len(fwd.Steps) < 2 {
		t.Fatalf("budget %d left the move in %d round(s), expected chunking", budget, len(fwd.Steps))
	}

	src := grid.New(eta...)
	src.FillFunc(func(idx []int) float64 {
		return float64(1 + idx[0] + 100*idx[1] + 10000*idx[2])
	})
	mid := grid.New(eta...)
	back := grid.New(eta...)

	stats := make([]ExecStats, 12)
	_, err := testMachine(12).Run(func(r *sim.Rank) {
		s1 := Execute(r, fwd, ExecOpts{Bind: &globalBinding{src: src, dst: mid}})
		r.BeginPhase("back")
		s2 := Execute(r, bwd, ExecOpts{Bind: &globalBinding{src: mid, dst: back}})
		stats[r.ID] = ExecStats{
			SentBytes:  s1.SentBytes + s2.SentBytes,
			RecvdBytes: s1.RecvdBytes + s2.RecvdBytes,
			LocalBytes: s1.LocalBytes + s2.LocalBytes,
			Messages:   s1.Messages + s2.Messages,
			PeakBytes:  maxInt(s1.PeakBytes, s2.PeakBytes),
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	if d := grid.MaxAbsDiff(src, mid); d != 0 {
		t.Fatalf("block→multi corrupted the array (max diff %g)", d)
	}
	if d := grid.MaxAbsDiff(src, back); d != 0 {
		t.Fatalf("round trip corrupted the array (max diff %g)", d)
	}
	sent, local := 0, 0
	for q, s := range stats {
		sent += s.SentBytes
		local += s.LocalBytes
		if s.PeakBytes > maxInt(fwd.PeakBytes, bwd.PeakBytes) {
			t.Fatalf("rank %d staged %d bytes, above both declared peaks", q, s.PeakBytes)
		}
	}
	if want := fwd.WireBytes() + bwd.WireBytes(); sent != want {
		t.Fatalf("ranks sent %d wire bytes, plans declare %d", sent, want)
	}
	if want := fwd.TotalBytes() + bwd.TotalBytes() - fwd.WireBytes() - bwd.WireBytes(); local != want {
		t.Fatalf("ranks copied %d local bytes, plans declare %d", local, want)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func newTestRegistry(t *testing.T) *metrics.Registry {
	t.Helper()
	return metrics.New()
}

// counterValue reads one counter from a snapshot; labelKey == "" matches
// the unlabeled instrument.
func counterValue(t *testing.T, reg *metrics.Registry, name, labelKey, labelVal string) int64 {
	t.Helper()
	for _, pt := range reg.Snapshot().Points {
		if pt.Name != name {
			continue
		}
		if labelKey == "" && len(pt.Labels) == 0 {
			return int64(pt.Value)
		}
		for _, l := range pt.Labels {
			if l.Key == labelKey && l.Value == labelVal {
				return int64(pt.Value)
			}
		}
	}
	t.Fatalf("counter %s{%s=%s} not found", name, labelKey, labelVal)
	return 0
}

// TestExecuteMetrics: the registry counters account for exactly the bytes
// and messages the plan declares.
func TestExecuteMetrics(t *testing.T) {
	eta := []int{16, 16}
	pl := mustCompile(t, Spec{From: mustBlock(t, 4, eta, 0), To: mustBlock(t, 4, eta, 1)})

	reg := newTestRegistry(t)
	EnableMetrics(reg)
	defer EnableMetrics(nil)

	if _, err := testMachine(4).Run(func(r *sim.Rank) {
		Execute(r, pl, ExecOpts{})
	}); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, reg, "redist_bytes_total", "path", "wire"); got != int64(pl.WireBytes()) {
		t.Fatalf("redist_bytes_total{path=wire} = %d, want %d", got, pl.WireBytes())
	}
	if got := counterValue(t, reg, "redist_messages_total", "", ""); got != int64(pl.WireMessages()) {
		t.Fatalf("redist_messages_total = %d, want %d", got, pl.WireMessages())
	}
	if got := counterValue(t, reg, "redist_executions_total", "", ""); got != 4 {
		t.Fatalf("redist_executions_total = %d, want 4", got)
	}
}

// TestFingerprintDeterministic: two identical compilations render the same
// schedule; a different budget renders a different one.
func TestFingerprintDeterministic(t *testing.T) {
	spec := Spec{From: mustBlock(t, 4, []int{12, 12}, 0), To: mustBlock(t, 4, []int{12, 12}, 1)}
	a := mustCompile(t, spec)
	b := mustCompile(t, spec)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical specs compiled to different fingerprints")
	}
	spec.MaxBytes = 1024
	c := mustCompile(t, spec)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("chunked plan shares the unchunked fingerprint")
	}
}

// TestCompileHaloShape: steps come out in the legacy order (dimension
// ascending over cut dimensions, +1 before −1), tags in the given space,
// and per-direction bytes symmetric.
func TestCompileHaloShape(t *testing.T) {
	ml := mustMulti(t, 4, []int{4, 4, 1}, []int{12, 12, 12})
	pl, err := CompileHalo(HaloSpec{M: ml.Multipartitioning(), Eta: ml.Eta(), Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("halo plan fails Validate: %v", err)
	}
	if len(pl.Steps) != 4 {
		t.Fatalf("%d steps, want 4 (dims 0 and 1, two directions)", len(pl.Steps))
	}
	wantDims := []int{0, 0, 1, 1}
	wantDirs := []int{1, -1, 1, -1}
	for i, st := range pl.Steps {
		if st.Op != OpExchange || st.Dim != wantDims[i] || st.Dir != wantDirs[i] {
			t.Fatalf("step %d = (%s, dim %d, dir %d), want (exchange, %d, %d)",
				i, st.Op, st.Dim, st.Dir, wantDims[i], wantDirs[i])
		}
	}
}

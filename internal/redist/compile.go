package redist

import (
	"fmt"

	"genmp/internal/core"
	"genmp/internal/grid"
	"genmp/internal/numutil"
	"genmp/internal/plan"
	"genmp/internal/xport"
)

// Spec is the input of Compile: a full source→target redistribution.
type Spec struct {
	// From / To are the two distributions. Their Eta must agree; their
	// rank counts may differ (the plan's world is the larger one).
	From, To Layout
	// NGrids is how many same-shape arrays move together (0 picks 1).
	NGrids int
	// MaxBytes is the peak-memory accountant's per-rank staging budget:
	// the bytes a rank may hold in send and receive payloads of one round
	// combined. Oversized moves are split along their largest extent and
	// the rounds packed greedily. 0 disables chunking (one round).
	MaxBytes int
	// Tags is unused by OpAllToAll schedules (the collective brings its
	// own space) but recorded for Validate; the zero value picks
	// plan.RedistTags.
	Tags xport.TagSpace
}

// HaloSpec is the input of CompileHalo: the stencil boundary exchange of a
// multipartitioning, expressed as a partial redistribution.
type HaloSpec struct {
	// M is the multipartitioning whose tile faces move.
	M *core.Multipartitioning
	// Eta is the global array extents.
	Eta []int
	// Depth is the halo width in elements.
	Depth int
	// NGrids is how many arrays exchange together (0 picks 1).
	NGrids int
	// Tags is the tag space of the per-direction messages; the zero value
	// picks plan.RedistTags. The dist and dmem wrappers pass their legacy
	// spaces so historical tag values are preserved.
	Tags xport.TagSpace
}

// intersect returns the overlap of two rects and whether it is non-empty.
func intersect(a, b grid.Rect) (grid.Rect, bool) {
	d := len(a.Lo)
	lo := make([]int, d)
	hi := make([]int, d)
	for i := 0; i < d; i++ {
		lo[i] = numutil.MaxInt(a.Lo[i], b.Lo[i])
		hi[i] = numutil.MinInt(a.Hi[i], b.Hi[i])
		if lo[i] >= hi[i] {
			return grid.Rect{}, false
		}
	}
	return grid.RectOf(lo, hi), true
}

// Compile builds the full redistribution schedule of spec: every source
// region is intersected with every target region, the overlaps become
// Moves (self-overlaps become local copies that never touch the wire), and
// the accountant packs the wire moves into OpAllToAll rounds that respect
// MaxBytes. The result is deterministic in the spec.
func Compile(spec Spec) (pl *Plan, err error) {
	defer func() { countCompile(KindMove, err) }()
	if spec.From == nil || spec.To == nil {
		return nil, fmt.Errorf("redist: Compile: From and To layouts are required")
	}
	fromEta, toEta := spec.From.Eta(), spec.To.Eta()
	if len(fromEta) != len(toEta) {
		return nil, fmt.Errorf("redist: Compile: source rank %d does not match target rank %d", len(fromEta), len(toEta))
	}
	for i := range fromEta {
		if fromEta[i] != toEta[i] {
			return nil, fmt.Errorf("redist: Compile: extents differ at dim %d: source %d, target %d", i, fromEta[i], toEta[i])
		}
	}
	nGrids := spec.NGrids
	if nGrids == 0 {
		nGrids = 1
	}
	if nGrids < 0 {
		return nil, fmt.Errorf("redist: Compile: NGrids = %d must be ≥ 1", nGrids)
	}
	tags := spec.Tags
	if tags.Size() == 0 {
		tags = plan.RedistTags
	}
	fromP, toP := spec.From.P(), spec.To.P()
	p := numutil.MaxInt(fromP, toP)

	pl = &Plan{
		Kind: KindMove, P: p, FromP: fromP, ToP: toP,
		From: spec.From.Name(), To: spec.To.Name(),
		Eta: fromEta, NGrids: nGrids, Tags: tags, MaxBytes: spec.MaxBytes,
	}

	// Enumerate every overlap in deterministic order: source ranks
	// ascending, source regions in canonical order, target ranks ascending,
	// target regions in canonical order. This is also the payload packing
	// order on both sides.
	var wire, locals []Move
	for qs := 0; qs < fromP; qs++ {
		for _, rs := range spec.From.Regions(qs) {
			for qt := 0; qt < toP; qt++ {
				for _, rt := range spec.To.Regions(qt) {
					inter, ok := intersect(rs.Rect, rt.Rect)
					if !ok {
						continue
					}
					mv := Move{
						From: qs, To: qt, Rect: inter,
						Bytes:     inter.Size() * 8 * nGrids,
						FromCoord: rs.Coord, ToCoord: rt.Coord,
					}
					if qs == qt {
						locals = append(locals, mv)
					} else {
						wire = append(wire, mv)
					}
				}
			}
		}
	}
	if err := pl.packRounds(wire, locals, nGrids); err != nil {
		return nil, err
	}
	return pl, nil
}

// splitMove halves a move along its largest extent until every piece is at
// most limit bytes, appending the pieces in index order (deterministic).
// Returns an error when even a single element exceeds the limit.
func splitMove(m Move, limit, nGrids int, out []Move) ([]Move, error) {
	if m.Bytes <= limit {
		return append(out, m), nil
	}
	dim, ext := -1, 1
	for i := range m.Rect.Lo {
		if e := m.Rect.Hi[i] - m.Rect.Lo[i]; e > ext {
			dim, ext = i, e
		}
	}
	if dim < 0 {
		return nil, fmt.Errorf("redist: MaxBytes = %d cannot hold one %d-byte element (%d grids)", limit, m.Bytes, nGrids)
	}
	mid := m.Rect.Lo[dim] + ext/2
	lo, hi := m, m
	lo.Rect = grid.RectOf(numutil.CopyInts(m.Rect.Lo), numutil.CopyInts(m.Rect.Hi))
	hi.Rect = grid.RectOf(numutil.CopyInts(m.Rect.Lo), numutil.CopyInts(m.Rect.Hi))
	lo.Rect.Hi[dim] = mid
	hi.Rect.Lo[dim] = mid
	lo.Bytes = lo.Rect.Size() * 8 * nGrids
	hi.Bytes = hi.Rect.Size() * 8 * nGrids
	out, err := splitMove(lo, limit, nGrids, out)
	if err != nil {
		return nil, err
	}
	return splitMove(hi, limit, nGrids, out)
}

// packRounds runs the peak-memory accountant: split wire moves so each fits
// in half the budget (a move occupies both its sender's and its receiver's
// staging), then greedily pack them into rounds so no rank's combined
// send+recv staging exceeds MaxBytes. Locals are split to the budget and
// copied one at a time through a scratch buffer, so only the largest piece
// counts toward the peak. With MaxBytes = 0 everything lands in one round.
func (pl *Plan) packRounds(wire, locals []Move, nGrids int) error {
	maxLocal := 0
	if pl.MaxBytes > 0 {
		var err error
		split := make([]Move, 0, len(wire))
		for _, m := range wire {
			if split, err = splitMove(m, pl.MaxBytes/2, nGrids, split); err != nil {
				return err
			}
		}
		wire = split
		splitL := make([]Move, 0, len(locals))
		for _, m := range locals {
			if splitL, err = splitMove(m, pl.MaxBytes, nGrids, splitL); err != nil {
				return err
			}
		}
		locals = splitL
	}
	for _, m := range locals {
		maxLocal = numutil.MaxInt(maxLocal, m.Bytes)
	}

	// Greedy first-fit: walk moves in deterministic order, placing each in
	// the first round whose sender and receiver both stay within budget.
	var rounds [][]Move
	var loads [][]int // loads[r][q] = staged bytes of rank q in round r
	place := func(m Move) {
		for ri := range rounds {
			if pl.MaxBytes > 0 &&
				(loads[ri][m.From]+m.Bytes > pl.MaxBytes || loads[ri][m.To]+m.Bytes > pl.MaxBytes) {
				continue
			}
			rounds[ri] = append(rounds[ri], m)
			loads[ri][m.From] += m.Bytes
			loads[ri][m.To] += m.Bytes
			return
		}
		rounds = append(rounds, []Move{m})
		l := make([]int, pl.P)
		l[m.From] += m.Bytes
		l[m.To] += m.Bytes
		loads = append(loads, l)
	}
	for _, m := range wire {
		place(m)
	}
	if len(rounds) == 0 {
		rounds = append(rounds, nil)
		loads = append(loads, make([]int, pl.P))
	}

	peak := maxLocal
	for ri, moves := range rounds {
		st := Step{
			Op: OpAllToAll, Dim: -1, Round: ri,
			Sends:  make([][]Move, pl.P),
			Recvs:  make([][]Move, pl.P),
			Locals: make([][]Move, pl.P),
		}
		for _, m := range moves {
			st.Sends[m.From] = append(st.Sends[m.From], m)
			st.Recvs[m.To] = append(st.Recvs[m.To], m)
		}
		if ri == 0 {
			for _, m := range locals {
				st.Locals[m.From] = append(st.Locals[m.From], m)
			}
		}
		for q := 0; q < pl.P; q++ {
			peak = numutil.MaxInt(peak, loads[ri][q])
		}
		pl.Steps = append(pl.Steps, st)
	}
	pl.PeakBytes = peak
	return nil
}

// CompileHalo builds the stencil boundary exchange of a multipartitioning
// as a KindHalo plan: per dimension with more than one cut, per direction,
// one OpExchange step whose moves are the faces of every tile with an
// in-grid neighbor that way, in canonical tile order — exactly the
// schedule the dist and dmem runtimes historically hand-built, so their
// wrappers replay it bit for bit. Send moves carry the in-tile face region;
// recv moves carry the shadow region just outside the receiving tile.
func CompileHalo(spec HaloSpec) (pl *Plan, err error) {
	defer func() { countCompile(KindHalo, err) }()
	if spec.M == nil {
		return nil, fmt.Errorf("redist: CompileHalo: nil multipartitioning")
	}
	d := spec.M.Dims()
	if len(spec.Eta) != d {
		return nil, fmt.Errorf("redist: CompileHalo: array rank %d does not match partitioning rank %d", len(spec.Eta), d)
	}
	if spec.Depth < 1 {
		return nil, fmt.Errorf("redist: CompileHalo: depth = %d must be ≥ 1", spec.Depth)
	}
	nGrids := spec.NGrids
	if nGrids == 0 {
		nGrids = 1
	}
	if nGrids < 0 {
		return nil, fmt.Errorf("redist: CompileHalo: NGrids = %d must be ≥ 1", nGrids)
	}
	tags := spec.Tags
	if tags.Size() == 0 {
		tags = plan.RedistTags
	}
	p := spec.M.P()
	gamma := spec.M.Gamma()
	pl = &Plan{
		Kind: KindHalo, P: p, FromP: p, ToP: p,
		From: fmt.Sprintf("multi(%s,p=%d)", spec.M.Name(), p),
		To:   fmt.Sprintf("multi(%s,p=%d)+halo(%d)", spec.M.Name(), p, spec.Depth),
		Eta:  numutil.CopyInts(spec.Eta), NGrids: nGrids, Depth: spec.Depth, Tags: tags,
	}
	peak := 0
	for dim := 0; dim < d; dim++ {
		if gamma[dim] == 1 {
			continue // no cuts: nothing to exchange along this dimension
		}
		for s, step := range []int{1, -1} {
			st := Step{
				Op: OpExchange, Dim: dim, Dir: step,
				Sends:  make([][]Move, p),
				Recvs:  make([][]Move, p),
				Locals: make([][]Move, p),
				Exch:   make([]Exch, p),
			}
			for q := 0; q < p; q++ {
				st.Exch[q] = Exch{
					Dst: spec.M.NeighborProc(q, dim, step),
					Src: spec.M.NeighborProc(q, dim, -step),
					Tag: tags.Tag(dim*2 + s),
				}
			}
			for q := 0; q < p; q++ {
				dst := st.Exch[q].Dst
				for _, tile := range spec.M.TilesOf(q) {
					lo, hi := spec.M.TileBounds(spec.Eta, tile)
					// Send: the face of width Depth inside the tile on the
					// step side, when an in-grid neighbor exists that way.
					if n := tile[dim] + step; n >= 0 && n < gamma[dim] {
						flo, fhi := numutil.CopyInts(lo), numutil.CopyInts(hi)
						if step > 0 {
							flo[dim] = fhi[dim] - spec.Depth
						} else {
							fhi[dim] = flo[dim] + spec.Depth
						}
						nt := numutil.CopyInts(tile)
						nt[dim] += step
						rect := grid.RectOf(flo, fhi)
						mv := Move{
							From: q, To: dst, Rect: rect,
							Bytes:     rect.Size() * 8 * nGrids,
							FromCoord: numutil.CopyInts(tile), ToCoord: nt,
						}
						st.Sends[q] = append(st.Sends[q], mv)
						st.Exch[q].SendBytes += mv.Bytes
					}
					// Recv: the shadow shell of width Depth just outside the
					// tile on the −step side, filled from the neighbor there.
					if n := tile[dim] - step; n >= 0 && n < gamma[dim] {
						slo, shi := numutil.CopyInts(lo), numutil.CopyInts(hi)
						if step > 0 {
							shi[dim] = slo[dim]
							slo[dim] -= spec.Depth
						} else {
							slo[dim] = shi[dim]
							shi[dim] += spec.Depth
						}
						nt := numutil.CopyInts(tile)
						nt[dim] -= step
						rect := grid.RectOf(slo, shi)
						mv := Move{
							From: st.Exch[q].Src, To: q, Rect: rect,
							Bytes:     rect.Size() * 8 * nGrids,
							FromCoord: nt, ToCoord: numutil.CopyInts(tile),
						}
						st.Recvs[q] = append(st.Recvs[q], mv)
						st.Exch[q].RecvBytes += mv.Bytes
					}
				}
				peak = numutil.MaxInt(peak, st.Exch[q].SendBytes+st.Exch[q].RecvBytes)
			}
			pl.Steps = append(pl.Steps, st)
		}
	}
	pl.PeakBytes = peak
	return pl, nil
}

package redist

import (
	"fmt"

	"genmp/internal/core"
	"genmp/internal/grid"
	"genmp/internal/numutil"
)

// Region is one contiguous piece of a layout: the global index region a
// rank owns, with the owning tile's coordinate when the layout is tiled
// (nil for slab layouts).
type Region struct {
	Coord []int
	Rect  grid.Rect
}

// Layout describes one side of a redistribution: a set of ranks, each
// owning a list of disjoint regions that together cover [0, Eta).
type Layout interface {
	// P is the number of ranks in this layout's world.
	P() int
	// Eta is the global array extents.
	Eta() []int
	// Name identifies the layout in dumps and error messages.
	Name() string
	// Regions returns rank q's owned regions in canonical order.
	Regions(q int) []Region
}

// BlockLayout is the paper's BLOCK distribution: one dimension cut into P
// contiguous slabs (core.BlockRange remainder spreading), one per rank.
type BlockLayout struct {
	p   int
	eta []int
	dim int
}

// NewBlockLayout builds a BLOCK layout along dim.
func NewBlockLayout(p int, eta []int, dim int) (*BlockLayout, error) {
	if p < 1 {
		return nil, fmt.Errorf("redist: BlockLayout: p = %d must be ≥ 1", p)
	}
	if dim < 0 || dim >= len(eta) {
		return nil, fmt.Errorf("redist: BlockLayout: dim %d out of range for rank %d", dim, len(eta))
	}
	if eta[dim] < p {
		return nil, fmt.Errorf("redist: BlockLayout: extent η[%d] = %d smaller than p = %d", dim, eta[dim], p)
	}
	return &BlockLayout{p: p, eta: numutil.CopyInts(eta), dim: dim}, nil
}

// P returns the number of slabs.
func (b *BlockLayout) P() int { return b.p }

// Eta returns the global extents.
func (b *BlockLayout) Eta() []int { return numutil.CopyInts(b.eta) }

// Dim returns the partitioned dimension.
func (b *BlockLayout) Dim() int { return b.dim }

// Name identifies the layout.
func (b *BlockLayout) Name() string { return fmt.Sprintf("block(dim=%d,p=%d)", b.dim, b.p) }

// Regions returns rank q's single slab.
func (b *BlockLayout) Regions(q int) []Region {
	lo := make([]int, len(b.eta))
	hi := numutil.CopyInts(b.eta)
	lo[b.dim], hi[b.dim] = core.BlockRange(b.eta[b.dim], b.p, q)
	return []Region{{Rect: grid.RectOf(lo, hi)}}
}

// MultiLayout is the paper's MULTI distribution: a generalized
// multipartitioning's tile grid, each rank owning its TilesOf set.
type MultiLayout struct {
	m   *core.Multipartitioning
	eta []int
}

// NewMultiLayout builds a MULTI layout from a multipartitioning.
func NewMultiLayout(m *core.Multipartitioning, eta []int) (*MultiLayout, error) {
	if m == nil {
		return nil, fmt.Errorf("redist: MultiLayout: nil multipartitioning")
	}
	if len(eta) != m.Dims() {
		return nil, fmt.Errorf("redist: MultiLayout: array rank %d does not match partitioning rank %d", len(eta), m.Dims())
	}
	gamma := m.Gamma()
	for i, e := range eta {
		if e < gamma[i] {
			return nil, fmt.Errorf("redist: MultiLayout: extent η[%d] = %d smaller than cut count γ[%d] = %d", i, e, i, gamma[i])
		}
	}
	return &MultiLayout{m: m, eta: numutil.CopyInts(eta)}, nil
}

// P returns the partitioning's processor count.
func (ml *MultiLayout) P() int { return ml.m.P() }

// Eta returns the global extents.
func (ml *MultiLayout) Eta() []int { return numutil.CopyInts(ml.eta) }

// Name identifies the layout.
func (ml *MultiLayout) Name() string {
	return fmt.Sprintf("multi(%s,p=%d)", ml.m.Name(), ml.m.P())
}

// Multipartitioning returns the underlying partitioning.
func (ml *MultiLayout) Multipartitioning() *core.Multipartitioning { return ml.m }

// Regions returns rank q's tiles in canonical (row-major) order.
func (ml *MultiLayout) Regions(q int) []Region {
	tiles := ml.m.TilesOf(q)
	out := make([]Region, len(tiles))
	for i, tile := range tiles {
		lo, hi := ml.m.TileBounds(ml.eta, tile)
		out[i] = Region{Coord: numutil.CopyInts(tile), Rect: grid.RectOf(lo, hi)}
	}
	return out
}

// Live metrics bridge for the redistribution engine. EnableMetrics mirrors
// compilation, validation and execution activity into an
// obs/metrics.Registry; disabled (the default) every entry point pays one
// atomic load and nothing else.
package redist

import (
	"sync/atomic"

	"genmp/internal/obs/metrics"
)

type redistMetrics struct {
	reg            *metrics.Registry
	compilesMove   *metrics.Counter
	compilesHalo   *metrics.Counter
	compileErrors  *metrics.Counter
	validations    *metrics.Counter
	validationFail *metrics.Counter
	executions     *metrics.Counter
	wireBytes      *metrics.Counter
	localBytes     *metrics.Counter
	messages       *metrics.Counter
}

var redistMetricsPtr atomic.Pointer[redistMetrics]

// EnableMetrics mirrors redistribution-engine activity into reg (nil
// disables).
func EnableMetrics(reg *metrics.Registry) {
	if reg == nil {
		redistMetricsPtr.Store(nil)
		return
	}
	rm := &redistMetrics{
		reg:            reg,
		compilesMove:   reg.Counter("redist_compiles_total", "successful redistribution compilations, by schedule kind", metrics.L("kind", "move")),
		compilesHalo:   reg.Counter("redist_compiles_total", "successful redistribution compilations, by schedule kind", metrics.L("kind", "halo")),
		compileErrors:  reg.Counter("redist_compile_errors_total", "redistribution compilations rejected with an error"),
		validations:    reg.Counter("redist_validations_total", "redist Plan.Validate calls"),
		validationFail: reg.Counter("redist_validation_failures_total", "redist Plan.Validate calls that found a violation"),
		executions:     reg.Counter("redist_executions_total", "per-rank Execute calls of a compiled redistribution plan"),
		wireBytes:      reg.Counter("redist_bytes_total", "bytes moved executing redistribution plans, by path", metrics.L("path", "wire")),
		localBytes:     reg.Counter("redist_bytes_total", "bytes moved executing redistribution plans, by path", metrics.L("path", "local")),
		messages:       reg.Counter("redist_messages_total", "aggregated point-to-point payloads sent executing redistribution plans"),
	}
	redistMetricsPtr.Store(rm)
}

// countCompile records one Compile/CompileHalo outcome.
func countCompile(kind Kind, err error) {
	rm := redistMetricsPtr.Load()
	if rm == nil {
		return
	}
	if err != nil {
		rm.compileErrors.Inc()
		return
	}
	if kind == KindHalo {
		rm.compilesHalo.Inc()
	} else {
		rm.compilesMove.Inc()
	}
}

// countValidate records one Plan.Validate outcome.
func countValidate(err error) {
	rm := redistMetricsPtr.Load()
	if rm == nil {
		return
	}
	rm.validations.Inc()
	if err != nil {
		rm.validationFail.Inc()
	}
}

// countExecute records one per-rank Execute: the bytes that rank put on
// the wire, the bytes it copied locally, and the payloads it sent.
func countExecute(wire, local, msgs int) {
	rm := redistMetricsPtr.Load()
	if rm == nil {
		return
	}
	rm.executions.Inc()
	rm.wireBytes.Add(int64(wire))
	rm.localBytes.Add(int64(local))
	rm.messages.Add(int64(msgs))
}

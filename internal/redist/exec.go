package redist

import (
	"fmt"

	"genmp/internal/numutil"
	"genmp/internal/xport"
)

// Binding locates a Move's data in one rank's storage. Extract packs the
// move's region into dst (len = Rect.Size() × NGrids, row-major, grids
// outermost); Inject unpacks src into the region. A nil Binding runs the
// plan model-only: full virtual-time accounting, no payloads.
type Binding interface {
	Extract(m Move, dst []float64)
	Inject(m Move, src []float64)
}

// ExecOpts tunes one Execute call.
type ExecOpts struct {
	// Coll selects the collective algorithm for OpAllToAll steps (AlgAuto
	// defers to the machine default and then to the legacy pairwise walk).
	Coll xport.Alg
	// PerMessage is the per-message CPU overhead bracketing every
	// constituent send and receive, as the historical paths charged.
	PerMessage float64
	// Bind locates move data in the caller's storage; nil runs model-only.
	Bind Binding
	// Preposted holds receive requests from an earlier PostRecvs over the
	// same plan (halo pipelining across timesteps, DESIGN.md §14): each
	// OpExchange step waits its preposted request instead of issuing a
	// blocking receive. nil falls back to the blocking exchange. The slice
	// must come from PostRecvs(r, pl) with the same rank and plan.
	Preposted []xport.Request
}

// PostRecvs posts nonblocking receives for every OpExchange step of the
// plan, in schedule order, and returns the requests for a later Execute
// with ExecOpts.Preposted. Waiting is free until the matching sends are
// posted and the requests are waited (Irecv costs nothing at post
// time), so preposting across a compute region is timing-neutral in
// virtual time while exercising the real MPI-style discipline. Returns nil
// for ranks outside the plan's world or plans with no exchange steps.
func PostRecvs(t xport.Transport, pl *Plan) []xport.Request {
	if t.Rank() >= pl.P {
		return nil
	}
	var reqs []xport.Request
	for si := range pl.Steps {
		step := &pl.Steps[si]
		if step.Op != OpExchange {
			continue
		}
		e := step.Exch[t.Rank()]
		reqs = append(reqs, t.Irecv(e.Src, e.Tag))
	}
	return reqs
}

// ExecStats is one rank's accounting of one Execute call.
type ExecStats struct {
	// SentBytes / RecvdBytes are the modeled wire bytes this rank shipped
	// and received; LocalBytes the bytes it copied without touching the
	// wire.
	SentBytes, RecvdBytes, LocalBytes int
	// Messages is the number of aggregated payloads this rank sent (one per
	// peer per OpAllToAll round, one per OpExchange step with traffic).
	Messages int
	// PeakBytes is the largest number of bytes this rank staged at once —
	// always within Plan.PeakBytes, which Validate guarantees globally.
	PeakBytes int
}

// Execute replays a compiled plan on one rank, lowering each step onto the
// sim collective it names. Every rank of the machine must call Execute with
// the same plan and options (OpAllToAll steps are machine-wide); ranks
// outside the plan's world contribute zero-byte vectors. The schedule —
// operation order, message sizes, tags, per-message overhead bracketing —
// reproduces the historical hand-built paths bit for bit when the plan came
// from their wrappers.
func Execute(t xport.Transport, pl *Plan, o ExecOpts) ExecStats {
	q := t.Rank()
	var st ExecStats
	exch := 0
	for si := range pl.Steps {
		step := &pl.Steps[si]
		switch step.Op {
		case OpExchange:
			var pre xport.Request
			if exch < len(o.Preposted) {
				pre = o.Preposted[exch]
			}
			exch++
			execExchange(t, pl, step, q, o, &st, pre)
		default:
			execAllToAll(t, pl, step, si, q, o, &st)
		}
	}
	countExecute(st.SentBytes, st.LocalBytes, st.Messages)
	return st
}

func execAllToAll(t xport.Transport, pl *Plan, step *Step, si, q int, o ExecOpts, st *ExecStats) {
	var sends, recvs, locals []Move
	if q < pl.P {
		sends, recvs, locals = step.Sends[q], step.Recvs[q], step.Locals[q]
	}
	// Local copies never touch the wire: one scratch buffer per move, so
	// only the largest piece counts toward the staging peak.
	for _, m := range locals {
		st.LocalBytes += m.Bytes
		st.PeakBytes = numutil.MaxInt(st.PeakBytes, m.Bytes)
		if o.Bind != nil {
			buf := t.GetPayload(m.Bytes / 8)
			o.Bind.Extract(m, buf)
			o.Bind.Inject(m, buf)
			t.PutPayload(buf)
		}
	}
	// The collective round. P == 1 plans have no wire traffic and skip it
	// entirely — the legacy single-rank transpose emitted nothing.
	if t.P() == 1 {
		return
	}
	var sizes []int
	if q < pl.P {
		sizes = pl.SendSizes(q, si, t.P())
	} else {
		sizes = make([]int, t.P())
	}
	staged := 0
	var data [][]float64
	if o.Bind != nil {
		data = make([][]float64, t.P())
		pos := make([]int, t.P())
		for _, m := range sends {
			if data[m.To] == nil {
				data[m.To] = t.GetPayload(sizes[m.To] / 8)
			}
			n := m.Bytes / 8
			o.Bind.Extract(m, data[m.To][pos[m.To]:pos[m.To]+n])
			pos[m.To] += n
		}
	}
	for _, m := range sends {
		st.SentBytes += m.Bytes
		staged += m.Bytes
	}
	for _, m := range recvs {
		st.RecvdBytes += m.Bytes
		staged += m.Bytes
	}
	st.PeakBytes = numutil.MaxInt(st.PeakBytes, staged)
	for _, n := range sizes {
		if n > 0 {
			st.Messages++
		}
	}
	out := t.AllToAll(sizes, data, xport.CollOpts{Alg: o.Coll, PerMessage: o.PerMessage})
	if o.Bind != nil {
		pos := make([]int, pl.P)
		for _, m := range recvs {
			n := m.Bytes / 8
			o.Bind.Inject(m, out[m.From][pos[m.From]:pos[m.From]+n])
			pos[m.From] += n
		}
		for src, buf := range out {
			if src != q && buf != nil {
				if pos[src] != len(buf) {
					panic(fmt.Sprintf("redist: rank %d consumed %d of %d words from rank %d", q, pos[src], len(buf), src))
				}
				t.PutPayload(buf)
			}
		}
	}
}

func execExchange(t xport.Transport, pl *Plan, step *Step, q int, o ExecOpts, st *ExecStats, pre xport.Request) {
	if q >= pl.P {
		return // exchanges are point-to-point among the plan's ranks
	}
	e := step.Exch[q]
	st.SentBytes += e.SendBytes
	st.RecvdBytes += e.RecvBytes
	if e.SendBytes > 0 {
		st.Messages++
	}
	st.PeakBytes = numutil.MaxInt(st.PeakBytes, e.SendBytes+e.RecvBytes)
	// exchange runs the step's wire traffic: the blocking Exchange, or —
	// with a preposted receive — the same send followed by waiting the
	// request, which performs the identical virtual-time arithmetic.
	exchange := func(m xport.Msg) xport.Msg {
		if pre == nil {
			return t.Exchange(e.Dst, e.Src, e.Tag, m, o.PerMessage)
		}
		t.Compute(o.PerMessage)
		t.Send(e.Dst, e.Tag, m)
		got := pre.Wait()
		t.Compute(o.PerMessage)
		return got
	}
	if o.Bind == nil {
		exchange(xport.Msg{Bytes: e.SendBytes})
		return
	}
	payload := t.GetPayload(e.SendBytes / 8)
	pos := 0
	for _, m := range step.Sends[q] {
		n := m.Bytes / 8
		o.Bind.Extract(m, payload[pos:pos+n])
		pos += n
	}
	got := exchange(xport.Msg{Payload: payload})
	pos = 0
	for _, m := range step.Recvs[q] {
		n := m.Bytes / 8
		o.Bind.Inject(m, got.Payload[pos:pos+n])
		pos += n
	}
	if pos != len(got.Payload) {
		panic(fmt.Sprintf("redist: rank %d consumed %d of %d words exchanging with rank %d", q, pos, len(got.Payload), e.Src))
	}
	t.PutPayload(got.Payload)
}

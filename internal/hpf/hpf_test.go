package hpf

import (
	"strings"
	"testing"

	"genmp/internal/numutil"
	"genmp/internal/partition"
)

const spProgram = `
      program sp
!HPF$ PROCESSORS P(12)
!HPF$ TEMPLATE T(102, 102, 102)
!HPF$ DISTRIBUTE T(MULTI, MULTI, MULTI) ONTO P
!HPF$ ALIGN U WITH T
!HPF$ ALIGN RHS WITH T
!HPF$ SHADOW U(2, 2, 2)
      end
`

func TestParseAndPlanMulti(t *testing.T) {
	d, err := Parse(spProgram)
	if err != nil {
		t.Fatal(err)
	}
	if d.Processors["P"].Size() != 12 {
		t.Errorf("P size = %d", d.Processors["P"].Size())
	}
	if !numutil.EqualInts(d.Templates["T"].Eta, []int{102, 102, 102}) {
		t.Errorf("template eta = %v", d.Templates["T"].Eta)
	}
	plan, err := d.PlanTemplate("T", nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Multi == nil {
		t.Fatal("expected a multipartitioned plan")
	}
	if plan.P != 12 {
		t.Errorf("plan P = %d", plan.P)
	}
	if err := plan.Multi.Verify(); err != nil {
		t.Errorf("planned mapping invalid: %v", err)
	}
	if !numutil.EqualInts(plan.ShadowWidths, []int{2, 2, 2}) {
		t.Errorf("shadow widths = %v", plan.ShadowWidths)
	}
	// Planning through an aligned array resolves to the template.
	plan2, err := d.PlanTemplate("RHS", nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Template.Name != "T" {
		t.Errorf("aligned plan template = %s", plan2.Template.Name)
	}
}

func TestMultiDimensionalProcessorsRejected(t *testing.T) {
	// The paper: the number of processors cannot be specified per dimension
	// for a multipartitioned template, so MULTI onto a multi-dimensional
	// arrangement is a plan error (not a silent collapse to the total).
	src := `
!HPF$ PROCESSORS GRID(4, 3)
!HPF$ TEMPLATE T(60, 60, 60)
!HPF$ DISTRIBUTE T(MULTI, MULTI, MULTI) ONTO GRID
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.PlanTemplate("T", nil)
	if err == nil {
		t.Fatal("MULTI onto a 2-D arrangement should fail to plan")
	}
	for _, want := range []string{"GRID", "per dimension", "GRID(12)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %q", err, want)
		}
	}
	// The same arrangement remains fine for a BLOCK distribution.
	src = `
!HPF$ PROCESSORS GRID(4, 3)
!HPF$ TEMPLATE B(60, 60, 60)
!HPF$ DISTRIBUTE B(BLOCK, *, *) ONTO GRID
`
	d, err = Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := d.PlanTemplate("B", nil)
	if err != nil {
		t.Fatal(err)
	}
	if bp.P != 12 || bp.BlockDim != 0 {
		t.Errorf("BLOCK plan = {P:%d BlockDim:%d}, want {12 0}", bp.P, bp.BlockDim)
	}
}

func TestPartialMulti(t *testing.T) {
	// MULTI on two of three dimensions: the third is collapsed (γ = 1),
	// like the 8×8×1 elementary partitionings.
	src := `
!HPF$ PROCESSORS P(8)
!HPF$ TEMPLATE T(64, 64, 16)
!HPF$ DISTRIBUTE T(MULTI, MULTI, *) ONTO P
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := d.PlanTemplate("T", nil)
	if err != nil {
		t.Fatal(err)
	}
	gamma := plan.Multi.Gamma()
	if gamma[2] != 1 {
		t.Errorf("collapsed dimension cut %d times", gamma[2])
	}
	if !numutil.EqualInts(numutil.SortedCopy(gamma), []int{1, 8, 8}) {
		t.Errorf("γ = %v, want 8×8×1 up to order", gamma)
	}
	if err := plan.Multi.Verify(); err != nil {
		t.Error(err)
	}
}

func TestPlanWithObjective(t *testing.T) {
	src := `
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(500, 500, 100)
!HPF$ DISTRIBUTE T(MULTI, MULTI, MULTI) ONTO P
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	obj := partition.VolumeObjective([]int{500, 500, 100})
	plan, err := d.PlanTemplate("T", &obj)
	if err != nil {
		t.Fatal(err)
	}
	// The skewed-domain remark through the HPF front end.
	if !numutil.EqualInts(plan.Multi.Gamma(), []int{4, 4, 1}) {
		t.Errorf("γ = %v, want [4 4 1]", plan.Multi.Gamma())
	}
}

func TestBlockPlan(t *testing.T) {
	src := `
!HPF$ PROCESSORS P(8)
!HPF$ TEMPLATE T(64, 32)
!HPF$ DISTRIBUTE T(BLOCK, *) ONTO P
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := d.PlanTemplate("T", nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Multi != nil || plan.BlockDim != 0 {
		t.Errorf("expected BLOCK plan on dim 0, got multi=%v blockDim=%d", plan.Multi, plan.BlockDim)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"align bad names", "!HPF$ TEMPLATE T(8)\n!HPF$ ALIGN 1A WITH T", "two names"},
		{"align duplicate", "!HPF$ TEMPLATE T(8)\n!HPF$ ALIGN A WITH T\n!HPF$ ALIGN A WITH T", "aligned twice"},
		{"shadow negative", "!HPF$ SHADOW A(-1)", "non-negative"},
		{"shadow duplicate", "!HPF$ SHADOW A(1)\n!HPF$ SHADOW A(2)", "SHADOW twice"},
		{"name underscore digit", "!HPF$ TEMPLATE _T9(8)\n!HPF$ TEMPLATE T-X(8)", "invalid name"},
		{"empty directive", "!HPF$   ", "empty directive"},
		{"template twice", "!HPF$ TEMPLATE T(8)\n!HPF$ TEMPLATE T(9)", "redeclared"},
		{"distribute twice", "!HPF$ PROCESSORS P(2)\n!HPF$ TEMPLATE T(8,8)\n!HPF$ DISTRIBUTE T(BLOCK, *) ONTO P\n!HPF$ DISTRIBUTE T(*, BLOCK) ONTO P", "distributed twice"},
		{"unknown directive", "!HPF$ FROBNICATE X(2)", "unknown directive"},
		{"cyclic", "!HPF$ PROCESSORS P(2)\n!HPF$ TEMPLATE T(8,8)\n!HPF$ DISTRIBUTE T(CYCLIC, *) ONTO P", "CYCLIC"},
		{"missing onto", "!HPF$ PROCESSORS P(2)\n!HPF$ TEMPLATE T(8,8)\n!HPF$ DISTRIBUTE T(BLOCK, *)", "ONTO"},
		{"undeclared template", "!HPF$ PROCESSORS P(2)\n!HPF$ DISTRIBUTE T(BLOCK) ONTO P", "undeclared template"},
		{"undeclared procs", "!HPF$ TEMPLATE T(8)\n!HPF$ DISTRIBUTE T(BLOCK) ONTO P", "undeclared processors"},
		{"bad extent", "!HPF$ TEMPLATE T(0)", "positive integer"},
		{"redeclared", "!HPF$ PROCESSORS P(2)\n!HPF$ PROCESSORS P(3)", "redeclared"},
		{"spec arity", "!HPF$ PROCESSORS P(2)\n!HPF$ TEMPLATE T(8,8)\n!HPF$ DISTRIBUTE T(BLOCK) ONTO P", "dimensions"},
		{"align undeclared", "!HPF$ ALIGN A WITH T", "undeclared template"},
		{"bad name", "!HPF$ TEMPLATE 9T(8)", "invalid name"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantSub)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	mustParse := func(src string) *Directives {
		d, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// MULTI on a single dimension cannot balance p > 1.
	d := mustParse("!HPF$ PROCESSORS P(4)\n!HPF$ TEMPLATE T(8, 8)\n!HPF$ DISTRIBUTE T(MULTI, *) ONTO P")
	if _, err := d.PlanTemplate("T", nil); err == nil {
		t.Error("single-dimension MULTI on p>1 should fail")
	}
	// Mixing MULTI and BLOCK is rejected.
	d = mustParse("!HPF$ PROCESSORS P(4)\n!HPF$ TEMPLATE T(8, 8, 8)\n!HPF$ DISTRIBUTE T(MULTI, MULTI, BLOCK) ONTO P")
	if _, err := d.PlanTemplate("T", nil); err == nil {
		t.Error("MULTI+BLOCK mix should fail")
	}
	// BLOCK needs extent ≥ p.
	d = mustParse("!HPF$ PROCESSORS P(16)\n!HPF$ TEMPLATE T(8, 8)\n!HPF$ DISTRIBUTE T(BLOCK, *) ONTO P")
	if _, err := d.PlanTemplate("T", nil); err == nil {
		t.Error("BLOCK with extent < p should fail")
	}
	// Fully collapsed on p > 1.
	d = mustParse("!HPF$ PROCESSORS P(2)\n!HPF$ TEMPLATE T(8, 8)\n!HPF$ DISTRIBUTE T(*, *) ONTO P")
	if _, err := d.PlanTemplate("T", nil); err == nil {
		t.Error("fully collapsed template on p>1 should fail")
	}
	// No DISTRIBUTE.
	d = mustParse("!HPF$ TEMPLATE T(8, 8)")
	if _, err := d.PlanTemplate("T", nil); err == nil {
		t.Error("missing DISTRIBUTE should fail")
	}
	// Unknown name.
	if _, err := d.PlanTemplate("NOPE", nil); err == nil {
		t.Error("unknown template should fail")
	}
}

func TestCaseInsensitivity(t *testing.T) {
	src := `
!hpf$ processors p(6)
!Hpf$ template t(36, 36, 6)
!HPF$ distribute t(multi, multi, multi) onto p
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := d.PlanTemplate("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.P != 6 {
		t.Errorf("P = %d", plan.P)
	}
}

func TestP1Plans(t *testing.T) {
	src := `
!HPF$ PROCESSORS P(1)
!HPF$ TEMPLATE T(8, 8)
!HPF$ DISTRIBUTE T(MULTI, MULTI) ONTO P
!HPF$ TEMPLATE S(8, 8)
!HPF$ DISTRIBUTE S(*, *) ONTO P
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := d.PlanTemplate("T", nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Multi == nil || plan.Multi.P() != 1 {
		t.Error("p=1 MULTI plan should be the trivial multipartitioning")
	}
	if _, err := d.PlanTemplate("S", nil); err != nil {
		t.Errorf("fully collapsed on p=1 should be fine: %v", err)
	}
}

func TestOnHomeAndLocalDirectives(t *testing.T) {
	src := `
!HPF$ PROCESSORS P(8)
!HPF$ TEMPLATE T(32, 32, 32)
!HPF$ DISTRIBUTE T(MULTI, MULTI, MULTI) ONTO P
!HPF$ ALIGN U WITH T
!HPF$ ALIGN V WITH T
!HPF$ ON_HOME U
!HPF$ LOCAL V
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := d.PlanTemplate("T", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.PartialReplication {
		t.Error("ON_HOME on an aligned array should enable partial replication")
	}
	if len(plan.LocalArrays) != 1 || plan.LocalArrays[0] != "V" {
		t.Errorf("LocalArrays = %v, want [V]", plan.LocalArrays)
	}
	// ONHOME spelling also accepted.
	if _, err := Parse("!HPF$ ONHOME X"); err != nil {
		t.Errorf("ONHOME spelling rejected: %v", err)
	}
	// Repetition rejected.
	if _, err := Parse("!HPF$ LOCAL A\n!HPF$ LOCAL A"); err == nil {
		t.Error("repeated LOCAL should fail")
	}
	if _, err := Parse("!HPF$ ON_HOME 9BAD"); err == nil {
		t.Error("bad array name should fail")
	}
}

func TestSpecKindString(t *testing.T) {
	if SpecMulti.String() != "MULTI" || SpecBlock.String() != "BLOCK" || SpecCollapse.String() != "*" {
		t.Error("spec names wrong")
	}
}

package hpf

import (
	"strings"
	"testing"

	"genmp/internal/plan"
	"genmp/internal/sweep"
)

func TestShadowArityPlanError(t *testing.T) {
	// A SHADOW whose arity disagrees with the aligned template parses fine
	// (arrays are declared independently) but must fail at plan time.
	src := `
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(12, 12, 12)
!HPF$ DISTRIBUTE T(MULTI, MULTI, MULTI) ONTO P
!HPF$ ALIGN U WITH T
!HPF$ SHADOW U(2, 2)
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.PlanTemplate("T", nil)
	if err == nil || !strings.Contains(err.Error(), "SHADOW") {
		t.Fatalf("mismatched SHADOW arity should fail to plan, got %v", err)
	}
}

func TestPlanSweepPlan(t *testing.T) {
	src := `
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(12, 12, 12)
!HPF$ DISTRIBUTE T(MULTI, MULTI, MULTI) ONTO P
!HPF$ ALIGN U WITH T
!HPF$ SHADOW U(2, 2, 2)
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.PlanTemplate("T", nil)
	if err != nil {
		t.Fatal(err)
	}
	solver := sweep.Tridiag{}
	pl, err := p.SweepPlan(solver)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("planned schedule invalid: %v", err)
	}
	if pl.Kind != plan.KindMultipartition || pl.P != 4 {
		t.Errorf("plan kind/p = %v/%d", pl.Kind, pl.P)
	}
	if len(pl.Halos) != solver.NumVecs() {
		t.Fatalf("halos = %v, want %d entries", pl.Halos, solver.NumVecs())
	}
	for _, h := range pl.Halos {
		if h != 2 {
			t.Errorf("halos = %v, want SHADOW width 2 throughout", pl.Halos)
		}
	}
	// A full sweep must cover the template exactly once per dimension.
	want := 12 * 12 * 12
	for dim := 0; dim < 3; dim++ {
		if got := pl.Elements(dim); got != want {
			t.Errorf("Elements(%d) = %d, want %d", dim, got, want)
		}
	}
}

func TestSweepPlanRequiresMulti(t *testing.T) {
	src := `
!HPF$ PROCESSORS P(4)
!HPF$ TEMPLATE T(12, 12)
!HPF$ DISTRIBUTE T(BLOCK, *) ONTO P
`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.PlanTemplate("T", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SweepPlan(sweep.Tridiag{}); err == nil {
		t.Fatal("BLOCK plan should not compile to a sweep plan")
	}
}

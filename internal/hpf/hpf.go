// Package hpf is the compiler-integration substitute for Section 5 of the
// paper: a front end for the HPF directives with which dHPF programs
// request multipartitioned distributions. It parses a directive subset —
//
//	!HPF$ PROCESSORS P(12)
//	!HPF$ TEMPLATE T(102, 102, 102)
//	!HPF$ DISTRIBUTE T(MULTI, MULTI, MULTI) ONTO P
//	!HPF$ ALIGN A WITH T
//	!HPF$ SHADOW A(2, 2, 2)
//
// — and plans the corresponding runtime distribution: a generalized
// multipartitioning for MULTI specs (the paper's extension of BLOCK-style
// HPF partitionings) or a block unipartitioning for BLOCK.
//
// As the paper explains, when a template is multipartitioned "the number of
// processors cannot be specified on a per dimension basis … because each
// hyperplane defined by a partitioning along a multipartitioned template
// dimension is distributed among all processors": distributing MULTI onto a
// multi-dimensional PROCESSORS arrangement is therefore rejected as a plan
// error — declare a one-dimensional arrangement of the total size instead.
//
// A planned MULTI distribution compiles further into the executable
// schedule both runtimes consume: Plan.SweepPlan returns the
// plan.SweepPlan for a given line solver, with halo widths taken from the
// aligned arrays' SHADOW declarations.
package hpf

import (
	"fmt"
	"strconv"
	"strings"

	"genmp/internal/core"
	"genmp/internal/numutil"
	"genmp/internal/partition"
	"genmp/internal/plan"
	"genmp/internal/sweep"
)

// SpecKind is one per-dimension distribution specifier.
type SpecKind int

const (
	// SpecCollapse is "*": the dimension is not distributed.
	SpecCollapse SpecKind = iota
	// SpecBlock is BLOCK: contiguous slabs, one per processor.
	SpecBlock
	// SpecMulti is MULTI: the dimension participates in a
	// multipartitioning (the dHPF extension).
	SpecMulti
)

// String renders the specifier in directive syntax.
func (k SpecKind) String() string {
	switch k {
	case SpecBlock:
		return "BLOCK"
	case SpecMulti:
		return "MULTI"
	default:
		return "*"
	}
}

// ProcSet is a PROCESSORS declaration.
type ProcSet struct {
	Name  string
	Shape []int
}

// Size returns the total processor count.
func (p ProcSet) Size() int { return numutil.Prod(p.Shape...) }

// Template is a TEMPLATE declaration.
type Template struct {
	Name string
	Eta  []int
}

// Distribution is a DISTRIBUTE directive.
type Distribution struct {
	Template string
	Procs    string
	Specs    []SpecKind
	Line     int
}

// Alignment is an ALIGN directive: Array aligns with Template.
type Alignment struct {
	Array    string
	Template string
}

// Shadow is a SHADOW directive: per-dimension halo widths for an array.
type Shadow struct {
	Array  string
	Widths []int
}

// Directives is a parsed directive set.
type Directives struct {
	Processors    map[string]ProcSet
	Templates     map[string]Template
	Distributions map[string]Distribution // by template name
	Alignments    map[string]Alignment    // by array name
	Shadows       map[string]Shadow       // by array name
	// OnHome marks arrays whose boundary computation is partially
	// replicated into shadow regions (the dHPF extended on-home directive:
	// trades redundant compute for fewer/smaller messages).
	OnHome map[string]bool
	// Local marks arrays for which communication of values already
	// computed in the shadow region is suppressed (the HPF/JA LOCAL
	// directive).
	Local map[string]bool
}

// ParseError reports a directive syntax or semantics problem with its line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("hpf: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads HPF directive lines. Non-directive lines (anything not
// starting with !HPF$, case-insensitive, after trimming) are ignored, so a
// whole Fortran source file can be fed in. Directive keywords and names are
// case-insensitive; names are stored upper-cased.
func Parse(src string) (*Directives, error) {
	d := &Directives{
		Processors:    map[string]ProcSet{},
		Templates:     map[string]Template{},
		Distributions: map[string]Distribution{},
		Alignments:    map[string]Alignment{},
		Shadows:       map[string]Shadow{},
		OnHome:        map[string]bool{},
		Local:         map[string]bool{},
	}
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		s := strings.TrimSpace(raw)
		up := strings.ToUpper(s)
		if !strings.HasPrefix(up, "!HPF$") {
			continue
		}
		body := strings.TrimSpace(up[len("!HPF$"):])
		if body == "" {
			return nil, errf(line, "empty directive")
		}
		word, rest := splitWord(body)
		var err error
		switch word {
		case "PROCESSORS":
			err = d.parseProcessors(line, rest)
		case "TEMPLATE":
			err = d.parseTemplate(line, rest)
		case "DISTRIBUTE":
			err = d.parseDistribute(line, rest)
		case "ALIGN":
			err = d.parseAlign(line, rest)
		case "SHADOW":
			err = d.parseShadow(line, rest)
		case "ONHOME", "ON_HOME":
			err = d.parseArrayFlag(line, rest, d.OnHome, "ON_HOME")
		case "LOCAL":
			err = d.parseArrayFlag(line, rest, d.Local, "LOCAL")
		default:
			err = errf(line, "unknown directive %q", word)
		}
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

func splitWord(s string) (word, rest string) {
	s = strings.TrimSpace(s)
	for i, r := range s {
		if r == ' ' || r == '\t' || r == '(' {
			return s[:i], strings.TrimSpace(s[i:])
		}
	}
	return s, ""
}

// parseNameArgs parses NAME(arg, arg, …) returning the name and raw args.
func parseNameArgs(line int, s string) (string, []string, error) {
	open := strings.IndexByte(s, '(')
	closeIdx := strings.LastIndexByte(s, ')')
	if open < 1 || closeIdx < open {
		return "", nil, errf(line, "expected NAME(...), got %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if !validName(name) {
		return "", nil, errf(line, "invalid name %q", name)
	}
	args := strings.Split(s[open+1:closeIdx], ",")
	for i := range args {
		args[i] = strings.TrimSpace(args[i])
	}
	return name, args, nil
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'A' && r <= 'Z':
		case r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseIntArgs(line int, args []string) ([]int, error) {
	out := make([]int, len(args))
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil || v < 1 {
			return nil, errf(line, "expected positive integer, got %q", a)
		}
		out[i] = v
	}
	return out, nil
}

func (d *Directives) parseProcessors(line int, rest string) error {
	name, args, err := parseNameArgs(line, rest)
	if err != nil {
		return err
	}
	shape, err := parseIntArgs(line, args)
	if err != nil {
		return err
	}
	if _, dup := d.Processors[name]; dup {
		return errf(line, "processors arrangement %s redeclared", name)
	}
	d.Processors[name] = ProcSet{Name: name, Shape: shape}
	return nil
}

func (d *Directives) parseTemplate(line int, rest string) error {
	name, args, err := parseNameArgs(line, rest)
	if err != nil {
		return err
	}
	eta, err := parseIntArgs(line, args)
	if err != nil {
		return err
	}
	if _, dup := d.Templates[name]; dup {
		return errf(line, "template %s redeclared", name)
	}
	d.Templates[name] = Template{Name: name, Eta: eta}
	return nil
}

func (d *Directives) parseDistribute(line int, rest string) error {
	ontoIdx := strings.Index(rest, " ONTO ")
	if ontoIdx < 0 {
		return errf(line, "DISTRIBUTE needs an ONTO clause")
	}
	specPart := strings.TrimSpace(rest[:ontoIdx])
	procName := strings.TrimSpace(rest[ontoIdx+len(" ONTO "):])
	if !validName(procName) {
		return errf(line, "invalid processors name %q", procName)
	}
	name, args, err := parseNameArgs(line, specPart)
	if err != nil {
		return err
	}
	tmpl, ok := d.Templates[name]
	if !ok {
		return errf(line, "DISTRIBUTE of undeclared template %s", name)
	}
	if _, ok := d.Processors[procName]; !ok {
		return errf(line, "DISTRIBUTE ONTO undeclared processors %s", procName)
	}
	if len(args) != len(tmpl.Eta) {
		return errf(line, "template %s has %d dimensions, distribution names %d", name, len(tmpl.Eta), len(args))
	}
	specs := make([]SpecKind, len(args))
	for i, a := range args {
		switch a {
		case "MULTI":
			specs[i] = SpecMulti
		case "BLOCK":
			specs[i] = SpecBlock
		case "*":
			specs[i] = SpecCollapse
		case "CYCLIC":
			return errf(line, "CYCLIC distributions are not supported (use BLOCK or MULTI)")
		default:
			return errf(line, "unknown distribution specifier %q", a)
		}
	}
	if _, dup := d.Distributions[name]; dup {
		return errf(line, "template %s distributed twice", name)
	}
	d.Distributions[name] = Distribution{Template: name, Procs: procName, Specs: specs, Line: line}
	return nil
}

func (d *Directives) parseAlign(line int, rest string) error {
	withIdx := strings.Index(rest, " WITH ")
	if withIdx < 0 {
		return errf(line, "ALIGN needs a WITH clause")
	}
	array := strings.TrimSpace(rest[:withIdx])
	tmpl := strings.TrimSpace(rest[withIdx+len(" WITH "):])
	if !validName(array) || !validName(tmpl) {
		return errf(line, "ALIGN needs two names, got %q WITH %q", array, tmpl)
	}
	if _, ok := d.Templates[tmpl]; !ok {
		return errf(line, "ALIGN with undeclared template %s", tmpl)
	}
	if _, dup := d.Alignments[array]; dup {
		return errf(line, "array %s aligned twice", array)
	}
	d.Alignments[array] = Alignment{Array: array, Template: tmpl}
	return nil
}

func (d *Directives) parseShadow(line int, rest string) error {
	name, args, err := parseNameArgs(line, rest)
	if err != nil {
		return err
	}
	widths := make([]int, len(args))
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil || v < 0 {
			return errf(line, "shadow width must be a non-negative integer, got %q", a)
		}
		widths[i] = v
	}
	if _, dup := d.Shadows[name]; dup {
		return errf(line, "array %s given SHADOW twice", name)
	}
	d.Shadows[name] = Shadow{Array: name, Widths: widths}
	return nil
}

func (d *Directives) parseArrayFlag(line int, rest string, set map[string]bool, what string) error {
	name := strings.TrimSpace(rest)
	if !validName(name) {
		return errf(line, "%s needs an array name, got %q", what, name)
	}
	if set[name] {
		return errf(line, "%s repeated for array %s", what, name)
	}
	set[name] = true
	return nil
}

// Plan is the runtime distribution derived from a DISTRIBUTE directive.
type Plan struct {
	Template Template
	P        int
	Specs    []SpecKind
	// Multi is non-nil for MULTI distributions: the generalized
	// multipartitioning over the MULTI dimensions (collapsed dimensions get
	// γ = 1).
	Multi *core.Multipartitioning
	// BlockDim is the partitioned dimension for BLOCK distributions
	// (−1 otherwise).
	BlockDim int
	// ShadowWidths is the maximum declared shadow width per dimension over
	// the arrays aligned with the template (zero when none).
	ShadowWidths []int
	// PartialReplication is set when any aligned array carries ON_HOME:
	// the runtime should recompute boundary shells locally instead of
	// communicating them (dist.OverheadModel.ReplicationDepth).
	PartialReplication bool
	// LocalArrays lists aligned arrays marked LOCAL, whose shadow-region
	// values need no re-communication.
	LocalArrays []string
}

// PlanTemplate resolves the distribution of a template (or of an array
// aligned with one) into a runtime plan. obj weighs the partitioning search
// for MULTI distributions; pass nil for the uniform objective.
func (d *Directives) PlanTemplate(name string, obj *partition.Objective) (*Plan, error) {
	name = strings.ToUpper(name)
	if al, ok := d.Alignments[name]; ok {
		name = al.Template
	}
	tmpl, ok := d.Templates[name]
	if !ok {
		return nil, fmt.Errorf("hpf: no template or aligned array named %s", name)
	}
	dist, ok := d.Distributions[name]
	if !ok {
		return nil, fmt.Errorf("hpf: template %s has no DISTRIBUTE directive", name)
	}
	procs := d.Processors[dist.Procs]
	p := procs.Size()
	dims := len(tmpl.Eta)

	plan := &Plan{Template: tmpl, P: p, Specs: dist.Specs, BlockDim: -1, ShadowWidths: make([]int, dims)}
	for arr, al := range d.Alignments {
		if al.Template != name {
			continue
		}
		if d.OnHome[arr] {
			plan.PartialReplication = true
		}
		if d.Local[arr] {
			plan.LocalArrays = append(plan.LocalArrays, arr)
		}
		if sh, ok := d.Shadows[arr]; ok {
			if len(sh.Widths) != dims {
				return nil, fmt.Errorf("hpf: SHADOW for %s has %d widths, template %s has %d dimensions",
					arr, len(sh.Widths), name, dims)
			}
			for i, w := range sh.Widths {
				if w > plan.ShadowWidths[i] {
					plan.ShadowWidths[i] = w
				}
			}
		}
	}

	var multiDims, blockDims []int
	for i, s := range dist.Specs {
		switch s {
		case SpecMulti:
			multiDims = append(multiDims, i)
		case SpecBlock:
			blockDims = append(blockDims, i)
		}
	}
	switch {
	case len(multiDims) > 0 && len(blockDims) > 0:
		return nil, fmt.Errorf("hpf: template %s mixes MULTI and BLOCK specifiers; a multipartitioned template distributes every hyperplane over all processors", name)
	case len(multiDims) > 0:
		if len(procs.Shape) > 1 {
			return nil, fmt.Errorf("hpf: template %s: MULTI cannot be distributed onto the %d-dimensional arrangement %s; processors cannot be specified per dimension for a multipartitioning — declare %s(%d) instead",
				name, len(procs.Shape), procs.Name, procs.Name, p)
		}
		m, err := planMulti(p, tmpl.Eta, multiDims, obj)
		if err != nil {
			return nil, fmt.Errorf("hpf: template %s: %w", name, err)
		}
		plan.Multi = m
	case len(blockDims) == 1:
		if tmpl.Eta[blockDims[0]] < p {
			return nil, fmt.Errorf("hpf: template %s: BLOCK dimension %d has extent %d < %d processors",
				name, blockDims[0], tmpl.Eta[blockDims[0]], p)
		}
		plan.BlockDim = blockDims[0]
	case len(blockDims) > 1:
		return nil, fmt.Errorf("hpf: template %s: this runtime supports BLOCK on exactly one dimension (got %d)", name, len(blockDims))
	default:
		if p != 1 {
			return nil, fmt.Errorf("hpf: template %s is fully collapsed but %s has %d processors", name, dist.Procs, p)
		}
	}
	return plan, nil
}

// SweepPlan compiles the executable sweep schedule of a MULTI plan for the
// given line solver: the plan.SweepPlan instance the dist and dmem
// runtimes execute, the cost model folds over, and obs dumps. Every
// solver vector gets the template's maximum aligned SHADOW width as its
// halo annotation. Non-MULTI plans (BLOCK, collapsed) have no
// multipartitioned sweep schedule and return an error.
func (p *Plan) SweepPlan(solver sweep.Solver) (*plan.SweepPlan, error) {
	if p.Multi == nil {
		return nil, fmt.Errorf("hpf: template %s is not multipartitioned; only MULTI distributions compile to a sweep plan", p.Template.Name)
	}
	width := 0
	for _, w := range p.ShadowWidths {
		if w > width {
			width = w
		}
	}
	halos := make([]int, solver.NumVecs())
	for i := range halos {
		halos[i] = width
	}
	return plan.Compile(plan.Spec{M: p.Multi, Eta: p.Template.Eta, Solver: solver, Halos: halos})
}

// planMulti searches the optimal partitioning over the MULTI dimensions
// (others pinned to γ = 1) and builds the generalized multipartitioning.
func planMulti(p int, eta []int, multiDims []int, obj *partition.Objective) (*core.Multipartitioning, error) {
	if p == 1 {
		gamma := make([]int, len(eta))
		for i := range gamma {
			gamma[i] = 1
		}
		return core.NewGeneralized(1, gamma)
	}
	if len(multiDims) < 2 {
		return nil, fmt.Errorf("MULTI on %d dimension(s) cannot be balanced on %d processors; a multipartitioning needs at least two distributed dimensions", len(multiDims), p)
	}
	// Solve the restricted |multiDims|-dimensional problem.
	var sub partition.Objective
	if obj != nil {
		if len(obj.Lambda) != len(eta) {
			return nil, fmt.Errorf("objective has %d weights for a %d-dimensional template", len(obj.Lambda), len(eta))
		}
		lambda := make([]float64, len(multiDims))
		for k, dim := range multiDims {
			lambda[k] = obj.Lambda[dim]
		}
		sub = partition.Objective{Lambda: lambda}
	} else {
		sub = partition.UniformObjective(len(multiDims))
	}
	res, err := partition.Optimal(p, len(multiDims), sub)
	if err != nil {
		return nil, err
	}
	gamma := make([]int, len(eta))
	for i := range gamma {
		gamma[i] = 1
	}
	for k, dim := range multiDims {
		gamma[dim] = res.Gamma[k]
		if gamma[dim] > eta[dim] {
			return nil, fmt.Errorf("dimension %d: %d cuts exceed extent %d", dim, gamma[dim], eta[dim])
		}
	}
	return core.NewGeneralized(p, gamma)
}

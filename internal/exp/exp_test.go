package exp

import (
	"math"
	"strings"
	"testing"

	"genmp/internal/nas"
	"genmp/internal/numutil"
	"genmp/internal/sim"
)

func TestFigure1RenderingMatchesFormula(t *testing.T) {
	s, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	// Slice k=0 of Figure 1: θ(i,j,0) = (i mod 4)·4 + (j mod 4) — rows
	// 0 1 2 3 / 4 5 6 7 / ….
	if !strings.Contains(s, " 0  1  2  3") {
		t.Errorf("slice 0 row 0 missing:\n%s", s)
	}
	if !strings.Contains(s, " 4  5  6  7") {
		t.Errorf("slice 0 row 1 missing:\n%s", s)
	}
	// Slice k=1: θ(i,j,1) = ((i−1) mod 4)·4 + ((j−1) mod 4) — first row is
	// 15 12 13 14.
	if !strings.Contains(s, "15 12 13 14") {
		t.Errorf("slice 1 row 0 missing:\n%s", s)
	}
	if !strings.Contains(s, "slice k=3") {
		t.Errorf("missing slice headers:\n%s", s)
	}
}

func TestTable1ShapeOnClassW(t *testing.T) {
	// Full class B is exercised by cmd/spbench and the bench suite; class W
	// keeps the unit test fast while checking every shape property the
	// paper's Table 1 exhibits.
	saved := Table1Procs
	defer func() { Table1Procs = saved }()
	Table1Procs = []int{1, 4, 9, 16, 25, 36, 49, 50}

	rows, err := Table1(nas.ClassB.Eta, 1)
	if err != nil {
		t.Fatal(err)
	}
	byP := map[int]Table1Row{}
	for _, r := range rows {
		byP[r.P] = r
	}
	// Serial code-quality gaps.
	if math.Abs(byP[1].Hand-0.95) > 0.02 || math.Abs(byP[1].DHPF-0.91) > 0.02 {
		t.Errorf("serial speedups: hand %.3f (want ≈0.95), dHPF %.3f (want ≈0.91)", byP[1].Hand, byP[1].DHPF)
	}
	// Near-linear scaling of both variants on squares.
	for _, p := range []int{4, 9, 16, 25, 36, 49} {
		r := byP[p]
		if r.Hand < 0.75*float64(p) || r.Hand > 1.3*float64(p) {
			t.Errorf("hand-coded speedup at p=%d is %g, not near-linear", p, r.Hand)
		}
		if r.DHPF < 0.6*float64(p) || r.DHPF > 1.3*float64(p) {
			t.Errorf("dHPF speedup at p=%d is %g, not near-linear", p, r.DHPF)
		}
		// Hand-coded wins on perfect squares (paper: mostly, except noise).
		if r.DiffPct < -10 {
			t.Errorf("at p=%d dHPF beats hand-coded by %g%%, beyond noise", p, -r.DiffPct)
		}
	}
	// Hand-coded runs only on perfect squares.
	if !math.IsNaN(byP[50].Hand) {
		t.Errorf("hand-coded should be absent at p=50")
	}
	// The Section 6 inversion: 50 CPUs slower than 49.
	if byP[50].DHPF >= byP[49].DHPF {
		t.Errorf("49-vs-50 inversion missing: dHPF speedup %g at 49, %g at 50", byP[49].DHPF, byP[50].DHPF)
	}
	if byP[50].GammaStr != "5×10×10" {
		t.Errorf("partitioning at 50 = %s, want 5×10×10", byP[50].GammaStr)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "# CPUs") || !strings.Contains(out, "5×10×10") {
		t.Errorf("formatted table missing pieces:\n%s", out)
	}
}

func TestElementaryInventoryMatchesPaper(t *testing.T) {
	inv8 := ElementaryInventory(8, 3)
	if len(inv8) != 2 {
		t.Fatalf("p=8: inventory %v, want 2 patterns", inv8)
	}
	if !strings.HasPrefix(inv8[0], "1×8×8") || !strings.HasPrefix(inv8[1], "2×4×4") {
		t.Errorf("p=8 inventory: %v", inv8)
	}
	inv30 := ElementaryInventory(30, 3)
	if len(inv30) != 5 {
		t.Fatalf("p=30: inventory %v, want 5 patterns", inv30)
	}
}

func TestEnumerationGrowth(t *testing.T) {
	rows := EnumerationGrowth(100, []int{3, 4})
	if len(rows) != 100 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Counts grow with d and stay positive for p ≥ 1, d ≥ 2.
	for _, r := range rows {
		if r.Counts[0] < 1 || r.Counts[1] < r.Counts[0] {
			t.Fatalf("p=%d: counts %v", r.P, r.Counts)
		}
	}
}

func TestSkewedDomainCrossover(t *testing.T) {
	rows, err := SkewedDomain(100, []float64{1, 2, 3, 5, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch {
		case r.Ratio < 4:
			if !numutil.EqualInts(r.Gamma, []int{2, 2, 2}) {
				t.Errorf("ratio %g: γ = %v, want 2×2×2 below the crossover", r.Ratio, r.Gamma)
			}
		case r.Ratio > 4:
			if !numutil.EqualInts(r.Gamma, []int{4, 4, 1}) {
				t.Errorf("ratio %g: γ = %v, want 4×4×1 above the crossover", r.Ratio, r.Gamma)
			}
		}
	}
}

func TestCompactAdvisor49vs50(t *testing.T) {
	res, err := CompactAdvisor(nas.ClassB.Eta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time50 <= res.Time49 {
		t.Errorf("5×10×10 on 50 (%g) should be slower than 7×7×7 on 49 (%g)", res.Time50, res.Time49)
	}
	if res.Advice.DiagonalProcs != 49 {
		t.Errorf("diagonal processor count = %d, want 49", res.Advice.DiagonalProcs)
	}
	if res.Advice.UseProcs < 49 || res.Advice.UseProcs > 50 {
		t.Errorf("advice p = %d outside [49, 50]", res.Advice.UseProcs)
	}
}

func TestStrictParity(t *testing.T) {
	res, err := RunStrictParity(8, []int{4, 4, 2}, []int{12, 12, 12}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDiff > 1e-9 {
		t.Errorf("strict vs shared state differs by %g", res.MaxDiff)
	}
	if res.StrictBytes < res.SharedBytes {
		t.Errorf("strict bytes (%d) below shared (%d)", res.StrictBytes, res.SharedBytes)
	}
	if res.StrictTime <= 0 || res.SharedTime <= 0 {
		t.Error("non-positive times")
	}
}

func TestBTvsSP(t *testing.T) {
	rows, err := BTvsSP(9, []int{36, 36, 36}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	sp, bt := rows[0], rows[1]
	if bt.Bytes <= sp.Bytes {
		t.Errorf("BT bytes (%d) should exceed SP (%d): block carries are fatter", bt.Bytes, sp.Bytes)
	}
	if bt.Time <= sp.Time {
		t.Errorf("BT time (%g) should exceed SP (%g): more flops per point", bt.Time, sp.Time)
	}
	if bt.Messages != sp.Messages {
		t.Errorf("message counts should match (same schedule): BT %d vs SP %d", bt.Messages, sp.Messages)
	}
}

func TestStrategyComparison(t *testing.T) {
	rows, err := StrategyComparison(16, []int{64, 64, 64}, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	multi, wave, trans := rows[0], rows[1], rows[2]
	if multi.Time >= wave.Time {
		t.Errorf("multipartitioning (%g) should beat wavefront (%g)", multi.Time, wave.Time)
	}
	if multi.Time >= trans.Time {
		t.Errorf("multipartitioning (%g) should beat transpose (%g)", multi.Time, trans.Time)
	}
	// The transpose strategy moves bulk data: far more bytes.
	if trans.Bytes <= multi.Bytes {
		t.Errorf("transpose bytes (%d) should exceed multipartitioning (%d)", trans.Bytes, multi.Bytes)
	}
}

func TestStrategyComparisonOnDefaultBitIdentical(t *testing.T) {
	base, err := StrategyComparison(16, []int{32, 32, 32}, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []string{"", "default", "crossbar"} {
		rows, err := StrategyComparisonOn(topo, sim.AlgAuto, 16, []int{32, 32, 32}, 1, 32)
		if err != nil {
			t.Fatalf("topology %q: %v", topo, err)
		}
		for i := range base {
			if rows[i].Time != base[i].Time || rows[i].Bytes != base[i].Bytes || rows[i].Messages != base[i].Messages {
				t.Errorf("topology %q row %s: time %g bytes %d, want %g / %d",
					topo, rows[i].Key, rows[i].Time, rows[i].Bytes, base[i].Time, base[i].Bytes)
			}
		}
	}
}

func TestTopologyComparisonDistinguishesFabrics(t *testing.T) {
	topos := []string{"crossbar", "bus", "hypercube+contention"}
	rows, err := TopologyComparison(topos, sim.AlgAuto, 16, []int{32, 32, 32}, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(topos) {
		t.Fatalf("rows = %d, want %d", len(rows), len(topos))
	}
	// The bus serializes the transpose's bulk all-to-all: its transpose time
	// must exceed the crossbar's. Virtual times differ per topology while
	// traffic volume does not.
	byTopo := map[string]map[string]StrategyRow{}
	for _, tr := range rows {
		byTopo[tr.Topology] = map[string]StrategyRow{}
		for _, r := range tr.Rows {
			byTopo[tr.Topology][r.Key] = r
		}
	}
	if bus, xbar := byTopo["bus"]["block-transpose"], byTopo["crossbar"]["block-transpose"]; bus.Time <= xbar.Time {
		t.Errorf("bus transpose (%g) should be slower than crossbar (%g)", bus.Time, xbar.Time)
	}
	if cube := byTopo["hypercube+contention"]["multipartition"]; cube.Time <= byTopo["crossbar"]["multipartition"].Time {
		t.Errorf("hop latency + contention (%g) should slow multipartitioning vs crossbar (%g)",
			cube.Time, byTopo["crossbar"]["multipartition"].Time)
	}
	for _, key := range []string{"multipartition", "block-wavefront", "block-transpose"} {
		if byTopo["bus"][key].Bytes != byTopo["crossbar"][key].Bytes {
			t.Errorf("%s: traffic volume must be topology-independent", key)
		}
	}
	out := FormatTopologyComparison(rows)
	if !strings.Contains(out, "bus") || !strings.Contains(out, "*") {
		t.Error("formatted comparison missing topology names or winner mark")
	}
}

func TestStrategyBenchRecordsOnSuiteNaming(t *testing.T) {
	recs, err := StrategyBenchRecordsOn("bus", sim.AlgAuto, 16, []int{32, 32, 32}, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Suite != "adi-strategy@bus" {
			t.Errorf("suite = %q, want adi-strategy@bus", r.Suite)
		}
	}
	recs, err = StrategyBenchRecordsOn("", sim.AlgAuto, 16, []int{32, 32, 32}, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Suite != "adi-strategy" {
			t.Errorf("default suite = %q, want adi-strategy", r.Suite)
		}
	}
}

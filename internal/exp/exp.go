// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §3) and formats the rows
// the way the paper reports them. The cmd/ tools and the root bench suite
// are thin wrappers around this package, and EXPERIMENTS.md records the
// paper-vs-measured comparison produced here.
package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"genmp/internal/adi"
	"genmp/internal/core"
	"genmp/internal/cost"
	"genmp/internal/dist"
	"genmp/internal/dmem"
	"genmp/internal/grid"
	"genmp/internal/nas"
	"genmp/internal/numutil"
	"genmp/internal/obs"
	"genmp/internal/partition"
	"genmp/internal/plan"
	"genmp/internal/sim"
)

// Table1Procs is the processor-count column of the paper's Table 1.
var Table1Procs = []int{1, 2, 4, 6, 8, 9, 12, 16, 18, 20, 24, 25, 32, 36, 45, 49, 50, 64, 72, 81}

// PaperTable1 holds the published speedups (hand-coded, dHPF); a NaN
// hand-coded entry marks the processor counts the hand-coded version cannot
// run on (not perfect squares).
var PaperTable1 = map[int][2]float64{
	1:  {0.95, 0.91},
	2:  {nan, 1.43},
	4:  {2.96, 2.93},
	6:  {nan, 5.06},
	8:  {nan, 7.57},
	9:  {7.95, 8.04},
	12: {nan, 11.80},
	16: {16.64, 16.25},
	18: {nan, 18.54},
	20: {nan, 19.03},
	24: {nan, 22.25},
	25: {27.44, 24.32},
	32: {nan, 32.22},
	36: {38.46, 38.83},
	45: {nan, 39.78},
	49: {48.37, 51.49},
	50: {nan, 47.35},
	64: {76.74, 59.84},
	72: {nan, 66.96},
	81: {81.40, 70.63},
}

var nan = math.NaN()

// Table1Row is one line of the Table 1 reproduction.
type Table1Row struct {
	P        int
	Hand     float64 // NaN when the hand-coded version cannot run
	DHPF     float64
	DiffPct  float64 // (hand − dhpf)/hand·100, NaN when no hand-coded entry
	GammaStr string  // the generalized partitioning the dHPF variant used
}

// Table1 regenerates the paper's Table 1 on the virtual Origin 2000:
// NAS SP speedups for the hand-coded diagonal variant (perfect squares
// only) and the dHPF generalized variant (every processor count).
func Table1(eta []int, steps int) ([]Table1Row, error) {
	return Table1On("", eta, steps)
}

// Table1On is Table1 with the Origin interconnect replaced by the named
// topology (see sim.FabricNames; "" keeps the default crossbar model and
// reproduces Table1 exactly). The serial baseline is topology-independent.
func Table1On(topology string, eta []int, steps int) ([]Table1Row, error) {
	serial, err := nas.SerialTime(nas.Origin2000Machine(1), eta, steps)
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(Table1Procs))
	for _, p := range Table1Procs {
		row := Table1Row{P: p, Hand: math.NaN(), DHPF: math.NaN(), DiffPct: math.NaN()}
		mach, err := nas.Origin2000MachineOn(topology, p)
		if err != nil {
			return nil, err
		}
		if s, err := nas.Speedup(nas.HandCodedDiagonal, p, mach, eta, steps, serial); err == nil {
			row.Hand = s
		}
		// A blank dHPF cell means no elementary partitioning fits the
		// domain extents at this p (only possible for small classes).
		if s, err := nas.Speedup(nas.DHPFGeneralized, p, mach, eta, steps, serial); err == nil {
			row.DHPF = s
		}
		if !math.IsNaN(row.Hand) && !math.IsNaN(row.DHPF) {
			row.DiffPct = (row.Hand - row.DHPF) / row.Hand * 100
		}
		obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
		if res, err := partition.OptimalCapped(p, len(eta), obj, eta); err == nil {
			row.GammaStr = partition.Describe(res.Gamma)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders rows in the paper's layout, with the measured
// partitioning and the published numbers alongside.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s  %10s  %8s  %8s  %12s  %18s\n",
		"# CPUs", "hand-coded", "dHPF", "% diff.", "partitioning", "paper (hand/dHPF)")
	for _, r := range rows {
		hand := "      "
		if !math.IsNaN(r.Hand) {
			hand = fmt.Sprintf("%10.2f", r.Hand)
		}
		dhpf := "        "
		if !math.IsNaN(r.DHPF) {
			dhpf = fmt.Sprintf("%8.2f", r.DHPF)
		}
		diff := "        "
		if !math.IsNaN(r.DiffPct) {
			diff = fmt.Sprintf("%8.2f", r.DiffPct)
		}
		paper := PaperTable1[r.P]
		paperStr := fmt.Sprintf("    — /%6.2f", paper[1])
		if !math.IsNaN(paper[0]) {
			paperStr = fmt.Sprintf("%6.2f/%6.2f", paper[0], paper[1])
		}
		fmt.Fprintf(&sb, "%6d  %10s  %8s  %8s  %12s  %18s\n",
			r.P, hand, dhpf, diff, r.GammaStr, paperStr)
	}
	return sb.String()
}

// Figure1 returns the paper's Figure 1 rendering: the diagonal 3-D
// multipartitioning of 4×4×4 tiles on 16 processors, slice by slice.
func Figure1() (string, error) {
	m, err := core.NewDiagonal(16, 3)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	if err := m.RenderSlices(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// ElementaryInventory lists the elementary partitionings of p over d
// dimensions as sorted "a×b×c" patterns with multiplicities — the paper's
// Section 3.2 examples.
func ElementaryInventory(p, d int) []string {
	seen := map[string]int{}
	for _, g := range partition.Elementary(p, d) {
		seen[partition.Describe(numutil.SortedCopy(g))]++
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s (×%d orientations)", k, seen[k]))
	}
	return out
}

// GrowthRow is one point of the enumeration-complexity study.
type GrowthRow struct {
	P      int
	Counts []int // per dimension in Dims
}

// EnumerationGrowth counts elementary partitionings for every p ≤ maxP over
// each of the given dimensions — the empirical counterpart of the paper's
// O((d(d−1)/2)^((1+o(1))·log p/log log p)) bound.
func EnumerationGrowth(maxP int, dims []int) []GrowthRow {
	rows := make([]GrowthRow, 0, maxP)
	for p := 1; p <= maxP; p++ {
		counts := make([]int, len(dims))
		for i, d := range dims {
			counts[i] = partition.CountElementary(p, d)
		}
		rows = append(rows, GrowthRow{P: p, Counts: counts})
	}
	return rows
}

// SkewedRow is one aspect-ratio point of the Section 3.1 remark experiment.
type SkewedRow struct {
	Ratio  float64 // η₁/η₃ = η₂/η₃
	Gamma  []int
	Cost2D float64 // cost of (4,4,1)
	Cost3D float64 // cost of (2,2,2)
}

// SkewedDomain sweeps the domain aspect ratio for p = 4 and reports where
// the optimal partitioning crosses from the classical 2×2×2 to 4×4×1 — the
// paper's remark says the crossover is at ratio 4.
func SkewedDomain(base int, ratios []float64) ([]SkewedRow, error) {
	rows := make([]SkewedRow, 0, len(ratios))
	for _, ratio := range ratios {
		eta := []int{int(float64(base) * ratio), int(float64(base) * ratio), base}
		obj := partition.VolumeObjective(eta)
		res, err := partition.Optimal(4, 3, obj)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SkewedRow{
			Ratio:  ratio,
			Gamma:  res.Gamma,
			Cost2D: obj.Cost([]int{4, 4, 1}),
			Cost3D: obj.Cost([]int{2, 2, 2}),
		})
	}
	return rows, nil
}

// AdvisorResult reproduces the Section 6 observation for class B.
type AdvisorResult struct {
	Time49, Time50 float64 // modeled per-round times
	Advice         cost.Advice
}

// CompactAdvisor compares 7×7×7 on 49 against 5×10×10 on 50 with the
// simulated SP and runs the advisor.
func CompactAdvisor(eta []int, steps int) (AdvisorResult, error) {
	timeOf := func(p int, gamma []int) float64 {
		m, err := core.NewGeneralized(p, gamma)
		if err != nil {
			return math.Inf(1)
		}
		env, err := distEnv(m, eta)
		if err != nil {
			return math.Inf(1)
		}
		res, err := nas.Run(env, nas.Origin2000Machine(p), steps, nil)
		if err != nil {
			return math.Inf(1)
		}
		return res.Makespan
	}
	out := AdvisorResult{
		Time49: timeOf(49, []int{7, 7, 7}),
		Time50: timeOf(50, []int{5, 10, 10}),
	}
	model := cost.Origin2000()
	adv, err := model.Advise(50, eta, timeOf)
	if err != nil {
		return out, err
	}
	out.Advice = adv
	return out, nil
}

func distEnv(m *core.Multipartitioning, eta []int) (*dist.Env, error) {
	return dist.NewEnv(m, eta, dist.DHPF())
}

// StrictParity compares the strict distributed-memory SP run against the
// shared-storage data-mode run on the same configuration: the gathered
// strict state must equal the shared-mode state elementwise, and the strict
// run must move at least the modeled bytes (it additionally gathers the
// final state to rank 0).
type StrictParity struct {
	MaxDiff     float64
	StrictBytes int
	SharedBytes int
	StrictTime  float64
	SharedTime  float64
}

// RunStrictParity executes both modes for p processors over eta.
func RunStrictParity(p int, gamma, eta []int, steps int) (StrictParity, error) {
	m, err := core.NewGeneralized(p, gamma)
	if err != nil {
		return StrictParity{}, err
	}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		return StrictParity{}, err
	}
	u := nas.InitialState(eta)
	resShared, err := nas.Run(env, nas.Origin2000Machine(p), steps, u)
	if err != nil {
		return StrictParity{}, err
	}
	got, resStrict, err := dmem.RunSP(env, nas.Origin2000Machine(p), steps)
	if err != nil {
		return StrictParity{}, err
	}
	return StrictParity{
		MaxDiff:     grid.MaxAbsDiff(u, got),
		StrictBytes: resStrict.TotalBytes(),
		SharedBytes: resShared.TotalBytes(),
		StrictTime:  resStrict.Makespan,
		SharedTime:  resShared.Makespan,
	}, nil
}

// StrategyRow is one strategy's virtual time in the ADI comparison. Key is
// the stable machine-readable identifier (bench record name); Strategy is
// the human-readable label and may carry run parameters like the chosen
// partitioning or grain.
type StrategyRow struct {
	Key      string
	Strategy string
	Gamma    string // partitioning used, when the strategy picks one
	Time     float64
	Bytes    int
	Messages int
}

// StrategyComparison runs the van der Wijngaart-style comparison: the same
// ADI integration under multipartitioning, static block with wavefront
// sweeps, and dynamic block with transposes, on the virtual machine
// (model-only). Requires a p with a valid 3-D multipartitioning.
func StrategyComparison(p int, eta []int, steps, grain int) ([]StrategyRow, error) {
	return StrategyComparisonOn("", sim.AlgAuto, p, eta, steps, grain)
}

// StrategyComparisonOn is StrategyComparison on the named interconnect
// topology ("" keeps the default crossbar and reproduces StrategyComparison
// exactly). Each strategy run gets its own fabric instance, so contention
// state never leaks between runs.
func StrategyComparisonOn(topology string, coll sim.Alg, p int, eta []int, steps, grain int) ([]StrategyRow, error) {
	return StrategyComparisonOverlap(topology, coll, p, eta, steps, grain, plan.Overlap{})
}

// StrategyComparisonOverlap is StrategyComparisonOn with the boundary-first
// overlap annotation applied to the strategies that sweep (multipartition
// and block-wavefront; the transpose strategy has no carries to overlap).
func StrategyComparisonOverlap(topology string, coll sim.Alg, p int, eta []int, steps, grain int, o plan.Overlap) ([]StrategyRow, error) {
	pb := adi.Problem{Eta: eta, Alpha: 0.3, Steps: steps}
	var rows []StrategyRow

	obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
	m, err := core.NewOptimal(p, len(eta), obj)
	if err != nil {
		return nil, err
	}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		return nil, err
	}
	machM, err := strategyMachineOn(topology, coll, p)
	if err != nil {
		return nil, err
	}
	resM, err := adi.Run(pb, nil, adi.Config{
		Machine: machM, Strategy: adi.Multipartition, Env: env, ModelOnly: true, Overlap: o})
	if err != nil {
		return nil, err
	}
	rows = append(rows, StrategyRow{
		Key:      "multipartition",
		Strategy: fmt.Sprintf("multipartition %s", partition.Describe(m.Gamma())),
		Gamma:    partition.Describe(m.Gamma()),
		Time:     resM.Makespan, Bytes: resM.TotalBytes(), Messages: resM.TotalMessages()})

	b, err := dist.NewBlock(p, eta, 0, dist.HandCoded())
	if err != nil {
		return nil, err
	}
	machW, err := strategyMachineOn(topology, coll, p)
	if err != nil {
		return nil, err
	}
	resW, err := adi.Run(pb, nil, adi.Config{
		Machine: machW, Strategy: adi.BlockWavefront, Block: b, Grain: grain, ModelOnly: true, Overlap: o})
	if err != nil {
		return nil, err
	}
	rows = append(rows, StrategyRow{
		Key:      "block-wavefront",
		Strategy: fmt.Sprintf("block-wavefront (grain %d)", grain),
		Time:     resW.Makespan, Bytes: resW.TotalBytes(), Messages: resW.TotalMessages()})

	machT, err := strategyMachineOn(topology, coll, p)
	if err != nil {
		return nil, err
	}
	resT, err := adi.Run(pb, nil, adi.Config{
		Machine: machT, Strategy: adi.BlockTranspose, Block: b, ModelOnly: true})
	if err != nil {
		return nil, err
	}
	rows = append(rows, StrategyRow{
		Key:      "block-transpose",
		Strategy: "block-transpose",
		Time:     resT.Makespan, Bytes: resT.TotalBytes(), Messages: resT.TotalMessages()})
	return rows, nil
}

// StrategyBenchRecords runs the strategy comparison and converts it into
// BENCH_*.json records (suite "adi-strategy", one record per strategy key)
// so sweepbench can contribute to the committed bench trajectory and the
// CI perf gate.
func StrategyBenchRecords(p int, eta []int, steps, grain int) ([]obs.BenchRecord, error) {
	return StrategyBenchRecordsOn("", sim.AlgAuto, p, eta, steps, grain)
}

// StrategyBenchRecordsOn produces the strategy bench records on the named
// topology. Non-default topologies get their own suite, "adi-strategy@<t>",
// so their records sit alongside the default ones without colliding in the
// zero-tolerance perf gate.
func StrategyBenchRecordsOn(topology string, coll sim.Alg, p int, eta []int, steps, grain int) ([]obs.BenchRecord, error) {
	return StrategyBenchRecordsOverlap(topology, coll, p, eta, steps, grain, plan.Overlap{})
}

// StrategyBenchRecordsOverlap is StrategyBenchRecordsOn with the overlap
// annotation; overlap-on records get their own suite ("adi-strategy+overlap")
// so they never collide with the committed overlap-off baselines in the
// zero-tolerance perf gate.
func StrategyBenchRecordsOverlap(topology string, coll sim.Alg, p int, eta []int, steps, grain int, o plan.Overlap) ([]obs.BenchRecord, error) {
	rows, err := StrategyComparisonOverlap(topology, coll, p, eta, steps, grain, o)
	if err != nil {
		return nil, err
	}
	suite := "adi-strategy"
	if topology != "" && topology != "default" {
		suite += "@" + topology
	}
	if o.Enabled {
		suite += "+overlap"
	}
	recs := make([]obs.BenchRecord, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, obs.BenchRecord{
			Suite: suite, Name: r.Key,
			P: p, Eta: eta, Steps: steps, Gamma: r.Gamma,
			Makespan: r.Time, Messages: r.Messages, Bytes: r.Bytes,
		})
	}
	return recs, nil
}

// TopologyRow is one (topology, strategy) cell of the topology comparison.
type TopologyRow struct {
	Topology string
	Rows     []StrategyRow
}

// TopologyComparison runs the ADI strategy comparison on every named
// topology — the experiment behind the EXPERIMENTS.md table asking which
// distribution strategy wins on a crossbar, a bus, and a hypercube with
// link contention.
func TopologyComparison(topologies []string, coll sim.Alg, p int, eta []int, steps, grain int) ([]TopologyRow, error) {
	out := make([]TopologyRow, 0, len(topologies))
	for _, topo := range topologies {
		rows, err := StrategyComparisonOn(topo, coll, p, eta, steps, grain)
		if err != nil {
			return nil, fmt.Errorf("exp: topology %q: %w", topo, err)
		}
		out = append(out, TopologyRow{Topology: topo, Rows: rows})
	}
	return out, nil
}

// FormatTopologyComparison renders the topology × strategy grid with the
// per-topology winner marked.
func FormatTopologyComparison(rows []TopologyRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s  %-22s  %12s  %12s  %10s\n",
		"topology", "strategy", "time", "bytes", "messages")
	for _, tr := range rows {
		best := 0
		for i, r := range tr.Rows {
			if r.Time < tr.Rows[best].Time {
				best = i
			}
		}
		name := tr.Topology
		if name == "" {
			name = "crossbar (default)"
		}
		for i, r := range tr.Rows {
			mark := "  "
			if i == best {
				mark = " *"
			}
			fmt.Fprintf(&sb, "%-22s  %-22s  %11.4fs%s  %12d  %10d\n",
				name, r.Key, r.Time, mark, r.Bytes, r.Messages)
			name = ""
		}
	}
	return sb.String()
}

// machine for strategy comparisons.
func strategyMachine(p int) *sim.Machine { return nas.Origin2000Machine(p) }

// strategyMachineOn builds the comparison machine on the named topology
// with the given default collective algorithm.
func strategyMachineOn(topology string, coll sim.Alg, p int) (*sim.Machine, error) {
	mach, err := nas.Origin2000MachineOn(topology, p)
	if err != nil {
		return nil, err
	}
	mach.Coll = coll
	return mach, nil
}

// BTvsSPRow compares the two NAS-style pseudo-applications on the same
// multipartitioning: BT's block tridiagonal sweeps ship fatter carries and
// do more flops per point, changing the compute/communication balance
// without changing the partitioning theory at all.
type BTvsSPRow struct {
	App      string
	Time     float64
	Bytes    int
	Messages int
}

// BTvsSP runs both applications (model-only) on the optimal generalized
// multipartitioning for p over eta.
func BTvsSP(p int, eta []int, steps int) ([]BTvsSPRow, error) {
	obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
	m, err := core.NewOptimal(p, len(eta), obj)
	if err != nil {
		return nil, err
	}
	env, err := distEnv(m, eta)
	if err != nil {
		return nil, err
	}
	resSP, err := nas.Run(env, strategyMachine(p), steps, nil)
	if err != nil {
		return nil, err
	}
	resBT, err := nas.BTRun(env, strategyMachine(p), steps, nil)
	if err != nil {
		return nil, err
	}
	return []BTvsSPRow{
		{App: "SP (scalar pentadiagonal)", Time: resSP.Makespan, Bytes: resSP.TotalBytes(), Messages: resSP.TotalMessages()},
		{App: "BT (5×5 block tridiagonal)", Time: resBT.Makespan, Bytes: resBT.TotalBytes(), Messages: resBT.TotalMessages()},
	}, nil
}

package exp

import (
	"math"
	"strings"
	"testing"

	"genmp/internal/sim"
)

func TestRedistComparisonRows(t *testing.T) {
	rows, err := RedistComparison(4, []int{16, 16, 16}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	keys := map[string]RedistRow{}
	for _, r := range rows {
		keys[r.Key] = r
		if r.Time <= 0 {
			t.Errorf("%s: non-positive makespan %g", r.Key, r.Time)
		}
	}
	bt, ok1 := keys["block-transpose"]
	rs, ok2 := keys["redist-switch"]
	mo, ok3 := keys["multi-only"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing policy rows: %v", rows)
	}
	// The switching policies move wire traffic; the stay-put floor moves
	// only halo bytes and must be the cheapest in traffic.
	if bt.Bytes <= mo.Bytes || rs.Bytes <= mo.Bytes {
		t.Errorf("switch policies should out-traffic multi-only: bt=%d rs=%d mo=%d",
			bt.Bytes, rs.Bytes, mo.Bytes)
	}
	// Both switch policies compiled plans, so a peak bound is declared.
	if bt.PeakBytes == 0 || rs.PeakBytes == 0 || mo.PeakBytes != 0 {
		t.Errorf("peak bounds: bt=%d rs=%d mo=%d", bt.PeakBytes, rs.PeakBytes, mo.PeakBytes)
	}
	table := FormatRedistComparison(rows)
	if !strings.Contains(table, "redist-switch") || !strings.Contains(table, " *") {
		t.Errorf("table missing rows or winner mark:\n%s", table)
	}
}

// TestRedistComparisonDeterministic: the scenario is a fixed virtual-time
// schedule — two runs produce bit-identical makespans (the BENCH_redist
// golden relies on this).
func TestRedistComparisonDeterministic(t *testing.T) {
	a, err := RedistComparisonOn("", sim.AlgAuto, 4, []int{16, 16, 16}, 2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RedistComparisonOn("", sim.AlgAuto, 4, []int{16, 16, 16}, 2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Float64bits(a[i].Time) != math.Float64bits(b[i].Time) || a[i].Bytes != b[i].Bytes {
			t.Fatalf("row %s not reproducible: %v vs %v", a[i].Key, a[i], b[i])
		}
	}
}

// TestRedistComparisonBudget: handing the accountant a budget lowers the
// declared per-rank peak of the switch plans without changing traffic.
func TestRedistComparisonBudget(t *testing.T) {
	loose, err := RedistComparisonOn("", sim.AlgAuto, 4, []int{16, 16, 16}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := RedistComparisonOn("", sim.AlgAuto, 4, []int{16, 16, 16}, 1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	row := func(rows []RedistRow, key string) RedistRow {
		for _, r := range rows {
			if r.Key == key {
				return r
			}
		}
		t.Fatalf("row %s missing", key)
		return RedistRow{}
	}
	lr, tr := row(loose, "redist-switch"), row(tight, "redist-switch")
	if tr.PeakBytes > 2048 {
		t.Errorf("budgeted peak %d exceeds 2048", tr.PeakBytes)
	}
	if tr.PeakBytes >= lr.PeakBytes {
		t.Errorf("budget did not lower peak: %d vs %d", tr.PeakBytes, lr.PeakBytes)
	}
	if tr.Bytes != lr.Bytes {
		t.Errorf("budget changed wire traffic: %d vs %d", tr.Bytes, lr.Bytes)
	}
}

func TestRedistBenchRecords(t *testing.T) {
	recs, err := RedistBenchRecords(4, []int{16, 16, 16}, 2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	for _, r := range recs {
		if r.Suite != "redist" {
			t.Errorf("suite %q, want redist", r.Suite)
		}
		if r.Makespan <= 0 || r.P != 4 {
			t.Errorf("bad record %+v", r)
		}
	}
}

package exp

import (
	"math"
	"testing"

	"genmp/internal/adi"
	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/dmem"
	"genmp/internal/grid"
	"genmp/internal/nas"
	"genmp/internal/plan"
)

// Bit-identity contract of the overlap schedule (DESIGN.md §14): splitting
// each phase into boundary-first and interior line sets regroups the
// batched kernel panels but never reorders the canonical line order, and
// the batch kernels are bit-equal under any panel grouping — so the field
// data of an overlap-on run must equal the overlap-off run to the last
// Float64bits, on every application and processor count.

var overlapOn = plan.Overlap{Enabled: true}

func overlapEnv(t *testing.T, p int, gamma, eta []int) *dist.Env {
	t.Helper()
	m, err := core.NewGeneralized(p, gamma)
	if err != nil {
		t.Fatal(err)
	}
	env, err := dist.NewEnv(m, eta, dist.DHPF())
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// sameBits fails the test at the first element where the two grids differ
// in their raw float64 bit patterns.
func sameBits(t *testing.T, what string, off, on *grid.Grid) {
	t.Helper()
	a, b := off.Data(), on.Data()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d elements", what, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: element %d differs: off %#x (%g) vs on %#x (%g)",
				what, i, math.Float64bits(a[i]), a[i], math.Float64bits(b[i]), b[i])
		}
	}
}

var overlapGamma = map[int][]int{4: {2, 2, 2}, 16: {4, 4, 4}}

// TestOverlapBitIdentitySP: strict distributed-memory SP, overlap on vs
// off, at p ∈ {4, 16}.
func TestOverlapBitIdentitySP(t *testing.T) {
	eta := []int{12, 12, 12}
	for _, p := range []int{4, 16} {
		env := overlapEnv(t, p, overlapGamma[p], eta)
		off, _, err := dmem.RunSP(env, nas.Origin2000Machine(p), 2)
		if err != nil {
			t.Fatal(err)
		}
		on, _, err := dmem.RunSPOverlap(env, nas.Origin2000Machine(p), 2, overlapOn)
		if err != nil {
			t.Fatal(err)
		}
		sameBits(t, "sp", off, on)
	}
}

// TestOverlapBitIdentityBT: strict BT (5×5 block carries), p ∈ {4, 16}.
func TestOverlapBitIdentityBT(t *testing.T) {
	eta := []int{12, 12, 12}
	for _, p := range []int{4, 16} {
		env := overlapEnv(t, p, overlapGamma[p], eta)
		off, _, err := dmem.RunBT(env, nas.Origin2000Machine(p), 2)
		if err != nil {
			t.Fatal(err)
		}
		on, _, err := dmem.RunBTOverlap(env, nas.Origin2000Machine(p), 2, overlapOn)
		if err != nil {
			t.Fatal(err)
		}
		sameBits(t, "bt", off, on)
	}
}

// TestOverlapBitIdentityADI: strict ADI (tridiagonal carries, no halos),
// p ∈ {4, 16}.
func TestOverlapBitIdentityADI(t *testing.T) {
	eta := []int{16, 16, 16}
	for _, p := range []int{4, 16} {
		env := overlapEnv(t, p, overlapGamma[p], eta)
		pb := adi.Problem{Eta: eta, Alpha: 0.3, Steps: 2}
		off, _, err := dmem.RunADI(pb, env, nas.Origin2000Machine(p))
		if err != nil {
			t.Fatal(err)
		}
		on, _, err := dmem.RunADIOverlap(pb, env, nas.Origin2000Machine(p), overlapOn)
		if err != nil {
			t.Fatal(err)
		}
		sameBits(t, "adi", off, on)
	}
}

// TestOverlapBitIdentityShared: the shared-storage data-mode SP (the dist
// executor's overlap path) must advance u identically too, and the
// serial reference pins both.
func TestOverlapBitIdentityShared(t *testing.T) {
	eta := []int{12, 12, 12}
	for _, p := range []int{4, 16} {
		env := overlapEnv(t, p, overlapGamma[p], eta)
		uOff := nas.InitialState(eta)
		if _, err := nas.Run(env, nas.Origin2000Machine(p), 2, uOff); err != nil {
			t.Fatal(err)
		}
		uOn := nas.InitialState(eta)
		pl, err := nas.CompilePlanOverlap(env, overlapOn)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nas.RunPlanned(env, nas.Origin2000Machine(p), 2, uOn, pl); err != nil {
			t.Fatal(err)
		}
		sameBits(t, "sp-shared", uOff, uOn)
	}
}

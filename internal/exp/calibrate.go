package exp

import (
	"fmt"
	"math"
	"strings"

	"genmp/internal/core"
	"genmp/internal/cost"
	"genmp/internal/dist"
	"genmp/internal/nas"
	"genmp/internal/numutil"
	"genmp/internal/obs"
	"genmp/internal/partition"
	"genmp/internal/plan"
	"genmp/internal/sim"
	"genmp/internal/sweep"
)

// CalibrationRow is one (processor count, phase) cell of the cost-model
// audit: the analytic per-rank phase time predicted from the machine
// constants against the time the simulator actually accounted to the phase
// (mean over ranks, including waits).
type CalibrationRow struct {
	P         int
	Gamma     []int
	Phase     string
	Predicted float64 // seconds
	Measured  float64 // seconds
	RelErr    float64 // (Predicted − Measured) / Measured; 0 when both vanish
}

// calibrationPhases is the canonical row order of the audit for a d=3 run.
func calibrationPhases(d int) []string {
	phases := []string{nas.PhaseHalo, nas.PhaseRHS}
	for dim := 0; dim < d; dim++ {
		phases = append(phases, nas.PhaseSolve(dim))
	}
	return append(phases, nas.PhaseAdd, nas.PhaseReduce)
}

// spWorkload builds the Calibrated sweep workload of SP: the pentadiagonal
// per-point flops (solve + LHS build, both charged inside the solve phase)
// and the penta solver's carry traffic.
func spWorkload() cost.SweepWorkload {
	s := sweep.NewPenta()
	return cost.SweepWorkload{
		FlopsPerElement:   nas.FlopsSolve + nas.FlopsLHSBuild,
		CarryBytesPerLine: 8 * float64(s.ForwardCarryLen()+s.BackwardCarryLen()),
		Passes:            2,
	}
}

// Calibrate audits the analytic cost model against the simulator: for every
// Table 1 processor count it runs the SP pseudo-application (hand-coded
// overhead model, optimal generalized partitioning, model-only) with
// per-phase accounting on, predicts each phase's per-rank time from the
// machine constants — the solve phases through cost.Calibrated/SweepTime,
// exactly the model the partitioning search optimizes — and reports the
// relative error. The prediction assumes no partial replication, so the
// audit fixes the dist.HandCoded overhead model.
func Calibrate(eta []int, steps int) ([]CalibrationRow, error) {
	return CalibrateOn("", eta, steps)
}

// CalibrateOn is Calibrate on the named interconnect topology: the
// prediction side switches to cost.CalibratedFabric (mean hop latency,
// shared-medium K₃) so the audit stays apples-to-apples with the simulated
// fabric. The empty topology reproduces Calibrate exactly.
func CalibrateOn(topology string, eta []int, steps int) ([]CalibrationRow, error) {
	var rows []CalibrationRow
	d := len(eta)
	for _, p := range Table1Procs {
		obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
		res, err := partition.OptimalCapped(p, d, obj, eta)
		if err != nil {
			return nil, fmt.Errorf("exp: Calibrate: p=%d: %w", p, err)
		}
		m, err := core.NewGeneralized(p, res.Gamma)
		if err != nil {
			return nil, fmt.Errorf("exp: Calibrate: p=%d: %w", p, err)
		}
		env, err := dist.NewEnv(m, eta, dist.HandCoded())
		if err != nil {
			return nil, fmt.Errorf("exp: Calibrate: p=%d: %w", p, err)
		}
		base := nas.Origin2000Machine(p)
		cpu := base.CPU
		cpu.WorkingSetBytes = nas.WorkingSetBytes(eta, p)
		mach := sim.NewMachine(p, base.Net, cpu)
		fab, err := sim.NewFabric(topology, mach.Net, p)
		if err != nil {
			return nil, err
		}
		mach.Fabric = fab
		// One compiled plan feeds both sides of the audit: the executor runs
		// it, and the analytic side folds over it — predicted and measured
		// describe the very same schedule instance, not two reconstructions.
		pl, err := nas.CompilePlan(env)
		if err != nil {
			return nil, fmt.Errorf("exp: Calibrate: p=%d: %w", p, err)
		}
		simRes, err := nas.RunPlanned(env, mach, steps, nil, pl)
		if err != nil {
			return nil, fmt.Errorf("exp: Calibrate: p=%d: %w", p, err)
		}
		prof := obs.NewProfile(simRes, nil)
		pred := predictPhases(env, mach, steps, pl)
		for _, phase := range calibrationPhases(d) {
			row := CalibrationRow{
				P:         p,
				Gamma:     res.Gamma,
				Phase:     phase,
				Predicted: pred[phase],
				Measured:  prof.Phase(phase).Mean(),
			}
			switch {
			case row.Measured != 0:
				row.RelErr = (row.Predicted - row.Measured) / row.Measured
			case row.Predicted != 0:
				row.RelErr = math.Inf(1)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// predictPhases returns the analytic per-rank time of every SP phase for
// one run (steps time steps plus the final reduction), from the machine and
// overhead constants plus the compiled sweep plan the executor ran.
// Assumes Overhead.ReplicationDepth == 0.
func predictPhases(env *dist.Env, mach *sim.Machine, steps int, pl *plan.SweepPlan) map[string]float64 {
	eta := env.Eta
	gamma := env.M.Gamma()
	p := mach.P
	n := float64(numutil.Prod(eta...))
	perRank := n / float64(p)
	eff := mach.CPU.EffectiveFlopsPerSec()
	cf := env.Overhead.ComputeFactor
	tiles := float64(partition.TilesPerProcessor(p, gamma))
	net := mach.Net
	fab := mach.Fabric
	if fab == nil {
		fab = sim.DefaultFabric(net, p)
	}
	// Per matched send/recv pair on one rank: pack + unpack, both network
	// overheads, and the head latency the receiver waits out when both sides
	// arrive together (the balanced steady state). On the uniform fabrics
	// MeanHeadLatency is exactly the wire latency, keeping the default audit
	// bit-identical to the pre-Fabric one.
	perPair := 2*env.Overhead.PerMessage + net.SendOverhead + net.RecvOverhead + fab.MeanHeadLatency()

	out := map[string]float64{
		nas.PhaseRHS: float64(steps) * (tiles*env.Overhead.PerTileVisit + nas.FlopsRHS*perRank*cf/eff),
		nas.PhaseAdd: float64(steps) * (tiles*env.Overhead.PerTileVisit + nas.FlopsAdd*perRank*cf/eff),
	}

	// Halo: per step, one SendRecv pair per cut dimension per direction;
	// the received volume is the rank-mean of the halo geometry.
	halo := 0.0
	if p > 1 {
		pairs := 0
		for _, g := range gamma {
			if g > 1 {
				pairs += 2
			}
		}
		bytes := 0.0
		for q := 0; q < p; q++ {
			bytes += float64(env.HaloBytes(q, 2-env.Overhead.ReplicationDepth, 1))
		}
		bytes /= float64(p)
		halo = float64(pairs)*perPair + bytes/net.Bandwidth
	}
	out[nas.PhaseHalo] = float64(steps) * halo

	// Solve phases: the audited model itself, folded over the very plan the
	// executor ran. PlanSweepTime covers the fused LHS-build + solve
	// arithmetic (K₁·η/p) and the per-boundary communication steps; the
	// per-tile visit charge (LHS build + two sweep passes) is a runtime
	// overhead outside the paper's model, added on top.
	model := cost.CalibratedFabric(fab, net, mach.CPU, cf, env.Overhead.PerMessage, spWorkload())
	for dim := range eta {
		t := model.PlanSweepTime(pl, dim) + 3*tiles*env.Overhead.PerTileVisit
		out[nas.PhaseSolve(dim)] = float64(steps) * t
	}

	// Final residual reduction: ⌈log₂p⌉ exchange rounds of one float64.
	// Recursive-doubling partners differ by one bit, so even on the
	// hypercube each round's transfer is one hop; on the uniform fabrics
	// Transit is bit-identical to the legacy net.Transit(8).
	reduce := 0.0
	if p > 1 {
		rounds := 0
		for k := 1; k < p; k *= 2 {
			rounds++
		}
		reduce = float64(rounds) * (net.SendOverhead + net.RecvOverhead + fab.Transit(0, 1, 8))
	}
	out[nas.PhaseReduce] = reduce
	return out
}

// FormatCalibration renders the audit as a table grouped by processor
// count, flagging rows whose relative error exceeds 25%.
func FormatCalibration(rows []CalibrationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%6s  %12s  %-8s  %12s  %12s  %8s\n",
		"# CPUs", "partitioning", "phase", "predicted", "measured", "err")
	lastP := -1
	for _, r := range rows {
		pStr, gStr := "", ""
		if r.P != lastP {
			pStr = fmt.Sprintf("%d", r.P)
			gStr = partition.Describe(r.Gamma)
			lastP = r.P
		}
		flag := ""
		if math.Abs(r.RelErr) > 0.25 {
			flag = "  <-"
		}
		fmt.Fprintf(&sb, "%6s  %12s  %-8s  %12s  %12s  %7.1f%%%s\n",
			pStr, gStr, r.Phase, fmtCalSec(r.Predicted), fmtCalSec(r.Measured), 100*r.RelErr, flag)
	}
	return sb.String()
}

// fmtCalSec renders seconds compactly for the calibration table.
func fmtCalSec(s float64) string {
	switch {
	case s == 0:
		return "0"
	case math.Abs(s) < 1e-3:
		return fmt.Sprintf("%.2fµs", s*1e6)
	case math.Abs(s) < 1:
		return fmt.Sprintf("%.3fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

package exp

import (
	"fmt"
	"strings"

	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/numutil"
	"genmp/internal/obs"
	"genmp/internal/partition"
	"genmp/internal/redist"
	"genmp/internal/sim"
)

// RedistRow is one redistribution policy of the layout-switch comparison.
type RedistRow struct {
	Key    string
	Policy string
	Gamma  string // partitioning used, when the policy switches into one
	Time   float64
	Bytes  int
	Msgs   int
	// PeakBytes is the largest per-rank staging bound any of the policy's
	// compiled plans declares (0 when the policy compiles none).
	PeakBytes int
}

// redistFlopsPerElement is the per-phase arithmetic of the synthetic
// spectral-style workload: heavy enough that redistribution cost matters
// without dominating.
const redistFlopsPerElement = 50.0

// RedistComparison runs the layout-switch comparison with the default
// crossbar and no staging budget.
func RedistComparison(p int, eta []int, steps int) ([]RedistRow, error) {
	return RedistComparisonOn("", sim.AlgAuto, p, eta, steps, 0)
}

// RedistComparisonOn models a spectral-style computation whose first phase
// wants a BLOCK(dim 0) layout and whose second phase wants a sweep-friendly
// one, under three redistribution policies, on the named interconnect
// topology ("" keeps the default crossbar):
//
//   - block-transpose: the historical dynamic-block answer — transpose to
//     BLOCK(dim 1) for phase two and back, two full all-to-alls per step,
//     both compiled as BLOCK→BLOCK redist plans (the legacy special case).
//   - redist-switch: the generalized engine's answer — switch BLOCK↔MULTI
//     each step, so phase two runs under a multipartitioning with a cheap
//     depth-1 halo instead of a second transpose. maxBytes (0 = unbounded)
//     is handed to the accountant, chunking the switch into rounds.
//   - multi-only: never switch; both phases run under the multipartitioning
//     (phase one pays nothing extra here — the row is the floor showing
//     what the switches themselves cost).
//
// All three policies execute identical arithmetic per step, so makespan
// differences are pure redistribution policy. Model-only: no payloads flow.
func RedistComparisonOn(topology string, coll sim.Alg, p int, eta []int, steps, maxBytes int) ([]RedistRow, error) {
	d := len(eta)
	if d < 2 {
		return nil, fmt.Errorf("exp: redist comparison needs d ≥ 2")
	}
	obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
	m, err := core.NewOptimal(p, d, obj)
	if err != nil {
		return nil, err
	}
	env, err := dist.NewEnv(m, eta, dist.HandCoded())
	if err != nil {
		return nil, err
	}

	blk0, err := redist.NewBlockLayout(p, eta, 0)
	if err != nil {
		return nil, err
	}
	blk1, err := redist.NewBlockLayout(p, eta, 1)
	if err != nil {
		return nil, err
	}
	multi, err := redist.NewMultiLayout(m, eta)
	if err != nil {
		return nil, err
	}
	t01, err := redist.Compile(redist.Spec{From: blk0, To: blk1})
	if err != nil {
		return nil, err
	}
	t10, err := redist.Compile(redist.Spec{From: blk1, To: blk0})
	if err != nil {
		return nil, err
	}
	bm, err := redist.Compile(redist.Spec{From: blk0, To: multi, MaxBytes: maxBytes})
	if err != nil {
		return nil, err
	}
	mb, err := redist.Compile(redist.Spec{From: multi, To: blk0, MaxBytes: maxBytes})
	if err != nil {
		return nil, err
	}

	// Per-rank element counts under each layout (balanced up to remainder
	// spreading, but charged exactly).
	elemsOf := func(l redist.Layout, q int) int {
		n := 0
		for _, rg := range l.Regions(q) {
			n += rg.Rect.Size()
		}
		return n
	}
	phase := func(r *sim.Rank, l redist.Layout) {
		r.ComputeFlops(redistFlopsPerElement * float64(elemsOf(l, r.ID)))
	}
	perMsg := env.Overhead.PerMessage

	type policy struct {
		key, desc string
		gamma     string
		plans     []*redist.Plan
		body      func(r *sim.Rank)
	}
	policies := []policy{
		{
			key: "block-transpose", desc: "BLOCK(0)↔BLOCK(1), two transposes/step",
			plans: []*redist.Plan{t01, t10},
			body: func(r *sim.Rank) {
				for s := 0; s < steps; s++ {
					phase(r, blk0)
					redist.Execute(r, t01, redist.ExecOpts{Coll: coll, PerMessage: perMsg})
					phase(r, blk1)
					redist.Execute(r, t10, redist.ExecOpts{Coll: coll, PerMessage: perMsg})
				}
			},
		},
		{
			key: "redist-switch", desc: "BLOCK(0)↔MULTI, halo under multi",
			gamma: partition.Describe(m.Gamma()),
			plans: []*redist.Plan{bm, mb},
			body: func(r *sim.Rank) {
				for s := 0; s < steps; s++ {
					phase(r, blk0)
					redist.Execute(r, bm, redist.ExecOpts{Coll: coll, PerMessage: perMsg})
					env.ExchangeHalos(r, 1, 1)
					phase(r, multi)
					redist.Execute(r, mb, redist.ExecOpts{Coll: coll, PerMessage: perMsg})
				}
			},
		},
		{
			key: "multi-only", desc: "stay MULTI, no switches",
			gamma: partition.Describe(m.Gamma()),
			body: func(r *sim.Rank) {
				for s := 0; s < steps; s++ {
					phase(r, multi)
					env.ExchangeHalos(r, 1, 1)
					phase(r, multi)
				}
			},
		},
	}

	rows := make([]RedistRow, 0, len(policies))
	for _, pol := range policies {
		mach, err := strategyMachineOn(topology, coll, p)
		if err != nil {
			return nil, err
		}
		res, err := mach.Run(pol.body)
		if err != nil {
			return nil, fmt.Errorf("exp: redist policy %s: %w", pol.key, err)
		}
		peak := 0
		for _, pl := range pol.plans {
			peak = numutil.MaxInt(peak, pl.PeakBytes)
		}
		rows = append(rows, RedistRow{
			Key: pol.key, Policy: pol.desc, Gamma: pol.gamma,
			Time: res.Makespan, Bytes: res.TotalBytes(), Msgs: res.TotalMessages(),
			PeakBytes: peak,
		})
	}
	return rows, nil
}

// FormatRedistComparison renders the policy table with the winner marked.
func FormatRedistComparison(rows []RedistRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s  %-36s  %12s  %12s  %8s  %10s\n",
		"policy", "description", "time", "bytes", "msgs", "peak B/rk")
	best := 0
	for i, r := range rows {
		if r.Time < rows[best].Time {
			best = i
		}
	}
	for i, r := range rows {
		mark := "  "
		if i == best {
			mark = " *"
		}
		fmt.Fprintf(&sb, "%-16s  %-36s  %11.4fs%s  %12d  %8d  %10d\n",
			r.Key, r.Policy, r.Time, mark, r.Bytes, r.Msgs, r.PeakBytes)
	}
	return sb.String()
}

// RedistBenchRecords runs the redistribution comparison and converts it to
// BENCH records (suite "redist", one record per policy) for the committed
// bench trajectory and the CI perf gate.
func RedistBenchRecords(p int, eta []int, steps, maxBytes int) ([]obs.BenchRecord, error) {
	return RedistBenchRecordsOn("", sim.AlgAuto, p, eta, steps, maxBytes)
}

// RedistBenchRecordsOn produces the redistribution bench records on the
// named topology (non-default topologies get suite "redist@<t>").
func RedistBenchRecordsOn(topology string, coll sim.Alg, p int, eta []int, steps, maxBytes int) ([]obs.BenchRecord, error) {
	rows, err := RedistComparisonOn(topology, coll, p, eta, steps, maxBytes)
	if err != nil {
		return nil, err
	}
	suite := "redist"
	if topology != "" && topology != "default" {
		suite += "@" + topology
	}
	recs := make([]obs.BenchRecord, 0, len(rows))
	for _, r := range rows {
		recs = append(recs, obs.BenchRecord{
			Suite: suite, Name: r.Key,
			P: p, Eta: eta, Steps: steps, Gamma: r.Gamma,
			Makespan: r.Time, Messages: r.Msgs, Bytes: r.Bytes,
		})
	}
	return recs, nil
}

package exp

import (
	"fmt"
	"strings"

	"genmp/internal/core"
	"genmp/internal/nas"
	"genmp/internal/obs"
	"genmp/internal/obs/causal"
	"genmp/internal/partition"
	"genmp/internal/plan"
	"genmp/internal/sim"
)

// OverlapResult is the comm/compute-overlap comparison (ROADMAP item 2,
// DESIGN.md §14): SP with the boundary-first overlap schedule off and on,
// next to the causal engine's what-if prediction over the off trace — the
// same `critpath -whatif "overlap:phase=solve*"` replay, run in-process.
type OverlapResult struct {
	P     int
	Eta   []int
	Steps int
	// Frac is the boundary fraction of the overlap annotation (0 picks
	// plan.DefaultOverlapFrac).
	Frac float64
	// Off/On are the measured makespans; Predicted is the causal replay of
	// the off trace with every solve-phase carry posted early — the model's
	// bound on what overlap can recover.
	Off, On, Predicted float64
	// SolveWaitOff/On sum the solve phases' exposed wait over all ranks:
	// the bucket the optimization attacks (profdiff shows the same
	// shrinkage between the two runs' profiles).
	SolveWaitOff, SolveWaitOn float64
	// Gamma is the partitioning used.
	Gamma string
}

// MeasuredRecovery returns how much makespan the overlap schedule actually
// recovered; PredictedRecovery what the causal what-if replay predicted.
func (r OverlapResult) MeasuredRecovery() float64  { return r.Off - r.On }
func (r OverlapResult) PredictedRecovery() float64 { return r.Off - r.Predicted }

// WithinPredictedBound reports whether the measured improvement stays
// within the causal prediction plus a small tolerance. The what-if replay
// advances carries without charging the second per-boundary message
// start-up the real schedule pays, so it bounds the realizable recovery
// from above.
func (r OverlapResult) WithinPredictedBound() bool {
	tol := 1e-9 * r.Off
	return r.MeasuredRecovery() <= r.PredictedRecovery()+tol
}

// OverlapComparison runs the SP overlap comparison on the default crossbar.
func OverlapComparison(p int, eta []int, steps int, frac float64) (OverlapResult, error) {
	return OverlapComparisonOn("", p, eta, steps, frac)
}

// OverlapComparisonOn runs the comparison on the named topology:
// model-only SP with the strict schedule (tracing), the causal what-if
// replay posting every solve-phase carry early, then the same run with the
// overlap-annotated plan — same partitioning, fresh machine per run so
// fabric state never leaks between them.
func OverlapComparisonOn(topology string, p int, eta []int, steps int, frac float64) (OverlapResult, error) {
	d := len(eta)
	obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
	m, err := core.NewOptimal(p, d, obj)
	if err != nil {
		return OverlapResult{}, err
	}
	env, err := distEnv(m, eta)
	if err != nil {
		return OverlapResult{}, err
	}
	o := plan.Overlap{Enabled: true, Frac: frac}
	out := OverlapResult{P: p, Eta: eta, Steps: steps, Frac: o.Fraction(), Gamma: partition.Describe(m.Gamma())}

	// Overlap off, traced: the baseline and the causal engine's input.
	machOff, err := nas.Origin2000MachineOn(topology, p)
	if err != nil {
		return OverlapResult{}, err
	}
	machOff.Trace = &sim.Trace{}
	plOff, err := nas.CompilePlan(env)
	if err != nil {
		return OverlapResult{}, err
	}
	resOff, err := nas.RunPlanned(env, machOff, steps, nil, plOff)
	if err != nil {
		return OverlapResult{}, err
	}
	out.Off = resOff.Makespan
	out.SolveWaitOff = solveWait(resOff)

	// The what-if prediction over the off trace: every solve-phase carry
	// departs once the boundary fraction of the preceding compute finishes.
	dag, err := causal.Build(machOff.Trace, p)
	if err != nil {
		return OverlapResult{}, err
	}
	perts, err := causal.ParsePerturbations(fmt.Sprintf("overlap:phase=solve*,frac=%g", out.Frac))
	if err != nil {
		return OverlapResult{}, err
	}
	sched, err := dag.Replay(perts...)
	if err != nil {
		return OverlapResult{}, err
	}
	out.Predicted = sched.Makespan

	// Overlap on: identical run over the overlap-annotated plan.
	machOn, err := nas.Origin2000MachineOn(topology, p)
	if err != nil {
		return OverlapResult{}, err
	}
	plOn, err := nas.CompilePlanOverlap(env, o)
	if err != nil {
		return OverlapResult{}, err
	}
	resOn, err := nas.RunPlanned(env, machOn, steps, nil, plOn)
	if err != nil {
		return OverlapResult{}, err
	}
	out.On = resOn.Makespan
	out.SolveWaitOn = solveWait(resOn)
	return out, nil
}

// solveWait sums the exposed wait of every solve phase over all ranks.
func solveWait(res sim.Result) float64 {
	w := 0.0
	for _, s := range res.Ranks {
		for label, ps := range s.Phases {
			if strings.HasPrefix(label, "solve") {
				w += ps.WaitTime
			}
		}
	}
	return w
}

// FormatOverlapComparison renders the comparison with the measured recovery
// next to the causal prediction.
func FormatOverlapComparison(r OverlapResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SP overlap comparison: p=%d eta=%v steps=%d gamma=%s frac=%g\n",
		r.P, r.Eta, r.Steps, r.Gamma, r.Frac)
	fmt.Fprintf(&sb, "  overlap off   %12.6fs   solve wait %10.6fs\n", r.Off, r.SolveWaitOff)
	fmt.Fprintf(&sb, "  overlap on    %12.6fs   solve wait %10.6fs\n", r.On, r.SolveWaitOn)
	fmt.Fprintf(&sb, "  whatif bound  %12.6fs   (overlap:phase=solve*,frac=%g over the off trace)\n", r.Predicted, r.Frac)
	fmt.Fprintf(&sb, "  recovered %.6fs of a predicted %.6fs", r.MeasuredRecovery(), r.PredictedRecovery())
	if r.WithinPredictedBound() {
		sb.WriteString(" — within the causal bound\n")
	} else {
		sb.WriteString(" — EXCEEDS the causal bound\n")
	}
	return sb.String()
}

// OverlapBenchRecords runs the overlap comparison and converts it to BENCH
// records (suite "sp-overlap", rows overlap-off / overlap-on; non-default
// topologies get suite "sp-overlap@<t>") for the committed bench trajectory
// and the CI perf gate.
func OverlapBenchRecords(topology string, p int, eta []int, steps int, frac float64) ([]obs.BenchRecord, error) {
	r, err := OverlapComparisonOn(topology, p, eta, steps, frac)
	if err != nil {
		return nil, err
	}
	return OverlapRecords(topology, r), nil
}

// OverlapRecords converts an already-run comparison into its bench records,
// so callers that also print the comparison don't run it twice.
func OverlapRecords(topology string, r OverlapResult) []obs.BenchRecord {
	suite := "sp-overlap"
	if topology != "" && topology != "default" {
		suite += "@" + topology
	}
	return []obs.BenchRecord{
		{Suite: suite, Name: "overlap-off", P: r.P, Eta: r.Eta, Steps: r.Steps, Gamma: r.Gamma, Makespan: r.Off},
		{Suite: suite, Name: "overlap-on", P: r.P, Eta: r.Eta, Steps: r.Steps, Gamma: r.Gamma, Makespan: r.On},
	}
}

package exp

import (
	"math"
	"strings"
	"testing"

	"genmp/internal/nas"
)

func TestCalibrateAuditsEveryPhase(t *testing.T) {
	saved := Table1Procs
	defer func() { Table1Procs = saved }()
	// Mix of counts that divide 36³ evenly (the model should be near-exact)
	// and counts that do not (5×5×5, 8×8×8 — residual imbalance waits).
	Table1Procs = []int{1, 4, 9, 16, 25, 36, 64}

	rows, err := Calibrate(nas.ClassW.Eta, 2)
	if err != nil {
		t.Fatal(err)
	}
	phases := calibrationPhases(3)
	if want := len(Table1Procs) * len(phases); len(rows) != want {
		t.Fatalf("want %d rows (%d procs × %d phases), got %d", want, len(Table1Procs), len(phases), len(rows))
	}
	i := 0
	for _, p := range Table1Procs {
		for _, ph := range phases {
			r := rows[i]
			i++
			if r.P != p || r.Phase != ph {
				t.Fatalf("row %d is (p=%d, %q), want (p=%d, %q)", i-1, r.P, r.Phase, p, ph)
			}
			if r.Measured < 0 || math.IsNaN(r.Measured) || math.IsNaN(r.Predicted) {
				t.Errorf("p=%d %s: bad times %+v", p, ph, r)
			}
			// The pure-compute phases have no waits and exactly balanced
			// totals, so the prediction must match to float precision.
			if ph == nas.PhaseRHS || ph == nas.PhaseAdd {
				if math.Abs(r.RelErr) > 1e-6 {
					t.Errorf("p=%d %s: compute phase off by %.2g%% (pred %g, meas %g)",
						p, ph, 100*r.RelErr, r.Predicted, r.Measured)
				}
			}
			// Everywhere else the model may miss imbalance waits, but an
			// error beyond 2× means the model (or the audit) is broken.
			if r.Measured > 0 && math.Abs(r.RelErr) > 1 {
				t.Errorf("p=%d %s: relative error %.2g out of range (%+v)", p, ph, r.RelErr, r)
			}
		}
	}
	// When the partitioning divides the extents evenly there are no
	// imbalance waits at all: the sweep model must be near-exact, which is
	// the strongest statement the audit can certify.
	for _, r := range rows {
		if r.P == 16 && strings.HasPrefix(r.Phase, "solve") && math.Abs(r.RelErr) > 1e-6 {
			t.Errorf("p=16 %s: evenly divided sweep off by %.2g%%", r.Phase, 100*r.RelErr)
		}
	}

	out := FormatCalibration(rows)
	for _, want := range []string{"# CPUs", "solve0", "predicted", "measured", "5×5×5"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatCalibration missing %q:\n%s", want, out)
		}
	}
}

func TestCalibrateOnTopologies(t *testing.T) {
	saved := Table1Procs
	defer func() { Table1Procs = saved }()
	Table1Procs = []int{4, 16}

	base, err := Calibrate(nas.ClassW.Eta, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The empty topology must reproduce the pre-Fabric audit bit for bit.
	same, err := CalibrateOn("", nas.ClassW.Eta, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i].Predicted != same[i].Predicted || base[i].Measured != same[i].Measured {
			t.Fatalf("default CalibrateOn differs at %s p=%d: pred %g vs %g, meas %g vs %g",
				base[i].Phase, base[i].P, base[i].Predicted, same[i].Predicted, base[i].Measured, same[i].Measured)
		}
	}
	// On a bus both sides of the audit shift together (shared-medium K₃,
	// shared-medium simulator): the audit must stay sane, not blow past 2×.
	busRows, err := CalibrateOn("bus", nas.ClassW.Eta, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range busRows {
		if r.Measured > 0 && math.Abs(r.RelErr) > 1 {
			t.Errorf("bus p=%d %s: relative error %.2g out of range", r.P, r.Phase, r.RelErr)
		}
	}
	// The bus simulation is strictly slower than the crossbar on the solve
	// phases (the carries cross a shared medium).
	for i := range base {
		if strings.HasPrefix(base[i].Phase, "solve") && busRows[i].Measured <= base[i].Measured {
			t.Errorf("bus p=%d %s measured %g not above crossbar %g",
				base[i].P, base[i].Phase, busRows[i].Measured, base[i].Measured)
		}
	}
	if _, err := CalibrateOn("no-such-topology", nas.ClassW.Eta, 1); err == nil {
		t.Error("unknown topology should error")
	}
}

package exp

import (
	"path/filepath"
	"testing"

	"genmp/internal/adi"
	"genmp/internal/dmem"
	"genmp/internal/nas"
	"genmp/internal/obs"
	"genmp/internal/plan"
	"genmp/internal/rt"
	"genmp/internal/sweep"
)

// Backend bit-identity contract (DESIGN.md §15): the real-parallel runtime
// executes the same compiled SweepPlan as the virtual-time simulator, so
// the final field data must match the simulator run to the last
// Float64bits — on every application, processor count, and overlap
// setting. The rt backend shares nothing with sim but the schedule and
// the kernels; any divergence means a backend reordered the arithmetic.

// TestRTBitIdentitySP: strict distributed-memory SP, sim vs rt backends,
// overlap off and on, at p ∈ {4, 16}.
func TestRTBitIdentitySP(t *testing.T) {
	eta := []int{12, 12, 12}
	for _, p := range []int{4, 16} {
		for _, o := range []plan.Overlap{{}, overlapOn} {
			env := overlapEnv(t, p, overlapGamma[p], eta)
			want, _, err := dmem.RunSPOverlap(env, nas.Origin2000Machine(p), 2, o)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := dmem.RunSPReal(env, rt.NewMachine(p), 2, o, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameBits(t, "sp-rt", want, got)
		}
	}
}

// TestRTShippedPlan: the full plan-shipping path — compile on one "node",
// dump via obs.WritePlanJSON, reconstruct on a "worker" via obs.LoadPlan,
// execute the shipped schedule on the rt backend — must produce the same
// bits as the simulator compiling locally.
func TestRTShippedPlan(t *testing.T) {
	eta := []int{12, 12, 12}
	const p = 4
	env := overlapEnv(t, p, overlapGamma[p], eta)
	pl, err := dmem.CompileSweepPlanOverlap(env, sweep.NewPenta(), overlapOn)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := obs.WritePlanJSON(path, "shipped-plan test", pl); err != nil {
		t.Fatal(err)
	}
	shipped, err := obs.LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := dmem.RunSPOverlap(env, nas.Origin2000Machine(p), 2, overlapOn)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := dmem.RunSPReal(env, rt.NewMachine(p), 2, overlapOn, shipped)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "sp-shipped", want, got)
}

// TestRTBitIdentityBT: strict BT (5×5 block carries), sim vs rt, p ∈ {4, 16}.
func TestRTBitIdentityBT(t *testing.T) {
	eta := []int{12, 12, 12}
	for _, p := range []int{4, 16} {
		for _, o := range []plan.Overlap{{}, overlapOn} {
			env := overlapEnv(t, p, overlapGamma[p], eta)
			want, _, err := dmem.RunBTOverlap(env, nas.Origin2000Machine(p), 2, o)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := dmem.RunBTReal(env, rt.NewMachine(p), 2, o, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameBits(t, "bt-rt", want, got)
		}
	}
}

// TestRTBitIdentityADI: strict ADI (tridiagonal carries, no halos), sim vs
// rt, p ∈ {4, 16}.
func TestRTBitIdentityADI(t *testing.T) {
	eta := []int{16, 16, 16}
	for _, p := range []int{4, 16} {
		for _, o := range []plan.Overlap{{}, overlapOn} {
			env := overlapEnv(t, p, overlapGamma[p], eta)
			pb := adi.Problem{Eta: eta, Alpha: 0.3, Steps: 2}
			want, _, err := dmem.RunADIOverlap(pb, env, nas.Origin2000Machine(p), o)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := dmem.RunADIReal(pb, env, rt.NewMachine(p), o, nil)
			if err != nil {
				t.Fatal(err)
			}
			sameBits(t, "adi-rt", want, got)
		}
	}
}

package exp

import (
	"math"
	"testing"

	"genmp/internal/adi"
	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/nas"
	"genmp/internal/partition"
)

// Bit-identity contract of the redistribution refactor: the dynamic-block
// transpose and both halo exchanges now re-emit their schedules through
// redist.Compile/CompileHalo, and these Float64bits constants — captured
// from the tree immediately before the rewiring — pin the virtual-time
// makespans (and, in data mode, the numerics) to the bit. Any drift means
// the compiled schedules stopped replaying the legacy ones exactly.

func checkBits(t *testing.T, what string, got float64, want uint64) {
	t.Helper()
	if math.Float64bits(got) != want {
		t.Errorf("%s = %#x (%g), want %#x (%g) — compiled redistribution diverged from the legacy schedule",
			what, math.Float64bits(got), got, want, math.Float64frombits(want))
	}
}

// TestRedistBitIdentitySP: NAS SP (multipartitioned sweeps + dist halo
// exchange) at p ∈ {4, 16}, class-S extents, two timesteps.
func TestRedistBitIdentitySP(t *testing.T) {
	eta := []int{12, 12, 12}
	want := map[int]uint64{4: 0x3f7ca3ac4ff86d72, 16: 0x3f7249c895217ec0}
	for _, p := range []int{4, 16} {
		obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
		res, err := partition.OptimalCapped(p, len(eta), obj, eta)
		if err != nil {
			t.Fatal(err)
		}
		m, err := core.NewGeneralized(p, res.Gamma)
		if err != nil {
			t.Fatal(err)
		}
		env, err := dist.NewEnv(m, eta, dist.DHPF())
		if err != nil {
			t.Fatal(err)
		}
		r, err := nas.Run(env, nas.Origin2000Machine(p), 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkBits(t, "sp makespan", r.Makespan, want[p])
	}
}

// TestRedistBitIdentityBT: NAS BT (staggered sweeps, same halo machinery)
// at p ∈ {4, 16}.
func TestRedistBitIdentityBT(t *testing.T) {
	eta := []int{12, 12, 12}
	gamma := map[int][]int{4: {2, 2, 2}, 16: {4, 4, 4}}
	want := map[int]uint64{4: 0x3f961951006d4d03, 16: 0x3f84824841e04f6a}
	for _, p := range []int{4, 16} {
		m, err := core.NewGeneralized(p, gamma[p])
		if err != nil {
			t.Fatal(err)
		}
		env, err := dist.NewEnv(m, eta, dist.DHPF())
		if err != nil {
			t.Fatal(err)
		}
		r, err := nas.BTRun(env, nas.Origin2000Machine(p), 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkBits(t, "bt makespan", r.Makespan, want[p])
	}
}

// TestRedistBitIdentityTranspose: the ADI dynamic-block strategy, whose
// forward and backward transposes are now compiled BLOCK→BLOCK
// redistributions, model-only at p ∈ {4, 16}.
func TestRedistBitIdentityTranspose(t *testing.T) {
	eta := []int{32, 32, 32}
	want := map[int]uint64{4: 0x3f83932eddde5d6e, 16: 0x3f6ba2f5dc911906}
	for _, p := range []int{4, 16} {
		blk, err := dist.NewBlock(p, eta, 0, dist.HandCoded())
		if err != nil {
			t.Fatal(err)
		}
		pb := adi.Problem{Eta: eta, Alpha: 0.3, Steps: 2}
		r, err := adi.Run(pb, nil, adi.Config{
			Machine: nas.Origin2000Machine(p), Strategy: adi.BlockTranspose,
			Block: blk, ModelOnly: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkBits(t, "adi-transpose makespan", r.Makespan, want[p])
	}
}

// TestRedistBitIdentityTransposeData: data-mode transpose at p = 4 — the
// makespan and the solution's sum of squares both pinned to the bit.
func TestRedistBitIdentityTransposeData(t *testing.T) {
	p := 4
	eta := []int{16, 16, 16}
	blk, err := dist.NewBlock(p, eta, 0, dist.HandCoded())
	if err != nil {
		t.Fatal(err)
	}
	pb := adi.Problem{Eta: eta, Alpha: 0.3, Steps: 2}
	u := pb.InitialCondition()
	r, err := adi.Run(pb, u, adi.Config{
		Machine: nas.Origin2000Machine(p), Strategy: adi.BlockTranspose, Block: blk,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkBits(t, "adi-transpose-data makespan", r.Makespan, 0x3f567fddc84213f9)
	sum := 0.0
	for _, v := range u.Data() {
		sum += v * v
	}
	checkBits(t, "adi-transpose-data sumsq", sum, 0x4081bb81f6f10c2a)
}

// TestRedistBitIdentityStrict: the strict distributed-memory SP (the dmem
// payload-carrying halo path) at p = 8 — numerics must stay exact against
// the shared-storage run, and the strict makespan stays pinned.
func TestRedistBitIdentityStrict(t *testing.T) {
	sp, err := RunStrictParity(8, []int{4, 4, 2}, []int{12, 12, 12}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.MaxDiff != 0 {
		t.Errorf("strict SP diverged from shared-storage run (max diff %g)", sp.MaxDiff)
	}
	checkBits(t, "strict makespan", sp.StrictTime, 0x3f646309e7c9b3a1)
}

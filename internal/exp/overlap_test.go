package exp

import "testing"

// TestOverlapComparison checks the acceptance contract of the overlap
// schedule on SP at p=16: the solve-phase wait bucket shrinks with overlap
// on, and the measured makespan change stays within the causal what-if
// prediction over the off trace (the replay advances carries without
// charging the second per-boundary start-up, so it bounds the realizable
// recovery from above on the contention-free crossbar).
func TestOverlapComparison(t *testing.T) {
	r, err := OverlapComparison(16, []int{32, 32, 32}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.SolveWaitOn >= r.SolveWaitOff/2 {
		t.Errorf("solve wait did not shrink: off %g, on %g", r.SolveWaitOff, r.SolveWaitOn)
	}
	if !r.WithinPredictedBound() {
		t.Errorf("measured recovery %g exceeds causal prediction %g",
			r.MeasuredRecovery(), r.PredictedRecovery())
	}
	if r.Frac != 0.25 {
		t.Errorf("default frac = %g, want plan.DefaultOverlapFrac", r.Frac)
	}
}

// TestOverlapBenchRecords pins the record shape the committed
// BENCH_overlap.json rows use.
func TestOverlapBenchRecords(t *testing.T) {
	recs, err := OverlapBenchRecords("bus", 4, []int{16, 16, 16}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Suite != "sp-overlap@bus" ||
		recs[0].Name != "overlap-off" || recs[1].Name != "overlap-on" {
		t.Fatalf("unexpected records: %+v", recs)
	}
	for _, rec := range recs {
		if rec.Makespan <= 0 {
			t.Errorf("%s: nonpositive makespan %g", rec.Name, rec.Makespan)
		}
	}
}

package obs

import (
	"os"
	"reflect"
	"strings"
	"testing"
)

func TestReadBenchJSONRoundTrip(t *testing.T) {
	path := t.TempDir() + "/BENCH_rt.json"
	in := BenchFile{
		Source: "test",
		Records: []BenchRecord{
			{Suite: "s", Name: "a", P: 4, Makespan: 1.5, Extra: map[string]float64{"nodes": 10}},
			{Suite: "s", Name: "a", P: 2, Speedup: 3},
		},
	}
	if err := WriteBenchJSON(path, in); err != nil {
		t.Fatal(err)
	}
	bf, err := ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Schema != BenchSchema || bf.Source != "test" || len(bf.Records) != 2 {
		t.Fatalf("round trip: %+v", bf)
	}
	// Same (suite, name) at different p must order by p.
	if bf.Records[0].P != 2 || bf.Records[1].P != 4 {
		t.Fatalf("records not sorted by (suite, name, p): %+v", bf.Records)
	}
	if !reflect.DeepEqual(bf.Records[1].Extra, map[string]float64{"nodes": 10}) {
		t.Fatalf("extras lost: %+v", bf.Records[1])
	}
}

func TestReadBenchJSONRejectsUnknownSchema(t *testing.T) {
	path := t.TempDir() + "/BENCH_v9.json"
	if err := os.WriteFile(path, []byte(`{"schema": 9, "source": "x", "records": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadBenchJSON(path)
	if err == nil || !strings.Contains(err.Error(), "schema 9") {
		t.Fatalf("want unsupported-schema error, got %v", err)
	}
}

func TestReadBenchJSONRejectsDuplicateKeys(t *testing.T) {
	path := t.TempDir() + "/BENCH_dup.json"
	body := `{"schema": 1, "source": "x", "records": [
		{"suite": "s", "name": "n", "p": 4, "speedup": 1},
		{"suite": "s", "name": "n", "p": 4, "speedup": 2}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadBenchJSON(path)
	if err == nil || !strings.Contains(err.Error(), "duplicate record s/n (p=4)") {
		t.Fatalf("want duplicate-key error, got %v", err)
	}
	// Same name at a different p is not a duplicate.
	ok := `{"schema": 1, "source": "x", "records": [
		{"suite": "s", "name": "n", "p": 4, "speedup": 1},
		{"suite": "s", "name": "n", "p": 8, "speedup": 2}]}`
	if err := os.WriteFile(path, []byte(ok), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchJSON(path); err != nil {
		t.Fatalf("distinct p rejected: %v", err)
	}
}

// A bench file cut off mid-write (or a path that never existed) must fail
// loudly rather than yield an empty BenchFile the perf gate would compare
// against.
func TestReadBenchJSONTruncated(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadBenchJSON(dir + "/absent.json"); err == nil {
		t.Error("missing file: want error, got nil")
	}

	valid := dir + "/BENCH_ok.json"
	in := BenchFile{Source: "t", Records: []BenchRecord{{Suite: "s", Name: "a", P: 2, Makespan: 1}}}
	if err := WriteBenchJSON(valid, in); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}
	trunc := dir + "/BENCH_cut.json"
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchJSON(trunc); err == nil || !strings.Contains(err.Error(), "parse") {
		t.Errorf("truncated file: want parse error, got %v", err)
	}
}

func TestMergeBenchFiles(t *testing.T) {
	a := BenchFile{Source: "spbench -json", Records: []BenchRecord{{Suite: "a", Name: "x", P: 1}}}
	b := BenchFile{Source: "sweepbench -json", Records: []BenchRecord{{Suite: "b", Name: "y", P: 2}}}
	merged, err := MergeBenchFiles(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Source != "spbench -json + sweepbench -json" {
		t.Errorf("source %q", merged.Source)
	}
	if len(merged.Records) != 2 || merged.Schema != BenchSchema {
		t.Fatalf("merged: %+v", merged)
	}

	dup := BenchFile{Records: []BenchRecord{{Suite: "a", Name: "x", P: 1}}}
	if _, err := MergeBenchFiles(a, dup); err == nil {
		t.Fatal("cross-file duplicate not rejected")
	}
	bad := BenchFile{Schema: 2}
	if _, err := MergeBenchFiles(a, bad); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// BenchSchema is the current BENCH_*.json schema version. ReadBenchJSON
// rejects any other version so a diff never silently compares files with
// different field meanings.
const BenchSchema = 1

// BenchRecord is one machine-readable measurement for cross-PR performance
// trend tracking (the BENCH_*.json files at the repo root). All quantities
// are virtual-machine results, so they are bit-reproducible and any drift
// between PRs is a real behavior change, not measurement noise.
type BenchRecord struct {
	Suite    string  `json:"suite"`
	Name     string  `json:"name"`
	P        int     `json:"p,omitempty"`
	Eta      []int   `json:"eta,omitempty"`
	Steps    int     `json:"steps,omitempty"`
	Gamma    string  `json:"gamma,omitempty"`
	Makespan float64 `json:"makespan_sec,omitempty"`
	Speedup  float64 `json:"speedup,omitempty"`
	Messages int     `json:"messages,omitempty"`
	Bytes    int     `json:"bytes,omitempty"`
	// Extra holds suite-specific scalar metrics (e.g. search node counts,
	// calibration errors), sorted by key on output.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// BenchKey is the identity of a record: files are aligned and deduplicated
// by (suite, name, p).
type BenchKey struct {
	Suite string
	Name  string
	P     int
}

// Key returns the record's identity.
func (r BenchRecord) Key() BenchKey { return BenchKey{Suite: r.Suite, Name: r.Name, P: r.P} }

// String renders the key the way reports refer to a record.
func (k BenchKey) String() string {
	if k.P > 0 {
		return fmt.Sprintf("%s/%s (p=%d)", k.Suite, k.Name, k.P)
	}
	return fmt.Sprintf("%s/%s", k.Suite, k.Name)
}

// less orders keys by (suite, name, p).
func (k BenchKey) less(o BenchKey) bool {
	if k.Suite != o.Suite {
		return k.Suite < o.Suite
	}
	if k.Name != o.Name {
		return k.Name < o.Name
	}
	return k.P < o.P
}

// BenchFile is the envelope of a BENCH_*.json file.
type BenchFile struct {
	Schema  int           `json:"schema"`
	Source  string        `json:"source"` // the command(s) that produced the file, e.g. "spbench -class B -steps 2 -json"
	Records []BenchRecord `json:"records"`
}

// WriteBenchJSON writes records to path as indented, deterministic JSON
// (records sorted by suite, then name, then p, so the same name measured
// at several processor counts orders reproducibly).
func WriteBenchJSON(path string, bf BenchFile) error {
	if bf.Schema == 0 {
		bf.Schema = BenchSchema
	}
	sort.SliceStable(bf.Records, func(a, b int) bool {
		return bf.Records[a].Key().less(bf.Records[b].Key())
	})
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal bench file: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchJSON is the strict counterpart of WriteBenchJSON: it rejects
// unknown schema versions and duplicate (suite, name, p) keys, so every
// downstream consumer (regress, benchdiff, CI) can align records by key
// without ambiguity.
func ReadBenchJSON(path string) (BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchFile{}, fmt.Errorf("obs: read bench file: %w", err)
	}
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return BenchFile{}, fmt.Errorf("obs: parse %s: %w", path, err)
	}
	if bf.Schema != BenchSchema {
		return BenchFile{}, fmt.Errorf("obs: %s: unsupported bench schema %d (this build reads schema %d)", path, bf.Schema, BenchSchema)
	}
	if err := checkDuplicates(path, bf.Records, map[BenchKey]bool{}); err != nil {
		return BenchFile{}, err
	}
	return bf, nil
}

// checkDuplicates folds records into seen, failing on the first repeated key.
func checkDuplicates(path string, records []BenchRecord, seen map[BenchKey]bool) error {
	for _, r := range records {
		k := r.Key()
		if seen[k] {
			return fmt.Errorf("obs: %s: duplicate record %s", path, k)
		}
		seen[k] = true
	}
	return nil
}

// MergeBenchFiles combines several bench files (e.g. spbench's Table 1 and
// sweepbench's strategy comparison) into one, joining their Source strings
// with " + " and failing on any (suite, name, p) collision across inputs.
func MergeBenchFiles(files ...BenchFile) (BenchFile, error) {
	out := BenchFile{Schema: BenchSchema}
	seen := map[BenchKey]bool{}
	var sources []string
	for i, bf := range files {
		if bf.Schema != 0 && bf.Schema != BenchSchema {
			return BenchFile{}, fmt.Errorf("obs: merge input %d has schema %d (want %d)", i, bf.Schema, BenchSchema)
		}
		if err := checkDuplicates(fmt.Sprintf("merge input %d", i), bf.Records, seen); err != nil {
			return BenchFile{}, err
		}
		out.Records = append(out.Records, bf.Records...)
		if bf.Source != "" {
			sources = append(sources, bf.Source)
		}
	}
	out.Source = strings.Join(sources, " + ")
	return out, nil
}

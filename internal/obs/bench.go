package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BenchRecord is one machine-readable measurement for cross-PR performance
// trend tracking (the BENCH_*.json files at the repo root). All quantities
// are virtual-machine results, so they are bit-reproducible and any drift
// between PRs is a real behavior change, not measurement noise.
type BenchRecord struct {
	Suite    string  `json:"suite"`
	Name     string  `json:"name"`
	P        int     `json:"p,omitempty"`
	Eta      []int   `json:"eta,omitempty"`
	Steps    int     `json:"steps,omitempty"`
	Gamma    string  `json:"gamma,omitempty"`
	Makespan float64 `json:"makespan_sec,omitempty"`
	Speedup  float64 `json:"speedup,omitempty"`
	Messages int     `json:"messages,omitempty"`
	Bytes    int     `json:"bytes,omitempty"`
	// Extra holds suite-specific scalar metrics (e.g. search node counts,
	// calibration errors), sorted by key on output.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// BenchFile is the envelope of a BENCH_*.json file.
type BenchFile struct {
	Schema  int           `json:"schema"`
	Source  string        `json:"source"` // what produced the file, e.g. "spbench -json"
	Records []BenchRecord `json:"records"`
}

// WriteBenchJSON writes records to path as indented, deterministic JSON
// (records sorted by suite, then name).
func WriteBenchJSON(path string, bf BenchFile) error {
	if bf.Schema == 0 {
		bf.Schema = 1
	}
	sort.SliceStable(bf.Records, func(a, b int) bool {
		if bf.Records[a].Suite != bf.Records[b].Suite {
			return bf.Records[a].Suite < bf.Records[b].Suite
		}
		return bf.Records[a].Name < bf.Records[b].Name
	})
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal bench file: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package obs

import (
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"

	"genmp/internal/sim"
)

func testMachine(p int) *sim.Machine {
	return sim.NewMachine(p,
		sim.Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 2e-6, RecvOverhead: 2e-6},
		sim.CPU{FlopsPerSec: 100e6})
}

// pingPong is a small deterministic 2-rank program with compute, labeled
// phases, point-to-point traffic in both directions, a mark and a
// reduction.
func pingPong(r *sim.Rank) {
	r.BeginPhase("work")
	r.Compute(float64(r.ID+1) * 1e-3)
	r.BeginPhase("exchange")
	if r.ID == 0 {
		r.Send(1, 1, sim.Msg{Bytes: 4096})
		r.Recv(1, 2)
	} else {
		r.Recv(0, 1)
		r.Send(0, 2, sim.Msg{Bytes: 512})
	}
	r.Mark("swapped")
	r.BeginPhase("reduce")
	r.AllReduce([]float64{1}, func(a, b float64) float64 { return a + b })
}

func runPingPong(t *testing.T) (sim.Result, *sim.Trace) {
	t.Helper()
	m := testMachine(2)
	m.Trace = &sim.Trace{}
	res, err := m.Run(pingPong)
	if err != nil {
		t.Fatal(err)
	}
	return res, m.Trace
}

func TestProfileTotalEqualsMakespan(t *testing.T) {
	res, tr := runPingPong(t)
	p := NewProfile(res, tr)
	if diff := math.Abs(p.Total() - p.Makespan); diff > 1e-9 {
		t.Fatalf("profile total %g differs from makespan %g by %g", p.Total(), p.Makespan, diff)
	}
	if len(p.Phases) != 3 {
		t.Fatalf("want 3 phases, got %+v", p.Phases)
	}
	ex := p.Phase("exchange")
	if ex.Msgs != 2 || ex.Bytes != 4096+512 {
		t.Errorf("exchange phase traffic %+v", ex)
	}
	if p.LoadImbalance < 1 {
		t.Errorf("load imbalance %g < 1", p.LoadImbalance)
	}
	if p.BusyMax < p.BusyP90 || p.BusyP90 < p.BusyP50 {
		t.Errorf("percentiles out of order: p50 %g p90 %g max %g", p.BusyP50, p.BusyP90, p.BusyMax)
	}
	out := p.Format()
	for _, want := range []string{"exchange", "reduce", "work", "makespan", "critical path"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}

// On a larger, more contended run the identity must still hold to 1e-9 —
// this is the acceptance criterion's check.
func TestProfileTotalEqualsMakespanManyRanks(t *testing.T) {
	m := testMachine(8)
	res, err := m.Run(func(r *sim.Rank) {
		for step := 0; step < 5; step++ {
			r.BeginPhase("shift")
			dst := (r.ID + 1) % r.P()
			src := (r.ID + r.P() - 1) % r.P()
			r.SendRecv(dst, step, sim.Msg{Bytes: 1024 * (r.ID + 1)}, src, step)
			r.BeginPhase("work")
			r.Compute(float64((r.ID*7+step*3)%5+1) * 1e-4)
			r.BeginPhase("sync")
			r.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProfile(res, nil)
	if diff := math.Abs(p.Total() - p.Makespan); diff > 1e-9 {
		t.Fatalf("profile total %g differs from makespan %g by %g", p.Total(), p.Makespan, diff)
	}
}

func TestCriticalPathBounds(t *testing.T) {
	res, tr := runPingPong(t)
	cp := CriticalPath(tr, 2)
	if cp <= 0 {
		t.Fatal("critical path not computed")
	}
	if cp > res.Makespan+1e-12 {
		t.Fatalf("critical path %g exceeds makespan %g", cp, res.Makespan)
	}
	// Each rank's own busy chain is a path, so cp ≥ max busy.
	maxBusy := 0.0
	for _, s := range res.Ranks {
		if b := s.ComputeTime + s.CommTime; b > maxBusy {
			maxBusy = b
		}
	}
	if cp < maxBusy-1e-12 {
		t.Fatalf("critical path %g below max rank busy time %g", cp, maxBusy)
	}
}

// A purely serial dependency chain (token passed around a ring) has a
// critical path equal to the whole makespan: no slack to recover.
func TestCriticalPathSerialChain(t *testing.T) {
	m := testMachine(4)
	m.Trace = &sim.Trace{}
	res, err := m.Run(func(r *sim.Rank) {
		if r.ID == 0 {
			r.Compute(1e-3)
			r.Send(1, 0, sim.Msg{Bytes: 8})
		} else {
			r.Recv(r.ID-1, 0)
			r.Compute(1e-3)
			if r.ID < r.P()-1 {
				r.Send(r.ID+1, 0, sim.Msg{Bytes: 8})
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cp := CriticalPath(m.Trace, 4)
	if cp <= 0 || cp > res.Makespan+1e-12 {
		t.Fatalf("cp %g out of range (makespan %g)", cp, res.Makespan)
	}
	// The token's chain includes every rank's 1ms compute, so the critical
	// path must be at least the 4ms of chained compute — far more than any
	// single rank's busy time.
	if cp < 3.9e-3 {
		t.Fatalf("cp %g does not reflect the serial chain (expected ≈ 4ms of compute plus transfers)", cp)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty slice: got %g, want 0", got)
	}
	one := []float64{7}
	for _, q := range []float64{0, 0.5, 1} {
		if got := percentile(one, q); got != 7 {
			t.Errorf("single sample q=%g: got %g, want 7", q, got)
		}
	}
	many := []float64{1, 2, 3, 4}
	if got := percentile(many, 0); got != 1 {
		t.Errorf("q=0: got %g, want first element", got)
	}
	if got := percentile(many, 1); got != 4 {
		t.Errorf("q=1: got %g, want last element", got)
	}
}

// A phase entered by only a subset of ranks must still profile and format:
// absent ranks contribute zero time, so the imbalance of a one-rank phase
// on p ranks is exactly p.
func TestProfileFormatSubsetPhase(t *testing.T) {
	m := testMachine(3)
	res, err := m.Run(func(r *sim.Rank) {
		r.BeginPhase("common")
		r.Compute(1e-3)
		if r.ID == 0 {
			r.BeginPhase("solo")
			r.Compute(3e-3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProfile(res, nil)
	solo := p.Phase("solo")
	if solo.Label != "solo" {
		t.Fatalf("solo phase missing: %+v", p.Phases)
	}
	if math.Abs(solo.Imbalance-3) > 1e-12 {
		t.Errorf("solo imbalance %g, want 3 (one busy rank of three)", solo.Imbalance)
	}
	if math.Abs(solo.Compute-1e-3) > 1e-12 {
		t.Errorf("solo mean compute %g, want 1e-3 (3ms over 3 ranks)", solo.Compute)
	}
	out := p.Format()
	for _, want := range []string{"common", "solo"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	if diff := math.Abs(p.Total() - p.Makespan); diff > 1e-9 {
		t.Errorf("accounting identity broken with subset phase: diff %g", diff)
	}
}

func TestWriteBenchJSON(t *testing.T) {
	path := t.TempDir() + "/BENCH_test.json"
	err := WriteBenchJSON(path, BenchFile{
		Source: "test",
		Records: []BenchRecord{
			{Suite: "b", Name: "y", P: 2, Makespan: 1.5},
			{Suite: "a", Name: "x", Speedup: 3, Extra: map[string]float64{"nodes": 10}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		t.Fatal(err)
	}
	if bf.Schema != 1 || len(bf.Records) != 2 {
		t.Fatalf("round trip: %+v", bf)
	}
	if bf.Records[0].Suite != "a" {
		t.Fatalf("records not sorted: %+v", bf.Records)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"os"

	"genmp/internal/grid"
	"genmp/internal/plan"
	"genmp/internal/xport"
)

// PlanSchema is the current plan_*.json schema version.
const PlanSchema = 1

// PlanFileKind is the envelope discriminator of a serialized SweepPlan.
const PlanFileKind = "plan"

// PlanFile is the on-disk envelope of a compiled SweepPlan: the full
// materialized schedule — per rank × dimension × direction, every phase
// with its neighbors, tags, tile geometry and byte counts. Compilation is
// deterministic and the encoder walks fixed struct order, so regenerating
// the same configuration yields a byte-identical file (the CI perf gate
// diffs a committed fixture against a fresh dump).
type PlanFile struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"`
	// Source records the command line that produced the dump.
	Source string   `json:"source,omitempty"`
	Plan   PlanJSON `json:"plan"`
}

// PlanJSON mirrors plan.SweepPlan field by field in a stable wire shape.
type PlanJSON struct {
	Kind          string `json:"plan_kind"`
	P             int    `json:"p"`
	Eta           []int  `json:"eta"`
	Gamma         []int  `json:"gamma,omitempty"`
	Dim           int    `json:"dim"`
	Grain         int    `json:"grain,omitempty"`
	Solver        string `json:"solver"`
	ForwardCarry  int    `json:"forward_carry"`
	BackwardCarry int    `json:"backward_carry"`
	Halos         []int  `json:"halos,omitempty"`
	Batch         int    `json:"batch,omitempty"`
	TagSpace      string `json:"tag_space"`
	TagBase       int    `json:"tag_base"`
	TagSize       int    `json:"tag_size"`
	// OverlapEnabled / OverlapFrac mirror plan.Overlap. Both omit when the
	// plan was compiled without overlap, so pre-overlap dumps (and the
	// committed fixtures) keep their historical bytes.
	OverlapEnabled bool           `json:"overlap_enabled,omitempty"`
	OverlapFrac    float64        `json:"overlap_frac,omitempty"`
	Ranks          []PlanRankJSON `json:"ranks"`
}

// PlanRankJSON is one rank's pass table.
type PlanRankJSON struct {
	Rank   int            `json:"rank"`
	Passes []PlanPassJSON `json:"passes"`
}

// PlanPassJSON is one (dimension, direction) pass.
type PlanPassJSON struct {
	Dim      int             `json:"dim"`
	Backward bool            `json:"backward"`
	CarryLen int             `json:"carry_len"`
	Phases   []PlanPhaseJSON `json:"phases"`
}

// PlanPhaseJSON is one phase of a pass.
type PlanPhaseJSON struct {
	Slab      int `json:"slab"`
	RecvFrom  int `json:"recv_from"`
	SendTo    int `json:"send_to"`
	RecvTag   int `json:"recv_tag"`
	SendTag   int `json:"send_tag"`
	RecvBytes int `json:"recv_bytes"`
	SendBytes int `json:"send_bytes"`
	Lines     int `json:"lines"`
	// Boundary and the interior tags carry the overlap split annotation;
	// they omit on unsplit phases, keeping pre-overlap dumps byte-stable.
	Boundary        int            `json:"boundary,omitempty"`
	InteriorRecvTag int            `json:"interior_recv_tag,omitempty"`
	InteriorSendTag int            `json:"interior_send_tag,omitempty"`
	Tiles           []PlanTileJSON `json:"tiles"`
}

// PlanTileJSON is one tile's geometry within a phase.
type PlanTileJSON struct {
	Coord    []int `json:"coord,omitempty"`
	Lo       []int `json:"lo"`
	Hi       []int `json:"hi"`
	LineOff  int   `json:"line_off"`
	Lines    int   `json:"lines"`
	ChunkLen int   `json:"chunk_len"`
}

// NewPlanJSON converts a compiled SweepPlan into its wire shape.
func NewPlanJSON(pl *plan.SweepPlan) PlanJSON {
	out := PlanJSON{
		Kind: string(pl.Kind), P: pl.P, Eta: pl.Eta, Gamma: pl.Gamma,
		Dim: pl.Dim, Grain: pl.Grain,
		Solver: pl.Solver, ForwardCarry: pl.ForwardCarry, BackwardCarry: pl.BackwardCarry,
		Halos: pl.Halos, Batch: pl.Batch,
		TagSpace: pl.Tags.Name(), TagBase: pl.Tags.Base(), TagSize: pl.Tags.Size(),
		OverlapEnabled: pl.Overlap.Enabled, OverlapFrac: pl.Overlap.Frac,
		Ranks: make([]PlanRankJSON, pl.P),
	}
	for q := 0; q < pl.P; q++ {
		rj := PlanRankJSON{Rank: q, Passes: make([]PlanPassJSON, len(pl.Passes[q]))}
		for k, pp := range pl.Passes[q] {
			pj := PlanPassJSON{Dim: pp.Dim, Backward: pp.Backward, CarryLen: pp.CarryLen,
				Phases: make([]PlanPhaseJSON, len(pp.Phases))}
			for i, ph := range pp.Phases {
				phj := PlanPhaseJSON{
					Slab: ph.Slab, RecvFrom: ph.RecvFrom, SendTo: ph.SendTo,
					RecvTag: ph.RecvTag, SendTag: ph.SendTag,
					RecvBytes: ph.RecvBytes, SendBytes: ph.SendBytes,
					Lines: ph.Lines, Boundary: ph.Boundary,
					InteriorRecvTag: ph.InteriorRecvTag, InteriorSendTag: ph.InteriorSendTag,
					Tiles: make([]PlanTileJSON, len(ph.Tiles)),
				}
				for t, tg := range ph.Tiles {
					phj.Tiles[t] = PlanTileJSON{Coord: tg.Coord, Lo: tg.Rect.Lo, Hi: tg.Rect.Hi,
						LineOff: tg.LineOff, Lines: tg.Lines, ChunkLen: tg.ChunkLen}
				}
				pj.Phases[i] = phj
			}
			rj.Passes[k] = pj
		}
		out.Ranks[q] = rj
	}
	return out
}

// WritePlanJSON serializes a compiled plan to path as indented JSON.
func WritePlanJSON(path, source string, pl *plan.SweepPlan) error {
	if pl == nil {
		return fmt.Errorf("obs: write plan: nil plan")
	}
	pf := PlanFile{Schema: PlanSchema, Kind: PlanFileKind, Source: source, Plan: NewPlanJSON(pl)}
	data, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal plan file: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadPlanJSON validates the envelope of a plan dump on the way back in.
func ReadPlanJSON(path string) (PlanFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return PlanFile{}, fmt.Errorf("obs: read plan file: %w", err)
	}
	var pf PlanFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return PlanFile{}, fmt.Errorf("obs: parse %s: %w", path, err)
	}
	if pf.Kind != PlanFileKind {
		return PlanFile{}, fmt.Errorf("obs: %s: kind %q is not a plan file", path, pf.Kind)
	}
	if pf.Schema != PlanSchema {
		return PlanFile{}, fmt.Errorf("obs: %s: unsupported plan schema %d (this build reads schema %d)", path, pf.Schema, PlanSchema)
	}
	return pf, nil
}

// PlanFromJSON reconstructs a compiled SweepPlan from its wire shape — the
// worker side of plan shipping: one node compiles and dumps, every other
// node loads the schedule instead of recompiling. The tag space is resolved
// back to the live registry by name (reservations are package-init
// constants, so a matching build has it), and the result is Validated so a
// corrupted or cross-version dump fails loudly rather than deadlocking an
// executor. Round-tripping is lossless: the reconstruction's Fingerprint
// equals the original's.
func PlanFromJSON(pj PlanJSON) (*plan.SweepPlan, error) {
	ts, ok := xport.LookupTags(pj.TagSpace)
	if !ok {
		return nil, fmt.Errorf("obs: plan tag space %q is not reserved in this build", pj.TagSpace)
	}
	if ts.Base() != pj.TagBase || ts.Size() != pj.TagSize {
		return nil, fmt.Errorf("obs: plan tag space %q is [%d,+%d) in this build but the dump recorded [%d,+%d)",
			pj.TagSpace, ts.Base(), ts.Size(), pj.TagBase, pj.TagSize)
	}
	if len(pj.Ranks) != pj.P {
		return nil, fmt.Errorf("obs: plan records %d rank tables for p = %d", len(pj.Ranks), pj.P)
	}
	pl := &plan.SweepPlan{
		Kind: plan.Kind(pj.Kind), P: pj.P, Eta: pj.Eta, Gamma: pj.Gamma,
		Dim: pj.Dim, Grain: pj.Grain,
		Solver: pj.Solver, ForwardCarry: pj.ForwardCarry, BackwardCarry: pj.BackwardCarry,
		Halos: pj.Halos, Batch: pj.Batch,
		Tags:    ts,
		Overlap: plan.Overlap{Enabled: pj.OverlapEnabled, Frac: pj.OverlapFrac},
		Passes:  make([][]plan.Pass, pj.P),
	}
	for q, rj := range pj.Ranks {
		if rj.Rank != q {
			return nil, fmt.Errorf("obs: plan rank table %d records rank %d", q, rj.Rank)
		}
		pl.Passes[q] = make([]plan.Pass, len(rj.Passes))
		for k, pjp := range rj.Passes {
			pass := plan.Pass{Dim: pjp.Dim, Backward: pjp.Backward, CarryLen: pjp.CarryLen,
				Phases: make([]plan.Phase, len(pjp.Phases))}
			for i, phj := range pjp.Phases {
				ph := plan.Phase{
					Slab: phj.Slab, RecvFrom: phj.RecvFrom, SendTo: phj.SendTo,
					RecvTag: phj.RecvTag, SendTag: phj.SendTag,
					RecvBytes: phj.RecvBytes, SendBytes: phj.SendBytes,
					Lines: phj.Lines, Boundary: phj.Boundary,
					InteriorRecvTag: phj.InteriorRecvTag, InteriorSendTag: phj.InteriorSendTag,
					Tiles: make([]plan.Tile, len(phj.Tiles)),
				}
				for t, tj := range phj.Tiles {
					ph.Tiles[t] = plan.Tile{Coord: tj.Coord, Rect: grid.RectOf(tj.Lo, tj.Hi),
						LineOff: tj.LineOff, Lines: tj.Lines, ChunkLen: tj.ChunkLen}
				}
				pass.Phases[i] = ph
			}
			pl.Passes[q][k] = pass
		}
	}
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("obs: reconstructed plan: %w", err)
	}
	return pl, nil
}

// LoadPlan reads a plan dump and reconstructs the compiled schedule —
// ReadPlanJSON then PlanFromJSON.
func LoadPlan(path string) (*plan.SweepPlan, error) {
	pf, err := ReadPlanJSON(path)
	if err != nil {
		return nil, err
	}
	return PlanFromJSON(pf.Plan)
}

// PlanAuditRow is one phase of the plan-vs-profile traffic audit: the
// bytes a compiled plan schedules for a profiled phase against the bytes
// the simulator measured in it. A non-zero delta means executor and plan
// disagree about the very schedule the executor claims to run.
type PlanAuditRow struct {
	Phase    string
	Expected int // bytes the plan schedules (all ranks), × repeats
	Observed int // bytes the profile measured in the phase, all ranks
}

// Delta returns Observed − Expected.
func (r PlanAuditRow) Delta() int { return r.Observed - r.Expected }

// AuditPlanBytes compares a compiled plan's scheduled carry traffic with a
// measured profile, phase by phase: phaseOf maps each sweep dimension to
// its profile label, and repeats is how many full sweeps of that dimension
// the profiled run executed (time steps). Only dimensions whose label has
// a profiled phase are audited.
func AuditPlanBytes(pl *plan.SweepPlan, prof *Profile, repeats int, phaseOf func(dim int) string) []PlanAuditRow {
	var rows []PlanAuditRow
	for dim := range pl.Eta {
		label := phaseOf(dim)
		pp := prof.Phase(label)
		if pp.Label == "" {
			continue
		}
		rows = append(rows, PlanAuditRow{
			Phase:    label,
			Expected: repeats * pl.DimSendBytes(dim),
			Observed: pp.Bytes,
		})
	}
	return rows
}

// FormatPlanAudit renders the audit as an aligned table.
func FormatPlanAudit(rows []PlanAuditRow) string {
	out := fmt.Sprintf("%-10s  %14s  %14s  %10s\n", "phase", "plan bytes", "observed", "delta")
	for _, r := range rows {
		out += fmt.Sprintf("%-10s  %14d  %14d  %10d\n", r.Phase, r.Expected, r.Observed, r.Delta())
	}
	return out
}

package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"genmp/internal/sim"
)

// TraceSchema is the current trace_*.json schema version.
const TraceSchema = 1

// TraceFileKind is the envelope discriminator of a serialized trace.
const TraceFileKind = "trace"

// TraceEventJSON is one sim.Event in a stable wire shape. Kind travels as
// its String name so files stay readable and robust against enum renumber.
// Times are Go's shortest-round-trip float encoding, so a decoded event is
// bitwise equal to the recorded one.
type TraceEventJSON struct {
	Rank  int     `json:"rank"`
	Kind  string  `json:"kind"`
	Start float64 `json:"start_sec"`
	End   float64 `json:"end_sec"`
	Peer  int     `json:"peer"`
	Bytes int     `json:"bytes,omitempty"`
	Label string  `json:"label,omitempty"`
	Tag   int     `json:"tag,omitempty"`
	Wait  float64 `json:"wait_sec,omitempty"`
	Phase string  `json:"phase,omitempty"`
}

// TraceFile is the on-disk envelope of a recorded trace: the full event
// timeline of one run plus the rank count and the makespan the simulator
// reported, making traces shippable artifacts like BENCH/profile/plan
// files. Events are written one per line in (start, rank) order, so the
// file is diffable and a regenerated identical run produces a
// byte-identical file.
type TraceFile struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"`
	// Source records the command line that produced the dump.
	Source   string           `json:"source,omitempty"`
	P        int              `json:"p"`
	Makespan float64          `json:"makespan_sec"`
	Events   []TraceEventJSON `json:"events"`
}

// NewTraceFile captures a trace into its wire shape.
func NewTraceFile(source string, tr *sim.Trace, p int, makespan float64) (TraceFile, error) {
	if tr == nil {
		return TraceFile{}, fmt.Errorf("obs: trace file: nil trace")
	}
	tf := TraceFile{Schema: TraceSchema, Kind: TraceFileKind, Source: source, P: p, Makespan: makespan}
	for _, e := range tr.Events() {
		tf.Events = append(tf.Events, TraceEventJSON{
			Rank: e.Rank, Kind: e.Kind.String(), Start: e.Start, End: e.End,
			Peer: e.Peer, Bytes: e.Bytes, Label: e.Label, Tag: e.Tag,
			Wait: e.Wait, Phase: e.Phase,
		})
	}
	return tf, nil
}

// Trace reconstitutes the recorded sim.Trace.
func (tf TraceFile) Trace() (*sim.Trace, error) {
	tr := &sim.Trace{}
	for i, ej := range tf.Events {
		kind, err := sim.ParseEventKind(ej.Kind)
		if err != nil {
			return nil, fmt.Errorf("obs: trace event %d: %w", i, err)
		}
		tr.Append(sim.Event{
			Rank: ej.Rank, Kind: kind, Start: ej.Start, End: ej.End,
			Peer: ej.Peer, Bytes: ej.Bytes, Label: ej.Label, Tag: ej.Tag,
			Wait: ej.Wait, Phase: ej.Phase,
		})
	}
	return tr, nil
}

// WriteTraceJSON serializes a recorded trace to path, one event per line.
func WriteTraceJSON(path, source string, tr *sim.Trace, p int, makespan float64) error {
	tf, err := NewTraceFile(source, tr, p, makespan)
	if err != nil {
		return err
	}
	data, err := marshalTraceFile(tf)
	if err != nil {
		return fmt.Errorf("obs: marshal trace file: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// marshalTraceFile lays the envelope out with one event per line: compact
// enough for tens of thousands of events, line-diffable for CI gates.
func marshalTraceFile(tf TraceFile) ([]byte, error) {
	var buf bytes.Buffer
	src, err := json.Marshal(tf.Source)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&buf, "{\n  \"schema\": %d,\n  \"kind\": %q,\n", tf.Schema, tf.Kind)
	if tf.Source != "" {
		fmt.Fprintf(&buf, "  \"source\": %s,\n", src)
	}
	mk, err := json.Marshal(tf.Makespan)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&buf, "  \"p\": %d,\n  \"makespan_sec\": %s,\n  \"events\": [\n", tf.P, mk)
	for i, ej := range tf.Events {
		line, err := json.Marshal(ej)
		if err != nil {
			return nil, err
		}
		buf.WriteString("    ")
		buf.Write(line)
		if i < len(tf.Events)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("  ]\n}\n")
	return buf.Bytes(), nil
}

// ReadTraceJSON validates the envelope of a trace dump on the way back in.
func ReadTraceJSON(path string) (TraceFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return TraceFile{}, fmt.Errorf("obs: read trace file: %w", err)
	}
	var tf TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return TraceFile{}, fmt.Errorf("obs: parse %s: %w", path, err)
	}
	if tf.Kind != TraceFileKind {
		return TraceFile{}, fmt.Errorf("obs: %s: kind %q is not a trace file", path, tf.Kind)
	}
	if tf.Schema != TraceSchema {
		return TraceFile{}, fmt.Errorf("obs: %s: unsupported trace schema %d (this build reads schema %d)", path, tf.Schema, TraceSchema)
	}
	if tf.P < 1 {
		return TraceFile{}, fmt.Errorf("obs: %s: invalid rank count %d", path, tf.P)
	}
	return tf, nil
}

// Package causal materializes the happens-before DAG of a traced run and
// answers scheduling questions about it: which events sit on the makespan's
// critical path, how much each phase, link and event kind is to blame for
// the final time, how much slack every off-path event has, and — via a
// what-if replayer — what the makespan would become under a perturbation
// (a faster or slower link, a wait overlapped away, a carry message posted
// before its phase's interior compute finishes) without rerunning the
// simulator.
//
// The DAG has one node per trace event and three edge families:
//
//   - program order: consecutive events of one rank,
//   - messages: each send paired with the receive that consumed it, k-th
//     send with k-th recv per (src, dst, tag) channel — the machine's FIFO
//     delivery order,
//   - collectives: hyperedges joining the g-th collective event of every
//     rank into one rendezvous group (every rank participates in every
//     collective, in the same order).
//
// Replay is observational: every quantity is reconstructed from the trace
// alone, and the identity perturbation reproduces the recorded makespan
// bit-exactly (the arithmetic is organized as shifts against observed
// values, so an unperturbed node's replayed end is the observed float, not
// a recomputation of it).
package causal

import (
	"fmt"
	"sort"

	"genmp/internal/sim"
)

// Channel identifies one FIFO point-to-point channel.
type Channel struct{ Src, Dst, Tag int }

// Matcher pairs sends with receives on per-(src, dst, tag) FIFO channels.
// It is the one channel-matching implementation shared by the busy-time
// critical-path estimate (obs.CriticalPath) and the DAG builder: both sides
// push event indices in the order encountered, and the k-th send on a
// channel pairs with the k-th recv.
type Matcher struct {
	ch map[Channel]*chanQueue
}

type chanQueue struct {
	sends, recvs []int
	taken        int // sends consumed by TakeSend
}

// NewMatcher returns an empty matcher.
func NewMatcher() *Matcher { return &Matcher{ch: make(map[Channel]*chanQueue)} }

func (m *Matcher) queue(c Channel) *chanQueue {
	q := m.ch[c]
	if q == nil {
		q = &chanQueue{}
		m.ch[c] = q
	}
	return q
}

// AddSend records the next send on the channel.
func (m *Matcher) AddSend(c Channel, id int) { q := m.queue(c); q.sends = append(q.sends, id) }

// AddRecv records the next receive on the channel.
func (m *Matcher) AddRecv(c Channel, id int) { q := m.queue(c); q.recvs = append(q.recvs, id) }

// TakeSend consumes and returns the oldest not-yet-taken send on the
// channel (streaming FIFO semantics, for consumers that walk events in an
// order where every send precedes its matching recv).
func (m *Matcher) TakeSend(c Channel) (int, bool) {
	q := m.ch[c]
	if q == nil || q.taken >= len(q.sends) {
		return 0, false
	}
	id := q.sends[q.taken]
	q.taken++
	return id, true
}

// Pairs calls f for every matched (send, recv) pair, k-th with k-th per
// channel. Unpaired residue on either side is reported by Unmatched.
func (m *Matcher) Pairs(f func(send, recv int)) {
	for _, q := range m.ch {
		n := len(q.sends)
		if len(q.recvs) < n {
			n = len(q.recvs)
		}
		for i := 0; i < n; i++ {
			f(q.sends[i], q.recvs[i])
		}
	}
}

// Unmatched returns how many sends never met a recv and how many recvs
// never met a send. Both are zero for the complete trace of a finished run.
func (m *Matcher) Unmatched() (sends, recvs int) {
	for _, q := range m.ch {
		if d := len(q.sends) - len(q.recvs); d > 0 {
			sends += d
		} else {
			recvs += -d
		}
	}
	return sends, recvs
}

// Node is one trace event in the DAG, with its structural edges resolved.
type Node struct {
	Ev sim.Event
	ID int
	// Prev and Next are the same-rank program-order neighbors (−1 at the
	// ends of a rank's timeline).
	Prev, Next int
	// Match is the counterpart of a message edge: for a recv, the node of
	// the send that produced its message; for a send, the recv that
	// consumed it. −1 when unpaired (truncated trace).
	Match int
	// Group is the collective rendezvous group id (−1 for non-collectives).
	Group int
}

// DAG is the happens-before graph of one traced run.
type DAG struct {
	P     int
	Nodes []Node
	// ByRank lists each rank's node ids in program order.
	ByRank [][]int
	// Groups lists the member node ids of each collective rendezvous.
	Groups [][]int
	// Makespan is the maximum observed event end — the final clock of the
	// slowest rank, since every clock advance of a traced run is an event.
	Makespan float64
	// MsgEdges counts matched send→recv pairs.
	MsgEdges int
	// events keeps the trace's (start, rank)-sorted event order for the
	// busy-time critical-path estimate, whose tie-breaking depends on it.
	events []sim.Event
}

// Build materializes the DAG from a trace. EvBlocked events (flight-
// recorder markers, not timeline activity) and events with ranks outside
// [0, p) are skipped, mirroring the critical-path estimate.
func Build(tr *sim.Trace, p int) (*DAG, error) {
	if tr == nil {
		return nil, fmt.Errorf("causal: nil trace")
	}
	if p < 1 {
		return nil, fmt.Errorf("causal: need p ≥ 1, got %d", p)
	}
	return build(tr.Events(), p)
}

func build(events []sim.Event, p int) (*DAG, error) {
	d := &DAG{P: p, ByRank: make([][]int, p), events: events}
	m := NewMatcher()
	collOrdinal := make([]int, p)
	for _, e := range events {
		if e.Kind == sim.EvBlocked || e.Rank < 0 || e.Rank >= p {
			continue
		}
		id := len(d.Nodes)
		n := Node{Ev: e, ID: id, Prev: -1, Next: -1, Match: -1, Group: -1}
		if rn := d.ByRank[e.Rank]; len(rn) > 0 {
			n.Prev = rn[len(rn)-1]
			d.Nodes[n.Prev].Next = id
		}
		switch e.Kind {
		case sim.EvSend, sim.EvIsend:
			m.AddSend(Channel{Src: e.Rank, Dst: e.Peer, Tag: e.Tag}, id)
		case sim.EvRecv, sim.EvWait:
			// A nonblocking receive's cost accrues at Wait, whose event
			// carries the same (start, wait, end) arithmetic as a blocking
			// recv; the zero-duration EvIrecv post marker stays a plain node.
			m.AddRecv(Channel{Src: e.Peer, Dst: e.Rank, Tag: e.Tag}, id)
		case sim.EvCollective:
			g := collOrdinal[e.Rank]
			collOrdinal[e.Rank]++
			for len(d.Groups) <= g {
				d.Groups = append(d.Groups, nil)
			}
			n.Group = g
			d.Groups[g] = append(d.Groups[g], id)
		}
		d.Nodes = append(d.Nodes, n)
		d.ByRank[e.Rank] = append(d.ByRank[e.Rank], id)
		if e.End > d.Makespan {
			d.Makespan = e.End
		}
	}
	m.Pairs(func(send, recv int) {
		d.Nodes[send].Match = recv
		d.Nodes[recv].Match = send
		d.MsgEdges++
	})
	return d, nil
}

// Rank iterates one rank's nodes in program order.
func (d *DAG) Rank(r int) []int { return d.ByRank[r] }

// BusyCriticalPath estimates the longest dependency chain of busy time
// (compute plus communication overhead, excluding blocked waits) through
// the traced run — the same scalar as obs.CriticalPath, which delegates
// here. The result is a lower bound on the makespan of any schedule that
// preserves the dependence structure and per-event work.
func (d *DAG) BusyCriticalPath() float64 { return BusyCriticalPath(d.events, d.P) }

// BusyCriticalPath is the busy-chain estimate over a raw event list; see
// DAG.BusyCriticalPath. Events are processed in completion order — every
// dependency edge u→v satisfies u.End ≤ v.End (same-rank events are
// sequential, a message's send completes before its recv, collective
// members share one synchronization) — with the shared FIFO Matcher
// pairing message edges.
func BusyCriticalPath(events []sim.Event, p int) float64 {
	ordered := make([]sim.Event, len(events))
	copy(ordered, events)
	sort.SliceStable(ordered, func(a, b int) bool {
		if ordered[a].End != ordered[b].End {
			return ordered[a].End < ordered[b].End
		}
		return ordered[a].Rank < ordered[b].Rank
	})

	rankCP := make([]float64, p)
	m := NewMatcher()
	sendCP := make([]float64, len(ordered)) // chain length just after each send
	type collGroup struct {
		seen  int
		maxIn float64
		cost  float64
		ranks []int
	}
	collCount := make([]int, p) // collectives completed per rank → group index
	groups := map[int]*collGroup{}

	for i, e := range ordered {
		if e.Rank < 0 || e.Rank >= p {
			continue
		}
		switch e.Kind {
		case sim.EvSend, sim.EvIsend:
			cp := rankCP[e.Rank] + e.Busy()
			rankCP[e.Rank] = cp
			sendCP[i] = cp
			m.AddSend(Channel{Src: e.Rank, Dst: e.Peer, Tag: e.Tag}, i)
		case sim.EvRecv, sim.EvWait:
			in := rankCP[e.Rank]
			if id, ok := m.TakeSend(Channel{Src: e.Peer, Dst: e.Rank, Tag: e.Tag}); ok {
				if sendCP[id] > in {
					in = sendCP[id]
				}
			}
			rankCP[e.Rank] = in + e.Busy()
		case sim.EvCollective:
			g := collCount[e.Rank]
			collCount[e.Rank]++
			grp := groups[g]
			if grp == nil {
				grp = &collGroup{}
				groups[g] = grp
			}
			if in := rankCP[e.Rank]; in > grp.maxIn {
				grp.maxIn = in
			}
			if b := e.Busy(); b > grp.cost {
				grp.cost = b
			}
			grp.ranks = append(grp.ranks, e.Rank)
			grp.seen++
			if grp.seen == p {
				out := grp.maxIn + grp.cost
				for _, r := range grp.ranks {
					rankCP[r] = out
				}
				delete(groups, g)
			}
		case sim.EvBlocked:
			// Flight-recorder markers, not timeline activity: a blocked
			// interval must never count as busy chain time.
		default: // compute, mark
			rankCP[e.Rank] += e.Busy()
		}
	}
	// Unfinished collective groups (a rank exited early): settle with what
	// was seen.
	for _, grp := range groups {
		out := grp.maxIn + grp.cost
		for _, r := range grp.ranks {
			if out > rankCP[r] {
				rankCP[r] = out
			}
		}
	}
	cp := 0.0
	for _, v := range rankCP {
		if v > cp {
			cp = v
		}
	}
	return cp
}

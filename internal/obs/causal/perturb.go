package causal

import (
	"fmt"
	"path"
	"strconv"
	"strings"
)

// PerturbKind enumerates the what-if perturbations the replayer applies.
type PerturbKind int

const (
	// Identity changes nothing; replay reproduces the recorded makespan
	// bit-exactly.
	Identity PerturbKind = iota
	// ScaleLink multiplies the communication cost of one directed link —
	// the message transit delay and the receive's busy time — by Factor.
	// Factor < 1 models a faster link, > 1 a slower one.
	ScaleLink
	// ZeroWait removes the message dependency of matching receives: the
	// receive starts the moment its rank is ready, as if the message had
	// been perfectly prefetched. Models ideal overlap of that wait.
	ZeroWait
	// Overlap posts matching carry sends early: the send's message departs
	// once Frac of the preceding compute event has finished, while the
	// rank's own timeline is unchanged (the remaining compute still runs).
	// This is the boundary-lines-first optimization of ROADMAP item 2: the
	// carry leaves before the interior finishes.
	Overlap
)

// Perturbation is one what-if change to the schedule. Src/Dst select a
// link for ScaleLink and filter ZeroWait ("-1 matches any rank"); Phase and
// Tag filter ZeroWait and Overlap (empty/negative match all).
type Perturbation struct {
	Kind   PerturbKind
	Src    int
	Dst    int
	Factor float64
	Phase  string
	Tag    int
	Frac   float64
}

// String renders the perturbation in the parseable syntax.
func (p Perturbation) String() string {
	switch p.Kind {
	case ScaleLink:
		return fmt.Sprintf("scale-link:%s->%s:%g", wild(p.Src), wild(p.Dst), p.Factor)
	case ZeroWait:
		var f []string
		if p.Phase != "" {
			f = append(f, "phase="+p.Phase)
		}
		if p.Src >= 0 || p.Dst >= 0 {
			f = append(f, fmt.Sprintf("link=%s->%s", wild(p.Src), wild(p.Dst)))
		}
		if p.Tag >= 0 {
			f = append(f, fmt.Sprintf("tag=%d", p.Tag))
		}
		return "zero-wait:" + strings.Join(f, ",")
	case Overlap:
		s := fmt.Sprintf("overlap:phase=%s,frac=%g", p.Phase, p.Frac)
		if p.Tag >= 0 {
			s += fmt.Sprintf(",tag=%d", p.Tag)
		}
		return s
	default:
		return "identity"
	}
}

func wild(r int) string {
	if r < 0 {
		return "*"
	}
	return strconv.Itoa(r)
}

// matchesRecv reports whether the perturbation's filters select a receive
// event on link (src → dst) with the given phase and tag.
func (p Perturbation) matchesRecv(src, dst int, phase string, tag int) bool {
	if p.Src >= 0 && p.Src != src {
		return false
	}
	if p.Dst >= 0 && p.Dst != dst {
		return false
	}
	if !p.matchesPhase(phase) {
		return false
	}
	if p.Tag >= 0 && p.Tag != tag {
		return false
	}
	return true
}

// matchesPhase reports whether the perturbation's phase pattern selects the
// label. An empty pattern matches everything; otherwise the pattern is a
// '|'-separated list of terms, each an exact label or a glob (path.Match
// syntax) — "solve*" selects every solve phase, "solve0|solve2" exactly
// those two.
func (p Perturbation) matchesPhase(phase string) bool {
	if p.Phase == "" {
		return true
	}
	for _, term := range strings.Split(p.Phase, "|") {
		term = strings.TrimSpace(term)
		if term == phase {
			return true
		}
		if ok, err := path.Match(term, phase); err == nil && ok {
			return true
		}
	}
	return false
}

// ParsePerturbations parses a what-if expression: one or more perturbations
// separated by ';'. Grammar (whitespace around tokens is ignored):
//
//	identity
//	scale-link:SRC->DST:FACTOR      ranks or '*', e.g. scale-link:0->1:0.5
//	zero-wait:FILTERS               e.g. zero-wait:phase=solve0,link=0->1
//	overlap:phase=LABELS[,frac=F][,tag=N]   frac defaults to 0.25
//
// FILTERS is a comma-separated AND of phase=LABELS, link=SRC->DST, tag=N;
// zero-wait needs at least one filter (an unfiltered zero-wait would erase
// every dependence in the run). LABELS is a '|'-separated list of phase
// labels, each an exact name or a glob — overlap:phase=solve* posts every
// solve phase's carries early, phase=solve0|solve2 exactly those two.
func ParsePerturbations(expr string) ([]Perturbation, error) {
	var out []Perturbation
	for _, part := range strings.Split(expr, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := parseOne(part)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("causal: empty what-if expression")
	}
	return out, nil
}

func parseOne(s string) (Perturbation, error) {
	p := Perturbation{Src: -1, Dst: -1, Tag: -1, Factor: 1, Frac: 0.25}
	head, rest, _ := strings.Cut(s, ":")
	switch strings.TrimSpace(head) {
	case "identity":
		if rest != "" {
			return p, fmt.Errorf("causal: identity takes no arguments, got %q", s)
		}
		return p, nil
	case "scale-link":
		link, factor, ok := strings.Cut(rest, ":")
		if !ok {
			return p, fmt.Errorf("causal: scale-link wants SRC->DST:FACTOR, got %q", s)
		}
		src, dst, err := parseLink(link)
		if err != nil {
			return p, err
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(factor), 64)
		if err != nil || f < 0 {
			return p, fmt.Errorf("causal: bad scale-link factor %q (want a number ≥ 0)", factor)
		}
		p.Kind, p.Src, p.Dst, p.Factor = ScaleLink, src, dst, f
		return p, nil
	case "zero-wait":
		p.Kind = ZeroWait
		if err := parseFilters(&p, rest); err != nil {
			return p, err
		}
		if p.Phase == "" && p.Src < 0 && p.Dst < 0 && p.Tag < 0 {
			return p, fmt.Errorf("causal: zero-wait needs at least one filter (phase=, link= or tag=)")
		}
		return p, nil
	case "overlap":
		p.Kind = Overlap
		if err := parseFilters(&p, rest); err != nil {
			return p, err
		}
		if p.Phase == "" {
			return p, fmt.Errorf("causal: overlap needs phase=LABEL")
		}
		if p.Frac < 0 || p.Frac > 1 {
			return p, fmt.Errorf("causal: overlap frac %g outside [0, 1]", p.Frac)
		}
		return p, nil
	default:
		return p, fmt.Errorf("causal: unknown perturbation %q (want identity, scale-link, zero-wait or overlap)", head)
	}
}

func parseFilters(p *Perturbation, s string) error {
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return fmt.Errorf("causal: bad filter %q (want key=value)", tok)
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "phase":
			for _, term := range strings.Split(val, "|") {
				if _, err := path.Match(strings.TrimSpace(term), ""); err != nil {
					return fmt.Errorf("causal: bad phase pattern %q: %v", term, err)
				}
			}
			p.Phase = val
		case "link":
			src, dst, err := parseLink(val)
			if err != nil {
				return err
			}
			p.Src, p.Dst = src, dst
		case "tag":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("causal: bad tag %q", val)
			}
			p.Tag = n
		case "frac":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("causal: bad frac %q", val)
			}
			p.Frac = f
		default:
			return fmt.Errorf("causal: unknown filter %q", key)
		}
	}
	return nil
}

func parseLink(s string) (src, dst int, err error) {
	a, b, ok := strings.Cut(s, "->")
	if !ok {
		return 0, 0, fmt.Errorf("causal: bad link %q (want SRC->DST)", s)
	}
	src, err = parseRank(a)
	if err != nil {
		return 0, 0, err
	}
	dst, err = parseRank(b)
	return src, dst, err
}

func parseRank(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "*" {
		return -1, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("causal: bad rank %q (want a rank number or '*')", s)
	}
	return n, nil
}

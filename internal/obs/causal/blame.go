package causal

import (
	"fmt"
	"sort"
	"strings"

	"genmp/internal/sim"
)

// BlameRow is one bucket of critical-chain time.
type BlameRow struct {
	// Key is the bucket: a phase label, a "src→dst" link, or an event
	// kind.
	Key string `json:"key"`
	// Busy is on-chain time the bucket's events spent working; Wait is
	// exposed transit or synchronization delay charged to the bucket.
	Busy  float64 `json:"busy_sec"`
	Wait  float64 `json:"wait_sec"`
	Count int     `json:"events"`
}

// Total returns the bucket's full share of the makespan.
func (r BlameRow) Total() float64 { return r.Busy + r.Wait }

// Blame decomposes a schedule's makespan over its critical chain: every
// step's contribution (busy work plus exposed wait) lands in exactly one
// bucket per view, so each view's rows sum to the makespan (up to
// floating-point summation of the telescoping differences).
type Blame struct {
	Makespan float64 `json:"makespan_sec"`
	// ChainLen is the number of events on the critical chain; BusyOnPath
	// and WaitOnPath split the makespan into work and exposure.
	ChainLen   int     `json:"chain_len"`
	BusyOnPath float64 `json:"busy_on_path_sec"`
	WaitOnPath float64 `json:"wait_on_path_sec"`
	// ByPhase, ByKind and ByLink are the three views, sorted by total
	// descending (ties by key). ByLink only covers point-to-point receive
	// steps, so it sums to the chain's message share, not the makespan.
	ByPhase []BlameRow `json:"by_phase"`
	ByKind  []BlameRow `json:"by_kind"`
	ByLink  []BlameRow `json:"by_link,omitempty"`
}

// Blame aggregates the schedule's critical chain.
func (s *Schedule) Blame() *Blame {
	chain := s.Chain()
	b := &Blame{Makespan: s.Makespan, ChainLen: len(chain)}
	phase := map[string]*BlameRow{}
	kind := map[string]*BlameRow{}
	link := map[string]*BlameRow{}
	bucket := func(m map[string]*BlameRow, key string) *BlameRow {
		r := m[key]
		if r == nil {
			r = &BlameRow{Key: key}
			m[key] = r
		}
		return r
	}
	for _, st := range chain {
		b.BusyOnPath += st.Busy
		b.WaitOnPath += st.Wait
		label := st.Ev.Phase
		if label == "" {
			label = "(unlabeled)"
		}
		pr := bucket(phase, label)
		pr.Busy += st.Busy
		pr.Wait += st.Wait
		pr.Count++
		kr := bucket(kind, st.Ev.Kind.String())
		kr.Busy += st.Busy
		kr.Wait += st.Wait
		kr.Count++
		if st.Ev.Kind == sim.EvRecv || st.Ev.Kind == sim.EvWait {
			lr := bucket(link, fmt.Sprintf("%d→%d", st.Ev.Peer, st.Ev.Rank))
			lr.Busy += st.Busy
			lr.Wait += st.Wait
			lr.Count++
		}
	}
	b.ByPhase = sortRows(phase)
	b.ByKind = sortRows(kind)
	b.ByLink = sortRows(link)
	return b
}

func sortRows(m map[string]*BlameRow) []BlameRow {
	out := make([]BlameRow, 0, len(m))
	for _, r := range m {
		out = append(out, *r)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Total() != out[b].Total() {
			return out[a].Total() > out[b].Total()
		}
		return out[a].Key < out[b].Key
	})
	return out
}

// Format renders the blame report as aligned text. top bounds the rows per
// view (0 = all).
func (b *Blame) Format(top int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "makespan %s over a critical chain of %d events (busy %s, wait %s)\n",
		fmtSec(b.Makespan), b.ChainLen, fmtSec(b.BusyOnPath), fmtSec(b.WaitOnPath))
	writeView := func(name string, rows []BlameRow) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(&sb, "\nblame by %s:\n", name)
		fmt.Fprintf(&sb, "  %-14s  %10s  %6s  %10s  %10s  %7s\n", name, "total", "pct", "busy", "wait", "events")
		for i, r := range rows {
			if top > 0 && i >= top {
				fmt.Fprintf(&sb, "  … %d more\n", len(rows)-top)
				break
			}
			fmt.Fprintf(&sb, "  %-14s  %10s  %5.1f%%  %10s  %10s  %7d\n",
				r.Key, fmtSec(r.Total()), 100*r.Total()/b.Makespan, fmtSec(r.Busy), fmtSec(r.Wait), r.Count)
		}
	}
	writeView("phase", b.ByPhase)
	writeView("kind", b.ByKind)
	writeView("link", b.ByLink)
	return sb.String()
}

// Markdown renders the blame report as GitHub-flavored markdown tables.
func (b *Blame) Markdown(top int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "**Makespan %s** over a critical chain of %d events (busy %s, wait %s).\n",
		fmtSec(b.Makespan), b.ChainLen, fmtSec(b.BusyOnPath), fmtSec(b.WaitOnPath))
	writeView := func(name string, rows []BlameRow) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(&sb, "\n| %s | total | pct | busy | wait | events |\n|---|---:|---:|---:|---:|---:|\n", name)
		for i, r := range rows {
			if top > 0 && i >= top {
				fmt.Fprintf(&sb, "| … %d more | | | | | |\n", len(rows)-top)
				break
			}
			fmt.Fprintf(&sb, "| %s | %s | %.1f%% | %s | %s | %d |\n",
				r.Key, fmtSec(r.Total()), 100*r.Total()/b.Makespan, fmtSec(r.Busy), fmtSec(r.Wait), r.Count)
		}
	}
	writeView("phase", b.ByPhase)
	writeView("kind", b.ByKind)
	writeView("link", b.ByLink)
	return sb.String()
}

// FormatChain renders up to head leading and tail trailing steps of the
// critical chain (0 keeps each end unbounded).
func FormatChain(chain []ChainStep, head, tail int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "critical chain, %d steps:\n", len(chain))
	fmt.Fprintf(&sb, "  %4s  %-10s  %4s  %-12s  %-10s  %10s  %10s\n",
		"#", "kind", "rank", "phase", "via", "busy", "wait")
	writeStep := func(i int) {
		st := chain[i]
		label := st.Ev.Phase
		if label == "" {
			label = "(unlabeled)"
		}
		extra := ""
		switch st.Ev.Kind {
		case sim.EvRecv, sim.EvSend, sim.EvIsend, sim.EvWait:
			extra = fmt.Sprintf("  peer %d tag %d bytes %d", st.Ev.Peer, st.Ev.Tag, st.Ev.Bytes)
		}
		if extra == "" && st.Ev.Label != "" {
			extra = "  " + st.Ev.Label
		}
		fmt.Fprintf(&sb, "  %4d  %-10s  %4d  %-12s  %-10s  %10s  %10s%s\n",
			i, st.Ev.Kind.String(), st.Ev.Rank, label, st.Via.String(), fmtSec(st.Busy), fmtSec(st.Wait), extra)
	}
	n := len(chain)
	if head <= 0 && tail <= 0 || head+tail >= n {
		for i := range chain {
			writeStep(i)
		}
		return sb.String()
	}
	for i := 0; i < head; i++ {
		writeStep(i)
	}
	fmt.Fprintf(&sb, "  … %d steps elided …\n", n-head-tail)
	for i := n - tail; i < n; i++ {
		writeStep(i)
	}
	return sb.String()
}

// Report builds the happens-before DAG from a trace, replays the identity
// schedule and renders the blame report — the one-call convenience behind
// the benchmark CLIs' -blame flag. top bounds the rows per view.
func Report(tr *sim.Trace, p, top int) (string, error) {
	d, err := Build(tr, p)
	if err != nil {
		return "", err
	}
	s, err := d.Replay()
	if err != nil {
		return "", err
	}
	return s.Blame().Format(top), nil
}

// fmtSec renders a duration in engineering units.
func fmtSec(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3 && s > -1e-3:
		return fmt.Sprintf("%.2fµs", s*1e6)
	case s < 1 && s > -1:
		return fmt.Sprintf("%.3fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

package causal

import (
	"fmt"
	"math"

	"genmp/internal/sim"
)

// Via classifies the binding dependency of a scheduled node — which edge
// family determined its start.
type Via int

const (
	// ViaNone marks a chain root (the node started at virtual time 0 or at
	// its own recorded start, with no gating dependency).
	ViaNone Via = iota
	// ViaRank means the node started when its rank finished the previous
	// event (program order was binding).
	ViaRank
	// ViaMessage means a receive was gated by its message's availability.
	ViaMessage
	// ViaCollective means the node left a rendezvous gated by the latest
	// entrant.
	ViaCollective
)

// String names the edge family.
func (v Via) String() string {
	switch v {
	case ViaRank:
		return "rank"
	case ViaMessage:
		return "message"
	case ViaCollective:
		return "collective"
	default:
		return "start"
	}
}

// Schedule is one replay of the DAG under a set of perturbations: per-node
// start/end times, the binding dependency of every node, per-node slack,
// and the resulting makespan. The identity replay (no perturbations)
// reproduces every observed event end — and therefore the makespan —
// bit-exactly: all arithmetic is carried as shifts against observed values,
// and an unperturbed node's shift is exactly +0.
type Schedule struct {
	D     *DAG
	Perts []Perturbation
	// End is the replayed completion time of each node.
	End []float64
	// BodyStart is the instant each node's dependencies resolved: a recv's
	// body start, a collective's synchronization point, otherwise the
	// rank's readiness. End − BodyStart is the node's busy contribution.
	BodyStart []float64
	// Binding is the node whose completion gated this node (−1 for roots);
	// Via says through which edge family. Walking Binding from the
	// makespan node yields the critical chain.
	Binding []int
	Via     []Via
	// Slack is how much later each node could finish without growing the
	// makespan (0 on the critical path).
	Slack []float64
	// Makespan is the slowest rank's replayed finish; Critical is the node
	// that achieves it.
	Makespan float64
	Critical int

	avail []float64 // replayed message availability per recv (NaN: no message term)
	order []int     // forward processing order (reversed for the slack pass)
}

// Replay schedules the DAG under the given perturbations. With none (or
// only Identity) the result reproduces the recorded timeline exactly.
func (d *DAG) Replay(perts ...Perturbation) (*Schedule, error) {
	n := len(d.Nodes)
	s := &Schedule{
		D: d, Perts: perts,
		End: make([]float64, n), BodyStart: make([]float64, n),
		Binding: make([]int, n), Via: make([]Via, n),
		Slack: make([]float64, n), avail: make([]float64, n),
		order: make([]int, 0, n), Critical: -1,
	}
	dBusy, edgeDelta, zeroWait, advance := d.applyPerturbations(perts)

	processed := make([]bool, n)
	ptr := make([]int, d.P)
	arrived := make([]bool, n)
	readyVal := make([]float64, n)    // replayed rank readiness at a collective entry
	readyObsVal := make([]float64, n) // observed counterpart (identity baseline)
	groupSeen := make([]int, len(d.Groups))

	remaining := n
	for remaining > 0 {
		progress := false
		for r := 0; r < d.P; r++ {
			for ptr[r] < len(d.ByRank[r]) {
				i := d.ByRank[r][ptr[r]]
				nd := &d.Nodes[i]
				ready, readyObs := nd.Ev.Start, nd.Ev.Start
				if nd.Prev >= 0 {
					ready = s.End[nd.Prev]
					readyObs = d.Nodes[nd.Prev].Ev.End
				}
				blocked := false
				switch nd.Ev.Kind {
				case sim.EvCollective:
					if !arrived[i] {
						arrived[i] = true
						readyVal[i], readyObsVal[i] = ready, readyObs
						g := nd.Group
						groupSeen[g]++
						if groupSeen[g] == len(d.Groups[g]) {
							s.resolveGroup(d.Groups[g], readyVal, readyObsVal, dBusy)
							remaining -= len(d.Groups[g])
							for _, m := range d.Groups[g] {
								processed[m] = true
							}
						}
					}
					blocked = !processed[i] // wait for the other members
				case sim.EvRecv, sim.EvWait:
					if nd.Match >= 0 && !zeroWait[i] && !processed[nd.Match] {
						blocked = true // message's send not scheduled yet
					} else {
						s.scheduleRecv(i, ready, readyObs, dBusy[i], edgeDelta[i], zeroWait[i], advance)
						processed[i] = true
						remaining--
					}
				default: // compute, send, mark
					shift := (ready - readyObs) + dBusy[i]
					s.End[i] = nd.Ev.End + shift
					s.BodyStart[i] = ready
					s.Binding[i], s.Via[i] = nd.Prev, ViaRank
					if nd.Prev < 0 {
						s.Via[i] = ViaNone
					}
					processed[i] = true
					remaining--
				}
				if blocked {
					break
				}
				s.order = append(s.order, i)
				ptr[r]++
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("causal: replay stalled with %d events unscheduled (truncated or inconsistent trace)", remaining)
		}
	}

	for i := range d.Nodes {
		if s.Critical < 0 || s.End[i] > s.Makespan {
			s.Makespan, s.Critical = s.End[i], i
		}
	}
	s.computeSlack()
	return s, nil
}

// resolveGroup schedules every member of a collective rendezvous: the
// synchronization point is the latest entrant's readiness, and each member
// leaves at its observed end shifted by how much the synchronization moved.
func (s *Schedule) resolveGroup(members []int, readyVal, readyObsVal, dBusy []float64) {
	newSync, obsSync := math.Inf(-1), math.Inf(-1)
	gate := members[0]
	for _, m := range members {
		if readyVal[m] > newSync {
			newSync, gate = readyVal[m], m
		}
		if readyObsVal[m] > obsSync {
			obsSync = readyObsVal[m]
		}
	}
	binding := s.D.Nodes[gate].Prev
	for _, m := range members {
		shift := (newSync - obsSync) + dBusy[m]
		s.End[m] = s.D.Nodes[m].Ev.End + shift
		s.BodyStart[m] = newSync
		s.Binding[m], s.Via[m] = binding, ViaCollective
		if binding < 0 {
			s.Via[m] = ViaNone
		}
	}
}

// scheduleRecv schedules one receive: its body starts at
// max(rank readiness, message availability), and its end is the observed
// end shifted by how much that instant moved plus any busy delta.
//
// Availability is observational: the trace records when the message became
// consumable (start + wait), and replay shifts that instant by however much
// the matched send moved. When the receiver never waited, the unobservable
// headroom between the true arrival and the receiver's readiness is treated
// as zero, so predicted makespans under upstream slowdowns are conservative
// (upper bounds).
func (s *Schedule) scheduleRecv(i int, ready, readyObs, dBusy, edgeDelta float64, zeroWait bool, advance []float64) {
	nd := &s.D.Nodes[i]
	availObs := nd.Ev.Start + nd.Ev.Wait
	bodyObs := math.Max(readyObs, availObs)
	var body float64
	hasMsg := false
	switch {
	case zeroWait:
		body = ready
		s.avail[i] = math.NaN()
	case nd.Match >= 0:
		send := &s.D.Nodes[nd.Match]
		sendShift := (s.End[nd.Match] - send.Ev.End) - advance[nd.Match]
		s.avail[i] = availObs + sendShift + edgeDelta
		body = math.Max(ready, s.avail[i])
		hasMsg = true
	default: // send not in the trace: availability pinned at the observed instant
		s.avail[i] = availObs
		body = math.Max(ready, s.avail[i])
	}
	shift := (body - bodyObs) + dBusy
	s.End[i] = nd.Ev.End + shift
	s.BodyStart[i] = body
	if hasMsg && s.avail[i] > ready {
		s.Binding[i], s.Via[i] = nd.Match, ViaMessage
	} else {
		s.Binding[i], s.Via[i] = nd.Prev, ViaRank
		if nd.Prev < 0 {
			s.Via[i] = ViaNone
		}
	}
}

// applyPerturbations resolves the perturbation set into per-node deltas:
// busy-time deltas, message-edge transit deltas, severed message edges
// (zero-wait), and early-departure advances on sends (overlap).
func (d *DAG) applyPerturbations(perts []Perturbation) (dBusy, edgeDelta []float64, zeroWait []bool, advance []float64) {
	n := len(d.Nodes)
	dBusy = make([]float64, n)
	edgeDelta = make([]float64, n)
	zeroWait = make([]bool, n)
	advance = make([]float64, n)
	for _, p := range perts {
		switch p.Kind {
		case ScaleLink:
			for i := range d.Nodes {
				nd := &d.Nodes[i]
				if (nd.Ev.Kind != sim.EvRecv && nd.Ev.Kind != sim.EvWait) || (p.Src >= 0 && nd.Ev.Peer != p.Src) || (p.Dst >= 0 && nd.Ev.Rank != p.Dst) {
					continue
				}
				dBusy[i] += (p.Factor - 1) * nd.Ev.Busy()
				if nd.Match >= 0 {
					delay := (nd.Ev.Start + nd.Ev.Wait) - d.Nodes[nd.Match].Ev.End
					if delay > 0 {
						edgeDelta[i] += (p.Factor - 1) * delay
					}
				}
			}
		case ZeroWait:
			for i := range d.Nodes {
				nd := &d.Nodes[i]
				if (nd.Ev.Kind == sim.EvRecv || nd.Ev.Kind == sim.EvWait) && p.matchesRecv(nd.Ev.Peer, nd.Ev.Rank, nd.Ev.Phase, nd.Ev.Tag) {
					zeroWait[i] = true
				}
			}
		case Overlap:
			for i := range d.Nodes {
				nd := &d.Nodes[i]
				if (nd.Ev.Kind != sim.EvSend && nd.Ev.Kind != sim.EvIsend) || !p.matchesPhase(nd.Ev.Phase) || (p.Tag >= 0 && nd.Ev.Tag != p.Tag) {
					continue
				}
				if nd.Prev >= 0 && d.Nodes[nd.Prev].Ev.Kind == sim.EvCompute {
					advance[i] += (1 - p.Frac) * d.Nodes[nd.Prev].Ev.Busy()
				}
			}
		}
	}
	return dBusy, edgeDelta, zeroWait, advance
}

// computeSlack runs the backward (latest-times) pass: how much later each
// node could finish without growing the makespan. Constraints propagate in
// reverse topological order — program order to the predecessor, message
// edges to the send, rendezvous groups to every member's predecessor with
// the group's tightest member slack.
func (s *Schedule) computeSlack() {
	d := s.D
	lateEnd := make([]float64, len(d.Nodes))
	for i := range lateEnd {
		lateEnd[i] = s.Makespan
	}
	relax := func(j int, v float64) {
		if v < lateEnd[j] {
			lateEnd[j] = v
		}
	}
	groupMinSlack := make([]float64, len(d.Groups))
	groupLeft := make([]int, len(d.Groups))
	for g := range d.Groups {
		groupMinSlack[g] = math.Inf(1)
		groupLeft[g] = len(d.Groups[g])
	}
	for k := len(s.order) - 1; k >= 0; k-- {
		i := s.order[k]
		nd := &d.Nodes[i]
		s.Slack[i] = lateEnd[i] - s.End[i]
		if nd.Ev.Kind == sim.EvCollective {
			g := nd.Group
			if s.Slack[i] < groupMinSlack[g] {
				groupMinSlack[g] = s.Slack[i]
			}
			groupLeft[g]--
			if groupLeft[g] == 0 {
				// All member slacks known: the sync point may slip by the
				// tightest one, bounding every entrant.
				for _, m := range d.Groups[g] {
					if prev := d.Nodes[m].Prev; prev >= 0 {
						relax(prev, s.BodyStart[m]+groupMinSlack[g])
					}
				}
			}
			continue
		}
		if nd.Prev >= 0 {
			relax(nd.Prev, s.BodyStart[i]+s.Slack[i])
		}
		if (nd.Ev.Kind == sim.EvRecv || nd.Ev.Kind == sim.EvWait) && nd.Match >= 0 && !math.IsNaN(s.avail[i]) {
			relax(nd.Match, s.End[nd.Match]+(s.BodyStart[i]-s.avail[i])+s.Slack[i])
		}
	}
}

// ChainStep is one link of the critical chain.
type ChainStep struct {
	Node int
	Ev   sim.Event
	// Via says which edge family bound this step to the previous one.
	Via Via
	// Contribution is this step's share of the makespan: its end minus the
	// binding dependency's end. Busy is the step's own work inside that,
	// Wait the exposed transit or synchronization delay. Contributions
	// telescope: they sum to the makespan.
	Contribution float64
	Busy         float64
	Wait         float64
}

// Chain extracts the critical chain — the binding-dependency walk from the
// makespan-defining node back to a root — in chronological order.
func (s *Schedule) Chain() []ChainStep {
	var rev []ChainStep
	for cur := s.Critical; cur >= 0 && len(rev) <= len(s.D.Nodes); cur = s.Binding[cur] {
		bindEnd := 0.0
		if b := s.Binding[cur]; b >= 0 {
			bindEnd = s.End[b]
		}
		contrib := s.End[cur] - bindEnd
		busy := s.End[cur] - s.BodyStart[cur]
		if busy > contrib {
			busy = contrib
		}
		if busy < 0 {
			busy = 0
		}
		rev = append(rev, ChainStep{
			Node: cur, Ev: s.D.Nodes[cur].Ev, Via: s.Via[cur],
			Contribution: contrib, Busy: busy, Wait: contrib - busy,
		})
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

package causal_test

import (
	"strings"
	"testing"

	"genmp/internal/obs/causal"
)

func TestParsePerturbations(t *testing.T) {
	cases := []struct {
		expr string
		want []causal.Perturbation
	}{
		{"identity", []causal.Perturbation{{Kind: causal.Identity, Src: -1, Dst: -1, Tag: -1, Factor: 1, Frac: 0.25}}},
		{"scale-link:0->1:0.5", []causal.Perturbation{{Kind: causal.ScaleLink, Src: 0, Dst: 1, Tag: -1, Factor: 0.5, Frac: 0.25}}},
		{"scale-link:*->3:2", []causal.Perturbation{{Kind: causal.ScaleLink, Src: -1, Dst: 3, Tag: -1, Factor: 2, Frac: 0.25}}},
		{"zero-wait:phase=halo", []causal.Perturbation{{Kind: causal.ZeroWait, Src: -1, Dst: -1, Tag: -1, Phase: "halo", Factor: 1, Frac: 0.25}}},
		{"zero-wait:link=2->0,tag=9", []causal.Perturbation{{Kind: causal.ZeroWait, Src: 2, Dst: 0, Tag: 9, Factor: 1, Frac: 0.25}}},
		{"overlap:phase=solve0", []causal.Perturbation{{Kind: causal.Overlap, Src: -1, Dst: -1, Tag: -1, Phase: "solve0", Factor: 1, Frac: 0.25}}},
		{"overlap:phase=solve1,frac=0.5", []causal.Perturbation{{Kind: causal.Overlap, Src: -1, Dst: -1, Tag: -1, Phase: "solve1", Factor: 1, Frac: 0.5}}},
		{" overlap:phase=a ; scale-link:1->0:4 ", []causal.Perturbation{
			{Kind: causal.Overlap, Src: -1, Dst: -1, Tag: -1, Phase: "a", Factor: 1, Frac: 0.25},
			{Kind: causal.ScaleLink, Src: 1, Dst: 0, Tag: -1, Factor: 4, Frac: 0.25},
		}},
	}
	for _, c := range cases {
		got, err := causal.ParsePerturbations(c.expr)
		if err != nil {
			t.Errorf("%q: %v", c.expr, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("%q: parsed %d perturbations, want %d", c.expr, len(got), len(c.want))
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%q[%d] = %+v, want %+v", c.expr, i, got[i], c.want[i])
			}
		}
	}
}

func TestParsePerturbationsErrors(t *testing.T) {
	cases := []struct{ expr, wantSub string }{
		{"", "empty"},
		{" ; ", "empty"},
		{"warp-speed:1", "unknown perturbation"},
		{"identity:extra", "no arguments"},
		{"scale-link:0->1", "wants SRC->DST:FACTOR"},
		{"scale-link:0-1:2", "bad link"},
		{"scale-link:0->x:2", "bad rank"},
		{"scale-link:0->1:-3", "factor"},
		{"zero-wait:", "at least one filter"},
		{"zero-wait:color=red", "unknown filter"},
		{"zero-wait:tag=-4", "bad tag"},
		{"overlap:frac=0.5", "needs phase"},
		{"overlap:phase=a,frac=1.5", "outside [0, 1]"},
		{"overlap:phase=a,frac=x", "bad frac"},
		{"overlap:phase", "key=value"},
	}
	for _, c := range cases {
		_, err := causal.ParsePerturbations(c.expr)
		if err == nil {
			t.Errorf("%q: parsed without error", c.expr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q does not mention %q", c.expr, err, c.wantSub)
		}
	}
}

func TestPerturbationStringRoundTrips(t *testing.T) {
	exprs := []string{
		"identity",
		"scale-link:0->1:0.5",
		"scale-link:*->3:2",
		"zero-wait:phase=halo",
		"zero-wait:link=2->0,tag=9",
		"overlap:phase=solve0,frac=0.25",
	}
	for _, expr := range exprs {
		ps, err := causal.ParsePerturbations(expr)
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		back, err := causal.ParsePerturbations(ps[0].String())
		if err != nil {
			t.Errorf("%q: String() %q does not re-parse: %v", expr, ps[0].String(), err)
			continue
		}
		if back[0] != ps[0] {
			t.Errorf("%q: round trip %+v != %+v", expr, back[0], ps[0])
		}
	}
}

package causal_test

import (
	"math"
	"testing"

	"genmp/internal/obs/causal"
	"genmp/internal/sim"
)

// TestIdentityReplayBitExact is the engine's core contract: replaying the
// DAG with no perturbation lands every event — and therefore the makespan —
// on exactly the float the simulator recorded, at p=4 and p=16.
func TestIdentityReplayBitExact(t *testing.T) {
	for _, p := range []int{4, 16} {
		tr, res := runSP(t, p, 2)
		d, err := causal.Build(tr, p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := d.Replay()
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan != res.Makespan {
			t.Errorf("p=%d: replayed makespan %.17g != simulated %.17g (diff %g)",
				p, s.Makespan, res.Makespan, s.Makespan-res.Makespan)
		}
		for i := range d.Nodes {
			if s.End[i] != d.Nodes[i].Ev.End {
				t.Fatalf("p=%d: node %d (%s rank %d) replayed end %.17g != observed %.17g",
					p, i, d.Nodes[i].Ev.Kind, d.Nodes[i].Ev.Rank, s.End[i], d.Nodes[i].Ev.End)
			}
		}
	}
}

// TestSlackAndChainInvariants checks the backward pass: slack is
// non-negative everywhere, zero on the critical node, and the chain's
// contributions telescope to the makespan.
func TestSlackAndChainInvariants(t *testing.T) {
	tr, res := runSP(t, 4, 2)
	d, err := causal.Build(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Replay()
	if err != nil {
		t.Fatal(err)
	}
	for i, sl := range s.Slack {
		if sl < -1e-12 {
			t.Errorf("node %d has negative slack %g", i, sl)
		}
	}
	if s.Slack[s.Critical] != 0 {
		t.Errorf("critical node slack = %g, want 0", s.Slack[s.Critical])
	}
	chain := s.Chain()
	if len(chain) == 0 {
		t.Fatal("empty critical chain")
	}
	if last := chain[len(chain)-1]; last.Node != s.Critical {
		t.Errorf("chain ends at node %d, want the critical node %d", last.Node, s.Critical)
	}
	sum := 0.0
	for _, st := range chain {
		if st.Contribution < -1e-12 {
			t.Errorf("chain step at node %d has negative contribution %g", st.Node, st.Contribution)
		}
		sum += st.Contribution
	}
	if rel := math.Abs(sum-res.Makespan) / res.Makespan; rel > 1e-9 {
		t.Errorf("chain contributions sum to %.17g, makespan is %.17g (rel err %g)", sum, res.Makespan, rel)
	}
	b := s.Blame()
	if rel := math.Abs(b.BusyOnPath+b.WaitOnPath-res.Makespan) / res.Makespan; rel > 1e-9 {
		t.Errorf("blame busy %g + wait %g does not telescope to makespan %g", b.BusyOnPath, b.WaitOnPath, res.Makespan)
	}
	for _, view := range [][]causal.BlameRow{b.ByPhase, b.ByKind} {
		vsum := 0.0
		for _, r := range view {
			vsum += r.Total()
		}
		if rel := math.Abs(vsum-res.Makespan) / res.Makespan; rel > 1e-9 {
			t.Errorf("blame view sums to %g, makespan is %g", vsum, res.Makespan)
		}
	}
}

// TestOverlapPredictsSmallerMakespan is the documented what-if: posting
// solve-phase carry messages once a quarter of the preceding compute has
// run (boundary-lines-first, ROADMAP item 2) must strictly shrink the
// predicted makespan, with the recovered time visible in the blame report.
func TestOverlapPredictsSmallerMakespan(t *testing.T) {
	tr, res := runSP(t, 4, 2)
	d, err := causal.Build(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := d.Replay()
	if err != nil {
		t.Fatal(err)
	}
	perts, err := causal.ParsePerturbations("overlap:phase=solve0,frac=0.25")
	if err != nil {
		t.Fatal(err)
	}
	what, err := d.Replay(perts...)
	if err != nil {
		t.Fatal(err)
	}
	if !(what.Makespan < base.Makespan) {
		t.Fatalf("overlap what-if predicted %.17g, not smaller than %.17g", what.Makespan, base.Makespan)
	}
	// The delta shows up as shrunken solve0 wait in the blame report.
	waitOf := func(b *causal.Blame, phase string) float64 {
		for _, r := range b.ByPhase {
			if r.Key == phase {
				return r.Wait
			}
		}
		return 0
	}
	if bw, ww := waitOf(base.Blame(), "solve0"), waitOf(what.Blame(), "solve0"); !(ww < bw) {
		t.Errorf("solve0 wait did not shrink: baseline %g, what-if %g", bw, ww)
	}
	if res.Makespan != base.Makespan {
		t.Errorf("baseline drifted from the simulated makespan")
	}
}

// TestScaleLinkMonotone: slowing every link can only delay the run; a large
// factor must strictly delay a run that has any exposed transit.
func TestScaleLinkMonotone(t *testing.T) {
	tr, _ := runSP(t, 4, 2)
	d, err := causal.Build(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := d.Replay()
	if err != nil {
		t.Fatal(err)
	}
	slow, err := d.Replay(causal.Perturbation{Kind: causal.ScaleLink, Src: -1, Dst: -1, Tag: -1, Factor: 10})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan <= base.Makespan {
		t.Errorf("10× slower links predicted %.17g, want > %.17g", slow.Makespan, base.Makespan)
	}
	fast, err := d.Replay(causal.Perturbation{Kind: causal.ScaleLink, Src: -1, Dst: -1, Tag: -1, Factor: 0})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Makespan > base.Makespan {
		t.Errorf("free links predicted %.17g, want ≤ %.17g", fast.Makespan, base.Makespan)
	}
}

// TestZeroWaitRemovesExposure: erasing halo-phase message dependencies must
// not lengthen the run, and must shrink it when halo waits sit on the path.
func TestZeroWaitRemovesExposure(t *testing.T) {
	tr, _ := runSP(t, 4, 2)
	d, err := causal.Build(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := d.Replay()
	if err != nil {
		t.Fatal(err)
	}
	hasHaloWait := false
	for _, st := range base.Chain() {
		if st.Ev.Phase == "halo" && st.Wait > 0 {
			hasHaloWait = true
		}
	}
	perts, err := causal.ParsePerturbations("zero-wait:phase=halo")
	if err != nil {
		t.Fatal(err)
	}
	what, err := d.Replay(perts...)
	if err != nil {
		t.Fatal(err)
	}
	if what.Makespan > base.Makespan {
		t.Errorf("zero-wait predicted %.17g, want ≤ %.17g", what.Makespan, base.Makespan)
	}
	if hasHaloWait && !(what.Makespan < base.Makespan) {
		t.Errorf("halo waits sit on the path but zero-wait recovered nothing")
	}
}

// TestReplaySyntheticPerturbation pins the replay arithmetic on a trace
// small enough to verify by hand: rank 0 computes 1s and sends; rank 1's
// recv waits for the message and computes 1s more.
func TestReplaySyntheticPerturbation(t *testing.T) {
	tr := &sim.Trace{}
	tr.Append(
		sim.Event{Rank: 0, Kind: sim.EvCompute, Start: 0, End: 1, Peer: -1, Phase: "a"},
		sim.Event{Rank: 0, Kind: sim.EvSend, Start: 1, End: 1.25, Peer: 1, Tag: 0, Phase: "a"},
		sim.Event{Rank: 1, Kind: sim.EvRecv, Start: 0, End: 1.5, Peer: 0, Tag: 0, Wait: 1.25, Phase: "a"},
		sim.Event{Rank: 1, Kind: sim.EvCompute, Start: 1.5, End: 2.5, Peer: -1, Phase: "a"},
	)
	d, err := causal.Build(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 2.5 {
		t.Fatalf("identity makespan = %g, want 2.5", s.Makespan)
	}
	// Zeroing the recv's wait lets rank 1 finish after just its own busy
	// time: 0.25s of recv processing + 1s compute.
	perts, err := causal.ParsePerturbations("zero-wait:phase=a")
	if err != nil {
		t.Fatal(err)
	}
	what, err := d.Replay(perts...)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(what.Makespan-1.25) > 1e-12 {
		t.Errorf("zero-wait makespan = %g, want 1.25", what.Makespan)
	}
}

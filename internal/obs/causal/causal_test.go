package causal_test

import (
	"testing"

	"genmp/internal/core"
	"genmp/internal/dist"
	"genmp/internal/nas"
	"genmp/internal/obs"
	"genmp/internal/obs/causal"
	"genmp/internal/obs/metrics"
	"genmp/internal/partition"
	"genmp/internal/sim"
)

// runSP executes a traced NAS SP run (class S grid) on p processors with
// the optimal multipartitioning, returning the trace and result.
func runSP(t *testing.T, p, steps int) (*sim.Trace, sim.Result) {
	t.Helper()
	eta := nas.ClassS.Eta
	obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
	m, err := core.NewOptimal(p, len(eta), obj)
	if err != nil {
		t.Fatal(err)
	}
	env, err := dist.NewEnv(m, eta, dist.DHPF())
	if err != nil {
		t.Fatal(err)
	}
	mach := nas.Origin2000Machine(p)
	mach.Trace = &sim.Trace{}
	res, err := nas.Run(env, mach, steps, nil)
	if err != nil {
		t.Fatal(err)
	}
	return mach.Trace, res
}

func TestMatcherFIFOPairing(t *testing.T) {
	m := causal.NewMatcher()
	ch := causal.Channel{Src: 0, Dst: 1, Tag: 7}
	other := causal.Channel{Src: 1, Dst: 0, Tag: 7}
	m.AddSend(ch, 10)
	m.AddSend(ch, 11)
	m.AddSend(other, 12)
	m.AddRecv(ch, 20)
	m.AddRecv(ch, 21)

	pairs := map[int]int{}
	m.Pairs(func(s, r int) { pairs[s] = r })
	if len(pairs) != 2 || pairs[10] != 20 || pairs[11] != 21 {
		t.Errorf("pairs = %v, want 10→20, 11→21 (k-th send with k-th recv)", pairs)
	}
	if s, r := m.Unmatched(); s != 1 || r != 0 {
		t.Errorf("unmatched = (%d, %d), want (1, 0): the send on the reverse channel", s, r)
	}
}

func TestMatcherTakeSendStreams(t *testing.T) {
	m := causal.NewMatcher()
	ch := causal.Channel{Src: 2, Dst: 3, Tag: 0}
	if _, ok := m.TakeSend(ch); ok {
		t.Fatal("TakeSend on an empty channel succeeded")
	}
	m.AddSend(ch, 1)
	m.AddSend(ch, 2)
	if id, ok := m.TakeSend(ch); !ok || id != 1 {
		t.Errorf("first TakeSend = (%d, %v), want (1, true)", id, ok)
	}
	if id, ok := m.TakeSend(ch); !ok || id != 2 {
		t.Errorf("second TakeSend = (%d, %v), want (2, true)", id, ok)
	}
	if _, ok := m.TakeSend(ch); ok {
		t.Error("third TakeSend succeeded on a drained channel")
	}
}

// TestBuildSynthetic checks the DAG's structural edges on a hand-written
// two-rank trace: compute → send on rank 0, recv → compute on rank 1, one
// collective joining both.
func TestBuildSynthetic(t *testing.T) {
	tr := &sim.Trace{}
	tr.Append(
		sim.Event{Rank: 0, Kind: sim.EvCompute, Start: 0, End: 1, Peer: -1, Phase: "a"},
		sim.Event{Rank: 0, Kind: sim.EvSend, Start: 1, End: 1.1, Peer: 1, Tag: 3, Bytes: 8, Phase: "a"},
		sim.Event{Rank: 1, Kind: sim.EvRecv, Start: 0, End: 1.3, Peer: 0, Tag: 3, Bytes: 8, Wait: 1.2, Phase: "a"},
		sim.Event{Rank: 1, Kind: sim.EvCompute, Start: 1.3, End: 2.3, Peer: -1, Phase: "a"},
		sim.Event{Rank: 0, Kind: sim.EvCollective, Start: 1.1, End: 2.5, Peer: -1, Wait: 1.3, Label: "barrier"},
		sim.Event{Rank: 1, Kind: sim.EvCollective, Start: 2.3, End: 2.5, Peer: -1, Wait: 0.1, Label: "barrier"},
		// A flight-recorder marker that must be skipped entirely.
		sim.Event{Rank: 0, Kind: sim.EvBlocked, Start: 0, End: 99, Peer: 1},
	)
	d, err := causal.Build(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) != 6 {
		t.Fatalf("built %d nodes, want 6 (EvBlocked skipped)", len(d.Nodes))
	}
	if d.Makespan != 2.5 {
		t.Errorf("makespan = %g, want 2.5 (blocked event must not extend it)", d.Makespan)
	}
	if d.MsgEdges != 1 {
		t.Errorf("message edges = %d, want 1", d.MsgEdges)
	}
	var send, recv *causal.Node
	for i := range d.Nodes {
		switch d.Nodes[i].Ev.Kind {
		case sim.EvSend:
			send = &d.Nodes[i]
		case sim.EvRecv:
			recv = &d.Nodes[i]
		}
	}
	if send == nil || recv == nil || send.Match != recv.ID || recv.Match != send.ID {
		t.Fatalf("send/recv not cross-matched: send %+v recv %+v", send, recv)
	}
	if send.Prev < 0 || d.Nodes[send.Prev].Ev.Kind != sim.EvCompute {
		t.Errorf("send's program-order predecessor is not the compute event")
	}
	if len(d.Groups) != 1 || len(d.Groups[0]) != 2 {
		t.Errorf("groups = %v, want one group of 2", d.Groups)
	}
	for _, r := range []int{0, 1} {
		ids := d.Rank(r)
		for k := 1; k < len(ids); k++ {
			if d.Nodes[ids[k]].Prev != ids[k-1] {
				t.Errorf("rank %d program order broken at %d", r, k)
			}
		}
	}
}

// TestBusyCriticalPathMatchesObs pins the delegation: the DAG's busy-chain
// scalar and obs.CriticalPath are the same computation.
func TestBusyCriticalPathMatchesObs(t *testing.T) {
	tr, _ := runSP(t, 4, 2)
	d, err := causal.Build(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.BusyCriticalPath(), obs.CriticalPath(tr, 4); got != want {
		t.Errorf("DAG busy critical path %.17g != obs.CriticalPath %.17g", got, want)
	}
}

// TestMsgEdgesMatchMetricsCounter cross-checks two independent message
// counts on the same run: the DAG's matched send→recv edges and the live
// metrics registry's sim_messages_total counter.
func TestMsgEdgesMatchMetricsCounter(t *testing.T) {
	eta := nas.ClassS.Eta
	p := 4
	obj := partition.MachineObjective(eta, 20e-6, 80e-9/float64(p))
	m, err := core.NewOptimal(p, len(eta), obj)
	if err != nil {
		t.Fatal(err)
	}
	env, err := dist.NewEnv(m, eta, dist.DHPF())
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	mach := nas.Origin2000Machine(p)
	mach.Trace = &sim.Trace{}
	mach.Metrics = reg
	res, err := nas.Run(env, mach, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := causal.Build(mach.Trace, p)
	if err != nil {
		t.Fatal(err)
	}
	counted, _ := reg.Snapshot().Value("sim_messages_total")
	if float64(d.MsgEdges) != counted {
		t.Errorf("DAG matched %d message edges, metrics counted %g", d.MsgEdges, counted)
	}
	if d.MsgEdges != res.TotalMessages() {
		t.Errorf("DAG matched %d message edges, result reports %d", d.MsgEdges, res.TotalMessages())
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := causal.Build(nil, 4); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := causal.Build(&sim.Trace{}, 0); err == nil {
		t.Error("p=0 accepted")
	}
}

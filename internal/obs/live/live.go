// Package live is the opt-in telemetry wiring shared by the benchmark
// commands (the -metrics-addr, -flightrec and -pprof-labels flags): one
// process-wide metrics registry pointed at by every runtime's package
// default, optionally served over HTTP next to net/http/pprof. With a zero
// Config, Start does nothing at all, so default runs stay byte-identical.
package live

import (
	"genmp/internal/obs/metrics"
	"genmp/internal/partition"
	"genmp/internal/plan"
	"genmp/internal/sim"
)

// Config selects which telemetry a command turns on.
type Config struct {
	// Addr serves /metrics (Prometheus text), /metrics.json and the
	// /debug/pprof endpoints on this listen address ("" = no server, but a
	// registry is still installed when any other field is set... see Start).
	Addr string
	// FlightDepth attaches a per-rank flight recorder of this ring depth to
	// every machine, turning deadlock aborts into post-mortem reports
	// (0 = off).
	FlightDepth int
	// PProfLabels tags rank goroutines with pprof labels so CPU profiles
	// split by rank and sweep phase.
	PProfLabels bool
}

// State is the running telemetry of one command.
type State struct {
	// Registry is the process-wide registry, nil when metrics are off.
	Registry *metrics.Registry
	// Server is the bound HTTP endpoint, nil unless Config.Addr was set.
	// Server.Addr has the resolved address (useful with ":0").
	Server *metrics.Server
}

// Start applies cfg: it installs a fresh registry as the sim, partition and
// plan package default (when Addr is set), flips the sim observability
// defaults, and starts the HTTP endpoint. A zero cfg returns a zero State
// and changes nothing.
func Start(cfg Config) (State, error) {
	var st State
	if cfg.Addr != "" {
		st.Registry = metrics.New()
		sim.SetDefaultMetrics(st.Registry)
		partition.EnableMetrics(st.Registry)
		plan.EnableMetrics(st.Registry)
		srv, err := metrics.Serve(cfg.Addr, st.Registry)
		if err != nil {
			return State{}, err
		}
		st.Server = srv
	}
	if cfg.FlightDepth > 0 {
		sim.SetDefaultFlightDepth(cfg.FlightDepth)
	}
	sim.SetDefaultPProfLabels(cfg.PProfLabels)
	return st, nil
}

// Stop detaches the package defaults and closes the HTTP endpoint; tests
// use it so one command run cannot leak telemetry into the next.
func (st State) Stop() {
	sim.SetDefaultMetrics(nil)
	partition.EnableMetrics(nil)
	plan.EnableMetrics(nil)
	sim.SetDefaultFlightDepth(0)
	sim.SetDefaultPProfLabels(false)
	if st.Server != nil {
		_ = st.Server.Close()
	}
}

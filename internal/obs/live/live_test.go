package live

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"genmp/internal/sim"
)

// End-to-end scrape: Start wires the package defaults, a machine run
// reports through them, and the HTTP endpoint returns Prometheus text with
// nonzero message and pool-traffic series — what a curl of -metrics-addr
// during a benchmark run must show.
func TestStartServesLiveMachineMetrics(t *testing.T) {
	st, err := Start(Config{Addr: "127.0.0.1:0", FlightDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()

	m := sim.NewMachine(2, sim.Network{Latency: 1e-6, Bandwidth: 1e9}, sim.CPU{FlopsPerSec: 1e9})
	run := func() {
		t.Helper()
		if _, err := m.Run(func(r *sim.Rank) {
			buf := r.GetPayload(32)
			peer := 1 - r.ID
			r.Send(peer, 1, sim.Msg{Bytes: 256, Payload: buf})
			msg := r.Recv(peer, 1)
			r.PutPayload(msg.Payload)
		}); err != nil {
			t.Fatal(err)
		}
	}
	run()
	run() // second run recycles payloads: pool hits become nonzero

	resp, err := http.Get("http://" + st.Server.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"sim_messages_total 4",
		"sim_payload_pool_gets_total 4",
		"sim_runs_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q\n%s", want, text)
		}
	}
	if !strings.Contains(text, "sim_payload_pool_hits_total 2") {
		t.Errorf("second run should recycle both payloads:\n%s", text)
	}

	// The default flight depth reached the machine Run built on.
	if m.Flight == nil || m.Flight.Depth() != 16 {
		t.Errorf("machine flight recorder = %+v, want depth 16", m.Flight)
	}

	jresp, err := http.Get("http://" + st.Server.Addr + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	jbody, err := io.ReadAll(jresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jbody), `"sim_messages_total"`) {
		t.Errorf("/metrics.json missing sim_messages_total: %s", jbody)
	}
}

// A zero config is inert: no registry, no server, no defaults flipped.
func TestStartZeroConfigIsInert(t *testing.T) {
	st, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	if st.Registry != nil || st.Server != nil {
		t.Fatalf("zero config built state: %+v", st)
	}
	m := sim.NewMachine(2, sim.Network{Latency: 1e-6, Bandwidth: 1e9}, sim.CPU{FlopsPerSec: 1e9})
	if _, err := m.Run(func(r *sim.Rank) {}); err != nil {
		t.Fatal(err)
	}
	if m.Flight != nil || m.PProfLabels {
		t.Errorf("zero config leaked observability onto the machine: flight=%v labels=%v", m.Flight, m.PProfLabels)
	}
}

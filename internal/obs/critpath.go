package obs

import (
	"sort"

	"genmp/internal/sim"
)

// msgChannel identifies one FIFO point-to-point channel.
type msgChannel struct{ src, dst, tag int }

// CriticalPath estimates the longest dependency chain of busy time (compute
// plus communication overhead, excluding blocked waits) through a traced
// run. The event graph has an edge between consecutive events of a rank,
// from each send to the recv that consumed its message (k-th send on a
// (src,dst,tag) channel pairs with the k-th recv — the machine's FIFO
// delivery order), and through every collective (a collective's exit chain
// is the maximum over all ranks' entry chains). The result is a lower
// bound on the makespan of any schedule that preserves the dependence
// structure and per-event work; makespan − CriticalPath is slack no
// reordering could recover.
func CriticalPath(tr *sim.Trace, p int) float64 {
	if tr == nil {
		return 0
	}
	events := tr.Events()
	// Process in completion order: every dependency edge u→v satisfies
	// u.End ≤ v.End (same-rank events are sequential; a message's send
	// completes before its recv; collective members share one End).
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].End != events[b].End {
			return events[a].End < events[b].End
		}
		return events[a].Rank < events[b].Rank
	})

	rankCP := make([]float64, p)
	sends := map[msgChannel][]float64{} // chain length just after each unmatched send
	type collGroup struct {
		seen  int
		maxIn float64
		cost  float64
		ranks []int
	}
	collCount := make([]int, p) // collectives completed per rank → group index
	groups := map[int]*collGroup{}

	for _, e := range events {
		if e.Rank < 0 || e.Rank >= p {
			continue
		}
		switch e.Kind {
		case sim.EvSend:
			cp := rankCP[e.Rank] + e.Busy()
			rankCP[e.Rank] = cp
			ch := msgChannel{src: e.Rank, dst: e.Peer, tag: e.Tag}
			sends[ch] = append(sends[ch], cp)
		case sim.EvRecv:
			in := rankCP[e.Rank]
			ch := msgChannel{src: e.Peer, dst: e.Rank, tag: e.Tag}
			if q := sends[ch]; len(q) > 0 {
				if q[0] > in {
					in = q[0]
				}
				sends[ch] = q[1:]
			}
			rankCP[e.Rank] = in + e.Busy()
		case sim.EvCollective:
			g := collCount[e.Rank]
			collCount[e.Rank]++
			grp := groups[g]
			if grp == nil {
				grp = &collGroup{}
				groups[g] = grp
			}
			if in := rankCP[e.Rank]; in > grp.maxIn {
				grp.maxIn = in
			}
			if b := e.Busy(); b > grp.cost {
				grp.cost = b
			}
			grp.ranks = append(grp.ranks, e.Rank)
			grp.seen++
			if grp.seen == p {
				out := grp.maxIn + grp.cost
				for _, r := range grp.ranks {
					rankCP[r] = out
				}
				delete(groups, g)
			}
		default: // compute, mark
			rankCP[e.Rank] += e.Busy()
		}
	}
	// Unfinished collective groups (a rank exited early): settle with what
	// was seen.
	for _, grp := range groups {
		out := grp.maxIn + grp.cost
		for _, r := range grp.ranks {
			if out > rankCP[r] {
				rankCP[r] = out
			}
		}
	}
	cp := 0.0
	for _, v := range rankCP {
		if v > cp {
			cp = v
		}
	}
	return cp
}

package obs

import (
	"genmp/internal/sim"

	"genmp/internal/obs/causal"
)

// CriticalPath estimates the longest dependency chain of busy time (compute
// plus communication overhead, excluding blocked waits) through a traced
// run. The event graph has an edge between consecutive events of a rank,
// from each send to the recv that consumed its message (k-th send on a
// (src,dst,tag) channel pairs with the k-th recv — the machine's FIFO
// delivery order), and through every collective (a collective's exit chain
// is the maximum over all ranks' entry chains). The result is a lower
// bound on the makespan of any schedule that preserves the dependence
// structure and per-event work; makespan − CriticalPath is slack no
// reordering could recover.
//
// The computation is shared with the causal analysis engine — this is the
// same scalar as causal.(*DAG).BusyCriticalPath, and the full navigable
// path behind it lives in internal/obs/causal.
func CriticalPath(tr *sim.Trace, p int) float64 {
	if tr == nil {
		return 0
	}
	return causal.BusyCriticalPath(tr.Events(), p)
}

package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"genmp/internal/sim"
)

func traceForTest(t *testing.T) (*sim.Trace, sim.Result, int) {
	t.Helper()
	p := 3
	m := sim.NewMachine(p, sim.Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 1e-6, RecvOverhead: 1e-6}, sim.CPU{FlopsPerSec: 1e9})
	m.Trace = &sim.Trace{}
	res, err := m.Run(func(r *sim.Rank) {
		r.BeginPhase("ring")
		r.Compute(float64(r.ID+1) * 1e-5)
		next := (r.ID + 1) % p
		prev := (r.ID + p - 1) % p
		r.SendRecv(next, 2, sim.Msg{Bytes: 640}, prev, 2)
		r.Mark("lap")
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	return m.Trace, res, p
}

// TestTraceJSONRoundTrip: a written trace artifact reconstitutes into an
// event list that is field-for-field (including bitwise float) identical,
// and rewriting it yields a byte-identical file.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr, res, p := traceForTest(t)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteTraceJSON(path, "test -tracejson", tr, p, res.Makespan); err != nil {
		t.Fatal(err)
	}
	tf, err := ReadTraceJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if tf.P != p || tf.Makespan != res.Makespan || tf.Source != "test -tracejson" {
		t.Errorf("envelope = p %d makespan %.17g source %q", tf.P, tf.Makespan, tf.Source)
	}
	back, err := tf.Trace()
	if err != nil {
		t.Fatal(err)
	}
	want, got := tr.Events(), back.Events()
	if len(want) != len(got) {
		t.Fatalf("round trip has %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// Determinism: rewriting the reconstituted trace is byte-identical.
	path2 := filepath.Join(t.TempDir(), "trace2.json")
	if err := WriteTraceJSON(path2, "test -tracejson", back, p, res.Makespan); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Error("rewritten trace artifact is not byte-identical")
	}
}

func TestReadTraceJSONRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct{ path, wantSub string }{
		{filepath.Join(dir, "missing.json"), "read trace file"},
		{write("garbage.json", "{nope"), "parse"},
		{write("wrongkind.json", `{"schema":1,"kind":"plan","p":2,"makespan_sec":1,"events":[]}`), "not a trace file"},
		{write("badschema.json", `{"schema":99,"kind":"trace","p":2,"makespan_sec":1,"events":[]}`), "unsupported trace schema"},
		{write("badp.json", `{"schema":1,"kind":"trace","p":0,"makespan_sec":1,"events":[]}`), "invalid rank count"},
	}
	for _, c := range cases {
		_, err := ReadTraceJSON(c.path)
		if err == nil {
			t.Errorf("%s: accepted", filepath.Base(c.path))
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", filepath.Base(c.path), err, c.wantSub)
		}
	}
}

func TestTraceFileRejectsUnknownKind(t *testing.T) {
	tf := TraceFile{Schema: TraceSchema, Kind: TraceFileKind, P: 1,
		Events: []TraceEventJSON{{Rank: 0, Kind: "teleport", Start: 0, End: 1}}}
	if _, err := tf.Trace(); err == nil || !strings.Contains(err.Error(), "unknown event kind") {
		t.Errorf("unknown event kind produced %v", err)
	}
}

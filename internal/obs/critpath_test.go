package obs

import (
	"testing"

	"genmp/internal/sim"
)

// TestCriticalPathSkipsBlockedEvents is the regression test for the latent
// default-branch bug: EvBlocked markers (flight-recorder breadcrumbs for a
// receive that never completed) carry End > Start but represent pure
// waiting, and must contribute nothing to the busy-chain estimate.
func TestCriticalPathSkipsBlockedEvents(t *testing.T) {
	base := &sim.Trace{}
	base.Append(
		sim.Event{Rank: 0, Kind: sim.EvCompute, Start: 0, End: 1, Peer: -1},
		sim.Event{Rank: 1, Kind: sim.EvCompute, Start: 0, End: 0.5, Peer: -1},
	)
	want := CriticalPath(base, 2)
	if want != 1 {
		t.Fatalf("baseline critical path = %g, want 1", want)
	}

	// The same trace with a blocked marker spanning far past everything:
	// the scalar must not move.
	withBlocked := &sim.Trace{}
	withBlocked.Append(
		sim.Event{Rank: 0, Kind: sim.EvCompute, Start: 0, End: 1, Peer: -1},
		sim.Event{Rank: 1, Kind: sim.EvCompute, Start: 0, End: 0.5, Peer: -1},
		sim.Event{Rank: 1, Kind: sim.EvBlocked, Start: 0.5, End: 10, Peer: 0},
	)
	if got := CriticalPath(withBlocked, 2); got != want {
		t.Errorf("critical path with EvBlocked = %g, want %g (blocked time counted as busy)", got, want)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"genmp/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// exportPingPong runs the deterministic 2-rank program and exports its
// trace.
func exportPingPong(t *testing.T) []byte {
	t.Helper()
	m := testMachine(2)
	m.Trace = &sim.Trace{}
	if _, err := m.Run(pingPong); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, m.Trace, 2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteTraceValidJSONAndFlows(t *testing.T) {
	data := exportPingPong(t)
	var tf struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
			ID   int     `json:"id"`
			BP   string  `json:"bp"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("exporter produced invalid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", tf.DisplayTimeUnit)
	}
	// Flow events must come in matched s/f pairs with equal ids, the start
	// on the sender's track no later than the finish on the receiver's.
	starts := map[int]float64{}
	finishes := map[int]float64{}
	threads := map[int]bool{}
	slices := 0
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "s":
			if _, dup := starts[e.ID]; dup {
				t.Errorf("duplicate flow start id %d", e.ID)
			}
			starts[e.ID] = e.Ts
		case "f":
			if e.BP != "e" {
				t.Errorf("flow finish id %d missing bp=e", e.ID)
			}
			if _, dup := finishes[e.ID]; dup {
				t.Errorf("duplicate flow finish id %d", e.ID)
			}
			finishes[e.ID] = e.Ts
		case "X":
			slices++
			if e.Dur < 0 {
				t.Errorf("negative duration slice %+v", e)
			}
		case "M":
			threads[e.Tid] = true
		}
	}
	// The pingPong program exchanges exactly 2 point-to-point messages.
	if len(starts) != 2 || len(finishes) != 2 {
		t.Fatalf("want 2 flow pairs, got %d starts, %d finishes", len(starts), len(finishes))
	}
	for id, ts := range starts {
		fts, ok := finishes[id]
		if !ok {
			t.Errorf("flow id %d has a start but no finish", id)
			continue
		}
		if ts > fts {
			t.Errorf("flow id %d starts at %g after its finish %g", id, ts, fts)
		}
	}
	if !threads[0] || !threads[1] {
		t.Errorf("missing thread_name metadata for both ranks: %v", threads)
	}
	if slices == 0 {
		t.Error("no slices exported")
	}
}

// The export must be byte-stable: same program, same bytes, run to run —
// goroutine scheduling must not leak into the output. Also locked against
// a golden file so accidental format changes are visible in review.
func TestWriteTraceGolden(t *testing.T) {
	a := exportPingPong(t)
	for i := 0; i < 5; i++ {
		b := exportPingPong(t)
		if !bytes.Equal(a, b) {
			t.Fatalf("export differs between identical runs (run %d)", i)
		}
	}
	golden := filepath.Join("testdata", "perfetto_pingpong.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, a, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(a, want) {
		t.Fatalf("export differs from golden file %s (regenerate with -update-golden if intended)", golden)
	}
}

func TestWriteTraceFileAndNilTrace(t *testing.T) {
	if err := WriteTrace(&bytes.Buffer{}, nil, 2); err == nil {
		t.Error("nil trace must be an error")
	}
	m := testMachine(2)
	m.Trace = &sim.Trace{}
	if _, err := m.Run(pingPong); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteTraceFile(path, m.Trace, 2); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}
}

// Package obs is the observability layer over the virtual machine of
// internal/sim: it aggregates a run's per-rank, per-phase statistics into a
// Profile (per-phase time breakdown, load-imbalance ratio, busy-time
// percentiles, a critical-path estimate from the event graph), and exports
// traces in the Chrome trace-event JSON format so any run can be inspected
// in ui.perfetto.dev.
//
// The paper's evaluation (Table 1, Figures 6–7) argues from exactly this
// kind of data — where per-phase time goes, how many messages move, how
// balanced the phases are — so every cmd/ tool can surface a Profile
// (-metrics) and a trace (-trace out.json) for any configuration.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"genmp/internal/sim"
)

// PhaseProfile aggregates one phase label across all ranks of a run. The
// JSON form is the profile_*.json on-disk schema consumed by
// obs/profdiff and cmd/benchdiff.
type PhaseProfile struct {
	Label string `json:"label"`
	// Compute, Comm and Wait are the mean per-rank seconds spent in the
	// phase; MaxTotal is the slowest rank's Compute+Comm+Wait.
	Compute  float64 `json:"compute_sec"`
	Comm     float64 `json:"comm_sec"`
	Wait     float64 `json:"wait_sec"`
	MaxTotal float64 `json:"max_total_sec"`
	// Imbalance is max/mean of the per-rank busy time (Compute+Comm) of
	// the phase; 1 means perfectly balanced, 0 means the phase did no busy
	// work anywhere.
	Imbalance float64 `json:"imbalance"`
	Msgs      int     `json:"msgs"`  // messages sent in the phase, all ranks
	Bytes     int     `json:"bytes"` // bytes sent in the phase, all ranks
}

// Mean returns the mean per-rank time accounted to the phase.
func (pp PhaseProfile) Mean() float64 { return pp.Compute + pp.Comm + pp.Wait }

// Profile is the aggregate view of one run.
type Profile struct {
	P        int     `json:"p"`
	Makespan float64 `json:"makespan_sec"`
	// Phases is sorted by label; activity recorded before any BeginPhase
	// appears under the empty label.
	Phases []PhaseProfile `json:"phases,omitempty"`
	// Idle is the mean per-rank trailing idle time (after the rank's body
	// returned, until the slowest rank finished).
	Idle float64 `json:"idle_sec"`
	// BusyP50, BusyP90 and BusyMax are percentiles of the per-rank busy
	// time (compute + comm, excluding waits).
	BusyP50 float64 `json:"busy_p50_sec"`
	BusyP90 float64 `json:"busy_p90_sec"`
	BusyMax float64 `json:"busy_max_sec"`
	// LoadImbalance is BusyMax over the mean per-rank busy time.
	LoadImbalance float64 `json:"load_imbalance"`
	// CriticalPath is the longest busy-time dependency chain through the
	// run's event graph (0 unless the Profile was built with a trace); see
	// CriticalPath for the graph definition. Makespan − CriticalPath is
	// time no schedule could remove without changing the dependence
	// structure or the per-event work.
	CriticalPath float64 `json:"critical_path_sec,omitempty"`
	TotalMsgs    int     `json:"total_msgs"`
	TotalBytes   int     `json:"total_bytes"`
}

// NewProfile aggregates a run's Result. Pass the run's *sim.Trace (or nil)
// to additionally estimate the critical path.
func NewProfile(res sim.Result, tr *sim.Trace) *Profile {
	p := &Profile{P: len(res.Ranks), Makespan: res.Makespan}
	if p.P == 0 {
		return p
	}
	for _, s := range res.Ranks {
		p.Idle += s.IdleTime
		p.TotalMsgs += s.MsgsSent
		p.TotalBytes += s.BytesSent
	}
	p.Idle /= float64(p.P)

	for _, l := range res.PhaseLabels() {
		pp := PhaseProfile{Label: l}
		maxBusy, sumBusy := 0.0, 0.0
		for _, s := range res.Ranks {
			ps := s.Phases[l]
			pp.Compute += ps.ComputeTime
			pp.Comm += ps.CommTime
			pp.Wait += ps.WaitTime
			pp.Msgs += ps.MsgsSent
			pp.Bytes += ps.BytesSent
			if t := ps.Total(); t > pp.MaxTotal {
				pp.MaxTotal = t
			}
			b := ps.Busy()
			sumBusy += b
			if b > maxBusy {
				maxBusy = b
			}
		}
		n := float64(p.P)
		pp.Compute /= n
		pp.Comm /= n
		pp.Wait /= n
		if sumBusy > 0 {
			pp.Imbalance = maxBusy / (sumBusy / n)
		}
		p.Phases = append(p.Phases, pp)
	}

	busy := make([]float64, p.P)
	sum := 0.0
	for i, s := range res.Ranks {
		busy[i] = s.ComputeTime + s.CommTime
		sum += busy[i]
	}
	sort.Float64s(busy)
	p.BusyP50 = percentile(busy, 0.50)
	p.BusyP90 = percentile(busy, 0.90)
	p.BusyMax = busy[len(busy)-1]
	if sum > 0 {
		p.LoadImbalance = p.BusyMax / (sum / float64(p.P))
	}
	if tr != nil {
		p.CriticalPath = CriticalPath(tr, p.P)
	}
	return p
}

// percentile returns the q-quantile of sorted (nearest-rank method).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Total returns the mean per-rank accounted time — phase times plus
// trailing idle. It equals the makespan up to floating-point summation
// error: every clock advance of every rank is mirrored in exactly one
// phase bucket, and idle covers the gap to the slowest rank.
func (p *Profile) Total() float64 {
	t := p.Idle
	for _, pp := range p.Phases {
		t += pp.Mean()
	}
	return t
}

// Phase returns the profile of the given label (zero value if absent).
func (p *Profile) Phase(label string) PhaseProfile {
	for _, pp := range p.Phases {
		if pp.Label == label {
			return pp
		}
	}
	return PhaseProfile{}
}

// Format renders the profile as an aligned table.
func (p *Profile) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile: %d ranks, makespan %s\n", p.P, fmtSec(p.Makespan))
	fmt.Fprintf(&sb, "%-14s  %10s  %10s  %10s  %10s  %7s  %9s  %12s\n",
		"phase", "compute", "comm", "wait", "max total", "imbal", "msgs", "bytes")
	for _, pp := range p.Phases {
		label := pp.Label
		if label == "" {
			label = "(unlabeled)"
		}
		fmt.Fprintf(&sb, "%-14s  %10s  %10s  %10s  %10s  %7.3f  %9d  %12d\n",
			label, fmtSec(pp.Compute), fmtSec(pp.Comm), fmtSec(pp.Wait), fmtSec(pp.MaxTotal),
			pp.Imbalance, pp.Msgs, pp.Bytes)
	}
	fmt.Fprintf(&sb, "%-14s  %10s\n", "(trailing idle)", fmtSec(p.Idle))
	fmt.Fprintf(&sb, "total (mean per rank) %s vs makespan %s (diff %.3g)\n",
		fmtSec(p.Total()), fmtSec(p.Makespan), p.Total()-p.Makespan)
	fmt.Fprintf(&sb, "busy per rank: p50 %s  p90 %s  max %s  load imbalance %.3f\n",
		fmtSec(p.BusyP50), fmtSec(p.BusyP90), fmtSec(p.BusyMax), p.LoadImbalance)
	if p.CriticalPath > 0 {
		fmt.Fprintf(&sb, "critical path %s (%.1f%% of makespan)\n",
			fmtSec(p.CriticalPath), 100*p.CriticalPath/p.Makespan)
	}
	fmt.Fprintf(&sb, "traffic: %d messages, %d bytes\n", p.TotalMsgs, p.TotalBytes)
	return sb.String()
}

// fmtSec renders a duration in engineering units.
func fmtSec(s float64) string {
	switch {
	case s == 0:
		return "0"
	case math.Abs(s) < 1e-3:
		return fmt.Sprintf("%.2fµs", s*1e6)
	case math.Abs(s) < 1:
		return fmt.Sprintf("%.3fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"os"

	"genmp/internal/obs/metrics"
	"genmp/internal/redist"
)

// RedistSchema is the current redistribution-plan dump schema version.
const RedistSchema = 1

// RedistFileKind is the envelope discriminator of a serialized redist.Plan.
const RedistFileKind = "redist"

// RedistFile is the on-disk envelope of a compiled redistribution plan: the
// full materialized schedule — per step, every rank's sends, receives,
// local copies and exchange descriptors with exact byte counts. Compilation
// is deterministic and the encoder walks fixed struct order, so
// regenerating the same configuration yields a byte-identical file (the CI
// perf gate diffs a committed fixture against a fresh dump).
type RedistFile struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"`
	// Source records the command line that produced the dump.
	Source string     `json:"source,omitempty"`
	Plan   RedistJSON `json:"plan"`
}

// RedistJSON mirrors redist.Plan field by field in a stable wire shape,
// plus the derived totals consumers audit against.
type RedistJSON struct {
	Kind      string           `json:"plan_kind"`
	P         int              `json:"p"`
	FromP     int              `json:"from_p"`
	ToP       int              `json:"to_p"`
	From      string           `json:"from"`
	To        string           `json:"to"`
	Eta       []int            `json:"eta"`
	NGrids    int              `json:"ngrids"`
	Depth     int              `json:"depth,omitempty"`
	TagSpace  string           `json:"tag_space"`
	TagBase   int              `json:"tag_base"`
	TagSize   int              `json:"tag_size"`
	MaxBytes  int              `json:"max_bytes,omitempty"`
	PeakBytes int              `json:"peak_bytes"`
	WireBytes int              `json:"wire_bytes"`
	WireMsgs  int              `json:"wire_messages"`
	Total     int              `json:"total_bytes"`
	Steps     []RedistStepJSON `json:"steps"`
}

// RedistStepJSON is one synchronized round of the schedule.
type RedistStepJSON struct {
	Op    string           `json:"op"`
	Dim   int              `json:"dim"`
	Dir   int              `json:"dir"`
	Round int              `json:"round"`
	Ranks []RedistRankJSON `json:"ranks"`
}

// RedistRankJSON is one rank's slice of a step.
type RedistRankJSON struct {
	Rank   int              `json:"rank"`
	Exch   *RedistExchJSON  `json:"exch,omitempty"`
	Sends  []RedistMoveJSON `json:"sends,omitempty"`
	Recvs  []RedistMoveJSON `json:"recvs,omitempty"`
	Locals []RedistMoveJSON `json:"locals,omitempty"`
}

// RedistExchJSON is a rank's neighbor-exchange descriptor.
type RedistExchJSON struct {
	Dst       int `json:"dst"`
	Src       int `json:"src"`
	Tag       int `json:"tag"`
	SendBytes int `json:"send_bytes"`
	RecvBytes int `json:"recv_bytes"`
}

// RedistMoveJSON is one contiguous slab transfer.
type RedistMoveJSON struct {
	From      int   `json:"from"`
	To        int   `json:"to"`
	Lo        []int `json:"lo"`
	Hi        []int `json:"hi"`
	Bytes     int   `json:"bytes"`
	FromCoord []int `json:"from_coord,omitempty"`
	ToCoord   []int `json:"to_coord,omitempty"`
}

// NewRedistJSON converts a compiled redistribution plan into its wire shape.
func NewRedistJSON(pl *redist.Plan) RedistJSON {
	out := RedistJSON{
		Kind: string(pl.Kind), P: pl.P, FromP: pl.FromP, ToP: pl.ToP,
		From: pl.From, To: pl.To, Eta: pl.Eta, NGrids: pl.NGrids, Depth: pl.Depth,
		TagSpace: pl.Tags.Name(), TagBase: pl.Tags.Base(), TagSize: pl.Tags.Size(),
		MaxBytes: pl.MaxBytes, PeakBytes: pl.PeakBytes,
		WireBytes: pl.WireBytes(), WireMsgs: pl.WireMessages(), Total: pl.TotalBytes(),
		Steps: make([]RedistStepJSON, len(pl.Steps)),
	}
	for si := range pl.Steps {
		st := &pl.Steps[si]
		sj := RedistStepJSON{Op: string(st.Op), Dim: st.Dim, Dir: st.Dir, Round: st.Round,
			Ranks: make([]RedistRankJSON, pl.P)}
		for q := 0; q < pl.P; q++ {
			rj := RedistRankJSON{Rank: q,
				Sends:  movesJSON(st.Sends[q]),
				Recvs:  movesJSON(st.Recvs[q]),
				Locals: movesJSON(st.Locals[q]),
			}
			if st.Exch != nil {
				e := st.Exch[q]
				rj.Exch = &RedistExchJSON{Dst: e.Dst, Src: e.Src, Tag: e.Tag,
					SendBytes: e.SendBytes, RecvBytes: e.RecvBytes}
			}
			sj.Ranks[q] = rj
		}
		out.Steps[si] = sj
	}
	return out
}

func movesJSON(moves []redist.Move) []RedistMoveJSON {
	if len(moves) == 0 {
		return nil
	}
	out := make([]RedistMoveJSON, len(moves))
	for i, m := range moves {
		out[i] = RedistMoveJSON{From: m.From, To: m.To, Lo: m.Rect.Lo, Hi: m.Rect.Hi,
			Bytes: m.Bytes, FromCoord: m.FromCoord, ToCoord: m.ToCoord}
	}
	return out
}

// WriteRedistJSON serializes a compiled redistribution plan to path as
// indented JSON.
func WriteRedistJSON(path, source string, pl *redist.Plan) error {
	if pl == nil {
		return fmt.Errorf("obs: write redist: nil plan")
	}
	rf := RedistFile{Schema: RedistSchema, Kind: RedistFileKind, Source: source, Plan: NewRedistJSON(pl)}
	data, err := json.MarshalIndent(rf, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal redist file: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadRedistJSON validates the envelope of a redistribution dump on the way
// back in.
func ReadRedistJSON(path string) (RedistFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return RedistFile{}, fmt.Errorf("obs: read redist file: %w", err)
	}
	var rf RedistFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return RedistFile{}, fmt.Errorf("obs: parse %s: %w", path, err)
	}
	if rf.Kind != RedistFileKind {
		return RedistFile{}, fmt.Errorf("obs: %s: kind %q is not a redist file", path, rf.Kind)
	}
	if rf.Schema != RedistSchema {
		return RedistFile{}, fmt.Errorf("obs: %s: unsupported redist schema %d (this build reads schema %d)", path, rf.Schema, RedistSchema)
	}
	return rf, nil
}

// RedistAuditRow is one line of the plan-vs-counters traffic audit: what a
// compiled plan schedules against what the live metrics registry counted
// while executing it. A non-zero delta means the executor and the plan
// disagree about the very schedule the executor claims to run.
type RedistAuditRow struct {
	Metric   string
	Expected int // plan-scheduled quantity × full machine executions
	Observed int // registry counter value
}

// Delta returns Observed − Expected.
func (r RedistAuditRow) Delta() int { return r.Observed - r.Expected }

// AuditRedistBytes compares a plan's scheduled traffic with a metrics
// snapshot after execs full machine executions (every rank calling
// redist.Execute once per execution): wire bytes, local copy bytes and
// aggregated message counts, summed over ranks. The registry must have held
// only this plan's executions (use a fresh Registry per audit).
func AuditRedistBytes(pl *redist.Plan, snap metrics.Snapshot, execs int) []RedistAuditRow {
	wire, _ := snap.Value("redist_bytes_total", metrics.L("path", "wire"))
	local, _ := snap.Value("redist_bytes_total", metrics.L("path", "local"))
	msgs, _ := snap.Value("redist_messages_total")
	return []RedistAuditRow{
		{Metric: "wire bytes", Expected: execs * pl.WireBytes(), Observed: int(wire)},
		{Metric: "local bytes", Expected: execs * (pl.TotalBytes() - pl.WireBytes()), Observed: int(local)},
		{Metric: "messages", Expected: execs * pl.WireMessages(), Observed: int(msgs)},
	}
}

// FormatRedistAudit renders the audit as an aligned table.
func FormatRedistAudit(rows []RedistAuditRow) string {
	out := fmt.Sprintf("%-12s  %14s  %14s  %10s\n", "metric", "plan", "observed", "delta")
	for _, r := range rows {
		out += fmt.Sprintf("%-12s  %14d  %14d  %10d\n", r.Metric, r.Expected, r.Observed, r.Delta())
	}
	return out
}

// Package metrics is a live, in-process metrics registry: typed counters,
// gauges and fixed-bucket histograms, named and labeled, with atomic
// updates so instrument writes are safe from any goroutine and allocate
// nothing on the hot path. It is the online counterpart of the post-hoc
// observability stack in internal/obs — profiles and BENCH files are
// written after a run ends, while a Registry can be scraped (Prometheus
// text or JSON, see expo.go and http.go) while a long run or server is
// still in flight.
//
// The split between registration and update matters for performance:
// Registry.Counter/Gauge/Histogram resolve (name, labels) to an instrument
// handle under a lock, once, at wiring time; the returned handle's
// Inc/Add/Set/Observe methods are single atomic operations with no map
// lookups, no locks and no allocations, cheap enough for the simulator's
// per-message paths. Snapshot captures a consistent point-in-time view
// sorted deterministically by (name, labels), and Snapshot.Sub supports
// windowed deltas (scrape-to-scrape rates).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies an instrument family.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String names the kind as Prometheus TYPE lines spell it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Label is one key=value dimension of an instrument.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer count. The zero value is
// usable but unregistered; obtain registered counters from a Registry.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be ≥ 0 (counters are monotonic); negative deltas
// are ignored rather than corrupting the series.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float64 total (e.g. stall
// seconds). Add uses a compare-and-swap loop over the bit pattern.
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds v (negative deltas are ignored).
func (c *FloatCounter) Add(v float64) {
	if !(v > 0) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 value that can move in both directions.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (may be negative) with a compare-and-swap loop.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observation i lands in the
// first bucket whose upper bound is ≥ v, or the implicit +Inf bucket.
// Bounds are fixed at registration so Observe performs no allocation.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Int64
	sum     FloatCounter
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Branchless-enough linear scan: bucket lists are short (≤ ~20) and the
	// common case hits an early bound; a binary search wins only for large
	// bound counts.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefaultBytesBuckets is a power-of-4 byte-size ladder suitable for
// message sizes.
var DefaultBytesBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// family is one named instrument family: a fixed kind, help text, bucket
// bounds (histograms) and one instrument per distinct label set.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64
	insts  map[string]*instrument
}

// instrument pairs a label set with its typed value holder.
type instrument struct {
	labels []Label
	c      *Counter
	fc     *FloatCounter
	g      *Gauge
	h      *Histogram
}

// Registry holds instrument families. The zero value is not usable; call
// New. All methods are safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// New returns an empty registry.
func New() *Registry { return &Registry{fams: make(map[string]*family)} }

// std is the process-wide default registry the long-running commands serve.
var std = New()

// Default returns the process-wide default registry.
func Default() *Registry { return std }

// validName reports whether name is a legal Prometheus metric/label name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// labelKey serializes a sorted label set into the family's instrument map
// key. Registration-time only; hot-path updates never re-serialize.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// instrumentFor resolves (name, labels) to the family's instrument,
// creating both on first use. It panics on programmer errors: invalid
// names, or re-registering a name with a different kind — silent
// divergence there would corrupt every downstream scrape.
func (r *Registry) instrumentFor(name, help string, kind Kind, bounds []float64, labels []Label) *instrument {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Key < ls[b].Key })
	for _, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("metrics: %s: invalid label key %q", name, l.Key))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.fams[name]
	if fam == nil {
		var bb []float64
		if kind == KindHistogram {
			if len(bounds) == 0 {
				panic(fmt.Sprintf("metrics: histogram %s needs at least one bucket bound", name))
			}
			bb = append([]float64(nil), bounds...)
			if !sort.Float64sAreSorted(bb) {
				panic(fmt.Sprintf("metrics: histogram %s bounds %v are not sorted", name, bounds))
			}
		}
		fam = &family{name: name, help: help, kind: kind, bounds: bb, insts: make(map[string]*instrument)}
		r.fams[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("metrics: %s already registered as a %s, requested as a %s", name, fam.kind, kind))
	}
	if fam.help == "" {
		fam.help = help
	}
	key := labelKey(ls)
	inst := fam.insts[key]
	if inst == nil {
		inst = &instrument{labels: ls}
		switch kind {
		case KindCounter:
			inst.c = new(Counter)
			inst.fc = new(FloatCounter)
		case KindGauge:
			inst.g = new(Gauge)
		case KindHistogram:
			h := &Histogram{bounds: fam.bounds}
			h.buckets = make([]atomic.Int64, len(fam.bounds)+1)
			inst.h = h
		}
		fam.insts[key] = inst
	}
	return inst
}

// Counter returns the registered counter for (name, labels), creating it on
// first use. Help is recorded on first registration of the family.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.instrumentFor(name, help, KindCounter, nil, labels).c
}

// FloatCounter returns the float-valued counter for (name, labels). A
// float counter shares the counter kind (monotonic totals) but accumulates
// fractional quantities such as seconds. A family must be all-int or
// all-float: the exposed value is the sum of both parts, so mixing within
// one instrument would still read correctly but is not intended.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	return r.instrumentFor(name, help, KindCounter, nil, labels).fc
}

// Gauge returns the registered gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.instrumentFor(name, help, KindGauge, nil, labels).g
}

// Histogram returns the registered fixed-bucket histogram for
// (name, labels). Bounds are fixed by the family's first registration;
// later calls may pass nil bounds to mean "the family's".
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.instrumentFor(name, help, KindHistogram, bounds, labels).h
}

// Bucket is one cumulative histogram bucket: the count of observations ≤ Le.
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Point is one instrument's state in a Snapshot.
type Point struct {
	Name    string   `json:"name"`
	Kind    Kind     `json:"-"`
	KindS   string   `json:"kind"`
	Help    string   `json:"help,omitempty"`
	Labels  []Label  `json:"labels,omitempty"`
	Value   float64  `json:"value"`
	Count   int64    `json:"count,omitempty"`   // histogram only
	Sum     float64  `json:"sum,omitempty"`     // histogram only
	Buckets []Bucket `json:"buckets,omitempty"` // histogram only, cumulative
}

// key identifies a point inside a snapshot.
func (p Point) key() string { return p.Name + "\x00" + labelKey(p.Labels) }

// Snapshot is a consistent point-in-time view of a registry, sorted by
// (name, labels) so repeated scrapes of identical state render identically.
type Snapshot struct {
	Points []Point `json:"metrics"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, fam := range r.fams {
		for _, inst := range fam.insts {
			pt := Point{Name: fam.name, Kind: fam.kind, KindS: fam.kind.String(), Help: fam.help, Labels: inst.labels}
			switch fam.kind {
			case KindCounter:
				pt.Value = float64(inst.c.Value()) + inst.fc.Value()
			case KindGauge:
				pt.Value = inst.g.Value()
			case KindHistogram:
				h := inst.h
				pt.Count = h.Count()
				pt.Sum = h.Sum()
				pt.Value = float64(pt.Count)
				cum := int64(0)
				for i := range h.buckets {
					cum += h.buckets[i].Load()
					le := math.Inf(1)
					if i < len(h.bounds) {
						le = h.bounds[i]
					}
					pt.Buckets = append(pt.Buckets, Bucket{Le: le, Count: cum})
				}
			}
			s.Points = append(s.Points, pt)
		}
	}
	sort.Slice(s.Points, func(a, b int) bool { return s.Points[a].key() < s.Points[b].key() })
	return s
}

// Point returns the snapshot entry for (name, labels).
func (s Snapshot) Point(name string, labels ...Label) (Point, bool) {
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Key < ls[b].Key })
	want := Point{Name: name, Labels: ls}.key()
	for _, p := range s.Points {
		if p.key() == want {
			return p, true
		}
	}
	return Point{}, false
}

// Value returns the scalar value for (name, labels): the running total for
// counters, the current level for gauges, the observation count for
// histograms. The second result is false when the point does not exist.
func (s Snapshot) Value(name string, labels ...Label) (float64, bool) {
	p, ok := s.Point(name, labels...)
	return p.Value, ok
}

// Sub returns the window s − prev: counters and histogram counts subtract
// the previous snapshot's values (points absent from prev pass through
// unchanged), gauges keep their current level. Use it to turn two scrapes
// of cumulative totals into a per-window rate view.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	old := make(map[string]Point, len(prev.Points))
	for _, p := range prev.Points {
		old[p.key()] = p
	}
	out := Snapshot{Points: make([]Point, len(s.Points))}
	for i, p := range s.Points {
		q, ok := old[p.key()]
		if ok && p.Kind != KindGauge {
			p.Value -= q.Value
			p.Count -= q.Count
			p.Sum -= q.Sum
			if len(p.Buckets) == len(q.Buckets) {
				bs := make([]Bucket, len(p.Buckets))
				copy(bs, p.Buckets)
				for j := range bs {
					bs[j].Count -= q.Buckets[j].Count
				}
				p.Buckets = bs
			}
		}
		out.Points[i] = p
	}
	return out
}

package metrics

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := New()
	c := r.Counter("test_ops_total", "ops", L("kind", "a"))
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	fc := r.FloatCounter("test_seconds_total", "time")
	fc.Add(0.25)
	fc.Add(0.5)
	fc.Add(-1) // ignored
	if got := fc.Value(); got != 0.75 {
		t.Errorf("float counter = %g, want 0.75", got)
	}
	g := r.Gauge("test_level", "level")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
	h := r.Histogram("test_bytes", "sizes", []float64{10, 100})
	for _, v := range []float64{1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 556 {
		t.Errorf("histogram count %d sum %g, want 4 / 556", h.Count(), h.Sum())
	}
}

func TestRegistryReusesInstruments(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "", L("k", "v"))
	b := r.Counter("x_total", "", L("k", "v"))
	if a != b {
		t.Error("same (name, labels) resolved to distinct counters")
	}
	other := r.Counter("x_total", "", L("k", "w"))
	if a == other {
		t.Error("distinct labels resolved to the same counter")
	}
	// Label order must not matter.
	p := r.Gauge("y", "", L("a", "1"), L("b", "2"))
	q := r.Gauge("y", "", L("b", "2"), L("a", "1"))
	if p != q {
		t.Error("label order changed instrument identity")
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	r := New()
	r.Counter("z_total", "")
	for name, f := range map[string]func(){
		"kind clash":     func() { r.Gauge("z_total", "") },
		"invalid name":   func() { r.Counter("bad name", "") },
		"invalid label":  func() { r.Counter("ok_total", "", L("bad key", "v")) },
		"no hist bounds": func() { r.Histogram("h", "", nil) },
		"unsorted":       func() { r.Histogram("h2", "", []float64{5, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSnapshotSortedAndValue(t *testing.T) {
	r := New()
	r.Counter("b_total", "").Add(2)
	r.Counter("a_total", "", L("x", "2")).Add(3)
	r.Counter("a_total", "", L("x", "1")).Add(1)
	s := r.Snapshot()
	var names []string
	for _, p := range s.Points {
		names = append(names, p.Name+labelKey(p.Labels))
	}
	want := []string{"a_totalx=1", "a_totalx=2", "b_total"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v", names, want)
		}
	}
	if v, ok := s.Value("a_total", L("x", "2")); !ok || v != 3 {
		t.Errorf("Value(a_total,x=2) = %g,%v", v, ok)
	}
	if _, ok := s.Value("missing"); ok {
		t.Error("missing metric reported present")
	}
}

func TestSnapshotSubWindows(t *testing.T) {
	r := New()
	c := r.Counter("w_total", "")
	g := r.Gauge("w_level", "")
	h := r.Histogram("w_bytes", "", []float64{10})
	c.Add(5)
	g.Set(2)
	h.Observe(3)
	before := r.Snapshot()
	c.Add(7)
	g.Set(9)
	h.Observe(30)
	delta := r.Snapshot().Sub(before)
	if v, _ := delta.Value("w_total"); v != 7 {
		t.Errorf("counter delta %g, want 7", v)
	}
	if v, _ := delta.Value("w_level"); v != 9 {
		t.Errorf("gauge in delta %g, want current level 9", v)
	}
	p, _ := delta.Point("w_bytes")
	if p.Count != 1 || p.Sum != 30 {
		t.Errorf("histogram delta count %d sum %g, want 1 / 30", p.Count, p.Sum)
	}
	if p.Buckets[0].Count != 0 || p.Buckets[1].Count != 1 {
		t.Errorf("bucket deltas %+v", p.Buckets)
	}
}

// Hot-path updates must not allocate: the simulator calls these per
// message. The test is exact, not differential — zero is the contract.
func TestHotPathUpdatesDoNotAllocate(t *testing.T) {
	r := New()
	c := r.Counter("alloc_total", "", L("k", "v"))
	fc := r.FloatCounter("alloc_seconds_total", "")
	g := r.Gauge("alloc_level", "")
	h := r.Histogram("alloc_bytes", "", DefaultBytesBuckets)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		fc.Add(0.5)
		g.Set(1)
		g.Add(2)
		h.Observe(300)
	}); n != 0 {
		t.Errorf("hot-path updates allocate %v per op, want 0", n)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("race_total", "")
	h := r.Histogram("race_bytes", "", []float64{8})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 16))
				r.Counter("race_total", "") // concurrent resolve
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counter %d histogram %d, want 8000 each", c.Value(), h.Count())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("p_msgs_total", "messages sent", L("link", `0->1`)).Add(4)
	r.Gauge("p_temp", "").Set(1.5)
	h := r.Histogram("p_bytes", "message sizes", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP p_msgs_total messages sent",
		"# TYPE p_msgs_total counter",
		`p_msgs_total{link="0->1"} 4`,
		"# TYPE p_temp gauge",
		"p_temp 1.5",
		"# TYPE p_bytes histogram",
		`p_bytes_bucket{le="10"} 1`,
		`p_bytes_bucket{le="100"} 2`,
		`p_bytes_bucket{le="+Inf"} 2`,
		"p_bytes_sum 55",
		"p_bytes_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONSchema(t *testing.T) {
	r := New()
	r.Counter("j_total", "help text").Add(2)
	// A histogram's final cumulative bucket has le = +Inf, which plain
	// encoding/json rejects; the exposition must spell it "+Inf" instead of
	// failing (which would surface as an empty /metrics.json body).
	r.Histogram("j_bytes", "h", []float64{64}).Observe(100)
	var b strings.Builder
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Schema  int `json:"schema"`
		Metrics []struct {
			Name    string  `json:"name"`
			Kind    string  `json:"kind"`
			Value   float64 `json:"value"`
			Buckets []struct {
				Le    string `json:"le"`
				Count int64  `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != ExpoSchema || len(got.Metrics) != 2 ||
		got.Metrics[1].Name != "j_total" || got.Metrics[1].Kind != "counter" || got.Metrics[1].Value != 2 {
		t.Errorf("json exposition: %+v", got)
	}
	h := got.Metrics[0]
	if h.Name != "j_bytes" || len(h.Buckets) != 2 ||
		h.Buckets[0].Le != "64" || h.Buckets[0].Count != 0 ||
		h.Buckets[1].Le != "+Inf" || h.Buckets[1].Count != 1 {
		t.Errorf("histogram buckets: %+v", h)
	}
}

func TestFormatValueSpecials(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
	} {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%g) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := New()
	r.Counter("srv_total", "").Add(3)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "srv_total 3") {
		t.Errorf("/metrics: %q", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"srv_total"`) {
		t.Errorf("/metrics.json: %q", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Errorf("/debug/pprof/: missing profile index")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench_bytes", "", DefaultBytesBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 0xffff))
	}
}

package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ExpoSchema versions the JSON exposition envelope.
const ExpoSchema = 1

// expoFile is the JSON exposition envelope: a schema version over a
// Snapshot, mirroring the BENCH_*/profile_*.json discipline so tooling can
// reject files it does not understand.
type expoFile struct {
	Schema int     `json:"schema"`
	Points []Point `json:"metrics"`
}

// MarshalJSON renders Le in its Prometheus spelling ("64", "+Inf"):
// encoding/json rejects non-finite float64, and the last cumulative bucket
// always has le = +Inf.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatValue(b.Le), b.Count)), nil
}

// WriteJSON writes the snapshot as indented, deterministic JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(expoFile{Schema: ExpoSchema, Points: s.Points}, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: marshal snapshot: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// formatValue renders a sample value the way Prometheus text format spells
// it: shortest round-trip float, with +Inf/-Inf/NaN named.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp escapes a HELP line.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// labelString renders {k="v",...}, with extra appended last (used for the
// histogram "le" label). Empty label sets render as the bare name.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, escapeLabel(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family, one sample line
// per point, histogram buckets cumulative with the +Inf bucket last.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, p := range s.Points {
		if p.Name != lastFamily {
			if p.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Name, escapeHelp(p.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind); err != nil {
				return err
			}
			lastFamily = p.Name
		}
		if p.Kind == KindHistogram {
			for _, b := range p.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					p.Name, labelString(p.Labels, L("le", formatValue(b.Le))), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, labelString(p.Labels), formatValue(p.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, labelString(p.Labels), p.Count); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", p.Name, labelString(p.Labels), formatValue(p.Value)); err != nil {
			return err
		}
	}
	return nil
}

package metrics

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry and the Go runtime
// profiles:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  the same snapshot as schema-versioned JSON
//	/debug/pprof/  net/http/pprof index (profile, heap, goroutine, trace, ...)
//
// It builds a private mux rather than touching http.DefaultServeMux, so
// embedding it cannot leak pprof onto an unrelated server.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a started metrics endpoint.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	srv  *http.Server
}

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr (e.g. "localhost:9090" or ":0") and serves Handler(reg)
// in a background goroutine. The caller owns the returned Server; a
// long-running command typically lets it live until exit.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv}, nil
}

package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"genmp/internal/obs/metrics"
	"genmp/internal/redist"
	"genmp/internal/sim"
)

func compileTestRedist(t *testing.T) *redist.Plan {
	t.Helper()
	from, err := redist.NewBlockLayout(4, []int{12, 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	to, err := redist.NewBlockLayout(4, []int{12, 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := redist.Compile(redist.Spec{From: from, To: to})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestWriteRedistJSONRoundTrip(t *testing.T) {
	pl := compileTestRedist(t)
	path := filepath.Join(t.TempDir(), "redist.json")
	if err := WriteRedistJSON(path, "test source", pl); err != nil {
		t.Fatal(err)
	}
	rf, err := ReadRedistJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Source != "test source" || rf.Plan.P != 4 || rf.Plan.Kind != string(redist.KindMove) {
		t.Errorf("round trip lost header: %+v", rf.Plan)
	}
	if rf.Plan.WireBytes != pl.WireBytes() || rf.Plan.WireMsgs != pl.WireMessages() || rf.Plan.Total != pl.TotalBytes() {
		t.Errorf("derived totals drifted: %+v", rf.Plan)
	}
	if len(rf.Plan.Steps) != len(pl.Steps) || len(rf.Plan.Steps[0].Ranks) != 4 {
		t.Fatalf("schedule shape lost: %d steps, %d ranks", len(rf.Plan.Steps), len(rf.Plan.Steps[0].Ranks))
	}
	// Totals across the dumped moves must re-derive the envelope's numbers —
	// the dump is the schedule, not a summary.
	wire := 0
	for _, st := range rf.Plan.Steps {
		for _, rk := range st.Ranks {
			for _, m := range rk.Sends {
				wire += m.Bytes
			}
		}
	}
	if wire != rf.Plan.WireBytes {
		t.Errorf("dumped sends sum to %d bytes, envelope says %d", wire, rf.Plan.WireBytes)
	}
}

// TestWriteRedistJSONDeterministic: recompiling and re-dumping the same
// configuration yields a byte-identical file — the property the CI perf
// gate's zero-tolerance diff rests on.
func TestWriteRedistJSONDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := WriteRedistJSON(a, "src", compileTestRedist(t)); err != nil {
		t.Fatal(err)
	}
	if err := WriteRedistJSON(b, "src", compileTestRedist(t)); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if !bytes.Equal(da, db) {
		t.Fatal("two dumps of the same configuration differ")
	}
}

func TestReadRedistJSONRejects(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte(`{"schema":1,"kind":"plan","plan":{}}`), 0o644)
	if _, err := ReadRedistJSON(path); err == nil || !strings.Contains(err.Error(), "not a redist file") {
		t.Fatalf("wrong-kind file accepted: %v", err)
	}
	os.WriteFile(path, []byte(`{"schema":99,"kind":"redist","plan":{}}`), 0o644)
	if _, err := ReadRedistJSON(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong-schema file accepted: %v", err)
	}
}

// TestAuditRedistBytes: executing a plan on the machine lands exactly the
// scheduled bytes and messages in the metrics registry — zero delta rows.
func TestAuditRedistBytes(t *testing.T) {
	reg := metrics.New()
	redist.EnableMetrics(reg)
	defer redist.EnableMetrics(nil)

	pl := compileTestRedist(t)
	mach := sim.NewMachine(4, sim.Network{Latency: 10e-6, Bandwidth: 100e6}, sim.CPU{FlopsPerSec: 250e6})
	const execs = 3
	if _, err := mach.Run(func(r *sim.Rank) {
		for i := 0; i < execs; i++ {
			redist.Execute(r, pl, redist.ExecOpts{})
		}
	}); err != nil {
		t.Fatal(err)
	}

	rows := AuditRedistBytes(pl, reg.Snapshot(), execs)
	if len(rows) != 3 {
		t.Fatalf("audit produced %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Expected == 0 {
			t.Errorf("%s: expected side is zero; bad fixture", r.Metric)
		}
		if r.Delta() != 0 {
			t.Errorf("%s: plan %d vs observed %d (delta %d)", r.Metric, r.Expected, r.Observed, r.Delta())
		}
	}
	table := FormatRedistAudit(rows)
	if !strings.Contains(table, "wire bytes") || !strings.Contains(table, "messages") {
		t.Errorf("audit table missing rows:\n%s", table)
	}
}

package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"genmp/internal/core"
	"genmp/internal/plan"
	"genmp/internal/sweep"
)

func compileTestPlan(t *testing.T) *plan.SweepPlan {
	t.Helper()
	m, err := core.NewGeneralized(4, []int{2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Compile(plan.Spec{M: m, Eta: []int{8, 8, 8}, Solver: sweep.Tridiag{}})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestWritePlanJSONRoundTrip(t *testing.T) {
	pl := compileTestPlan(t)
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := WritePlanJSON(path, "test source", pl); err != nil {
		t.Fatal(err)
	}
	pf, err := ReadPlanJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Source != "test source" || pf.Plan.P != 4 || pf.Plan.Solver != pl.Solver {
		t.Errorf("round trip lost header: %+v", pf.Plan)
	}
	if len(pf.Plan.Ranks) != 4 {
		t.Fatalf("ranks = %d, want 4", len(pf.Plan.Ranks))
	}
	if got := len(pf.Plan.Ranks[0].Passes); got != 6 {
		t.Errorf("rank 0 has %d passes, want 6 (3 dims × 2 directions)", got)
	}
	// The dump must carry the real tag values the executor uses.
	ph := pf.Plan.Ranks[0].Passes[0].Phases
	sent := false
	for _, p := range ph {
		if p.SendTo >= 0 {
			sent = true
			if !pl.Tags.Contains(p.SendTag) {
				t.Errorf("dumped send tag %d outside reservation", p.SendTag)
			}
		}
	}
	if !sent {
		t.Error("rank 0 dim 0 forward pass never sends; bad fixture")
	}

	// Writing the same plan again must be byte-identical (the CI fixture
	// contract).
	path2 := filepath.Join(t.TempDir(), "plan2.json")
	if err := WritePlanJSON(path2, "test source", pl); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(path)
	b, _ := os.ReadFile(path2)
	if string(a) != string(b) {
		t.Error("repeated dumps of one plan differ")
	}

	if _, err := ReadPlanJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("reading a missing plan file should fail")
	}
	if err := WritePlanJSON(filepath.Join(t.TempDir(), "nil.json"), "", nil); err == nil {
		t.Error("writing a nil plan should fail")
	}
}

// TestPlanFromJSONFingerprint: dump → read → reconstruct must be lossless —
// the round-tripped plan's Fingerprint is byte-equal to the original's,
// with and without the overlap annotation. This is the contract plan
// shipping rests on: a worker loading the dump executes the same schedule
// the compiling node ran.
func TestPlanFromJSONFingerprint(t *testing.T) {
	m, err := core.NewGeneralized(4, []int{2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []plan.Overlap{{}, {Enabled: true}, {Enabled: true, Frac: 0.3}} {
		pl, err := plan.Compile(plan.Spec{M: m, Eta: []int{8, 8, 8}, Solver: sweep.Tridiag{},
			Halos: []int{2}, Batch: 8, Overlap: o})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "plan.json")
		if err := WritePlanJSON(path, "fingerprint test", pl); err != nil {
			t.Fatal(err)
		}
		pf, err := ReadPlanJSON(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PlanFromJSON(pf.Plan)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint() != pl.Fingerprint() {
			t.Errorf("overlap %+v: round-tripped fingerprint differs from the original", o)
		}
		if got.Halos == nil || got.Halos[0] != 2 || got.Batch != 8 {
			t.Errorf("overlap %+v: layout metadata lost: halos %v batch %d", o, got.Halos, got.Batch)
		}
		// LoadPlan is the one-call worker path.
		got2, err := LoadPlan(path)
		if err != nil {
			t.Fatal(err)
		}
		if got2.Fingerprint() != pl.Fingerprint() {
			t.Errorf("overlap %+v: LoadPlan fingerprint differs", o)
		}
	}

	// A dump naming an unreserved tag space must fail to reconstruct.
	pl := compileTestPlan(t)
	pj := NewPlanJSON(pl)
	pj.TagSpace = "no/such/space"
	if _, err := PlanFromJSON(pj); err == nil {
		t.Error("unknown tag space should fail reconstruction")
	}
	// A dump whose recorded range disagrees with the live reservation too.
	pj = NewPlanJSON(pl)
	pj.TagBase++
	if _, err := PlanFromJSON(pj); err == nil {
		t.Error("mismatched tag base should fail reconstruction")
	}
}

func TestAuditPlanBytes(t *testing.T) {
	pl := compileTestPlan(t)
	steps := 2
	prof := &Profile{Phases: []PhaseProfile{
		{Label: "solve0", Bytes: steps * pl.DimSendBytes(0)},
		{Label: "solve1", Bytes: steps*pl.DimSendBytes(1) + 16},
		// solve2 absent from the profile: skipped, not zero-filled.
	}}
	rows := AuditPlanBytes(pl, prof, steps, func(dim int) string {
		return "solve" + string(rune('0'+dim))
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (unprofiled dim skipped)", len(rows))
	}
	if rows[0].Delta() != 0 {
		t.Errorf("solve0 delta = %d, want 0", rows[0].Delta())
	}
	if rows[1].Delta() != 16 {
		t.Errorf("solve1 delta = %d, want the injected 16", rows[1].Delta())
	}
	out := FormatPlanAudit(rows)
	for _, want := range []string{"plan bytes", "solve0", "solve1", "16"} {
		if !strings.Contains(out, want) {
			t.Errorf("audit table missing %q:\n%s", want, out)
		}
	}
}

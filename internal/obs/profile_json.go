package obs

import (
	"encoding/json"
	"fmt"
	"os"
)

// ProfileSchema is the current profile_*.json schema version.
const ProfileSchema = 1

// ProfileKind is the envelope discriminator that lets tools (cmd/benchdiff)
// tell a serialized Profile from a BenchFile without out-of-band hints.
const ProfileKind = "profile"

// ProfileFile is the on-disk envelope of a serialized Profile, the unit
// obs/profdiff compares. Like BenchFile it is deterministic JSON: the
// virtual machine is bit-reproducible and Profile holds only aggregates
// computed in a fixed order, so regenerating the same configuration yields
// a byte-identical file.
type ProfileFile struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"`
	// Source records the command line and grid parameters that produced
	// the profile, so a diff report can say how to reproduce either side.
	Source  string   `json:"source,omitempty"`
	Profile *Profile `json:"profile"`
}

// WriteProfileJSON serializes p to path as indented JSON.
func WriteProfileJSON(path, source string, p *Profile) error {
	if p == nil {
		return fmt.Errorf("obs: write profile: nil profile")
	}
	pf := ProfileFile{Schema: ProfileSchema, Kind: ProfileKind, Source: source, Profile: p}
	data, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal profile file: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadProfileJSON is the strict counterpart of WriteProfileJSON: it
// validates the envelope (schema version, kind, non-nil profile) so the
// round trip Profile → disk → Profile is lossless or loudly fails.
func ReadProfileJSON(path string) (ProfileFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ProfileFile{}, fmt.Errorf("obs: read profile file: %w", err)
	}
	var pf ProfileFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return ProfileFile{}, fmt.Errorf("obs: parse %s: %w", path, err)
	}
	if pf.Kind != ProfileKind {
		return ProfileFile{}, fmt.Errorf("obs: %s: kind %q is not a profile file", path, pf.Kind)
	}
	if pf.Schema != ProfileSchema {
		return ProfileFile{}, fmt.Errorf("obs: %s: unsupported profile schema %d (this build reads schema %d)", path, pf.Schema, ProfileSchema)
	}
	if pf.Profile == nil {
		return ProfileFile{}, fmt.Errorf("obs: %s: missing profile body", path)
	}
	return pf, nil
}

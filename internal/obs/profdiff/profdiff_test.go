package profdiff

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"genmp/internal/obs"
	"genmp/internal/obs/regress"
	"genmp/internal/sim"
)

// runProfile builds a profile of a two-rank run whose "slow" phase computes
// extra seconds on rank 1.
func runProfile(t *testing.T, extra float64) *obs.Profile {
	t.Helper()
	m := sim.NewMachine(2,
		sim.Network{Latency: 10e-6, Bandwidth: 100e6, SendOverhead: 2e-6, RecvOverhead: 2e-6},
		sim.CPU{FlopsPerSec: 100e6})
	m.Trace = &sim.Trace{}
	res, err := m.Run(func(r *sim.Rank) {
		r.BeginPhase("setup")
		r.Compute(1e-3)
		r.BeginPhase("slow")
		if r.ID == 1 {
			r.Compute(2e-3 + extra)
		} else {
			r.Compute(2e-3)
		}
		r.BeginPhase("sync")
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	return obs.NewProfile(res, m.Trace)
}

func TestCompareLocalizesRegression(t *testing.T) {
	old := runProfile(t, 0)
	slow := runProfile(t, 5e-3)
	d := Compare(old, slow, regress.Tolerance{})
	if !d.HasRegression() {
		t.Fatal("injected phase slowdown not flagged")
	}
	if d.DMakespan <= 0 {
		t.Fatalf("makespan delta %g", d.DMakespan)
	}
	if got := d.Culprit(); got != "slow" {
		t.Errorf("culprit %q, want slow", got)
	}
	verdicts := map[string]regress.Verdict{}
	for _, pd := range d.Phases {
		verdicts[pd.Label] = pd.Verdict
	}
	if verdicts["slow"] != regress.Regressed {
		t.Errorf("slow phase verdict %v", verdicts["slow"])
	}
	if verdicts["setup"] != regress.Unchanged {
		t.Errorf("setup phase verdict %v", verdicts["setup"])
	}
	// The extra compute lands on one rank only, so imbalance must drift up.
	for _, pd := range d.Phases {
		if pd.Label == "slow" && pd.DImbalance <= 0 {
			t.Errorf("slow phase imbalance delta %g, want > 0", pd.DImbalance)
		}
	}
	// All compute, no new waits: the critical path grows with the makespan.
	if math.Abs(d.DCriticalPath) < 1e-9 {
		t.Errorf("critical-path delta %g, want the injected compute to appear", d.DCriticalPath)
	}
}

func TestCompareIdenticalUnchanged(t *testing.T) {
	a, b := runProfile(t, 0), runProfile(t, 0)
	d := Compare(a, b, regress.Tolerance{})
	if d.HasRegression() || d.Verdict != regress.Unchanged {
		t.Fatalf("identical profiles: verdict %v", d.Verdict)
	}
	if d.Culprit() != "" {
		t.Errorf("culprit %q on identical profiles", d.Culprit())
	}
	// An improvement is not a regression.
	imp := Compare(runProfile(t, 5e-3), a, regress.Tolerance{})
	if imp.Verdict != regress.Improved || imp.HasRegression() {
		t.Errorf("improvement verdict %v", imp.Verdict)
	}
	// Tolerance absorbs the drift.
	tol := Compare(a, runProfile(t, 5e-3), regress.Tolerance{Rel: 5})
	if tol.Verdict != regress.Unchanged {
		t.Errorf("tolerated drift verdict %v", tol.Verdict)
	}
}

func TestAddedRemovedPhases(t *testing.T) {
	a, b := runProfile(t, 0), runProfile(t, 0)
	b2 := *b
	b2.Phases = append([]obs.PhaseProfile{}, b.Phases...)
	// Drop "setup" and add "extra" on the new side.
	var kept []obs.PhaseProfile
	for _, pp := range b2.Phases {
		if pp.Label != "setup" {
			kept = append(kept, pp)
		}
	}
	kept = append(kept, obs.PhaseProfile{Label: "extra", Compute: 1e-3, MaxTotal: 1e-3, Imbalance: 1})
	b2.Phases = kept
	d := Compare(a, &b2, regress.Tolerance{})
	verdicts := map[string]regress.Verdict{}
	for _, pd := range d.Phases {
		verdicts[pd.Label] = pd.Verdict
	}
	if verdicts["setup"] != regress.Removed || verdicts["extra"] != regress.Added {
		t.Errorf("phase verdicts: %v", verdicts)
	}
}

func TestRenderings(t *testing.T) {
	d := Compare(runProfile(t, 0), runProfile(t, 5e-3), regress.Tolerance{})
	txt := d.Text()
	for _, want := range []string{"profdiff", "regressed", "slow", "largest phase delta: slow"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text missing %q:\n%s", want, txt)
		}
	}
	md := d.Markdown()
	for _, want := range []string{"profdiff report", "| phase | verdict |", "| slow |", "**slow**"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("diff not marshalable: %v", err)
	}
}
